package lxfi_test

// Whole-system integration test: boot one machine with several modules
// (network driver, two protocol modules, an encrypted block device),
// run real workloads over all of them, then compromise one module —
// and verify the blast radius is exactly that module. This is the
// paper's bottom-line claim: isolation turns a kernel-wide compromise
// into a single-module failure.

import (
	"bytes"
	"testing"

	"lxfi"
	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/modules/dmcrypt"
	"lxfi/internal/modules/e1000sim"
	"lxfi/internal/modules/econet"
	"lxfi/internal/modules/rds"
)

func TestWholeSystemFaultContainment(t *testing.T) {
	machine, err := lxfi.Boot(lxfi.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	k, th := machine.Kernel, machine.Thread
	task := k.CreateTask("attacker", 1000)
	k.SetCurrent(th, task)

	// Load four modules onto the same kernel.
	machine.Bus.AddDevice(e1000sim.VendorIntel, e1000sim.Dev82540EM)
	drv, err := e1000sim.Load(th, k, machine.Bus, machine.Net)
	if err != nil {
		t.Fatal(err)
	}
	eco, err := econet.Load(th, k, machine.Net)
	if err != nil {
		t.Fatal(err)
	}
	rdsProto, err := rds.Load(th, k, machine.Net, rds.Config{WritableOps: true})
	if err != nil {
		t.Fatal(err)
	}
	machine.Block.AddDisk(1, 1024)
	crypt, err := dmcrypt.Load(th, k, machine.Block)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := machine.Block.CreateTarget(th, crypt.Ops(), 0xFEED, 0, 256, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline workloads on every module.
	netTx := func() error {
		skb, err := machine.Net.AllocSkb(64)
		if err != nil {
			return err
		}
		_, err = machine.Net.XmitSkb(th, drv.Dev, skb)
		return err
	}
	ecoSock, err := machine.Net.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	user := k.Sys.User.Alloc(64, 8)
	ecoTx := func() error {
		_, err := machine.Net.Sendmsg(th, ecoSock, user, 16, 0)
		return err
	}
	diskIO := func() error {
		bio, err := machine.Block.AllocBio(512)
		if err != nil {
			return err
		}
		data, _ := k.Sys.AS.ReadU64(machine.Block.BioField(bio, "data"))
		if err := k.Sys.AS.Write(lxfi.Addr(data), bytes.Repeat([]byte{0x5A}, 512)); err != nil {
			return err
		}
		if err := k.Sys.AS.WriteU64(machine.Block.BioField(bio, "rw"), blockdev.WriteBio); err != nil {
			return err
		}
		return machine.Block.Submit(th, ti, bio)
	}
	for i := 0; i < 5; i++ {
		if err := netTx(); err != nil {
			t.Fatalf("e1000 baseline: %v", err)
		}
		if err := ecoTx(); err != nil {
			t.Fatalf("econet baseline: %v", err)
		}
		if err := diskIO(); err != nil {
			t.Fatalf("dm-crypt baseline: %v", err)
		}
	}

	// Compromise rds with the CVE-2010-3904 primitive on this shared
	// machine.
	payload := k.Sys.RegisterUserFunc("payload", func(t *core.Thread, args []uint64) uint64 {
		_, _ = t.CallKernel("commit_creds", 0)
		return 0
	})
	rdsSock, err := machine.Net.Socket(th, rds.Family)
	if err != nil {
		t.Fatal(err)
	}
	src := k.Sys.User.Alloc(8, 8)
	if err := k.Sys.AS.WriteU64(src, uint64(payload.Addr)); err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Net.Sendmsg(th, rdsSock, src, 8, 0); err != nil {
		t.Fatal(err)
	}
	_, _ = machine.Net.Recvmsg(th, rdsSock, rdsProto.IoctlSlot(), 8, 0)
	_, _ = machine.Net.Ioctl(th, rdsSock, 0, 0)

	// Blast radius: exactly rds.
	if k.TaskUID(task) == 0 {
		t.Fatal("attacker escalated to root on the shared machine")
	}
	if !rdsProto.M.Dead {
		t.Fatal("rds should have been killed")
	}
	if len(k.Sys.Mon.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}
	for _, m := range []*core.Module{drv.M, eco.M, crypt.M} {
		if m.Dead {
			t.Fatalf("innocent module %s was killed", m.Name)
		}
	}

	// Every other module keeps working.
	for i := 0; i < 5; i++ {
		if err := netTx(); err != nil {
			t.Fatalf("e1000 after compromise: %v", err)
		}
		if err := ecoTx(); err != nil {
			t.Fatalf("econet after compromise: %v", err)
		}
		if err := diskIO(); err != nil {
			t.Fatalf("dm-crypt after compromise: %v", err)
		}
	}
	if drv.Nic.TxFrames != 10 {
		t.Fatalf("tx frames = %d", drv.Nic.TxFrames)
	}
	if eco.TxCount(ecoSock) != 10 {
		t.Fatalf("econet tx = %d", eco.TxCount(ecoSock))
	}
	// rds itself is now unreachable — new sockets fail cleanly.
	if _, err := machine.Net.Socket(th, rds.Family); err == nil {
		t.Fatal("dead rds still accepts sockets")
	}
}

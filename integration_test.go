package lxfi_test

// Whole-system integration test: boot one machine with several modules
// (network driver, two protocol modules, an encrypted block device),
// run real workloads over all of them, then compromise one module —
// and verify the blast radius is exactly that module. This is the
// paper's bottom-line claim: isolation turns a kernel-wide compromise
// into a single-module failure.

import (
	"bytes"
	"testing"

	"lxfi"
	"lxfi/internal/blockdev"
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/modules/dmcrypt"
	"lxfi/internal/modules/e1000sim"
	"lxfi/internal/modules/econet"
	"lxfi/internal/modules/rds"
	"lxfi/internal/modules/tmpfssim"
)

func TestWholeSystemFaultContainment(t *testing.T) {
	machine, err := lxfi.Boot(lxfi.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	k, th := machine.Kernel, machine.Thread
	task := k.CreateTask("attacker", 1000)
	k.SetCurrent(th, task)

	// Load four modules onto the same kernel through the descriptor
	// registry.
	ld := machine.Loader()
	machine.Bus.AddDevice(e1000sim.VendorIntel, e1000sim.Dev82540EM)
	drvInst, err := ld.Load(th, "e1000")
	if err != nil {
		t.Fatal(err)
	}
	drv := drvInst.(*e1000sim.Driver)
	ecoInst, err := ld.Load(th, "econet")
	if err != nil {
		t.Fatal(err)
	}
	eco := ecoInst.(*econet.Proto)
	rdsInst, err := ld.LoadWith(th, "rds", rds.Config{WritableOps: true})
	if err != nil {
		t.Fatal(err)
	}
	rdsProto := rdsInst.(*rds.Proto)
	machine.Block.AddDisk(1, 1024)
	cryptInst, err := ld.Load(th, "dm-crypt")
	if err != nil {
		t.Fatal(err)
	}
	crypt := cryptInst.(*dmcrypt.Target)
	ti, err := machine.Block.CreateTarget(th, crypt.Ops(), 0xFEED, 0, 256, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline workloads on every module.
	netTx := func() error {
		skb, err := machine.Net.AllocSkb(64)
		if err != nil {
			return err
		}
		_, err = machine.Net.XmitSkb(th, drv.Dev, skb)
		return err
	}
	ecoSock, err := machine.Net.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	user := k.Sys.User.Alloc(64, 8)
	ecoTx := func() error {
		_, err := machine.Net.Sendmsg(th, ecoSock, user, 16, 0)
		return err
	}
	diskIO := func() error {
		bio, err := machine.Block.AllocBio(512)
		if err != nil {
			return err
		}
		data, _ := k.Sys.AS.ReadU64(machine.Block.BioField(bio, "data"))
		if err := k.Sys.AS.Write(lxfi.Addr(data), bytes.Repeat([]byte{0x5A}, 512)); err != nil {
			return err
		}
		if err := k.Sys.AS.WriteU64(machine.Block.BioField(bio, "rw"), blockdev.WriteBio); err != nil {
			return err
		}
		return machine.Block.Submit(th, ti, bio)
	}
	for i := 0; i < 5; i++ {
		if err := netTx(); err != nil {
			t.Fatalf("e1000 baseline: %v", err)
		}
		if err := ecoTx(); err != nil {
			t.Fatalf("econet baseline: %v", err)
		}
		if err := diskIO(); err != nil {
			t.Fatalf("dm-crypt baseline: %v", err)
		}
	}

	// Compromise rds with the CVE-2010-3904 primitive on this shared
	// machine.
	payload := k.Sys.RegisterUserFunc("payload", func(t *core.Thread, args []uint64) uint64 {
		_, _ = t.CallKernel("commit_creds", 0)
		return 0
	})
	rdsSock, err := machine.Net.Socket(th, rds.Family)
	if err != nil {
		t.Fatal(err)
	}
	src := k.Sys.User.Alloc(8, 8)
	if err := k.Sys.AS.WriteU64(src, uint64(payload.Addr)); err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Net.Sendmsg(th, rdsSock, src, 8, 0); err != nil {
		t.Fatal(err)
	}
	_, _ = machine.Net.Recvmsg(th, rdsSock, rdsProto.IoctlSlot(), 8, 0)
	_, _ = machine.Net.Ioctl(th, rdsSock, 0, 0)

	// Blast radius: exactly rds.
	if k.TaskUID(task) == 0 {
		t.Fatal("attacker escalated to root on the shared machine")
	}
	if !rdsProto.M.Dead() {
		t.Fatal("rds should have been killed")
	}
	if len(k.Sys.Mon.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}
	for _, m := range []*core.Module{drv.M, eco.M, crypt.M} {
		if m.Dead() {
			t.Fatalf("innocent module %s was killed", m.Name)
		}
	}

	// Every other module keeps working.
	for i := 0; i < 5; i++ {
		if err := netTx(); err != nil {
			t.Fatalf("e1000 after compromise: %v", err)
		}
		if err := ecoTx(); err != nil {
			t.Fatalf("econet after compromise: %v", err)
		}
		if err := diskIO(); err != nil {
			t.Fatalf("dm-crypt after compromise: %v", err)
		}
	}
	if drv.Nic.TxFrames != 10 {
		t.Fatalf("tx frames = %d", drv.Nic.TxFrames)
	}
	if eco.TxCount(ecoSock) != 10 {
		t.Fatalf("econet tx = %d", eco.TxCount(ecoSock))
	}
	// rds itself is now unreachable — new sockets fail cleanly.
	if _, err := machine.Net.Socket(th, rds.Family); err == nil {
		t.Fatal("dead rds still accepts sockets")
	}
}

// TestCrossSubsystemPrincipalIsolation runs a filesystem module and a
// network module on one machine as distinct principals and verifies that
// neither can touch the other's writer set: capability probes in both
// directions come back empty, and a live cross-subsystem write attempt
// from the filesystem module is a violation whose blast radius excludes
// the network module.
func TestCrossSubsystemPrincipalIsolation(t *testing.T) {
	machine, err := lxfi.Boot(lxfi.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	k, th := machine.Kernel, machine.Thread

	ld := machine.Loader()
	ecoInst, err := ld.Load(th, "econet")
	if err != nil {
		t.Fatal(err)
	}
	eco := ecoInst.(*econet.Proto)
	tmpfsInst, err := ld.Load(th, "tmpfssim")
	if err != nil {
		t.Fatal(err)
	}
	tmpfs := tmpfsInst.(*tmpfssim.FS)
	sb, err := machine.FS.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline traffic on both subsystems.
	ecoSock, err := machine.Net.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	user := k.Sys.User.Alloc(64, 8)
	if _, err := machine.Net.Sendmsg(th, ecoSock, user, 16, 0); err != nil {
		t.Fatal(err)
	}
	ino, err := machine.FS.Create(th, sb, "/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.FS.Write(th, sb, "/file", 0, []byte("fs data")); err != nil {
		t.Fatal(err)
	}

	// Writer sets are disjoint in both directions: the fs mount holds no
	// WRITE capability into econet's world and vice versa.
	fsPrin, _ := tmpfs.M.Set.Lookup(sb)
	if fsPrin == nil {
		t.Fatal("no principal for the tmpfs mount")
	}
	ecoSk := eco.Sk(ecoSock)
	for what, addr := range map[string]lxfi.Addr{
		"econet data section": eco.M.Data,
		"econet socket state": ecoSk,
		"econet ioctl slot":   eco.IoctlSlot(),
	} {
		if k.Sys.Caps.Check(fsPrin, caps.WriteCap(addr, 8)) {
			t.Errorf("tmpfs mount can write the %s", what)
		}
	}
	// Probe every principal econet code actually runs as: shared, global,
	// and the per-socket instance principal of the live socket.
	ecoPrins := []*caps.Principal{eco.M.Set.Shared(), eco.M.Set.Global()}
	if p, ok := eco.M.Set.Lookup(ecoSock); ok {
		ecoPrins = append(ecoPrins, p)
	} else {
		t.Fatal("no instance principal for the econet socket")
	}
	for what, addr := range map[string]lxfi.Addr{
		"tmpfs data section": tmpfs.M.Data,
		"tmpfs superblock":   sb,
		"tmpfs inode":        ino,
	} {
		for _, prin := range ecoPrins {
			if k.Sys.Caps.Check(prin, caps.WriteCap(addr, 8)) {
				t.Errorf("econet (%s) can write the %s", prin, what)
			}
		}
	}
	// The cross-check through the writer-set slow path: nobody outside
	// econet appears among the grantees of its ioctl slot.
	for _, p := range k.Sys.Caps.WriteGrantees(eco.IoctlSlot()) {
		if p.Module != "econet" {
			t.Errorf("foreign principal %s holds WRITE on econet's ioctl slot", p)
		}
	}

	// A live cross-subsystem write: the compromised tmpfs ioctl aims at
	// econet's ioctl slot. It must be a violation that kills only tmpfs.
	if _, err := machine.FS.Ioctl(th, sb, tmpfssim.CmdPoke, uint64(eco.IoctlSlot())); err == nil {
		t.Fatal("cross-subsystem write succeeded")
	}
	if len(k.Sys.Mon.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}
	if !tmpfs.M.Dead() {
		t.Fatal("violating tmpfs module was not killed")
	}
	if eco.M.Dead() {
		t.Fatal("innocent econet module was killed")
	}
	// The network module keeps working; its slot was not redirected.
	if _, err := machine.Net.Sendmsg(th, ecoSock, user, 16, 0); err != nil {
		t.Fatalf("econet after fs compromise: %v", err)
	}
	if eco.TxCount(ecoSock) != 2 {
		t.Fatalf("econet tx = %d", eco.TxCount(ecoSock))
	}
	// The dead filesystem is unreachable for new mounts.
	if _, err := machine.FS.Mount(th, tmpfssim.FsID, 0); err == nil {
		t.Fatal("dead tmpfssim still accepts mounts")
	}
}

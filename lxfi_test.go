package lxfi_test

import (
	"testing"

	"lxfi"
)

func TestBootAndLoadModule(t *testing.T) {
	m, err := lxfi.Boot(lxfi.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := m.Kernel.Sys.LoadModule(lxfi.ModuleSpec{
		Name:     "hello",
		Imports:  []string{"printk", "kmalloc"},
		DataSize: 4096,
		Funcs: []lxfi.FuncSpec{{
			Name:   "greet",
			Params: []lxfi.Param{lxfi.P("n", "u64")},
			Impl: func(th *lxfi.Thread, args []uint64) uint64 {
				buf, err := th.CallKernel("kmalloc", 64)
				if err != nil || buf == 0 {
					return 1
				}
				if err := th.WriteU64(lxfi.Addr(buf), args[0]*2); err != nil {
					return 2
				}
				return buf
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := m.Thread.CallModule(mod, "greet", 21)
	if err != nil || ret < 4096 {
		t.Fatalf("greet: ret=%d err=%v", ret, err)
	}
	v, _ := m.Kernel.Sys.AS.ReadU64(lxfi.Addr(ret))
	if v != 42 {
		t.Fatalf("stored value = %d", v)
	}
}

func TestFacadeCapabilityHelpers(t *testing.T) {
	k := lxfi.NewKernel(lxfi.Enforce)
	ms := k.Sys.Caps.LoadModule("m")
	k.Sys.Caps.Grant(ms.Shared(), lxfi.WriteCap(0xffff880000000000, 64))
	if !k.Sys.Caps.Check(ms.Shared(), lxfi.WriteCap(0xffff880000000010, 8)) {
		t.Fatal("facade capability helpers broken")
	}
	_ = lxfi.RefCap("struct x", 1)
	_ = lxfi.CallCap(2)
}

func TestModesExported(t *testing.T) {
	if lxfi.Off == lxfi.Enforce {
		t.Fatal("modes collide")
	}
	m, _ := lxfi.Boot(lxfi.Off)
	if m.Kernel.Sys.Mon.Enforcing() {
		t.Fatal("Off mode should not enforce")
	}
}

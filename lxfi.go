// Package lxfi is the public API of the LXFI reproduction: software
// fault isolation with API integrity and multi-principal modules
// (Mao et al., SOSP 2011), built on a simulated Linux-like kernel.
//
// The package re-exports the core types and provides one-call boot
// helpers. The heavy lifting lives in the internal packages:
//
//	internal/core     — the LXFI reference monitor (capabilities,
//	                    principals, annotations, wrappers, writer sets)
//	internal/kernel   — the simulated core kernel
//	internal/netstack, internal/blockdev, internal/pci, internal/sound,
//	internal/vfs      — subsystem substrates (network, block, PCI,
//	                    sound, and the virtual filesystem layer with its
//	                    dentry and page caches)
//	internal/modules  — the ten isolated modules of the paper's Fig. 9,
//	                    plus the tmpfssim/minixsim filesystem modules,
//	                    and the descriptor registry + loader that boots,
//	                    unloads, and hot-reloads them by name
//	internal/exploits — the CVE exploits of Fig. 8 and the page-cache
//	                    scribble scenario
//
// Quick start:
//
//	machine, err := lxfi.Boot(lxfi.Enforce)
//	...
//	ld := machine.Loader()
//	inst, err := ld.Load(machine.Thread, "econet")
//
// (importing a module package — or lxfi/internal/modules/all for the
// whole Fig. 9 set — registers its descriptor; bespoke one-off modules
// still go through machine.Kernel.Sys.LoadModule with a ModuleSpec).
package lxfi

import (
	"lxfi/internal/blockdev"
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
	"lxfi/internal/sound"
	"lxfi/internal/vfs"
)

// Core types, re-exported for library users.
type (
	// System is the simulated machine plus the LXFI runtime.
	System = core.System
	// Thread is one simulated kernel thread; modules touch kernel state
	// only through it.
	Thread = core.Thread
	// Module is a loaded, isolated kernel module.
	Module = core.Module
	// ModuleSpec describes a module to load.
	ModuleSpec = core.ModuleSpec
	// FuncSpec describes one module function.
	FuncSpec = core.FuncSpec
	// Param is a function parameter (name + C type).
	Param = core.Param
	// Impl is a simulated function body.
	Impl = core.Impl
	// Mode selects stock or enforced execution.
	Mode = core.Mode
	// Violation describes a failed LXFI check.
	Violation = core.Violation
	// Gate is a bound module→kernel crossing (resolved at load time;
	// fixed-arity, allocation-free fast calls).
	Gate = core.Gate
	// IndGate is a bound indirect-call interface for kernel substrates.
	IndGate = core.IndGate
	// Cap is a WRITE/REF/CALL capability.
	Cap = caps.Cap
	// Addr is a simulated virtual address.
	Addr = mem.Addr
	// Kernel is the simulated core kernel.
	Kernel = kernel.Kernel
	// Loader loads, unloads, and hot-reloads registered modules by name.
	Loader = modules.Loader
	// ModuleDescriptor registers a loadable module with the loader.
	ModuleDescriptor = modules.Descriptor
	// ReloadStats reports what one hot reload did and what it cost.
	ReloadStats = modules.ReloadStats
)

// Enforcement modes.
const (
	// Off runs modules without isolation (the stock-kernel baseline).
	Off = core.Off
	// Enforce runs all LXFI guards.
	Enforce = core.Enforce
)

// Capability constructors.
var (
	// WriteCap builds a WRITE(ptr, size) capability.
	WriteCap = caps.WriteCap
	// RefCap builds a REF(type, addr) capability.
	RefCap = caps.RefCap
	// CallCap builds a CALL(addr) capability.
	CallCap = caps.CallCap
)

// P builds a Param.
func P(name, typ string) Param { return core.P(name, typ) }

// Machine is a fully booted simulated machine with every subsystem
// substrate initialized.
type Machine struct {
	Kernel *kernel.Kernel
	Bus    *pci.Bus
	Net    *netstack.Stack
	Block  *blockdev.Layer
	Sound  *sound.Sound
	FS     *vfs.VFS
	Thread *core.Thread
}

// Boot creates a machine with all substrates under the given mode.
func Boot(mode Mode) (*Machine, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	k.ShmInit()
	m := &Machine{
		Kernel: k,
		Bus:    pci.Init(k),
		Net:    netstack.Init(k),
		Block:  blockdev.Init(k),
		Sound:  sound.Init(k),
	}
	m.FS = vfs.Init(k, m.Block)
	m.Thread = k.Sys.NewThread("main")
	return m, nil
}

// Loader returns a module loader over the machine's substrates:
// modules whose packages are linked in (each registers a descriptor in
// init) load by name, with dependency resolution, clean unload, and
// hot reload with capability migration.
func (m *Machine) Loader() *Loader {
	return modules.NewLoaderWith(&modules.BootContext{
		K:     m.Kernel,
		Bus:   m.Bus,
		Net:   m.Net,
		Block: m.Block,
		Snd:   m.Sound,
		FS:    m.FS,
	})
}

// NewKernel boots just the core kernel (no subsystem substrates) for
// minimal uses.
func NewKernel(mode Mode) *kernel.Kernel {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	return k
}

package caps

import "lxfi/internal/mem"

// Capability snapshot and migration, the caps half of hot module
// reload (internal/core/reload.go has the runtime half).
//
// A reload replaces a module generation, and with it the module's
// principal set: the old set's shared principal held WRITE/CALL
// capabilities naming the old generation's sections and code, which
// must die with it, but the *instance* principals — one per socket,
// mount, device the module was serving — name kernel objects that
// outlive the swap. Snapshot captures those instances while the module
// is quiesced; MigrateSnapshot re-creates them in the successor's set,
// re-granting each capability the caller's filter keeps (typically
// everything except references into the retired generation's sections
// and text). Principals the fresh generation already created (a
// re-probed device, say) are merged with the migrated state via the
// alias directory rather than duplicated.

// InstanceSnapshot is one instance principal's capability state at
// snapshot time.
type InstanceSnapshot struct {
	Name    mem.Addr   // canonical principal name
	Aliases []mem.Addr // every name resolving to the principal, including Name
	Writes  []Cap
	Refs    []Cap
	Calls   []mem.Addr
}

// ModuleSnapshot is the per-instance capability state of one module,
// captured before a reload retires it.
type ModuleSnapshot struct {
	Module    string
	Instances []InstanceSnapshot
}

// Snapshot captures every instance principal of the set: names,
// aliases, and directly-held capabilities. The caller is expected to
// have quiesced the module (no crossings executing), but the walk is
// still lock-correct against unrelated capability traffic: the
// directory is read under ms.mu, the tables under the shard locks.
func (ms *ModuleSet) Snapshot() *ModuleSnapshot {
	ms.mu.RLock()
	prins := make([]*Principal, 0, len(ms.instances))
	aliases := make(map[*Principal][]mem.Addr, len(ms.instances))
	for _, p := range ms.instances {
		prins = append(prins, p)
	}
	for name, p := range ms.aliases {
		aliases[p] = append(aliases[p], name)
	}
	ms.mu.RUnlock()

	snap := &ModuleSnapshot{Module: ms.Module}
	for _, p := range prins {
		inst := InstanceSnapshot{
			Name:    p.Name,
			Aliases: aliases[p],
			Writes:  p.WriteRegions(),
			Refs:    p.RefCaps(),
			Calls:   p.CallTargets(),
		}
		sortAddrs(inst.Aliases)
		snap.Instances = append(snap.Instances, inst)
	}
	sortInstances(snap.Instances)
	return snap
}

func sortAddrs(a []mem.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortInstances(in []InstanceSnapshot) {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].Name < in[j-1].Name; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}

// CapFilter decides whether one snapshotted capability migrates to the
// successor. Returning false revokes it cleanly: the capability simply
// is not re-granted in the new set.
type CapFilter func(c Cap) bool

// MigrateSnapshot re-creates snap's instance principals inside the
// successor set ns and grants every capability keep admits. Instances
// are resolved through ns's alias directory, so a principal the fresh
// generation already created under one of the old names (a re-probed
// device) absorbs the migrated capabilities instead of splitting the
// object between two principals; alias names already bound to a
// different principal are skipped rather than fought over. Returns the
// number of capabilities migrated and dropped. Every Grant bumps the
// capability epoch, so stale caches cannot serve pre-migration state.
func (s *System) MigrateSnapshot(ns *ModuleSet, snap *ModuleSnapshot, keep CapFilter) (migrated, dropped int) {
	for _, inst := range snap.Instances {
		p := ns.Instance(inst.Name)
		for _, a := range inst.Aliases {
			if a == inst.Name {
				continue
			}
			// A conflict means the fresh generation bound this name to
			// another object; its binding wins.
			_ = ns.Alias(inst.Name, a)
		}
		grant := func(c Cap) {
			if keep == nil || keep(c) {
				s.Grant(p, c)
				migrated++
			} else {
				dropped++
			}
		}
		for _, c := range inst.Writes {
			grant(c)
		}
		for _, c := range inst.Refs {
			grant(c)
		}
		for _, a := range inst.Calls {
			grant(CallCap(a))
		}
	}
	return migrated, dropped
}

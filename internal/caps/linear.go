package caps

import "lxfi/internal/mem"

// LinearWriteSet is the naive baseline for WRITE-capability lookup: a
// flat list of ranges scanned on every check. It exists for the
// ablation benchmarks of the paper's §5 design claim — that inserting
// each capability into every 4 KiB bucket it covers gives constant
// expected lookup time, where a flat (or tree) structure degrades as
// the capability count grows. The differential property test in
// linear_test.go verifies both implementations agree exactly.
type LinearWriteSet struct {
	entries []writeEntry
}

// Grant adds a WRITE range.
func (l *LinearWriteSet) Grant(addr mem.Addr, size uint64) {
	if size == 0 {
		return
	}
	e := writeEntry{addr: addr, size: size}
	for _, have := range l.entries {
		if have == e {
			return
		}
	}
	l.entries = append(l.entries, e)
}

// Check reports whether some entry covers [addr, addr+size).
func (l *LinearWriteSet) Check(addr mem.Addr, size uint64) bool {
	for _, e := range l.entries {
		if e.covers(addr, size) {
			return true
		}
	}
	return false
}

// RevokeOverlap removes every entry overlapping [addr, addr+size),
// mirroring Principal.revokeOverlap's conservative semantics.
func (l *LinearWriteSet) RevokeOverlap(addr mem.Addr, size uint64) bool {
	out := l.entries[:0]
	removed := false
	for _, e := range l.entries {
		if e.overlaps(addr, size) {
			removed = true
			continue
		}
		out = append(out, e)
	}
	l.entries = out
	return removed
}

// Len returns the number of live entries.
func (l *LinearWriteSet) Len() int { return len(l.entries) }

// BucketWriteSet wraps a lone principal's WRITE table — now the sorted
// interval index of interval.go, reached through the same bucket-hashed
// sharding the live system uses — with the same interface, for
// side-by-side benchmarking against the linear baseline.
type BucketWriteSet struct {
	p *Principal
}

// NewBucketWriteSet returns an empty bucketed set.
func NewBucketWriteSet() *BucketWriteSet {
	return &BucketWriteSet{p: newPrincipal(nil, "bench", 0, Instance)}
}

// Grant adds a WRITE range.
func (b *BucketWriteSet) Grant(addr mem.Addr, size uint64) {
	b.p.grant(WriteCap(addr, size))
}

// Check reports whether some entry covers [addr, addr+size).
func (b *BucketWriteSet) Check(addr mem.Addr, size uint64) bool {
	return b.p.owns(WriteCap(addr, size))
}

// RevokeOverlap removes overlapping entries.
func (b *BucketWriteSet) RevokeOverlap(addr mem.Addr, size uint64) bool {
	return b.p.revokeOverlap(WriteCap(addr, size))
}

package caps

import "testing"

func TestSnapshotCapturesInstances(t *testing.T) {
	s, ms := sys(t)
	sock := ms.Instance(0x1000)
	s.Grant(sock, WriteCap(0xffff880000000100, 64))
	s.Grant(sock, RefCap("struct pci_dev", 0x2000))
	s.Grant(sock, CallCap(0x3000))
	if err := ms.Alias(0x1000, 0x1010); err != nil {
		t.Fatal(err)
	}
	dev := ms.Instance(0x5000)
	s.Grant(dev, WriteCap(0xffff880000000400, 32))

	// Shared-principal capabilities must not leak into the snapshot:
	// they belong to the generation, not its instances.
	s.Grant(ms.Shared(), WriteCap(0xffff880000000800, 8))

	snap := ms.Snapshot()
	if snap.Module != "econet" {
		t.Fatalf("module = %q", snap.Module)
	}
	if len(snap.Instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(snap.Instances))
	}
	i0 := snap.Instances[0] // sorted by canonical name: 0x1000 first
	if i0.Name != 0x1000 {
		t.Fatalf("first instance %#x", uint64(i0.Name))
	}
	if len(i0.Aliases) != 2 || i0.Aliases[0] != 0x1000 || i0.Aliases[1] != 0x1010 {
		t.Fatalf("aliases = %#v", i0.Aliases)
	}
	if len(i0.Writes) != 1 || len(i0.Refs) != 1 || len(i0.Calls) != 1 {
		t.Fatalf("caps = %d/%d/%d, want 1/1/1", len(i0.Writes), len(i0.Refs), len(i0.Calls))
	}
}

func TestMigrateSnapshotReplaysIntoSuccessor(t *testing.T) {
	s, ms := sys(t)
	sock := ms.Instance(0x1000)
	s.Grant(sock, WriteCap(0xffff880000000100, 64))
	s.Grant(sock, RefCap("struct pci_dev", 0x2000))
	s.Grant(sock, CallCap(0x3000))
	s.Grant(sock, CallCap(0x9000)) // "old generation code": filtered out
	if err := ms.Alias(0x1000, 0x1010); err != nil {
		t.Fatal(err)
	}
	snap := ms.Snapshot()

	s.UnloadModule("econet")
	ns := s.LoadModule("econet")
	epochBefore := s.Epoch()
	migrated, dropped := s.MigrateSnapshot(ns, snap, func(c Cap) bool {
		return !(c.Kind == Call && c.Addr == 0x9000)
	})
	if migrated != 3 || dropped != 1 {
		t.Fatalf("migrated=%d dropped=%d, want 3/1", migrated, dropped)
	}
	if s.Epoch() == epochBefore {
		t.Fatal("migration did not bump the capability epoch")
	}

	np, ok := ns.Lookup(0x1010) // via migrated alias
	if !ok {
		t.Fatal("alias not migrated")
	}
	if !s.Check(np, WriteCap(0xffff880000000100, 64)) {
		t.Fatal("WRITE capability not migrated")
	}
	if !s.Check(np, RefCap("struct pci_dev", 0x2000)) {
		t.Fatal("REF capability not migrated")
	}
	if !s.Check(np, CallCap(0x3000)) {
		t.Fatal("CALL capability not migrated")
	}
	if s.Check(np, CallCap(0x9000)) {
		t.Fatal("filtered capability migrated anyway")
	}
}

// A principal the fresh generation already created under one of the old
// names absorbs the migrated capabilities (alias merge) instead of the
// object splitting between two principals.
func TestMigrateSnapshotMergesWithFreshPrincipal(t *testing.T) {
	s, ms := sys(t)
	old := ms.Instance(0x1000)
	s.Grant(old, WriteCap(0xffff880000000100, 64))
	snap := ms.Snapshot()

	s.UnloadModule("econet")
	ns := s.LoadModule("econet")
	fresh := ns.Instance(0x1000) // re-probe created it first
	s.Grant(fresh, WriteCap(0xffff880000000400, 32))

	s.MigrateSnapshot(ns, snap, nil)
	if got := ns.Instance(0x1000); got != fresh {
		t.Fatal("migration created a second principal for the same name")
	}
	if !s.Check(fresh, WriteCap(0xffff880000000100, 64)) {
		t.Fatal("migrated capability missing from merged principal")
	}
	if !s.Check(fresh, WriteCap(0xffff880000000400, 32)) {
		t.Fatal("fresh generation's capability lost in merge")
	}
}

func TestMigrateSnapshotSkipsConflictingAlias(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x1000)
	s.Grant(p, WriteCap(0xffff880000000100, 8))
	if err := ms.Alias(0x1000, 0x1010); err != nil {
		t.Fatal(err)
	}
	snap := ms.Snapshot()

	s.UnloadModule("econet")
	ns := s.LoadModule("econet")
	other := ns.Instance(0x1010) // fresh generation bound the alias name elsewhere

	s.MigrateSnapshot(ns, snap, nil)
	if got, _ := ns.Lookup(0x1010); got != other {
		t.Fatal("migration stole an alias name the fresh generation had bound")
	}
	canon := ns.Instance(0x1000)
	if !s.Check(canon, WriteCap(0xffff880000000100, 8)) {
		t.Fatal("canonical principal lost its migrated capability")
	}
}

package caps

import (
	"fmt"
	"testing"
	"testing/quick"

	"lxfi/internal/mem"
)

// TestDifferentialBucketVsLinear drives both WRITE-set implementations
// with the same random operation stream and requires identical answers —
// the correctness half of the §5 data-structure ablation.
func TestDifferentialBucketVsLinear(t *testing.T) {
	type op struct {
		Kind  uint8 // 0 grant, 1 revoke, 2..: check
		Off   uint16
		Size  uint16
		Probe uint16
	}
	f := func(ops []op) bool {
		lin := &LinearWriteSet{}
		buck := NewBucketWriteSet()
		base := mem.Addr(0xffff880000000000)
		for _, o := range ops {
			addr := base + mem.Addr(o.Off)*16
			size := uint64(o.Size%5000) + 1
			switch o.Kind % 4 {
			case 0:
				lin.Grant(addr, size)
				buck.Grant(addr, size)
			case 1:
				lr := lin.RevokeOverlap(addr, size)
				br := buck.RevokeOverlap(addr, size)
				if lr != br {
					return false
				}
			default:
				probe := base + mem.Addr(o.Probe)*16
				psize := uint64(o.Probe%64) + 1
				if lin.Check(probe, psize) != buck.Check(probe, psize) {
					return false
				}
			}
		}
		// Full sweep comparison at the end.
		for off := 0; off < 1<<12; off += 64 {
			a := base + mem.Addr(off)
			if lin.Check(a, 8) != buck.Check(a, 8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Benchmarks for the §5 ablation: bucketed lookup stays flat as the
// capability count grows; the linear baseline degrades.
func benchWriteSet(b *testing.B, n int, makeSet func() interface {
	Grant(mem.Addr, uint64)
	Check(mem.Addr, uint64) bool
}) {
	s := makeSet()
	base := mem.Addr(0xffff880000000000)
	for i := 0; i < n; i++ {
		// Spread capabilities across many pages, as real module heaps do.
		s.Grant(base+mem.Addr(i)*256, 64)
	}
	probe := base + mem.Addr(n/2)*256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Check(probe, 8) {
			b.Fatal("probe missing")
		}
	}
}

func BenchmarkWriteSetBucketed(b *testing.B) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("caps=%d", n), func(b *testing.B) {
			benchWriteSet(b, n, func() interface {
				Grant(mem.Addr, uint64)
				Check(mem.Addr, uint64) bool
			} {
				return NewBucketWriteSet()
			})
		})
	}
}

func BenchmarkWriteSetLinear(b *testing.B) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("caps=%d", n), func(b *testing.B) {
			benchWriteSet(b, n, func() interface {
				Grant(mem.Addr, uint64)
				Check(mem.Addr, uint64) bool
			} {
				return &LinearWriteSet{}
			})
		})
	}
}

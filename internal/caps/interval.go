package caps

import "lxfi/internal/mem"

// intervalSet is the per-(principal, shard) WRITE-capability index: a
// slice of entries sorted by start address paired with a prefix-maximum
// of the entries' end addresses. Membership ("does some entry cover
// [addr, addr+size)?") is answered in O(log n): binary-search the last
// entry starting at or before addr; the prefix maximum tells whether any
// entry up to that point reaches past addr+size. Since every entry in
// the prefix starts at or before addr, the entry attaining the maximum
// covers the probe iff the maximum does.
//
// Mutations rebuild the prefix maximum from the edit point — grants and
// revokes are orders of magnitude rarer than checks, so the index is
// tuned entirely for the read side.
type intervalSet struct {
	ents   []writeEntry
	maxEnd []mem.Addr // maxEnd[i] = max over ents[0..i] of entry end
}

func (w writeEntry) end() mem.Addr { return w.addr + mem.Addr(w.size) }

// searchAfter returns the first index whose entry starts strictly after
// addr. Hand-rolled so the hot check path stays closure- and
// allocation-free.
func (s *intervalSet) searchAfter(addr mem.Addr) int {
	lo, hi := 0, len(s.ents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ents[mid].addr <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// covers reports whether some entry covers [addr, addr+size) entirely.
func (s *intervalSet) covers(addr mem.Addr, size uint64) bool {
	i := s.searchAfter(addr) - 1
	if i < 0 {
		return false
	}
	return s.maxEnd[i] >= addr+mem.Addr(size)
}

// rebuildFrom recomputes the prefix maximum from index i on.
func (s *intervalSet) rebuildFrom(i int) {
	for ; i < len(s.ents); i++ {
		m := s.ents[i].end()
		if i > 0 && s.maxEnd[i-1] > m {
			m = s.maxEnd[i-1]
		}
		s.maxEnd[i] = m
	}
}

// insert adds e keeping the slice sorted; exact duplicates are dropped.
func (s *intervalSet) insert(e writeEntry) bool {
	i := s.searchAfter(e.addr)
	for j := i - 1; j >= 0 && s.ents[j].addr == e.addr; j-- {
		if s.ents[j] == e {
			return false
		}
	}
	s.ents = append(s.ents, writeEntry{})
	copy(s.ents[i+1:], s.ents[i:])
	s.ents[i] = e
	s.maxEnd = append(s.maxEnd, 0)
	s.rebuildFrom(i)
	return true
}

// remove deletes the exact entry e if present.
func (s *intervalSet) remove(e writeEntry) bool {
	i := s.searchAfter(e.addr)
	for j := i - 1; j >= 0 && s.ents[j].addr == e.addr; j-- {
		if s.ents[j] == e {
			s.ents = append(s.ents[:j], s.ents[j+1:]...)
			s.maxEnd = s.maxEnd[:len(s.ents)]
			s.rebuildFrom(j)
			return true
		}
	}
	return false
}

// appendOverlap appends every entry overlapping [addr, addr+size) to
// out. The candidate window is narrowed from both sides by binary
// search: entries starting at or past the probe's end cannot overlap,
// and the nondecreasing prefix maximum locates the first index whose
// prefix reaches past addr.
func (s *intervalSet) appendOverlap(addr mem.Addr, size uint64, out []writeEntry) []writeEntry {
	if size == 0 || len(s.ents) == 0 {
		return out
	}
	hi := s.searchAfter(addr + mem.Addr(size) - 1)
	lo, r := 0, hi
	for lo < r {
		mid := int(uint(lo+r) >> 1)
		if s.maxEnd[mid] > addr {
			r = mid
		} else {
			lo = mid + 1
		}
	}
	for j := lo; j < hi; j++ {
		if s.ents[j].overlaps(addr, size) {
			out = append(out, s.ents[j])
		}
	}
	return out
}

func (s *intervalSet) len() int { return len(s.ents) }

package caps

import (
	"testing"
	"testing/quick"

	"lxfi/internal/mem"
)

func sys(t *testing.T) (*System, *ModuleSet) {
	t.Helper()
	s := NewSystem()
	return s, s.LoadModule("econet")
}

func TestGrantCheckWrite(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x1000)
	s.Grant(p, WriteCap(0xffff880000000100, 64))

	cases := []struct {
		addr mem.Addr
		size uint64
		want bool
	}{
		{0xffff880000000100, 64, true},
		{0xffff880000000100, 1, true},
		{0xffff880000000120, 32, true},
		{0xffff88000000013f, 1, true},
		{0xffff880000000140, 1, false}, // one past end
		{0xffff8800000000ff, 2, false}, // starts before
		{0xffff880000000100, 65, false},
	}
	for _, c := range cases {
		if got := s.Check(p, WriteCap(c.addr, c.size)); got != c.want {
			t.Errorf("Check WRITE(%#x,%d) = %v, want %v", uint64(c.addr), c.size, got, c.want)
		}
	}
}

func TestWriteCapSpanningBuckets(t *testing.T) {
	// A WRITE capability spanning multiple 4 KiB buckets must be found
	// from any address inside it (the paper inserts into every covered
	// bucket).
	s, ms := sys(t)
	p := ms.Instance(0x1000)
	base := mem.Addr(0xffff880000003f00)
	s.Grant(p, WriteCap(base, 3*4096))
	for off := uint64(0); off < 3*4096; off += 512 {
		if !s.Check(p, WriteCap(base+mem.Addr(off), 8)) {
			t.Fatalf("offset %d not covered", off)
		}
	}
	if s.Check(p, WriteCap(base+3*4096, 1)) {
		t.Fatal("past-end covered")
	}
}

func TestRefAndCallCaps(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x2000)
	s.Grant(p, RefCap("struct pci_dev", 0xabc))
	s.Grant(p, CallCap(0xffffffff81001000))

	if !s.Check(p, RefCap("struct pci_dev", 0xabc)) {
		t.Fatal("REF missing")
	}
	if s.Check(p, RefCap("struct net_device", 0xabc)) {
		t.Fatal("REF type confusion allowed")
	}
	if s.Check(p, RefCap("struct pci_dev", 0xdef)) {
		t.Fatal("REF wrong address allowed")
	}
	if !s.Check(p, CallCap(0xffffffff81001000)) {
		t.Fatal("CALL missing")
	}
	if s.Check(p, CallCap(0xffffffff81001008)) {
		t.Fatal("CALL wrong target allowed")
	}
}

func TestSharedPrincipalFallback(t *testing.T) {
	s, ms := sys(t)
	s.Grant(ms.Shared(), CallCap(0x100))
	inst := ms.Instance(0x5000)
	if !s.Check(inst, CallCap(0x100)) {
		t.Fatal("instance should see shared capability")
	}
	// The reverse does not hold: instance caps are private.
	s.Grant(inst, CallCap(0x200))
	other := ms.Instance(0x6000)
	if s.Check(other, CallCap(0x200)) {
		t.Fatal("sibling instance must not see instance capability")
	}
	if s.Check(ms.Shared(), CallCap(0x200)) {
		t.Fatal("shared must not see instance capability")
	}
}

func TestGlobalPrincipalSeesAll(t *testing.T) {
	s, ms := sys(t)
	s.Grant(ms.Instance(0x1), WriteCap(0xffff880000001000, 8))
	s.Grant(ms.Shared(), CallCap(0x42))
	g := ms.Global()
	if !s.Check(g, WriteCap(0xffff880000001000, 8)) {
		t.Fatal("global should see instance capability")
	}
	if !s.Check(g, CallCap(0x42)) {
		t.Fatal("global should see shared capability")
	}
	if s.Check(g, CallCap(0x43)) {
		t.Fatal("global invented a capability")
	}
}

func TestTrustedKernel(t *testing.T) {
	s := NewSystem()
	if !s.Check(s.Trusted, WriteCap(0xdead, 1<<30)) {
		t.Fatal("kernel must pass all checks")
	}
	if !s.Check(nil, CallCap(1)) {
		t.Fatal("nil principal means kernel context")
	}
	s.Grant(s.Trusted, CallCap(7)) // no-op, must not panic
}

func TestRevokeAllTransferSemantics(t *testing.T) {
	s := NewSystem()
	a := s.LoadModule("rds")
	b := s.LoadModule("e1000")
	c := WriteCap(0xffff880000002000, 128)
	s.Grant(a.Shared(), c)
	s.Grant(a.Instance(0x9), c)
	s.Grant(b.Shared(), c)
	n := s.RevokeAll(c)
	if n != 3 {
		t.Fatalf("revoked from %d principals, want 3", n)
	}
	for _, p := range []*Principal{a.Shared(), a.Instance(0x9), b.Shared()} {
		if s.Check(p, c) {
			t.Fatalf("%s still holds revoked capability", p)
		}
	}
}

func TestRevokeOverlapIsConservative(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x1)
	s.Grant(p, WriteCap(0xffff880000000000, 256))
	// Revoking a sub-range strips the whole overlapping entry.
	s.RevokeAll(WriteCap(0xffff880000000080, 8))
	if s.Check(p, WriteCap(0xffff880000000000, 8)) {
		t.Fatal("overlapping revoke must remove the covering entry")
	}
}

func TestRevokeSpanningEntryFromSideBucket(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x1)
	base := mem.Addr(0xffff880000000000)
	s.Grant(p, WriteCap(base, 3*4096))
	// Revoke using a range in the middle bucket only.
	s.RevokeAll(WriteCap(base+4096+8, 8))
	for off := uint64(0); off < 3*4096; off += 4096 {
		if s.Check(p, WriteCap(base+mem.Addr(off), 8)) {
			t.Fatalf("entry fragment survived at offset %d", off)
		}
	}
}

func TestAlias(t *testing.T) {
	s, ms := sys(t)
	pci := mem.Addr(0x111)
	ndev := mem.Addr(0x222)
	p := ms.Instance(pci)
	s.Grant(p, RefCap("struct pci_dev", pci))
	if err := ms.Alias(pci, ndev); err != nil {
		t.Fatal(err)
	}
	q := ms.Instance(ndev)
	if q != p {
		t.Fatal("alias did not resolve to canonical principal")
	}
	if !s.Check(q, RefCap("struct pci_dev", pci)) {
		t.Fatal("capability not visible through alias")
	}
	// Rebinding an alias to a different principal must fail.
	other := mem.Addr(0x333)
	ms.Instance(other)
	if err := ms.Alias(other, ndev); err == nil {
		t.Fatal("rebinding alias should fail")
	}
	// Aliasing to the same principal again is idempotent.
	if err := ms.Alias(pci, ndev); err != nil {
		t.Fatalf("idempotent alias failed: %v", err)
	}
	if err := ms.Alias(pci, 0); err == nil {
		t.Fatal("NULL alias should fail")
	}
}

func TestDropInstance(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x10)
	if err := ms.Alias(0x10, 0x20); err != nil {
		t.Fatal(err)
	}
	s.Grant(p, CallCap(1))
	ms.DropInstance(0x20) // dropping via an alias removes all names
	if _, ok := ms.Lookup(0x10); ok {
		t.Fatal("canonical name survived drop")
	}
	if _, ok := ms.Lookup(0x20); ok {
		t.Fatal("alias survived drop")
	}
	// A fresh principal under the old name has no capabilities.
	if s.Check(ms.Instance(0x10), CallCap(1)) {
		t.Fatal("capabilities leaked across instance drop")
	}
}

func TestWriteGrantees(t *testing.T) {
	s := NewSystem()
	a := s.LoadModule("a")
	b := s.LoadModule("b")
	addr := mem.Addr(0xffff880000004000)
	s.Grant(a.Shared(), WriteCap(addr, 64))
	s.Grant(b.Instance(0x7), WriteCap(addr+32, 8))
	got := s.WriteGrantees(addr + 32)
	if len(got) != 2 {
		t.Fatalf("grantees = %v", got)
	}
	got = s.WriteGrantees(addr + 63)
	if len(got) != 1 || got[0] != a.Shared() {
		t.Fatalf("grantees at +63 = %v", got)
	}
	if len(s.WriteGrantees(addr+64)) != 0 {
		t.Fatal("no grantee expected past end")
	}
}

func TestUnloadModule(t *testing.T) {
	s := NewSystem()
	ms := s.LoadModule("dm-zero")
	s.Grant(ms.Shared(), CallCap(5))
	s.UnloadModule("dm-zero")
	if _, ok := s.Module("dm-zero"); ok {
		t.Fatal("module survived unload")
	}
	if len(s.Modules()) != 0 {
		t.Fatal("module list not empty")
	}
}

func TestModuleSetPrincipalsOrder(t *testing.T) {
	_, ms := sys(t)
	ms.Instance(0x30)
	ms.Instance(0x10)
	ms.Instance(0x20)
	ps := ms.Principals()
	if len(ps) != 5 {
		t.Fatalf("principals = %d, want 5", len(ps))
	}
	if ps[0].Kind != Shared || ps[1].Kind != Global {
		t.Fatal("shared/global must come first")
	}
	if !(ps[2].Name == 0x10 && ps[3].Name == 0x20 && ps[4].Name == 0x30) {
		t.Fatal("instances not sorted")
	}
}

func TestCapString(t *testing.T) {
	cases := map[string]Cap{
		"WRITE(0x10,8)":      WriteCap(0x10, 8),
		"REF(struct s,0x20)": RefCap("struct s", 0x20),
		"CALL(0x30)":         CallCap(0x30),
	}
	for want, c := range cases {
		if c.String() != want {
			t.Errorf("String = %q, want %q", c.String(), want)
		}
	}
}

// Property: after Grant, Check succeeds for every sub-range; after
// RevokeAll, Check fails for every sub-range.
func TestWriteCapProperty(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x1)
	f := func(off uint16, size uint16, probeOff uint16) bool {
		sz := uint64(size%8192) + 1
		base := mem.Addr(0xffff880000000000) + mem.Addr(off)
		c := WriteCap(base, sz)
		s.Grant(p, c)
		po := uint64(probeOff) % sz
		probe := WriteCap(base+mem.Addr(po), 1)
		if !s.Check(p, probe) {
			return false
		}
		s.RevokeAll(c)
		return !s.Check(p, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: REF capabilities are exact on (type, addr).
func TestRefCapProperty(t *testing.T) {
	s, ms := sys(t)
	p := ms.Instance(0x1)
	f := func(addr uint32, flip bool) bool {
		a := mem.Addr(addr) | 1 // avoid 0
		s.Grant(p, RefCap("t", a))
		ok := s.Check(p, RefCap("t", a))
		wrong := s.Check(p, RefCap("u", a)) || s.Check(p, RefCap("t", a+1))
		s.RevokeAll(RefCap("t", a))
		gone := !s.Check(p, RefCap("t", a))
		return ok && !wrong && gone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package caps implements LXFI's capability system (§3.2 of the paper).
//
// LXFI tracks three kinds of capabilities per module principal:
//
//   - WRITE(ptr, size): the principal may write any value into the
//     kernel memory region [ptr, ptr+size).
//   - REF(t, a): the principal may pass a as an argument to kernel
//     functions requiring a REF capability of type t (object ownership
//     without write access).
//   - CALL(a): the principal may call or jump to address a.
//
// WRITE capabilities are indexed the way the paper describes: each
// capability is inserted into every hash-table bucket its address range
// covers, with bucket keys derived by masking the low 12 bits of the
// address. Lookups therefore probe a single bucket, giving constant
// expected time instead of the logarithmic time of a balanced tree.
//
// Concurrency: simulated kernel threads run on their own goroutines, so
// the capability state is shared monitor state. Two locks guard it, in a
// fixed order:
//
//  1. System.mu (RWMutex) — every principal's capability tables. Checks
//     take the read lock (the hot path); grant/revoke/transfer take the
//     write lock.
//  2. ModuleSet.mu — a module's principal directory (the instances and
//     aliases maps).
//
// System.mu is always acquired before ModuleSet.mu; ModuleSet.mu may
// also be taken alone. No callback ever runs under either lock, so the
// order cannot invert.
package caps

import (
	"fmt"
	"sort"
	"sync"

	"lxfi/internal/mem"
)

// Kind identifies a capability type.
type Kind uint8

// The three capability kinds of §3.2.
const (
	Write Kind = iota
	Ref
	Call
)

func (k Kind) String() string {
	switch k {
	case Write:
		return "WRITE"
	case Ref:
		return "REF"
	case Call:
		return "CALL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Cap is a single capability.
type Cap struct {
	Kind    Kind
	Addr    mem.Addr
	Size    uint64 // WRITE only
	RefType string // REF only
}

// WriteCap constructs a WRITE(addr, size) capability.
func WriteCap(addr mem.Addr, size uint64) Cap { return Cap{Kind: Write, Addr: addr, Size: size} }

// RefCap constructs a REF(typ, addr) capability.
func RefCap(typ string, addr mem.Addr) Cap { return Cap{Kind: Ref, Addr: addr, RefType: typ} }

// CallCap constructs a CALL(addr) capability.
func CallCap(addr mem.Addr) Cap { return Cap{Kind: Call, Addr: addr} }

func (c Cap) String() string {
	switch c.Kind {
	case Write:
		return fmt.Sprintf("WRITE(%#x,%d)", uint64(c.Addr), c.Size)
	case Ref:
		return fmt.Sprintf("REF(%s,%#x)", c.RefType, uint64(c.Addr))
	case Call:
		return fmt.Sprintf("CALL(%#x)", uint64(c.Addr))
	}
	return "CAP(?)"
}

// bucketShift mirrors the paper's optimization: "LXFI reduces the number
// of insertions by masking the least significant bits of the address
// (the last 12 bits in practice) when calculating hash keys."
const bucketShift = 12

func bucketOf(a mem.Addr) mem.Addr { return a >> bucketShift }

type writeEntry struct {
	addr mem.Addr
	size uint64
}

func (w writeEntry) covers(addr mem.Addr, size uint64) bool {
	return w.addr <= addr && addr+mem.Addr(size) <= w.addr+mem.Addr(w.size)
}

func (w writeEntry) overlaps(addr mem.Addr, size uint64) bool {
	return w.addr < addr+mem.Addr(size) && addr < w.addr+mem.Addr(w.size)
}

type refKey struct {
	typ  string
	addr mem.Addr
}

// PrincipalKind distinguishes instance principals from the two special
// per-module principals of §3.1.
type PrincipalKind uint8

// Principal kinds.
const (
	// Instance principals correspond to one instance of the module's
	// abstraction (one socket, one block device, ...). They are named by
	// the address of the data structure representing the instance.
	Instance PrincipalKind = iota
	// Shared is the module's shared principal: capabilities stored here
	// are implicitly accessible to every other principal in the module.
	Shared
	// Global is the module's global principal: it implicitly has access
	// to the capabilities of all principals in the module.
	Global
)

func (k PrincipalKind) String() string {
	switch k {
	case Instance:
		return "instance"
	case Shared:
		return "shared"
	case Global:
		return "global"
	}
	return "?"
}

// Principal holds one principal's three capability tables.
type Principal struct {
	Module string
	Name   mem.Addr // 0 for shared/global
	Kind   PrincipalKind

	set *ModuleSet // owning module's principal set (nil only for Trusted)

	writes map[mem.Addr][]writeEntry
	refs   map[refKey]struct{}
	calls  map[mem.Addr]struct{}
}

func newPrincipal(set *ModuleSet, module string, name mem.Addr, kind PrincipalKind) *Principal {
	return &Principal{
		Module: module,
		Name:   name,
		Kind:   kind,
		set:    set,
		writes: make(map[mem.Addr][]writeEntry),
		refs:   make(map[refKey]struct{}),
		calls:  make(map[mem.Addr]struct{}),
	}
}

// String renders the principal for diagnostics, e.g. "econet[#c0de]".
func (p *Principal) String() string {
	if p == nil {
		return "<kernel>"
	}
	switch p.Kind {
	case Shared:
		return p.Module + "[shared]"
	case Global:
		return p.Module + "[global]"
	}
	return fmt.Sprintf("%s[%#x]", p.Module, uint64(p.Name))
}

// IsTrusted reports whether p is the fully-trusted core kernel principal.
func (p *Principal) IsTrusted() bool { return p != nil && p.set == nil }

func (p *Principal) grant(c Cap) {
	switch c.Kind {
	case Write:
		if c.Size == 0 {
			return
		}
		e := writeEntry{addr: c.Addr, size: c.Size}
		first := bucketOf(c.Addr)
		last := bucketOf(c.Addr + mem.Addr(c.Size) - 1)
		for b := first; b <= last; b++ {
			// Avoid exact duplicates in the bucket.
			dup := false
			for _, have := range p.writes[b] {
				if have == e {
					dup = true
					break
				}
			}
			if !dup {
				p.writes[b] = append(p.writes[b], e)
			}
		}
	case Ref:
		p.refs[refKey{c.RefType, c.Addr}] = struct{}{}
	case Call:
		p.calls[c.Addr] = struct{}{}
	}
}

// owns checks p's own tables only (no shared fallback, no global sweep).
func (p *Principal) owns(c Cap) bool {
	switch c.Kind {
	case Write:
		for _, e := range p.writes[bucketOf(c.Addr)] {
			if e.covers(c.Addr, c.Size) {
				return true
			}
		}
		return false
	case Ref:
		_, ok := p.refs[refKey{c.RefType, c.Addr}]
		return ok
	case Call:
		_, ok := p.calls[c.Addr]
		return ok
	}
	return false
}

// revokeOverlap removes capabilities matching c from p's own tables.
// For WRITE, any entry overlapping [c.Addr, c.Addr+c.Size) is removed
// entirely (the conservative direction: revocation may strip more than
// requested, never less).
func (p *Principal) revokeOverlap(c Cap) bool {
	removed := false
	switch c.Kind {
	case Write:
		// An overlapping entry may be registered in buckets outside
		// [c.Addr, c.Addr+c.Size); collect victims first, then purge them
		// from every bucket they cover.
		var victims []writeEntry
		first := bucketOf(c.Addr)
		last := bucketOf(c.Addr + mem.Addr(c.Size) - 1)
		seen := map[writeEntry]bool{}
		for b := first; b <= last; b++ {
			for _, e := range p.writes[b] {
				if e.overlaps(c.Addr, c.Size) && !seen[e] {
					seen[e] = true
					victims = append(victims, e)
				}
			}
		}
		for _, v := range victims {
			removed = true
			vf := bucketOf(v.addr)
			vl := bucketOf(v.addr + mem.Addr(v.size) - 1)
			for b := vf; b <= vl; b++ {
				lst := p.writes[b]
				out := lst[:0]
				for _, e := range lst {
					if e != v {
						out = append(out, e)
					}
				}
				if len(out) == 0 {
					delete(p.writes, b)
				} else {
					p.writes[b] = out
				}
			}
		}
	case Ref:
		k := refKey{c.RefType, c.Addr}
		if _, ok := p.refs[k]; ok {
			delete(p.refs, k)
			removed = true
		}
	case Call:
		if _, ok := p.calls[c.Addr]; ok {
			delete(p.calls, c.Addr)
			removed = true
		}
	}
	return removed
}

// lockTables takes the owning system's read lock so introspection can
// walk p's tables while other threads grant and revoke. The trusted
// principal (and test-built bare principals) have no owning system and
// need no lock.
func (p *Principal) lockTables() func() {
	if p == nil || p.set == nil || p.set.sys == nil {
		return func() {}
	}
	p.set.sys.mu.RLock()
	return p.set.sys.mu.RUnlock
}

// WriteRegions returns the distinct WRITE capability regions held
// directly by p, sorted by address. Used by introspection and tests.
func (p *Principal) WriteRegions() []Cap {
	defer p.lockTables()()
	seen := map[writeEntry]bool{}
	var out []Cap
	for _, lst := range p.writes {
		for _, e := range lst {
			if !seen[e] {
				seen[e] = true
				out = append(out, WriteCap(e.addr, e.size))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// CallTargets returns the CALL capability targets held directly by p.
func (p *Principal) CallTargets() []mem.Addr {
	defer p.lockTables()()
	out := make([]mem.Addr, 0, len(p.calls))
	for a := range p.calls {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RefCaps returns the REF capabilities held directly by p.
func (p *Principal) RefCaps() []Cap {
	defer p.lockTables()()
	out := make([]Cap, 0, len(p.refs))
	for k := range p.refs {
		out = append(out, RefCap(k.typ, k.addr))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].RefType < out[j].RefType
	})
	return out
}

// ModuleSet holds all principals belonging to one loaded module.
type ModuleSet struct {
	Module string

	sys *System // owning system (for introspection locking)

	mu        sync.Mutex // guards instances and aliases (lock order: after System.mu)
	shared    *Principal
	global    *Principal
	instances map[mem.Addr]*Principal
	aliases   map[mem.Addr]*Principal // principal name -> canonical principal
}

// Shared returns the module's shared principal.
func (ms *ModuleSet) Shared() *Principal { return ms.shared }

// Global returns the module's global principal.
func (ms *ModuleSet) Global() *Principal { return ms.global }

// Instance returns the principal named by addr, creating it on first
// use. Aliases established with Alias resolve to their canonical
// principal.
func (ms *ModuleSet) Instance(addr mem.Addr) *Principal {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.instanceLocked(addr)
}

func (ms *ModuleSet) instanceLocked(addr mem.Addr) *Principal {
	if p, ok := ms.aliases[addr]; ok {
		return p
	}
	p, ok := ms.instances[addr]
	if !ok {
		p = newPrincipal(ms, ms.Module, addr, Instance)
		ms.instances[addr] = p
		ms.aliases[addr] = p
	}
	return p
}

// Lookup returns the principal for addr without creating one.
func (ms *ModuleSet) Lookup(addr mem.Addr) (*Principal, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	p, ok := ms.aliases[addr]
	return p, ok
}

// Alias makes alias a second name for the principal currently named by
// existing (lxfi_princ_alias in the paper). The existing principal is
// created if absent.
func (ms *ModuleSet) Alias(existing, alias mem.Addr) error {
	if alias == 0 {
		return fmt.Errorf("caps: cannot alias the NULL name")
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	p := ms.instanceLocked(existing)
	if cur, ok := ms.aliases[alias]; ok && cur != p {
		return fmt.Errorf("caps: name %#x already bound to %s", uint64(alias), cur)
	}
	ms.aliases[alias] = p
	return nil
}

// DropInstance removes the principal named addr (and every alias of it)
// along with all of its capabilities; called when the instance's backing
// object is destroyed.
func (ms *ModuleSet) DropInstance(addr mem.Addr) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	p, ok := ms.aliases[addr]
	if !ok {
		return
	}
	for name, q := range ms.aliases {
		if q == p {
			delete(ms.aliases, name)
		}
	}
	delete(ms.instances, p.Name)
}

// Principals returns all principals of the module (shared, global, and
// all instances), sorted for determinism.
func (ms *ModuleSet) Principals() []*Principal {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.principalsLocked()
}

func (ms *ModuleSet) principalsLocked() []*Principal {
	out := []*Principal{ms.shared, ms.global}
	var inst []*Principal
	for _, p := range ms.instances {
		inst = append(inst, p)
	}
	sort.Slice(inst, func(i, j int) bool { return inst[i].Name < inst[j].Name })
	return append(out, inst...)
}

// System is the global capability state: every loaded module's principal
// set. Transfer actions revoke from all principals system-wide, so the
// system is the unit that owns revocation.
type System struct {
	mu      sync.RWMutex
	modules map[string]*ModuleSet

	// Trusted is the core-kernel principal: all checks against it
	// succeed and grants to it are no-ops (the kernel is fully trusted,
	// §2.3).
	Trusted *Principal
}

// NewSystem returns an empty capability system.
func NewSystem() *System {
	return &System{
		modules: make(map[string]*ModuleSet),
		Trusted: &Principal{Module: "kernel", Kind: Shared},
	}
}

// LoadModule creates (or returns) the principal set for module name.
func (s *System) LoadModule(name string) *ModuleSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ms, ok := s.modules[name]; ok {
		return ms
	}
	ms := &ModuleSet{
		Module:    name,
		sys:       s,
		instances: make(map[mem.Addr]*Principal),
		aliases:   make(map[mem.Addr]*Principal),
	}
	ms.shared = newPrincipal(ms, name, 0, Shared)
	ms.global = newPrincipal(ms, name, 0, Global)
	s.modules[name] = ms
	return ms
}

// UnloadModule discards all principals and capabilities of module name.
func (s *System) UnloadModule(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.modules, name)
}

// Module returns the principal set for a loaded module.
func (s *System) Module(name string) (*ModuleSet, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ms, ok := s.modules[name]
	return ms, ok
}

// Modules returns the names of all loaded modules, sorted.
func (s *System) Modules() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.modules))
	for n := range s.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Grant gives capability c to principal p. Granting to the trusted
// kernel principal is a no-op: the kernel implicitly owns everything.
func (s *System) Grant(p *Principal, c Cap) {
	if p == nil || p.IsTrusted() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p.grant(c)
}

// Check reports whether principal p holds capability c, honoring the
// implicit-access rules of §3.1:
//
//   - every principal implicitly has the shared principal's capabilities;
//   - the global principal implicitly has every principal's capabilities;
//   - the trusted kernel principal holds everything.
//
// A nil principal means "running as the core kernel" and also passes.
func (s *System) Check(p *Principal, c Cap) bool {
	if p == nil || p.IsTrusted() {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ms := p.set
	switch p.Kind {
	case Global:
		ms.mu.Lock()
		for _, q := range ms.instances {
			if q.owns(c) {
				ms.mu.Unlock()
				return true
			}
		}
		ms.mu.Unlock()
		return ms.shared.owns(c) || ms.global.owns(c)
	case Shared:
		return ms.shared.owns(c)
	default:
		return p.owns(c) || ms.shared.owns(c)
	}
}

// OwnsDirectly reports whether p's own table holds c, with no implicit
// fallback. Used by tests and by transfer bookkeeping.
func (s *System) OwnsDirectly(p *Principal, c Cap) bool {
	if p == nil || p.IsTrusted() {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return p.owns(c)
}

// Revoke removes capability c from principal p only.
func (s *System) Revoke(p *Principal, c Cap) {
	if p == nil || p.IsTrusted() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p.revokeOverlap(c)
}

// RevokeAll removes capability c from every principal of every module in
// the system. This implements the transfer semantics of §3.3: "Transfer
// actions revoke the transferred capability from all principals in the
// system, rather than just from the immediate source", so that no copies
// remain and the referenced object can be reused safely.
func (s *System) RevokeAll(c Cap) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ms := range s.modules {
		if ms.shared.revokeOverlap(c) {
			n++
		}
		if ms.global.revokeOverlap(c) {
			n++
		}
		ms.mu.Lock()
		for _, p := range ms.instances {
			if p.revokeOverlap(c) {
				n++
			}
		}
		ms.mu.Unlock()
	}
	return n
}

// grantees traverses every principal of every module (in stable order)
// and collects those whose own table holds probe.
func (s *System) grantees(probe Cap) []*Principal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	for n := range s.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*Principal
	for _, n := range names {
		ms := s.modules[n]
		ms.mu.Lock()
		ps := ms.principalsLocked()
		ms.mu.Unlock()
		for _, p := range ps {
			if p.owns(probe) {
				out = append(out, p)
			}
		}
	}
	return out
}

// RefGrantees returns every principal that directly holds a REF(typ, addr)
// capability. Introspection for tests and audits: after a transfer-based
// REF handoff returns (e.g. the VFS writepage path), no module principal
// should appear here for the page.
func (s *System) RefGrantees(typ string, addr mem.Addr) []*Principal {
	return s.grantees(RefCap(typ, addr))
}

// WriteGrantees returns every principal that directly holds a WRITE
// capability covering addr. This is the slow path of writer-set
// tracking: "the actual contents of non-empty writer sets is computed by
// traversing a global list of principals" (§5).
func (s *System) WriteGrantees(addr mem.Addr) []*Principal {
	return s.grantees(WriteCap(addr, 1))
}

// Package caps implements LXFI's capability system (§3.2 of the paper).
//
// LXFI tracks three kinds of capabilities per module principal:
//
//   - WRITE(ptr, size): the principal may write any value into the
//     kernel memory region [ptr, ptr+size).
//   - REF(t, a): the principal may pass a as an argument to kernel
//     functions requiring a REF capability of type t (object ownership
//     without write access).
//   - CALL(a): the principal may call or jump to address a.
//
// WRITE capabilities live in a sorted interval index per (principal,
// shard): lookups binary-search the start-sorted entries and consult a
// prefix maximum of entry ends, so `owns` and `revokeOverlap` are
// O(log n) in the shard's entry count instead of scanning a hash
// bucket. The paper's 12-bit address masking survives as the shard hash
// (capability state is sharded by 4 KiB address bucket).
//
// Concurrency: simulated kernel threads run on their own goroutines, so
// the capability state is shared monitor state. It is guarded by
// address-hashed shard locks plus two directory locks:
//
//  1. shard[i].mu (RWMutex, i = bucket & mask) — the slice of every
//     principal's capability tables whose addresses hash to shard i.
//     Checks take one shard's read lock (the hot path); grant/revoke
//     take the write lock of every shard the capability's address range
//     covers. Multi-shard operations (spanning WRITE grants, WRITE
//     revocation, introspection snapshots) acquire shard locks in
//     ascending index order — the shard-ordering rule that keeps
//     multi-shard ops deadlock-free.
//  2. ModuleSet.mu (RWMutex) — a module's principal directory (the
//     instances and aliases maps). Acquired before any shard lock
//     (global-principal checks walk the directory under it), never
//     after one.
//
// The registry lock (System.regMu, the modules map) and the principal-
// snapshot lock (System.prinMu) are directory-level leaves ordered
// after ModuleSet.mu; no callback ever runs under any of these locks.
//
// Every mutation — grant, revoke, transfer revocation, module load/
// unload, instance drop — bumps a global capability epoch
// (System.Epoch). Per-thread check caches in internal/core validate
// against the epoch, so a revoked capability can never be served from a
// stale cache entry.
package caps

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lxfi/internal/mem"
)

// Kind identifies a capability type.
type Kind uint8

// The three capability kinds of §3.2.
const (
	Write Kind = iota
	Ref
	Call
)

func (k Kind) String() string {
	switch k {
	case Write:
		return "WRITE"
	case Ref:
		return "REF"
	case Call:
		return "CALL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Cap is a single capability.
type Cap struct {
	Kind    Kind
	Addr    mem.Addr
	Size    uint64 // WRITE only
	RefType string // REF only
}

// WriteCap constructs a WRITE(addr, size) capability.
func WriteCap(addr mem.Addr, size uint64) Cap { return Cap{Kind: Write, Addr: addr, Size: size} }

// RefCap constructs a REF(typ, addr) capability.
func RefCap(typ string, addr mem.Addr) Cap { return Cap{Kind: Ref, Addr: addr, RefType: typ} }

// CallCap constructs a CALL(addr) capability.
func CallCap(addr mem.Addr) Cap { return Cap{Kind: Call, Addr: addr} }

func (c Cap) String() string {
	switch c.Kind {
	case Write:
		return fmt.Sprintf("WRITE(%#x,%d)", uint64(c.Addr), c.Size)
	case Ref:
		return fmt.Sprintf("REF(%s,%#x)", c.RefType, uint64(c.Addr))
	case Call:
		return fmt.Sprintf("CALL(%#x)", uint64(c.Addr))
	}
	return "CAP(?)"
}

// bucketShift mirrors the paper's optimization: "LXFI reduces the number
// of insertions by masking the least significant bits of the address
// (the last 12 bits in practice) when calculating hash keys." Here the
// masked bucket picks the shard a capability's tables live in.
const bucketShift = 12

func bucketOf(a mem.Addr) mem.Addr { return a >> bucketShift }

type writeEntry struct {
	addr mem.Addr
	size uint64
}

func (w writeEntry) covers(addr mem.Addr, size uint64) bool {
	return w.addr <= addr && addr+mem.Addr(size) <= w.addr+mem.Addr(w.size)
}

func (w writeEntry) overlaps(addr mem.Addr, size uint64) bool {
	return w.addr < addr+mem.Addr(size) && addr < w.addr+mem.Addr(w.size)
}

type refKey struct {
	typ  string
	addr mem.Addr
}

// PrincipalKind distinguishes instance principals from the two special
// per-module principals of §3.1.
type PrincipalKind uint8

// Principal kinds.
const (
	// Instance principals correspond to one instance of the module's
	// abstraction (one socket, one block device, ...). They are named by
	// the address of the data structure representing the instance.
	Instance PrincipalKind = iota
	// Shared is the module's shared principal: capabilities stored here
	// are implicitly accessible to every other principal in the module.
	Shared
	// Global is the module's global principal: it implicitly has access
	// to the capabilities of all principals in the module.
	Global
)

func (k PrincipalKind) String() string {
	switch k {
	case Instance:
		return "instance"
	case Shared:
		return "shared"
	case Global:
		return "global"
	}
	return "?"
}

// prinShard is one shard's slice of a principal's three capability
// tables. The maps are allocated lazily: most principals only ever hold
// capabilities in a few shards.
type prinShard struct {
	writes intervalSet
	refs   map[refKey]struct{}
	calls  map[mem.Addr]struct{}
}

// Principal holds one principal's capability tables, split across the
// owning system's shards.
type Principal struct {
	Module string
	Name   mem.Addr // 0 for shared/global
	Kind   PrincipalKind

	set *ModuleSet // owning module's principal set (nil only for Trusted)

	shards []prinShard // len is the system's shard count (a power of two)
}

func newPrincipal(set *ModuleSet, module string, name mem.Addr, kind PrincipalKind) *Principal {
	n := 1
	if set != nil && set.sys != nil {
		n = set.sys.nshards
	}
	return &Principal{
		Module: module,
		Name:   name,
		Kind:   kind,
		set:    set,
		shards: make([]prinShard, n),
	}
}

// String renders the principal for diagnostics, e.g. "econet[#c0de]".
func (p *Principal) String() string {
	if p == nil {
		return "<kernel>"
	}
	switch p.Kind {
	case Shared:
		return p.Module + "[shared]"
	case Global:
		return p.Module + "[global]"
	}
	return fmt.Sprintf("%s[%#x]", p.Module, uint64(p.Name))
}

// IsTrusted reports whether p is the fully-trusted core kernel principal.
func (p *Principal) IsTrusted() bool { return p != nil && p.set == nil && p.shards == nil }

// shardIdx maps an address to the index of the shard its tables live in.
func (p *Principal) shardIdx(a mem.Addr) int {
	return int(bucketOf(a)) & (len(p.shards) - 1)
}

// eachWriteShard calls fn for every shard a WRITE range's tables touch.
// A range spanning at least as many buckets as there are shards wraps
// around the whole ring, so every shard is visited exactly once.
func (p *Principal) eachWriteShard(addr mem.Addr, size uint64, fn func(*prinShard)) {
	n := len(p.shards)
	first := bucketOf(addr)
	last := bucketOf(addr + mem.Addr(size) - 1)
	if span := uint64(last-first) + 1; span >= uint64(n) {
		for i := range p.shards {
			fn(&p.shards[i])
		}
		return
	}
	mask := mem.Addr(n - 1)
	for b := first; b <= last; b++ {
		fn(&p.shards[int(b&mask)])
	}
}

// grant inserts c into p's own tables. Caller holds the covering shard
// write locks (or exclusively owns a bare principal).
func (p *Principal) grant(c Cap) {
	switch c.Kind {
	case Write:
		if c.Size == 0 {
			return
		}
		e := writeEntry{addr: c.Addr, size: c.Size}
		p.eachWriteShard(c.Addr, c.Size, func(sh *prinShard) {
			sh.writes.insert(e)
		})
	case Ref:
		sh := &p.shards[p.shardIdx(c.Addr)]
		if sh.refs == nil {
			sh.refs = make(map[refKey]struct{})
		}
		sh.refs[refKey{c.RefType, c.Addr}] = struct{}{}
	case Call:
		sh := &p.shards[p.shardIdx(c.Addr)]
		if sh.calls == nil {
			sh.calls = make(map[mem.Addr]struct{})
		}
		sh.calls[c.Addr] = struct{}{}
	}
}

// owns checks p's own tables only (no shared fallback, no global sweep).
// Caller holds the read lock of the shard c.Addr hashes to; an entry
// covering c was inserted into every shard its range touches, so the
// probe address's shard is authoritative.
func (p *Principal) owns(c Cap) bool {
	sh := &p.shards[p.shardIdx(c.Addr)]
	switch c.Kind {
	case Write:
		return sh.writes.covers(c.Addr, c.Size)
	case Ref:
		_, ok := sh.refs[refKey{c.RefType, c.Addr}]
		return ok
	case Call:
		_, ok := sh.calls[c.Addr]
		return ok
	}
	return false
}

// revokeScratch pools the victim list WRITE revocation collects, so the
// transfer-heavy crossing paths stay allocation-free.
type revokeScratch struct{ victims []writeEntry }

var revokeScratchPool = sync.Pool{New: func() any { return new(revokeScratch) }}

// revokeOverlap removes capabilities matching c from p's own tables.
// For WRITE, any entry overlapping [c.Addr, c.Addr+c.Size) is removed
// entirely (the conservative direction: revocation may strip more than
// requested, never less). Caller holds every shard write lock for WRITE
// (victims may extend into shards outside the revoked range), or the
// single covering shard lock for REF/CALL.
func (p *Principal) revokeOverlap(c Cap) bool {
	switch c.Kind {
	case Write:
		if c.Size == 0 {
			return false
		}
		sc := revokeScratchPool.Get().(*revokeScratch)
		victims := sc.victims[:0]
		p.eachWriteShard(c.Addr, c.Size, func(sh *prinShard) {
			victims = sh.writes.appendOverlap(c.Addr, c.Size, victims)
		})
		removed := false
		for vi, v := range victims {
			// An entry spanning several shards was collected once per
			// shard; process each distinct victim once.
			dup := false
			for _, u := range victims[:vi] {
				if u == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			p.eachWriteShard(v.addr, v.size, func(sh *prinShard) {
				if sh.writes.remove(v) {
					removed = true
				}
			})
		}
		sc.victims = victims[:0]
		revokeScratchPool.Put(sc)
		return removed
	case Ref:
		sh := &p.shards[p.shardIdx(c.Addr)]
		k := refKey{c.RefType, c.Addr}
		if _, ok := sh.refs[k]; ok {
			delete(sh.refs, k)
			return true
		}
	case Call:
		sh := &p.shards[p.shardIdx(c.Addr)]
		if _, ok := sh.calls[c.Addr]; ok {
			delete(sh.calls, c.Addr)
			return true
		}
	}
	return false
}

// lockTables takes every shard's read lock (in ascending order) so
// introspection can walk p's tables while other threads grant and
// revoke. The trusted principal (and test-built bare principals) have
// no owning system and need no lock.
func (p *Principal) lockTables() func() {
	if p == nil || p.set == nil || p.set.sys == nil {
		return func() {}
	}
	s := p.set.sys
	for i := range s.shards {
		s.shards[i].mu.RLock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.RUnlock()
		}
	}
}

// WriteRegions returns the distinct WRITE capability regions held
// directly by p, sorted by address. Used by introspection and tests.
func (p *Principal) WriteRegions() []Cap {
	defer p.lockTables()()
	seen := map[writeEntry]bool{}
	var out []Cap
	for i := range p.shards {
		for _, e := range p.shards[i].writes.ents {
			if !seen[e] {
				seen[e] = true
				out = append(out, WriteCap(e.addr, e.size))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// CallTargets returns the CALL capability targets held directly by p.
func (p *Principal) CallTargets() []mem.Addr {
	defer p.lockTables()()
	var out []mem.Addr
	for i := range p.shards {
		for a := range p.shards[i].calls {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RefCaps returns the REF capabilities held directly by p.
func (p *Principal) RefCaps() []Cap {
	defer p.lockTables()()
	var out []Cap
	for i := range p.shards {
		for k := range p.shards[i].refs {
			out = append(out, RefCap(k.typ, k.addr))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].RefType < out[j].RefType
	})
	return out
}

// ShardWrites is one shard's raw WRITE-capability index as coredump
// snapshots see it: the sorted entries plus the prefix-maximum column,
// exposed so an offline validator can re-check the index invariants
// (sortedness, maxEnd[i] = max of entry ends up to i) without access to
// the live structure.
type ShardWrites struct {
	Writes []Cap
	MaxEnd []mem.Addr
}

// DumpShardWrites copies out every shard's WRITE index verbatim, in
// shard order. A capability whose range spans several buckets is
// inserted into every shard it touches, so the same entry may appear in
// more than one shard — consumers diffing totals must dedupe.
func (p *Principal) DumpShardWrites() []ShardWrites {
	defer p.lockTables()()
	out := make([]ShardWrites, len(p.shards))
	for i := range p.shards {
		is := &p.shards[i].writes
		if len(is.ents) == 0 {
			continue
		}
		sw := ShardWrites{
			Writes: make([]Cap, len(is.ents)),
			MaxEnd: append([]mem.Addr(nil), is.maxEnd...),
		}
		for j, e := range is.ents {
			sw.Writes[j] = WriteCap(e.addr, e.size)
		}
		out[i] = sw
	}
	return out
}

// ModuleSet holds all principals belonging to one loaded module.
type ModuleSet struct {
	Module string

	sys *System // owning system (shard locks, principal snapshot)

	// mu guards instances and aliases. Lock order: before any shard
	// lock (global checks walk the directory, then probe tables) and
	// before prinMu (instance creation publishes to the snapshot).
	mu        sync.RWMutex
	shared    *Principal
	global    *Principal
	instances map[mem.Addr]*Principal
	aliases   map[mem.Addr]*Principal // principal name -> canonical principal
}

// Shared returns the module's shared principal.
func (ms *ModuleSet) Shared() *Principal { return ms.shared }

// Global returns the module's global principal.
func (ms *ModuleSet) Global() *Principal { return ms.global }

// Instance returns the principal named by addr, creating it on first
// use. Aliases established with Alias resolve to their canonical
// principal.
func (ms *ModuleSet) Instance(addr mem.Addr) *Principal {
	// Fast path: the name already resolves.
	ms.mu.RLock()
	if p, ok := ms.aliases[addr]; ok {
		ms.mu.RUnlock()
		return p
	}
	ms.mu.RUnlock()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.instanceLocked(addr)
}

func (ms *ModuleSet) instanceLocked(addr mem.Addr) *Principal {
	if p, ok := ms.aliases[addr]; ok {
		return p
	}
	p, ok := ms.instances[addr]
	if !ok {
		p = newPrincipal(ms, ms.Module, addr, Instance)
		ms.instances[addr] = p
		ms.aliases[addr] = p
		ms.sys.addPrin(p)
	}
	return p
}

// Lookup returns the principal for addr without creating one.
func (ms *ModuleSet) Lookup(addr mem.Addr) (*Principal, bool) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	p, ok := ms.aliases[addr]
	return p, ok
}

// Alias makes alias a second name for the principal currently named by
// existing (lxfi_princ_alias in the paper). The existing principal is
// created if absent.
func (ms *ModuleSet) Alias(existing, alias mem.Addr) error {
	if alias == 0 {
		return fmt.Errorf("caps: cannot alias the NULL name")
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	p := ms.instanceLocked(existing)
	if cur, ok := ms.aliases[alias]; ok && cur != p {
		return fmt.Errorf("caps: name %#x already bound to %s", uint64(alias), cur)
	}
	ms.aliases[alias] = p
	return nil
}

// DropInstance removes the principal named addr (and every alias of it)
// along with all of its capabilities; called when the instance's backing
// object is destroyed. Dropping bumps the capability epoch: a check
// cache warmed while the principal lived must not answer for a recycled
// name.
func (ms *ModuleSet) DropInstance(addr mem.Addr) {
	ms.mu.Lock()
	p, ok := ms.aliases[addr]
	if !ok {
		ms.mu.Unlock()
		return
	}
	for name, q := range ms.aliases {
		if q == p {
			delete(ms.aliases, name)
		}
	}
	delete(ms.instances, p.Name)
	ms.sys.removePrins(func(q *Principal) bool { return q == p })
	ms.mu.Unlock()
	ms.sys.bumpEpoch()
}

// Principals returns all principals of the module (shared, global, and
// all instances), sorted for determinism.
func (ms *ModuleSet) Principals() []*Principal {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return ms.principalsLocked()
}

func (ms *ModuleSet) principalsLocked() []*Principal {
	out := []*Principal{ms.shared, ms.global}
	var inst []*Principal
	for _, p := range ms.instances {
		inst = append(inst, p)
	}
	sort.Slice(inst, func(i, j int) bool { return inst[i].Name < inst[j].Name })
	return append(out, inst...)
}

// capShard is one lock of the sharded capability state, padded so
// neighboring shard locks do not share a cache line under contention.
type capShard struct {
	mu sync.RWMutex
	_  [40]byte
}

// maxShards bounds the shard count so shard sets fit a single uint64
// bitmap (and so a WRITE revoke locking every shard stays cheap).
const maxShards = 64

// pickShardCount returns the smallest power of two covering
// GOMAXPROCS, clamped to [1, maxShards].
func pickShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < maxShards {
		s <<= 1
	}
	return s
}

// System is the global capability state: every loaded module's principal
// set. Transfer actions revoke from all principals system-wide, so the
// system is the unit that owns revocation.
type System struct {
	nshards int
	mask    mem.Addr
	shards  []capShard

	// epoch counts capability mutations. Per-thread check caches carry
	// the epoch they were filled under and treat any mismatch as a miss,
	// so no revoked capability is ever served from a cache.
	epoch atomic.Uint64

	regMu   sync.RWMutex
	modules map[string]*ModuleSet

	// prins is a copy-on-write snapshot of every principal in the
	// system, sorted (module, kind, name) — the traversal RevokeAll and
	// the grantee sweeps use without taking directory locks. prinMu
	// serializes writers.
	prinMu sync.Mutex
	prins  atomic.Pointer[[]*Principal]

	// Trusted is the core-kernel principal: all checks against it
	// succeed and grants to it are no-ops (the kernel is fully trusted,
	// §2.3).
	Trusted *Principal
}

// NewSystem returns an empty capability system sharded for the host
// (one shard per GOMAXPROCS slot, rounded up to a power of two).
func NewSystem() *System {
	return NewSystemWithShards(pickShardCount())
}

// NewSystemWithShards returns an empty capability system with an
// explicit shard count (rounded up to a power of two, clamped to
// [1, 64]). Tests and benchmarks use it to exercise multi-shard
// behavior regardless of the host's core count.
func NewSystemWithShards(n int) *System {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n && p < maxShards {
		p <<= 1
	}
	n = p
	s := &System{
		nshards: n,
		mask:    mem.Addr(n - 1),
		shards:  make([]capShard, n),
		modules: make(map[string]*ModuleSet),
		Trusted: &Principal{Module: "kernel", Kind: Shared},
	}
	empty := []*Principal{}
	s.prins.Store(&empty)
	return s
}

// ShardCount returns the number of capability shards (diagnostics and
// the crossing microbenchmark report).
func (s *System) ShardCount() int { return s.nshards }

// Epoch returns the current capability epoch. Every grant, revoke,
// transfer revocation, module load/unload, and instance drop advances
// it; caches keyed to an older epoch must revalidate.
func (s *System) Epoch() uint64 { return s.epoch.Load() }

func (s *System) bumpEpoch() { s.epoch.Add(1) }

func (s *System) shardOf(a mem.Addr) int { return int(bucketOf(a) & s.mask) }

// allShardBits is the bitmap selecting every shard.
func (s *System) allShardBits() uint64 {
	if s.nshards == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << s.nshards) - 1
}

// shardBits returns the bitmap of shards capability c's tables touch.
func (s *System) shardBits(c Cap) uint64 {
	if c.Kind != Write {
		return uint64(1) << s.shardOf(c.Addr)
	}
	if c.Size == 0 {
		return 0
	}
	first := bucketOf(c.Addr)
	last := bucketOf(c.Addr + mem.Addr(c.Size) - 1)
	if span := uint64(last-first) + 1; span >= uint64(s.nshards) {
		return s.allShardBits()
	}
	var bits uint64
	for b := first; b <= last; b++ {
		bits |= uint64(1) << (b & s.mask)
	}
	return bits
}

// lockShards write-locks the selected shards in ascending index order —
// the shard-ordering rule every multi-shard operation follows.
func (s *System) lockShards(bits uint64) {
	for i := 0; bits != 0; i, bits = i+1, bits>>1 {
		if bits&1 != 0 {
			s.shards[i].mu.Lock()
		}
	}
}

func (s *System) unlockShards(bits uint64) {
	for i := 0; bits != 0; i, bits = i+1, bits>>1 {
		if bits&1 != 0 {
			s.shards[i].mu.Unlock()
		}
	}
}

// addPrin publishes p in the sorted copy-on-write principal snapshot.
func (s *System) addPrin(p *Principal) {
	s.prinMu.Lock()
	defer s.prinMu.Unlock()
	old := *s.prins.Load()
	i := sort.Search(len(old), func(j int) bool { return prinLess(p, old[j]) })
	lst := make([]*Principal, len(old)+1)
	copy(lst, old[:i])
	lst[i] = p
	copy(lst[i+1:], old[i:])
	s.prins.Store(&lst)
}

// removePrins drops every principal matching the predicate from the
// snapshot.
func (s *System) removePrins(match func(*Principal) bool) {
	s.prinMu.Lock()
	defer s.prinMu.Unlock()
	old := *s.prins.Load()
	lst := make([]*Principal, 0, len(old))
	for _, q := range old {
		if !match(q) {
			lst = append(lst, q)
		}
	}
	s.prins.Store(&lst)
}

func prinRank(k PrincipalKind) int {
	switch k {
	case Shared:
		return 0
	case Global:
		return 1
	}
	return 2
}

func prinLess(a, b *Principal) bool {
	if a.Module != b.Module {
		return a.Module < b.Module
	}
	if ra, rb := prinRank(a.Kind), prinRank(b.Kind); ra != rb {
		return ra < rb
	}
	return a.Name < b.Name
}

// LoadModule creates (or returns) the principal set for module name.
func (s *System) LoadModule(name string) *ModuleSet {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if ms, ok := s.modules[name]; ok {
		return ms
	}
	ms := &ModuleSet{
		Module:    name,
		sys:       s,
		instances: make(map[mem.Addr]*Principal),
		aliases:   make(map[mem.Addr]*Principal),
	}
	ms.shared = newPrincipal(ms, name, 0, Shared)
	ms.global = newPrincipal(ms, name, 0, Global)
	s.modules[name] = ms
	s.addPrin(ms.shared)
	s.addPrin(ms.global)
	s.bumpEpoch()
	return ms
}

// UnloadModule discards all principals and capabilities of module name.
func (s *System) UnloadModule(name string) {
	s.regMu.Lock()
	ms, ok := s.modules[name]
	if ok {
		delete(s.modules, name)
	}
	s.regMu.Unlock()
	if !ok {
		return
	}
	s.removePrins(func(q *Principal) bool { return q.set == ms })
	s.bumpEpoch()
}

// Module returns the principal set for a loaded module.
func (s *System) Module(name string) (*ModuleSet, bool) {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	ms, ok := s.modules[name]
	return ms, ok
}

// Modules returns the names of all loaded modules, sorted.
func (s *System) Modules() []string {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	out := make([]string, 0, len(s.modules))
	for n := range s.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Grant gives capability c to principal p. Granting to the trusted
// kernel principal is a no-op: the kernel implicitly owns everything.
func (s *System) Grant(p *Principal, c Cap) {
	if p == nil || p.IsTrusted() {
		return
	}
	bits := s.shardBits(c)
	s.lockShards(bits)
	p.grant(c)
	s.unlockShards(bits)
	s.bumpEpoch()
}

// Check reports whether principal p holds capability c, honoring the
// implicit-access rules of §3.1:
//
//   - every principal implicitly has the shared principal's capabilities;
//   - the global principal implicitly has every principal's capabilities;
//   - the trusted kernel principal holds everything.
//
// A nil principal means "running as the core kernel" and also passes.
// The hot path takes exactly one shard read lock and performs no
// allocation.
func (s *System) Check(p *Principal, c Cap) bool {
	if p == nil || p.IsTrusted() {
		return true
	}
	ms := p.set
	sh := &s.shards[s.shardOf(c.Addr)]
	switch p.Kind {
	case Global:
		ms.mu.RLock()
		sh.mu.RLock()
		ok := ms.shared.owns(c) || ms.global.owns(c)
		if !ok {
			for _, q := range ms.instances {
				if q.owns(c) {
					ok = true
					break
				}
			}
		}
		sh.mu.RUnlock()
		ms.mu.RUnlock()
		return ok
	case Shared:
		sh.mu.RLock()
		ok := ms.shared.owns(c)
		sh.mu.RUnlock()
		return ok
	default:
		sh.mu.RLock()
		ok := p.owns(c) || ms.shared.owns(c)
		sh.mu.RUnlock()
		return ok
	}
}

// OwnsDirectly reports whether p's own table holds c, with no implicit
// fallback. Used by tests and by transfer bookkeeping.
func (s *System) OwnsDirectly(p *Principal, c Cap) bool {
	if p == nil || p.IsTrusted() {
		return true
	}
	sh := &s.shards[s.shardOf(c.Addr)]
	sh.mu.RLock()
	ok := p.owns(c)
	sh.mu.RUnlock()
	return ok
}

// revokeBits returns the shard set a revocation of c must lock: every
// shard for WRITE (an overlapping victim entry may extend into shards
// outside the revoked range), the single covering shard otherwise.
func (s *System) revokeBits(c Cap) uint64 {
	if c.Kind == Write {
		return s.allShardBits()
	}
	return uint64(1) << s.shardOf(c.Addr)
}

// Revoke removes capability c from principal p only.
func (s *System) Revoke(p *Principal, c Cap) {
	if p == nil || p.IsTrusted() {
		return
	}
	bits := s.revokeBits(c)
	s.lockShards(bits)
	p.revokeOverlap(c)
	s.unlockShards(bits)
	s.bumpEpoch()
}

// RevokeAll removes capability c from every principal of every module in
// the system. This implements the transfer semantics of §3.3: "Transfer
// actions revoke the transferred capability from all principals in the
// system, rather than just from the immediate source", so that no copies
// remain and the referenced object can be reused safely. The principal
// snapshot is traversed under the relevant shard locks, so no check can
// observe a half-revoked capability within a shard.
func (s *System) RevokeAll(c Cap) int {
	bits := s.revokeBits(c)
	s.lockShards(bits)
	// The snapshot is loaded after the shard locks are held: any grant
	// that completed before our acquisition (including one to a freshly
	// created principal) published both the principal and its tables, so
	// the sweep cannot miss a holder the way a pre-lock snapshot could.
	prins := *s.prins.Load()
	n := 0
	for _, p := range prins {
		if p.revokeOverlap(c) {
			n++
		}
	}
	s.unlockShards(bits)
	s.bumpEpoch()
	return n
}

// grantees traverses the principal snapshot (already in stable order)
// and collects those whose own table holds probe.
func (s *System) grantees(probe Cap) []*Principal {
	sh := &s.shards[s.shardOf(probe.Addr)]
	sh.mu.RLock()
	// Snapshot after the lock, for the same reason as RevokeAll: a
	// writer granted before our acquisition must be visible to the
	// writer-set sweep behind indirect-call CFI.
	prins := *s.prins.Load()
	var out []*Principal
	for _, p := range prins {
		if p.owns(probe) {
			out = append(out, p)
		}
	}
	sh.mu.RUnlock()
	return out
}

// RefGrantees returns every principal that directly holds a REF(typ, addr)
// capability. Introspection for tests and audits: after a transfer-based
// REF handoff returns (e.g. the VFS writepage path), no module principal
// should appear here for the page.
func (s *System) RefGrantees(typ string, addr mem.Addr) []*Principal {
	return s.grantees(RefCap(typ, addr))
}

// WriteGrantees returns every principal that directly holds a WRITE
// capability covering addr. This is the slow path of writer-set
// tracking: "the actual contents of non-empty writer sets is computed by
// traversing a global list of principals" (§5).
func (s *System) WriteGrantees(addr mem.Addr) []*Principal {
	return s.grantees(WriteCap(addr, 1))
}

package caps

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"lxfi/internal/mem"
)

// TestDifferentialShardCounts drives systems sharded 1/2/8/64 ways with
// one random operation stream and requires identical answers — shard
// assignment and the per-shard interval index must be invisible to
// semantics. (The host picks its own shard count from GOMAXPROCS, so
// without this test a single-core machine would never exercise the
// multi-shard paths.)
func TestDifferentialShardCounts(t *testing.T) {
	type op struct {
		Kind  uint8 // 0 grant, 1 revokeAll, 2 revoke, 3..: check
		Off   uint16
		Size  uint16
		Probe uint16
	}
	shardCounts := []int{1, 2, 8, 64}
	f := func(ops []op) bool {
		systems := make([]*System, len(shardCounts))
		prins := make([]*Principal, len(shardCounts))
		for i, n := range shardCounts {
			systems[i] = NewSystemWithShards(n)
			prins[i] = systems[i].LoadModule("m").Instance(0x1)
		}
		base := mem.Addr(0xffff880000000000)
		for _, o := range ops {
			addr := base + mem.Addr(o.Off)*64
			size := uint64(o.Size%20000) + 1 // up to ~5 buckets, crosses shards
			switch o.Kind % 4 {
			case 0:
				for i := range systems {
					systems[i].Grant(prins[i], WriteCap(addr, size))
				}
			case 1:
				var want int
				for i := range systems {
					n := systems[i].RevokeAll(WriteCap(addr, size))
					if i == 0 {
						want = n
					} else if n != want {
						return false
					}
				}
			case 2:
				for i := range systems {
					systems[i].Revoke(prins[i], WriteCap(addr, size))
				}
			default:
				probe := base + mem.Addr(o.Probe)*64
				psize := uint64(o.Probe%256) + 1
				var want bool
				for i := range systems {
					got := systems[i].Check(prins[i], WriteCap(probe, psize))
					if i == 0 {
						want = got
					} else if got != want {
						return false
					}
				}
			}
		}
		// Full sweep comparison at the end, including multi-bucket probes.
		for off := 0; off < 1<<15; off += 512 {
			a := base + mem.Addr(off)
			for _, sz := range []uint64{1, 8, 4096, 9000} {
				want := systems[0].Check(prins[0], WriteCap(a, sz))
				for i := 1; i < len(systems); i++ {
					if systems[i].Check(prins[i], WriteCap(a, sz)) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEpochAdvancesOnMutation pins the invalidation contract the
// per-thread check caches rely on: every mutating operation must move
// the epoch, and read paths must not.
func TestEpochAdvancesOnMutation(t *testing.T) {
	s := NewSystemWithShards(8)
	ms := s.LoadModule("m")
	p := ms.Instance(0x10)
	c := WriteCap(0xffff880000000000, 64)

	step := func(name string, mutates bool, fn func()) {
		before := s.Epoch()
		fn()
		after := s.Epoch()
		if mutates && after == before {
			t.Fatalf("%s did not bump the epoch", name)
		}
		if !mutates && after != before {
			t.Fatalf("%s bumped the epoch (read path)", name)
		}
	}
	step("Grant", true, func() { s.Grant(p, c) })
	step("Check", false, func() { s.Check(p, c) })
	step("OwnsDirectly", false, func() { s.OwnsDirectly(p, c) })
	step("WriteGrantees", false, func() { s.WriteGrantees(c.Addr) })
	step("Revoke", true, func() { s.Revoke(p, c) })
	step("Grant2", true, func() { s.Grant(p, c) })
	step("RevokeAll", true, func() { s.RevokeAll(c) })
	step("DropInstance", true, func() { ms.DropInstance(0x10) })
	step("UnloadModule", true, func() { s.UnloadModule("m") })
}

// TestConcurrentShardedGrantRevoke hammers the sharded tables from many
// goroutines, each owning a disjoint address range: after its own
// revoke completes, a goroutine must never see the capability again,
// regardless of the churn its siblings generate on other shards. Run
// under -race in CI's concurrency battery.
func TestConcurrentShardedGrantRevoke(t *testing.T) {
	s := NewSystemWithShards(8)
	ms := s.LoadModule("m")
	const workers = 8
	const rounds = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := ms.Instance(mem.Addr(0x100 + w))
			base := mem.Addr(0xffff880000000000) + mem.Addr(w)*mem.Addr(1<<20)
			for i := 0; i < rounds; i++ {
				c := WriteCap(base+mem.Addr(i%7)*8192, uint64(i%3)*4096+64)
				s.Grant(p, c)
				if !s.Check(p, c) {
					errs <- fmt.Errorf("worker %d round %d: granted cap not visible", w, i)
					return
				}
				s.RevokeAll(c)
				if s.Check(p, c) {
					errs <- fmt.Errorf("worker %d round %d: revoked cap still passes", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Package layout defines struct layouts for kernel objects that live in
// the simulated address space.
//
// The original LXFI operates on real C structs; annotations default
// capability sizes to sizeof(*ptr). Here, kernel objects (task_struct,
// sk_buff, net_device, ...) are laid out explicitly in simulated memory,
// and this registry is the single source of truth for field offsets and
// for the sizeof() resolution used by annotation actions.
package layout

import (
	"fmt"
	"sort"
)

// Field describes one struct member.
type Field struct {
	Name string
	Off  uint64
	Size uint64
}

// Struct is a named layout.
type Struct struct {
	Name   string
	Size   uint64
	fields map[string]Field
	order  []string
}

// Off returns the offset of the named field; it panics on unknown
// fields, which indicates a programming error in the simulated kernel.
func (s *Struct) Off(field string) uint64 {
	f, ok := s.fields[field]
	if !ok {
		panic(fmt.Sprintf("layout: %s has no field %q", s.Name, field))
	}
	return f.Off
}

// Field returns the named field.
func (s *Struct) Field(name string) (Field, bool) {
	f, ok := s.fields[name]
	return f, ok
}

// Fields returns all fields in declaration order.
func (s *Struct) Fields() []Field {
	out := make([]Field, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.fields[n])
	}
	return out
}

// Registry holds all struct layouts of the simulated kernel.
type Registry struct {
	m map[string]*Struct
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]*Struct)} }

// Define registers a layout whose fields are packed sequentially:
// each (name, size) pair is placed at the next 8-byte-aligned offset for
// sizes >= 8 and at natural alignment otherwise. It returns the struct.
// Defining the same name twice panics.
func (r *Registry) Define(name string, fields ...Field) *Struct {
	if _, dup := r.m[name]; dup {
		panic("layout: duplicate struct " + name)
	}
	s := &Struct{Name: name, fields: make(map[string]Field)}
	var off uint64
	for _, f := range fields {
		align := f.Size
		if align > 8 || align == 0 {
			align = 8
		}
		off = (off + align - 1) &^ (align - 1)
		f.Off = off
		off += f.Size
		if _, dup := s.fields[f.Name]; dup {
			panic(fmt.Sprintf("layout: duplicate field %s.%s", name, f.Name))
		}
		s.fields[f.Name] = f
		s.order = append(s.order, f.Name)
	}
	s.Size = (off + 7) &^ 7
	r.m[name] = s
	return s
}

// DefineRaw registers a layout with explicit offsets and total size.
func (r *Registry) DefineRaw(name string, size uint64, fields ...Field) *Struct {
	if _, dup := r.m[name]; dup {
		panic("layout: duplicate struct " + name)
	}
	s := &Struct{Name: name, Size: size, fields: make(map[string]Field)}
	for _, f := range fields {
		s.fields[f.Name] = f
		s.order = append(s.order, f.Name)
	}
	r.m[name] = s
	return s
}

// Get returns the named layout.
func (r *Registry) Get(name string) (*Struct, bool) {
	s, ok := r.m[name]
	return s, ok
}

// MustGet returns the named layout or panics.
func (r *Registry) MustGet(name string) *Struct {
	s, ok := r.m[name]
	if !ok {
		panic("layout: unknown struct " + name)
	}
	return s
}

// Sizeof returns the size of the named struct, implementing the
// "defaults to sizeof(*ptr)" rule of the annotation grammar. Unknown
// names report ok=false.
func (r *Registry) Sizeof(name string) (uint64, bool) {
	s, ok := r.m[name]
	if !ok {
		return 0, false
	}
	return s.Size, true
}

// Names returns all registered struct names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// F is shorthand for constructing a Field with a size.
func F(name string, size uint64) Field { return Field{Name: name, Size: size} }

package layout

import "testing"

func TestDefineSequential(t *testing.T) {
	r := NewRegistry()
	s := r.Define("struct task_struct",
		F("pid", 8), F("uid", 8), F("flags", 4), F("state", 4), F("comm", 16))
	if s.Off("pid") != 0 || s.Off("uid") != 8 || s.Off("flags") != 16 || s.Off("state") != 20 {
		t.Fatalf("offsets: pid=%d uid=%d flags=%d state=%d",
			s.Off("pid"), s.Off("uid"), s.Off("flags"), s.Off("state"))
	}
	// comm (size 16) aligns to 8 -> offset 24, total 40.
	if s.Off("comm") != 24 {
		t.Fatalf("comm off = %d", s.Off("comm"))
	}
	if s.Size != 40 {
		t.Fatalf("size = %d", s.Size)
	}
}

func TestAlignmentPadding(t *testing.T) {
	r := NewRegistry()
	s := r.Define("s", F("a", 1), F("b", 8), F("c", 2), F("d", 4))
	if s.Off("a") != 0 || s.Off("b") != 8 || s.Off("c") != 16 || s.Off("d") != 20 {
		t.Fatalf("offsets: %d %d %d %d", s.Off("a"), s.Off("b"), s.Off("c"), s.Off("d"))
	}
	if s.Size != 24 { // rounded to 8
		t.Fatalf("size = %d", s.Size)
	}
}

func TestDefineRaw(t *testing.T) {
	r := NewRegistry()
	s := r.DefineRaw("raw", 128, Field{Name: "x", Off: 100, Size: 8})
	if s.Size != 128 || s.Off("x") != 100 {
		t.Fatal("raw layout broken")
	}
}

func TestSizeofAndLookup(t *testing.T) {
	r := NewRegistry()
	r.Define("struct sk_buff", F("data", 8), F("len", 8))
	if sz, ok := r.Sizeof("struct sk_buff"); !ok || sz != 16 {
		t.Fatalf("sizeof = %d, %v", sz, ok)
	}
	if _, ok := r.Sizeof("struct nope"); ok {
		t.Fatal("unknown struct resolved")
	}
	if _, ok := r.Get("struct sk_buff"); !ok {
		t.Fatal("Get failed")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "struct sk_buff" {
		t.Fatalf("names = %v", names)
	}
}

func TestFieldsOrderAndLookup(t *testing.T) {
	r := NewRegistry()
	s := r.Define("s", F("z", 8), F("a", 8))
	fs := s.Fields()
	if len(fs) != 2 || fs[0].Name != "z" || fs[1].Name != "a" {
		t.Fatalf("fields = %v", fs)
	}
	if _, ok := s.Field("a"); !ok {
		t.Fatal("Field lookup failed")
	}
	if _, ok := s.Field("q"); ok {
		t.Fatal("ghost field")
	}
}

func TestPanics(t *testing.T) {
	r := NewRegistry()
	r.Define("dup", F("x", 8))
	assertPanics(t, "duplicate struct", func() { r.Define("dup") })
	assertPanics(t, "duplicate field", func() { r.Define("s2", F("x", 8), F("x", 8)) })
	assertPanics(t, "unknown struct", func() { r.MustGet("ghost") })
	s := r.MustGet("dup")
	assertPanics(t, "unknown field", func() { s.Off("ghost") })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

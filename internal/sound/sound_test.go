package sound_test

import (
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/sound"
)

func TestPlaybackBufferBounds(t *testing.T) {
	k := kernel.New()
	s := sound.Init(k)
	th := k.Sys.NewThread("t")
	// A card with no ops table cannot be created; build a toy driver.
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "toysnd",
		Imports:  []string{"kmalloc"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "open", Type: sound.PcmOpen,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					card := args[0]
					buf, _ := th.CallKernel("kmalloc", 128)
					_ = th.WriteU64(s.CardField(toAddr(card), "buf"), buf)
					_ = th.WriteU64(s.CardField(toAddr(card), "buflen"), 128)
					return 0
				}},
			{Name: "trigger", Type: sound.PcmTrigger,
				Impl: func(th *core.Thread, args []uint64) uint64 { return 0 }},
			{Name: "pointer", Type: sound.PcmPointer,
				Impl: func(th *core.Thread, args []uint64) uint64 { return 11 }},
			{Name: "close", Type: sound.PcmClose,
				Impl: func(th *core.Thread, args []uint64) uint64 { return 0 }},
			{Name: "init", Impl: func(th *core.Thread, args []uint64) uint64 {
				mod := th.CurrentModule()
				for slot, fn := range map[string]string{
					"open": "open", "close": "close", "trigger": "trigger", "pointer": "pointer",
				} {
					if err := th.WriteU64(s.OpsSlot(mod.Data, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
						return 1
					}
				}
				return 0
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ret, err := th.CallModule(m, "init"); err != nil || ret != 0 {
		t.Fatalf("init: %d %v", ret, err)
	}
	card, err := s.NewCard(th, m.Data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Playback(th, card, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Playback(th, card, make([]byte, 256)); err == nil {
		t.Fatal("oversize playback accepted")
	}
	pos, err := s.Pointer(th, card)
	if err != nil || pos != 11 {
		t.Fatalf("pointer = %d, %v", pos, err)
	}
	if err := s.Close(th, card); err != nil {
		t.Fatal(err)
	}
}

func toAddr(v uint64) mem.Addr { return mem.Addr(v) }

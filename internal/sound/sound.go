// Package sound implements a minimal ALSA-like substrate for the two
// sound-card driver modules of Figure 9 (snd-intel8x0 and snd-ens1370):
// snd_card objects, the annotated snd_pcm_ops interface, and the
// kernel-side playback path.
package sound

import (
	"fmt"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
)

// SndCard is the layout name of struct snd_card.
const SndCard = "struct snd_card"

// Function-pointer types of the snd_pcm_ops interface.
const (
	PcmOpen    = "snd_pcm_ops.open"
	PcmClose   = "snd_pcm_ops.close"
	PcmTrigger = "snd_pcm_ops.trigger"
	PcmPointer = "snd_pcm_ops.pointer"
)

// Trigger commands.
const (
	TriggerStart = 1
	TriggerStop  = 2
)

// Sound is the simulated sound core.
type Sound struct {
	K    *kernel.Kernel
	card *layout.Struct
	pcm  *layout.Struct

	// Bound indirect-call gates for the snd_pcm_ops slots.
	gOpen    *core.IndGate
	gClose   *core.IndGate
	gTrigger *core.IndGate
	gPointer *core.IndGate
}

// Init builds the sound core.
func Init(k *kernel.Kernel) *Sound {
	s := &Sound{K: k}
	sys := k.Sys
	s.card = sys.Layouts.Define(SndCard,
		layout.F("ops", 8),
		layout.F("buf", 8),
		layout.F("buflen", 8),
		layout.F("pos", 8),
		layout.F("playing", 8),
	)
	s.pcm = sys.Layouts.Define("struct snd_pcm_ops",
		layout.F("open", 8),
		layout.F("close", 8),
		layout.F("trigger", 8),
		layout.F("pointer", 8),
	)

	sys.RegisterFPtrType(PcmOpen,
		[]core.Param{core.P("card", "struct snd_card *")},
		"principal(card) pre(copy(write, card))")
	sys.RegisterFPtrType(PcmClose,
		[]core.Param{core.P("card", "struct snd_card *")},
		"principal(card)")
	sys.RegisterFPtrType(PcmTrigger,
		[]core.Param{core.P("card", "struct snd_card *"), core.P("cmd", "int")},
		"principal(card)")
	sys.RegisterFPtrType(PcmPointer,
		[]core.Param{core.P("card", "struct snd_card *")},
		"principal(card)")
	s.gOpen = sys.BindIndirect(PcmOpen)
	s.gClose = sys.BindIndirect(PcmClose)
	s.gTrigger = sys.BindIndirect(PcmTrigger)
	s.gPointer = sys.BindIndirect(PcmPointer)
	return s
}

// CardField returns the address of a snd_card field.
func (s *Sound) CardField(card mem.Addr, f string) mem.Addr {
	return card + mem.Addr(s.card.Off(f))
}

// OpsSlot returns the address of a snd_pcm_ops slot.
func (s *Sound) OpsSlot(ops mem.Addr, f string) mem.Addr {
	return ops + mem.Addr(s.pcm.Off(f))
}

// NewCard allocates a card bound to the given module ops table and runs
// the driver's open callback through the annotated indirect call.
func (s *Sound) NewCard(t *core.Thread, ops mem.Addr) (mem.Addr, error) {
	card, err := s.K.Sys.Slab.Alloc(s.card.Size)
	if err != nil {
		return 0, err
	}
	if err := s.K.Sys.AS.WriteU64(s.CardField(card, "ops"), uint64(ops)); err != nil {
		return 0, err
	}
	ret, err := s.gOpen.Call1(t, s.OpsSlot(ops, "open"), uint64(card))
	if err != nil {
		return 0, err
	}
	if kernel.IsErr(ret) {
		_ = s.K.Sys.Slab.Free(card)
		return 0, fmt.Errorf("sound: open failed: errno %d", -int64(ret))
	}
	return card, nil
}

// Playback copies PCM samples into the card's DMA buffer and triggers
// the driver.
func (s *Sound) Playback(t *core.Thread, card mem.Addr, samples []byte) error {
	as := s.K.Sys.AS
	buf, _ := as.ReadU64(s.CardField(card, "buf"))
	buflen, _ := as.ReadU64(s.CardField(card, "buflen"))
	if buf == 0 || uint64(len(samples)) > buflen {
		return fmt.Errorf("sound: DMA buffer too small (%d > %d)", len(samples), buflen)
	}
	if err := as.Write(mem.Addr(buf), samples); err != nil {
		return err
	}
	ops, _ := as.ReadU64(s.CardField(card, "ops"))
	ret, err := s.gTrigger.Call2(t, s.OpsSlot(mem.Addr(ops), "trigger"), uint64(card), TriggerStart)
	if err != nil {
		return err
	}
	if kernel.IsErr(ret) {
		return fmt.Errorf("sound: trigger failed: errno %d", -int64(ret))
	}
	return nil
}

// Pointer asks the driver for the current hardware position.
func (s *Sound) Pointer(t *core.Thread, card mem.Addr) (uint64, error) {
	ops, _ := s.K.Sys.AS.ReadU64(s.CardField(card, "ops"))
	return s.gPointer.Call1(t, s.OpsSlot(mem.Addr(ops), "pointer"), uint64(card))
}

// Close runs the driver's close callback and frees the card.
func (s *Sound) Close(t *core.Thread, card mem.Addr) error {
	ops, _ := s.K.Sys.AS.ReadU64(s.CardField(card, "ops"))
	if _, err := s.gClose.Call1(t, s.OpsSlot(mem.Addr(ops), "close"), uint64(card)); err != nil {
		return err
	}
	return s.K.Sys.Slab.Free(card)
}

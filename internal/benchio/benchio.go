// Package benchio is the shared report-emission plumbing of the
// benchmark commands (lxfi-fsperf, lxfi-netperf, lxfi-microbench).
//
// Every benchmark command follows the same contract:
//
//   - stdout carries exactly one thing: either the human-readable tables
//     or, with -json, the machine-readable BENCH_*.json artifact that CI
//     archives and perf-gates. Nothing else may be written to stdout.
//   - diagnostics are stderr-only. In particular -metrics (the enforced
//     run's monitor-metrics snapshot) always goes to stderr, so it can
//     never corrupt an archived BENCH report.
//
// The package centralizes the flag registration and the emission helpers
// so the contract is enforced in one place instead of three copies.
package benchio

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
)

// Stdout and Stderr are the emission targets, swappable in tests.
var (
	Stdout io.Writer = os.Stdout
	Stderr io.Writer = os.Stderr
)

// exit is swappable in tests so Fail paths can be exercised.
var exit = os.Exit

// Flags is the emission-flag set shared by the benchmark commands.
type Flags struct {
	JSON    bool
	Metrics bool
}

// Bind registers the shared -json and -metrics flags on the default flag
// set with command-specific usage strings. Call before flag.Parse.
func Bind(jsonUsage, metricsUsage string) *Flags {
	f := &Flags{}
	flag.BoolVar(&f.JSON, "json", false, jsonUsage)
	flag.BoolVar(&f.Metrics, "metrics", false, metricsUsage)
	return f
}

// Fail reports a runtime failure on stderr and exits 1.
func Fail(context string, err error) {
	fmt.Fprintf(Stderr, "%s: %v\n", context, err)
	exit(1)
}

// FailUsage reports a flag-usage error on stderr and exits 2.
func FailUsage(msg string) {
	fmt.Fprintln(Stderr, msg)
	exit(2)
}

// EmitReport writes the archived BENCH artifact to stdout — in -json
// mode this must be the only stdout write the command performs.
func EmitReport(out []byte) {
	fmt.Fprintln(Stdout, string(out))
}

// EmitMetrics marshals a metrics snapshot to stderr, never stdout (the
// stderr-only metrics contract). A non-empty label prefixes the dump as
// a "# label" comment line. Nil snapshots are ignored so callers can
// pass through whatever the measurement produced.
func EmitMetrics(label string, m any) {
	if m == nil {
		return
	}
	// Callers pass whatever snapshot pointer the measurement produced; a
	// typed nil (stock-only run) is as empty as an untyped one.
	if v := reflect.ValueOf(m); v.Kind() == reflect.Pointer && v.IsNil() {
		return
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fmt.Fprintln(Stderr, "encoding metrics:", err)
		return
	}
	if label != "" {
		fmt.Fprintf(Stderr, "# %s\n", label)
	}
	fmt.Fprintln(Stderr, string(out))
}

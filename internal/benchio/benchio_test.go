package benchio

import (
	"bytes"
	"strings"
	"testing"
)

func swap(t *testing.T) (*bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	var out, errw bytes.Buffer
	oldOut, oldErr := Stdout, Stderr
	Stdout, Stderr = &out, &errw
	t.Cleanup(func() { Stdout, Stderr = oldOut, oldErr })
	return &out, &errw
}

func TestEmitReportWritesOnlyStdout(t *testing.T) {
	out, errw := swap(t)
	EmitReport([]byte(`{"bench":"x"}`))
	if got := out.String(); got != "{\"bench\":\"x\"}\n" {
		t.Fatalf("stdout = %q", got)
	}
	if errw.Len() != 0 {
		t.Fatalf("report leaked to stderr: %q", errw.String())
	}
}

// The stderr-only metrics contract: a metrics dump must never reach
// stdout, where it would corrupt an archived BENCH artifact.
func TestEmitMetricsWritesOnlyStderr(t *testing.T) {
	out, errw := swap(t)
	EmitMetrics("fsperf enforced metrics", map[string]int{"guards": 3})
	if out.Len() != 0 {
		t.Fatalf("metrics leaked to stdout: %q", out.String())
	}
	got := errw.String()
	if !strings.HasPrefix(got, "# fsperf enforced metrics\n") {
		t.Fatalf("missing label comment: %q", got)
	}
	if !strings.Contains(got, `"guards": 3`) {
		t.Fatalf("missing payload: %q", got)
	}
}

func TestEmitMetricsIgnoresNil(t *testing.T) {
	out, errw := swap(t)
	EmitMetrics("x", nil)
	var typed *struct{ N int }
	EmitMetrics("y", typed)
	if out.Len() != 0 || errw.Len() != 0 {
		t.Fatal("nil snapshot produced output")
	}
}

func TestFailPathsUseStderrAndExitCodes(t *testing.T) {
	_, errw := swap(t)
	var code int
	oldExit := exit
	exit = func(c int) { code = c }
	defer func() { exit = oldExit }()

	Fail("measurement failed", errString("boom"))
	if code != 1 || !strings.Contains(errw.String(), "measurement failed: boom") {
		t.Fatalf("code=%d stderr=%q", code, errw.String())
	}
	errw.Reset()
	FailUsage("-json requires -crossings")
	if code != 2 || !strings.Contains(errw.String(), "-json requires -crossings") {
		t.Fatalf("code=%d stderr=%q", code, errw.String())
	}
}

type errString string

func (e errString) Error() string { return string(e) }

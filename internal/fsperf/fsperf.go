// Package fsperf measures filesystem overhead under LXFI the way
// netperf measures the network paths: real per-operation CPU costs of
// the full VFS paths (dentry-cache walk, checked indirect calls into the
// filesystem module, page-cache WRITE/REF capability transfers,
// instrumented module writes) on the stock build and under enforcement.
//
// Two rigs are available: the ramfs-style tmpfssim and the block-backed
// minixsim (whose data path additionally crosses the blockdev
// substrate). The workload mix is the classic metadata+data blend:
// create, write+sync, cold read, warm read, stat, unlink.
package fsperf

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules"
	_ "lxfi/internal/modules/all"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
	"lxfi/internal/vfs"
)

// Kind selects the filesystem under test.
type Kind string

// The two benchmark filesystems.
const (
	Tmpfs Kind = "tmpfs"
	Minix Kind = "minix"
)

// DefaultFileSize keeps files at two pages — big enough to exercise the
// multi-page paths, small enough to stay under minixsim's extent cap.
const DefaultFileSize = 2 * mem.PageSize

// Rig is a bootable filesystem test bench.
type Rig struct {
	K      *kernel.Kernel
	B      *blockdev.Layer
	V      *vfs.VFS
	Ld     *modules.Loader
	Th     *core.Thread
	SB     mem.Addr
	Kind   Kind
	Module string // loaded module name (for reloads)
	FsID   uint64 // registered filesystem id (for remounting)
	Dev    uint64 // backing device id
}

// Close shuts the rig's kernel down (stopping the background writeback
// flusher daemon the VFS spawned at boot).
func (r *Rig) Close() { r.K.Shutdown() }

// NewRig boots a kernel + blockdev + vfs with the chosen filesystem
// module loaded (through the descriptor registry) and mounted under the
// given mode.
func NewRig(mode core.Mode, kind Kind) (*Rig, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	bl := blockdev.Init(k)
	v := vfs.Init(k, bl)
	th := k.Sys.NewThread("fsperf")
	ld := modules.NewLoaderWith(&modules.BootContext{K: k, Block: bl, FS: v})
	r := &Rig{K: k, B: bl, V: v, Ld: ld, Th: th, Kind: kind}
	switch kind {
	case Tmpfs:
		r.Module, r.FsID, r.Dev = "tmpfssim", tmpfssim.FsID, 0
	case Minix:
		bl.AddDisk(1, minixsim.DiskSectors)
		r.Module, r.FsID, r.Dev = "minixsim", minixsim.FsID, 1
	default:
		return nil, fmt.Errorf("fsperf: unknown filesystem kind %q", kind)
	}
	if _, err := ld.Load(th, r.Module); err != nil {
		return nil, err
	}
	var err error
	r.SB, err = v.Mount(th, r.FsID, r.Dev)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// OpCycle runs one full file lifetime — create, write, sync, read, stat,
// unlink — with a sequence-unique name. It is the benchmark unit of
// BenchmarkFsperf*.
func (r *Rig) OpCycle(seq int, payload []byte) error {
	path := fmt.Sprintf("/cyc%07d", seq)
	if _, err := r.V.Create(r.Th, r.SB, path); err != nil {
		return err
	}
	if _, err := r.V.Write(r.Th, r.SB, path, 0, payload); err != nil {
		return err
	}
	if err := r.V.Sync(r.Th, r.SB); err != nil {
		return err
	}
	if _, err := r.V.Read(r.Th, r.SB, path, 0, uint64(len(payload))); err != nil {
		return err
	}
	if _, _, err := r.V.Stat(r.Th, r.SB, path); err != nil {
		return err
	}
	return r.V.Unlink(r.Th, r.SB, path)
}

// measureRounds mirrors netperf: the minimum of several rounds
// suppresses scheduler noise.
const measureRounds = 3

// Ops is the measured operation list, in report order. "read cold" and
// "remount" only apply to disk-backed filesystems; memory-only mounts
// omit those rows rather than mislabel a warm path.
var Ops = []string{"create", "write+sync", "read cold", "read warm", "stat",
	"readdir", "rename", "cache pressure", "remount", "unlink"}

// Costs holds measured per-operation CPU costs (ns/op) for one
// filesystem under both builds, plus the mount's writeback counters
// (pages flushed through writepage, dirty victims the LRU policy had to
// write back in the foreground) observed over the run.
type Costs struct {
	Kind Kind
	Op   map[string]map[core.Mode]float64
	WB   map[core.Mode]vfs.WritebackStats
	// Metrics is the enforced rig's monitor-metrics snapshot, taken
	// after the measurement (guard counters, violation map, latency
	// histogram). Diagnostic output only — never part of BENCH reports.
	Metrics *core.MetricsSnapshot
}

// timed runs body over n items and returns ns per item.
func timed(n int, body func(i int) error) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := body(i); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}

// best runs the measurement several rounds and keeps the minimum.
func best(rounds, n int, setup func() error, body func(i int) error) (float64, error) {
	out := 0.0
	for r := 0; r < rounds; r++ {
		if setup != nil {
			if err := setup(); err != nil {
				return 0, err
			}
		}
		ns, err := timed(n, body)
		if err != nil {
			return 0, err
		}
		if out == 0 || ns < out {
			out = ns
		}
	}
	return out, nil
}

// measureMode fills costs for one mode on a fresh rig.
func measureMode(kind Kind, mode core.Mode, files int, fileSize uint64, c *Costs) error {
	rig, err := NewRig(mode, kind)
	if err != nil {
		return err
	}
	defer rig.Close()
	v, th, sb := rig.V, rig.Th, rig.SB
	payload := make([]byte, fileSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	path := func(i int) string { return fmt.Sprintf("/f%05d", i) }
	// Writeback counters live on the mount, so the remount phase resets
	// them; accumulate across every mount generation.
	var wbAcc vfs.WritebackStats
	accWB := func() {
		if st, ok := v.WritebackStats(sb); ok {
			wbAcc.PagesFlushed += st.PagesFlushed
			wbAcc.ForcedForeground += st.ForcedForeground
		}
	}
	set := func(op string, ns float64) {
		if c.Op[op] == nil {
			c.Op[op] = make(map[core.Mode]float64)
		}
		c.Op[op][mode] = ns
	}

	// create: fresh names each round, unlinked untimed afterwards so the
	// module's directory list stays the same size across rounds.
	round := 0
	ns, err := best(measureRounds, files, func() error { round++; return nil }, func(i int) error {
		_, err := v.Create(th, sb, fmt.Sprintf("/c%d_%05d", round, i))
		return err
	})
	if err != nil {
		return err
	}
	for r := 1; r <= round; r++ {
		for i := 0; i < files; i++ {
			_ = v.Unlink(th, sb, fmt.Sprintf("/c%d_%05d", r, i))
		}
	}
	set("create", ns)

	// Standing file set for the data and metadata ops.
	for i := 0; i < files; i++ {
		if _, err := v.Create(th, sb, path(i)); err != nil {
			return err
		}
	}

	// write+sync: every round dirties all files, then one sync writes
	// them back (the writepage REF crossings).
	ns, err = best(measureRounds, files, nil, func(i int) error {
		if _, err := v.Write(th, sb, path(i), 0, payload); err != nil {
			return err
		}
		if i == files-1 {
			return v.Sync(th, sb)
		}
		return nil
	})
	if err != nil {
		return err
	}
	set("write+sync", ns)

	// read cold: drop the page cache so every page refills through the
	// module's readpage (the WRITE transfer crossings). Memory-only
	// mounts have no cold path — DropCaches cannot evict their only
	// copy — so the row is omitted rather than reported as a warm read
	// under a cold label.
	if flags, _ := rig.K.Sys.AS.ReadU64(v.SBField(sb, "flags")); flags&vfs.SBMemOnly == 0 {
		ns, err = best(measureRounds, files, func() error {
			if err := v.Sync(th, sb); err != nil {
				return err
			}
			v.DropCaches(sb)
			return nil
		}, func(i int) error {
			_, err := v.Read(th, sb, path(i), 0, fileSize)
			return err
		})
		if err != nil {
			return err
		}
		set("read cold", ns)
	}

	// read warm: pure dentry-cache + page-cache hits, no module crossing.
	ns, err = best(measureRounds, files, nil, func(i int) error {
		_, err := v.Read(th, sb, path(i), 0, fileSize)
		return err
	})
	if err != nil {
		return err
	}
	set("read warm", ns)

	ns, err = best(measureRounds, files, nil, func(i int) error {
		_, _, err := v.Stat(th, sb, path(i))
		return err
	})
	if err != nil {
		return err
	}
	set("stat", ns)

	// readdir: one full enumeration of the root per op — one checked
	// module crossing per entry, with the name-buffer WRITE transfer
	// out and back on each.
	ns, err = best(measureRounds, files, nil, func(i int) error {
		ents, err := v.Readdir(th, sb, "/")
		if err != nil {
			return err
		}
		if len(ents) < files {
			return fmt.Errorf("fsperf: readdir saw %d entries, want >= %d", len(ents), files)
		}
		return nil
	})
	if err != nil {
		return err
	}
	set("readdir", ns)

	// rename: timed moves to fresh names, untimed moves back between
	// rounds (and afterwards, so later phases see the standing names).
	alt := func(i int) string { return fmt.Sprintf("/r%05d", i) }
	renameBack := func() error {
		for i := 0; i < files; i++ {
			if _, err := v.Lookup(th, sb, alt(i)); err == nil {
				if err := v.Rename(th, sb, alt(i), sb, path(i)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	ns, err = best(measureRounds, files, renameBack, func(i int) error {
		return v.Rename(th, sb, path(i), sb, alt(i))
	})
	if err != nil {
		return err
	}
	if err := renameBack(); err != nil {
		return err
	}
	set("rename", ns)

	// cache pressure: dirtying writes under a page budget smaller than
	// the working set, so every insert runs the LRU policy and dirty
	// victims are forced through the module's writepage (memory-only
	// mounts cannot evict, so their row isolates the policy's bookkeeping
	// cost).
	chunk := fileSize
	if chunk > mem.PageSize {
		chunk = mem.PageSize
	}
	budget := files / 2
	if budget < 1 {
		budget = 1
	}
	v.SetPageBudget(budget)
	ns, err = best(measureRounds, files, func() error {
		v.ShrinkToBudget(th)
		return nil
	}, func(i int) error {
		_, err := v.Write(th, sb, path(i), 0, payload[:chunk])
		return err
	})
	v.SetPageBudget(0)
	if err != nil {
		return err
	}
	if err := v.Sync(th, sb); err != nil {
		return err
	}
	set("cache pressure", ns)

	// remount: the durability round-trip — sync, unmount, mount, and one
	// recovered-namespace stat. Only meaningful when a disk holds the
	// namespace.
	if flags, _ := rig.K.Sys.AS.ReadU64(v.SBField(sb, "flags")); flags&vfs.SBMemOnly == 0 {
		const remounts = 4
		ns, err = best(measureRounds, remounts, nil, func(i int) error {
			if err := v.Sync(th, sb); err != nil {
				return err
			}
			accWB()
			if err := v.Unmount(th, sb); err != nil {
				return err
			}
			nsb, err := v.Mount(th, rig.FsID, rig.Dev)
			if err != nil {
				return err
			}
			sb = nsb
			if _, _, err := v.Stat(th, sb, path(0)); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return err
		}
		set("remount", ns)
	}

	// unlink: timed removal, untimed recreation between rounds.
	ns, err = best(measureRounds, files, func() error {
		for i := 0; i < files; i++ {
			if _, err := v.Lookup(th, sb, path(i)); err != nil {
				if _, err := v.Create(th, sb, path(i)); err != nil {
					return err
				}
			}
		}
		return nil
	}, func(i int) error {
		return v.Unlink(th, sb, path(i))
	})
	if err != nil {
		return err
	}
	set("unlink", ns)

	// Per-mount writeback stats over the whole run: Sync and the cache
	// pressure phase drove pages through writepage; forced-foreground
	// counts are the dirty victims eviction could not leave to a flusher.
	accWB()
	c.WB[mode] = wbAcc
	if mode == core.Enforce {
		m := rig.K.Sys.Metrics()
		c.Metrics = &m
	}
	return nil
}

// MeasureCosts measures all operations for one filesystem on fresh rigs
// under both builds.
func MeasureCosts(kind Kind, files int, fileSize uint64) (*Costs, error) {
	c := &Costs{
		Kind: kind,
		Op:   make(map[string]map[core.Mode]float64),
		WB:   make(map[core.Mode]vfs.WritebackStats),
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		if err := measureMode(kind, mode, files, fileSize, c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Row is one line of the fsperf table.
type Row struct {
	Op       string
	StockNs  float64
	LxfiNs   float64
	Overhead float64 // percent
}

// BuildTable derives report rows from measured costs.
func BuildTable(c *Costs) []Row {
	rows := make([]Row, 0, len(Ops))
	for _, op := range Ops {
		m, ok := c.Op[op]
		if !ok {
			continue
		}
		r := Row{Op: op, StockNs: m[core.Off], LxfiNs: m[core.Enforce]}
		if r.StockNs > 0 {
			r.Overhead = 100 * (r.LxfiNs - r.StockNs) / r.StockNs
		}
		rows = append(rows, r)
	}
	return rows
}

// Format renders the table for one filesystem.
func Format(c *Costs) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %14s %10s\n", c.Kind, "Stock ns/op", "LXFI ns/op", "overhead")
	for _, r := range BuildTable(c) {
		fmt.Fprintf(&b, "%-14s %14.0f %14.0f %9.0f%%\n", r.Op, r.StockNs, r.LxfiNs, r.Overhead)
	}
	return b.String()
}

// --- multi-mount concurrency phase ---

// ConcurrencyCosts holds the multi-mount phase: one worker thread per
// mount (tmpfssim and minixsim mounted simultaneously on one kernel),
// all workers running their op mix at the same time, with the
// background writeback flusher enabled — the workload the goroutine-
// backed thread scheduler exists for.
type ConcurrencyCosts struct {
	Workers int
	Mounts  []string
	Ns      map[core.Mode]float64 // ns per op-cycle, aggregated over all workers
	// Overlapped records that the workers' busy intervals genuinely
	// intersected (max start < min end) — the proof the phase was
	// produced by threads running simultaneously, not a serialized run.
	Overlapped bool
}

// concurrentRig boots one kernel with both filesystem modules mounted.
type concurrentRig struct {
	k   *kernel.Kernel
	v   *vfs.VFS
	sbs []mem.Addr
}

func newConcurrentRig(mode core.Mode) (*concurrentRig, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	bl := blockdev.Init(k)
	bl.AddDisk(1, minixsim.DiskSectors)
	v := vfs.Init(k, bl)
	th := k.Sys.NewThread("boot")
	ld := modules.NewLoaderWith(&modules.BootContext{K: k, Block: bl, FS: v})
	if _, err := ld.Load(th, "tmpfssim"); err != nil {
		return nil, err
	}
	if _, err := ld.Load(th, "minixsim"); err != nil {
		return nil, err
	}
	r := &concurrentRig{k: k, v: v}
	for _, m := range []struct{ fsid, dev uint64 }{{tmpfssim.FsID, 0}, {minixsim.FsID, 1}} {
		sb, err := v.Mount(th, m.fsid, m.dev)
		if err != nil {
			return nil, err
		}
		r.sbs = append(r.sbs, sb)
	}
	return r, nil
}

// runWorkers releases one worker thread per mount through a start
// barrier, waits for all of them, and returns the wall-clock span. Each
// worker runs cycles full create/write/sync/read/unlink lifetimes on
// its own mount.
func (r *concurrentRig) runWorkers(cycles int, payload []byte) (span time.Duration, overlapped bool, err error) {
	start := make(chan struct{})
	// gate is a rendezvous: every worker must arrive before any may
	// proceed, so all workers are provably alive at the same instant —
	// the phase cannot degenerate into a serialized run when one
	// worker's mix is much faster than another's.
	var gate sync.WaitGroup
	gate.Add(len(r.sbs))
	errs := make([]error, len(r.sbs))
	starts := make([]time.Time, len(r.sbs))
	ends := make([]time.Time, len(r.sbs))
	handles := make([]*core.ThreadHandle, len(r.sbs))
	for i, sb := range r.sbs {
		i, sb := i, sb
		handles[i] = r.k.Sys.Spawn(fmt.Sprintf("fsperf-w%d", i), func(t *core.Thread) {
			<-start
			// The busy interval opens at the rendezvous arrival: the gate
			// releases only once every worker has arrived, so the release
			// instant lies inside every worker's interval — all workers
			// are provably live at once.
			starts[i] = time.Now()
			defer func() { ends[i] = time.Now() }()
			gate.Done()
			gate.Wait()
			for n := 0; n < cycles; n++ {
				path := fmt.Sprintf("/w%d_%05d", i, n)
				if _, err := r.v.Create(t, sb, path); err != nil {
					errs[i] = err
					return
				}
				if _, err := r.v.Write(t, sb, path, 0, payload); err != nil {
					errs[i] = err
					return
				}
				if err := r.v.Sync(t, sb); err != nil {
					errs[i] = err
					return
				}
				if _, err := r.v.Read(t, sb, path, 0, uint64(len(payload))); err != nil {
					errs[i] = err
					return
				}
				if err := r.v.Unlink(t, sb, path); err != nil {
					errs[i] = err
					return
				}
			}
		})
	}
	begin := time.Now()
	close(start)
	for _, h := range handles {
		h.Join()
	}
	span = time.Since(begin)
	for _, werr := range errs {
		if werr != nil {
			return 0, false, werr
		}
	}
	latestStart, earliestEnd := starts[0], ends[0]
	for i := 1; i < len(starts); i++ {
		if starts[i].After(latestStart) {
			latestStart = starts[i]
		}
		if ends[i].Before(earliestEnd) {
			earliestEnd = ends[i]
		}
	}
	return span, !earliestEnd.Before(latestStart), nil
}

// MeasureConcurrency measures the multi-mount phase under both builds.
func MeasureConcurrency(files int, fileSize uint64) (*ConcurrencyCosts, error) {
	out := &ConcurrencyCosts{
		Workers: 2,
		Mounts:  []string{string(Tmpfs), string(Minix)},
		Ns:      make(map[core.Mode]float64),
	}
	payload := make([]byte, fileSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		best := 0.0
		for round := 0; round < measureRounds; round++ {
			rig, err := newConcurrentRig(mode)
			if err != nil {
				return nil, err
			}
			// Background writeback runs during the phase: aged dirty
			// pages leave through the flusher thread while the workers
			// hammer their mounts, speeding up whenever more than a
			// quarter of the cache is dirty.
			rig.v.EnableWriteback(time.Millisecond, 0.25)
			span, overlapped, err := rig.runWorkers(files, payload)
			rig.k.Shutdown()
			if err != nil {
				return nil, err
			}
			out.Overlapped = out.Overlapped || overlapped
			if n := len(rig.k.Sys.Mon.Violations()); n != 0 {
				return nil, fmt.Errorf("fsperf: concurrency phase (%s): %d violations: %v",
					mode, n, rig.k.Sys.Mon.LastViolation())
			}
			ns := float64(span.Nanoseconds()) / float64(out.Workers*files)
			if best == 0 || ns < best {
				best = ns
			}
		}
		out.Ns[mode] = best
	}
	return out, nil
}

// --- hot-reload-under-traffic phase ---

// ReloadCosts holds the hot-reload phase for one filesystem: the module
// is hot-reloaded several times while a worker thread runs live
// create/write/sync/read/stat/unlink cycles against a standing mount.
// The reload must be invisible to the worker — new crossings park during
// the quiesce, in-flight ones drain, and the instance capabilities for
// the mount migrate to the fresh generation — so the phase asserts zero
// violations and zero worker errors, and reports how long the service
// interruption (quiesce + swap + migrate) lasted.
type ReloadCosts struct {
	FS      string
	Reloads int                   // reloads performed per mode
	Cycles  map[core.Mode]int     // worker op-cycles completed during the phase
	Quiesce map[core.Mode]float64 // mean ns waiting for in-flight crossings
	Total   map[core.Mode]float64 // mean ns for the whole reload
	// Migrated is the per-instance capability count replayed into the
	// fresh generation on the last enforced reload (stock runs migrate
	// nothing: no capabilities are tracked with enforcement off).
	Migrated int
}

// reloadRounds is how many back-to-back reloads each mode performs.
const reloadRounds = 4

// measureReloadMode runs the phase on a fresh rig for one mode.
func measureReloadMode(kind Kind, mode core.Mode, fileSize uint64, out *ReloadCosts) error {
	rig, err := NewRig(mode, kind)
	if err != nil {
		return err
	}
	defer rig.Close()
	payload := make([]byte, fileSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	stop := make(chan struct{})
	var cycles atomic.Int64
	var workerErr error
	h := rig.K.Sys.Spawn("fsperf-reload-w", func(t *core.Thread) {
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			path := fmt.Sprintf("/rel%07d", n)
			if _, err := rig.V.Create(t, rig.SB, path); err != nil {
				workerErr = fmt.Errorf("create %s: %w", path, err)
				return
			}
			if _, err := rig.V.Write(t, rig.SB, path, 0, payload); err != nil {
				workerErr = fmt.Errorf("write %s: %w", path, err)
				return
			}
			if err := rig.V.Sync(t, rig.SB); err != nil {
				workerErr = fmt.Errorf("sync: %w", err)
				return
			}
			if _, err := rig.V.Read(t, rig.SB, path, 0, uint64(len(payload))); err != nil {
				workerErr = fmt.Errorf("read %s: %w", path, err)
				return
			}
			if err := rig.V.Unlink(t, rig.SB, path); err != nil {
				workerErr = fmt.Errorf("unlink %s: %w", path, err)
				return
			}
			cycles.Add(1)
		}
	})

	// Let the worker prove it is live before the first swap, so every
	// reload happens under genuine traffic.
	for cycles.Load() == 0 && workerErr == nil {
		time.Sleep(100 * time.Microsecond)
	}

	var quiesce, total float64
	for i := 0; i < reloadRounds; i++ {
		st, err := rig.Ld.Reload(rig.Th, rig.Module)
		if err != nil {
			close(stop)
			h.Join()
			return fmt.Errorf("fsperf: reload %d (%s): %w", i, mode, err)
		}
		quiesce += float64(st.QuiesceNs)
		total += float64(st.TotalNs)
		if mode == core.Enforce {
			out.Migrated = st.Migrated
		}
	}
	close(stop)
	h.Join()
	if workerErr != nil {
		return fmt.Errorf("fsperf: reload phase (%s) worker: %w", mode, workerErr)
	}
	if n := len(rig.K.Sys.Mon.Violations()); n != 0 {
		return fmt.Errorf("fsperf: reload phase (%s): %d violations: %v",
			mode, n, rig.K.Sys.Mon.LastViolation())
	}
	out.Cycles[mode] = int(cycles.Load())
	out.Quiesce[mode] = quiesce / reloadRounds
	out.Total[mode] = total / reloadRounds
	return nil
}

// MeasureReload measures the hot-reload-under-live-traffic phase for one
// filesystem under both builds.
func MeasureReload(kind Kind, fileSize uint64) (*ReloadCosts, error) {
	out := &ReloadCosts{
		FS:      string(kind),
		Reloads: reloadRounds,
		Cycles:  make(map[core.Mode]int),
		Quiesce: make(map[core.Mode]float64),
		Total:   make(map[core.Mode]float64),
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		if err := measureReloadMode(kind, mode, fileSize, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FormatReload renders the hot-reload phase line for one filesystem.
func FormatReload(r *ReloadCosts) string {
	stock, lxfi := r.Total[core.Off], r.Total[core.Enforce]
	overhead := 0.0
	if stock > 0 {
		overhead = 100 * (lxfi - stock) / stock
	}
	return fmt.Sprintf("%-14s %14.0f %14.0f %9.0f%%  (%d reloads under traffic, %d caps migrated)\n",
		"hot reload", stock, lxfi, overhead, r.Reloads, r.Migrated)
}

// --- journal phase ---

// JournalCosts holds the journal phase on the block-backed filesystem:
// the per-op cost of the journaled multi-record metadata ops — rename
// and RENAME_EXCHANGE, each a write-ahead transaction (intent records,
// one commit sector, applies, checkpoint) — under both builds, plus
// the sector writes one journaled rename performs, i.e. the write
// amplification the crash-consistency guarantee costs.
type JournalCosts struct {
	FS          string
	RenameNs    map[core.Mode]float64
	ExchangeNs  map[core.Mode]float64
	WritesPerOp float64 // sector writes per journaled rename (build-independent)
}

// measureJournalMode runs the journal phase for one mode on a fresh rig.
func measureJournalMode(mode core.Mode, files int, out *JournalCosts) error {
	rig, err := NewRig(mode, Minix)
	if err != nil {
		return err
	}
	defer rig.Close()
	v, th, sb := rig.V, rig.Th, rig.SB
	path := func(i int) string { return fmt.Sprintf("/j%05d", i) }
	alt := func(i int) string { return fmt.Sprintf("/ja%05d", i) }
	partner := func(i int) string { return fmt.Sprintf("/jx%05d", i) }
	for i := 0; i < files; i++ {
		if _, err := v.Create(th, sb, path(i)); err != nil {
			return err
		}
		if _, err := v.Create(th, sb, partner(i)); err != nil {
			return err
		}
	}
	if err := v.Sync(th, sb); err != nil {
		return err
	}

	// Journaled rename: timed moves to fresh names, untimed moves back.
	renameBack := func() error {
		for i := 0; i < files; i++ {
			if _, err := v.Lookup(th, sb, alt(i)); err == nil {
				if err := v.Rename(th, sb, alt(i), sb, path(i)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	ns, err := best(measureRounds, files, renameBack, func(i int) error {
		return v.Rename(th, sb, path(i), sb, alt(i))
	})
	if err != nil {
		return err
	}
	if err := renameBack(); err != nil {
		return err
	}
	out.RenameNs[mode] = ns

	// RENAME_EXCHANGE: a two-record transaction; the swap is its own
	// inverse, so no per-round restore is needed.
	ns, err = best(measureRounds, files, nil, func(i int) error {
		return v.RenameFlags(th, sb, path(i), sb, partner(i), vfs.RenameExchange)
	})
	if err != nil {
		return err
	}
	out.ExchangeNs[mode] = ns

	// Write amplification, counted outside the timed loops so untimed
	// restores do not pollute it. One measurement suffices: the journal
	// protocol writes the same sectors under either build.
	if mode == core.Off {
		probes := files
		if probes > 8 {
			probes = 8
		}
		_, w0 := rig.B.SectorIO()
		for i := 0; i < probes; i++ {
			if err := v.Rename(th, sb, path(i), sb, alt(i)); err != nil {
				return err
			}
			if err := v.Rename(th, sb, alt(i), sb, path(i)); err != nil {
				return err
			}
		}
		_, w1 := rig.B.SectorIO()
		out.WritesPerOp = float64(w1-w0) / float64(2*probes)
	}

	if n := len(rig.K.Sys.Mon.Violations()); n != 0 {
		return fmt.Errorf("fsperf: journal phase (%s): %d violations: %v",
			mode, n, rig.K.Sys.Mon.LastViolation())
	}
	return nil
}

// MeasureJournal measures the journaled-metadata phase (block-backed
// filesystem only) under both builds.
func MeasureJournal(files int) (*JournalCosts, error) {
	out := &JournalCosts{
		FS:         string(Minix),
		RenameNs:   make(map[core.Mode]float64),
		ExchangeNs: make(map[core.Mode]float64),
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		if err := measureJournalMode(mode, files, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FormatJournal renders the journal phase line.
func FormatJournal(j *JournalCosts) string {
	stock, lxfi := j.RenameNs[core.Off], j.RenameNs[core.Enforce]
	overhead := 0.0
	if stock > 0 {
		overhead = 100 * (lxfi - stock) / stock
	}
	return fmt.Sprintf("%-14s %14.0f %14.0f %9.0f%%  (%.1f sector writes/op)\n",
		"journal rename", stock, lxfi, overhead, j.WritesPerOp)
}

// jsonRow mirrors Row with stable snake_case keys for the CI artifact.
type jsonRow struct {
	Op          string  `json:"op"`
	StockNs     float64 `json:"stock_ns"`
	LxfiNs      float64 `json:"lxfi_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

type jsonWBSide struct {
	PagesFlushed           uint64 `json:"pages_flushed"`
	ForcedForegroundWrites uint64 `json:"forced_foreground_writes"`
}

type jsonWB struct {
	Stock jsonWBSide `json:"stock"`
	Lxfi  jsonWBSide `json:"lxfi"`
}

type jsonFS struct {
	FS        string       `json:"fs"`
	Rows      []jsonRow    `json:"rows"`
	Writeback *jsonWB      `json:"writeback,omitempty"`
	Reload    *jsonReload  `json:"reload,omitempty"`
	Journal   *jsonJournal `json:"journal,omitempty"`
}

// jsonJournal reports the journaled-metadata phase: write-ahead rename
// and exchange costs under both builds and the sector writes one
// journaled rename performs. perf_gate.py gates the rename overhead and
// the write amplification.
type jsonJournal struct {
	StockRenameNs   float64 `json:"stock_rename_ns"`
	LxfiRenameNs    float64 `json:"lxfi_rename_ns"`
	StockExchangeNs float64 `json:"stock_exchange_ns"`
	LxfiExchangeNs  float64 `json:"lxfi_exchange_ns"`
	OverheadPct     float64 `json:"overhead_pct"`
	WritesPerOp     float64 `json:"writes_per_op"`
}

// jsonReload reports the hot-reload-under-traffic phase: mean service
// interruption per reload (quiesce wait and full quiesce+swap+migrate
// span) under both builds, with the live-traffic proof (worker op-cycles
// completed while the reloads ran) and the migrated-capability count.
type jsonReload struct {
	Reloads        int     `json:"reloads"`
	StockQuiesceNs float64 `json:"stock_quiesce_ns"`
	LxfiQuiesceNs  float64 `json:"lxfi_quiesce_ns"`
	StockTotalNs   float64 `json:"stock_total_ns"`
	LxfiTotalNs    float64 `json:"lxfi_total_ns"`
	StockCycles    int     `json:"stock_worker_cycles"`
	LxfiCycles     int     `json:"lxfi_worker_cycles"`
	MigratedCaps   int     `json:"migrated_caps"`
}

type jsonConc struct {
	Workers     int      `json:"workers"`
	Mounts      []string `json:"mounts"`
	StockNs     float64  `json:"stock_ns"`
	LxfiNs      float64  `json:"lxfi_ns"`
	OverheadPct float64  `json:"overhead_pct"`
}

type jsonDoc struct {
	Bench       string    `json:"bench"`
	Files       int       `json:"files"`
	FileSize    uint64    `json:"file_size"`
	Results     []jsonFS  `json:"results"`
	Concurrency *jsonConc `json:"concurrency,omitempty"`
}

// JSON serializes measured costs as the machine-readable report CI
// archives as BENCH_fsperf.json, so the perf trajectory of every op is
// tracked run over run. conc may be nil when the concurrency phase was
// not measured; rls and jrns entries are matched to results by
// filesystem name.
func JSON(cs []*Costs, conc *ConcurrencyCosts, rls []*ReloadCosts, jrns []*JournalCosts, files int, fileSize uint64) ([]byte, error) {
	doc := jsonDoc{Bench: "fsperf", Files: files, FileSize: fileSize}
	for _, c := range cs {
		f := jsonFS{FS: string(c.Kind), Rows: []jsonRow{}}
		for _, j := range jrns {
			if j != nil && j.FS == string(c.Kind) {
				jj := &jsonJournal{
					StockRenameNs:   j.RenameNs[core.Off],
					LxfiRenameNs:    j.RenameNs[core.Enforce],
					StockExchangeNs: j.ExchangeNs[core.Off],
					LxfiExchangeNs:  j.ExchangeNs[core.Enforce],
					WritesPerOp:     j.WritesPerOp,
				}
				if jj.StockRenameNs > 0 {
					jj.OverheadPct = 100 * (jj.LxfiRenameNs - jj.StockRenameNs) / jj.StockRenameNs
				}
				f.Journal = jj
			}
		}
		for _, rl := range rls {
			if rl != nil && rl.FS == string(c.Kind) {
				f.Reload = &jsonReload{
					Reloads:        rl.Reloads,
					StockQuiesceNs: rl.Quiesce[core.Off],
					LxfiQuiesceNs:  rl.Quiesce[core.Enforce],
					StockTotalNs:   rl.Total[core.Off],
					LxfiTotalNs:    rl.Total[core.Enforce],
					StockCycles:    rl.Cycles[core.Off],
					LxfiCycles:     rl.Cycles[core.Enforce],
					MigratedCaps:   rl.Migrated,
				}
			}
		}
		for _, r := range BuildTable(c) {
			f.Rows = append(f.Rows, jsonRow{Op: r.Op, StockNs: r.StockNs, LxfiNs: r.LxfiNs, OverheadPct: r.Overhead})
		}
		if len(c.WB) > 0 {
			f.Writeback = &jsonWB{
				Stock: jsonWBSide{
					PagesFlushed:           c.WB[core.Off].PagesFlushed,
					ForcedForegroundWrites: c.WB[core.Off].ForcedForeground,
				},
				Lxfi: jsonWBSide{
					PagesFlushed:           c.WB[core.Enforce].PagesFlushed,
					ForcedForegroundWrites: c.WB[core.Enforce].ForcedForeground,
				},
			}
		}
		doc.Results = append(doc.Results, f)
	}
	if conc != nil {
		jc := &jsonConc{
			Workers: conc.Workers,
			Mounts:  conc.Mounts,
			StockNs: conc.Ns[core.Off],
			LxfiNs:  conc.Ns[core.Enforce],
		}
		if jc.StockNs > 0 {
			jc.OverheadPct = 100 * (jc.LxfiNs - jc.StockNs) / jc.StockNs
		}
		doc.Concurrency = jc
	}
	return json.MarshalIndent(doc, "", "  ")
}

// FormatConcurrency renders the multi-mount phase line.
func FormatConcurrency(c *ConcurrencyCosts) string {
	stock, lxfi := c.Ns[core.Off], c.Ns[core.Enforce]
	overhead := 0.0
	if stock > 0 {
		overhead = 100 * (lxfi - stock) / stock
	}
	return fmt.Sprintf("%-14s %14.0f %14.0f %9.0f%%  (%d worker threads: %s)\n",
		"multi-mount", stock, lxfi, overhead, c.Workers, strings.Join(c.Mounts, "+"))
}

package fsperf_test

import (
	"encoding/json"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/fsperf"
	"lxfi/internal/mem"
)

func TestOpCycleBothModesBothFilesystems(t *testing.T) {
	payload := make([]byte, fsperf.DefaultFileSize)
	for _, kind := range []fsperf.Kind{fsperf.Tmpfs, fsperf.Minix} {
		for _, mode := range []core.Mode{core.Off, core.Enforce} {
			rig, err := fsperf.NewRig(mode, kind)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, mode, err)
			}
			defer rig.Close()
			for i := 0; i < 20; i++ {
				if err := rig.OpCycle(i, payload); err != nil {
					t.Fatalf("%s/%s cycle %d: %v", kind, mode, i, err)
				}
			}
			if n := len(rig.K.Sys.Mon.Violations()); n != 0 {
				t.Fatalf("%s/%s: %d violations: %v", kind, mode, n, rig.K.Sys.Mon.LastViolation())
			}
			// Nothing left behind: the cycle unlinks its file each time.
			if rig.V.PageCount() != 0 {
				t.Fatalf("%s/%s: %d pages leaked", kind, mode, rig.V.PageCount())
			}
		}
	}
}

func TestMeasureCostsProducesAllOps(t *testing.T) {
	c, err := fsperf.MeasureCosts(fsperf.Minix, 8, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rows := fsperf.BuildTable(c)
	if len(rows) != len(fsperf.Ops) {
		t.Fatalf("rows = %d, want %d", len(rows), len(fsperf.Ops))
	}
	for _, r := range rows {
		if r.StockNs <= 0 || r.LxfiNs <= 0 {
			t.Fatalf("op %s has a zero cost: %+v", r.Op, r)
		}
	}
	if out := fsperf.Format(c); out == "" {
		t.Fatal("empty table")
	}

	// Memory-only mounts have no cold-read path and nothing durable to
	// remount, so those rows are omitted rather than mislabeled — but
	// the new workload phases must be present for both filesystems.
	c, err = fsperf.MeasureCosts(fsperf.Tmpfs, 8, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, r := range fsperf.BuildTable(c) {
		if r.Op == "read cold" {
			t.Fatal("tmpfs reported a cold-read row despite being memory-only")
		}
		if r.Op == "remount" {
			t.Fatal("tmpfs reported a remount row despite being memory-only")
		}
		seen[r.Op] = true
	}
	for _, op := range []string{"readdir", "rename", "cache pressure"} {
		if !seen[op] {
			t.Fatalf("tmpfs table is missing the %q phase", op)
		}
	}
}

// TestJSONReportShape: the CI artifact must carry both filesystems and
// every measured op with nonzero costs under both builds.
func TestJSONReportShape(t *testing.T) {
	var all []*fsperf.Costs
	for _, kind := range []fsperf.Kind{fsperf.Tmpfs, fsperf.Minix} {
		c, err := fsperf.MeasureCosts(kind, 4, mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, c)
	}
	conc, err := fsperf.MeasureConcurrency(4, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := fsperf.MeasureReload(fsperf.Tmpfs, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	jrn, err := fsperf.MeasureJournal(4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fsperf.JSON(all, conc, []*fsperf.ReloadCosts{rl}, []*fsperf.JournalCosts{jrn}, 4, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench   string `json:"bench"`
		Files   int    `json:"files"`
		Results []struct {
			FS   string `json:"fs"`
			Rows []struct {
				Op      string  `json:"op"`
				StockNs float64 `json:"stock_ns"`
				LxfiNs  float64 `json:"lxfi_ns"`
			} `json:"rows"`
			Reload *struct {
				Reloads      int     `json:"reloads"`
				LxfiTotalNs  float64 `json:"lxfi_total_ns"`
				LxfiCycles   int     `json:"lxfi_worker_cycles"`
				MigratedCaps int     `json:"migrated_caps"`
			} `json:"reload"`
			Journal *struct {
				StockRenameNs  float64 `json:"stock_rename_ns"`
				LxfiRenameNs   float64 `json:"lxfi_rename_ns"`
				LxfiExchangeNs float64 `json:"lxfi_exchange_ns"`
				WritesPerOp    float64 `json:"writes_per_op"`
			} `json:"journal"`
		} `json:"results"`
		Concurrency *struct {
			Workers int      `json:"workers"`
			Mounts  []string `json:"mounts"`
			StockNs float64  `json:"stock_ns"`
			LxfiNs  float64  `json:"lxfi_ns"`
		} `json:"concurrency"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Bench != "fsperf" || doc.Files != 4 || len(doc.Results) != 2 {
		t.Fatalf("bad document shape: %s", out)
	}
	for _, res := range doc.Results {
		if len(res.Rows) == 0 {
			t.Fatalf("%s has no rows", res.FS)
		}
		for _, row := range res.Rows {
			if row.StockNs <= 0 || row.LxfiNs <= 0 {
				t.Fatalf("%s/%s has a zero cost", res.FS, row.Op)
			}
		}
	}
	var sawReload bool
	for _, res := range doc.Results {
		if res.FS != "tmpfs" {
			continue
		}
		if res.Reload == nil {
			t.Fatal("tmpfs result is missing the hot-reload phase")
		}
		sawReload = true
		if res.Reload.Reloads < 1 || res.Reload.LxfiTotalNs <= 0 {
			t.Fatalf("bad reload phase: %+v", *res.Reload)
		}
		if res.Reload.LxfiCycles < 1 {
			t.Fatal("reload phase ran without live worker traffic")
		}
		if res.Reload.MigratedCaps < 1 {
			t.Fatal("enforced reload migrated no capabilities")
		}
	}
	if !sawReload {
		t.Fatal("no tmpfs result in the artifact")
	}
	var sawJournal bool
	for _, res := range doc.Results {
		if res.FS != "minix" {
			continue
		}
		if res.Journal == nil {
			t.Fatal("minix result is missing the journal phase")
		}
		sawJournal = true
		j := res.Journal
		if j.StockRenameNs <= 0 || j.LxfiRenameNs <= 0 || j.LxfiExchangeNs <= 0 {
			t.Fatalf("journal phase has a zero cost: %+v", *j)
		}
		// A journaled rename is intent + commit + apply (+ checkpoint):
		// more than one sector write, but bounded.
		if j.WritesPerOp < 2 || j.WritesPerOp > 16 {
			t.Fatalf("journal writes/op = %.1f, outside the sane [2,16] band", j.WritesPerOp)
		}
	}
	if !sawJournal {
		t.Fatal("no minix result in the artifact")
	}
	if doc.Concurrency == nil {
		t.Fatal("artifact is missing the multi-mount concurrency phase")
	}
	if doc.Concurrency.Workers < 2 || len(doc.Concurrency.Mounts) < 2 {
		t.Fatalf("concurrency phase used %d workers on %v, want >= 2 simultaneous mounts",
			doc.Concurrency.Workers, doc.Concurrency.Mounts)
	}
	if doc.Concurrency.StockNs <= 0 || doc.Concurrency.LxfiNs <= 0 {
		t.Fatalf("concurrency phase has a zero cost: %+v", *doc.Concurrency)
	}
}

// TestConcurrencyPhaseRunsWorkersSimultaneously: the multi-mount phase
// must be produced by worker threads whose busy intervals genuinely
// overlap — one worker per mount, tmpfssim and minixsim at once.
func TestConcurrencyPhaseRunsWorkersSimultaneously(t *testing.T) {
	conc, err := fsperf.MeasureConcurrency(8, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Workers != 2 {
		t.Fatalf("workers = %d, want 2", conc.Workers)
	}
	if !conc.Overlapped {
		t.Fatal("worker busy intervals never overlapped; the phase ran serialized")
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		if conc.Ns[mode] <= 0 {
			t.Fatalf("mode %s has zero cost", mode)
		}
	}
}

// TestEnforcedCrossingsAreCounted sanity-checks the workload shape: the
// cold-read path must cross into the module once per page, the warm-read
// path not at all.
func TestEnforcedCrossingsAreCounted(t *testing.T) {
	rig, err := fsperf.NewRig(core.Enforce, fsperf.Minix)
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	v, th, sb := rig.V, rig.Th, rig.SB
	if _, err := v.Create(th, sb, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb, "/f", 0, make([]byte, 2*mem.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	v.DropCaches(sb)
	fills := v.Stats.PageFills.Load()
	if _, err := v.Read(th, sb, "/f", 0, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats.PageFills.Load() - fills; got != 2 {
		t.Fatalf("cold read crossed %d times, want 2", got)
	}
	fills = v.Stats.PageFills.Load()
	if _, err := v.Read(th, sb, "/f", 0, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats.PageFills.Load() - fills; got != 0 {
		t.Fatalf("warm read crossed %d times, want 0", got)
	}
}

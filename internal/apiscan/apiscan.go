// Package apiscan reproduces Figure 10: the rate of change of Linux
// kernel module APIs across 20 major versions (2.6.20–2.6.39), counting
// exported functions (EXPORT_SYMBOL) and function pointers appearing in
// shared structs, "using ctags" — here, a small scanner over C header
// text.
//
// Substitution note (see DESIGN.md): we cannot ship 20 Linux source
// trees, so a deterministic generator synthesizes header corpora whose
// totals and churn are calibrated to the paper's reported endpoints
// (2.6.21: 5,583 exported functions, 272 changed; 3,725 struct function
// pointers, 183 changed; steady growth thereafter). The scanner is real:
// it parses the generated headers the way ctags would, and the series is
// computed by diffing scans of consecutive versions, not by echoing the
// generator's bookkeeping.
package apiscan

import (
	"fmt"
	"sort"
	"strings"
)

// Tree is one kernel version's header corpus.
type Tree struct {
	Name    string
	Headers []string
}

// Counts is one point of the Fig. 10 series.
type Counts struct {
	Version       string
	Exports       int
	ExportsChange int // new or signature-changed since previous version
	Fptrs         int
	FptrsChange   int
}

// prng is a small deterministic linear congruential generator so the
// corpus is identical on every run.
type prng struct{ s uint64 }

func (p *prng) next() uint64 {
	p.s = p.s*6364136223846793005 + 1442695040888963407
	return p.s >> 17
}

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

var cTypes = []string{"int", "void", "long", "unsigned int", "size_t", "ssize_t", "u32", "u64"}
var cArgs = []string{
	"struct sk_buff *skb", "struct net_device *dev", "void *data",
	"unsigned long flags", "int index", "struct inode *inode",
	"struct file *filp", "size_t len", "struct pci_dev *pdev", "gfp_t gfp",
}

type entry struct {
	name string
	sig  int // signature revision; bumping it models a changed prototype
}

// corpusState evolves the synthetic API from version to version.
type corpusState struct {
	rng     prng
	exports []entry
	fptrs   []entry
	nextID  int
}

// Calibration: endpoints from the paper's Fig. 10.
const (
	baseExports     = 5400 // 2.6.20
	baseFptrs       = 3620
	exportGrowth    = 205 // net new exports per version
	fptrGrowth      = 150
	exportChangePer = 95 // existing prototypes changed per version
	fptrChangePer   = 45
)

// Versions generated, matching the paper's range.
func versionNames() []string {
	var out []string
	for v := 20; v <= 39; v++ {
		out = append(out, fmt.Sprintf("2.6.%d", v))
	}
	return out
}

// Corpus generates the full 20-version corpus.
func Corpus() []Tree {
	st := &corpusState{rng: prng{s: 0x5FD1}}
	for i := 0; i < baseExports; i++ {
		st.exports = append(st.exports, entry{name: st.newName("ksym"), sig: 0})
	}
	for i := 0; i < baseFptrs; i++ {
		st.fptrs = append(st.fptrs, entry{name: st.newName("op"), sig: 0})
	}
	var trees []Tree
	for i, ver := range versionNames() {
		if i > 0 {
			st.evolve()
		}
		trees = append(trees, st.render(ver))
	}
	return trees
}

func (st *corpusState) newName(prefix string) string {
	st.nextID++
	return fmt.Sprintf("%s_%06d", prefix, st.nextID)
}

func (st *corpusState) evolve() {
	// Change some existing prototypes...
	for i := 0; i < exportChangePer; i++ {
		st.exports[st.rng.intn(len(st.exports))].sig++
	}
	for i := 0; i < fptrChangePer; i++ {
		st.fptrs[st.rng.intn(len(st.fptrs))].sig++
	}
	// ... and add new ones.
	for i := 0; i < exportGrowth; i++ {
		st.exports = append(st.exports, entry{name: st.newName("ksym")})
	}
	for i := 0; i < fptrGrowth; i++ {
		st.fptrs = append(st.fptrs, entry{name: st.newName("op")})
	}
}

// render emits C header text: prototypes + EXPORT_SYMBOL lines, and
// structs of function-pointer members, split across several "files".
func (st *corpusState) render(ver string) Tree {
	const perFile = 800
	var headers []string
	var b strings.Builder

	flush := func() {
		if b.Len() > 0 {
			headers = append(headers, b.String())
			b.Reset()
		}
	}

	for i, e := range st.exports {
		typ := cTypes[(e.sig+i)%len(cTypes)]
		arg1 := cArgs[(e.sig+i)%len(cArgs)]
		arg2 := cArgs[(e.sig+i*7+3)%len(cArgs)]
		fmt.Fprintf(&b, "%s %s(%s, %s);\nEXPORT_SYMBOL(%s);\n", typ, e.name, arg1, arg2, e.name)
		if (i+1)%perFile == 0 {
			flush()
		}
	}
	flush()

	// Function pointers grouped into ops structs of ~12 members.
	for i := 0; i < len(st.fptrs); i += 12 {
		fmt.Fprintf(&b, "struct gen_ops_%d {\n", i/12)
		for j := i; j < i+12 && j < len(st.fptrs); j++ {
			e := st.fptrs[j]
			typ := cTypes[(e.sig+j)%len(cTypes)]
			arg := cArgs[(e.sig+j*3)%len(cArgs)]
			fmt.Fprintf(&b, "\t%s (*%s)(%s);\n", typ, e.name, arg)
		}
		b.WriteString("};\n")
		if (i/12+1)%(perFile/12) == 0 {
			flush()
		}
	}
	flush()
	return Tree{Name: ver, Headers: headers}
}

// Scan parses one version's headers ctags-style, returning
// name -> full prototype for exported functions and for struct function
// pointers.
func Scan(t Tree) (exports, fptrs map[string]string) {
	exports = make(map[string]string)
	fptrs = make(map[string]string)
	protos := make(map[string]string) // all seen prototypes by name
	for _, h := range t.Headers {
		inStruct := false
		for _, line := range strings.Split(h, "\n") {
			line = strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(line, "struct ") && strings.HasSuffix(line, "{"):
				inStruct = true
			case line == "};":
				inStruct = false
			case inStruct && strings.Contains(line, "(*"):
				// e.g. "int (*op_000012)(struct sk_buff *skb);"
				open := strings.Index(line, "(*")
				close := strings.Index(line[open:], ")")
				if close < 0 {
					continue
				}
				name := line[open+2 : open+close]
				fptrs[name] = line
			case strings.HasPrefix(line, "EXPORT_SYMBOL("):
				name := strings.TrimSuffix(strings.TrimPrefix(line, "EXPORT_SYMBOL("), ");")
				exports[name] = protos[name]
			case strings.Contains(line, "(") && strings.HasSuffix(line, ");"):
				// A prototype: "int ksym_000001(args...);"
				paren := strings.Index(line, "(")
				head := line[:paren]
				sp := strings.LastIndex(head, " ")
				if sp < 0 {
					continue
				}
				protos[head[sp+1:]] = line
			}
		}
	}
	return exports, fptrs
}

// Series scans every version and diffs against the previous one.
func Series(trees []Tree) []Counts {
	var out []Counts
	var prevExp, prevFptr map[string]string
	for _, t := range trees {
		exp, fptr := Scan(t)
		c := Counts{Version: t.Name, Exports: len(exp), Fptrs: len(fptr)}
		if prevExp != nil {
			c.ExportsChange = diff(exp, prevExp)
			c.FptrsChange = diff(fptr, prevFptr)
		}
		out = append(out, c)
		prevExp, prevFptr = exp, fptr
	}
	return out
}

// diff counts entries of cur that are new or whose prototype changed.
func diff(cur, prev map[string]string) int {
	n := 0
	for name, sig := range cur {
		if old, ok := prev[name]; !ok || old != sig {
			n++
		}
	}
	return n
}

// Format renders the series as a Fig. 10-style table.
func Format(series []Counts) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s\n",
		"version", "exports", "changed", "fptrs", "changed")
	for _, c := range series {
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %10d\n",
			c.Version, c.Exports, c.ExportsChange, c.Fptrs, c.FptrsChange)
	}
	return b.String()
}

// SortedNames is a test helper: deterministic ordering of a scan map.
func SortedNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package apiscan_test

import (
	"strings"
	"testing"

	"lxfi/internal/apiscan"
)

func TestScannerOnHandWrittenHeader(t *testing.T) {
	tree := apiscan.Tree{Name: "test", Headers: []string{`
int netif_rx(struct sk_buff *skb);
EXPORT_SYMBOL(netif_rx);
void *kmalloc(size_t len, gfp_t gfp);
EXPORT_SYMBOL(kmalloc);
static int internal_helper(void);
struct net_device_ops {
	int (*ndo_open)(struct net_device *dev);
	int (*ndo_start_xmit)(struct sk_buff *skb);
};
`}}
	exp, fptr := apiscan.Scan(tree)
	if len(exp) != 2 {
		t.Fatalf("exports = %v", apiscan.SortedNames(exp))
	}
	if _, ok := exp["netif_rx"]; !ok {
		t.Fatal("netif_rx not found")
	}
	if len(fptr) != 2 {
		t.Fatalf("fptrs = %v", apiscan.SortedNames(fptr))
	}
	if _, ok := fptr["ndo_start_xmit"]; !ok {
		t.Fatal("ndo_start_xmit not found")
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := apiscan.Corpus()
	b := apiscan.Corpus()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("versions = %d/%d", len(a), len(b))
	}
	if a[5].Headers[0] != b[5].Headers[0] {
		t.Fatal("corpus not deterministic")
	}
	if a[0].Name != "2.6.20" || a[19].Name != "2.6.39" {
		t.Fatalf("version range: %s..%s", a[0].Name, a[19].Name)
	}
}

func TestFig10SeriesShape(t *testing.T) {
	series := apiscan.Series(apiscan.Corpus())
	if len(series) != 20 {
		t.Fatalf("series = %d", len(series))
	}
	// Calibration: 2.6.21 should be near the paper's 5,583 exports (272
	// changed) and 3,725 fptrs (183 changed).
	v21 := series[1]
	if v21.Exports < 5400 || v21.Exports > 5800 {
		t.Errorf("2.6.21 exports = %d, want ~5583", v21.Exports)
	}
	if v21.ExportsChange < 200 || v21.ExportsChange > 350 {
		t.Errorf("2.6.21 changed exports = %d, want ~272", v21.ExportsChange)
	}
	if v21.Fptrs < 3600 || v21.Fptrs > 3900 {
		t.Errorf("2.6.21 fptrs = %d, want ~3725", v21.Fptrs)
	}
	if v21.FptrsChange < 120 || v21.FptrsChange > 260 {
		t.Errorf("2.6.21 changed fptrs = %d, want ~183", v21.FptrsChange)
	}
	// Monotonic growth, modest churn (the paper's observation: totals
	// grow steadily; per-version change stays in the hundreds).
	for i := 1; i < len(series); i++ {
		if series[i].Exports <= series[i-1].Exports {
			t.Errorf("%s: exports did not grow", series[i].Version)
		}
		if series[i].Fptrs <= series[i-1].Fptrs {
			t.Errorf("%s: fptrs did not grow", series[i].Version)
		}
		if series[i].ExportsChange > 600 || series[i].ExportsChange < 100 {
			t.Errorf("%s: export churn out of band: %d", series[i].Version, series[i].ExportsChange)
		}
	}
	// Endpoint: meaningful growth over 20 versions (paper: ~5.5k -> ~9.5k).
	if last := series[19]; last.Exports < 9000 || last.Exports > 10000 {
		t.Errorf("2.6.39 exports = %d", last.Exports)
	}
}

func TestFormat(t *testing.T) {
	out := apiscan.Format(apiscan.Series(apiscan.Corpus()[:3]))
	if !strings.Contains(out, "2.6.22") || !strings.Contains(out, "exports") {
		t.Fatalf("format:\n%s", out)
	}
}

package netperf

// StrictRig: the Guideline-4 ablation counterpart to Rig. The driver
// implements the redesigned ndo_start_xmit_strict interface
// (REF(sk_buff fields) + payload WRITE instead of whole-struct WRITE),
// so the same transmit workload can be benchmarked under both interface
// designs.

import (
	"fmt"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
)

// StrictRig is a transmit bench rig over the strict interface.
type StrictRig struct {
	K     *kernel.Kernel
	Stack *netstack.Stack
	Th    *core.Thread
	Dev   mem.Addr
	Sent  uint64
}

// NewStrictRig boots a minimal strict driver.
func NewStrictRig(mode core.Mode) (*StrictRig, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	st := netstack.Init(k)
	st.StrictInit()
	th := k.Sys.NewThread("strict")
	r := &StrictRig{K: k, Stack: st, Th: th}

	imports := append([]string{"alloc_etherdev", "register_netdev"}, netstack.StrictImports...)
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "e1000-strict",
		Imports:  imports,
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "xmit", Type: netstack.NdoStartXmitStrict,
				Impl: func(t *core.Thread, args []uint64) uint64 {
					skb := mem.Addr(args[0])
					data, _ := t.ReadU64(st.SkbField(skb, "head"))
					// Touch the payload (owned) and update the length via
					// the checked accessor instead of a raw header store.
					if err := t.WriteU8(mem.Addr(data), 0x1); err != nil {
						return ^uint64(0)
					}
					if ret, err := t.CallKernel("skb_set_len", uint64(skb), 60); err != nil || kernel.IsErr(ret) {
						return ^uint64(0)
					}
					r.Sent++
					if _, err := t.CallKernel("kfree_skb_strict", uint64(skb)); err != nil {
						return ^uint64(0)
					}
					return 0
				},
			},
			{
				Name: "setup",
				Impl: func(t *core.Thread, args []uint64) uint64 {
					dev, err := t.CallKernel("alloc_etherdev")
					if err != nil || dev == 0 {
						return 1
					}
					r.Dev = mem.Addr(dev)
					mod := t.CurrentModule()
					if err := t.WriteU64(st.OpsSlot(mod.Data, "ndo_start_xmit"), uint64(mod.Funcs["xmit"].Addr)); err != nil {
						return 2
					}
					if err := t.WriteU64(st.DevField(r.Dev, "ops"), uint64(mod.Data)); err != nil {
						return 3
					}
					if ret, err := t.CallKernel("register_netdev", dev); err != nil || kernel.IsErr(ret) {
						return 4
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	if ret, err := th.CallModule(m, "setup"); err != nil || ret != 0 {
		return nil, fmt.Errorf("netperf: strict setup failed: ret=%d err=%v", ret, err)
	}
	return r, nil
}

// TxPacket pushes one packet through the strict transmit path.
func (r *StrictRig) TxPacket(payload uint64) error {
	skb, err := r.Stack.AllocSkb(payload)
	if err != nil {
		return err
	}
	if err := r.K.Sys.AS.WriteU64(r.Stack.SkbField(skb, "len"), payload); err != nil {
		return err
	}
	ret, err := r.Stack.XmitSkbStrict(r.Th, r.Dev, skb)
	if err != nil {
		return err
	}
	if ret != 0 {
		return fmt.Errorf("netperf: strict xmit returned %d", int64(ret))
	}
	return nil
}

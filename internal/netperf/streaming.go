package netperf

// Streaming phase: a windowed, TCP-like bulk transfer over e1000sim —
// the workload class where the paper's Fig. 12 shows enforcement
// disappearing into the noise (TCP sustains line rate) while per-packet
// tests pay 2.2–3.7x CPU. The sender pushes MTU-sized segments with an
// 8-byte sequence header under a fixed window; a peer wired to the
// NIC's TX side verifies in-order delivery and returns cumulative acks,
// which flow back through the NAPI poll path.
//
// The phase runs the transfer both ways on each build: per-packet (one
// ndo_start_xmit crossing per segment, one alloc_skb + netif_rx pair
// per ack) and batched (EnqueueTx/DrainTx with a budget on TX,
// alloc_skb_batch/netif_rx_batch on RX), reporting bytes/sec, measured
// crossings per byte for both paths, and the enforced/stock CPU ratio —
// the Fig. 12 asymmetry, reproduced rather than transcribed.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"lxfi/internal/core"
	"lxfi/internal/mem"
)

const (
	// StreamSegBytes is one streaming segment on the wire: an 8-byte
	// sequence header plus an MTU-sized TCP payload.
	StreamSegBytes = 8 + TCPPayload

	// StreamWindow is the sender window in segments.
	StreamWindow = 32

	// StreamBatchBudget is the TX drain / RX poll batch budget — the
	// "B" of the crossings-per-byte target.
	StreamBatchBudget = 8

	// StreamAckEvery is the peer's delayed-ack cadence: one cumulative
	// ack per this many segments, as a TCP receiver coalesces acks.
	// Transfers are rounded up to a multiple of it so the final segment
	// always draws the ack that closes the window.
	StreamAckEvery = 4

	streamReloads = 2

	// streamRounds is the repetitions per timed transfer (best kept);
	// more than the other phases' measureRounds because the CPU-ratio
	// gate on this phase is absolute, so noise cannot be averaged away
	// by a relative baseline.
	streamRounds = 5
)

// roundStreamSegs rounds a segment count up to the ack cadence.
func roundStreamSegs(n int) int {
	return (n + StreamAckEvery - 1) / StreamAckEvery * StreamAckEvery
}

// StreamingCosts holds the streaming phase results.
type StreamingCosts struct {
	Segments    int
	Window      int
	BatchBudget int

	// BytesPerSec is batched-path goodput per build.
	BytesPerSec map[core.Mode]float64
	// CPURatio is enforced time / stock time for the batched transfer.
	CPURatio float64

	// Crossings per byte under enforcement, per data path.
	PerPktCrossingsPerByte float64
	BatchCrossingsPerByte  float64

	// Reload sub-phase: reloads performed per mode while a transfer
	// streamed, and the delivery failures observed (must be zero).
	Reloads   int
	Dropped   uint64
	Reordered uint64
}

// streamPeer is the remote end of the wire: it consumes frames from the
// NIC's TX side, tracks sequence continuity, and injects cumulative
// acks back into the NIC's RX queue.
type streamPeer struct {
	rig       *Rig
	expected  uint64
	received  uint64
	reordered uint64
}

func (p *streamPeer) onTx(frame []byte) {
	if len(frame) < 8 {
		return
	}
	seq := binary.LittleEndian.Uint64(frame[:8])
	if seq == p.expected {
		p.expected++
	} else {
		atomic.AddUint64(&p.reordered, 1)
		if seq >= p.expected {
			p.expected = seq + 1
		}
	}
	p.received++
	// Delayed ack: one cumulative ack per StreamAckEvery segments.
	if p.expected%StreamAckEvery == 0 {
		ack := make([]byte, 8)
		binary.LittleEndian.PutUint64(ack, p.expected)
		p.rig.Drv.Nic.InjectRx(ack)
	}
}

// reset rewinds the peer for a fresh transfer (sequence numbers restart
// at zero).
func (p *streamPeer) reset() { p.expected, p.received, p.reordered = 0, 0, 0 }

// attachPeer wires a fresh peer to the rig's NIC.
func attachPeer(rig *Rig) *streamPeer {
	p := &streamPeer{rig: rig}
	rig.Drv.Nic.OnTx = p.onTx
	return p
}

// streamTransfer pushes `segments` segments through the device under a
// fixed window, draining acks as they arrive. In batch mode segments
// queue on the qdisc and drain through ndo_start_xmit_batch; otherwise
// each segment takes the per-packet XmitSkb path.
func (r *Rig) streamTransfer(t *core.Thread, segments int, batch bool) error {
	st := r.Stack
	dev := r.Drv.Dev
	as := r.K.Sys.AS
	total := uint64(segments)
	var next, acked uint64
	queued := 0

	drain := func() error {
		for queued > 0 {
			consumed, _, err := st.DrainTx(t, dev, StreamBatchBudget)
			if err != nil {
				return err
			}
			if consumed == 0 {
				return fmt.Errorf("netperf: streaming drain stalled with %d queued", queued)
			}
			queued -= consumed
		}
		return nil
	}

	rounds := 0
	for acked < total {
		if rounds++; rounds > segments*4+64 {
			return fmt.Errorf("netperf: streaming stalled at ack %d/%d", acked, total)
		}
		for next < total && next-acked < StreamWindow {
			skb, err := st.AllocSkb(StreamSegBytes)
			if err != nil {
				return err
			}
			data, err := as.ReadU64(st.SkbField(skb, "head"))
			if err != nil {
				return err
			}
			if err := as.WriteU64(mem.Addr(data), next); err != nil {
				return err
			}
			if err := as.WriteU64(st.SkbField(skb, "len"), StreamSegBytes); err != nil {
				return err
			}
			if batch {
				if err := st.EnqueueTx(t, dev, skb, nil); err != nil {
					return err
				}
				if queued++; queued >= StreamBatchBudget {
					if err := drain(); err != nil {
						return err
					}
				}
			} else {
				ret, err := st.XmitSkb(t, dev, skb)
				if err != nil {
					return err
				}
				if ret != 0 {
					return fmt.Errorf("netperf: streaming xmit returned %d", int64(ret))
				}
			}
			next++
		}
		if batch {
			if err := drain(); err != nil {
				return err
			}
		}
		// Drain the ack flow: NAPI poll moves the peer's cumulative acks
		// into the protocol backlog, then the "socket layer" reads them.
		for r.Drv.Nic.RxPending() > 0 {
			if _, err := st.Poll(t, dev, StreamBatchBudget); err != nil {
				return err
			}
		}
		for {
			skb := st.PopRx()
			if skb == 0 {
				break
			}
			data, err := as.ReadU64(st.SkbField(skb, "head"))
			if err != nil {
				return err
			}
			cum, err := as.ReadU64(mem.Addr(data))
			if err != nil {
				return err
			}
			if cum > acked {
				acked = cum
			}
			st.FreeSkb(skb)
		}
	}
	return nil
}

// runStream executes one verified transfer and returns its wall time.
func runStream(rig *Rig, peer *streamPeer, segments int, batch bool) (time.Duration, error) {
	segments = roundStreamSegs(segments)
	peer.reset()
	rig.Drv.Nic.SetBatchRx(batch)
	start := time.Now()
	if err := rig.streamTransfer(rig.Th, segments, batch); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if peer.received != uint64(segments) {
		return 0, fmt.Errorf("netperf: streaming dropped %d of %d segments",
			uint64(segments)-peer.received, segments)
	}
	if n := atomic.LoadUint64(&peer.reordered); n != 0 {
		return 0, fmt.Errorf("netperf: streaming reordered %d segments", n)
	}
	return elapsed, nil
}

// MeasureStreaming runs the streaming phase: timed batched transfers on
// both builds, crossings/byte for both data paths under enforcement,
// and the reload-under-streaming sub-phase.
func MeasureStreaming(segments int) (*StreamingCosts, error) {
	segments = roundStreamSegs(segments)
	out := &StreamingCosts{
		Segments:    segments,
		Window:      StreamWindow,
		BatchBudget: StreamBatchBudget,
		BytesPerSec: make(map[core.Mode]float64),
		Reloads:     streamReloads,
	}
	bytes := float64(segments) * StreamSegBytes

	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		rig, err := NewRig(mode)
		if err != nil {
			return nil, err
		}
		peer := attachPeer(rig)
		// Warmup: populate the check cache and the batch arrays.
		if _, err := runStream(rig, peer, segments/10+1, true); err != nil {
			return nil, err
		}
		var best time.Duration
		for round := 0; round < streamRounds; round++ {
			elapsed, err := runStream(rig, peer, segments, true)
			if err != nil {
				return nil, err
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		out.BytesPerSec[mode] = bytes / best.Seconds()

		if mode == core.Enforce {
			// Crossings per byte, measured over one transfer per path.
			for _, batch := range []bool{false, true} {
				before := rig.K.Sys.Mon.Stats.Snapshot()
				if _, err := runStream(rig, peer, segments, batch); err != nil {
					return nil, err
				}
				d := rig.K.Sys.Mon.Stats.Snapshot().Sub(before)
				perByte := float64(d.FuncEntries) / bytes
				if batch {
					out.BatchCrossingsPerByte = perByte
				} else {
					out.PerPktCrossingsPerByte = perByte
				}
			}
			if n := len(rig.K.Sys.Mon.Violations()); n != 0 {
				return nil, fmt.Errorf("netperf: streaming (%s): %d violations: %v",
					mode, n, rig.K.Sys.Mon.LastViolation())
			}
		}
		rig.K.Shutdown()
	}
	if lx := out.BytesPerSec[core.Enforce]; lx > 0 {
		out.CPURatio = out.BytesPerSec[core.Off] / lx
	}

	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		dropped, reordered, err := streamAcrossReload(mode, segments)
		if err != nil {
			return nil, err
		}
		out.Dropped += dropped
		out.Reordered += reordered
	}
	return out, nil
}

// streamAcrossReload runs a batched transfer on a worker thread while
// the main thread hot-reloads the e1000 driver, and reports delivery
// failures. The NIC (and with it the peer's wire and in-flight ack
// queue) survives the reload; stale crossings park at the quiesced
// gates and redirect to the successor generation, so the stream must
// come through complete and in order.
func streamAcrossReload(mode core.Mode, segments int) (dropped, reordered uint64, err error) {
	segments = roundStreamSegs(segments)
	rig, err := NewRig(mode)
	if err != nil {
		return 0, 0, err
	}
	defer rig.K.Shutdown()
	peer := attachPeer(rig)
	peer.reset()
	rig.Drv.Nic.SetBatchRx(true)

	var werr error
	done := make(chan struct{})
	h := rig.K.Sys.Spawn("netperf-stream", func(t *core.Thread) {
		defer close(done)
		werr = rig.streamTransfer(t, segments, true)
	})

	// Reload only while the transfer is genuinely in flight.
	for i := 0; i < streamReloads; i++ {
		if _, err := rig.Ld.Reload(rig.Th, "e1000"); err != nil {
			<-done
			h.Join()
			return 0, 0, fmt.Errorf("netperf: streaming reload %d (%s): %w", i, mode, err)
		}
		select {
		case <-done:
		default:
		}
	}
	<-done
	h.Join()
	if werr != nil {
		return 0, 0, fmt.Errorf("netperf: streaming under reload (%s): %w", mode, werr)
	}
	if n := len(rig.K.Sys.Mon.Violations()); n != 0 {
		return 0, 0, fmt.Errorf("netperf: streaming under reload (%s): %d violations: %v",
			mode, n, rig.K.Sys.Mon.LastViolation())
	}
	if peer.received < uint64(segments) {
		dropped = uint64(segments) - peer.received
	}
	return dropped, atomic.LoadUint64(&peer.reordered), nil
}

// FormatStreaming renders the streaming phase lines.
func FormatStreaming(s *StreamingCosts) string {
	reduction := 0.0
	if s.BatchCrossingsPerByte > 0 {
		reduction = s.PerPktCrossingsPerByte / s.BatchCrossingsPerByte
	}
	return fmt.Sprintf(
		"%-20s %9.1f MB/s %9.1f MB/s %7.2fx  (window %d, budget %d)\n"+
			"%-20s %9.4f /KB %10.4f /KB %7.1fx fewer crossings\n"+
			"%-20s %d reloads under stream: %d dropped, %d reordered\n",
		"streaming", s.BytesPerSec[core.Off]/1e6, s.BytesPerSec[core.Enforce]/1e6, s.CPURatio,
		s.Window, s.BatchBudget,
		"  crossings", s.PerPktCrossingsPerByte*1024, s.BatchCrossingsPerByte*1024, reduction,
		"  reload", s.Reloads*2, s.Dropped, s.Reordered)
}

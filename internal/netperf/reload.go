package netperf

// Hot-reload-under-traffic phase: the e1000 driver is hot-reloaded while
// TX worker threads keep pushing packets through the pre-reload
// net_device. A reload must be invisible to the workers: new crossings
// park during the quiesce, in-flight ones drain, stale dispatch through
// the old generation's function addresses redirects to the successor,
// and the device's instance capabilities (descriptor ring, pci_dev /
// net_device aliases) migrate so the redirected crossings still pass
// every check. The phase asserts zero violations and zero worker errors
// and reports the service interruption per reload.

import (
	"fmt"
	"sync/atomic"
	"time"

	"lxfi/internal/core"
)

// ReloadCosts holds the hot-reload phase results.
type ReloadCosts struct {
	Reloads int                   // reloads performed per mode
	Workers int                   // concurrent TX worker threads
	Packets map[core.Mode]int     // packets the workers pushed during the phase
	Quiesce map[core.Mode]float64 // mean ns waiting for in-flight crossings
	Total   map[core.Mode]float64 // mean ns for the whole reload
	// Migrated counts the per-instance capabilities replayed into the
	// fresh generation on the last enforced reload.
	Migrated int
}

const (
	reloadRounds  = 4
	reloadWorkers = 2
)

// measureReloadMode runs the phase on a fresh rig for one mode.
func measureReloadMode(mode core.Mode, out *ReloadCosts) error {
	rig, err := NewRig(mode)
	if err != nil {
		return err
	}
	defer rig.K.Shutdown()

	stop := make(chan struct{})
	var packets atomic.Int64
	errs := make([]error, reloadWorkers)
	handles := make([]*core.ThreadHandle, reloadWorkers)
	for i := 0; i < reloadWorkers; i++ {
		i := i
		handles[i] = rig.K.Sys.Spawn(fmt.Sprintf("netperf-reload-w%d", i), func(t *core.Thread) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := rig.TxPacketOn(t, UDPPayload); err != nil {
					errs[i] = err
					return
				}
				packets.Add(1)
			}
		})
	}

	// Every reload must happen under genuine traffic: wait for the
	// workers to prove they are live before the first swap.
	live := func() bool {
		for _, e := range errs {
			if e != nil {
				return true
			}
		}
		return packets.Load() > 0
	}
	for !live() {
		time.Sleep(100 * time.Microsecond)
	}

	var quiesce, total float64
	for i := 0; i < reloadRounds; i++ {
		st, err := rig.Ld.Reload(rig.Th, "e1000")
		if err != nil {
			close(stop)
			for _, h := range handles {
				h.Join()
			}
			return fmt.Errorf("netperf: reload %d (%s): %w", i, mode, err)
		}
		quiesce += float64(st.QuiesceNs)
		total += float64(st.TotalNs)
		if mode == core.Enforce {
			out.Migrated = st.Migrated
		}
	}
	close(stop)
	for _, h := range handles {
		h.Join()
	}
	for i, werr := range errs {
		if werr != nil {
			return fmt.Errorf("netperf: reload phase (%s) worker %d: %w", mode, i, werr)
		}
	}
	if n := len(rig.K.Sys.Mon.Violations()); n != 0 {
		return fmt.Errorf("netperf: reload phase (%s): %d violations: %v",
			mode, n, rig.K.Sys.Mon.LastViolation())
	}
	out.Packets[mode] = int(packets.Load())
	out.Quiesce[mode] = quiesce / reloadRounds
	out.Total[mode] = total / reloadRounds
	return nil
}

// MeasureReload measures the hot-reload-under-live-traffic phase under
// both builds.
func MeasureReload() (*ReloadCosts, error) {
	out := &ReloadCosts{
		Reloads: reloadRounds,
		Workers: reloadWorkers,
		Packets: make(map[core.Mode]int),
		Quiesce: make(map[core.Mode]float64),
		Total:   make(map[core.Mode]float64),
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		if err := measureReloadMode(mode, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FormatReload renders the hot-reload phase line.
func FormatReload(r *ReloadCosts) string {
	stock, lxfi := r.Total[core.Off], r.Total[core.Enforce]
	overhead := 0.0
	if stock > 0 {
		overhead = 100 * (lxfi - stock) / stock
	}
	return fmt.Sprintf("%-20s %9.0f ns %12.0f ns %7.0f%%  (%d reloads under TX traffic, %d caps migrated)\n",
		"hot reload", stock, lxfi, overhead, r.Reloads, r.Migrated)
}

package netperf_test

import (
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/netperf"
)

func TestRigTxRx(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		rig, err := netperf.NewRig(mode)
		if err != nil {
			t.Fatalf("[%v] %v", mode, err)
		}
		for i := 0; i < 50; i++ {
			if err := rig.TxPacket(netperf.UDPPayload); err != nil {
				t.Fatalf("[%v] tx %d: %v", mode, i, err)
			}
		}
		if rig.Drv.Nic.TxFrames != 50 {
			t.Fatalf("[%v] tx frames = %d", mode, rig.Drv.Nic.TxFrames)
		}
		if err := rig.RxBurst(64, 40); err != nil {
			t.Fatalf("[%v] rx: %v", mode, err)
		}
		if rig.Stack.RxDelivered != 40 {
			t.Fatalf("[%v] rx delivered = %d", mode, rig.Stack.RxDelivered)
		}
		if mode == core.Enforce && rig.K.Sys.Mon.LastViolation() != nil {
			t.Fatalf("violation during netperf: %v", rig.K.Sys.Mon.LastViolation())
		}
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	costs, err := netperf.MeasureCosts(400)
	if err != nil {
		t.Fatal(err)
	}
	// Enforcement must cost more per packet on every path.
	for name, pair := range map[string]map[core.Mode]float64{
		"TxTCP": costs.TxTCP, "TxUDP": costs.TxUDP, "RxUDP": costs.RxUDP,
	} {
		if pair[core.Enforce] <= pair[core.Off] {
			t.Errorf("%s: lxfi %.0fns <= stock %.0fns", name, pair[core.Enforce], pair[core.Off])
		}
	}

	rows := netperf.BuildTable(costs)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTest := map[string]netperf.Row{}
	for _, r := range rows {
		byTest[r.Test] = r
	}

	// TCP STREAM TX: same throughput (wire-limited), higher CPU.
	tcp := byTest["TCP STREAM TX"]
	if ratio := tcp.LxfiTput / tcp.StockTput; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("TCP TX throughput changed: %.2f", ratio)
	}
	if tcp.LxfiCPU <= tcp.StockCPU {
		t.Errorf("TCP TX CPU did not increase: %v", tcp)
	}

	// UDP STREAM TX: throughput drops (CPU-limited), CPU pinned at 100.
	udp := byTest["UDP STREAM TX"]
	if ratio := udp.LxfiTput / udp.StockTput; ratio >= 0.95 {
		t.Errorf("UDP TX throughput should drop: ratio %.2f", ratio)
	}
	if udp.LxfiCPU < 99 {
		t.Errorf("UDP TX lxfi CPU should be saturated: %.0f", udp.LxfiCPU)
	}

	// UDP STREAM RX: same throughput, CPU near 100 under LXFI.
	udpRx := byTest["UDP STREAM RX"]
	if ratio := udpRx.LxfiTput / udpRx.StockTput; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("UDP RX throughput changed: %.2f", ratio)
	}
	if udpRx.LxfiCPU < 90 || udpRx.StockCPU > udpRx.LxfiCPU {
		t.Errorf("UDP RX CPU shape wrong: %+v", udpRx)
	}

	// RR: the 1-switch (low latency) configuration shows a larger
	// relative slowdown than the multi-switch one (§8.4).
	rrMulti := byTest["UDP RR"]
	rrOne := byTest["UDP RR (1-switch)"]
	dropMulti := 1 - rrMulti.LxfiTput/rrMulti.StockTput
	dropOne := 1 - rrOne.LxfiTput/rrOne.StockTput
	if dropOne <= dropMulti {
		t.Errorf("1-switch RR drop (%.2f) should exceed multi-switch drop (%.2f)", dropOne, dropMulti)
	}
	// And 1-switch absolute rates are higher in both modes.
	if rrOne.StockTput <= rrMulti.StockTput {
		t.Error("1-switch stock RR should be faster than multi-switch")
	}

	if netperf.Format(rows) == "" {
		t.Fatal("empty table")
	}
}

func TestFig13GuardBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rows, err := netperf.GuardBreakdown(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]netperf.GuardRow{}
	for _, r := range rows {
		byName[r.Guard] = r
	}
	// Structural expectations mirroring Fig. 13:
	// entries == exits;
	if byName["Function entry"].PerPacket != byName["Function exit"].PerPacket {
		t.Error("entry and exit guard counts must match")
	}
	// several annotation actions and memory-write checks per packet;
	if byName["Annotation action"].PerPacket < 2 {
		t.Errorf("annotation actions/pkt = %.1f", byName["Annotation action"].PerPacket)
	}
	if byName["Mem-write check"].PerPacket < 2 {
		t.Errorf("mem-write checks/pkt = %.1f", byName["Mem-write check"].PerPacket)
	}
	// writer-set tracking eliminates some slow-path indirect-call checks:
	// slow <= all, with at least one checked driver call per packet.
	all, slow := byName["Kernel ind-call all"].PerPacket, byName["Kernel ind-call e1000"].PerPacket
	if slow > all {
		t.Errorf("slow ind-calls (%.1f) exceed total (%.1f)", slow, all)
	}
	if slow < 1 {
		t.Errorf("expected at least one checked driver ind-call per packet, got %.1f", slow)
	}
	if all < 3 {
		t.Errorf("expected ~3 kernel ind-calls per packet (enqueue, dequeue, xmit), got %.1f", all)
	}
	if netperf.FormatGuards(rows) == "" {
		t.Fatal("empty table")
	}
}

func TestGuardCostsNonNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	c, err := netperf.GuardCosts()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"annotation": c.AnnotationNs, "entry": c.EntryNs, "exit": c.ExitNs,
		"memwrite": c.MemWriteNs, "indfast": c.IndCallFastNs, "indslow": c.IndCallSlowNs,
	} {
		if v < 0 {
			t.Errorf("%s cost negative: %f", name, v)
		}
	}
	// The slow indirect-call path must cost more than the fast path.
	if c.IndCallSlowNs <= c.IndCallFastNs {
		t.Errorf("slow path (%.0fns) should exceed fast path (%.0fns)", c.IndCallSlowNs, c.IndCallFastNs)
	}
}

// TestConcurrentSocketPairs: the concurrent netperf phase must run one
// worker thread per socket pair with provable overlap, produce positive
// timings under both builds, and record zero violations — every
// socket's instance principal stays confined to its own state even with
// the crossing engine hammered from many threads. (Runs under -race in
// CI's concurrency battery.)
// TestReloadUnderConcurrentTraffic: hot-reload the e1000 driver while
// TX worker threads hammer the pre-reload net_device. Every reload must
// complete (no quiesce deadlock), the workers must see no errors — new
// crossings park and drain rather than drop — and the monitor must
// record zero violations, because the device's instance capabilities
// migrate to the fresh generation before parked crossings resume. (Runs
// under -race in CI's concurrency battery.)
func TestReloadUnderConcurrentTraffic(t *testing.T) {
	rl, err := netperf.MeasureReload()
	if err != nil {
		t.Fatal(err)
	}
	if rl.Reloads < 1 || rl.Workers < 2 {
		t.Fatalf("phase shape: %+v", rl)
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		if rl.Packets[mode] < 1 {
			t.Fatalf("[%v] reloads ran without live TX traffic", mode)
		}
		if rl.Total[mode] <= 0 {
			t.Fatalf("[%v] non-positive reload latency", mode)
		}
	}
	if rl.Migrated < 1 {
		t.Fatal("enforced reload migrated no instance capabilities")
	}
}

func TestConcurrentSocketPairs(t *testing.T) {
	c, err := netperf.MeasureConcurrentSockets(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pairs != 4 {
		t.Fatalf("pairs = %d", c.Pairs)
	}
	if !c.Overlapped {
		t.Fatal("workers never overlapped; phase degenerated into a serial run")
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		if c.Ns[mode] <= 0 {
			t.Fatalf("[%v] non-positive ns/op", mode)
		}
	}
}

package netperf

// Concurrent socket phase: one worker thread per socket pair, all
// driving the module's sendmsg/recvmsg paths simultaneously. Every
// socket is its own LXFI instance principal with its own per-instance
// operation lock (the netstack analogue of the VFS per-mount lock), so
// the phase measures how the crossing engine behaves when the monitor's
// shared state — sharded capability tables, per-thread check caches —
// is hit from many kernel threads at once.

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules"
	"lxfi/internal/modules/econet"
	"lxfi/internal/netstack"
)

// ConcurrentCosts holds the concurrent socket-pair phase results.
type ConcurrentCosts struct {
	Pairs int
	Ns    map[core.Mode]float64 // ns per socket op, aggregated over workers
	// Overlapped records that the workers' busy intervals genuinely
	// intersected — the proof the phase ran threads simultaneously.
	Overlapped bool
}

// concRig is one booted kernel + netstack + econet with p socket pairs.
type concRig struct {
	k     *kernel.Kernel
	st    *netstack.Stack
	ld    *modules.Loader
	pairs [][2]mem.Addr
	bufs  []mem.Addr
}

func newConcRig(mode core.Mode, pairs int) (*concRig, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	st := netstack.Init(k)
	th := k.Sys.NewThread("boot")
	ld := modules.NewLoaderWith(&modules.BootContext{K: k, Net: st})
	if _, err := ld.Load(th, "econet"); err != nil {
		return nil, err
	}
	r := &concRig{k: k, st: st, ld: ld}
	for i := 0; i < pairs; i++ {
		a, err := st.Socket(th, econet.Family)
		if err != nil {
			return nil, err
		}
		b, err := st.Socket(th, econet.Family)
		if err != nil {
			return nil, err
		}
		r.pairs = append(r.pairs, [2]mem.Addr{a, b})
		r.bufs = append(r.bufs, k.Sys.User.Alloc(64, 8))
	}
	return r, nil
}

// runWorkers releases one worker per pair through a start barrier; each
// worker alternates sendmsg on its first socket and recvmsg on its
// second for msgs rounds.
func (r *concRig) runWorkers(msgs int) (span time.Duration, overlapped bool, err error) {
	start := make(chan struct{})
	n := len(r.pairs)
	// gate is a rendezvous: every worker must arrive before any may
	// proceed, so the release instant lies inside every worker's busy
	// interval — all workers are provably live at once.
	var gate sync.WaitGroup
	gate.Add(n)
	errs := make([]error, n)
	starts := make([]time.Time, n)
	ends := make([]time.Time, n)
	handles := make([]*core.ThreadHandle, n)
	for i := range r.pairs {
		i := i
		pair, buf := r.pairs[i], r.bufs[i]
		handles[i] = r.k.Sys.Spawn(fmt.Sprintf("netperf-w%d", i), func(t *core.Thread) {
			<-start
			starts[i] = time.Now()
			defer func() { ends[i] = time.Now() }()
			gate.Done()
			gate.Wait()
			for m := 0; m < msgs; m++ {
				if ret, err := r.st.Sendmsg(t, pair[0], buf, 8, 0); err != nil || kernel.IsErr(ret) {
					errs[i] = fmt.Errorf("worker %d sendmsg: ret=%d err=%v", i, int64(ret), err)
					return
				}
				if _, err := r.st.Recvmsg(t, pair[1], buf, 8, 0); err != nil {
					errs[i] = fmt.Errorf("worker %d recvmsg: %v", i, err)
					return
				}
			}
		})
	}
	begin := time.Now()
	close(start)
	for _, h := range handles {
		h.Join()
	}
	span = time.Since(begin)
	for _, werr := range errs {
		if werr != nil {
			return 0, false, werr
		}
	}
	latestStart, earliestEnd := starts[0], ends[0]
	for i := 1; i < n; i++ {
		if starts[i].After(latestStart) {
			latestStart = starts[i]
		}
		if ends[i].Before(earliestEnd) {
			earliestEnd = ends[i]
		}
	}
	return span, !earliestEnd.Before(latestStart), nil
}

// MeasureConcurrentSockets runs the phase under both builds.
func MeasureConcurrentSockets(pairs, msgs int) (*ConcurrentCosts, error) {
	out := &ConcurrentCosts{Pairs: pairs, Ns: make(map[core.Mode]float64)}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		best := 0.0
		for round := 0; round < measureRounds; round++ {
			rig, err := newConcRig(mode, pairs)
			if err != nil {
				return nil, err
			}
			span, overlapped, err := rig.runWorkers(msgs)
			rig.k.Shutdown()
			if err != nil {
				return nil, err
			}
			if n := len(rig.k.Sys.Mon.Violations()); n != 0 {
				return nil, fmt.Errorf("netperf: concurrent phase (%s): %d violations: %v",
					mode, n, rig.k.Sys.Mon.LastViolation())
			}
			out.Overlapped = out.Overlapped || overlapped
			// Two socket ops (one send + one recv) per round per pair.
			ns := float64(span.Nanoseconds()) / float64(2*pairs*msgs)
			if best == 0 || ns < best {
				best = ns
			}
		}
		out.Ns[mode] = best
	}
	return out, nil
}

// --- BENCH_netperf.json ---

type jsonNetRow struct {
	Op          string  `json:"op"`
	StockNs     float64 `json:"stock_ns"`
	LxfiNs      float64 `json:"lxfi_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

type jsonNetConc struct {
	Workers     int     `json:"workers"`
	StockNs     float64 `json:"stock_ns"`
	LxfiNs      float64 `json:"lxfi_ns"`
	OverheadPct float64 `json:"overhead_pct"`
}

// jsonNetReload reports the hot-reload-under-traffic phase: mean service
// interruption per reload under both builds, the live-traffic proof
// (packets the TX workers pushed while the reloads ran), and the
// migrated-capability count.
type jsonNetReload struct {
	Reloads        int     `json:"reloads"`
	Workers        int     `json:"workers"`
	StockQuiesceNs float64 `json:"stock_quiesce_ns"`
	LxfiQuiesceNs  float64 `json:"lxfi_quiesce_ns"`
	StockTotalNs   float64 `json:"stock_total_ns"`
	LxfiTotalNs    float64 `json:"lxfi_total_ns"`
	StockPackets   int     `json:"stock_packets"`
	LxfiPackets    int     `json:"lxfi_packets"`
	MigratedCaps   int     `json:"migrated_caps"`
}

// jsonNetStreaming reports the windowed TCP-like transfer phase: goodput
// per build on the batched path, measured crossings/byte on both data
// paths under enforcement, and the reload-under-streaming delivery
// counters (which must stay zero).
type jsonNetStreaming struct {
	Segments               int     `json:"segments"`
	SegmentBytes           int     `json:"segment_bytes"`
	Window                 int     `json:"window"`
	BatchBudget            int     `json:"batch_budget"`
	StockBytesPerSec       float64 `json:"stock_bytes_per_sec"`
	LxfiBytesPerSec        float64 `json:"lxfi_bytes_per_sec"`
	CPURatio               float64 `json:"cpu_ratio"`
	PerPktCrossingsPerByte float64 `json:"perpkt_crossings_per_byte"`
	BatchCrossingsPerByte  float64 `json:"batch_crossings_per_byte"`
	CrossingsReduction     float64 `json:"crossings_reduction"`
	Reloads                int     `json:"reloads"`
	Dropped                uint64  `json:"dropped"`
	Reordered              uint64  `json:"reordered"`
}

type jsonNetDoc struct {
	Bench   string `json:"bench"`
	Packets int    `json:"packets"`
	Results []struct {
		FS   string       `json:"fs"`
		Rows []jsonNetRow `json:"rows"`
	} `json:"results"`
	Concurrency *jsonNetConc      `json:"concurrency,omitempty"`
	Reload      *jsonNetReload    `json:"reload,omitempty"`
	Streaming   *jsonNetStreaming `json:"streaming,omitempty"`
}

// JSON serializes the per-packet path costs plus the concurrent
// socket-pair and hot-reload phases as the machine-readable report CI
// archives as BENCH_netperf.json. The results shape matches fsperf's so
// the generic perf gate reads every BENCH_*.json the same way.
func JSON(c *Costs, conc *ConcurrentCosts, rl *ReloadCosts, stream *StreamingCosts, packets int) ([]byte, error) {
	doc := jsonNetDoc{Bench: "netperf", Packets: packets}
	rows := []jsonNetRow{}
	add := func(op string, m map[core.Mode]float64) {
		r := jsonNetRow{Op: op, StockNs: m[core.Off], LxfiNs: m[core.Enforce]}
		if r.StockNs > 0 {
			r.OverheadPct = 100 * (r.LxfiNs - r.StockNs) / r.StockNs
		}
		rows = append(rows, r)
	}
	add("tx tcp", c.TxTCP)
	add("tx udp", c.TxUDP)
	add("rx tcp", c.RxTCP)
	add("rx udp", c.RxUDP)
	doc.Results = append(doc.Results, struct {
		FS   string       `json:"fs"`
		Rows []jsonNetRow `json:"rows"`
	}{FS: "netperf", Rows: rows})
	if conc != nil {
		jc := &jsonNetConc{
			Workers: conc.Pairs,
			StockNs: conc.Ns[core.Off],
			LxfiNs:  conc.Ns[core.Enforce],
		}
		if jc.StockNs > 0 {
			jc.OverheadPct = 100 * (jc.LxfiNs - jc.StockNs) / jc.StockNs
		}
		doc.Concurrency = jc
	}
	if rl != nil {
		doc.Reload = &jsonNetReload{
			Reloads:        rl.Reloads,
			Workers:        rl.Workers,
			StockQuiesceNs: rl.Quiesce[core.Off],
			LxfiQuiesceNs:  rl.Quiesce[core.Enforce],
			StockTotalNs:   rl.Total[core.Off],
			LxfiTotalNs:    rl.Total[core.Enforce],
			StockPackets:   rl.Packets[core.Off],
			LxfiPackets:    rl.Packets[core.Enforce],
			MigratedCaps:   rl.Migrated,
		}
	}
	if stream != nil {
		js := &jsonNetStreaming{
			Segments:               stream.Segments,
			SegmentBytes:           StreamSegBytes,
			Window:                 stream.Window,
			BatchBudget:            stream.BatchBudget,
			StockBytesPerSec:       stream.BytesPerSec[core.Off],
			LxfiBytesPerSec:        stream.BytesPerSec[core.Enforce],
			CPURatio:               stream.CPURatio,
			PerPktCrossingsPerByte: stream.PerPktCrossingsPerByte,
			BatchCrossingsPerByte:  stream.BatchCrossingsPerByte,
			Reloads:                stream.Reloads * 2, // per mode
			Dropped:                stream.Dropped,
			Reordered:              stream.Reordered,
		}
		if js.BatchCrossingsPerByte > 0 {
			js.CrossingsReduction = js.PerPktCrossingsPerByte / js.BatchCrossingsPerByte
		}
		doc.Streaming = js
	}
	return json.MarshalIndent(doc, "", "  ")
}

// FormatConcurrent renders the concurrent phase line.
func FormatConcurrent(c *ConcurrentCosts) string {
	stock, lxfi := c.Ns[core.Off], c.Ns[core.Enforce]
	overhead := 0.0
	if stock > 0 {
		overhead = 100 * (lxfi - stock) / stock
	}
	return fmt.Sprintf("%-20s %9.0f ns/op %9.0f ns/op %7.0f%%  (%d socket pairs, 1 thread each)\n",
		"concurrent sockets", stock, lxfi, overhead, c.Pairs)
}

package netperf

import (
	"encoding/binary"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/mem"
)

// TestStreamingTransfer runs a small windowed transfer on both builds
// and both data paths; runStream itself asserts complete, in-order
// delivery.
func TestStreamingTransfer(t *testing.T) {
	const segments = 64
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		rig, err := NewRig(mode)
		if err != nil {
			t.Fatalf("[%v] %v", mode, err)
		}
		peer := attachPeer(rig)
		for _, batch := range []bool{false, true} {
			if _, err := runStream(rig, peer, segments, batch); err != nil {
				t.Fatalf("[%v] batch=%v: %v", mode, batch, err)
			}
		}
		if mode == core.Enforce {
			if v := rig.K.Sys.Mon.LastViolation(); v != nil {
				t.Fatalf("violation: %v", v)
			}
		}
		rig.K.Shutdown()
	}
}

// TestStreamingCrossingsReduction pins the tentpole's economics: at
// batch budget 8 the batched path must cross the module boundary at
// least 4x less often per byte than the per-packet path.
func TestStreamingCrossingsReduction(t *testing.T) {
	const segments = 128
	rig, err := NewRig(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	defer rig.K.Shutdown()
	peer := attachPeer(rig)

	measure := func(batch bool) float64 {
		before := rig.K.Sys.Mon.Stats.Snapshot()
		if _, err := runStream(rig, peer, segments, batch); err != nil {
			t.Fatalf("batch=%v: %v", batch, err)
		}
		d := rig.K.Sys.Mon.Stats.Snapshot().Sub(before)
		return float64(d.FuncEntries)
	}
	perPkt := measure(false)
	batched := measure(true)
	if batched == 0 {
		t.Fatal("batched run crossed the boundary zero times")
	}
	if reduction := perPkt / batched; reduction < 4 {
		t.Fatalf("crossings reduction = %.2fx (perpkt %.0f, batch %.0f), want >= 4x",
			reduction, perPkt, batched)
	}
}

// TestStreamingAcrossReload hot-reloads the driver during a batched
// transfer; the stream must come through complete and in order under
// both builds.
func TestStreamingAcrossReload(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		dropped, reordered, err := streamAcrossReload(mode, 256)
		if err != nil {
			t.Fatalf("[%v] %v", mode, err)
		}
		if dropped != 0 || reordered != 0 {
			t.Fatalf("[%v] dropped=%d reordered=%d across reload", mode, dropped, reordered)
		}
	}
}

// TestBatchRevocationMidBatch is the revocation-soundness pin for the
// batched TX crossing: a principal's skb capabilities are revoked
// between batch enqueue and batch drain — with the per-thread check
// cache deliberately warmed on every element first — and the drain must
// deny exactly the revoked skbs. A stale cached verdict surviving the
// revocation epoch bump would let a dead capability reach the module.
func TestBatchRevocationMidBatch(t *testing.T) {
	const batch = 8
	rig, err := NewRig(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	defer rig.K.Shutdown()
	st, sys := rig.Stack, rig.K.Sys
	owner := rig.Drv.M.Set.Instance(rig.Drv.Dev)

	var skbs [batch]mem.Addr
	var wire []uint64
	rig.Drv.Nic.OnTx = func(frame []byte) {
		wire = append(wire, binary.LittleEndian.Uint64(frame[:8]))
	}
	for i := 0; i < batch; i++ {
		skb, err := st.AllocSkb(64)
		if err != nil {
			t.Fatal(err)
		}
		skbs[i] = skb
		data, _ := sys.AS.ReadU64(st.SkbField(skb, "head"))
		if err := sys.AS.WriteU64(mem.Addr(data), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := sys.AS.WriteU64(st.SkbField(skb, "len"), 64); err != nil {
			t.Fatal(err)
		}
		sys.Caps.Grant(owner, caps.WriteCap(skb, st.SkbSize()))
		if err := st.EnqueueTx(rig.Th, rig.Drv.Dev, skb, owner); err != nil {
			t.Fatal(err)
		}
		// Warm the per-thread cache with an allow verdict for every
		// element — the stale state a revocation must invalidate.
		if !rig.Th.CheckCached(owner, caps.WriteCap(skb, st.SkbSize())) {
			t.Fatalf("skb %d: owner check failed before revocation", i)
		}
	}

	// Revoke two elements' capabilities between enqueue and drain.
	revoked := map[uint64]bool{2: true, 5: true}
	for seq := range revoked {
		sys.Caps.Revoke(owner, caps.WriteCap(skbs[seq], st.SkbSize()))
	}

	consumed, denied, err := st.DrainTx(rig.Th, rig.Drv.Dev, batch)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != batch-len(revoked) || denied != len(revoked) {
		t.Fatalf("consumed=%d denied=%d, want %d/%d", consumed, denied, batch-len(revoked), len(revoked))
	}
	if st.TxDenied() != uint64(len(revoked)) {
		t.Fatalf("TxDenied = %d", st.TxDenied())
	}
	if len(wire) != batch-len(revoked) {
		t.Fatalf("wire got %d frames, want %d", len(wire), batch-len(revoked))
	}
	for _, seq := range wire {
		if revoked[seq] {
			t.Fatalf("revoked skb %d reached the wire", seq)
		}
	}
	if st.QueuedTx(rig.Drv.Dev) != 0 {
		t.Fatalf("qdisc not drained: %d left", st.QueuedTx(rig.Drv.Dev))
	}
}

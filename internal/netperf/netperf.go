// Package netperf reproduces the network evaluation of the paper:
// Figure 12 (netperf TCP/UDP STREAM and RR benchmarks over the isolated
// e1000 driver) and Figure 13 (the per-packet guard-cost breakdown for
// UDP STREAM TX).
//
// Methodology (see EXPERIMENTS.md): the simulator measures real
// per-packet CPU costs of the full TX and RX paths (socket-level entry,
// qdisc, checked indirect call into the driver, instrumented descriptor
// writes, skb capability transfers) under both builds. Throughput and
// CPU utilization are then derived with the paper's own bottleneck
// logic: STREAM tests are limited by the slower of wire and CPU; RR
// tests are limited by round-trip latency. The wire is calibrated so
// the stock kernel sits at the paper's operating point (UDP TX at ~54%
// CPU), after which every other number is produced by measurement — the
// shape (TCP unchanged, UDP TX CPU-bound under LXFI, CPU 2–4x) is
// reproduced, not transcribed.
package netperf

import (
	"fmt"
	"strings"
	"time"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules"
	_ "lxfi/internal/modules/all"
	"lxfi/internal/modules/e1000sim"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
)

// Model constants.
const (
	// TCPFrame is an MTU-sized TCP segment on the wire; UDPFrame is the
	// 64-byte-payload UDP datagram of the paper's UDP_STREAM test.
	TCPPayload = 1448
	TCPFrame   = 1514
	UDPPayload = 64
	UDPFrame   = 110

	// StockUDPCPU is the calibration point: the stock kernel's CPU
	// utilization for UDP STREAM TX in the paper (54%).
	StockUDPCPU = 0.54

	// Network latencies for the RR tests (one way, ns): the multi-switch
	// subnet and the dedicated-switch configuration of §8.4.
	MultiSwitchLatNs = 45_000
	OneSwitchLatNs   = 22_000
)

// Rig is a bootable e1000 test bench.
type Rig struct {
	K     *kernel.Kernel
	Stack *netstack.Stack
	Ld    *modules.Loader
	Th    *core.Thread
	Drv   *e1000sim.Driver
}

// NewRig boots a kernel + netstack + e1000sim (through the descriptor
// registry) under the given mode.
func NewRig(mode core.Mode) (*Rig, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	bus := pci.Init(k)
	st := netstack.Init(k)
	bus.AddDevice(e1000sim.VendorIntel, e1000sim.Dev82540EM)
	th := k.Sys.NewThread("netperf")
	ld := modules.NewLoaderWith(&modules.BootContext{K: k, Bus: bus, Net: st})
	inst, err := ld.Load(th, "e1000")
	if err != nil {
		return nil, err
	}
	return &Rig{K: k, Stack: st, Ld: ld, Th: th, Drv: inst.(*e1000sim.Driver)}, nil
}

// TxPacket pushes one payload-sized packet down the full transmit path.
func (r *Rig) TxPacket(payload uint64) error { return r.TxPacketOn(r.Th, payload) }

// TxPacketOn is TxPacket on an explicit thread, for worker threads that
// drive the transmit path concurrently with the rig's main thread.
func (r *Rig) TxPacketOn(t *core.Thread, payload uint64) error {
	skb, err := r.Stack.AllocSkb(payload)
	if err != nil {
		return err
	}
	if err := r.K.Sys.AS.WriteU64(r.Stack.SkbField(skb, "len"), payload); err != nil {
		return err
	}
	ret, err := r.Stack.XmitSkb(t, r.Drv.Dev, skb)
	if err != nil {
		return err
	}
	if ret != 0 {
		return fmt.Errorf("netperf: xmit returned %d", int64(ret))
	}
	return nil
}

// RxBurst injects n frames and drains them through NAPI poll and the
// protocol backlog.
func (r *Rig) RxBurst(frameSize, n int) error {
	frame := make([]byte, frameSize)
	for i := 0; i < n; i++ {
		r.Drv.Nic.InjectRx(frame)
	}
	for r.Drv.Nic.RxPending() > 0 {
		if _, err := r.Stack.Poll(r.Th, r.Drv.Dev, 64); err != nil {
			return err
		}
	}
	for {
		skb := r.Stack.PopRx()
		if skb == 0 {
			break
		}
		r.Stack.FreeSkb(skb)
	}
	return nil
}

// measureRounds is the number of repetitions per cost measurement; the
// minimum is kept, which suppresses scheduler noise when the test suite
// runs packages in parallel.
const measureRounds = 3

// MeasureTxCost returns the measured CPU cost (ns) per transmitted
// packet (best of several rounds).
func (r *Rig) MeasureTxCost(payload uint64, packets int) (float64, error) {
	for i := 0; i < packets/10+1; i++ { // warmup
		if err := r.TxPacket(payload); err != nil {
			return 0, err
		}
	}
	best := 0.0
	for round := 0; round < measureRounds; round++ {
		start := time.Now()
		for i := 0; i < packets; i++ {
			if err := r.TxPacket(payload); err != nil {
				return 0, err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(packets)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// MeasureRxCost returns the measured CPU cost (ns) per received packet
// (best of several rounds).
func (r *Rig) MeasureRxCost(frameSize, packets int) (float64, error) {
	if err := r.RxBurst(frameSize, packets/10+1); err != nil {
		return 0, err
	}
	const burst = 32
	best := 0.0
	for round := 0; round < measureRounds; round++ {
		start := time.Now()
		done := 0
		for done < packets {
			if err := r.RxBurst(frameSize, burst); err != nil {
				return 0, err
			}
			done += burst
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(done)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// Costs holds measured per-packet CPU costs for both builds.
type Costs struct {
	TxTCP, TxUDP, RxTCP, RxUDP map[core.Mode]float64
	// Metrics is the enforced rig's monitor-metrics snapshot, taken
	// after the measurement. Diagnostic output only — never part of
	// BENCH reports.
	Metrics *core.MetricsSnapshot
}

// MeasureCosts measures all path costs on fresh rigs.
func MeasureCosts(packets int) (*Costs, error) {
	c := &Costs{
		TxTCP: map[core.Mode]float64{},
		TxUDP: map[core.Mode]float64{},
		RxTCP: map[core.Mode]float64{},
		RxUDP: map[core.Mode]float64{},
	}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		rig, err := NewRig(mode)
		if err != nil {
			return nil, err
		}
		if c.TxTCP[mode], err = rig.MeasureTxCost(TCPPayload, packets); err != nil {
			return nil, err
		}
		if c.TxUDP[mode], err = rig.MeasureTxCost(UDPPayload, packets); err != nil {
			return nil, err
		}
		if c.RxTCP[mode], err = rig.MeasureRxCost(TCPPayload, packets); err != nil {
			return nil, err
		}
		if c.RxUDP[mode], err = rig.MeasureRxCost(UDPPayload, packets); err != nil {
			return nil, err
		}
		if mode == core.Enforce {
			m := rig.K.Sys.Metrics()
			c.Metrics = &m
		}
	}
	return c, nil
}

// Row is one line of the Fig. 12 table.
type Row struct {
	Test      string
	Unit      string
	StockTput float64
	LxfiTput  float64
	StockCPU  float64 // percent
	LxfiCPU   float64
}

// BuildTable derives the Fig. 12 rows from measured costs.
func BuildTable(c *Costs) []Row {
	// Wire calibration: the stock kernel's UDP TX runs wire-limited at
	// StockUDPCPU utilization.
	wireUDPpps := StockUDPCPU * 1e9 / c.TxUDP[core.Off]
	wireBps := wireUDPpps * UDPFrame          // bytes/sec of the calibrated wire
	wireTCPpps := wireBps / float64(TCPFrame) // same wire in TCP frames

	stream := func(test string, wirePPS float64, cost map[core.Mode]float64, unitPerPkt float64, unit string) Row {
		row := Row{Test: test, Unit: unit}
		for _, mode := range []core.Mode{core.Off, core.Enforce} {
			cpuPPS := 1e9 / cost[mode]
			pps := wirePPS
			if cpuPPS < pps {
				pps = cpuPPS
			}
			cpu := 100 * pps * cost[mode] / 1e9
			if mode == core.Off {
				row.StockTput, row.StockCPU = pps*unitPerPkt, cpu
			} else {
				row.LxfiTput, row.LxfiCPU = pps*unitPerPkt, cpu
			}
		}
		return row
	}

	// For RX streams the offered load is what the (stock) remote peer
	// puts on the wire, bounded so the slower receiver can still keep
	// up — the paper's RX rows show equal throughput with CPU pinned.
	rxStream := func(test string, wirePPS float64, cost map[core.Mode]float64, unitPerPkt float64, unit string) Row {
		offered := wirePPS
		if lim := 1e9 / c.RxUDP[core.Enforce]; test == "UDP STREAM RX" && lim < offered {
			offered = lim
		}
		row := Row{Test: test, Unit: unit}
		for _, mode := range []core.Mode{core.Off, core.Enforce} {
			pps := offered
			if cpuPPS := 1e9 / cost[mode]; cpuPPS < pps {
				pps = cpuPPS
			}
			cpu := 100 * pps * cost[mode] / 1e9
			if mode == core.Off {
				row.StockTput, row.StockCPU = pps*unitPerPkt, cpu
			} else {
				row.LxfiTput, row.LxfiCPU = pps*unitPerPkt, cpu
			}
		}
		return row
	}

	rr := func(test string, latNs float64, cost map[core.Mode]float64) Row {
		row := Row{Test: test, Unit: "Tx/sec"}
		for _, mode := range []core.Mode{core.Off, core.Enforce} {
			// One transaction: request out + response in, two wire
			// crossings plus CPU on both directions.
			rtt := 2*latNs + 2*cost[mode]
			tps := 1e9 / rtt
			cpu := 100 * (2 * cost[mode]) / rtt
			if mode == core.Off {
				row.StockTput, row.StockCPU = tps, cpu
			} else {
				row.LxfiTput, row.LxfiCPU = tps, cpu
			}
		}
		return row
	}

	tcpBits := float64(TCPPayload) * 8 / 1e6 // Mbit per packet
	return []Row{
		stream("TCP STREAM TX", wireTCPpps, c.TxTCP, tcpBits, "Mbit/s"),
		rxStream("TCP STREAM RX", wireTCPpps, c.RxTCP, tcpBits, "Mbit/s"),
		stream("UDP STREAM TX", wireUDPpps, c.TxUDP, 1e-6, "Mpkt/s"),
		rxStream("UDP STREAM RX", wireUDPpps, c.RxUDP, 1e-6, "Mpkt/s"),
		rr("TCP RR", MultiSwitchLatNs, avgCost(c.TxTCP, c.RxTCP)),
		rr("UDP RR", MultiSwitchLatNs, avgCost(c.TxUDP, c.RxUDP)),
		rr("TCP RR (1-switch)", OneSwitchLatNs, avgCost(c.TxTCP, c.RxTCP)),
		rr("UDP RR (1-switch)", OneSwitchLatNs, avgCost(c.TxUDP, c.RxUDP)),
	}
}

func avgCost(a, b map[core.Mode]float64) map[core.Mode]float64 {
	out := map[core.Mode]float64{}
	for _, m := range []core.Mode{core.Off, core.Enforce} {
		out[m] = (a[m] + b[m]) / 2
	}
	return out
}

// Format renders the Fig. 12 table.
func Format(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s %8s\n", "Test", "Stock", "LXFI", "CPU%", "CPU%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %9.1f %s %9.1f %s %7.0f%% %7.0f%%\n",
			r.Test, r.StockTput, r.Unit, r.LxfiTput, r.Unit, r.StockCPU, r.LxfiCPU)
	}
	return b.String()
}

// --- Figure 13: guard breakdown for UDP STREAM TX ---

// GuardRow is one line of the Fig. 13 table.
type GuardRow struct {
	Guard     string
	PerPacket float64
	NsPerCall float64
	NsPerPkt  float64
}

// GuardBreakdown measures the per-packet guard counts on the UDP TX
// path under enforcement, and per-guard costs with targeted microloops,
// reproducing Figure 13.
func GuardBreakdown(packets int) ([]GuardRow, error) {
	rig, err := NewRig(core.Enforce)
	if err != nil {
		return nil, err
	}
	// Count guards over the workload.
	before := rig.K.Sys.Mon.Stats.Snapshot()
	for i := 0; i < packets; i++ {
		if err := rig.TxPacket(UDPPayload); err != nil {
			return nil, err
		}
	}
	d := rig.K.Sys.Mon.Stats.Snapshot().Sub(before)
	per := func(v uint64) float64 { return float64(v) / float64(packets) }

	costs, err := GuardCosts()
	if err != nil {
		return nil, err
	}

	rows := []GuardRow{
		{Guard: "Annotation action", PerPacket: per(d.AnnotationActions), NsPerCall: costs.AnnotationNs},
		{Guard: "Function entry", PerPacket: per(d.FuncEntries), NsPerCall: costs.EntryNs},
		{Guard: "Function exit", PerPacket: per(d.FuncExits), NsPerCall: costs.ExitNs},
		{Guard: "Mem-write check", PerPacket: per(d.MemWriteChecks), NsPerCall: costs.MemWriteNs},
		{Guard: "Kernel ind-call all", PerPacket: per(d.IndCallAll), NsPerCall: costs.IndCallFastNs},
		{Guard: "Kernel ind-call e1000", PerPacket: per(d.IndCallSlow), NsPerCall: costs.IndCallSlowNs},
	}
	for i := range rows {
		rows[i].NsPerPkt = rows[i].PerPacket * rows[i].NsPerCall
	}
	return rows, nil
}

// GuardCostSet holds measured per-guard costs in ns.
type GuardCostSet struct {
	AnnotationNs  float64
	EntryNs       float64
	ExitNs        float64
	MemWriteNs    float64
	IndCallFastNs float64
	IndCallSlowNs float64
}

// GuardCosts measures the cost of each guard type with dedicated
// microloops (enforced build minus stock build where applicable).
func GuardCosts() (*GuardCostSet, error) {
	const iters = 20000
	out := &GuardCostSet{}

	// Build a tiny rig: one module with an empty function, a function
	// doing one store, and one calling an annotated kernel function.
	build := func(mode core.Mode) (*core.Thread, *core.Module, mem.Addr, error) {
		k := kernel.New()
		k.Sys.Mon.SetMode(mode)
		th := k.Sys.NewThread("cost")
		var buf uint64
		m, err := k.Sys.LoadModule(core.ModuleSpec{
			Name:     "cost",
			Imports:  []string{"kmalloc", "spin_lock", "spin_lock_init"},
			DataSize: 4096,
			Funcs: []core.FuncSpec{
				{Name: "empty", Impl: func(t *core.Thread, a []uint64) uint64 { return 0 }},
				{Name: "store", Impl: func(t *core.Thread, a []uint64) uint64 {
					_ = t.WriteU64(mem.Addr(buf), 1)
					return 0
				}},
				{Name: "annot", Impl: func(t *core.Thread, a []uint64) uint64 {
					_, _ = t.CallKernel("spin_lock", buf)
					return 0
				}},
				{Name: "setup", Impl: func(t *core.Thread, a []uint64) uint64 {
					b, _ := t.CallKernel("kmalloc", 64)
					buf = b
					_, _ = t.CallKernel("spin_lock_init", b)
					return 0
				}},
			},
		})
		if err != nil {
			return nil, nil, 0, err
		}
		if _, err := th.CallModule(m, "setup"); err != nil {
			return nil, nil, 0, err
		}
		return th, m, mem.Addr(buf), nil
	}

	timeCall := func(th *core.Thread, m *core.Module, fn string) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := th.CallModule(m, fn); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters, nil
	}

	thOff, mOff, _, err := build(core.Off)
	if err != nil {
		return nil, err
	}
	thOn, mOn, _, err := build(core.Enforce)
	if err != nil {
		return nil, err
	}

	emptyOff, err := timeCall(thOff, mOff, "empty")
	if err != nil {
		return nil, err
	}
	emptyOn, err := timeCall(thOn, mOn, "empty")
	if err != nil {
		return nil, err
	}
	wrapper := emptyOn - emptyOff
	if wrapper < 0 {
		wrapper = 0
	}
	// Split the wrapper cost between entry (principal resolution +
	// shadow push) and exit, weighted toward entry as in the paper
	// (16 vs 14 ns).
	out.EntryNs = wrapper * 0.55
	out.ExitNs = wrapper * 0.45

	storeOff, err := timeCall(thOff, mOff, "store")
	if err != nil {
		return nil, err
	}
	storeOn, err := timeCall(thOn, mOn, "store")
	if err != nil {
		return nil, err
	}
	out.MemWriteNs = max0(storeOn - storeOff - wrapper)

	annotOff, err := timeCall(thOff, mOff, "annot")
	if err != nil {
		return nil, err
	}
	annotOn, err := timeCall(thOn, mOn, "annot")
	if err != nil {
		return nil, err
	}
	// annot does one nested kernel call (one more wrapper) with one
	// check action.
	out.AnnotationNs = max0(annotOn - annotOff - 2*wrapper)

	// Indirect calls: fast path (kernel-owned slot) vs slow path
	// (module-writable slot).
	rig, err := NewRig(core.Enforce)
	if err != nil {
		return nil, err
	}
	ops, _ := rig.K.Sys.AS.ReadU64(rig.Stack.DevField(rig.Drv.Dev, "ops"))
	slowSlot := rig.Stack.OpsSlot(mem.Addr(ops), "ndo_open")
	fastSlot := rig.K.Sys.Statics.Alloc(8, 8)
	target, _ := rig.K.Sys.AS.ReadU64(slowSlot)
	if err := rig.K.Sys.AS.WriteU64(fastSlot, target); err != nil {
		return nil, err
	}
	timeInd := func(slot mem.Addr) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := rig.Th.IndirectCall(slot, netstack.NdoOpen, uint64(rig.Drv.Dev)); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters, nil
	}
	fast, err := timeInd(fastSlot)
	if err != nil {
		return nil, err
	}
	slow, err := timeInd(slowSlot)
	if err != nil {
		return nil, err
	}
	out.IndCallFastNs = max0(fast - emptyOn)
	out.IndCallSlowNs = max0(slow - emptyOn)
	return out, nil
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// FormatGuards renders the Fig. 13 table.
func FormatGuards(rows []GuardRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %12s %12s\n", "Guard type", "per pkt", "ns/guard", "ns/pkt")
	var total float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %10.1f %12.0f %12.0f\n", r.Guard, r.PerPacket, r.NsPerCall, r.NsPerPkt)
		total += r.NsPerPkt
	}
	fmt.Fprintf(&b, "%-24s %10s %12s %12.0f\n", "Total", "", "", total)
	return b.String()
}

package netstack_test

import (
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
)

// strictDriver is a Guideline-4 driver: it never holds WRITE access to
// sk_buff headers, only REF(sk_buff fields) plus payload WRITE.
type strictDriver struct {
	m    *core.Module
	dev  mem.Addr
	sent int
	// corrupt makes xmit attempt a direct header store (the attack the
	// strict interface exists to prevent).
	corrupt bool
}

func loadStrictDriver(t *testing.T, k *kernel.Kernel, s *netstack.Stack) *strictDriver {
	t.Helper()
	s.StrictInit()
	d := &strictDriver{}
	imports := append([]string{"alloc_etherdev", "register_netdev"}, netstack.StrictImports...)
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "strictnet",
		Imports:  imports,
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "xmit", Type: netstack.NdoStartXmitStrict,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					skb := mem.Addr(args[0])
					if d.corrupt {
						// Attack: rewrite the header's data pointer
						// directly. Must fail: no WRITE capability for
						// the header under the strict interface.
						if err := th.WriteU64(s.SkbField(skb, "data"), 0xdead); err != nil {
							return ^uint64(0)
						}
						return 0
					}
					// Legitimate: touch the payload (WRITE granted)...
					data, _ := th.ReadU64(s.SkbField(skb, "head"))
					if err := th.WriteU8(mem.Addr(data), 0xAA); err != nil {
						return ^uint64(0)
					}
					// ...and update a header field through the accessor.
					if ret, err := th.CallKernel("skb_set_len", uint64(skb), 60); err != nil || kernel.IsErr(ret) {
						return ^uint64(0)
					}
					d.sent++
					return 0
				},
			},
			{
				Name: "setup",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					dev, err := th.CallKernel("alloc_etherdev")
					if err != nil || dev == 0 {
						return 1
					}
					d.dev = mem.Addr(dev)
					mod := th.CurrentModule()
					if err := th.WriteU64(s.OpsSlot(mod.Data, "ndo_start_xmit"), uint64(mod.Funcs["xmit"].Addr)); err != nil {
						return 2
					}
					if err := th.WriteU64(s.DevField(d.dev, "ops"), uint64(mod.Data)); err != nil {
						return 3
					}
					if ret, err := th.CallKernel("register_netdev", dev); err != nil || kernel.IsErr(ret) {
						return 4
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.m = m
	return d
}

func TestStrictDriverLegitimatePath(t *testing.T) {
	k, s, th := newStack(t, core.Enforce)
	d := loadStrictDriver(t, k, s)
	if ret, err := th.CallModule(d.m, "setup", 0); err != nil || ret != 0 {
		t.Fatalf("setup: ret=%d err=%v", ret, err)
	}
	skb, _ := s.AllocSkb(128)
	ret, err := s.XmitSkbStrict(th, d.dev, skb)
	if err != nil || ret != 0 {
		t.Fatalf("strict xmit: ret=%d err=%v", int64(ret), err)
	}
	if d.sent != 1 {
		t.Fatal("xmit did not run")
	}
	// The accessor performed the header store on the module's behalf.
	n, _ := k.Sys.AS.ReadU64(s.SkbField(skb, "len"))
	if n != 60 {
		t.Fatalf("len = %d", n)
	}
	if v := k.Sys.Mon.LastViolation(); v != nil {
		t.Fatalf("violation on legit strict path: %v", v)
	}
}

func TestStrictDriverCannotCorruptHeader(t *testing.T) {
	// The Guideline-4 payoff: a compromised strict driver cannot rewrite
	// the sk_buff header (e.g. its data pointer), because it holds only
	// a REF capability for the header.
	k, s, th := newStack(t, core.Enforce)
	d := loadStrictDriver(t, k, s)
	_, _ = th.CallModule(d.m, "setup", 0)
	d.corrupt = true
	skb, _ := s.AllocSkb(128)
	origData, _ := k.Sys.AS.ReadU64(s.SkbField(skb, "data"))
	_, _ = s.XmitSkbStrict(th, d.dev, skb)
	now, _ := k.Sys.AS.ReadU64(s.SkbField(skb, "data"))
	if now != origData {
		t.Fatalf("header corrupted: data %#x -> %#x", origData, now)
	}
	if k.Sys.Mon.LastViolation() == nil {
		t.Fatal("no violation recorded for the header store")
	}
	// Contrast: the standard (WRITE-granting) interface from
	// netstack_test.go does allow header stores — that asymmetry is the
	// design choice under ablation.
	p, _ := d.m.Set.Lookup(d.dev)
	if k.Sys.Caps.Check(p, caps.WriteCap(skb, 8)) {
		t.Fatal("strict driver holds header WRITE capability")
	}
}

func TestStrictAccessorRequiresRef(t *testing.T) {
	// A module calling skb_set_len on an skb it was never handed fails
	// the REF check.
	k, s, th := newStack(t, core.Enforce)
	s.StrictInit()
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "freeloader",
		Imports:  netstack.StrictImports,
		DataSize: 4096,
		Funcs: []core.FuncSpec{{
			Name: "poke", Params: []core.Param{core.P("skb", "struct sk_buff *")},
			Impl: func(th *core.Thread, args []uint64) uint64 {
				if _, err := th.CallKernel("skb_set_len", args[0], 9999); err != nil {
					return 1
				}
				return 0
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	skb, _ := s.AllocSkb(64)
	ret, _ := th.CallModule(m, "poke", uint64(skb))
	if ret != 1 {
		t.Fatal("accessor worked without a REF capability")
	}
}

package netstack

// Guideline 4 of §6: "When dealing with large data structures, where
// the module only needs write access to a small number of the
// structure's members, modify the kernel API to provide stronger API
// integrity. ... It would be safer to have the kernel provide functions
// to change the necessary fields in an sk_buff. Then LXFI could grant
// the module a REF capability, perhaps with a special type of
// `sk_buff fields`."
//
// This file implements that redesigned interface: field-accessor
// exports guarded by the special REF type, a capability iterator that
// hands a driver REF(sk_buff fields) + payload WRITE instead of WRITE
// over the whole sk_buff, and a strict variant of ndo_start_xmit using
// it. The ablation benchmarks compare the two designs; the security
// tests show the strict driver cannot corrupt the sk_buff header (e.g.
// redirect its data pointer) even if compromised.

import (
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// SkbFieldsRefType is the special REF type of Guideline 4.
const SkbFieldsRefType = "sk_buff fields"

// NdoStartXmitStrict is the redesigned transmit interface: the driver
// receives REF(sk_buff fields) for the header plus WRITE for the
// payload only.
const NdoStartXmitStrict = "net_device_ops.ndo_start_xmit_strict"

// StrictInit registers the Guideline-4 interface; call once after Init
// when a strict driver is in use.
func (s *Stack) StrictInit() {
	sys := s.K.Sys
	if _, ok := sys.FPtrType(NdoStartXmitStrict); ok {
		s.gStartXmitStrict = sys.BindIndirect(NdoStartXmitStrict)
		return
	}

	// skb_strict_caps: REF for the header, WRITE for the payload only.
	sys.RegisterIterator("skb_strict_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		skb := mem.Addr(uint64(args[0]))
		if skb == 0 {
			return nil
		}
		if err := emit(caps.RefCap(SkbFieldsRefType, skb)); err != nil {
			return err
		}
		data, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("head")))
		size, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("truesize")))
		if data != 0 && size > 0 {
			return emit(caps.WriteCap(mem.Addr(data), size))
		}
		return nil
	})

	sys.RegisterFPtrType(NdoStartXmitStrict,
		[]core.Param{core.P("skb", "struct sk_buff *"), core.P("dev", "struct net_device *")},
		"principal(dev) pre(transfer(skb_strict_caps(skb))) "+
			"post(if (return == NETDEV_TX_BUSY) transfer(skb_strict_caps(skb)))")
	s.gStartXmitStrict = sys.BindIndirect(NdoStartXmitStrict)

	// kfree_skb_strict: the free path matching the strict capability
	// split — ownership is proven with REF(sk_buff fields) + payload
	// WRITE rather than whole-struct WRITE.
	sys.RegisterKernelFunc("kfree_skb_strict",
		[]core.Param{core.P("skb", "struct sk_buff *")},
		"pre(transfer(skb_strict_caps(skb)))",
		func(t *core.Thread, args []uint64) uint64 {
			s.FreeSkb(mem.Addr(args[0]))
			return 0
		})

	// Field accessors: the kernel performs the header store after
	// checking the REF capability. Only the fields drivers legitimately
	// touch get accessors (the paper counts 5 of 51 for e1000).
	for _, field := range []string{"len", "dev", "protocol"} {
		field := field
		sys.RegisterKernelFunc("skb_set_"+field,
			[]core.Param{core.P("skb", "struct sk_buff *"), core.P("v", "u64")},
			"pre(check(ref(sk_buff fields), skb))",
			func(t *core.Thread, args []uint64) uint64 {
				if err := sys.AS.WriteU64(mem.Addr(args[0])+mem.Addr(s.skb.Off(field)), args[1]); err != nil {
					return kernel.Err(kernel.EFAULT)
				}
				return 0
			})
	}
}

// StrictImports are the extra kernel exports a Guideline-4 driver needs.
var StrictImports = []string{"skb_set_len", "skb_set_dev", "skb_set_protocol", "kfree_skb_strict"}

// XmitSkbStrict is dev_queue_xmit for a device whose driver implements
// the strict interface.
func (s *Stack) XmitSkbStrict(t *core.Thread, dev, skb mem.Addr) (uint64, error) {
	if s.gStartXmitStrict == nil {
		panic("netstack: XmitSkbStrict before StrictInit (strict interface not registered)")
	}
	sys := s.K.Sys
	q, err := sys.AS.ReadU64(dev + mem.Addr(s.ndev.Off("qdisc")))
	if err != nil || q == 0 {
		return 0, errNoQdisc(dev)
	}
	qd := mem.Addr(q)
	if _, err := s.gQdiscEnq.Call2(t, qd+mem.Addr(s.qdisc.Off("enqueue")), uint64(qd), uint64(skb)); err != nil {
		return 0, err
	}
	out, err := s.gQdiscDeq.Call1(t, qd+mem.Addr(s.qdisc.Off("dequeue")), uint64(qd))
	if err != nil || out == 0 {
		return 0, err
	}
	ops, err := sys.AS.ReadU64(dev + mem.Addr(s.ndev.Off("ops")))
	if err != nil || ops == 0 {
		return 0, errNoQdisc(dev)
	}
	slot := mem.Addr(ops) + mem.Addr(s.nops.Off("ndo_start_xmit"))
	return s.gStartXmitStrict.Call2(t, slot, out, uint64(dev))
}

type errNoQdisc mem.Addr

func (e errNoQdisc) Error() string { return "netstack: device has no qdisc/ops" }

package netstack_test

import (
	"errors"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
)

// toyDriver loads a minimal network driver module against the stack: it
// allocates a net_device, installs an ops table in its data section, and
// transmits by counting.
type toyDriver struct {
	m    *core.Module
	dev  mem.Addr
	sent int
	busy bool
}

func loadToyDriver(t *testing.T, k *kernel.Kernel, s *netstack.Stack) *toyDriver {
	t.Helper()
	d := &toyDriver{}
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "toynet",
		Imports:  []string{"alloc_etherdev", "register_netdev", "netif_rx", "alloc_skb", "kfree_skb"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "xmit", Type: netstack.NdoStartXmit,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if d.busy {
						return netstack.NetdevTxBusy
					}
					// Driver touches the payload (it owns skb caps now).
					skb := mem.Addr(args[0])
					data, _ := th.ReadU64(s.SkbField(skb, "data"))
					if err := th.WriteU8(mem.Addr(data), 0xEE); err != nil {
						return ^uint64(0)
					}
					d.sent++
					return 0
				},
			},
			{
				Name: "setup", Params: []core.Param{core.P("arg", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					dev, err := th.CallKernel("alloc_etherdev")
					if err != nil || dev == 0 {
						return 1
					}
					d.dev = mem.Addr(dev)
					mod := th.CurrentModule()
					ops := mod.Data // ops table at start of .data
					xmit := mod.Funcs["xmit"].Addr
					if err := th.WriteU64(s.OpsSlot(ops, "ndo_start_xmit"), uint64(xmit)); err != nil {
						return 2
					}
					if err := th.WriteU64(s.DevField(d.dev, "ops"), uint64(ops)); err != nil {
						return 3
					}
					if ret, err := th.CallKernel("register_netdev", dev); err != nil || kernel.IsErr(ret) {
						return 4
					}
					return 0
				},
			},
			{
				Name: "rx_inject", Params: []core.Param{core.P("n", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					skb, err := th.CallKernel("alloc_skb", 64)
					if err != nil || skb == 0 {
						return 1
					}
					if err := th.WriteU64(s.SkbField(mem.Addr(skb), "len"), args[0]); err != nil {
						return 2
					}
					if ret, err := th.CallKernel("netif_rx", skb); err != nil || kernel.IsErr(ret) {
						return 3
					}
					// After the transfer, the driver must have lost write
					// access to the packet.
					if err := th.WriteU64(s.SkbField(mem.Addr(skb), "len"), 0); err == nil {
						return 4 // write should have failed under enforcement
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.m = m
	return d
}

func newStack(t *testing.T, mode core.Mode) (*kernel.Kernel, *netstack.Stack, *core.Thread) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	s := netstack.Init(k)
	return k, s, k.Sys.NewThread("net")
}

func TestDriverSetupAndXmit(t *testing.T) {
	k, s, th := newStack(t, core.Enforce)
	d := loadToyDriver(t, k, s)
	if ret, err := th.CallModule(d.m, "setup", 0); err != nil || ret != 0 {
		t.Fatalf("setup: ret=%d err=%v", ret, err)
	}

	skb, err := s.AllocSkb(128)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := s.XmitSkb(th, d.dev, skb)
	if err != nil || ret != 0 {
		t.Fatalf("xmit: ret=%d err=%v", ret, err)
	}
	if d.sent != 1 {
		t.Fatalf("sent = %d", d.sent)
	}
	// The driver wrote the payload marker through its granted capability.
	data, _ := k.Sys.AS.ReadU64(s.SkbField(skb, "data"))
	b, _ := k.Sys.AS.ReadU8(mem.Addr(data))
	if b != 0xEE {
		t.Fatalf("payload marker = %#x", b)
	}
}

func TestXmitBusyReturnsOwnership(t *testing.T) {
	k, s, th := newStack(t, core.Enforce)
	d := loadToyDriver(t, k, s)
	if ret, err := th.CallModule(d.m, "setup", 0); err != nil || ret != 0 {
		t.Fatalf("setup: ret=%d err=%v", ret, err)
	}
	d.busy = true
	skb, _ := s.AllocSkb(64)
	ret, err := s.XmitSkb(th, d.dev, skb)
	if err != nil || ret != netstack.NetdevTxBusy {
		t.Fatalf("busy xmit: ret=%d err=%v", ret, err)
	}
	// post(if (return == NETDEV_TX_BUSY) transfer(skb_caps(skb))): the
	// kernel got the skb capabilities back; the driver retains none. A
	// fresh kernel-side write must succeed (kernel is trusted anyway),
	// but the key check: the driver module no longer holds the caps.
	if k.Sys.Caps.Check(d.m.Set.Shared(), caps.WriteCap(skb, 8)) {
		t.Fatal("driver retained skb capability after NETDEV_TX_BUSY")
	}
}

func TestNetifRxTransferRevokes(t *testing.T) {
	k, s, th := newStack(t, core.Enforce)
	d := loadToyDriver(t, k, s)
	_, _ = th.CallModule(d.m, "setup", 0)
	// The module's post-transfer write attempt is a violation: it gets
	// blocked and the module is killed, which the wrapper reports.
	ret, err := th.CallModule(d.m, "rx_inject", 640)
	if ret != 0 {
		t.Fatalf("rx_inject: ret=%d (4 means post-transfer write was NOT blocked)", ret)
	}
	if !errors.Is(err, core.ErrModuleDead) {
		t.Fatalf("expected module kill after post-transfer write, got %v", err)
	}
	if s.BacklogLen() != 1 {
		t.Fatalf("backlog = %d", s.BacklogLen())
	}
	skb := s.PopRx()
	n, _ := k.Sys.AS.ReadU64(s.SkbField(skb, "len"))
	if n != 640 {
		t.Fatalf("len = %d", n)
	}
	if s.PopRx() != 0 {
		t.Fatal("backlog should be empty")
	}
	if k.Sys.Mon.LastViolation() == nil {
		t.Fatal("expected a logged violation for the post-transfer write")
	}
}

func TestNapiAddRequiresOwnCallable(t *testing.T) {
	k, s, th := newStack(t, core.Enforce)
	d := loadToyDriver(t, k, s)
	_, _ = th.CallModule(d.m, "setup", 0)

	// A second module trying to register a poll function pointing at the
	// first module's code: check(call, poll) fails.
	evil, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "evilnet",
		Imports:  []string{"netif_napi_add", "alloc_etherdev"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{{
			Name: "attack", Params: []core.Param{core.P("target", "u64")},
			Impl: func(th *core.Thread, args []uint64) uint64 {
				dev, _ := th.CallKernel("alloc_etherdev")
				if dev == 0 {
					return 9
				}
				if _, err := th.CallKernel("netif_napi_add", dev, args[0]); err != nil {
					return 1 // blocked
				}
				return 0
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	foreign := d.m.Funcs["xmit"].Addr
	ret, _ := th.CallModule(evil, "attack", uint64(foreign))
	if ret != 1 {
		t.Fatal("module registered a poll callback it cannot call itself")
	}
}

func TestSocketFamilyLifecycle(t *testing.T) {
	k, s, th := newStack(t, core.Enforce)
	var privWrites int
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "toyproto",
		Imports:  []string{"sock_register", "kmalloc"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "create", Type: netstack.FamilyCreate,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					sock := mem.Addr(args[0])
					mod := th.CurrentModule()
					// The copy(write, sock) annotation lets the module
					// fill in sock->ops.
					if err := th.WriteU64(s.SockField(sock, "ops"), uint64(mod.Data)); err != nil {
						return kernel.Err(kernel.EFAULT)
					}
					return 0
				},
			},
			{
				Name: "sendmsg", Type: netstack.OpsSendmsg,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					privWrites++
					return args[2] // bytes "sent"
				},
			},
			{
				Name: "init", Params: nil,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					mod := th.CurrentModule()
					// proto_ops table in .data: install sendmsg.
					if err := th.WriteU64(s.ProtoOpsSlot(mod.Data, "sendmsg"),
						uint64(mod.Funcs["sendmsg"].Addr)); err != nil {
						return 1
					}
					if ret, err := th.CallKernel("sock_register", 42,
						uint64(mod.Funcs["create"].Addr)); err != nil || kernel.IsErr(ret) {
						return 2
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ret, err := th.CallModule(m, "init"); err != nil || ret != 0 {
		t.Fatalf("init: ret=%d err=%v", ret, err)
	}
	sock, err := s.Socket(th, 42)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Sendmsg(th, sock, mem.UserHeap, 100, 0)
	if err != nil || n != 100 {
		t.Fatalf("sendmsg: n=%d err=%v", n, err)
	}
	if privWrites != 1 {
		t.Fatal("module sendmsg did not run")
	}
	if _, err := s.Socket(th, 7); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestSocketOpsRedirectBlocked(t *testing.T) {
	// A module-writable proto_ops slot redirected to a function the
	// module may not call is rejected at the kernel's indirect call.
	k, s, th := newStack(t, core.Enforce)
	var m *core.Module
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "toyproto",
		Imports:  []string{"sock_register"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "create", Type: netstack.FamilyCreate,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					_ = th.WriteU64(s.SockField(mem.Addr(args[0]), "ops"), uint64(th.CurrentModule().Data))
					return 0
				},
			},
			{
				Name: "init",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					mod := th.CurrentModule()
					_, _ = th.CallKernel("sock_register", 42, uint64(mod.Funcs["create"].Addr))
					return 0
				},
			},
			{
				Name: "corrupt", Params: []core.Param{core.P("target", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					_ = th.WriteU64(s.ProtoOpsSlot(th.CurrentModule().Data, "ioctl"), args[0])
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = th.CallModule(m, "init")
	sock, err := s.Socket(th, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Redirect ioctl to detach_pid (an exported kernel symbol the module
	// has no CALL capability for) — the rootkit move from §8.1.
	detach, _ := k.Sys.FuncByName("detach_pid")
	if ret, err := th.CallModule(m, "corrupt", uint64(detach.Addr)); err != nil || ret != 0 {
		t.Fatalf("corrupt: ret=%d err=%v", ret, err)
	}
	if _, err := s.Ioctl(th, sock, 1, 2); !errors.Is(err, core.ErrViolation) {
		t.Fatalf("redirected ioctl not blocked: %v", err)
	}
}

func TestStockXmitUninstrumented(t *testing.T) {
	k, s, th := newStack(t, core.Off)
	d := loadToyDriver(t, k, s)
	if ret, err := th.CallModule(d.m, "setup", 0); err != nil || ret != 0 {
		t.Fatalf("setup: ret=%d err=%v", ret, err)
	}
	skb, _ := s.AllocSkb(64)
	before := k.Sys.Mon.Stats.Snapshot()
	if ret, err := s.XmitSkb(th, d.dev, skb); err != nil || ret != 0 {
		t.Fatalf("xmit: ret=%d err=%v", ret, err)
	}
	delta := k.Sys.Mon.Stats.Snapshot().Sub(before)
	if delta.IndCallAll != 0 || delta.AnnotationActions != 0 {
		t.Fatalf("stock mode ran guards: %+v", delta)
	}
}

package netstack

// Batched data path — the line-rate half of the paper's Fig. 11–13
// story. The per-packet ndo_start_xmit crossing is what makes the UDP
// rows CPU-bound under enforcement; TCP survives because large segments
// amortize it. This file amortizes it structurally:
//
//   - TX: dev_queue_xmit still enqueues per-skb on the qdisc
//     (EnqueueTx), but the dequeue side (DrainTx) drains up to a budget
//     of skbs and hands them to the driver through ONE
//     ndo_start_xmit_batch crossing. The annotation program checks the
//     skb array once per batch, with per-element WRITE verdicts riding
//     the per-thread check cache; revoked elements are denied at drain
//     time by an explicit epoch-validated owner re-check, so a
//     capability revoked between enqueue and drain can never reach the
//     module.
//   - RX: the module's NAPI poll delivers a whole budget through two
//     crossings (alloc_skb_batch + netif_rx_batch) instead of two
//     crossings per packet, with receive-side capability transfers
//     granted per-batch.
//
// Consumed TX skbs are completed kernel-side after the crossing
// returns: their capabilities are revoked from every principal and the
// buffers freed, the batch analogue of kfree_skb's transfer annotation
// — without the per-skb kernel crossing the per-packet path pays.

import (
	"fmt"
	"sync/atomic"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/failpoint"
	"lxfi/internal/mem"
)

// NdoStartXmitBatch is the batched transmit interface: the kernel hands
// the driver an array of skb pointers and the driver returns how many
// it consumed.
const NdoStartXmitBatch = "net_device_ops.ndo_start_xmit_batch"

// TxBatchMax bounds one batch crossing (the per-device batch array's
// capacity, and the sanity cap the iterators enforce on annotation
// walks).
const TxBatchMax = 64

// DefaultTxBudget is the drain budget streaming workloads use — the
// "B" of the crossings-per-byte acceptance target.
const DefaultTxBudget = 8

// emitSkbArray emits the capability pair (struct WRITE + payload WRITE)
// for every non-nil skb pointer in arr[0:n] — skb_caps lifted over a
// batch.
func (s *Stack) emitSkbArray(arr mem.Addr, n int64, emit func(caps.Cap) error) error {
	if arr == 0 || n <= 0 {
		return nil
	}
	if n > TxBatchMax {
		n = TxBatchMax
	}
	sys := s.K.Sys
	for i := int64(0); i < n; i++ {
		w, err := sys.AS.ReadU64(arr + mem.Addr(i*8))
		if err != nil || w == 0 {
			continue
		}
		skb := mem.Addr(w)
		if err := emit(caps.WriteCap(skb, s.skb.Size)); err != nil {
			return err
		}
		data, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("head")))
		size, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("truesize")))
		if data != 0 && size > 0 {
			if err := emit(caps.WriteCap(mem.Addr(data), size)); err != nil {
				return err
			}
		}
	}
	return nil
}

// registerBatchIterators registers the batch capability iterators.
// Runs before registerFPtrTypes so the batch annotation programs
// compile with the iterators resolved at bind time.
func (s *Stack) registerBatchIterators() {
	sys := s.K.Sys
	// skb_array_caps(arr, n): the capabilities of every skb named by an
	// n-element pointer array.
	sys.RegisterIterator("skb_array_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		return s.emitSkbArray(mem.Addr(uint64(args[0])), args[1], emit)
	})
}

// registerBatchExports registers the receive-side batch kernel exports.
func (s *Stack) registerBatchExports() {
	sys := s.K.Sys

	// alloc_skb_batch: the kernel fills a module-owned pointer array
	// with up to n fresh skbs of the given payload size and transfers
	// every allocated skb's capabilities in one post action. The pre
	// check pins API integrity: the module must own the array it asks
	// the kernel to write.
	sys.RegisterKernelFunc("alloc_skb_batch",
		[]core.Param{core.P("arr", "u64 *"), core.P("n", "u64"), core.P("size", "size_t")},
		"pre(check(write, arr, n * 8)) post(transfer(skb_array_caps(arr, return)))",
		func(t *core.Thread, args []uint64) uint64 {
			arr, n, size := mem.Addr(args[0]), args[1], args[2]
			if n > TxBatchMax {
				n = TxBatchMax
			}
			var done uint64
			for ; done < n; done++ {
				skb, err := s.AllocSkb(size)
				if err != nil {
					break
				}
				if sys.AS.WriteU64(arr+mem.Addr(done*8), uint64(skb)) != nil {
					s.FreeSkb(skb)
					break
				}
			}
			return done
		})

	// netif_rx_batch: netif_rx lifted over a batch — one crossing
	// appends n packets to the protocol backlog, and the transfer
	// annotation revokes the driver's write access to all of them so
	// none can be modified after the kernel accepted the batch (§3.3).
	sys.RegisterKernelFunc("netif_rx_batch",
		[]core.Param{core.P("arr", "u64 *"), core.P("n", "u64")},
		"pre(transfer(skb_array_caps(arr, n)))",
		func(t *core.Thread, args []uint64) uint64 {
			arr, n := mem.Addr(args[0]), args[1]
			if n > TxBatchMax {
				n = TxBatchMax
			}
			var accepted uint64
			s.backlogMu.Lock()
			for i := uint64(0); i < n; i++ {
				w, err := sys.AS.ReadU64(arr + mem.Addr(i*8))
				if err != nil || w == 0 {
					continue
				}
				s.backlog = append(s.backlog, mem.Addr(w))
				s.RxDelivered++
				accepted++
			}
			s.backlogMu.Unlock()
			return accepted
		})
}

// txBatchArr returns the kernel-owned batch array for a device,
// allocating it on first use. Kernel statics: the module only ever
// reads it, so the crossing needs no array capability transfer.
func (s *Stack) txBatchArr(dev mem.Addr) mem.Addr {
	s.qmu.Lock()
	arr, ok := s.txBatch[dev]
	if !ok {
		arr = s.K.Sys.Statics.Alloc(TxBatchMax*8, 8)
		s.txBatch[dev] = arr
	}
	s.qmu.Unlock()
	return arr
}

// EnqueueTx is the enqueue half of batched dev_queue_xmit: the skb goes
// onto the device's qdisc and, if owner is non-nil, the principal whose
// WRITE capability over the skb must still be live when the batch
// drains is recorded. DrainTx performs the actual crossing.
func (s *Stack) EnqueueTx(t *core.Thread, dev, skb mem.Addr, owner *caps.Principal) error {
	// Same fault seam as the per-packet path: an injected error drops
	// the packet before it reaches the qdisc.
	if err := failpoint.Inject("netstack.xmit"); err != nil {
		return err
	}
	qd, err := s.devQdisc(dev)
	if err != nil {
		return err
	}
	if _, err := s.gQdiscEnq.Call2(t, qd+mem.Addr(s.qdisc.Off("enqueue")), uint64(qd), uint64(skb)); err != nil {
		return err
	}
	if owner != nil {
		s.qmu.Lock()
		s.txOwner[uint64(skb)] = owner
		s.qmu.Unlock()
	}
	return nil
}

// DrainTx dequeues up to budget skbs from the device's qdisc,
// re-validates each recorded owner through the per-thread
// epoch-validated check cache, and hands the survivors to the driver in
// one ndo_start_xmit_batch crossing. Returns (consumed, denied):
// consumed skbs are completed kernel-side (capabilities revoked,
// buffers freed); denied skbs — those whose owner's WRITE capability
// was revoked between enqueue and drain — are dropped without ever
// reaching the module. A busy tail (driver consumed fewer than handed)
// is requeued at the head of the qdisc with its owner records restored.
func (s *Stack) DrainTx(t *core.Thread, dev mem.Addr, budget int) (consumed, denied int, err error) {
	// Fault site: cut power mid-batch — the drain fails after packets
	// were enqueued but before the batch crossing runs.
	if err := failpoint.Inject("netstack.xmit_batch"); err != nil {
		return 0, 0, err
	}
	if budget <= 0 || budget > TxBatchMax {
		budget = TxBatchMax
	}
	sys := s.K.Sys
	qd, err := s.devQdisc(dev)
	if err != nil {
		return 0, 0, err
	}
	arr := s.txBatchArr(dev)

	var owners [TxBatchMax]*caps.Principal
	n := 0
	for n < budget {
		out, err := s.gQdiscDeq.Call1(t, qd+mem.Addr(s.qdisc.Off("dequeue")), uint64(qd))
		if err != nil {
			return 0, denied, err
		}
		if out == 0 {
			break
		}
		owner := s.takeTxOwner(out)
		// Per-element revocation soundness: the verdict rides the
		// epoch-validated check cache, so a revoke between enqueue and
		// drain invalidates any cached allow and the authoritative
		// tables deny the element here.
		if owner != nil && !t.CheckCached(owner, caps.WriteCap(mem.Addr(out), s.skb.Size)) {
			denied++
			atomic.AddUint64(&s.txDenied, 1)
			s.FreeSkb(mem.Addr(out))
			continue
		}
		if err := sys.AS.WriteU64(arr+mem.Addr(n*8), out); err != nil {
			s.FreeSkb(mem.Addr(out))
			return 0, denied, err
		}
		owners[n] = owner
		n++
	}
	if n == 0 {
		return 0, denied, nil
	}

	ops, err := sys.AS.ReadU64(dev + mem.Addr(s.ndev.Off("ops")))
	if err != nil || ops == 0 {
		return 0, denied, fmt.Errorf("netstack: device %#x has no ops", uint64(dev))
	}
	slot := mem.Addr(ops) + mem.Addr(s.nops.Off("ndo_start_xmit_batch"))
	ret, err := s.gStartXmitBatch.Call3(t, slot, uint64(arr), uint64(n), uint64(dev))
	if err != nil {
		return 0, denied, err
	}
	consumed = int(ret)
	if consumed > n {
		consumed = n
	}

	// Kernel-side TX completion for the consumed prefix: the crossing
	// transferred nothing, so the kernel still owns kernel-originated
	// skbs and frees them outright — the batch analogue of kfree_skb
	// without its per-skb crossing or capability churn. Elements a
	// module principal still owns are revoked everywhere first so no
	// capability dangles over freed memory.
	for i := 0; i < consumed; i++ {
		w, _ := sys.AS.ReadU64(arr + mem.Addr(i*8))
		if w == 0 {
			continue
		}
		skb := mem.Addr(w)
		if owners[i] != nil {
			data, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("head")))
			size, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("truesize")))
			sys.Caps.RevokeAll(caps.WriteCap(skb, s.skb.Size))
			if data != 0 && size > 0 {
				sys.Caps.RevokeAll(caps.WriteCap(mem.Addr(data), size))
			}
		}
		s.FreeSkb(skb)
	}

	// Busy tail: requeue the unconsumed skbs at the head so the retry
	// preserves wire order, and restore their owner records.
	if consumed < n {
		tail := make([]uint64, 0, n-consumed)
		for i := consumed; i < n; i++ {
			w, _ := sys.AS.ReadU64(arr + mem.Addr(i*8))
			if w == 0 {
				continue
			}
			tail = append(tail, w)
		}
		s.qmu.Lock()
		s.queues[qd] = append(tail, s.queues[qd]...)
		for i := consumed; i < n; i++ {
			if owners[i] != nil {
				w, _ := sys.AS.ReadU64(arr + mem.Addr(i*8))
				s.txOwner[w] = owners[i]
			}
		}
		s.qmu.Unlock()
	}
	return consumed, denied, nil
}

// takeTxOwner removes and returns the owner recorded for an enqueued
// skb (nil for kernel-originated packets).
func (s *Stack) takeTxOwner(skb uint64) *caps.Principal {
	s.qmu.Lock()
	owner := s.txOwner[skb]
	if owner != nil {
		delete(s.txOwner, skb)
	}
	s.qmu.Unlock()
	return owner
}

// SkbSize returns the size of the sk_buff struct — the extent of the
// WRITE capability DrainTx revalidates per element (tests grant and
// revoke exactly this capability).
func (s *Stack) SkbSize() uint64 { return s.skb.Size }

// QueuedTx returns how many skbs sit on the device's qdisc.
func (s *Stack) QueuedTx(dev mem.Addr) int {
	qd, err := s.devQdisc(dev)
	if err != nil {
		return 0
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queues[qd])
}

// TxDenied returns how many enqueued skbs DrainTx refused because their
// owner's capability had been revoked mid-batch.
func (s *Stack) TxDenied() uint64 { return atomic.LoadUint64(&s.txDenied) }

// devQdisc loads a device's qdisc pointer.
func (s *Stack) devQdisc(dev mem.Addr) (mem.Addr, error) {
	q, err := s.K.Sys.AS.ReadU64(dev + mem.Addr(s.ndev.Off("qdisc")))
	if err != nil || q == 0 {
		return 0, fmt.Errorf("netstack: device %#x has no qdisc", uint64(dev))
	}
	return mem.Addr(q), nil
}

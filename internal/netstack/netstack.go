// Package netstack implements the simulated Linux network substrate:
// sk_buffs, net_devices with their ops tables, NAPI, a pfifo packet
// scheduler (qdisc), and the annotated kernel exports network modules
// use (alloc_skb, netif_rx, netif_napi_add, ...).
//
// The interfaces and their annotations follow Figures 1 and 4 of the
// paper; the TX path mirrors dev_queue_xmit (enqueue on the device's
// qdisc, dequeue, then an indirect call through the module-writable
// ndo_start_xmit slot — the per-packet "Kernel ind-call e1000" guard of
// Figure 13).
package netstack

import (
	"fmt"
	"sync"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/failpoint"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
)

func init() {
	failpoint.Register("netstack.xmit")
	failpoint.Register("netstack.poll")
	failpoint.Register("netstack.xmit_batch")
}

// Layout names.
const (
	SkBuff    = "struct sk_buff"
	NetDevice = "struct net_device"
	NetDevOps = "struct net_device_ops"
	Socket    = "struct socket"
	ProtoOps  = "struct proto_ops"
	QdiscT    = "struct Qdisc"
)

// Function-pointer types (annotated interfaces).
const (
	NdoStartXmit = "net_device_ops.ndo_start_xmit"
	NdoOpen      = "net_device_ops.ndo_open"
	NdoStop      = "net_device_ops.ndo_stop"
	NapiPollType = "napi.poll"
	QdiscEnq     = "Qdisc.enqueue"
	QdiscDeq     = "Qdisc.dequeue"
	FamilyCreate = "net_proto_family.create"
	OpsRelease   = "proto_ops.release"
	OpsBind      = "proto_ops.bind"
	OpsSendmsg   = "proto_ops.sendmsg"
	OpsRecvmsg   = "proto_ops.recvmsg"
	OpsIoctl     = "proto_ops.ioctl"
)

// NetdevTxBusy is NETDEV_TX_BUSY: the driver could not take the packet
// and ownership of the skb returns to the caller (Fig. 4).
const NetdevTxBusy = 0x10

// Stack is the simulated network stack.
//
// Concurrency: worker threads drive different sockets simultaneously,
// so the stack's shared state is locked the way the VFS mounts are:
//
//   - regMu (RWMutex) guards the registries (families, devices,
//     napiPoll) — written at module init, read per operation;
//   - qmu guards the TX side: the qdisc queues, the per-device batch
//     arrays, and the enqueue-time owner records — short critical
//     sections, never held across a module crossing;
//   - backlogMu guards the RX side: the netif_rx backlog and the
//     RxDelivered counter. It is deliberately a different lock from
//     qmu so the TX drain loop and the NAPI poll/backlog path never
//     serialize against each other (they used to share one mutex);
//   - each socket created by Socket gets a per-instance operation lock
//     (sockMu/sockLocks): Sendmsg/Recvmsg/Bind/Ioctl/Release serialize
//     per socket, including the crossing into the module, so a
//     module's per-socket state sees one operation at a time while
//     different sockets run genuinely in parallel.
//
// Lock order: a socket's op lock → (regMu | qmu | backlogMu) →
// caps/core/mem internals. regMu, qmu, and backlogMu are leaves with
// respect to each other (never nested).
type Stack struct {
	K *kernel.Kernel

	skb   *layout.Struct
	ndev  *layout.Struct
	nops  *layout.Struct
	sock  *layout.Struct
	pops  *layout.Struct
	qdisc *layout.Struct

	regMu    sync.RWMutex
	families map[uint64]*family
	devices  []mem.Addr
	napiPoll map[mem.Addr]mem.Addr // dev -> kernel slot holding poll fn ptr

	qmu      sync.Mutex
	queues   map[mem.Addr][]uint64      // qdisc -> queued skb addrs
	txOwner  map[uint64]*caps.Principal // skb -> principal recorded at EnqueueTx
	txBatch  map[mem.Addr]mem.Addr      // dev -> kernel-owned batch array
	txDenied uint64                     // skbs denied at drain by a revoked owner

	backlogMu sync.Mutex
	backlog   []mem.Addr // skbs handed to the kernel by netif_rx

	sockMu    sync.Mutex
	sockLocks map[mem.Addr]*sync.Mutex // socket -> per-instance op lock

	// Bound indirect-call gates for the stack's interface slots,
	// resolved once at Init (bind-time resolution; the per-packet and
	// per-syscall paths never repeat the type lookup).
	gQdiscEnq       *core.IndGate
	gQdiscDeq       *core.IndGate
	gStartXmit      *core.IndGate
	gStartXmitBatch *core.IndGate
	gNapiPoll       *core.IndGate
	gCreate         *core.IndGate
	gSendmsg        *core.IndGate
	gRecvmsg        *core.IndGate
	gBind           *core.IndGate
	gIoctl          *core.IndGate
	gRelease        *core.IndGate
	// gStartXmitStrict is bound by StrictInit (strict.go).
	gStartXmitStrict *core.IndGate

	// RxDelivered counts packets that reached the kernel via netif_rx.
	// Guarded by backlogMu; read directly only from quiescent test
	// contexts.
	RxDelivered uint64
}

type family struct {
	module     *core.Module
	createSlot mem.Addr // kernel slot holding the create fn pointer
}

// Init builds the stack on a booted kernel, registering layouts, fptr
// types, and exports.
func Init(k *kernel.Kernel) *Stack {
	s := &Stack{
		K:         k,
		families:  make(map[uint64]*family),
		napiPoll:  make(map[mem.Addr]mem.Addr),
		queues:    make(map[mem.Addr][]uint64),
		txOwner:   make(map[uint64]*caps.Principal),
		txBatch:   make(map[mem.Addr]mem.Addr),
		sockLocks: make(map[mem.Addr]*sync.Mutex),
	}
	sys := k.Sys

	s.skb = sys.Layouts.Define(SkBuff,
		layout.F("data", 8),
		layout.F("len", 8),
		layout.F("head", 8),
		layout.F("truesize", 8),
		layout.F("dev", 8),
		layout.F("protocol", 8),
	)
	s.ndev = sys.Layouts.Define(NetDevice,
		layout.F("ops", 8),
		layout.F("qdisc", 8),
		layout.F("flags", 8),
		layout.F("name", 16),
	)
	s.nops = sys.Layouts.Define(NetDevOps,
		layout.F("ndo_open", 8),
		layout.F("ndo_stop", 8),
		layout.F("ndo_start_xmit", 8),
		layout.F("ndo_start_xmit_batch", 8),
	)
	s.sock = sys.Layouts.Define(Socket,
		layout.F("ops", 8),
		layout.F("sk", 8),
		layout.F("type", 8),
		layout.F("state", 8),
	)
	s.pops = sys.Layouts.Define(ProtoOps,
		layout.F("release", 8),
		layout.F("bind", 8),
		layout.F("connect", 8),
		layout.F("sendmsg", 8),
		layout.F("recvmsg", 8),
		layout.F("ioctl", 8),
	)
	s.qdisc = sys.Layouts.Define(QdiscT,
		layout.F("enqueue", 8),
		layout.F("dequeue", 8),
	)

	sys.RegisterConst("NETDEV_TX_BUSY", NetdevTxBusy)

	// skb_caps (Fig. 4 lines 51-54): the capabilities that make up an
	// sk_buff — the struct itself plus its payload buffer.
	sys.RegisterIterator("skb_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		skb := mem.Addr(uint64(args[0]))
		if skb == 0 {
			return nil
		}
		if err := emit(caps.WriteCap(skb, s.skb.Size)); err != nil {
			return err
		}
		data, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("head")))
		size, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("truesize")))
		if data != 0 && size > 0 {
			return emit(caps.WriteCap(mem.Addr(data), size))
		}
		return nil
	})

	s.registerBatchIterators()
	s.registerFPtrTypes()
	s.registerExports()
	s.registerBatchExports()
	return s
}

func (s *Stack) registerFPtrTypes() {
	sys := s.K.Sys
	sys.RegisterFPtrType(NdoStartXmit,
		[]core.Param{core.P("skb", "struct sk_buff *"), core.P("dev", "struct net_device *")},
		"principal(dev) pre(transfer(skb_caps(skb))) "+
			"post(if (return == NETDEV_TX_BUSY) transfer(skb_caps(skb)))")
	// The batched transmit interface: one crossing hands the driver a
	// kernel-owned array of n skb pointers. The annotation program
	// walks the array once per batch, transferring each element's
	// WRITE capabilities (struct + payload) with per-element verdicts
	// riding the per-thread check cache; a partial return hands the
	// unconsumed tail's capabilities back, the batch analogue of
	// NETDEV_TX_BUSY.
	// The batched xmit checks the array once per crossing instead of
	// transferring per-element ownership: the kernel retains the skbs
	// (the driver only reads them — zero-copy DMA semantics) and
	// completes consumed elements itself after the crossing returns, so
	// the batch carries no per-segment grant/revoke churn. Per-element
	// WRITE verdicts ride the per-thread check cache in DrainTx.
	sys.RegisterFPtrType(NdoStartXmitBatch,
		[]core.Param{core.P("skbs", "u64 *"), core.P("n", "u64"), core.P("dev", "struct net_device *")},
		"principal(dev) pre(check(skb_array_caps(skbs, n)))")
	sys.RegisterFPtrType(NdoOpen,
		[]core.Param{core.P("dev", "struct net_device *")}, "principal(dev)")
	sys.RegisterFPtrType(NdoStop,
		[]core.Param{core.P("dev", "struct net_device *")}, "principal(dev)")
	sys.RegisterFPtrType(NapiPollType,
		[]core.Param{core.P("dev", "struct net_device *"), core.P("budget", "int")},
		"principal(dev)")
	sys.RegisterFPtrType(QdiscEnq,
		[]core.Param{core.P("qdisc", "struct Qdisc *"), core.P("skb", "struct sk_buff *")}, "")
	sys.RegisterFPtrType(QdiscDeq,
		[]core.Param{core.P("qdisc", "struct Qdisc *")}, "")
	sys.RegisterFPtrType(FamilyCreate,
		[]core.Param{core.P("sock", "struct socket *")},
		"principal(sock) pre(copy(write, sock))")
	sys.RegisterFPtrType(OpsRelease,
		[]core.Param{core.P("sock", "struct socket *")}, "principal(sock)")
	sys.RegisterFPtrType(OpsBind,
		[]core.Param{core.P("sock", "struct socket *"), core.P("addr", "const void *"), core.P("len", "int")},
		"principal(sock)")
	sys.RegisterFPtrType(OpsSendmsg,
		[]core.Param{core.P("sock", "struct socket *"), core.P("buf", "const void *"),
			core.P("len", "size_t"), core.P("flags", "int")},
		"principal(sock)")
	sys.RegisterFPtrType(OpsRecvmsg,
		[]core.Param{core.P("sock", "struct socket *"), core.P("buf", "void *"),
			core.P("len", "size_t"), core.P("flags", "int")},
		"principal(sock)")
	sys.RegisterFPtrType(OpsIoctl,
		[]core.Param{core.P("sock", "struct socket *"), core.P("cmd", "int"), core.P("arg", "u64")},
		"principal(sock)")

	// Bind the crossing gates for the interface slots just registered.
	s.gQdiscEnq = sys.BindIndirect(QdiscEnq)
	s.gQdiscDeq = sys.BindIndirect(QdiscDeq)
	s.gStartXmit = sys.BindIndirect(NdoStartXmit)
	s.gStartXmitBatch = sys.BindIndirect(NdoStartXmitBatch)
	s.gNapiPoll = sys.BindIndirect(NapiPollType)
	s.gCreate = sys.BindIndirect(FamilyCreate)
	s.gSendmsg = sys.BindIndirect(OpsSendmsg)
	s.gRecvmsg = sys.BindIndirect(OpsRecvmsg)
	s.gBind = sys.BindIndirect(OpsBind)
	s.gIoctl = sys.BindIndirect(OpsIoctl)
	s.gRelease = sys.BindIndirect(OpsRelease)
}

func (s *Stack) registerExports() {
	sys := s.K.Sys

	// alloc_etherdev: the module receives WRITE access to the fresh
	// net_device (it must fill in ops etc.) — Guideline 2.
	sys.RegisterKernelFunc("alloc_etherdev", nil,
		"post(if (return != 0) transfer(alloc_caps(return)))",
		func(t *core.Thread, args []uint64) uint64 {
			dev, err := sys.Slab.Alloc(s.ndev.Size)
			if err != nil {
				return 0
			}
			return uint64(dev)
		})

	sys.RegisterKernelFunc("free_netdev",
		[]core.Param{core.P("dev", "struct net_device *")},
		"pre(transfer(alloc_caps(dev)))",
		func(t *core.Thread, args []uint64) uint64 {
			_ = sys.Slab.Free(mem.Addr(args[0]))
			return 0
		})

	// register_netdev: the caller must own the device it registers.
	// The kernel attaches the default pfifo qdisc (Guideline 7: the
	// kernel assigns packet schedulers by writing a pointer into the
	// net_device).
	sys.RegisterKernelFunc("register_netdev",
		[]core.Param{core.P("dev", "struct net_device *")},
		"pre(check(alloc_caps(dev)))",
		func(t *core.Thread, args []uint64) uint64 {
			dev := mem.Addr(args[0])
			q := s.newPfifo()
			if err := sys.AS.WriteU64(dev+mem.Addr(s.ndev.Off("qdisc")), uint64(q)); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			s.regMu.Lock()
			s.devices = append(s.devices, dev)
			s.regMu.Unlock()
			return 0
		})

	// alloc_skb: WRITE capabilities for the skb struct and its payload
	// transfer to the allocating module.
	sys.RegisterKernelFunc("alloc_skb",
		[]core.Param{core.P("size", "size_t")},
		"post(if (return != 0) transfer(skb_caps(return)))",
		func(t *core.Thread, args []uint64) uint64 {
			skb, err := s.AllocSkb(args[0])
			if err != nil {
				return 0
			}
			return uint64(skb)
		})

	sys.RegisterKernelFunc("kfree_skb",
		[]core.Param{core.P("skb", "struct sk_buff *")},
		"pre(transfer(skb_caps(skb)))",
		func(t *core.Thread, args []uint64) uint64 {
			s.FreeSkb(mem.Addr(args[0]))
			return 0
		})

	// netif_rx (Fig. 1 line 42): the driver hands a packet to the
	// kernel. The transfer annotation revokes the driver's (and any
	// other module's) write access so the packet cannot be modified
	// after the kernel accepted it (§3.3).
	sys.RegisterKernelFunc("netif_rx",
		[]core.Param{core.P("skb", "struct sk_buff *")},
		"pre(transfer(skb_caps(skb)))",
		func(t *core.Thread, args []uint64) uint64 {
			s.backlogMu.Lock()
			s.backlog = append(s.backlog, mem.Addr(args[0]))
			s.RxDelivered++
			s.backlogMu.Unlock()
			return 0
		})

	// netif_napi_add (Fig. 1 line 23): the module registers its poll
	// callback. It must own the device and must itself be allowed to
	// call the function it supplies.
	sys.RegisterKernelFunc("netif_napi_add",
		[]core.Param{core.P("dev", "struct net_device *"), core.P("poll", "napi_poll_t")},
		"pre(check(alloc_caps(dev))) pre(check(call, poll))",
		func(t *core.Thread, args []uint64) uint64 {
			dev, poll := mem.Addr(args[0]), args[1]
			slot := sys.Statics.Alloc(8, 8) // kernel-owned slot: fast path
			if err := sys.AS.WriteU64(slot, poll); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			s.regMu.Lock()
			s.napiPoll[dev] = slot
			s.regMu.Unlock()
			return 0
		})

	// sock_register: a protocol module registers its family create
	// function (af_econet, af_rds, af_can do this on init).
	sys.RegisterKernelFunc("sock_register",
		[]core.Param{core.P("fam", "int"), core.P("create", "create_fn_t")},
		"pre(check(call, create))",
		func(t *core.Thread, args []uint64) uint64 {
			// CallerModule, not CurrentModule: this body runs trusted,
			// so the registering module is on the shadow stack.
			m := t.CallerModule()
			slot := sys.Statics.Alloc(8, 8)
			if err := sys.AS.WriteU64(slot, args[1]); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			s.regMu.Lock()
			s.families[args[0]] = &family{module: m, createSlot: slot}
			s.regMu.Unlock()
			return 0
		})
}

// --- sk_buff management (trusted-side helpers) ---

// AllocSkb allocates an sk_buff and its payload buffer in kernel
// context.
func (s *Stack) AllocSkb(size uint64) (mem.Addr, error) {
	sys := s.K.Sys
	skb, err := sys.Slab.Alloc(s.skb.Size)
	if err != nil {
		return 0, err
	}
	if size == 0 {
		size = 1
	}
	data, err := sys.Slab.Alloc(size)
	if err != nil {
		return 0, err
	}
	must(sys.AS.WriteU64(skb+mem.Addr(s.skb.Off("data")), uint64(data)))
	must(sys.AS.WriteU64(skb+mem.Addr(s.skb.Off("head")), uint64(data)))
	must(sys.AS.WriteU64(skb+mem.Addr(s.skb.Off("truesize")), size))
	must(sys.AS.WriteU64(skb+mem.Addr(s.skb.Off("len")), 0))
	return skb, nil
}

// FreeSkb releases an sk_buff and its payload.
func (s *Stack) FreeSkb(skb mem.Addr) {
	if skb == 0 {
		return
	}
	sys := s.K.Sys
	data, _ := sys.AS.ReadU64(skb + mem.Addr(s.skb.Off("head")))
	if data != 0 {
		_ = sys.Slab.Free(mem.Addr(data))
	}
	_ = sys.Slab.Free(skb)
}

// SkbField returns the address of an sk_buff field.
func (s *Stack) SkbField(skb mem.Addr, field string) mem.Addr {
	return skb + mem.Addr(s.skb.Off(field))
}

// DevField returns the address of a net_device field.
func (s *Stack) DevField(dev mem.Addr, field string) mem.Addr {
	return dev + mem.Addr(s.ndev.Off(field))
}

// OpsSlot returns the address of a net_device_ops slot.
func (s *Stack) OpsSlot(ops mem.Addr, field string) mem.Addr {
	return ops + mem.Addr(s.nops.Off(field))
}

// SockField returns the address of a socket field.
func (s *Stack) SockField(sock mem.Addr, field string) mem.Addr {
	return sock + mem.Addr(s.sock.Off(field))
}

// ProtoOpsSlot returns the address of a proto_ops slot.
func (s *Stack) ProtoOpsSlot(ops mem.Addr, field string) mem.Addr {
	return ops + mem.Addr(s.pops.Off(field))
}

// --- qdisc (pfifo) ---

func (s *Stack) newPfifo() mem.Addr {
	sys := s.K.Sys
	q := sys.Statics.Alloc(s.qdisc.Size, 8)
	enq, _ := sys.FuncByName("pfifo_enqueue")
	deq, _ := sys.FuncByName("pfifo_dequeue")
	if enq == nil {
		enq = sys.RegisterKernelFunc("pfifo_enqueue",
			[]core.Param{core.P("qdisc", "struct Qdisc *"), core.P("skb", "struct sk_buff *")}, "",
			func(t *core.Thread, args []uint64) uint64 {
				s.qmu.Lock()
				s.queues[mem.Addr(args[0])] = append(s.queues[mem.Addr(args[0])], args[1])
				s.qmu.Unlock()
				return 0
			})
		deq = sys.RegisterKernelFunc("pfifo_dequeue",
			[]core.Param{core.P("qdisc", "struct Qdisc *")}, "",
			func(t *core.Thread, args []uint64) uint64 {
				q := mem.Addr(args[0])
				s.qmu.Lock()
				defer s.qmu.Unlock()
				lst := s.queues[q]
				if len(lst) == 0 {
					return 0
				}
				skb := lst[0]
				s.queues[q] = lst[1:]
				return skb
			})
	}
	must(sys.AS.WriteU64(q+mem.Addr(s.qdisc.Off("enqueue")), uint64(enq.Addr)))
	must(sys.AS.WriteU64(q+mem.Addr(s.qdisc.Off("dequeue")), uint64(deq.Addr)))
	return q
}

// --- kernel-side paths (syscalls and dev_queue_xmit) ---

// XmitSkb is dev_queue_xmit: enqueue on the device's qdisc, dequeue, and
// hand the packet to the driver through the module-writable
// ndo_start_xmit slot.
func (s *Stack) XmitSkb(t *core.Thread, dev, skb mem.Addr) (uint64, error) {
	// Fault site: an injected error drops the packet at the TX entry,
	// like a carrier loss between the protocol and the qdisc.
	if err := failpoint.Inject("netstack.xmit"); err != nil {
		return 0, err
	}
	sys := s.K.Sys
	q, err := sys.AS.ReadU64(dev + mem.Addr(s.ndev.Off("qdisc")))
	if err != nil || q == 0 {
		return 0, fmt.Errorf("netstack: device %#x has no qdisc", uint64(dev))
	}
	qd := mem.Addr(q)
	if _, err := s.gQdiscEnq.Call2(t, qd+mem.Addr(s.qdisc.Off("enqueue")), uint64(qd), uint64(skb)); err != nil {
		return 0, err
	}
	out, err := s.gQdiscDeq.Call1(t, qd+mem.Addr(s.qdisc.Off("dequeue")), uint64(qd))
	if err != nil || out == 0 {
		return 0, err
	}
	ops, err := sys.AS.ReadU64(dev + mem.Addr(s.ndev.Off("ops")))
	if err != nil || ops == 0 {
		return 0, fmt.Errorf("netstack: device %#x has no ops", uint64(dev))
	}
	slot := mem.Addr(ops) + mem.Addr(s.nops.Off("ndo_start_xmit"))
	return s.gStartXmit.Call2(t, slot, out, uint64(dev))
}

// Poll invokes the device's registered NAPI poll callback with a budget,
// as the kernel's softirq loop does (Fig. 1 line 28).
func (s *Stack) Poll(t *core.Thread, dev mem.Addr, budget uint64) (uint64, error) {
	// Fault site: an injected error fails the NAPI poll round before the
	// driver crossing runs.
	if err := failpoint.Inject("netstack.poll"); err != nil {
		return 0, err
	}
	s.regMu.RLock()
	slot, ok := s.napiPoll[dev]
	s.regMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("netstack: no NAPI context for device %#x", uint64(dev))
	}
	return s.gNapiPoll.Call2(t, slot, uint64(dev), budget)
}

// PopRx removes and returns the oldest packet delivered via netif_rx
// (0 if none) — the protocol-layer consumption point.
func (s *Stack) PopRx() mem.Addr {
	s.backlogMu.Lock()
	defer s.backlogMu.Unlock()
	if len(s.backlog) == 0 {
		return 0
	}
	skb := s.backlog[0]
	s.backlog = s.backlog[1:]
	return skb
}

// BacklogLen returns the number of undelivered rx packets.
func (s *Stack) BacklogLen() int {
	s.backlogMu.Lock()
	defer s.backlogMu.Unlock()
	return len(s.backlog)
}

// --- socket syscalls ---

// SockSize is exported for modules granting write access to sockets.
func (s *Stack) SockSize() uint64 { return s.sock.Size }

// Socket implements socket(2): allocates the socket object and calls the
// family's create function (which the module registered) through a
// checked indirect call. The new socket is registered with its own
// per-instance operation lock, the netstack analogue of a VFS mount
// lock.
func (s *Stack) Socket(t *core.Thread, familyID uint64) (_ mem.Addr, rerr error) {
	defer func() { rerr = netDegrade("netstack.socket", rerr) }()
	s.regMu.RLock()
	fam, ok := s.families[familyID]
	s.regMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("netstack: unknown protocol family %d", familyID)
	}
	if fam.module != nil && fam.module.Dead() {
		return 0, core.ErrModuleDead
	}
	sock, err := s.K.Sys.Slab.Alloc(s.sock.Size)
	if err != nil {
		return 0, err
	}
	ret, err := s.gCreate.Call1(t, fam.createSlot, uint64(sock))
	if err != nil {
		return 0, err
	}
	if kernel.IsErr(ret) {
		_ = s.K.Sys.Slab.Free(sock)
		return 0, fmt.Errorf("netstack: create failed: errno %d", -int64(ret))
	}
	s.sockMu.Lock()
	s.sockLocks[sock] = &sync.Mutex{}
	s.sockMu.Unlock()
	return sock, nil
}

// lockSock takes a socket's per-instance operation lock and returns the
// unlock. Sockets that predate Socket() (or were already released) get
// a nil lock and run unserialized, preserving the old single-thread
// behavior for hand-built test sockets.
func (s *Stack) lockSock(sock mem.Addr) func() {
	s.sockMu.Lock()
	mu := s.sockLocks[sock]
	s.sockMu.Unlock()
	if mu == nil {
		return func() {}
	}
	mu.Lock()
	return mu.Unlock
}

// sockOpSlot loads sock->ops and returns the address of the named slot.
func (s *Stack) sockOpSlot(sock mem.Addr, op string) (mem.Addr, error) {
	ops, err := s.K.Sys.AS.ReadU64(sock + mem.Addr(s.sock.Off("ops")))
	if err != nil || ops == 0 {
		return 0, fmt.Errorf("netstack: socket %#x has no ops", uint64(sock))
	}
	return mem.Addr(ops) + mem.Addr(s.pops.Off(op)), nil
}

// Sendmsg implements sendmsg(2) for a module socket.
func (s *Stack) Sendmsg(t *core.Thread, sock, buf mem.Addr, n, flags uint64) (_ uint64, rerr error) {
	defer func() { rerr = netDegrade("netstack.sendmsg", rerr) }()
	defer s.lockSock(sock)()
	slot, err := s.sockOpSlot(sock, "sendmsg")
	if err != nil {
		return 0, err
	}
	return s.gSendmsg.Call4(t, slot, uint64(sock), uint64(buf), n, flags)
}

// Recvmsg implements recvmsg(2).
func (s *Stack) Recvmsg(t *core.Thread, sock, buf mem.Addr, n, flags uint64) (_ uint64, rerr error) {
	defer func() { rerr = netDegrade("netstack.recvmsg", rerr) }()
	defer s.lockSock(sock)()
	slot, err := s.sockOpSlot(sock, "recvmsg")
	if err != nil {
		return 0, err
	}
	return s.gRecvmsg.Call4(t, slot, uint64(sock), uint64(buf), n, flags)
}

// Bind implements bind(2).
func (s *Stack) Bind(t *core.Thread, sock, addr mem.Addr, n uint64) (_ uint64, rerr error) {
	defer func() { rerr = netDegrade("netstack.bind", rerr) }()
	defer s.lockSock(sock)()
	slot, err := s.sockOpSlot(sock, "bind")
	if err != nil {
		return 0, err
	}
	return s.gBind.Call3(t, slot, uint64(sock), uint64(addr), n)
}

// Ioctl implements ioctl(2) on a socket — the kernel path both the RDS
// and Econet exploits redirect.
func (s *Stack) Ioctl(t *core.Thread, sock mem.Addr, cmd, arg uint64) (uint64, error) {
	defer s.lockSock(sock)()
	slot, err := s.sockOpSlot(sock, "ioctl")
	if err != nil {
		return 0, err
	}
	return s.gIoctl.Call3(t, slot, uint64(sock), cmd, arg)
}

// Release implements close(2). After the module's release callback
// runs, the socket's instance principal is discarded along with the
// socket object, so a recycled address cannot inherit stale privileges.
func (s *Stack) Release(t *core.Thread, sock mem.Addr) (_ uint64, rerr error) {
	defer func() { rerr = netDegrade("netstack.release", rerr) }()
	unlock := s.lockSock(sock)
	slot, err := s.sockOpSlot(sock, "release")
	if err != nil {
		unlock()
		return 0, err
	}
	ret, err := s.gRelease.Call1(t, slot, uint64(sock))
	if err != nil {
		unlock()
		return ret, err
	}
	s.regMu.RLock()
	for _, fam := range s.families {
		if fam.module != nil {
			fam.module.Set.DropInstance(sock)
		}
	}
	s.regMu.RUnlock()
	_ = s.K.Sys.Slab.Free(sock)
	unlock()
	s.sockMu.Lock()
	delete(s.sockLocks, sock)
	s.sockMu.Unlock()
	return ret, nil
}

// Devices returns all registered net devices.
func (s *Stack) Devices() []mem.Addr {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return append([]mem.Addr(nil), s.devices...)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

package netstack

import (
	"errors"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
)

// netDegrade is the netstack's graceful-degradation boundary, the
// analogue of the VFS's degradeFS: while a protocol or driver module is
// dead (killed after a violation, quarantined by the supervisor),
// socket syscalls fail with ENETDOWN instead of a raw gate error — and
// never hang. The crossing error stays wrapped, so errors.Is(err,
// core.ErrModuleDead) keeps holding; callers use that to retry on the
// successor generation once the supervisor restarts the module.
func netDegrade(op string, err error) error {
	if err == nil || !errors.Is(err, core.ErrModuleDead) {
		return err
	}
	var d *core.DegradedError
	if errors.As(err, &d) {
		return err // already mapped by an inner op
	}
	return &core.DegradedError{Errno: kernel.ENETDOWN, Op: op, Err: err}
}

package pci_test

import (
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/pci"
)

func TestEnableRequiresRefCapability(t *testing.T) {
	// A module without a REF capability for the pci_dev cannot enable
	// it — the Fig. 4 check annotation.
	k := kernel.New()
	k.Enforce()
	bus := pci.Init(k)
	dev := bus.AddDevice(0x10EC, 0x8168)
	th := k.Sys.NewThread("t")

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "rogue",
		Imports:  []string{"pci_enable_device"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{{
			Name: "attack", Params: []core.Param{core.P("pcidev", "struct pci_dev *")},
			Impl: func(th *core.Thread, args []uint64) uint64 {
				if _, err := th.CallKernel("pci_enable_device", args[0]); err != nil {
					return 1
				}
				return 0
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ret, _ := th.CallModule(m, "attack", uint64(dev.Addr))
	if ret != 1 {
		t.Fatal("module enabled a device it does not own")
	}
	if bus.Enabled(dev) {
		t.Fatal("device got enabled")
	}
}

func TestProbeRequiresMatchingAnnotations(t *testing.T) {
	k := kernel.New()
	bus := pci.Init(k)
	bus.AddDevice(1, 2)
	th := k.Sys.NewThread("t")
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name: "baddrv",
		Funcs: []core.FuncSpec{{
			Name:   "probe",
			Params: []core.Param{core.P("pcidev", "struct pci_dev *")},
			Annot:  "principal(pcidev)", // wrong: not the probe contract
			Impl:   func(th *core.Thread, args []uint64) uint64 { return 0 },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.RegisterDriver(th, m, "probe", 1, 2); err == nil {
		t.Fatal("driver with mismatched probe annotations accepted")
	}
}

func TestUnmatchedDeviceNotProbed(t *testing.T) {
	k := kernel.New()
	bus := pci.Init(k)
	d := bus.AddDevice(7, 7)
	th := k.Sys.NewThread("t")
	probed := false
	m, _ := k.Sys.LoadModule(core.ModuleSpec{
		Name: "drv",
		Funcs: []core.FuncSpec{{
			Name: "probe", Type: pci.ProbeType,
			Impl: func(th *core.Thread, args []uint64) uint64 { probed = true; return 0 },
		}},
	})
	if err := bus.RegisterDriver(th, m, "probe", 8, 8); err != nil {
		t.Fatal(err)
	}
	if probed || d.Module != "" {
		t.Fatal("driver bound to non-matching device")
	}
}

// Package pci implements the simulated PCI subsystem: pci_dev objects,
// the annotated pci_driver.probe interface, and pci_enable_device — the
// running example of Figures 1 and 4 in the paper.
package pci

import (
	"fmt"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
)

// PciDev is the layout name of struct pci_dev.
const PciDev = "struct pci_dev"

// ProbeType is the registered fptr type for pci_driver.probe. Its
// annotation is the one from Fig. 4: the probe runs as the principal
// named by the pci_dev pointer, receives a REF capability for its
// device, and gives it back if probing fails.
const ProbeType = "pci_driver.probe"

// Bus is the simulated PCI bus.
type Bus struct {
	K *kernel.Kernel

	devs    []*Device
	drivers []*driver
	lay     *layout.Struct

	// gIrq is the bound irq_handler dispatch gate.
	gIrq *core.IndGate
}

// Device is one simulated PCI device.
type Device struct {
	Addr    mem.Addr // address of its struct pci_dev
	Vendor  uint32
	DevID   uint32
	bound   bool
	Module  string // binding driver module
	irqFn   func(t *core.Thread)
	irqName string
}

type driver struct {
	module  *core.Module
	probeFn string
	vendor  uint32
	devID   uint32
}

// Init creates the bus, registers layouts, the probe fptr type, and the
// PCI kernel exports.
func Init(k *kernel.Kernel) *Bus {
	b := &Bus{K: k}
	sys := k.Sys

	b.lay = sys.Layouts.Define(PciDev,
		layout.F("vendor", 4),
		layout.F("device", 4),
		layout.F("bar0", 8),
		layout.F("enabled", 8),
		layout.F("irq", 8),
	)

	sys.RegisterFPtrType(ProbeType,
		[]core.Param{core.P("pcidev", "struct pci_dev *")},
		"principal(pcidev) "+
			"pre(copy(ref(struct pci_dev), pcidev)) "+
			"post(if (return < 0) transfer(ref(struct pci_dev), pcidev))")

	// pci_enable_device (Fig. 4 line 66): callable only with a REF
	// capability for the pci_dev — a module cannot enable devices it does
	// not own, nor hand-crafted pci_dev structures.
	sys.RegisterKernelFunc("pci_enable_device",
		[]core.Param{core.P("pcidev", "struct pci_dev *")},
		"pre(check(ref(struct pci_dev), pcidev))",
		func(t *core.Thread, args []uint64) uint64 {
			dev := b.findByAddr(mem.Addr(args[0]))
			if dev == nil {
				return kernel.Err(kernel.ENOENT)
			}
			if err := sys.AS.WriteU64(dev.Addr+mem.Addr(b.lay.Off("enabled")), 1); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			return 0
		})

	sys.RegisterKernelFunc("pci_disable_device",
		[]core.Param{core.P("pcidev", "struct pci_dev *")},
		"pre(check(ref(struct pci_dev), pcidev))",
		func(t *core.Thread, args []uint64) uint64 {
			dev := b.findByAddr(mem.Addr(args[0]))
			if dev == nil {
				return kernel.Err(kernel.ENOENT)
			}
			if err := sys.AS.WriteU64(dev.Addr+mem.Addr(b.lay.Off("enabled")), 0); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			return 0
		})

	// request_irq(pcidev, handler): the module registers its interrupt
	// handler; it must own the device and the handler must be code it
	// could call itself ("the module should be able to provide only
	// pointers to functions that the module itself can invoke", §2.2).
	sys.RegisterFPtrType("irq_handler",
		[]core.Param{core.P("pcidev", "struct pci_dev *")},
		"principal(pcidev)")
	b.gIrq = sys.BindIndirect("irq_handler")
	sys.RegisterKernelFunc("request_irq",
		[]core.Param{core.P("pcidev", "struct pci_dev *"), core.P("handler", "irq_handler_t")},
		"pre(check(ref(struct pci_dev), pcidev)) pre(check(call, handler))",
		func(t *core.Thread, args []uint64) uint64 {
			dev := b.findByAddr(mem.Addr(args[0]))
			if dev == nil {
				return kernel.Err(kernel.ENOENT)
			}
			handler := mem.Addr(args[1])
			dev.irqFn = func(th *core.Thread) {
				_, _ = b.gIrq.CallAddr1(th, handler, uint64(dev.Addr))
			}
			return 0
		})

	return b
}

// AddDevice plugs a new device into the bus.
func (b *Bus) AddDevice(vendor, devID uint32) *Device {
	sys := b.K.Sys
	addr := sys.Statics.Alloc(b.lay.Size, 8)
	must(sys.AS.WriteU32(addr+mem.Addr(b.lay.Off("vendor")), vendor))
	must(sys.AS.WriteU32(addr+mem.Addr(b.lay.Off("device")), devID))
	d := &Device{Addr: addr, Vendor: vendor, DevID: devID}
	b.devs = append(b.devs, d)
	return d
}

// RegisterDriver binds a module's probe function to a (vendor, device)
// pair and probes all matching unbound devices, as the core kernel does
// on module load (Fig. 1 line 20).
func (b *Bus) RegisterDriver(t *core.Thread, m *core.Module, probeFn string, vendor, devID uint32) error {
	fn, ok := m.Funcs[probeFn]
	if !ok {
		return fmt.Errorf("pci: module %s has no function %q", m.Name, probeFn)
	}
	// The probe function must carry the pci_driver.probe annotations
	// (annotation propagation has already verified equality if both were
	// given).
	ft, _ := b.K.Sys.FPtrType(ProbeType)
	if fn.Annot.Hash() != ft.Annot.Hash() {
		return fmt.Errorf("pci: %s.%s does not carry pci_driver.probe annotations", m.Name, probeFn)
	}
	b.drivers = append(b.drivers, &driver{module: m, probeFn: probeFn, vendor: vendor, devID: devID})
	for _, d := range b.devs {
		if !d.bound && d.Vendor == vendor && d.DevID == devID {
			ret, err := t.CallModule(m, probeFn, uint64(d.Addr))
			if err != nil {
				return err
			}
			if !kernel.IsErr(ret) {
				d.bound = true
				d.Module = m.Name
			}
		}
	}
	return nil
}

// Unbind detaches the named module from the bus: devices it bound
// become probe-able again and its driver registrations are dropped, so
// a reloaded generation re-probes the hardware through RegisterDriver
// exactly as a fresh load would.
func (b *Bus) Unbind(moduleName string) {
	for _, d := range b.devs {
		if d.Module == moduleName {
			d.bound = false
			d.Module = ""
			d.irqFn = nil
			d.irqName = ""
		}
	}
	keep := b.drivers[:0]
	for _, dr := range b.drivers {
		if dr.module.Name != moduleName {
			keep = append(keep, dr)
		}
	}
	b.drivers = keep
}

// Enabled reports whether the device has been enabled.
func (b *Bus) Enabled(d *Device) bool {
	v, _ := b.K.Sys.AS.ReadU64(d.Addr + mem.Addr(b.lay.Off("enabled")))
	return v == 1
}

// RaiseIRQ delivers an interrupt to the device's registered handler,
// running it in module context via the interrupt-save path.
func (b *Bus) RaiseIRQ(t *core.Thread, d *Device) {
	if d.irqFn == nil {
		return
	}
	d.irqFn(t)
}

// Devices returns all devices on the bus.
func (b *Bus) Devices() []*Device { return b.devs }

func (b *Bus) findByAddr(addr mem.Addr) *Device {
	for _, d := range b.devs {
		if d.Addr == addr {
			return d
		}
	}
	return nil
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

package microbench

// Static Δ-code-size analysis for Fig. 11: the module rewriter inserts
// guard code at every store and cross-domain call site; the code-size
// multiplier is (statements + guard sites × guard cost) / statements.
// Rather than declaring numbers, this file parses the Go source of the
// workload implementations (microbench.go) with go/ast and counts the
// sites the rewriter would instrument inside each workload's module
// functions.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
)

// guardStmtCost is the code footprint of one inserted guard, in
// statement-equivalents (a call plus a branch).
const guardStmtCost = 2

// guardMethods are the Thread methods whose call sites the rewriter
// instruments (stores and cross-domain calls).
var guardMethods = map[string]bool{
	"Write": true, "WriteU64": true, "WriteU32": true, "WriteU16": true,
	"WriteU8": true, "Zero": true,
	"CallKernel": true, "CallAddr": true,
	// Bound-gate crossing entry points (gate.go): same wrapper, same
	// guards, resolved at bind time.
	"Call0": true, "Call1": true, "Call2": true, "Call3": true,
	"Call4": true, "Call5": true, "Call6": true, "CallArgs": true,
}

// workloadFuncs maps each Fig. 11 benchmark to the constructor whose
// module function literals constitute the workload's code.
var workloadFuncs = map[string]string{
	"hotlist": "NewHotlist",
	"lld":     "NewLld",
	"MD5":     "NewMD5",
}

type staticCounts struct {
	stmts  int
	guards int
}

var staticCache map[string]staticCounts

// analyze parses microbench.go once and tallies statements and guard
// sites per workload constructor.
func analyze() map[string]staticCounts {
	if staticCache != nil {
		return staticCache
	}
	staticCache = make(map[string]staticCounts)

	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		return staticCache
	}
	src := filepath.Join(filepath.Dir(thisFile), "microbench.go")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		return staticCache
	}

	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var name string
		for wl, ctor := range workloadFuncs {
			if fd.Name.Name == ctor {
				name = wl
			}
		}
		if name == "" {
			continue
		}
		var c staticCounts
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case ast.Stmt:
				c.stmts++
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && guardMethods[sel.Sel.Name] {
					c.guards++
				}
			}
			return true
		})
		staticCache[name] = c
	}
	return staticCache
}

// CodeSizeDelta returns the Δ-code-size multiplier for a workload, as
// the rewriter's inserted guards over the workload's statement count.
func CodeSizeDelta(name string) float64 {
	c, ok := analyze()[name]
	if !ok || c.stmts == 0 {
		return 1
	}
	return 1 + float64(c.guards*guardStmtCost)/float64(c.stmts)
}

// GuardSites returns the raw static counts for a workload (tests).
func GuardSites(name string) (stmts, guards int) {
	c := analyze()[name]
	return c.stmts, c.guards
}

package microbench

// From-scratch MD5 (RFC 1321) used by the MD5 microbenchmark module.
// Implemented here rather than via crypto/md5 so the whole benchmark
// workload is code we control, as the MiSFIT suite's MD5 is.

import "encoding/binary"

var md5K = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
	0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
	0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
	0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
	0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
	0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
	0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05,
	0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039,
	0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
	0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
	0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

var md5S = [64]uint{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// md5Sum computes the MD5 digest of data.
func md5Sum(data []byte) [16]byte {
	a0, b0, c0, d0 := uint32(0x67452301), uint32(0xefcdab89), uint32(0x98badcfe), uint32(0x10325476)

	// Padding.
	msgLen := uint64(len(data))
	padded := make([]byte, 0, len(data)+72)
	padded = append(padded, data...)
	padded = append(padded, 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], msgLen*8)
	padded = append(padded, lenb[:]...)

	var m [16]uint32
	for chunk := 0; chunk < len(padded); chunk += 64 {
		for i := 0; i < 16; i++ {
			m[i] = binary.LittleEndian.Uint32(padded[chunk+4*i:])
		}
		a, b, c, d := a0, b0, c0, d0
		for i := 0; i < 64; i++ {
			var f uint32
			var g int
			switch {
			case i < 16:
				f = (b & c) | (^b & d)
				g = i
			case i < 32:
				f = (d & b) | (^d & c)
				g = (5*i + 1) % 16
			case i < 48:
				f = b ^ c ^ d
				g = (3*i + 5) % 16
			default:
				f = c ^ (b | ^d)
				g = (7 * i) % 16
			}
			f = f + a + md5K[i] + m[g]
			a = d
			d = c
			c = b
			b = b + (f<<md5S[i] | f>>(32-md5S[i]))
		}
		a0 += a
		b0 += b
		c0 += c
		d0 += d
	}

	var out [16]byte
	binary.LittleEndian.PutUint32(out[0:], a0)
	binary.LittleEndian.PutUint32(out[4:], b0)
	binary.LittleEndian.PutUint32(out[8:], c0)
	binary.LittleEndian.PutUint32(out[12:], d0)
	return out
}

package microbench

import (
	"encoding/json"
	"testing"
)

// TestMeasureCrossings runs the phases at a small iteration count and
// checks the report invariants CI relies on: all nine phases present,
// positive timings, the cached-hit, gate-crossing, batch, and traced
// phases allocation-free, and the contended phase carrying its scaling
// ratio.
func TestMeasureCrossings(t *testing.T) {
	rows, metrics, err := MeasureCrossingsWithMetrics(coldSet)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"check cold": false, "check cached": false,
		"check contended": false, "revoke storm": false,
		"crossing gate": false, "crossing named": false,
		"crossing batch": false, "crossing traced": false,
		"reload": false,
	}
	for _, r := range rows {
		if _, ok := want[r.Op]; !ok {
			t.Fatalf("unexpected phase %q", r.Op)
		}
		want[r.Op] = true
		if r.StockNs <= 0 || r.LxfiNs <= 0 {
			t.Fatalf("phase %q has non-positive timing: %+v", r.Op, r)
		}
	}
	for op, seen := range want {
		if !seen {
			t.Fatalf("phase %q missing", op)
		}
	}
	for _, r := range rows {
		if (r.Op == "check cached" || r.Op == "crossing gate" || r.Op == "crossing batch" || r.Op == "crossing traced") && r.AllocsPerOp >= 0.01 {
			t.Fatalf("%s allocates: %f allocs/op", r.Op, r.AllocsPerOp)
		}
		if r.Op == "check contended" && r.ScalingRatio <= 0 {
			t.Fatalf("contended phase missing scaling ratio: %+v", r)
		}
		if r.Op != "check contended" && r.ScalingRatio != 0 {
			t.Fatalf("scaling ratio leaked onto phase %q: %+v", r.Op, r)
		}
		if r.Op != "crossing traced" && r.TraceOverheadPct != 0 {
			t.Fatalf("trace overhead leaked onto phase %q: %+v", r.Op, r)
		}
	}
	// The traced run's sampled latencies must have reached the shared
	// histogram, and the enforced crossings the shared counters.
	if metrics == nil {
		t.Fatal("no metrics snapshot from enforced run")
	}
	if metrics.Mode != "lxfi" {
		t.Fatalf("metrics mode = %q, want lxfi", metrics.Mode)
	}
	if metrics.LatencySamples == 0 {
		t.Fatal("traced crossings produced no latency samples")
	}
	if metrics.FuncEntries == 0 || metrics.CapChecks == 0 {
		t.Fatalf("guard counters empty: %+v", metrics)
	}
}

func TestCrossingsJSONShape(t *testing.T) {
	rows, err := MeasureCrossings(coldSet)
	if err != nil {
		t.Fatal(err)
	}
	out, err := CrossingsJSON(rows, coldSet)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench   string `json:"bench"`
		Shards  int    `json:"shards"`
		Results []struct {
			FS   string `json:"fs"`
			Rows []struct {
				Op     string  `json:"op"`
				LxfiNs float64 `json:"lxfi_ns"`
			} `json:"rows"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bench != "crossings" || doc.Shards < 1 {
		t.Fatalf("bad header: %+v", doc)
	}
	if len(doc.Results) != 1 || doc.Results[0].FS != "crossings" || len(doc.Results[0].Rows) != 9 {
		t.Fatalf("bad results shape: %+v", doc.Results)
	}
}

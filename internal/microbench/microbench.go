// Package microbench reproduces Figure 11: the MiSFIT/SFI
// microbenchmarks (hotlist, lld, MD5) run as LXFI-isolated kernel
// modules, comparing stock and enforced builds.
//
//   - hotlist searches a linked list: almost entirely loads, which LXFI
//     does not instrument, so the expected slowdown is ~0.
//   - lld is a small logical disk driver: store- and call-heavy, the
//     worst case of the three.
//   - MD5 computes digests in module-local (Go) state — the analogue of
//     the stack buffer the paper's compiler proves safe and leaves
//     unguarded — and commits only the 16-byte digest through a guarded
//     store.
//
// Code-size deltas are computed by the static analysis in static.go:
// the Go source of each workload is parsed and the guard sites the
// rewriter would instrument are counted against total statements.
package microbench

import (
	"fmt"
	"time"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// Workload is one microbenchmark instance bound to a mode.
type Workload struct {
	Name string
	Mode core.Mode
	K    *kernel.Kernel
	M    *core.Module
	Op   func() error
}

// hotlistNodes is the linked-list length (the MiSFIT hotlist is a
// pointer-chasing search).
const hotlistNodes = 512

// NewHotlist builds the hotlist workload: a module-owned linked list
// searched on every operation.
func NewHotlist(mode core.Mode) (*Workload, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	th := k.Sys.NewThread("hotlist")

	var head uint64
	var gKmalloc *core.Gate // bound after load
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "hotlist",
		Imports:  []string{"kmalloc"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "build", Params: []core.Param{core.P("n", "u64")},
				Impl: func(t *core.Thread, args []uint64) uint64 {
					// Nodes are {key u64, next u64}, kmalloc'd.
					var prev uint64
					for i := uint64(0); i < args[0]; i++ {
						node, err := gKmalloc.Call1(t, 16)
						if err != nil || node == 0 {
							return 1
						}
						if err := t.WriteU64(mem.Addr(node), i); err != nil {
							return 1
						}
						if err := t.WriteU64(mem.Addr(node)+8, prev); err != nil {
							return 1
						}
						prev = node
					}
					head = prev
					return 0
				},
			},
			{
				Name: "search", Params: []core.Param{core.P("key", "u64")},
				Impl: func(t *core.Thread, args []uint64) uint64 {
					// Pure loads: traverse the list looking for key.
					cur := head
					for cur != 0 {
						k, _ := t.ReadU64(mem.Addr(cur))
						if k == args[0] {
							return cur
						}
						cur, _ = t.ReadU64(mem.Addr(cur) + 8)
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	gKmalloc = m.Gate("kmalloc")
	if ret, err := th.CallModule(m, "build", hotlistNodes); err != nil || ret != 0 {
		return nil, fmt.Errorf("microbench: hotlist build failed: %v", err)
	}
	i := uint64(0)
	return &Workload{Name: "hotlist", Mode: mode, K: k, M: m, Op: func() error {
		i++
		ret, err := th.CallModule(m, "search", i%hotlistNodes)
		if err != nil || ret == 0 {
			return fmt.Errorf("search failed: %v", err)
		}
		return nil
	}}, nil
}

// lldBlockSize is the logical disk's block size.
const lldBlockSize = 512

// NewLld builds the lld workload: a logical disk driver whose request
// path writes a whole block plus metadata — heavy on guarded stores and
// wrapper crossings.
func NewLld(mode core.Mode) (*Workload, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	th := k.Sys.NewThread("lld")

	var disk, meta, lock uint64
	var gKmalloc, gSpinLockInit, gSpinLock, gSpinUnlock *core.Gate // bound after load
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "lld",
		Imports:  []string{"kmalloc", "spin_lock", "spin_unlock", "spin_lock_init"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "attach",
				Impl: func(t *core.Thread, args []uint64) uint64 {
					var err1 error
					disk, err1 = gKmalloc.Call1(t, 8*lldBlockSize)
					if err1 != nil || disk == 0 {
						return 1
					}
					meta, err1 = gKmalloc.Call1(t, 256)
					if err1 != nil || meta == 0 {
						return 1
					}
					lock, err1 = gKmalloc.Call1(t, 8)
					if err1 != nil || lock == 0 {
						return 1
					}
					if _, err := gSpinLockInit.Call1(t, lock); err != nil {
						return 1
					}
					return 0
				},
			},
			{
				Name: "request", Params: []core.Param{core.P("block", "u64"), core.P("val", "u64")},
				Impl: func(t *core.Thread, args []uint64) uint64 {
					if _, err := gSpinLock.Call1(t, lock); err != nil {
						return 1
					}
					base := mem.Addr(disk) + mem.Addr((args[0]%8)*lldBlockSize)
					for off := uint64(0); off < lldBlockSize; off += 8 {
						if err := t.WriteU64(base+mem.Addr(off), args[1]+off); err != nil {
							return 1
						}
					}
					// Update request metadata.
					if err := t.WriteU64(mem.Addr(meta), args[0]); err != nil {
						return 1
					}
					if err := t.WriteU64(mem.Addr(meta)+8, args[1]); err != nil {
						return 1
					}
					if _, err := gSpinUnlock.Call1(t, lock); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	gKmalloc = m.Gate("kmalloc")
	gSpinLockInit = m.Gate("spin_lock_init")
	gSpinLock = m.Gate("spin_lock")
	gSpinUnlock = m.Gate("spin_unlock")
	if ret, err := th.CallModule(m, "attach"); err != nil || ret != 0 {
		return nil, fmt.Errorf("microbench: lld attach failed: %v", err)
	}
	i := uint64(0)
	return &Workload{Name: "lld", Mode: mode, K: k, M: m, Op: func() error {
		i++
		ret, err := th.CallModule(m, "request", i, i*3)
		if err != nil || ret != 0 {
			return fmt.Errorf("request failed: %v", err)
		}
		return nil
	}}, nil
}

// md5InputSize is the digest input size per operation.
const md5InputSize = 4096

// NewMD5 builds the MD5 workload: digest a module-readable buffer into
// module-local state, committing only the digest through a guarded
// store.
func NewMD5(mode core.Mode) (*Workload, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	th := k.Sys.NewThread("md5")

	input := k.Sys.Statics.Alloc(md5InputSize, 8)
	buf := make([]byte, md5InputSize)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	if err := k.Sys.AS.Write(input, buf); err != nil {
		return nil, err
	}

	var out uint64
	var gKmalloc *core.Gate // bound after load
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "md5",
		Imports:  []string{"kmalloc"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "setup",
				Impl: func(t *core.Thread, args []uint64) uint64 {
					var err1 error
					out, err1 = gKmalloc.Call1(t, 16)
					if err1 != nil || out == 0 {
						return 1
					}
					return 0
				},
			},
			{
				Name: "digest", Params: []core.Param{core.P("src", "u64"), core.P("n", "u64")},
				Impl: func(t *core.Thread, args []uint64) uint64 {
					// Load the input (unguarded loads), hash in local
					// state (the "provably safe" stack buffer), and
					// commit the digest with one guarded store.
					data, err := t.ReadBytes(mem.Addr(args[0]), args[1])
					if err != nil {
						return 1
					}
					sum := md5Sum(data)
					if err := t.Write(mem.Addr(out), sum[:]); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		return nil, err
	}
	gKmalloc = m.Gate("kmalloc")
	if ret, err := th.CallModule(m, "setup"); err != nil || ret != 0 {
		return nil, fmt.Errorf("microbench: md5 setup failed: %v", err)
	}
	return &Workload{Name: "MD5", Mode: mode, K: k, M: m, Op: func() error {
		ret, err := th.CallModule(m, "digest", uint64(input), md5InputSize)
		if err != nil || ret != 0 {
			return fmt.Errorf("digest failed: %v", err)
		}
		return nil
	}}, nil
}

// Result is one row of the Fig. 11 table.
type Result struct {
	Name     string
	StockNs  float64 // ns per operation, stock
	LxfiNs   float64 // ns per operation, enforced
	Slowdown float64 // (LxfiNs-StockNs)/StockNs
	CodeSize float64 // static Δ code size multiplier (see static.go)
}

// Measure times both builds of a workload for iters operations each.
func Measure(name string, build func(core.Mode) (*Workload, error), iters int) (Result, error) {
	r := Result{Name: name}
	times := map[core.Mode]float64{}
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		w, err := build(mode)
		if err != nil {
			return r, err
		}
		// Warmup.
		for i := 0; i < iters/10+1; i++ {
			if err := w.Op(); err != nil {
				return r, fmt.Errorf("%s[%v]: %w", name, mode, err)
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := w.Op(); err != nil {
				return r, fmt.Errorf("%s[%v]: %w", name, mode, err)
			}
		}
		times[mode] = float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	r.StockNs = times[core.Off]
	r.LxfiNs = times[core.Enforce]
	if r.StockNs > 0 {
		r.Slowdown = (r.LxfiNs - r.StockNs) / r.StockNs
	}
	r.CodeSize = CodeSizeDelta(name)
	return r, nil
}

// RunAll measures the three workloads.
func RunAll(iters int) ([]Result, error) {
	var out []Result
	for _, w := range []struct {
		name  string
		build func(core.Mode) (*Workload, error)
	}{
		{"hotlist", NewHotlist},
		{"lld", NewLld},
		{"MD5", NewMD5},
	} {
		r, err := Measure(w.name, w.build, iters)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Format renders the Fig. 11 table.
func Format(rs []Result) string {
	s := fmt.Sprintf("%-10s %12s %12s %10s %12s\n", "benchmark", "stock ns/op", "lxfi ns/op", "slowdown", "Δ code size")
	for _, r := range rs {
		s += fmt.Sprintf("%-10s %12.0f %12.0f %9.0f%% %11.2fx\n",
			r.Name, r.StockNs, r.LxfiNs, r.Slowdown*100, r.CodeSize)
	}
	return s
}

// Crossing microbenchmark: the capability-check engine measured on its
// own, the way Figure 11 measures whole workloads. Four phases cover
// the hot path's regimes:
//
//   - "check cold": every probe misses the per-thread cache (the
//     addresses cycle through a working set far larger than the cache),
//     so each check pays the sharded interval-index lookup.
//   - "check cached": one address probed repeatedly — the per-thread
//     epoch-validated cache answers without locks or allocation. The
//     allocs column is the acceptance gate: 0 allocs/op.
//   - "check contended": one worker thread per shard-spread region,
//     all hammering table checks simultaneously. Under the old global
//     RWMutex this serialized on one lock word; sharded tables keep
//     the workers on distinct locks.
//   - "revoke storm": grant → check(allow) → revoke → check(deny)
//     cycles. Measures the epoch-bump invalidation cost and asserts the
//     security property the cache must never break: a revoked WRITE is
//     never served from a stale cache entry.
//   - "crossing gate": a full module→kernel crossing (wrapper entry,
//     compiled pre/post action programs, shadow stack) through a Gate
//     bound at load time. The acceptance gate: 0 allocs/op.
//   - "crossing named": the same crossing through the string-keyed
//     CallKernel path — the bind-time-resolution delta made visible.
//   - "crossing batch": one crossing whose annotation checks an
//     8-element pointer array through a capability iterator — the
//     netstack batch-gate shape. Per-element WRITE verdicts ride the
//     per-thread check cache, so the acceptance gate is the same
//     0 allocs/op the scalar crossing holds.
//   - "reload": a full hot reload of a registry module (quiesce,
//     capability snapshot, swap, migration, gate re-bind) with a live
//     instance but no traffic in flight — the service-interruption floor.
//
// The contended row also reports scaling_ratio: its aggregate ns/op
// across the 8 workers divided by the single-thread cached ns/op, so
// shard scaling is pinned as a ratio instead of an absolute number
// that shifts with the runner's core count.
//
// Each phase runs under both builds (stock and enforced), mirroring the
// Figure 11 rows, and the report lands in BENCH_crossings.json for the
// CI perf gate.
package microbench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules"
	_ "lxfi/internal/modules/all"
	"lxfi/internal/modules/econet"
	"lxfi/internal/netstack"
)

// CrossingRow is one phase of the crossing benchmark.
type CrossingRow struct {
	Op          string  `json:"op"`
	StockNs     float64 `json:"stock_ns"`
	LxfiNs      float64 `json:"lxfi_ns"`
	OverheadPct float64 `json:"overhead_pct"`
	AllocsPerOp float64 `json:"allocs_per_op"` // enforced build
	Workers     int     `json:"workers"`
	// ScalingRatio is set on the contended phase only: aggregate
	// contended ns/op divided by single-thread cached ns/op, per build.
	// ~1.0 means the shards scale; the old global lock sat well above.
	ScalingRatio      float64 `json:"scaling_ratio,omitempty"`
	StockScalingRatio float64 `json:"stock_scaling_ratio,omitempty"`
	// TraceOverheadPct is set on the traced phase only: its enforced
	// ns/op against the untraced "crossing gate" row, i.e. the flight
	// recorder's cost. The perf gate holds it under 10%.
	TraceOverheadPct float64 `json:"trace_overhead_pct,omitempty"`
}

// CrossingReport is the BENCH_crossings.json document. The results
// shape matches the fsperf report so the generic perf gate reads both.
type CrossingReport struct {
	Bench   string `json:"bench"`
	Iters   int    `json:"iters"`
	Shards  int    `json:"shards"`
	Threads int    `json:"gomaxprocs"`
	Results []struct {
		FS   string        `json:"fs"`
		Rows []CrossingRow `json:"rows"`
	} `json:"results"`
}

// crossRig is one booted check-engine bench: a module whose functions
// run tight check loops in module context, so the measured guard is the
// real LxfiCheck path (cache probe inlined into the guard).
type crossRig struct {
	sys *core.System
	th  *core.Thread
	tht *core.Thread // flight-recorder ring attached ("crossing traced")
	m   *core.Module
	p   *caps.Principal

	base mem.Addr
}

// sinkArgBytes is the window the crossing phases' kernel sink checks.
const sinkArgBytes = 8

// coldSet is the cold phase's working set: 4096 distinct 8-byte probes
// share the 64 cache slots, so a slot is always overwritten long before
// its address comes around again.
const coldSet = 4096

// contendedWorkers is the worker count of the contended phase.
const contendedWorkers = 8

// batchElems is the array length of the batched-crossing phase.
const batchElems = 8

func newCrossRig(mode core.Mode) (*crossRig, error) {
	sys := core.NewSystem()
	sys.Mon.SetMode(mode)
	r := &crossRig{sys: sys, th: sys.NewThread("crossings")}
	r.tht = sys.NewThread("crossings-traced")
	r.tht.EnableTrace()
	// xbench_sink is the crossing phases' annotated kernel export: the
	// wrapper runs one compiled pre and one compiled post action per
	// call, the shape of a typical checked export (spin_lock,
	// copy_from_user) without side effects that would grow state.
	sys.RegisterKernelFunc("xbench_sink",
		[]core.Param{core.P("p", "void *"), core.P("n", "u64")},
		"pre(check(write, p, 8)) post(if (return == 0) check(write, p, 8))",
		func(t *core.Thread, a []uint64) uint64 { return 0 })
	// xbench_batch_caps(arr, n): the WRITE capability of each 8-byte
	// target named by an n-element pointer array — the skb_array_caps
	// shape with scalar elements.
	sys.RegisterIterator("xbench_batch_caps",
		func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
			arr, n := mem.Addr(uint64(args[0])), args[1]
			for i := int64(0); i < n && i < batchElems; i++ {
				w, err := sys.AS.ReadU64(arr + mem.Addr(i*8))
				if err != nil || w == 0 {
					continue
				}
				if err := emit(caps.WriteCap(mem.Addr(w), 8)); err != nil {
					return err
				}
			}
			return nil
		})
	// xbench_batch_sink is the batched crossing: one wrapper entry whose
	// pre action walks the array and checks every element.
	sys.RegisterKernelFunc("xbench_batch_sink",
		[]core.Param{core.P("arr", "u64 *"), core.P("n", "u64")},
		"pre(check(xbench_batch_caps(arr, n)))",
		func(t *core.Thread, a []uint64) uint64 { return 0 })
	var gSink, gBatchSink *core.Gate // bound after load
	m, err := sys.LoadModule(core.ModuleSpec{
		Name:     "xbench",
		Imports:  []string{"xbench_sink", "xbench_batch_sink"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			// checks: n repeated probes of one (addr, 8) WRITE — the
			// cached regime.
			{Name: "checks", Params: []core.Param{core.P("n", "u64"), core.P("addr", "u64")},
				Impl: func(t *core.Thread, a []uint64) uint64 {
					c := caps.WriteCap(mem.Addr(a[1]), 8)
					for i := uint64(0); i < a[0]; i++ {
						if t.LxfiCheck(c) != nil {
							return 1
						}
					}
					return 0
				}},
			// crossgate: n full crossings into xbench_sink through the
			// bound gate (lookup-free, allocation-free).
			{Name: "crossgate", Params: []core.Param{core.P("n", "u64"), core.P("addr", "u64")},
				Impl: func(t *core.Thread, a []uint64) uint64 {
					for i := uint64(0); i < a[0]; i++ {
						if ret, err := gSink.Call2(t, a[1], sinkArgBytes); err != nil || ret != 0 {
							return 1
						}
					}
					return 0
				}},
			// crossnamed: the same crossings through the string-keyed
			// CallKernel path (per-call symbol lookup + variadic args).
			{Name: "crossnamed", Params: []core.Param{core.P("n", "u64"), core.P("addr", "u64")},
				Impl: func(t *core.Thread, a []uint64) uint64 {
					for i := uint64(0); i < a[0]; i++ {
						if ret, err := t.CallKernel("xbench_sink", a[1], sinkArgBytes); err != nil || ret != 0 {
							return 1
						}
					}
					return 0
				}},
			// crossbatch: n batched crossings into xbench_batch_sink. The
			// module fills an array in its own data section with
			// batchElems granted addresses, then crosses once per
			// iteration — the annotation checks all 8 elements per call.
			{Name: "crossbatch", Params: []core.Param{core.P("n", "u64"), core.P("addr", "u64")},
				Impl: func(t *core.Thread, a []uint64) uint64 {
					arr := t.CurrentModule().Data + 512
					for i := uint64(0); i < batchElems; i++ {
						if t.WriteU64(arr+mem.Addr(i*8), a[1]+i*8) != nil {
							return 1
						}
					}
					for i := uint64(0); i < a[0]; i++ {
						if ret, err := gBatchSink.Call2(t, uint64(arr), batchElems); err != nil || ret != 0 {
							return 1
						}
					}
					return 0
				}},
			// checkscold: n probes cycling through the cold working set.
			{Name: "checkscold", Params: []core.Param{core.P("n", "u64"), core.P("base", "u64")},
				Impl: func(t *core.Thread, a []uint64) uint64 {
					base := mem.Addr(a[1])
					for i := uint64(0); i < a[0]; i++ {
						c := caps.WriteCap(base+mem.Addr((i%coldSet)*8), 8)
						if t.LxfiCheck(c) != nil {
							return 1
						}
					}
					return 0
				}},
		},
	})
	if err != nil {
		return nil, err
	}
	gSink = m.Gate("xbench_sink")
	gBatchSink = m.Gate("xbench_batch_sink")
	r.m, r.p = m, m.Set.Shared()
	// One 32 KiB region for the cold set, plus one page per contended
	// worker two pages apart so the workers' probes land on distinct
	// 4 KiB buckets (and therefore distinct shards when the host has
	// them).
	r.base = mem.Addr(0xffff8800_0100_0000)
	sys.Caps.Grant(r.p, caps.WriteCap(r.base, coldSet*8))
	for w := 0; w < contendedWorkers; w++ {
		sys.Caps.Grant(r.p, caps.WriteCap(r.workerAddr(w), mem.PageSize))
	}
	return r, nil
}

func (r *crossRig) workerAddr(w int) mem.Addr {
	return r.base + mem.Addr(1<<20) + mem.Addr(w)*2*mem.PageSize
}

// timeChecks runs one module check loop and returns (ns/op, allocs/op).
func (r *crossRig) timeChecks(fn string, n int, addr mem.Addr) (float64, float64, error) {
	return r.timeChecksOn(r.th, fn, n, addr)
}

// timeChecksOn is timeChecks on a caller-chosen thread (the traced
// phase runs the same loop on the ring-equipped thread).
func (r *crossRig) timeChecksOn(th *core.Thread, fn string, n int, addr mem.Addr) (float64, float64, error) {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ret, err := th.CallModule(r.m, fn, uint64(n), uint64(addr))
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil || ret != 0 {
		return 0, 0, fmt.Errorf("microbench: %s loop failed: ret=%d err=%v", fn, ret, err)
	}
	nsOp := float64(elapsed.Nanoseconds()) / float64(n)
	allocsOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	return nsOp, allocsOp, nil
}

// timeContended runs the check loop on contendedWorkers spawned kernel
// threads at shard-spread addresses and returns aggregate ns/op.
func (r *crossRig) timeContended(perWorker int) (float64, error) {
	start := make(chan struct{})
	errs := make([]error, contendedWorkers)
	handles := make([]*core.ThreadHandle, contendedWorkers)
	for w := 0; w < contendedWorkers; w++ {
		w := w
		handles[w] = r.sys.Spawn(fmt.Sprintf("xbench-w%d", w), func(t *core.Thread) {
			<-start
			ret, err := t.CallModule(r.m, "checks", uint64(perWorker), uint64(r.workerAddr(w)))
			if err != nil || ret != 0 {
				errs[w] = fmt.Errorf("worker %d: ret=%d err=%v", w, ret, err)
			}
		})
	}
	begin := time.Now()
	close(start)
	for _, h := range handles {
		h.Join()
	}
	span := time.Since(begin)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(span.Nanoseconds()) / float64(perWorker*contendedWorkers), nil
}

// timeRevokeStorm interleaves grant/check/revoke/check cycles through a
// thread's cached check path, asserting that a revoked capability is
// never served from the cache. Returns ns per grant+revoke cycle.
func (r *crossRig) timeRevokeStorm(n int) (float64, error) {
	p := r.p
	th := r.th
	addr := r.base + mem.Addr(2<<20)
	start := time.Now()
	for i := 0; i < n; i++ {
		c := caps.WriteCap(addr+mem.Addr(i%16)*256, 64)
		r.sys.Caps.Grant(p, c)
		if !th.CheckCached(p, c) {
			return 0, fmt.Errorf("microbench: granted cap not visible at iter %d", i)
		}
		r.sys.Caps.RevokeAll(c)
		if th.CheckCached(p, c) {
			return 0, fmt.Errorf("microbench: SECURITY: revoked cap served (stale cache?) at iter %d", i)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}

// reloadsPerRound is how many back-to-back hot reloads the "reload"
// phase times per round.
const reloadsPerRound = 8

// timeReload measures the full hot-reload latency of a registry module
// (econet on a minimal netstack kernel, with one live socket instance so
// the snapshot and capability migration have real work): quiesce,
// snapshot, swap, migrate, gate re-bind. No traffic is in flight — this
// is the latency floor the fsperf/netperf reload-under-traffic phases
// build on.
func timeReload(mode core.Mode) (float64, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	st := netstack.Init(k)
	th := k.Sys.NewThread("reload-bench")
	ld := modules.NewLoaderWith(&modules.BootContext{K: k, Net: st})
	if _, err := ld.Load(th, "econet"); err != nil {
		return 0, err
	}
	if _, err := st.Socket(th, econet.Family); err != nil {
		return 0, err
	}
	if _, err := ld.Reload(th, "econet"); err != nil { // warmup
		return 0, err
	}
	start := time.Now()
	for i := 0; i < reloadsPerRound; i++ {
		if _, err := ld.Reload(th, "econet"); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reloadsPerRound), nil
}

// MeasureCrossings runs all phases under both builds.
func MeasureCrossings(iters int) ([]CrossingRow, error) {
	rows, _, err := MeasureCrossingsWithMetrics(iters)
	return rows, err
}

// MeasureCrossingsWithMetrics is MeasureCrossings plus a snapshot of
// the enforced rig's metrics registry after the run (the -metrics flag
// of cmd/lxfi-microbench).
func MeasureCrossingsWithMetrics(iters int) ([]CrossingRow, *core.MetricsSnapshot, error) {
	if iters < coldSet {
		iters = coldSet
	}
	rows := []CrossingRow{
		{Op: "check cold", Workers: 1},
		{Op: "check cached", Workers: 1},
		{Op: "check contended", Workers: contendedWorkers},
		{Op: "revoke storm", Workers: 1},
		{Op: "crossing gate", Workers: 1},
		{Op: "crossing named", Workers: 1},
		{Op: "crossing batch", Workers: 1},
		{Op: "crossing traced", Workers: 1},
		{Op: "reload", Workers: 1},
	}
	var metrics *core.MetricsSnapshot
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		r, err := newCrossRig(mode)
		if err != nil {
			return nil, nil, err
		}
		set := func(i int, ns, allocs float64) {
			if mode == core.Off {
				rows[i].StockNs = ns
			} else {
				rows[i].LxfiNs = ns
				rows[i].AllocsPerOp = allocs
			}
		}
		// Warmup, then best-of-rounds like the other benches. The traced
		// thread warms up too so its ring and caches are hot.
		if _, _, err := r.timeChecks("checks", iters/10+1, r.workerAddr(0)); err != nil {
			return nil, nil, err
		}
		if _, _, err := r.timeChecksOn(r.tht, "crossgate", iters/10+1, r.workerAddr(0)); err != nil {
			return nil, nil, err
		}
		const rounds = 3
		type phase struct {
			idx int
			run func() (float64, float64, error)
		}
		phases := []phase{
			{0, func() (float64, float64, error) { return r.timeChecks("checkscold", iters, r.base) }},
			{1, func() (float64, float64, error) { return r.timeChecks("checks", iters, r.workerAddr(0)) }},
			{2, func() (float64, float64, error) {
				ns, err := r.timeContended(iters / contendedWorkers)
				return ns, 0, err
			}},
			{3, func() (float64, float64, error) { ns, err := r.timeRevokeStorm(iters / 4); return ns, 0, err }},
			{4, func() (float64, float64, error) { return r.timeChecks("crossgate", iters, r.workerAddr(0)) }},
			{5, func() (float64, float64, error) { return r.timeChecks("crossnamed", iters, r.workerAddr(0)) }},
			{6, func() (float64, float64, error) { return r.timeChecks("crossbatch", iters, r.workerAddr(0)) }},
			{8, func() (float64, float64, error) { ns, err := timeReload(mode); return ns, 0, err }},
		}
		for _, ph := range phases {
			best, bestAllocs := 0.0, 0.0
			for round := 0; round < rounds; round++ {
				ns, allocs, err := ph.run()
				if err != nil {
					return nil, nil, err
				}
				if best == 0 || ns < best {
					best, bestAllocs = ns, allocs
				}
			}
			set(ph.idx, best, bestAllocs)
		}
		// The traced phase is measured in untraced/traced pairs run
		// back to back, so clock-frequency drift between rounds hits
		// both sides alike; the recorder's cost is the ratio of the two
		// bests, not the gap between measurements taken minutes apart.
		bestPlain, bestTraced, bestAllocs := 0.0, 0.0, 0.0
		for round := 0; round < rounds; round++ {
			plain, _, err := r.timeChecks("crossgate", iters, r.workerAddr(0))
			if err != nil {
				return nil, nil, err
			}
			ns, allocs, err := r.timeChecksOn(r.tht, "crossgate", iters, r.workerAddr(0))
			if err != nil {
				return nil, nil, err
			}
			if bestPlain == 0 || plain < bestPlain {
				bestPlain = plain
			}
			if bestTraced == 0 || ns < bestTraced {
				bestTraced, bestAllocs = ns, allocs
			}
		}
		set(7, bestTraced, bestAllocs)
		if mode == core.Enforce {
			if bestPlain > 0 {
				rows[7].TraceOverheadPct = 100 * (bestTraced - bestPlain) / bestPlain
			}
			m := r.sys.Metrics()
			metrics = &m
		}
	}
	for i := range rows {
		if rows[i].StockNs > 0 {
			rows[i].OverheadPct = 100 * (rows[i].LxfiNs - rows[i].StockNs) / rows[i].StockNs
		}
	}
	// The contended phase as a scaling ratio against the single-thread
	// cached phase (ROADMAP PR-4 follow-up): stable across runners with
	// different absolute speeds.
	if rows[1].LxfiNs > 0 {
		rows[2].ScalingRatio = rows[2].LxfiNs / rows[1].LxfiNs
	}
	if rows[1].StockNs > 0 {
		rows[2].StockScalingRatio = rows[2].StockNs / rows[1].StockNs
	}
	return rows, metrics, nil
}

// CrossingsJSON serializes the report for the CI artifact.
func CrossingsJSON(rows []CrossingRow, iters int) ([]byte, error) {
	doc := CrossingReport{
		Bench:   "crossings",
		Iters:   iters,
		Shards:  caps.NewSystem().ShardCount(),
		Threads: runtime.GOMAXPROCS(0),
	}
	doc.Results = append(doc.Results, struct {
		FS   string        `json:"fs"`
		Rows []CrossingRow `json:"rows"`
	}{FS: "crossings", Rows: rows})
	return json.MarshalIndent(doc, "", "  ")
}

// FormatCrossings renders the crossing table.
func FormatCrossings(rows []CrossingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %12s %8s %9s\n",
		"phase", "stock ns/op", "lxfi ns/op", "overhead", "allocs/op", "workers", "x cached")
	for _, r := range rows {
		ratio := ""
		if r.ScalingRatio > 0 {
			ratio = fmt.Sprintf("%9.2f", r.ScalingRatio)
		}
		fmt.Fprintf(&b, "%-16s %12.1f %12.1f %9.0f%% %12.4f %8d %s\n",
			r.Op, r.StockNs, r.LxfiNs, r.OverheadPct, r.AllocsPerOp, r.Workers, ratio)
	}
	return b.String()
}

package microbench_test

import (
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/microbench"
)

func TestWorkloadsRunBothModes(t *testing.T) {
	for name, build := range map[string]func(core.Mode) (*microbench.Workload, error){
		"hotlist": microbench.NewHotlist,
		"lld":     microbench.NewLld,
		"MD5":     microbench.NewMD5,
	} {
		for _, mode := range []core.Mode{core.Off, core.Enforce} {
			w, err := build(mode)
			if err != nil {
				t.Fatalf("%s[%v]: %v", name, mode, err)
			}
			for i := 0; i < 10; i++ {
				if err := w.Op(); err != nil {
					t.Fatalf("%s[%v] op %d: %v", name, mode, i, err)
				}
			}
			if mode == core.Enforce && w.K.Sys.Mon.LastViolation() != nil {
				t.Fatalf("%s: violation: %v", name, w.K.Sys.Mon.LastViolation())
			}
		}
	}
}

func TestGuardCountsMatchWorkloadShape(t *testing.T) {
	// hotlist's search loop is loads-only; LXFI must execute zero
	// memory-write guards per search.
	w, err := microbench.NewHotlist(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	before := w.K.Sys.Mon.Stats.Snapshot()
	if err := w.Op(); err != nil {
		t.Fatal(err)
	}
	d := w.K.Sys.Mon.Stats.Snapshot().Sub(before)
	if d.MemWriteChecks != 0 {
		t.Fatalf("hotlist search ran %d write guards; loads must be uninstrumented", d.MemWriteChecks)
	}

	// lld's request path is store-heavy: 64 block stores + 2 metadata.
	lld, err := microbench.NewLld(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	before = lld.K.Sys.Mon.Stats.Snapshot()
	if err := lld.Op(); err != nil {
		t.Fatal(err)
	}
	d = lld.K.Sys.Mon.Stats.Snapshot().Sub(before)
	if d.MemWriteChecks != 66 {
		t.Fatalf("lld write guards = %d, want 66", d.MemWriteChecks)
	}

	// MD5 commits exactly one guarded store per digest.
	md5w, err := microbench.NewMD5(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	before = md5w.K.Sys.Mon.Stats.Snapshot()
	if err := md5w.Op(); err != nil {
		t.Fatal(err)
	}
	d = md5w.K.Sys.Mon.Stats.Snapshot().Sub(before)
	if d.MemWriteChecks != 1 {
		t.Fatalf("MD5 write guards = %d, want 1", d.MemWriteChecks)
	}
}

func TestStaticCodeSizeAnalysis(t *testing.T) {
	for _, name := range []string{"hotlist", "lld", "MD5"} {
		stmts, guards := microbench.GuardSites(name)
		if stmts == 0 || guards == 0 {
			t.Fatalf("%s: static analysis found stmts=%d guards=%d", name, stmts, guards)
		}
		delta := microbench.CodeSizeDelta(name)
		if delta <= 1.0 || delta > 2.0 {
			t.Fatalf("%s: Δ code size = %.2f, expect (1.0, 2.0]", name, delta)
		}
	}
	if microbench.CodeSizeDelta("nosuch") != 1 {
		t.Fatal("unknown workload should report 1.0")
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rs, err := microbench.RunAll(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	byName := map[string]microbench.Result{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	// Shape (Fig. 11): hotlist ≈ 0, lld the largest. Timing jitter makes
	// absolute thresholds flaky, so assert the ordering with margin:
	// lld must slow down substantially more than hotlist.
	if h, l := byName["hotlist"].Slowdown, byName["lld"].Slowdown; l < h+0.05 {
		t.Errorf("lld (%.1f%%) should slow down clearly more than hotlist (%.1f%%)", l*100, h*100)
	}
	if byName["lld"].Slowdown < 0.02 {
		t.Errorf("lld slowdown = %.1f%%, expected measurable overhead", byName["lld"].Slowdown*100)
	}
	out := microbench.Format(rs)
	if out == "" {
		t.Fatal("empty format")
	}
}

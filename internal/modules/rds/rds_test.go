package rds_test

import (
	"bytes"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/rds"
	"lxfi/internal/netstack"
)

func rig(t *testing.T, mode core.Mode, cfg rds.Config) (*kernel.Kernel, *netstack.Stack, *core.Thread, *rds.Proto) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	st := netstack.Init(k)
	th := k.Sys.NewThread("rds")
	p, err := rds.Load(th, k, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, st, th, p
}

func TestLegitimateSendRecv(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, st, th, _ := rig(t, mode, rds.Config{})
		s, err := st.Socket(th, rds.Family)
		if err != nil {
			t.Fatalf("[%v] socket: %v", mode, err)
		}
		src := k.Sys.User.Alloc(64, 8)
		dst := k.Sys.User.Alloc(64, 8)
		msg := []byte("rds ping")
		if err := k.Sys.AS.Write(src, msg); err != nil {
			t.Fatal(err)
		}
		if n, err := st.Sendmsg(th, s, src, uint64(len(msg)), 0); err != nil || n != uint64(len(msg)) {
			t.Fatalf("[%v] sendmsg: n=%d err=%v", mode, int64(n), err)
		}
		n, err := st.Recvmsg(th, s, dst, uint64(len(msg)), 0)
		if err != nil || n != uint64(len(msg)) {
			t.Fatalf("[%v] recvmsg: n=%d err=%v", mode, int64(n), err)
		}
		got, _ := k.Sys.AS.ReadBytes(dst, uint64(len(msg)))
		if !bytes.Equal(got, msg) {
			t.Fatalf("[%v] payload = %q", mode, got)
		}
		// Legitimate traffic must not trip enforcement.
		if mode == core.Enforce && k.Sys.Mon.LastViolation() != nil {
			t.Fatalf("[%v] violation on legit traffic: %v", mode, k.Sys.Mon.LastViolation())
		}
	}
}

func TestArbitraryKernelWriteStock(t *testing.T) {
	// The CVE primitive: recvmsg to a kernel address succeeds on stock.
	k, st, th, _ := rig(t, core.Off, rds.Config{})
	s, _ := st.Socket(th, rds.Family)
	victim := k.Sys.Statics.Alloc(8, 8)
	must(t, k.Sys.AS.WriteU64(victim, 0x1111111111111111))

	src := k.Sys.User.Alloc(8, 8)
	must(t, k.Sys.AS.WriteU64(src, 0x4242424242424242))
	if n, err := st.Sendmsg(th, s, src, 8, 0); err != nil || n != 8 {
		t.Fatalf("sendmsg: %d %v", int64(n), err)
	}
	n, err := st.Recvmsg(th, s, victim, 8, 0)
	if err != nil || n != 8 {
		t.Fatalf("recvmsg: %d %v", int64(n), err)
	}
	v, _ := k.Sys.AS.ReadU64(victim)
	if v != 0x4242424242424242 {
		t.Fatalf("stock kernel should allow the arbitrary write; victim=%#x", v)
	}
}

func TestArbitraryKernelWriteBlockedByLXFI(t *testing.T) {
	k, st, th, _ := rig(t, core.Enforce, rds.Config{})
	s, _ := st.Socket(th, rds.Family)
	victim := k.Sys.Statics.Alloc(8, 8)
	must(t, k.Sys.AS.WriteU64(victim, 0x1111111111111111))
	src := k.Sys.User.Alloc(8, 8)
	must(t, k.Sys.AS.WriteU64(src, 0x4242424242424242))
	_, _ = st.Sendmsg(th, s, src, 8, 0)
	_, err := st.Recvmsg(th, s, victim, 8, 0)
	if err == nil {
		t.Fatal("recvmsg to kernel address should fail under LXFI")
	}
	v, _ := k.Sys.AS.ReadU64(victim)
	if v != 0x1111111111111111 {
		t.Fatalf("victim was corrupted: %#x", v)
	}
	if k.Sys.Mon.LastViolation() == nil {
		t.Fatal("no violation recorded")
	}
}

func TestOpsTablePlacement(t *testing.T) {
	_, _, _, pRO := rig(t, core.Enforce, rds.Config{})
	if pRO.OpsTable() != pRO.M.ROData {
		t.Fatal("default config should place ops in .rodata")
	}
	_, _, _, pRW := rig(t, core.Enforce, rds.Config{WritableOps: true})
	if pRW.OpsTable() != pRW.M.Data {
		t.Fatal("WritableOps should place ops in .data")
	}
}

func TestRodataOpsNotWritableByModule(t *testing.T) {
	// Even the module itself cannot write its read-only ops table under
	// LXFI ("LXFI does not grant WRITE capabilities for a module's
	// read-only section", §8.1).
	k, _, _, p := rig(t, core.Enforce, rds.Config{})
	shared := p.M.Set.Shared()
	if k.Sys.Caps.Check(shared, writeCap(p.IoctlSlot())) {
		t.Fatal("module holds WRITE capability for .rodata")
	}
	pw, _, _, pcfg := func() (*kernel.Kernel, *netstack.Stack, *core.Thread, *rds.Proto) {
		return rig(t, core.Enforce, rds.Config{WritableOps: true})
	}()
	if !pw.Sys.Caps.Check(pcfg.M.Set.Shared(), writeCap(pcfg.IoctlSlot())) {
		t.Fatal("writable-ops config should grant the capability")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func writeCap(a mem.Addr) caps.Cap { return caps.WriteCap(a, 8) }

package rds

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// Module returns the loaded core module, satisfying modules.Instance.
func (p *Proto) Module() *core.Module { return p.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "rds",
		Requires: []string{modules.SubNet},
		// opt: rds.Config (nil selects the read-only ops table default).
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			cfg, _ := opt.(Config)
			return Load(t, bc.K, bc.Net, cfg)
		},
	})
}

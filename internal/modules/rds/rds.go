// Package rds is the simulated Reliable Datagram Sockets module,
// carrying CVE-2010-3904: rds_page_copy_user copies message data to a
// user-supplied destination address without checking that the address is
// actually in user space, giving a local attacker an
// arbitrary-kernel-write primitive through recvmsg(2).
//
// Two build configurations mirror §8.1's evaluation:
//
//   - ops table in .rodata (the real layout): LXFI never grants a WRITE
//     capability for the read-only section, so the exploit's write is
//     blocked outright;
//   - ops table in .data (the paper's "we made this memory location
//     writable" variant): the write succeeds, and the exploit is instead
//     stopped at the kernel's indirect call by the writer-set + CALL
//     capability check.
package rds

import (
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
)

// Family is AF_RDS.
const Family = 21

// RdsSock is the layout of the module's per-socket state.
const RdsSock = "struct rds_sock"

// Config selects where the proto_ops table lives.
type Config struct {
	// WritableOps places rds_proto_ops in the module's .data section
	// instead of .rodata, reproducing the paper's second experiment.
	WritableOps bool
}

// Proto is the loaded rds module.
type Proto struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gSockRegister *core.Gate
	gKmalloc      *core.Gate
	gKfree        *core.Gate
	gCopyToUser   *core.Gate
	K             *kernel.Kernel
	St            *netstack.Stack

	cfg     Config
	sockLay *layout.Struct

	// pending holds queued message payloads per socket (the simulated
	// receive queue; in Linux this lives in sk_buffs on the socket).
	pending map[mem.Addr][][]byte
}

// Load loads the module with the given configuration.
func Load(t *core.Thread, k *kernel.Kernel, st *netstack.Stack, cfg Config) (*Proto, error) {
	p := &Proto{K: k, St: st, cfg: cfg, pending: make(map[mem.Addr][][]byte)}
	if _, ok := k.Sys.Layouts.Get(RdsSock); !ok {
		p.sockLay = k.Sys.Layouts.Define(RdsSock,
			layout.F("bound", 8),
			layout.F("port", 8),
		)
	} else {
		p.sockLay = k.Sys.Layouts.MustGet(RdsSock)
	}

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:       "rds",
		Imports:    []string{"sock_register", "kmalloc", "kfree", "printk", "__copy_to_user", "__copy_from_user"},
		DataSize:   4096,
		RODataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "create", Type: netstack.FamilyCreate, Impl: p.create},
			{Name: "bind", Type: netstack.OpsBind, Impl: p.bind},
			{Name: "sendmsg", Type: netstack.OpsSendmsg, Impl: p.sendmsg},
			{Name: "recvmsg", Type: netstack.OpsRecvmsg, Impl: p.recvmsg},
			{Name: "ioctl", Type: netstack.OpsIoctl, Impl: p.ioctl},
			{Name: "release", Type: netstack.OpsRelease, Impl: p.release},
			{Name: "init", Impl: p.init},
		},
	})
	if err != nil {
		return nil, err
	}
	p.M = m
	p.gSockRegister = m.Gate("sock_register")
	p.gKmalloc = m.Gate("kmalloc")
	p.gKfree = m.Gate("kfree")
	p.gCopyToUser = m.Gate("__copy_to_user")

	// The module loader materializes the ops table from the object file:
	// for the .rodata configuration the module itself could never write
	// it, so the "relocation" happens in trusted loader context.
	ops := p.OpsTable()
	as := k.Sys.AS
	for slot, fn := range map[string]string{
		"bind": "bind", "sendmsg": "sendmsg", "recvmsg": "recvmsg",
		"ioctl": "ioctl", "release": "release",
	} {
		if err := as.WriteU64(st.ProtoOpsSlot(ops, slot), uint64(m.Funcs[fn].Addr)); err != nil {
			return nil, err
		}
	}

	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		if err == nil {
			err = kernelInitErr
		}
		return nil, err
	}
	return p, nil
}

var kernelInitErr = &initError{}

type initError struct{}

func (e *initError) Error() string { return "rds: init failed" }

// OpsTable returns the address of rds_proto_ops in the configured
// section.
func (p *Proto) OpsTable() mem.Addr {
	if p.cfg.WritableOps {
		return p.M.Data
	}
	return p.M.ROData
}

// IoctlSlot returns the slot the exploit overwrites.
func (p *Proto) IoctlSlot() mem.Addr { return p.St.ProtoOpsSlot(p.OpsTable(), "ioctl") }

func (p *Proto) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	if ret, err := p.gSockRegister.Call2(t, Family, uint64(mod.Funcs["create"].Addr)); err != nil || kernel.IsErr(ret) {
		return 1
	}
	return 0
}

func (p *Proto) skField(sk mem.Addr, f string) mem.Addr {
	return sk + mem.Addr(p.sockLay.Off(f))
}

func (p *Proto) create(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, err := p.gKmalloc.Call1(t, p.sockLay.Size)
	if err != nil || sk == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(p.St.SockField(sock, "ops"), uint64(p.OpsTable())); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(p.St.SockField(sock, "sk"), sk); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (p *Proto) bind(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	if err := t.WriteU64(p.skField(mem.Addr(sk), "port"), args[1]); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(p.skField(mem.Addr(sk), "bound"), 1); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// sendmsg queues a message: the payload is read from the user buffer
// (reads are legitimate) and held until recvmsg.
func (p *Proto) sendmsg(t *core.Thread, args []uint64) uint64 {
	sock, buf, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
	if n > 4096 {
		return kernel.Err(kernel.EINVAL)
	}
	payload, err := t.ReadBytes(buf, n)
	if err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	p.pending[sock] = append(p.pending[sock], payload)
	return n
}

// recvmsg is rds_page_copy_user (CVE-2010-3904): it copies the queued
// message to the destination the user supplied — with NO access_ok
// check, so a kernel address works just as well. The store goes through
// the module's own (instrumented) write path: stock kernels perform it
// blindly; LXFI demands a WRITE capability.
func (p *Proto) recvmsg(t *core.Thread, args []uint64) uint64 {
	sock, buf, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
	q := p.pending[sock]
	if len(q) == 0 {
		return 0
	}
	msg := q[0]
	p.pending[sock] = q[1:]
	if uint64(len(msg)) < n {
		n = uint64(len(msg))
	}
	// Stage the message in module-owned memory, then copy it out with
	// the no-access_ok uaccess variant.
	staging, err := p.gKmalloc.Call1(t, n)
	if err != nil || staging == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.Write(mem.Addr(staging), msg[:n]); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	// MISSING: if !access_ok(buf, n) { return -EFAULT } (CVE-2010-3904):
	// __copy_to_user performs no check of its own, so a kernel-space buf
	// goes straight through on a stock kernel.
	ret, cerr := p.gCopyToUser.Call3(t, uint64(buf), staging, n)
	if _, ferr := p.gKfree.Call1(t, staging); ferr != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if cerr != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EFAULT)
	}
	return n
}

func (p *Proto) ioctl(t *core.Thread, args []uint64) uint64 {
	return kernel.Err(kernel.EINVAL)
}

func (p *Proto) release(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	delete(p.pending, sock)
	if sk != 0 {
		if _, err := p.gKfree.Call1(t, sk); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

package modules_test

// Dead-module VFS semantics: while a filesystem module is quarantined
// (killed after a violation or contained panic, not yet restarted),
// operations against its mounts fail with clean EIO-mapped errors —
// never a hang or an escaped panic — dirty pages park in the cache, and
// after the supervisor publishes a successor generation everything
// drains and round-trips.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/failpoint"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
)

// killFS arms a one-shot contained panic at the kernel-export boundary
// (iget — called by the module's create, never during load/init, so
// the later restart cannot re-trip it) and trips it with a create.
func killFS(t *testing.T, ld *modules.Loader, th *core.Thread, name string, sb mem.Addr) {
	t.Helper()
	failpoint.Arm("kernel.entry", failpoint.Policy{Arg: "iget", Panic: true, OneShot: true})
	if _, err := ld.BC.FS.Create(th, sb, "/killer"); err == nil {
		t.Fatal("create succeeded with a panic armed at iget")
	}
	m, ok := ld.Module(name)
	if !ok || !m.Dead() {
		t.Fatalf("contained panic did not kill %s", name)
	}
}

func TestDeadFSModuleFailsCleanly(t *testing.T) {
	defer failpoint.DisarmAll()
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "tmpfssim"); err != nil {
		t.Fatal(err)
	}
	v := ld.BC.FS
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("survives the outage")
	if _, err := v.Create(th, sb, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb, "/f", 0, data); err != nil {
		t.Fatal(err)
	}

	killFS(t, ld, th, "tmpfssim", sb)

	// Every op that needs a module crossing fails promptly with the EIO
	// mapping, ErrModuleDead still in the chain.
	for op, call := range map[string]func() error{
		"lookup": func() error { _, err := v.Lookup(th, sb, "/uncached"); return err },
		"create": func() error { _, err := v.Create(th, sb, "/g"); return err },
		"mount":  func() error { _, err := v.Mount(th, tmpfssim.FsID, 0); return err },
	} {
		err := call()
		if !errors.Is(err, core.ErrModuleDead) {
			t.Fatalf("%s on dead module: %v, want ErrModuleDead in chain", op, err)
		}
		var deg *core.DegradedError
		if !errors.As(err, &deg) || deg.Errno != kernel.EIO {
			t.Fatalf("%s on dead module: %v, want DegradedError(EIO)", op, err)
		}
	}
	// Cached state still serves: the page cache holds the only copy of
	// tmpfs data and reading it needs no module crossing.
	got, err := v.Read(th, sb, "/f", 0, uint64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cached read during outage: %q, %v", got, err)
	}

	// A manual reload recovers, and the pre-death file is intact.
	if _, err := ld.Reload(th, "tmpfssim"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/g"); err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
	if _, err := v.Lookup(th, sb, "/f"); err != nil {
		t.Fatalf("lookup after recovery: %v", err)
	}
	got, err = v.Read(th, sb, "/f", 0, uint64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after recovery: %q, %v", got, err)
	}
}

func TestDirtyPagesParkAcrossModuleDeath(t *testing.T) {
	defer failpoint.DisarmAll()
	k := kernel.New()
	k.Sys.Mon.SetMode(core.Enforce)
	bl := blockdev.Init(k)
	bl.AddDisk(1, minixsim.DiskSectors)
	ld := modules.NewLoaderWith(&modules.BootContext{K: k, Block: bl})
	th := k.Sys.NewThread("test")
	if _, err := ld.Load(th, "minixsim"); err != nil {
		t.Fatal(err)
	}
	v := ld.BC.FS
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	sup := modules.StartSupervisor(ld, modules.SupervisorConfig{Backoff: time.Millisecond})
	defer sup.Stop()

	data := bytes.Repeat([]byte{0x5a}, mem.PageSize)
	if _, err := v.Create(th, sb, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb, "/f", 0, data); err != nil {
		t.Fatal(err)
	}
	dirty := v.DirtyCount()
	if dirty == 0 {
		t.Fatal("write left no dirty pages")
	}

	killFS(t, ld, th, "minixsim", sb)

	// Writeback cannot cross into the dead module: the pass returns
	// without hanging and the pages stay parked (errors keep them
	// dirty for the retry).
	v.FlushAged(th)
	if got := v.DirtyCount(); got != dirty {
		t.Fatalf("flush against dead module changed dirty count: %d -> %d", dirty, got)
	}

	if !sup.WaitIdle(5 * time.Second) {
		t.Fatal("supervisor did not recover minixsim")
	}
	if m, ok := ld.Module("minixsim"); !ok || m.Dead() {
		t.Fatal("minixsim not alive after supervised restart")
	}

	// The parked pages drain through the successor generation...
	v.FlushAged(th)
	if got := v.DirtyCount(); got != 0 {
		t.Fatalf("%d dirty pages still parked after recovery flush", got)
	}
	// ...and really reached the disk: evict the cache and read back.
	v.DropCaches(sb)
	got, err := v.Read(th, sb, "/f", 0, mem.PageSize)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-recovery disk read: %v (data match=%v)", err, bytes.Equal(got, data))
	}
}

package dmzero

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// Module returns the loaded core module, satisfying modules.Instance.
func (tg *Target) Module() *core.Module { return tg.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "dm-zero",
		Requires: []string{modules.SubBlock},
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			return Load(t, bc.K, bc.Block)
		},
	})
}

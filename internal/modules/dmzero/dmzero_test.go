package dmzero_test

import (
	"bytes"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/dmzero"
)

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *blockdev.Layer, *core.Thread, *dmzero.Target) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	l := blockdev.Init(k)
	th := k.Sys.NewThread("dm")
	tg, err := dmzero.Load(th, k, l)
	if err != nil {
		t.Fatal(err)
	}
	return k, l, th, tg
}

func TestReadsReturnZeroes(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, l, th, tg := rig(t, mode)
		ti, err := l.CreateTarget(th, tg.Ops(), 0, 0, 64, 0)
		if err != nil {
			t.Fatalf("[%v] ctr: %v", mode, err)
		}
		bio, _ := l.AllocBio(256)
		data, _ := k.Sys.AS.ReadU64(l.BioField(bio, "data"))
		// Dirty the buffer first.
		if err := k.Sys.AS.Write(mem.Addr(data), bytes.Repeat([]byte{0xFF}, 256)); err != nil {
			t.Fatal(err)
		}
		if err := l.Submit(th, ti, bio); err != nil {
			t.Fatalf("[%v] submit: %v", mode, err)
		}
		got, _ := k.Sys.AS.ReadBytes(mem.Addr(data), 256)
		if !bytes.Equal(got, make([]byte, 256)) {
			t.Fatalf("[%v] read did not zero the payload", mode)
		}
		if l.Completed() != 1 {
			t.Fatalf("[%v] completed = %d", mode, l.Completed())
		}
	}
}

func TestWritesDiscarded(t *testing.T) {
	k, l, th, tg := rig(t, core.Enforce)
	ti, _ := l.CreateTarget(th, tg.Ops(), 0, 0, 64, 0)
	bio, _ := l.AllocBio(64)
	if err := k.Sys.AS.WriteU64(l.BioField(bio, "rw"), blockdev.WriteBio); err != nil {
		t.Fatal(err)
	}
	if err := l.Submit(th, ti, bio); err != nil {
		t.Fatal(err)
	}
	if l.Completed() != 1 {
		t.Fatal("write not completed")
	}
	if k.Sys.Mon.LastViolation() != nil {
		t.Fatalf("violation: %v", k.Sys.Mon.LastViolation())
	}
}

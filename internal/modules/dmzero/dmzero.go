// Package dmzero is the simulated dm-zero device-mapper target: reads
// return zeroes, writes are discarded. It is the smallest of the ten
// annotated modules of Figure 9 (6 functions, 2 function pointers in the
// paper's count) and a useful minimal example of the dm target
// interface.
package dmzero

import (
	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// Target is the loaded dm-zero module.
type Target struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gBioEndio *core.Gate
	L         *blockdev.Layer
}

// Load loads the module; its target-type ops table lives at the start of
// its data section.
func Load(t *core.Thread, k *kernel.Kernel, l *blockdev.Layer) (*Target, error) {
	tg := &Target{L: l}
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "dm-zero",
		Imports:  []string{"bio_endio", "printk"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "ctr", Type: blockdev.DmCtr, Impl: tg.ctr},
			{Name: "dtr", Type: blockdev.DmDtr, Impl: tg.dtr},
			{Name: "map", Type: blockdev.DmMap, Impl: tg.mapBio},
			{Name: "init", Impl: tg.init},
		},
	})
	if err != nil {
		return nil, err
	}
	tg.M = m
	tg.gBioEndio = m.Gate("bio_endio")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return tg, nil
}

type initError struct{ err error }

func (e *initError) Error() string { return "dm-zero: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's dm_target_type table address.
func (tg *Target) Ops() mem.Addr { return tg.M.Data }

func (tg *Target) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for slot, fn := range map[string]string{"ctr": "ctr", "dtr": "dtr", "map": "map"} {
		if err := t.WriteU64(tg.L.OpsSlot(mod.Data, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	return 0
}

func (tg *Target) ctr(t *core.Thread, args []uint64) uint64 { return 0 }

func (tg *Target) dtr(t *core.Thread, args []uint64) uint64 { return 0 }

// mapBio zeroes read payloads and discards writes, completing the bio
// itself.
func (tg *Target) mapBio(t *core.Thread, args []uint64) uint64 {
	bio := mem.Addr(args[1])
	rw, _ := t.ReadU64(tg.L.BioField(bio, "rw"))
	if rw == blockdev.ReadBio {
		data, _ := t.ReadU64(tg.L.BioField(bio, "data"))
		n, _ := t.ReadU64(tg.L.BioField(bio, "len"))
		if err := t.Zero(mem.Addr(data), n); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	if ret, err := tg.gBioEndio.Call1(t, uint64(bio)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EFAULT)
	}
	return blockdev.MapSubmitted
}

package modules_test

// The chaos battery: every registered failpoint site is driven against
// concurrent filesystem and network traffic, with the supervisor
// restarting whatever dies. The invariants, asserted at the end of the
// run:
//
//   - no panic escapes a call gate (the test binary survives);
//   - every recorded violation is a contained "panic" from a managed
//     module — quarantine and migration never induce secondary
//     violations;
//   - recovery is bounded (WaitIdle) and the system serves a clean
//     error-free pass once the sites are disarmed;
//   - an idle bystander module (can) survives untouched: never killed,
//     capability set bit-identical across the whole run.

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/coredump"
	"lxfi/internal/failpoint"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules"
	"lxfi/internal/modules/econet"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
)

// chaosRig is the shared state of one chaos run.
type chaosRig struct {
	ld   *modules.Loader
	sup  *modules.Supervisor
	tmp  mem.Addr // tmpfs superblock
	mnx  mem.Addr // minix superblock
	stop chan struct{}
	wg   sync.WaitGroup
	ops  atomic.Uint64 // successful worker operations
}

func bootChaos(t *testing.T) *chaosRig {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(core.Enforce)
	bl := blockdev.Init(k)
	bl.AddDisk(1, minixsim.DiskSectors)
	ld := modules.NewLoaderWith(&modules.BootContext{K: k, Block: bl})
	th := k.Sys.NewThread("chaos-boot")
	for _, name := range []string{"tmpfssim", "minixsim", "econet", "can"} {
		if _, err := ld.Load(th, name); err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
	}
	r := &chaosRig{ld: ld, stop: make(chan struct{})}
	var err error
	if r.tmp, err = ld.BC.FS.Mount(th, tmpfssim.FsID, 0); err != nil {
		t.Fatal(err)
	}
	if r.mnx, err = ld.BC.FS.Mount(th, minixsim.FsID, 1); err != nil {
		t.Fatal(err)
	}
	r.sup = modules.StartSupervisor(ld, modules.SupervisorConfig{
		Backoff: time.Millisecond,
		// The battery kills modules far more often than any production
		// window would tolerate; keep the breaker out of the way.
		BreakerFailures: 1 << 20,
	})
	return r
}

// fsWorker hammers one mount with create/write/read/unlink rounds. All
// errors are tolerated — injected faults and quarantine windows make
// them routine — but successful rounds are counted.
func (r *chaosRig) fsWorker(name string, sb mem.Addr) {
	defer r.wg.Done()
	th := r.ld.BC.K.Sys.NewThread(name)
	v := r.ld.BC.FS
	data := bytes.Repeat([]byte{0xc7}, 512)
	for i := 0; ; i++ {
		select {
		case <-r.stop:
			return
		default:
		}
		path := fmt.Sprintf("/%s-%d", name, i%4)
		if _, err := v.Create(th, sb, path); err != nil {
			continue
		}
		if _, err := v.Write(th, sb, path, 0, data); err != nil {
			continue
		}
		got, err := v.Read(th, sb, path, 0, 512)
		if err != nil || !bytes.Equal(got, data) {
			continue
		}
		_ = v.Unlink(th, sb, path)
		r.ops.Add(1)
	}
}

// netWorker hammers econet with socket/sendmsg/release rounds.
func (r *chaosRig) netWorker() {
	defer r.wg.Done()
	sys := r.ld.BC.K.Sys
	th := sys.NewThread("chaos-net")
	st := r.ld.BC.Net
	user := sys.User.Alloc(64, 8)
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		sock, err := st.Socket(th, econet.Family)
		if err != nil {
			continue
		}
		if _, err := st.Sendmsg(th, sock, user, 16, 0); err != nil {
			continue
		}
		if _, err := st.Release(th, sock); err != nil {
			continue
		}
		r.ops.Add(1)
	}
}

// syncWorker drives the minix writeback path so the blockdev sites see
// traffic.
func (r *chaosRig) syncWorker() {
	defer r.wg.Done()
	th := r.ld.BC.K.Sys.NewThread("chaos-sync")
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		_ = r.ld.BC.FS.Sync(th, r.mnx)
		time.Sleep(time.Millisecond)
	}
}

// managed reports whether a module name belongs to the chaos fleet.
func managed(name string) bool {
	switch name {
	case "tmpfssim", "minixsim", "econet", "can":
		return true
	}
	return false
}

func TestChaosBattery(t *testing.T) {
	defer failpoint.DisarmAll()
	r := bootChaos(t)
	defer r.sup.Stop()
	sys := r.ld.BC.K.Sys
	th := sys.NewThread("chaos-main")

	dumpBefore := coredump.Snapshot(sys, coredump.Options{Reason: "chaos: before", VFS: r.ld.BC.FS})

	r.wg.Add(4)
	go r.fsWorker("tmp", r.tmp)
	go r.fsWorker("mnx", r.mnx)
	go r.netWorker()
	go r.syncWorker()

	// Phase 1 — error storms: every registered site in turn returns
	// injected errors into live traffic. Nothing dies; every caller
	// must degrade to an error return, never a hang or a panic.
	sites := failpoint.Sites()
	if len(sites) < 9 {
		t.Fatalf("only %d registered sites: %v", len(sites), sites)
	}
	for _, site := range sites {
		failpoint.Arm(site, failpoint.Policy{EveryNth: 3, Msg: "chaos"})
		time.Sleep(5 * time.Millisecond)
		failpoint.Disarm(site)
	}
	if len(sys.Mon.Violations()) != 0 {
		t.Fatalf("error storms caused violations: %v", sys.Mon.Violations())
	}

	// Phase 2 — contained panic rounds: a one-shot panic at the
	// kernel-export boundary kills whichever module crosses next; the
	// supervisor must restart it with traffic still running. The arg
	// filter rotates so fs modules (iget), allocation paths shared by
	// fs and net (kmalloc), and arbitrary crossings ("") all get hit.
	args := []string{"iget", "kmalloc", "", "iget", "kmalloc", ""}
	for round, arg := range args {
		if !r.sup.WaitIdle(10 * time.Second) {
			t.Fatalf("round %d: supervisor not idle before arming", round)
		}
		before := len(sys.Mon.Violations())
		restarts := r.sup.Restarts()
		failpoint.Arm("kernel.entry", failpoint.Policy{Arg: arg, Panic: true, OneShot: true, Msg: "chaos"})
		fired := false
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			if len(sys.Mon.Violations()) > before {
				fired = true
				break
			}
			time.Sleep(time.Millisecond)
		}
		failpoint.Disarm("kernel.entry")
		if !fired {
			t.Fatalf("round %d (arg %q): panic never fired under traffic", round, arg)
		}
		if !r.sup.WaitIdle(10 * time.Second) {
			t.Fatalf("round %d: recovery not bounded", round)
		}
		if r.sup.Restarts() <= restarts {
			t.Fatalf("round %d: module died but no restart happened", round)
		}
	}

	// Stop the workers and verify they made real progress through the
	// storms.
	close(r.stop)
	r.wg.Wait()
	if r.ops.Load() == 0 {
		t.Fatal("no worker operation ever succeeded")
	}

	// Every violation across the run is a contained panic from a
	// managed module: no bystander or secondary violations.
	for _, v := range sys.Mon.Violations() {
		if v.Op != "panic" || !managed(v.Module) {
			t.Fatalf("non-chaos violation: %v", v)
		}
	}

	// Bounded recovery: everything is alive and serves a clean pass
	// with all sites disarmed.
	failpoint.DisarmAll()
	if !r.sup.WaitIdle(10 * time.Second) {
		t.Fatal("supervisor not idle at end of run")
	}
	for _, name := range []string{"tmpfssim", "minixsim", "econet", "can"} {
		m, ok := r.ld.Module(name)
		if !ok || m.Dead() {
			t.Fatalf("%s not alive after the battery", name)
		}
	}
	preClean := len(sys.Mon.Violations())
	data := []byte("clean pass")
	if _, err := r.ld.BC.FS.Create(th, r.tmp, "/clean"); err != nil {
		t.Fatalf("clean create: %v", err)
	}
	if _, err := r.ld.BC.FS.Write(th, r.tmp, "/clean", 0, data); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	if got, err := r.ld.BC.FS.Read(th, r.tmp, "/clean", 0, uint64(len(data))); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("clean read: %q, %v", got, err)
	}
	sock, err := r.ld.BC.Net.Socket(th, econet.Family)
	if err != nil {
		t.Fatalf("clean socket: %v", err)
	}
	user := sys.User.Alloc(64, 8)
	if _, err := r.ld.BC.Net.Sendmsg(th, sock, user, 16, 0); err != nil {
		t.Fatalf("clean sendmsg: %v", err)
	}
	if err := r.ld.BC.FS.Sync(th, r.mnx); err != nil {
		t.Fatalf("clean sync: %v", err)
	}
	if got := len(sys.Mon.Violations()); got != preClean {
		t.Fatalf("clean pass recorded %d new violations", got-preClean)
	}

	// The idle bystander's capability set is bit-identical across the
	// whole run: restarts of its neighbours leaked nothing into or out
	// of it.
	dumpAfter := coredump.Snapshot(sys, coredump.Options{Reason: "chaos: after", VFS: r.ld.BC.FS})
	diff := coredump.Compare(dumpBefore, dumpAfter)
	if len(diff.ModulesAdded) != 0 || len(diff.ModulesRemoved) != 0 || len(diff.ModulesKilled) != 0 {
		t.Fatalf("module set changed across the run: %s", diff.Format())
	}
	for _, d := range diff.Deltas {
		if strings.HasPrefix(d.Principal, "can[") {
			t.Fatalf("bystander capabilities changed: %s", diff.Format())
		}
		if i := strings.IndexByte(d.Principal, '['); i < 0 || !managed(d.Principal[:i]) {
			t.Fatalf("capability delta outside the managed fleet: %s", diff.Format())
		}
	}
	for _, p := range append(diff.PrincipalsAdded, diff.PrincipalsRemoved...) {
		if strings.HasPrefix(p, "can[") {
			t.Fatalf("bystander principal set changed: %s", diff.Format())
		}
	}
}

// TestRestartPreservesCapabilities pins the no-leak property of one
// supervised restart in isolation: with no traffic between the dumps,
// the killed module's instance principal migrates bit-identically
// (kernel-heap state survives) and its shared principal only swaps
// section-local capabilities one-for-one for the successor's.
func TestRestartPreservesCapabilities(t *testing.T) {
	defer failpoint.DisarmAll()
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "tmpfssim"); err != nil {
		t.Fatal(err)
	}
	v := ld.BC.FS
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/pre"); err != nil {
		t.Fatal(err)
	}
	sup := modules.StartSupervisor(ld, modules.SupervisorConfig{Backoff: time.Millisecond})
	defer sup.Stop()
	sys := ld.BC.K.Sys

	before := coredump.Snapshot(sys, coredump.Options{Reason: "pre-kill", VFS: v})
	killFS(t, ld, th, "tmpfssim", sb)
	if !sup.WaitIdle(5 * time.Second) {
		t.Fatal("no recovery")
	}
	after := coredump.Snapshot(sys, coredump.Options{Reason: "post-recovery", VFS: v})

	diff := coredump.Compare(before, after)
	instance := fmt.Sprintf("tmpfssim[%#x]", uint64(sb))
	if d, ok := diff.DeltaFor(instance); ok {
		t.Fatalf("mount instance capabilities changed across restart:\n%+v", d)
	}
	if d, ok := diff.DeltaFor("tmpfssim[shared]"); ok {
		// The successor's sections live at fresh addresses, so the
		// shared principal trades section-local capabilities
		// one-for-one; any imbalance is a leak (or a loss).
		if len(d.GainedWrites) != len(d.LostWrites) ||
			len(d.GainedCalls) != len(d.LostCalls) ||
			len(d.GainedRefs) != len(d.LostRefs) {
			t.Fatalf("shared capability swap unbalanced:\n%s", diff.Format())
		}
	}
	for _, p := range append(diff.PrincipalsAdded, diff.PrincipalsRemoved...) {
		if !strings.HasPrefix(p, "tmpfssim[") {
			t.Fatalf("foreign principal churn across restart: %v", p)
		}
	}
	// And the state behind those capabilities still works.
	if _, err := v.Lookup(th, sb, "/pre"); err != nil {
		t.Fatalf("pre-kill file lost: %v", err)
	}
	if _, err := v.Create(th, sb, "/post"); err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
}

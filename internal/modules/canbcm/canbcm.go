// Package canbcm is the simulated CAN broadcast-manager module,
// carrying CVE-2010-2959: bcm_rx_setup computes its allocation size as a
// 32-bit product nframes*16, so a large user-supplied nframes overflows
// and the module allocates far less memory than it believes it has. The
// module then indexes the buffer by frame number with no bound tied to
// the actual allocation, writing into whatever slab object sits next —
// in Oberheide's exploit, a shmid_kernel whose ops pointer the attacker
// redirects.
package canbcm

import (
	"encoding/binary"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
)

// Family is AF_CAN with the BCM protocol (simulated as its own family
// for dispatch simplicity).
const Family = 29

// Opcodes in the simulated bcm_msg_head.
const (
	OpRxSetup  = 1 + iota // allocate the frame array
	OpSetFrame            // write one frame by index
	OpGetFrame            // read one frame by index
)

// FrameSize is sizeof(struct can_frame) rounded as in the exploit: the
// allocation is nframes*16.
const FrameSize = 16

// BcmSock is the layout of per-socket state.
const BcmSock = "struct bcm_sock"

// MsgHead is the user-visible message header layout: four u64 fields
// (opcode, nframes, index, value).
const msgHeadSize = 32

// Proto is the loaded can-bcm module.
type Proto struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gSockRegister *core.Gate
	gKmalloc      *core.Gate
	gKfree        *core.Gate
	K             *kernel.Kernel
	St            *netstack.Stack

	sockLay *layout.Struct
}

// Load loads the module and registers the family.
func Load(t *core.Thread, k *kernel.Kernel, st *netstack.Stack) (*Proto, error) {
	p := &Proto{K: k, St: st}
	if _, ok := k.Sys.Layouts.Get(BcmSock); !ok {
		p.sockLay = k.Sys.Layouts.Define(BcmSock,
			layout.F("nframes", 8),
			layout.F("frames", 8),
		)
	} else {
		p.sockLay = k.Sys.Layouts.MustGet(BcmSock)
	}

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "can-bcm",
		Imports:  []string{"sock_register", "kmalloc", "kfree", "printk"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "create", Type: netstack.FamilyCreate, Impl: p.create},
			{Name: "sendmsg", Type: netstack.OpsSendmsg, Impl: p.sendmsg},
			{Name: "recvmsg", Type: netstack.OpsRecvmsg, Impl: p.recvmsg},
			{Name: "release", Type: netstack.OpsRelease, Impl: p.release},
			{Name: "init", Impl: p.init},
		},
	})
	if err != nil {
		return nil, err
	}
	p.M = m
	p.gSockRegister = m.Gate("sock_register")
	p.gKmalloc = m.Gate("kmalloc")
	p.gKfree = m.Gate("kfree")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return p, nil
}

type initError struct{ err error }

func (e *initError) Error() string { return "can-bcm: init failed" }
func (e *initError) Unwrap() error { return e.err }

func (p *Proto) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	ops := mod.Data
	for slot, fn := range map[string]string{
		"sendmsg": "sendmsg", "recvmsg": "recvmsg", "release": "release",
	} {
		if err := t.WriteU64(p.St.ProtoOpsSlot(ops, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	if ret, err := p.gSockRegister.Call2(t, Family, uint64(mod.Funcs["create"].Addr)); err != nil || kernel.IsErr(ret) {
		return 2
	}
	return 0
}

func (p *Proto) skField(sk mem.Addr, f string) mem.Addr {
	return sk + mem.Addr(p.sockLay.Off(f))
}

func (p *Proto) create(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, err := p.gKmalloc.Call1(t, p.sockLay.Size)
	if err != nil || sk == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(p.St.SockField(sock, "ops"), uint64(t.CurrentModule().Data)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(p.St.SockField(sock, "sk"), sk); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// sendmsg parses the bcm_msg_head from the user buffer and dispatches.
func (p *Proto) sendmsg(t *core.Thread, args []uint64) uint64 {
	sock, buf, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
	if n < msgHeadSize {
		return kernel.Err(kernel.EINVAL)
	}
	head, err := t.ReadBytes(buf, msgHeadSize)
	if err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	op := binary.LittleEndian.Uint64(head[0:])
	nframes := binary.LittleEndian.Uint64(head[8:])
	idx := binary.LittleEndian.Uint64(head[16:])
	val := binary.LittleEndian.Uint64(head[24:])

	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	switch op {
	case OpRxSetup:
		return p.rxSetup(t, mem.Addr(sk), nframes)
	case OpSetFrame:
		return p.setFrame(t, mem.Addr(sk), idx, val)
	default:
		return kernel.Err(kernel.EINVAL)
	}
}

// rxSetup is bcm_rx_setup: THE BUG — the allocation size is computed in
// 32 bits, so nframes = 0x10000001 yields 0x10000001*16 = 0x100000010,
// truncated to 0x10 = 16 bytes, while the module records the full
// nframes as its logical array length.
func (p *Proto) rxSetup(t *core.Thread, sk mem.Addr, nframes uint64) uint64 {
	allocSize := uint64(uint32(nframes * FrameSize)) // 32-bit overflow (CVE-2010-2959)
	if allocSize == 0 {
		return kernel.Err(kernel.EINVAL)
	}
	frames, err := p.gKmalloc.Call1(t, allocSize)
	if err != nil || frames == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(p.skField(sk, "frames"), frames); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(p.skField(sk, "nframes"), nframes); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// setFrame writes a frame by index, bounded only by the (overflowed)
// nframes count — so under the stock kernel, writes past the 16-byte
// allocation land in the adjacent slab object.
func (p *Proto) setFrame(t *core.Thread, sk mem.Addr, idx, val uint64) uint64 {
	nframes, _ := t.ReadU64(p.skField(sk, "nframes"))
	if idx >= nframes {
		return kernel.Err(kernel.EINVAL)
	}
	frames, _ := t.ReadU64(p.skField(sk, "frames"))
	if frames == 0 {
		return kernel.Err(kernel.EINVAL)
	}
	dst := mem.Addr(frames) + mem.Addr(idx*FrameSize)
	if err := t.WriteU64(dst, val); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(dst+8, val); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (p *Proto) recvmsg(t *core.Thread, args []uint64) uint64 {
	return 0
}

func (p *Proto) release(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	if sk != 0 {
		frames, _ := t.ReadU64(p.skField(mem.Addr(sk), "frames"))
		if frames != 0 {
			if _, err := p.gKfree.Call1(t, frames); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
		}
		if _, err := p.gKfree.Call1(t, sk); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

// Frames returns the frame-array address of a socket (test
// introspection).
func (p *Proto) Frames(sock mem.Addr) mem.Addr {
	sk, _ := p.K.Sys.AS.ReadU64(p.St.SockField(sock, "sk"))
	frames, _ := p.K.Sys.AS.ReadU64(mem.Addr(sk) + mem.Addr(p.sockLay.Off("frames")))
	return mem.Addr(frames)
}

// MsgHead encodes a bcm_msg_head for sendmsg.
func MsgHead(op, nframes, idx, val uint64) []byte {
	b := make([]byte, msgHeadSize)
	binary.LittleEndian.PutUint64(b[0:], op)
	binary.LittleEndian.PutUint64(b[8:], nframes)
	binary.LittleEndian.PutUint64(b[16:], idx)
	binary.LittleEndian.PutUint64(b[24:], val)
	return b
}

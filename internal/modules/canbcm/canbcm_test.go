package canbcm_test

import (
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/canbcm"
	"lxfi/internal/netstack"
)

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *netstack.Stack, *core.Thread, *canbcm.Proto) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	st := netstack.Init(k)
	th := k.Sys.NewThread("bcm")
	p, err := canbcm.Load(th, k, st)
	if err != nil {
		t.Fatal(err)
	}
	return k, st, th, p
}

func sendHead(t *testing.T, k *kernel.Kernel, st *netstack.Stack, th *core.Thread,
	sock mem.Addr, op, nframes, idx, val uint64) uint64 {
	t.Helper()
	buf := k.Sys.User.Alloc(64, 8)
	if err := k.Sys.AS.Write(buf, canbcm.MsgHead(op, nframes, idx, val)); err != nil {
		t.Fatal(err)
	}
	ret, err := st.Sendmsg(th, sock, buf, 32, 0)
	if err != nil {
		return ^uint64(0)
	}
	return ret
}

func TestNormalRxSetupAndWrite(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, st, th, p := rig(t, mode)
		s, err := st.Socket(th, canbcm.Family)
		if err != nil {
			t.Fatal(err)
		}
		if ret := sendHead(t, k, st, th, s, canbcm.OpRxSetup, 4, 0, 0); kernel.IsErr(ret) {
			t.Fatalf("[%v] rx_setup: %d", mode, int64(ret))
		}
		for i := uint64(0); i < 4; i++ {
			if ret := sendHead(t, k, st, th, s, canbcm.OpSetFrame, 4, i, 0x1000+i); kernel.IsErr(ret) {
				t.Fatalf("[%v] set_frame %d: %d", mode, i, int64(ret))
			}
		}
		frames := p.Frames(s)
		v, _ := k.Sys.AS.ReadU64(frames + 3*canbcm.FrameSize)
		if v != 0x1003 {
			t.Fatalf("[%v] frame 3 = %#x", mode, v)
		}
		if mode == core.Enforce && k.Sys.Mon.LastViolation() != nil {
			t.Fatalf("[%v] violation on legit usage: %v", mode, k.Sys.Mon.LastViolation())
		}
	}
}

func TestIntegerOverflowUndersizesAllocation(t *testing.T) {
	// nframes = 0x10000001 -> 32-bit alloc size 16 bytes.
	k, st, th, p := rig(t, core.Off)
	s, _ := st.Socket(th, canbcm.Family)
	if ret := sendHead(t, k, st, th, s, canbcm.OpRxSetup, 0x10000001, 0, 0); kernel.IsErr(ret) {
		t.Fatalf("rx_setup: %d", int64(ret))
	}
	frames := p.Frames(s)
	size, ok := k.Sys.Slab.ObjectSize(frames)
	if !ok || size != 16 {
		t.Fatalf("allocation size = %d (want truncated 16)", size)
	}
}

func TestOverflowWriteCorruptsNeighbourStock(t *testing.T) {
	k, st, th, p := rig(t, core.Off)
	s, _ := st.Socket(th, canbcm.Family)
	sendHead(t, k, st, th, s, canbcm.OpRxSetup, 0x10000001, 0, 0)
	frames := p.Frames(s)
	// Place a victim object adjacent in the same slab (size class 16).
	victim, err := k.Sys.Slab.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if victim != frames+16 {
		t.Fatalf("victim not adjacent: %#x vs %#x+16", uint64(victim), uint64(frames))
	}
	must(t, k.Sys.AS.WriteU64(victim, 0x1111))
	// Frame index 1 lands exactly on the victim.
	if ret := sendHead(t, k, st, th, s, canbcm.OpSetFrame, 0, 1, 0xBAD); kernel.IsErr(ret) {
		t.Fatalf("set_frame: %d", int64(ret))
	}
	v, _ := k.Sys.AS.ReadU64(victim)
	if v != 0xBAD {
		t.Fatalf("stock kernel should corrupt the neighbour; got %#x", v)
	}
}

func TestOverflowWriteBlockedByLXFI(t *testing.T) {
	k, st, th, p := rig(t, core.Enforce)
	s, _ := st.Socket(th, canbcm.Family)
	sendHead(t, k, st, th, s, canbcm.OpRxSetup, 0x10000001, 0, 0)
	frames := p.Frames(s)
	victim, _ := k.Sys.Slab.Alloc(16)
	must(t, k.Sys.AS.WriteU64(victim, 0x1111))

	// In-bounds frame 0 is fine (the capability covers 16 bytes).
	if ret := sendHead(t, k, st, th, s, canbcm.OpSetFrame, 0, 0, 0x5); kernel.IsErr(ret) {
		t.Fatalf("in-bounds write rejected: %d", int64(ret))
	}
	if v, _ := k.Sys.AS.ReadU64(frames); v != 0x5 {
		t.Fatalf("in-bounds write lost: %#x", v)
	}
	// Out-of-bounds frame 1: blocked, module killed.
	ret := sendHead(t, k, st, th, s, canbcm.OpSetFrame, 0, 1, 0xBAD)
	if !kernel.IsErr(ret) && ret != ^uint64(0) {
		t.Fatalf("overflow write not rejected: %d", int64(ret))
	}
	v, _ := k.Sys.AS.ReadU64(victim)
	if v != 0x1111 {
		t.Fatalf("victim corrupted under LXFI: %#x", v)
	}
	if k.Sys.Mon.LastViolation() == nil {
		t.Fatal("no violation recorded")
	}
	if !p.M.Dead() {
		t.Fatal("module should be killed")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

package minixsim_test

import (
	"bytes"
	"fmt"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/vfs"
)

func boot(t *testing.T, mode core.Mode) (*kernel.Kernel, *blockdev.Layer, *vfs.VFS, *core.Thread) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	bl := blockdev.Init(k)
	v := vfs.Init(k, bl)
	th := k.Sys.NewThread("test")
	if _, err := minixsim.Load(th, k, v); err != nil {
		t.Fatal(err)
	}
	return k, bl, v, th
}

func TestExtentsAreDisjoint(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte{0x11}, mem.PageSize)
	b := bytes.Repeat([]byte{0x22}, mem.PageSize)
	if _, err := v.Create(th, sb, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb, "/a", 0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb, "/b", 0, b); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	v.DropCaches(sb)
	gotA, err := v.Read(th, sb, "/a", 0, mem.PageSize)
	if err != nil || !bytes.Equal(gotA, a) {
		t.Fatalf("a clobbered: %v", err)
	}
	gotB, err := v.Read(th, sb, "/b", 0, mem.PageSize)
	if err != nil || !bytes.Equal(gotB, b) {
		t.Fatalf("b clobbered: %v", err)
	}
}

func TestFileSizeCap(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/big"); err != nil {
		t.Fatal(err)
	}
	// Writing past the per-inode extent must fail up front (s_maxbytes),
	// for partial and full-page writes alike — no dirty page that can
	// never be persisted may enter the cache.
	if _, err := v.Write(th, sb, "/big", minixsim.MaxFilePages*mem.PageSize, []byte{1}); err == nil {
		t.Fatal("partial write past the extent cap succeeded")
	}
	full := make([]byte, mem.PageSize)
	if _, err := v.Write(th, sb, "/big", minixsim.MaxFilePages*mem.PageSize, full); err == nil {
		t.Fatal("full-page write past the extent cap succeeded")
	}
	if v.DirtyCount() != 0 {
		t.Fatalf("rejected writes left %d dirty pages", v.DirtyCount())
	}
	// The mount is not wedged: in-cap traffic still syncs.
	if _, err := v.Write(th, sb, "/big", 0, full); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
}

// TestSlotReuseAndExhaustion: unlinked extent slots are reclaimed (so
// create/unlink churn runs forever), and live files can never alias each
// other's extents — the 1025th live create fails cleanly instead.
func TestSlotReuseAndExhaustion(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Churn well past MaxSlots lifetimes: with slot reuse this cannot
	// exhaust or alias anything.
	for i := 0; i < minixsim.MaxSlots+64; i++ {
		if _, err := v.Create(th, sb, "/churn"); err != nil {
			t.Fatalf("churn create %d: %v", i, err)
		}
		if err := v.Unlink(th, sb, "/churn"); err != nil {
			t.Fatalf("churn unlink %d: %v", i, err)
		}
	}
	// Fill every slot with live files (directories hold no data pages,
	// so the root consumed none).
	made := 0
	for i := 0; i < minixsim.MaxSlots; i++ {
		if _, err := v.Create(th, sb, fmt.Sprintf("/live%04d", i)); err != nil {
			break
		}
		made++
	}
	if made != minixsim.MaxSlots {
		t.Fatalf("made %d live files, want %d", made, minixsim.MaxSlots)
	}
	// One more must fail — not alias a live extent.
	if _, err := v.Create(th, sb, "/overflow"); err == nil {
		t.Fatal("create beyond slot capacity succeeded")
	}
	// Unlinking frees capacity again.
	if err := v.Unlink(th, sb, "/live0000"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/overflow"); err != nil {
		t.Fatalf("create after unlink: %v", err)
	}
}

func TestMountWithoutDiskFailsCleanly(t *testing.T) {
	k, bl, v, th := boot(t, core.Enforce)
	// The namespace is durable now, so a mount must scan the on-disk
	// directory table — a nonexistent disk fails the mount itself, like
	// a real mount(2) on a missing device, instead of limping along
	// until the first writeback.
	if _, err := v.Mount(th, minixsim.FsID, 99); err == nil {
		t.Fatal("mount on a nonexistent disk succeeded")
	}
	// An I/O error is not an isolation failure: no violation, and the
	// module survives to serve a real disk afterwards.
	if len(k.Sys.Mon.Violations()) != 0 {
		t.Fatalf("unexpected violation: %v", k.Sys.Mon.LastViolation())
	}
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatalf("mount on a real disk after the failed one: %v", err)
	}
	if _, err := v.Create(th, sb, "/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb, "/f", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if len(k.Sys.Mon.Violations()) != 0 {
		t.Fatalf("unexpected violation: %v", k.Sys.Mon.LastViolation())
	}
}

// TestStaleExtentNotExposed: extent slots are recycled, so a fresh
// file's partial write (the read-modify-write path) must not pull a
// previous occupant's sectors into the visible part of the file.
func TestStaleExtentNotExposed(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	// Pre-seed the whole disk with a recognizable stale pattern, as if
	// dead files had lived everywhere.
	disk := bl.DiskBytes(1)
	for i := range disk {
		disk[i] = 0xEE
	}
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/fresh"); err != nil {
		t.Fatal(err)
	}
	// A partial write forces the RMW path through readpage.
	if _, err := v.Write(th, sb, "/fresh", 8, []byte{0x42}); err != nil {
		t.Fatal(err)
	}
	got, err := v.Read(th, sb, "/fresh", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := append(make([]byte, 8), 0x42)
	if !bytes.Equal(got, want) {
		t.Fatalf("stale disk bytes leaked into a fresh file: %x", got)
	}
	// Same for the tail of a partially valid page after eviction.
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	v.DropCaches(sb)
	got, err = v.Read(th, sb, "/fresh", 0, 9)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("stale bytes after cold refill: %x, %v", got, err)
	}
}

func TestDataSurvivesOtherMountTraffic(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	bl.AddDisk(2, minixsim.DiskSectors)
	sb1, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb2, err := v.Mount(th, minixsim.FsID, 2)
	if err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte{0x5A}, 512)
	if _, err := v.Create(th, sb1, "/keep"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb1, "/keep", 0, secret); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb1); err != nil {
		t.Fatal(err)
	}
	// Hammer the second mount.
	for i := 0; i < 16; i++ {
		if _, err := v.Create(th, sb2, "/noise"); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Write(th, sb2, "/noise", 0, bytes.Repeat([]byte{0xFF}, mem.PageSize)); err != nil {
			t.Fatal(err)
		}
		if err := v.Sync(th, sb2); err != nil {
			t.Fatal(err)
		}
		if err := v.Unlink(th, sb2, "/noise"); err != nil {
			t.Fatal(err)
		}
	}
	v.DropCaches(sb1)
	got, err := v.Read(th, sb1, "/keep", 0, uint64(len(secret)))
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("mount 1's data corrupted by mount 2 traffic: %v", err)
	}
}

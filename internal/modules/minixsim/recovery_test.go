package minixsim_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/vfs"
)

// --- raw-disk helpers for corruption injection -------------------------

// rawRec reads the raw directory-table record of slot from the disk.
func rawRec(disk []byte, slot uint64) []byte {
	off := (minixsim.DirTabStart + slot) * blockdev.SectorSize
	return disk[off : off+minixsim.RecSize]
}

// injectRec writes a raw record for slot directly to the disk bytes and
// sets the slot's used-slot bitmap bit, simulating a corrupted table
// the next mount has to recover from. The record targets its own slot,
// like any non-hardlinked entry.
func injectRec(disk []byte, slot, parent, mode, size uint64, name string) {
	rec := make([]byte, minixsim.RecSize)
	binary.LittleEndian.PutUint64(rec[0:], 1) // used
	binary.LittleEndian.PutUint64(rec[8:], parent)
	binary.LittleEndian.PutUint64(rec[16:], mode)
	binary.LittleEndian.PutUint64(rec[24:], size)
	binary.LittleEndian.PutUint64(rec[32:], slot) // target
	copy(rec[40:], name)
	copy(rawRec(disk, slot), rec)
	setBit(disk, slot)
}

// setBit marks slot used in the on-disk bitmap.
func setBit(disk []byte, slot uint64) {
	off := minixsim.BitmapStart*blockdev.SectorSize + slot/8
	disk[off] |= 1 << (slot % 8)
}

// slotOf resolves a path's extent slot through its inode.
func slotOf(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr, path string) uint64 {
	t.Helper()
	ino, err := v.Lookup(th, sb, path)
	if err != nil {
		t.Fatalf("lookup %s: %v", path, err)
	}
	slot, _ := v.K.Sys.AS.ReadU64(v.InodeField(ino, "private"))
	return slot
}

// namesOf returns the name set of a directory listing.
func namesOf(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr, dir string) map[string]bool {
	t.Helper()
	ents, err := v.Readdir(th, sb, dir)
	if err != nil {
		t.Fatalf("readdir %s: %v", dir, err)
	}
	out := make(map[string]bool, len(ents))
	for _, e := range ents {
		out[e.Name] = true
	}
	return out
}

// TestRemountNamespaceUnchangedWithBitmap: the used-slot bitmap is pure
// bookkeeping — a remount must recover exactly the namespace (names,
// tree shape, sizes) the previous mount left behind.
func TestRemountNamespaceUnchangedWithBitmap(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Mkdir(th, sb, "/dir"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 3*mem.PageSize)
	for _, p := range []string{"/top", "/dir/nested", "/dir/other"} {
		if _, err := v.Create(th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Write(th, sb, p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	// An unlinked file must stay gone after remount (its bit clears).
	if _, err := v.Create(th, sb, "/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := v.Unlink(th, sb, "/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	sb, err = v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	root := namesOf(t, v, th, sb, "/")
	if !root["top"] || !root["dir"] || root["doomed"] || len(root) != 2 {
		t.Fatalf("recovered root = %v", root)
	}
	sub := namesOf(t, v, th, sb, "/dir")
	if !sub["nested"] || !sub["other"] || len(sub) != 2 {
		t.Fatalf("recovered /dir = %v", sub)
	}
	for _, p := range []string{"/top", "/dir/nested", "/dir/other"} {
		size, _, err := v.Stat(th, sb, p)
		if err != nil || size != uint64(len(payload)) {
			t.Fatalf("%s: size %d after remount (err %v), want %d", p, size, err, len(payload))
		}
		got, err := v.Read(th, sb, p, 0, uint64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("%s: data did not survive remount: %v", p, err)
		}
	}
}

// TestMountRecoveryIsOLive: with the bitmap, a remount reads the bitmap
// sector plus one record per live file — nowhere near the MaxSlots
// full-table scan the pre-bitmap code paid.
func TestMountRecoveryIsOLive(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	const live = 3
	for i := 0; i < live; i++ {
		if _, err := v.Create(th, sb, fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	readsBefore, _ := bl.SectorIO()
	if _, err := v.Mount(th, minixsim.FsID, 1); err != nil {
		t.Fatal(err)
	}
	readsAfter, _ := bl.SectorIO()
	reads := readsAfter - readsBefore
	// 1 bitmap read + one record read per live file; leave headroom for
	// a few incidental reads but stay an order of magnitude under the
	// 1024-sector full scan.
	if reads < live+1 {
		t.Fatalf("mount read only %d sectors; bitmap or records not consulted", reads)
	}
	if reads > live+8 {
		t.Fatalf("mount read %d sectors for %d live records; recovery is not O(live)", reads, live)
	}
}

// TestRemountDropsOrphanRecords: a record whose parent chain is broken
// (its parent slot holds no live directory) must not resurface after a
// cold-cache remount, and its slot must be reusable.
func TestRemountDropsOrphanRecords(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/real"); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	disk := bl.DiskBytes(1)
	// Orphan 1: parent slot 500 holds no record at all.
	injectRec(disk, 3, 500, vfs.ModeFile, 0, "ghost")
	// Orphan 2: a two-record cycle (each is the other's parent).
	injectRec(disk, 10, 11, vfs.ModeDir, 0, "loop-a")
	injectRec(disk, 11, 10, vfs.ModeDir, 0, "loop-b")
	// Stale bit: marked used, but the record was never committed.
	setBit(disk, 20)

	sb, err = v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := namesOf(t, v, th, sb, "/")
	if !names["real"] || len(names) != 1 {
		t.Fatalf("recovered root after orphan injection = %v, want exactly {real}", names)
	}
	for _, ghost := range []string{"/ghost", "/loop-a", "/loop-b"} {
		if _, err := v.Lookup(th, sb, ghost); err == nil {
			t.Fatalf("orphan %s resurrected by recovery", ghost)
		}
	}
}

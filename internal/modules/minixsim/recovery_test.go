package minixsim_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/vfs"
)

// --- raw-disk helpers for corruption injection -------------------------

// rawRec reads the raw directory-table record of slot from the disk.
func rawRec(disk []byte, slot uint64) []byte {
	off := (minixsim.DirTabStart + slot) * blockdev.SectorSize
	return disk[off : off+minixsim.RecSize]
}

// injectRec writes a raw record for slot directly to the disk bytes and
// sets the slot's used-slot bitmap bit, simulating a crashed or
// corrupted table the next mount has to recover from.
func injectRec(disk []byte, slot, parent, mode, size uint64, name string) {
	rec := make([]byte, minixsim.RecSize)
	binary.LittleEndian.PutUint64(rec[0:], 1) // used
	binary.LittleEndian.PutUint64(rec[8:], parent)
	binary.LittleEndian.PutUint64(rec[16:], mode)
	binary.LittleEndian.PutUint64(rec[24:], size)
	copy(rec[32:], name)
	copy(rawRec(disk, slot), rec)
	setBit(disk, slot)
}

// setBit marks slot used in the on-disk bitmap.
func setBit(disk []byte, slot uint64) {
	off := minixsim.BitmapStart*blockdev.SectorSize + slot/8
	disk[off] |= 1 << (slot % 8)
}

// slotOf resolves a path's extent slot through its inode.
func slotOf(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr, path string) uint64 {
	t.Helper()
	ino, err := v.Lookup(th, sb, path)
	if err != nil {
		t.Fatalf("lookup %s: %v", path, err)
	}
	slot, _ := v.K.Sys.AS.ReadU64(v.InodeField(ino, "private"))
	return slot
}

// namesOf returns the name set of a directory listing.
func namesOf(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr, dir string) map[string]bool {
	t.Helper()
	ents, err := v.Readdir(th, sb, dir)
	if err != nil {
		t.Fatalf("readdir %s: %v", dir, err)
	}
	out := make(map[string]bool, len(ents))
	for _, e := range ents {
		out[e.Name] = true
	}
	return out
}

// TestRemountNamespaceUnchangedWithBitmap: the used-slot bitmap is pure
// bookkeeping — a remount must recover exactly the namespace (names,
// tree shape, sizes) the previous mount left behind.
func TestRemountNamespaceUnchangedWithBitmap(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Mkdir(th, sb, "/dir"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5a}, 3*mem.PageSize)
	for _, p := range []string{"/top", "/dir/nested", "/dir/other"} {
		if _, err := v.Create(th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Write(th, sb, p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	// An unlinked file must stay gone after remount (its bit clears).
	if _, err := v.Create(th, sb, "/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := v.Unlink(th, sb, "/doomed"); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	sb, err = v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	root := namesOf(t, v, th, sb, "/")
	if !root["top"] || !root["dir"] || root["doomed"] || len(root) != 2 {
		t.Fatalf("recovered root = %v", root)
	}
	sub := namesOf(t, v, th, sb, "/dir")
	if !sub["nested"] || !sub["other"] || len(sub) != 2 {
		t.Fatalf("recovered /dir = %v", sub)
	}
	for _, p := range []string{"/top", "/dir/nested", "/dir/other"} {
		size, _, err := v.Stat(th, sb, p)
		if err != nil || size != uint64(len(payload)) {
			t.Fatalf("%s: size %d after remount (err %v), want %d", p, size, err, len(payload))
		}
		got, err := v.Read(th, sb, p, 0, uint64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("%s: data did not survive remount: %v", p, err)
		}
	}
}

// TestMountRecoveryIsOLive: with the bitmap, a remount reads the bitmap
// sector plus one record per live file — nowhere near the MaxSlots
// full-table scan the pre-bitmap code paid.
func TestMountRecoveryIsOLive(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	const live = 3
	for i := 0; i < live; i++ {
		if _, err := v.Create(th, sb, fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	readsBefore, _ := bl.SectorIO()
	if _, err := v.Mount(th, minixsim.FsID, 1); err != nil {
		t.Fatal(err)
	}
	readsAfter, _ := bl.SectorIO()
	reads := readsAfter - readsBefore
	// 1 bitmap read + one record read per live file; leave headroom for
	// a few incidental reads but stay an order of magnitude under the
	// 1024-sector full scan.
	if reads < live+1 {
		t.Fatalf("mount read only %d sectors; bitmap or records not consulted", reads)
	}
	if reads > live+8 {
		t.Fatalf("mount read %d sectors for %d live records; recovery is not O(live)", reads, live)
	}
}

// TestRemountDedupesDuplicateRecords: a crash between a rename's record
// write and the replaced target's record kill leaves two live records
// with the same (parent, name). Cold-cache recovery must keep exactly
// one (the lowest slot) and treat the loser as a reusable orphan.
func TestRemountDedupesDuplicateRecords(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/victim"); err != nil {
		t.Fatal(err)
	}
	seed := []byte("the canonical copy")
	if _, err := v.Write(th, sb, "/victim", 0, seed); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	slot := slotOf(t, v, th, sb, "/victim")
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	// Inject the duplicate: a second live record, same parent and name,
	// in a higher never-used slot — exactly what the torn rename leaves.
	disk := bl.DiskBytes(1)
	dupSlot := slot + 7
	copy(rawRec(disk, dupSlot), rawRec(disk, slot))
	setBit(disk, dupSlot)

	sb, err = v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := namesOf(t, v, th, sb, "/")
	if !names["victim"] || len(names) != 1 {
		t.Fatalf("recovered root after dup injection = %v, want exactly {victim}", names)
	}
	// The lowest slot must have won: the survivor still reads the
	// canonical data from the original extent.
	if got := slotOf(t, v, th, sb, "/victim"); got != slot {
		t.Fatalf("survivor sits in slot %d, want lowest slot %d", got, slot)
	}
	data, err := v.Read(th, sb, "/victim", 0, uint64(len(seed)))
	if err != nil || !bytes.Equal(data, seed) {
		t.Fatalf("survivor data = %q, %v", data, err)
	}
	// The duplicate's slot must be reusable: creating new files until
	// the allocator hands the slot out again must not resurrect the
	// ghost or collide.
	reused := false
	for i := 0; i < 16 && !reused; i++ {
		p := fmt.Sprintf("/fill%d", i)
		if _, err := v.Create(th, sb, p); err != nil {
			t.Fatal(err)
		}
		reused = slotOf(t, v, th, sb, p) == dupSlot
	}
	if !reused {
		t.Fatalf("duplicate slot %d never handed out again", dupSlot)
	}
}

// TestRemountDropsOrphanRecords: a record whose parent chain is broken
// (its parent slot holds no live directory) must not resurface after a
// cold-cache remount, and its slot must be reusable.
func TestRemountDropsOrphanRecords(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/real"); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	disk := bl.DiskBytes(1)
	// Orphan 1: parent slot 500 holds no record at all.
	injectRec(disk, 3, 500, vfs.ModeFile, 0, "ghost")
	// Orphan 2: a two-record cycle (each is the other's parent).
	injectRec(disk, 10, 11, vfs.ModeDir, 0, "loop-a")
	injectRec(disk, 11, 10, vfs.ModeDir, 0, "loop-b")
	// Stale bit: marked used, but the record was never committed.
	setBit(disk, 20)

	sb, err = v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := namesOf(t, v, th, sb, "/")
	if !names["real"] || len(names) != 1 {
		t.Fatalf("recovered root after orphan injection = %v, want exactly {real}", names)
	}
	for _, ghost := range []string{"/ghost", "/loop-a", "/loop-b"} {
		if _, err := v.Lookup(th, sb, ghost); err == nil {
			t.Fatalf("orphan %s resurrected by recovery", ghost)
		}
	}
}

package minixsim_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/vfs"
)

// The crash-recovery battery: every workload op runs once under sector
// capture, then the disk is rebuilt at every possible power-cut point —
// after each individual sector write the op made, journal sectors
// included — and remounted on a cold kernel. The recovered namespace
// must be exactly the pre-op or exactly the post-op state, never a
// duplicated, half-moved, or half-killed hybrid.

// fsState is an observable namespace snapshot: path → "" for a
// directory, file content otherwise. Paths absent from the map must not
// exist.
type fsState map[string]string

// probeState reads the current state of every path in the probe union.
func probeState(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr, probes []string) fsState {
	t.Helper()
	got := fsState{}
	for _, p := range probes {
		ino, err := v.Lookup(th, sb, p)
		if err != nil {
			continue
		}
		mode, _ := v.K.Sys.AS.ReadU64(v.InodeField(ino, "mode"))
		if mode == vfs.ModeDir {
			got[p] = ""
			continue
		}
		size, _, err := v.Stat(th, sb, p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		data, err := v.Read(th, sb, p, 0, size)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		got[p] = string(data)
	}
	return got
}

func sameState(a, b fsState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// crashScenario is one workload op of the power-cut matrix.
type crashScenario struct {
	name   string
	setup  func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr)
	op     func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error
	probes []string
}

func mkfile(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr, path, content string) {
	t.Helper()
	if _, err := v.Create(th, sb, path); err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if content != "" {
		if _, err := v.Write(th, sb, path, 0, []byte(content)); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
}

func crashScenarios() []crashScenario {
	return []crashScenario{
		{
			name: "create",
			setup: func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr) {
				mkfile(t, v, th, sb, "/keep", "bystander")
			},
			op: func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error {
				_, err := v.Create(th, sb, "/new")
				return err
			},
			probes: []string{"/keep", "/new"},
		},
		{
			name: "rename",
			setup: func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr) {
				if _, err := v.Mkdir(th, sb, "/d"); err != nil {
					t.Fatal(err)
				}
				mkfile(t, v, th, sb, "/a", "moving payload")
			},
			op: func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error {
				return v.Rename(th, sb, "/a", sb, "/d/b")
			},
			probes: []string{"/d", "/a", "/d/b"},
		},
		{
			name: "rename-replace",
			setup: func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr) {
				mkfile(t, v, th, sb, "/a", "the winner")
				mkfile(t, v, th, sb, "/b", "the victim")
			},
			op: func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error {
				return v.Rename(th, sb, "/a", sb, "/b")
			},
			probes: []string{"/a", "/b"},
		},
		{
			name: "unlink",
			setup: func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr) {
				mkfile(t, v, th, sb, "/doomed", "short-lived")
				mkfile(t, v, th, sb, "/keep", "bystander")
			},
			op: func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error {
				return v.Unlink(th, sb, "/doomed")
			},
			probes: []string{"/doomed", "/keep"},
		},
		{
			name: "exchange",
			setup: func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr) {
				if _, err := v.Mkdir(th, sb, "/d"); err != nil {
					t.Fatal(err)
				}
				mkfile(t, v, th, sb, "/x", "first body")
				mkfile(t, v, th, sb, "/d/y", "second body")
			},
			op: func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error {
				return v.RenameFlags(th, sb, "/x", sb, "/d/y", vfs.RenameExchange)
			},
			probes: []string{"/d", "/x", "/d/y"},
		},
		{
			name: "link",
			setup: func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr) {
				mkfile(t, v, th, sb, "/orig", "shared bytes")
			},
			op: func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error {
				return v.Link(th, sb, "/orig", "/alias")
			},
			probes: []string{"/orig", "/alias"},
		},
		{
			name: "unlink-hardlink",
			setup: func(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr) {
				mkfile(t, v, th, sb, "/orig", "shared bytes")
				if err := v.Link(th, sb, "/orig", "/alias"); err != nil {
					t.Fatal(err)
				}
			},
			op: func(v *vfs.VFS, th *core.Thread, sb mem.Addr) error {
				return v.Unlink(th, sb, "/alias")
			},
			probes: []string{"/orig", "/alias"},
		},
	}
}

// TestPowerCutEveryJournalWrite is the corruption-injection matrix: for
// each scenario, capture the op's sector writes, then for every prefix
// of that write log rebuild the disk as a power cut at that point would
// leave it and remount cold. Recovery must land on exactly pre-op or
// exactly post-op — and on the full log, exactly post-op.
func TestPowerCutEveryJournalWrite(t *testing.T) {
	for _, sc := range crashScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			_, bl, v, th := boot(t, core.Enforce)
			bl.AddDisk(1, minixsim.DiskSectors)
			sb, err := v.Mount(th, minixsim.FsID, 1)
			if err != nil {
				t.Fatal(err)
			}
			sc.setup(t, v, th, sb)
			if err := v.Sync(th, sb); err != nil {
				t.Fatal(err)
			}
			pre := probeState(t, v, th, sb, sc.probes)

			bl.StartCapture(1)
			if err := sc.op(v, th, sb); err != nil {
				t.Fatalf("op: %v", err)
			}
			initial, log := bl.StopCapture(1)
			if len(log) == 0 {
				t.Fatal("op made no sector writes; nothing to cut")
			}
			post := probeState(t, v, th, sb, sc.probes)
			if sameState(pre, post) {
				t.Fatal("scenario is a no-op; pre and post are indistinguishable")
			}

			for n := 0; n <= len(log); n++ {
				img := blockdev.ReplayPrefix(initial, log, n)
				_, bl2, v2, th2 := boot(t, core.Enforce)
				bl2.AddDisk(1, minixsim.DiskSectors)
				copy(bl2.DiskBytes(1), img)
				sb2, err := v2.Mount(th2, minixsim.FsID, 1)
				if err != nil {
					t.Fatalf("cut after %d/%d writes: remount failed: %v", n, len(log), err)
				}
				got := probeState(t, v2, th2, sb2, sc.probes)
				switch {
				case sameState(got, pre), sameState(got, post):
				default:
					t.Fatalf("cut after %d/%d writes: recovered %v, want pre %v or post %v",
						n, len(log), got, pre, post)
				}
				if n == len(log) && !sameState(got, post) {
					t.Fatalf("full log replay recovered %v, want post %v", got, post)
				}
			}
		})
	}
}

// TestPowerCutNeverDuplicatesName drills into the bug this journal
// retires: a rename over an existing target must never leave two live
// records under one (parent, name) — at any cut point, looking up the
// name and listing the directory must agree on exactly one entry.
func TestPowerCutNeverDuplicatesName(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	mkfile(t, v, th, sb, "/src", "src data")
	mkfile(t, v, th, sb, "/dst", "dst data")
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	bl.StartCapture(1)
	if err := v.Rename(th, sb, "/src", sb, "/dst"); err != nil {
		t.Fatal(err)
	}
	initial, log := bl.StopCapture(1)

	for n := 0; n <= len(log); n++ {
		img := blockdev.ReplayPrefix(initial, log, n)
		_, bl2, v2, th2 := boot(t, core.Enforce)
		bl2.AddDisk(1, minixsim.DiskSectors)
		copy(bl2.DiskBytes(1), img)
		sb2, err := v2.Mount(th2, minixsim.FsID, 1)
		if err != nil {
			t.Fatalf("cut after %d writes: %v", n, err)
		}
		ents, err := v2.Readdir(th2, sb2, "/")
		if err != nil {
			t.Fatal(err)
		}
		count := map[string]int{}
		for _, e := range ents {
			count[e.Name]++
		}
		if count["dst"] != 1 {
			t.Fatalf("cut after %d/%d writes: %d entries named dst", n, len(log), count["dst"])
		}
		if count["src"]+count["dst"] > 2 {
			t.Fatalf("cut after %d/%d writes: duplicated namespace %v", n, len(log), count)
		}
	}
}

// TestHardlinksSurviveRemount: nlink bookkeeping is recovered from the
// table (records grouped by target extent), and data written through
// one name is visible through the other after a cold remount.
func TestHardlinksSurviveRemount(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	mkfile(t, v, th, sb, "/orig", "linked payload")
	if err := v.Link(th, sb, "/orig", "/alias"); err != nil {
		t.Fatal(err)
	}
	if _, nlink, err := v.Stat(th, sb, "/orig"); err != nil || nlink != 2 {
		t.Fatalf("nlink = %d (%v), want 2", nlink, err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}

	sb, err = v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/orig", "/alias"} {
		got, err := v.Read(th, sb, p, 0, uint64(len("linked payload")))
		if err != nil || string(got) != "linked payload" {
			t.Fatalf("%s after remount: %q, %v", p, got, err)
		}
	}
	inoA, _ := v.Lookup(th, sb, "/orig")
	inoB, _ := v.Lookup(th, sb, "/alias")
	if inoA != inoB {
		t.Fatalf("hardlinks recovered as distinct inodes %#x / %#x", inoA, inoB)
	}
	if _, nlink, err := v.Stat(th, sb, "/orig"); err != nil || nlink != 2 {
		t.Fatalf("recovered nlink = %d (%v), want 2", nlink, err)
	}
	// Dropping one link keeps the data reachable through the other.
	if err := v.Unlink(th, sb, "/alias"); err != nil {
		t.Fatal(err)
	}
	if _, nlink, err := v.Stat(th, sb, "/orig"); err != nil || nlink != 1 {
		t.Fatalf("nlink after unlink = %d (%v), want 1", nlink, err)
	}
	got, err := v.Read(th, sb, "/orig", 0, uint64(len("linked payload")))
	if err != nil || string(got) != "linked payload" {
		t.Fatalf("orig after alias unlink: %q, %v", got, err)
	}
}

// TestRenameFlagsSemantics pins NOREPLACE and EXCHANGE through the VFS
// against the journaled module.
func TestRenameFlagsSemantics(t *testing.T) {
	_, bl, v, th := boot(t, core.Enforce)
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	mkfile(t, v, th, sb, "/a", "a body")
	mkfile(t, v, th, sb, "/b", "b body")
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}

	// NOREPLACE refuses to clobber an existing target.
	if err := v.RenameFlags(th, sb, "/a", sb, "/b", vfs.RenameNoReplace); err == nil {
		t.Fatal("RENAME_NOREPLACE over an existing target succeeded")
	}
	// Both survive untouched.
	for p, want := range map[string]string{"/a": "a body", "/b": "b body"} {
		got, err := v.Read(th, sb, p, 0, uint64(len(want)))
		if err != nil || string(got) != want {
			t.Fatalf("%s after refused rename: %q, %v", p, got, err)
		}
	}

	// EXCHANGE swaps the two names atomically — and survives a remount.
	if err := v.RenameFlags(th, sb, "/a", sb, "/b", vfs.RenameExchange); err != nil {
		t.Fatalf("exchange: %v", err)
	}
	for p, want := range map[string]string{"/a": "b body", "/b": "a body"} {
		got, err := v.Read(th, sb, p, 0, uint64(len(want)))
		if err != nil || string(got) != want {
			t.Fatalf("%s after exchange: %q, %v", p, got, err)
		}
	}
	if err := v.Unmount(th, sb); err != nil {
		t.Fatal(err)
	}
	sb, err = v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range map[string]string{"/a": "b body", "/b": "a body"} {
		got, err := v.Read(th, sb, p, 0, uint64(len(want)))
		if err != nil || string(got) != want {
			t.Fatalf("%s after exchange+remount: %q, %v", p, got, err)
		}
	}
	// EXCHANGE with a missing counterpart fails cleanly.
	if err := v.RenameFlags(th, sb, "/a", sb, "/missing", vfs.RenameExchange); err == nil {
		t.Fatal("exchange with a nonexistent target succeeded")
	}
}

// TestConcurrentJournaledRenamesVsFlusher is the -race battery case:
// worker goroutines churn journaled renames (including rename-replace,
// which commits multi-record transactions) while the background
// writeback flusher persists dirty pages through the same mount lock
// and journal buffers.
func TestConcurrentJournaledRenamesVsFlusher(t *testing.T) {
	k, bl, v, th := boot(t, core.Enforce)
	defer k.Shutdown()
	bl.AddDisk(1, minixsim.DiskSectors)
	sb, err := v.Mount(th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	v.EnableWriteback(200*time.Microsecond, 0.25)
	defer v.DisableWriteback()

	const workers = 4
	const iters = 20
	errs := make([]error, workers)
	var handles []*core.ThreadHandle
	for w := 0; w < workers; w++ {
		w := w
		handles = append(handles, k.Sys.Spawn(fmt.Sprintf("jrename-%d", w), func(wt *core.Thread) {
			payload := bytes.Repeat([]byte{byte(0x30 + w)}, 600)
			for n := 0; n < iters; n++ {
				a := fmt.Sprintf("/w%d_a%03d", w, n)
				b := fmt.Sprintf("/w%d_b%03d", w, n)
				if _, err := v.Create(wt, sb, a); err != nil {
					errs[w] = fmt.Errorf("create %s: %w", a, err)
					return
				}
				if _, err := v.Write(wt, sb, a, 0, payload); err != nil {
					errs[w] = fmt.Errorf("write %s: %w", a, err)
					return
				}
				if _, err := v.Create(wt, sb, b); err != nil {
					errs[w] = fmt.Errorf("create %s: %w", b, err)
					return
				}
				// Rename over the existing target: a two-record journal
				// transaction racing the flusher's record size folds.
				if err := v.Rename(wt, sb, a, sb, b); err != nil {
					errs[w] = fmt.Errorf("rename %s -> %s: %w", a, b, err)
					return
				}
				got, err := v.Read(wt, sb, b, 0, uint64(len(payload)))
				if err != nil || !bytes.Equal(got, payload) {
					errs[w] = fmt.Errorf("read %s: %v (corrupt=%v)", b, err, err == nil)
					return
				}
				if err := v.Unlink(wt, sb, b); err != nil {
					errs[w] = fmt.Errorf("unlink %s: %w", b, err)
					return
				}
			}
		}))
	}
	for _, h := range handles {
		h.Join()
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if n := len(k.Sys.Mon.Violations()); n != 0 {
		t.Fatalf("%d violations under concurrent journaled renames: %v", n, k.Sys.Mon.LastViolation())
	}
	// The namespace drained: journal bookkeeping survived the churn.
	ents, err := v.Readdir(th, sb, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("namespace not drained: %v", ents)
	}
}

package minixsim

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// Module returns the loaded core module, satisfying modules.Instance.
func (f *FS) Module() *core.Module { return f.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "minixsim",
		Requires: []string{modules.SubVFS},
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			return Load(t, bc.K, bc.FS)
		},
		// Unregistering frees the fsid so the successor generation's
		// register_filesystem does not hit the duplicate EBUSY check.
		Unload: func(t *core.Thread, bc *modules.BootContext, inst modules.Instance) error {
			bc.FS.Unregister("minixsim")
			return nil
		},
	})
}

// Package minixsim is a simulated minix-style block-backed filesystem
// module: file data is persisted to a RAM disk of the blockdev substrate
// in fixed per-inode extents. readpage pulls sectors into the page cache
// with dm_read_sectors (which checks WRITE ownership of the destination
// page — held precisely while the VFS has transferred it), and writepage
// persists clean pages through pc_writeback, proving ownership with the
// REF(struct page) capability the writepage contract hands it.
//
// The namespace is durable too: every extent slot has a one-sector
// directory-table record after the data region (name, parent slot, mode,
// size), written through dm_write_sectors from a module-owned record
// buffer. mount scans the table and rebuilds the full directory tree, so
// a remount recovers everything from the disk alone — the in-memory
// dirent list is just the mounted-state cache of the table.
//
// Like tmpfssim, the module ships a deliberate compromise vector: the
// CmdTamper ioctl arms a corrupted writepage that scribbles on the page
// it is asked to persist. writepage only ever receives a REF capability,
// so under LXFI the scribble is a violation; on the stock kernel the
// tampered bytes reach the disk — and because LRU eviction of a dirty
// page forces writepage, an attacker can trigger the corruption with
// nothing but memory pressure.
package minixsim

import (
	"bytes"
	"fmt"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/vfs"
)

// FsID is the filesystem id minixsim registers.
const FsID = 2

// CmdTamper arms the compromised writepage: every page persisted from
// then on has its first 8 bytes overwritten with TamperValue first.
const CmdTamper = 0x7101

// CmdPokeDisk is a second compromise vector: write one record-sized
// burst of module memory to sector 0 of the device given in arg. Aimed
// at a foreign device it is a cross-principal disk write —
// dm_write_sectors' REF(block device) check stops it under LXFI.
const CmdPokeDisk = 0x7102

// TamperValue is the marker the corrupted writepage plants.
const TamperValue = 0x4242424242424242

// On-disk geometry: every inode owns a fixed extent of MaxFilePages
// pages; extent slots are handed out round-robin per mount. After the
// data extents sits the directory table: one sector-sized record per
// slot, so the namespace survives a remount. After the table sits the
// used-slot bitmap: one bit per slot, kept in sync by every record
// write, so mount-time recovery reads only the records the bitmap marks
// live — O(live records) instead of a MaxSlots scan.
const (
	SectorsPerPage = mem.PageSize / blockdev.SectorSize
	MaxFilePages   = 4
	SectorsPerFile = MaxFilePages * SectorsPerPage
	MaxSlots       = 1024
	// DataSectors is the extent region; the directory table follows it.
	DataSectors   = MaxSlots * SectorsPerFile
	DirTabStart   = DataSectors
	DirTabSectors = MaxSlots
	// BitmapStart is the used-slot bitmap sector: MaxSlots bits (128
	// bytes), well inside one sector.
	BitmapStart   = DirTabStart + DirTabSectors
	BitmapSectors = 1
	// DiskSectors is the disk size a mount expects.
	DiskSectors = DataSectors + DirTabSectors + BitmapSectors
	// RecSize is the size of one directory-table record (one sector, so
	// a record is always sector-addressable).
	RecSize = blockdev.SectorSize
	// RootSlot is the parent value of records living directly under the
	// mount root (the root inode itself has no extent slot).
	RootSlot = MaxSlots
)

// Directory-table record field offsets.
const (
	recUsed   = 0  // u64: 1 = live
	recParent = 8  // u64: parent's extent slot, RootSlot for the root
	recMode   = 16 // u64: vfs.ModeFile / vfs.ModeDir
	recSize   = 24 // u64: logical file size in bytes
	recName   = 32 // NUL-terminated, at most vfs.NameMax bytes + NUL
)

// Layout names.
const (
	Dirent = "struct minix_dirent"
	SbInfo = "struct minix_sb_info"
)

// FS is the loaded minixsim module.
type FS struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gRegisterFilesystem *core.Gate
	gIget               *core.Gate
	gIput               *core.Gate
	gKmalloc            *core.Gate
	gKfree              *core.Gate
	gDmReadSectors      *core.Gate
	gDmWriteSectors     *core.Gate
	gPcWriteback        *core.Gate
	K                   *kernel.Kernel
	V                   *vfs.VFS

	deLay   *layout.Struct
	privLay *layout.Struct
}

// Load loads the module and runs its init function. The kernel must
// have both the vfs and blockdev substrates initialized.
func Load(t *core.Thread, k *kernel.Kernel, v *vfs.VFS) (*FS, error) {
	fs := &FS{K: k, V: v}
	fs.deLay = defineOnce(k, Dirent,
		layout.F("next", 8),
		layout.F("dir", 8),
		layout.F("inode", 8),
		layout.F("recsize", 8), // size last persisted to the on-disk record
		layout.F("name", vfs.NameMax+1),
	)
	fs.privLay = defineOnce(k, SbInfo,
		layout.F("head", 8),
		layout.F("root", 8),
		layout.F("nextslot", 8),
		layout.F("freestack", 8), // array of reusable extent slots
		layout.F("freecount", 8),
		layout.F("recbuf", 8), // module-owned directory-record buffer
		layout.F("bmbuf", 8),  // module-owned used-slot bitmap buffer
		layout.F("tamper", 8), // nonzero once CmdTamper armed the compromise
	)

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name: "minixsim",
		Imports: []string{"register_filesystem", "iget", "iput", "kmalloc", "kfree",
			"dm_read_sectors", "dm_write_sectors", "pc_writeback", "printk"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "mount", Type: vfs.FsMount, Impl: fs.mount},
			{Name: "kill_sb", Type: vfs.FsKillSB, Impl: fs.killSB},
			{Name: "create", Type: vfs.FsCreate, Impl: fs.createFn},
			{Name: "lookup", Type: vfs.FsLookup, Impl: fs.lookup},
			{Name: "unlink", Type: vfs.FsUnlink, Impl: fs.unlink},
			{Name: "readdir", Type: vfs.FsReaddir, Impl: fs.readdir},
			{Name: "rename", Type: vfs.FsRename, Impl: fs.rename},
			{Name: "readpage", Type: vfs.FsReadPage, Impl: fs.readpage},
			{Name: "writepage", Type: vfs.FsWritePage, Impl: fs.writepage},
			{Name: "ioctl", Type: vfs.FsIoctl, Impl: fs.ioctl},
			{Name: "init", Impl: fs.init},
		},
	})
	if err != nil {
		return nil, err
	}
	fs.M = m
	fs.gRegisterFilesystem = m.Gate("register_filesystem")
	fs.gIget = m.Gate("iget")
	fs.gIput = m.Gate("iput")
	fs.gKmalloc = m.Gate("kmalloc")
	fs.gKfree = m.Gate("kfree")
	fs.gDmReadSectors = m.Gate("dm_read_sectors")
	fs.gDmWriteSectors = m.Gate("dm_write_sectors")
	fs.gPcWriteback = m.Gate("pc_writeback")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return fs, nil
}

func defineOnce(k *kernel.Kernel, name string, fields ...layout.Field) *layout.Struct {
	if s, ok := k.Sys.Layouts.Get(name); ok {
		return s
	}
	return k.Sys.Layouts.Define(name, fields...)
}

type initError struct{ err error }

func (e *initError) Error() string { return "minixsim: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's fs_operations table address.
func (fs *FS) Ops() mem.Addr { return fs.M.Data }

func (fs *FS) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for _, slot := range []string{"mount", "kill_sb", "create", "lookup", "unlink", "readdir", "rename", "readpage", "writepage", "ioctl"} {
		if err := t.WriteU64(fs.V.OpsSlot(fs.Ops(), slot), uint64(mod.Funcs[slot].Addr)); err != nil {
			return 1
		}
	}
	if ret, err := fs.gRegisterFilesystem.Call2(t, FsID, uint64(fs.Ops())); err != nil || kernel.IsErr(ret) {
		return 2
	}
	return 0
}

func (fs *FS) deField(de mem.Addr, f string) mem.Addr { return de + mem.Addr(fs.deLay.Off(f)) }
func (fs *FS) pvField(pv mem.Addr, f string) mem.Addr { return pv + mem.Addr(fs.privLay.Off(f)) }
func (fs *FS) priv(t *core.Thread, sb mem.Addr) mem.Addr {
	p, _ := t.ReadU64(fs.V.SBField(sb, "private"))
	return mem.Addr(p)
}

// parentSlot maps a directory inode to the slot value stored in a
// directory-table record: the directory's own extent slot, or RootSlot
// when the directory is the mount root.
func (fs *FS) parentSlot(t *core.Thread, priv mem.Addr, dir uint64) uint64 {
	root, _ := t.ReadU64(fs.pvField(priv, "root"))
	if dir == root {
		return RootSlot
	}
	slot, _ := t.ReadU64(fs.V.InodeField(mem.Addr(dir), "private"))
	return slot
}

// setUsedBit flips the slot's bit in the module's bitmap buffer and, if
// it changed, persists the bitmap sector. Steady-state record rewrites
// (size folds, renames) leave the bit untouched and skip the extra
// sector write.
func (fs *FS) setUsedBit(t *core.Thread, sb, priv mem.Addr, slot, used uint64) bool {
	buf, _ := t.ReadU64(fs.pvField(priv, "bmbuf"))
	bb := mem.Addr(buf) + mem.Addr(slot/8)
	cur, err := t.ReadU8(bb)
	if err != nil {
		return false
	}
	bit := uint8(1) << (slot % 8)
	next := cur &^ bit
	if used != 0 {
		next = cur | bit
	}
	if next == cur {
		return true
	}
	if t.WriteU8(bb, next) != nil {
		return false
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gDmWriteSectors.Call4(t, dev, BitmapStart, buf, blockdev.SectorSize)
	return err == nil && !kernel.IsErr(ret)
}

// writeRec persists one directory-table record from the mount's own
// record buffer through dm_write_sectors (which checks the module owns
// the buffer it is persisting), keeping the used-slot bitmap in sync.
// Ordering makes the record the commit point: a live bit is set before
// its record is written (a crash in between leaves a bit whose dead
// record mount-time recovery skips and frees), and cleared only after
// the record is killed.
func (fs *FS) writeRec(t *core.Thread, sb, priv mem.Addr, slot, used, parent, mode, size uint64, name []byte) bool {
	buf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
	rb := mem.Addr(buf)
	rec := make([]byte, RecSize)
	putU64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			rec[off+i] = byte(v >> (8 * i))
		}
	}
	putU64(recUsed, used)
	putU64(recParent, parent)
	putU64(recMode, mode)
	putU64(recSize, size)
	if len(name) > vfs.NameMax {
		return false
	}
	copy(rec[recName:], name)
	if used != 0 && !fs.setUsedBit(t, sb, priv, slot, 1) {
		return false
	}
	if t.Write(rb, rec) != nil {
		return false
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gDmWriteSectors.Call4(t, dev, DirTabStart+slot, uint64(rb), RecSize)
	if err != nil || kernel.IsErr(ret) {
		return false
	}
	if used == 0 && !fs.setUsedBit(t, sb, priv, slot, 0) {
		return false
	}
	return true
}

// addDirent links one in-memory directory entry; returns 0 on failure.
// recsize caches the size stored in the slot's on-disk record, so
// writepage only rewrites the record when the size actually changed.
func (fs *FS) addDirent(t *core.Thread, priv mem.Addr, dir, ino uint64, name []byte, recsize uint64) uint64 {
	de, err := fs.gKmalloc.Call1(t, fs.deLay.Size)
	if err != nil || de == 0 {
		return 0
	}
	head, _ := t.ReadU64(fs.pvField(priv, "head"))
	if t.WriteU64(fs.deField(mem.Addr(de), "next"), head) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "dir"), dir) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "inode"), ino) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "recsize"), recsize) != nil ||
		t.Write(fs.deField(mem.Addr(de), "name"), append(append([]byte{}, name...), 0)) != nil ||
		t.WriteU64(fs.pvField(priv, "head"), de) != nil {
		_, _ = fs.gKfree.Call1(t, de)
		return 0
	}
	return de
}

func (fs *FS) mount(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv, err := fs.gKmalloc.Call1(t, fs.privLay.Size)
	if err != nil || priv == 0 {
		return 0
	}
	stack, err := fs.gKmalloc.Call1(t, 8*MaxSlots)
	if err != nil || stack == 0 {
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	recbuf, err := fs.gKmalloc.Call1(t, RecSize)
	if err != nil || recbuf == 0 {
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	bmbuf, err := fs.gKmalloc.Call1(t, blockdev.SectorSize)
	if err != nil || bmbuf == 0 {
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	root, err := fs.gIget.Call1(t, uint64(sb))
	if err != nil || root == 0 {
		_, _ = fs.gKfree.Call1(t, bmbuf)
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	if t.WriteU64(fs.V.InodeField(mem.Addr(root), "mode"), vfs.ModeDir) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(root), "nlink"), 2) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "head"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "root"), root) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "nextslot"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "freestack"), stack) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "freecount"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "recbuf"), recbuf) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "bmbuf"), bmbuf) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "tamper"), 0) != nil ||
		t.WriteU64(fs.V.SBField(sb, "private"), priv) != nil ||
		// Declare the per-file capacity so the VFS rejects oversized
		// writes up front instead of caching pages that can never be
		// persisted.
		t.WriteU64(fs.V.SBField(sb, "maxbytes"), MaxFilePages*mem.PageSize) != nil {
		_, _ = fs.gIput.Call1(t, root)
		_, _ = fs.gKfree.Call1(t, bmbuf)
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	if !fs.recoverNamespace(t, sb, mem.Addr(priv)) {
		_, _ = fs.gIput.Call1(t, root)
		_, _ = fs.gKfree.Call1(t, bmbuf)
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	return root
}

// recoverNamespace rebuilds the directory tree from the on-disk
// directory table: one inode per live record, then one in-memory dirent
// per record once every parent inode exists. The free-slot bookkeeping
// is reconstructed from the used bits, so slot allocation continues
// where the previous mount stopped.
//
// Only slots the used-slot bitmap marks live are read — recovery costs
// O(live records), not O(MaxSlots). A set bit whose record is dead (the
// crash window between bitmap and record writes) is skipped and the
// slot freed; the record write remains the commit point.
func (fs *FS) recoverNamespace(t *core.Thread, sb, priv mem.Addr) bool {
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	buf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
	bmbuf, _ := t.ReadU64(fs.pvField(priv, "bmbuf"))
	root, _ := t.ReadU64(fs.pvField(priv, "root"))

	if ret, err := fs.gDmReadSectors.Call4(t, dev, BitmapStart, bmbuf, blockdev.SectorSize); err != nil || kernel.IsErr(ret) {
		return false
	}
	bitmap, err := t.ReadBytes(mem.Addr(bmbuf), MaxSlots/8)
	if err != nil {
		return false
	}

	type rec struct {
		parent, mode, size uint64
		name               []byte
		ino                uint64
	}
	recs := make(map[uint64]*rec)
	for slot := uint64(0); slot < MaxSlots; slot++ {
		if bitmap[slot/8]&(1<<(slot%8)) == 0 {
			continue
		}
		ret, err := fs.gDmReadSectors.Call4(t, dev, DirTabStart+slot, buf, RecSize)
		if err != nil || kernel.IsErr(ret) {
			return false
		}
		raw, err := t.ReadBytes(mem.Addr(buf), RecSize)
		if err != nil {
			return false
		}
		getU64 := func(off int) uint64 {
			v := uint64(0)
			for i := 0; i < 8; i++ {
				v |= uint64(raw[off+i]) << (8 * i)
			}
			return v
		}
		if getU64(recUsed) != 1 {
			// Crash window: bit set, record never committed. The slot is
			// free (it is below nextslot only if some reachable record
			// sits above it, in which case the post-recovery free pass
			// reclaims it).
			continue
		}
		name := raw[recName : recName+vfs.NameMax+1]
		if i := bytes.IndexByte(name, 0); i >= 0 {
			name = name[:i]
		}
		recs[slot] = &rec{parent: getU64(recParent), mode: getU64(recMode), size: getU64(recSize),
			name: append([]byte{}, name...)}
	}

	// Deduplicate (parent, name) collisions — a crash between a rename's
	// record write and the replaced target's record kill can leave two
	// live records under one name. The lowest slot wins; the loser is
	// treated like an orphan (dropped, slot reusable, record overwritten
	// on reuse).
	byName := make(map[string]uint64)
	for slot := uint64(0); slot < MaxSlots; slot++ {
		r, ok := recs[slot]
		if !ok {
			continue
		}
		key := fmt.Sprintf("%d/%s", r.parent, r.name)
		if _, dup := byName[key]; dup {
			delete(recs, slot)
			continue
		}
		byName[key] = slot
	}

	// Reachability from the root, BFS over parent links: a record whose
	// parent chain is broken (parent record gone or not a directory) or
	// cyclic — possible on a crashed or corrupted table — is an orphan.
	// Orphans are dropped entirely: no inode, no dirent, and their slots
	// become reusable, so the dead records are overwritten on reuse
	// rather than resurrected as ghosts on every future mount. (Their
	// bitmap bits stay set until reuse — mount cannot write the disk,
	// dm_write_sectors demands the device REF the VFS only grants once
	// the mount callback has returned — so a dropped record costs one
	// extra sector read per mount until its slot is recycled.)
	children := make(map[uint64][]uint64)
	for slot, r := range recs {
		children[r.parent] = append(children[r.parent], slot)
	}
	reachable := make(map[uint64]bool)
	queue := append([]uint64{}, children[RootSlot]...)
	for len(queue) > 0 {
		slot := queue[0]
		queue = queue[1:]
		if reachable[slot] {
			continue
		}
		reachable[slot] = true
		if recs[slot].mode == vfs.ModeDir {
			queue = append(queue, children[slot]...)
		}
	}

	// bail releases everything a partial recovery allocated: the dirent
	// list is unlinked and freed, every inode created so far is iput.
	// mount's own error branch then frees priv/stack/recbuf/root.
	bail := func() bool {
		cur, _ := t.ReadU64(fs.pvField(priv, "head"))
		for cur != 0 {
			next, _ := t.ReadU64(fs.deField(mem.Addr(cur), "next"))
			_, _ = fs.gKfree.Call1(t, cur)
			cur = next
		}
		_ = t.WriteU64(fs.pvField(priv, "head"), 0)
		for _, r := range recs {
			if r.ino != 0 {
				_, _ = fs.gIput.Call1(t, r.ino)
			}
		}
		return false
	}

	// Pass 1: an inode per reachable record.
	maxUsed := int64(-1)
	for slot, r := range recs {
		if !reachable[slot] {
			continue
		}
		ino, err := fs.gIget.Call1(t, uint64(sb))
		if err != nil || ino == 0 {
			return bail()
		}
		r.ino = ino
		nlink := uint64(1)
		if r.mode == vfs.ModeDir {
			nlink = 2
		}
		if t.WriteU64(fs.V.InodeField(mem.Addr(ino), "mode"), r.mode) != nil ||
			t.WriteU64(fs.V.InodeField(mem.Addr(ino), "nlink"), nlink) != nil ||
			t.WriteU64(fs.V.InodeField(mem.Addr(ino), "size"), r.size) != nil ||
			t.WriteU64(fs.V.InodeField(mem.Addr(ino), "private"), slot) != nil {
			return bail()
		}
		if int64(slot) > maxUsed {
			maxUsed = int64(slot)
		}
	}

	// Pass 2: the directory entries, now that every parent inode exists.
	for slot, r := range recs {
		if !reachable[slot] {
			continue
		}
		parent := root
		if r.parent != RootSlot {
			parent = recs[r.parent].ino
		}
		if fs.addDirent(t, priv, parent, r.ino, r.name, r.size) == 0 {
			return bail()
		}
	}

	// Slot bookkeeping: allocation resumes after the highest reachable
	// slot; every other slot below it is reusable.
	next := uint64(maxUsed + 1)
	if t.WriteU64(fs.pvField(priv, "nextslot"), next) != nil {
		return false
	}
	for slot := uint64(0); slot < next; slot++ {
		if !reachable[slot] {
			fs.freeSlot(t, priv, slot)
		}
	}
	return true
}

func (fs *FS) killSB(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv := fs.priv(t, sb)
	if priv == 0 {
		return 0
	}
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	for cur != 0 {
		next, _ := t.ReadU64(fs.deField(mem.Addr(cur), "next"))
		ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
		_, _ = fs.gIput.Call1(t, ino)
		_, _ = fs.gKfree.Call1(t, cur)
		cur = next
	}
	root, _ := t.ReadU64(fs.pvField(priv, "root"))
	stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
	recbuf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
	bmbuf, _ := t.ReadU64(fs.pvField(priv, "bmbuf"))
	_, _ = fs.gIput.Call1(t, root)
	_, _ = fs.gKfree.Call1(t, stack)
	_, _ = fs.gKfree.Call1(t, recbuf)
	_, _ = fs.gKfree.Call1(t, bmbuf)
	_, _ = fs.gKfree.Call1(t, uint64(priv))
	return 0
}

// allocSlot hands out an extent slot: a previously freed one if any,
// else the next never-used one. Returns MaxSlots when the disk is full —
// slots are never aliased while their file is alive.
func (fs *FS) allocSlot(t *core.Thread, priv mem.Addr) uint64 {
	fc, _ := t.ReadU64(fs.pvField(priv, "freecount"))
	if fc > 0 {
		stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
		slot, _ := t.ReadU64(mem.Addr(stack) + mem.Addr(8*(fc-1)))
		if t.WriteU64(fs.pvField(priv, "freecount"), fc-1) != nil {
			return MaxSlots
		}
		return slot
	}
	next, _ := t.ReadU64(fs.pvField(priv, "nextslot"))
	if next >= MaxSlots {
		return MaxSlots
	}
	if t.WriteU64(fs.pvField(priv, "nextslot"), next+1) != nil {
		return MaxSlots
	}
	return next
}

// freeSlot returns an extent slot to the free stack on unlink.
func (fs *FS) freeSlot(t *core.Thread, priv mem.Addr, slot uint64) {
	fc, _ := t.ReadU64(fs.pvField(priv, "freecount"))
	stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
	if fc >= MaxSlots {
		return
	}
	if t.WriteU64(mem.Addr(stack)+mem.Addr(8*fc), slot) == nil {
		_ = t.WriteU64(fs.pvField(priv, "freecount"), fc+1)
	}
}

func (fs *FS) createFn(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen, mode := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3], args[4]
	if nlen > vfs.NameMax {
		return 0
	}
	priv := fs.priv(t, sb)
	slot := fs.allocSlot(t, priv)
	if slot >= MaxSlots {
		return 0 // out of extent slots: ENOSPC
	}
	ino, err := fs.gIget.Call1(t, uint64(sb))
	if err != nil || ino == 0 {
		fs.freeSlot(t, priv, slot)
		return 0
	}
	nlink := uint64(1)
	if mode == vfs.ModeDir {
		nlink = 2
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "mode"), mode) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "nlink"), nlink) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "private"), slot) != nil {
		fs.freeSlot(t, priv, slot)
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	// Persist the record before linking the entry: a crash between the
	// two leaves a record a future mount recovers, never a file that
	// silently vanishes.
	if !fs.writeRec(t, sb, priv, slot, 1, fs.parentSlot(t, priv, dir), mode, 0, nameBytes) {
		fs.freeSlot(t, priv, slot)
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	if fs.addDirent(t, priv, dir, ino, nameBytes, 0) == 0 {
		_ = fs.writeRec(t, sb, priv, slot, 0, 0, 0, 0, nil)
		fs.freeSlot(t, priv, slot)
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	return ino
}

// findEntry walks the directory list for (dir, name); name == nil
// matches on inode instead. dir == 0 matches any directory.
func (fs *FS) findEntry(t *core.Thread, sb mem.Addr, dir uint64, name []byte, inode uint64) (entry, prev mem.Addr) {
	priv := fs.priv(t, sb)
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	for cur != 0 {
		d, _ := t.ReadU64(fs.deField(mem.Addr(cur), "dir"))
		if d == dir || dir == 0 {
			if name != nil {
				got, err := t.ReadBytes(fs.deField(mem.Addr(cur), "name"), uint64(len(name)+1))
				if err == nil && bytes.Equal(got[:len(name)], name) && got[len(name)] == 0 {
					return mem.Addr(cur), prev
				}
			} else {
				ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
				if ino == inode {
					return mem.Addr(cur), prev
				}
			}
		}
		prev = mem.Addr(cur)
		cur, _ = t.ReadU64(fs.deField(mem.Addr(cur), "next"))
	}
	return 0, 0
}

func (fs *FS) lookup(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3]
	if nlen > vfs.NameMax {
		return 0
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		return 0
	}
	de, _ := fs.findEntry(t, sb, dir, nameBytes, 0)
	if de == 0 {
		return 0
	}
	ino, _ := t.ReadU64(fs.deField(de, "inode"))
	return ino
}

// readdir returns the pos-th entry of dir (its inode address), writing
// the name into the kernel's lent buffer.
func (fs *FS) readdir(t *core.Thread, args []uint64) uint64 {
	sb, dir, pos, buf := mem.Addr(args[0]), args[1], args[2], mem.Addr(args[3])
	priv := fs.priv(t, sb)
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	seen := uint64(0)
	for cur != 0 {
		d, _ := t.ReadU64(fs.deField(mem.Addr(cur), "dir"))
		if d == dir {
			if seen == pos {
				name, err := t.ReadBytes(fs.deField(mem.Addr(cur), "name"), vfs.NameMax+1)
				if err != nil || t.Write(buf, name) != nil {
					return 0
				}
				ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
				return ino
			}
			seen++
		}
		cur, _ = t.ReadU64(fs.deField(mem.Addr(cur), "next"))
	}
	return 0
}

// rename relinks the entry in memory and rewrites its directory-table
// record (new parent, new name) — record first, so the disk is never
// behind the namespace a crash would recover.
func (fs *FS) rename(t *core.Thread, args []uint64) uint64 {
	sb, olddir, inode, newdir, name, nlen := mem.Addr(args[0]), args[1], args[2], args[3], mem.Addr(args[4]), args[5]
	if nlen > vfs.NameMax {
		return kernel.Err(kernel.EINVAL)
	}
	priv := fs.priv(t, sb)
	de, _ := fs.findEntry(t, sb, olddir, nil, inode)
	if de == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	slot, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "private"))
	mode, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "mode"))
	size, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "size"))
	if !fs.writeRec(t, sb, priv, slot, 1, fs.parentSlot(t, priv, newdir), mode, size, nameBytes) {
		return kernel.Err(kernel.EIO)
	}
	if t.WriteU64(fs.deField(de, "dir"), newdir) != nil ||
		t.WriteU64(fs.deField(de, "recsize"), size) != nil ||
		t.Write(fs.deField(de, "name"), append(nameBytes, 0)) != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (fs *FS) unlink(t *core.Thread, args []uint64) uint64 {
	sb, dir, inode := mem.Addr(args[0]), args[1], args[2]
	priv := fs.priv(t, sb)
	de, prev := fs.findEntry(t, sb, dir, nil, inode)
	if de == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	// Kill the record first: better a crash that forgets an unlink was
	// in flight than one that resurrects a half-removed file.
	slot, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "private"))
	if !fs.writeRec(t, sb, priv, slot, 0, 0, 0, 0, nil) {
		return kernel.Err(kernel.EIO)
	}
	next, _ := t.ReadU64(fs.deField(de, "next"))
	if prev == 0 {
		if err := t.WriteU64(fs.pvField(priv, "head"), next); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	} else if err := t.WriteU64(fs.deField(prev, "next"), next); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	// Reclaim the extent slot before the inode goes away.
	fs.freeSlot(t, priv, slot)
	if _, err := fs.gKfree.Call1(t, uint64(de)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if _, err := fs.gIput.Call1(t, inode); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// extent returns the first sector of (inode, page idx).
func (fs *FS) extent(t *core.Thread, ino mem.Addr, idx uint64) uint64 {
	slot, _ := t.ReadU64(fs.V.InodeField(ino, "private"))
	return slot*SectorsPerFile + idx*SectorsPerPage
}

// readpage pulls the page's sectors from the backing disk. The
// destination is the page-cache page whose WRITE capability the VFS
// transferred for exactly this call. Bytes beyond the inode's logical
// size are zeroed rather than read: extent slots are recycled across
// file lifetimes, and a new file must never see a dead file's sectors.
func (fs *FS) readpage(t *core.Thread, args []uint64) uint64 {
	sb, ino, idx, page := mem.Addr(args[0]), mem.Addr(args[1]), args[2], args[3]
	if idx >= MaxFilePages {
		return kernel.Err(kernel.ENOSPC)
	}
	size, _ := t.ReadU64(fs.V.InodeField(ino, "size"))
	start := idx * mem.PageSize
	if start >= size {
		// Wholly past EOF: a hole, not a disk read.
		if err := t.Zero(mem.Addr(page), mem.PageSize); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gDmReadSectors.Call4(t, dev, fs.extent(t, ino, idx), page, mem.PageSize)
	if err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EIO)
	}
	if valid := size - start; valid < mem.PageSize {
		if err := t.Zero(mem.Addr(page)+mem.Addr(valid), mem.PageSize-valid); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

// writepage persists the clean page; the REF(struct page) capability
// received from the writepage contract is what pc_writeback checks. The
// inode's current size is folded into the directory-table record so a
// remount recovers it. When CmdTamper has armed the compromise, the
// module first scribbles on the page it was asked to persist — a write
// its REF capability does not permit, so LXFI stops it; the stock
// kernel lets the corruption reach the disk.
func (fs *FS) writepage(t *core.Thread, args []uint64) uint64 {
	sb, ino, idx, page := mem.Addr(args[0]), mem.Addr(args[1]), args[2], args[3]
	if idx >= MaxFilePages {
		return kernel.Err(kernel.ENOSPC)
	}
	priv := fs.priv(t, sb)
	if tamper, _ := t.ReadU64(fs.pvField(priv, "tamper")); tamper != 0 {
		if err := t.WriteU64(mem.Addr(page), TamperValue); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gPcWriteback.Call3(t, dev, fs.extent(t, ino, idx), page)
	if err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EIO)
	}
	// Fold the size into the record — but only when it changed since the
	// last record write (the dirent caches the persisted size), so a
	// multi-page sync rewrites the record once, not once per page. The
	// entry gives us parent and name; a missing entry (concurrent
	// unlink) just skips the update.
	if de, _ := fs.findEntry(t, sb, 0, nil, uint64(ino)); de != 0 {
		size, _ := t.ReadU64(fs.V.InodeField(ino, "size"))
		if cached, _ := t.ReadU64(fs.deField(de, "recsize")); cached != size {
			dir, _ := t.ReadU64(fs.deField(de, "dir"))
			name, err := t.ReadBytes(fs.deField(de, "name"), vfs.NameMax+1)
			if err == nil {
				if i := bytes.IndexByte(name, 0); i >= 0 {
					name = name[:i]
				}
				slot, _ := t.ReadU64(fs.V.InodeField(ino, "private"))
				mode, _ := t.ReadU64(fs.V.InodeField(ino, "mode"))
				if fs.writeRec(t, sb, priv, slot, 1, fs.parentSlot(t, priv, dir), mode, size, name) {
					_ = t.WriteU64(fs.deField(de, "recsize"), size)
				}
			}
		}
	}
	return 0
}

// ioctl carries the deliberate compromise vectors: CmdTamper arms the
// corrupted writepage, CmdPokeDisk aims a raw sector write at an
// attacker-chosen device.
func (fs *FS) ioctl(t *core.Thread, args []uint64) uint64 {
	sb, cmd, arg := mem.Addr(args[0]), args[1], args[2]
	switch cmd {
	case CmdTamper:
		priv := fs.priv(t, sb)
		if err := t.WriteU64(fs.pvField(priv, "tamper"), 1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	case CmdPokeDisk:
		priv := fs.priv(t, sb)
		buf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
		if err := t.WriteU64(mem.Addr(buf), TamperValue); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		ret, err := fs.gDmWriteSectors.Call4(t, arg, 0, buf, RecSize)
		if err != nil || kernel.IsErr(ret) {
			return kernel.Err(kernel.EIO)
		}
		return 0
	}
	return kernel.Err(kernel.EINVAL)
}

// Package minixsim is a simulated minix-style block-backed filesystem
// module: file data is persisted to a RAM disk of the blockdev substrate
// in fixed per-inode extents. readpage pulls sectors into the page cache
// with dm_read_sectors (which checks WRITE ownership of the destination
// page — held precisely while the VFS has transferred it), and writepage
// persists clean pages through pc_writeback, proving ownership with the
// REF(struct page) capability the writepage contract hands it.
//
// The namespace is durable too: every extent slot has a one-sector
// directory-table record after the data region (name, parent slot, mode,
// size), written through dm_write_sectors from a module-owned record
// buffer. mount scans the table and rebuilds the full directory tree, so
// a remount recovers everything from the disk alone — the in-memory
// dirent list is just the mounted-state cache of the table.
//
// Like tmpfssim, the module ships a deliberate compromise vector: the
// CmdTamper ioctl arms a corrupted writepage that scribbles on the page
// it is asked to persist. writepage only ever receives a REF capability,
// so under LXFI the scribble is a violation; on the stock kernel the
// tampered bytes reach the disk — and because LRU eviction of a dirty
// page forces writepage, an attacker can trigger the corruption with
// nothing but memory pressure.
package minixsim

import (
	"bytes"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/vfs"
)

// FsID is the filesystem id minixsim registers.
const FsID = 2

// CmdTamper arms the compromised writepage: every page persisted from
// then on has its first 8 bytes overwritten with TamperValue first.
const CmdTamper = 0x7101

// CmdPokeDisk is a second compromise vector: write one record-sized
// burst of module memory to sector 0 of the device given in arg. Aimed
// at a foreign device it is a cross-principal disk write —
// dm_write_sectors' REF(block device) check stops it under LXFI.
const CmdPokeDisk = 0x7102

// TamperValue is the marker the corrupted writepage plants.
const TamperValue = 0x4242424242424242

// On-disk geometry: every inode owns a fixed extent of MaxFilePages
// pages; extent slots are handed out round-robin per mount. After the
// data extents sits the directory table: one sector-sized record per
// slot, so the namespace survives a remount. After the table sits the
// used-slot bitmap: one bit per slot, kept in sync by every record
// write, so mount-time recovery reads only the records the bitmap marks
// live — O(live records) instead of a MaxSlots scan.
const (
	SectorsPerPage = mem.PageSize / blockdev.SectorSize
	MaxFilePages   = 4
	SectorsPerFile = MaxFilePages * SectorsPerPage
	MaxSlots       = 1024
	// DataSectors is the extent region; the directory table follows it.
	DataSectors   = MaxSlots * SectorsPerFile
	DirTabStart   = DataSectors
	DirTabSectors = MaxSlots
	// BitmapStart is the used-slot bitmap sector: MaxSlots bits (128
	// bytes), well inside one sector.
	BitmapStart   = DirTabStart + DirTabSectors
	BitmapSectors = 1
	// JournalStart is the write-ahead journal region: one commit sector
	// followed by JournalSlots intent sectors. Multi-record metadata
	// operations write their intent records here first, commit with the
	// single commit-sector write, then apply to the directory table —
	// mount replays committed-but-unapplied transactions and discards
	// torn ones.
	JournalStart   = BitmapStart + BitmapSectors
	JournalSlots   = 16
	JournalSectors = 1 + JournalSlots
	// DiskSectors is the disk size a mount expects.
	DiskSectors = DataSectors + DirTabSectors + BitmapSectors + JournalSectors
	// RecSize is the size of one directory-table record (one sector, so
	// a record is always sector-addressable).
	RecSize = blockdev.SectorSize
	// RootSlot is the parent value of records living directly under the
	// mount root (the root inode itself has no extent slot).
	RootSlot = MaxSlots
)

// Directory-table record field offsets. A record is one directory
// entry; its target is the extent slot holding the file's data. Plain
// files and directories target their own slot; a hardlink's record
// targets the shared extent, so the link count of an extent is simply
// the number of live records targeting it.
const (
	recUsed   = 0  // u64: 1 = live
	recParent = 8  // u64: parent directory's extent slot, RootSlot for the root
	recMode   = 16 // u64: vfs.ModeFile / vfs.ModeDir
	recSize   = 24 // u64: logical file size in bytes
	recTarget = 32 // u64: extent slot the entry's data lives in
	recName   = 40 // NUL-terminated, at most vfs.NameMax bytes + NUL
)

// Journal sector layouts. An intent sector is a self-describing record
// image: everything needed to rewrite one directory-table record plus
// its transaction id, sequence number, and checksum. The commit sector
// names the transaction and its record count; writing it is the commit
// point, zeroing it is the checkpoint. Both carry an FNV-1a checksum so
// replay can tell a torn or stale sector from a committed one.
const (
	jMagic  = 0  // u64: jIntentMagic
	jTxid   = 8  // u64: transaction id
	jSeq    = 16 // u64: record index within the transaction
	jSlot   = 24 // u64: directory-table slot the image rewrites
	jUsed   = 32 // u64: record image: live flag
	jParent = 40 // u64: record image: parent extent slot
	jMode   = 48 // u64: record image: mode
	jSize   = 56 // u64: record image: size
	jTarget = 64 // u64: record image: target extent slot
	jName   = 72 // record image: name, NameMax bytes + NUL (56 bytes)
	jSum    = 128

	cMagic = 0  // u64: jCommitMagic
	cTxid  = 8  // u64: transaction id the intents carry
	cCount = 16 // u64: number of intent sectors in the transaction
	cSum   = 24
)

const (
	jIntentMagic uint64 = 0x4c58464a_544e544e // "LXFJ" + "TNTN"
	jCommitMagic uint64 = 0x4c58464a_434d4954 // "LXFJ" + "CMIT"
)

// fnv1a is the checksum both journal sector kinds carry.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Layout names.
const (
	Dirent = "struct minix_dirent"
	SbInfo = "struct minix_sb_info"
)

// FS is the loaded minixsim module.
type FS struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gRegisterFilesystem *core.Gate
	gIget               *core.Gate
	gIput               *core.Gate
	gKmalloc            *core.Gate
	gKfree              *core.Gate
	gDmReadSectors      *core.Gate
	gDmWriteSectors     *core.Gate
	gPcWriteback        *core.Gate
	K                   *kernel.Kernel
	V                   *vfs.VFS

	deLay   *layout.Struct
	privLay *layout.Struct
}

// Load loads the module and runs its init function. The kernel must
// have both the vfs and blockdev substrates initialized.
func Load(t *core.Thread, k *kernel.Kernel, v *vfs.VFS) (*FS, error) {
	fs := &FS{K: k, V: v}
	fs.deLay = defineOnce(k, Dirent,
		layout.F("next", 8),
		layout.F("dir", 8),
		layout.F("inode", 8),
		layout.F("slot", 8),    // directory-table slot backing this entry
		layout.F("recsize", 8), // size last persisted to the on-disk record
		layout.F("name", vfs.NameMax+1),
	)
	fs.privLay = defineOnce(k, SbInfo,
		layout.F("head", 8),
		layout.F("root", 8),
		layout.F("nextslot", 8),
		layout.F("freestack", 8), // array of reusable extent slots
		layout.F("freecount", 8),
		layout.F("recbuf", 8), // module-owned directory-record buffer
		layout.F("bmbuf", 8),  // module-owned used-slot bitmap buffer
		layout.F("jbuf", 8),   // module-owned journal-sector buffer
		layout.F("txid", 8),   // last journal transaction id handed out
		layout.F("tamper", 8), // nonzero once CmdTamper armed the compromise
	)

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name: "minixsim",
		Imports: []string{"register_filesystem", "iget", "iput", "kmalloc", "kfree",
			"dm_read_sectors", "dm_write_sectors", "pc_writeback", "printk"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "mount", Type: vfs.FsMount, Impl: fs.mount},
			{Name: "kill_sb", Type: vfs.FsKillSB, Impl: fs.killSB},
			{Name: "create", Type: vfs.FsCreate, Impl: fs.createFn},
			{Name: "lookup", Type: vfs.FsLookup, Impl: fs.lookup},
			{Name: "unlink", Type: vfs.FsUnlink, Impl: fs.unlink},
			{Name: "readdir", Type: vfs.FsReaddir, Impl: fs.readdir},
			{Name: "rename", Type: vfs.FsRename, Impl: fs.rename},
			{Name: "exchange", Type: vfs.FsExchange, Impl: fs.exchange},
			{Name: "link", Type: vfs.FsLink, Impl: fs.link},
			{Name: "readpage", Type: vfs.FsReadPage, Impl: fs.readpage},
			{Name: "writepage", Type: vfs.FsWritePage, Impl: fs.writepage},
			{Name: "ioctl", Type: vfs.FsIoctl, Impl: fs.ioctl},
			{Name: "init", Impl: fs.init},
		},
	})
	if err != nil {
		return nil, err
	}
	fs.M = m
	fs.gRegisterFilesystem = m.Gate("register_filesystem")
	fs.gIget = m.Gate("iget")
	fs.gIput = m.Gate("iput")
	fs.gKmalloc = m.Gate("kmalloc")
	fs.gKfree = m.Gate("kfree")
	fs.gDmReadSectors = m.Gate("dm_read_sectors")
	fs.gDmWriteSectors = m.Gate("dm_write_sectors")
	fs.gPcWriteback = m.Gate("pc_writeback")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return fs, nil
}

func defineOnce(k *kernel.Kernel, name string, fields ...layout.Field) *layout.Struct {
	if s, ok := k.Sys.Layouts.Get(name); ok {
		return s
	}
	return k.Sys.Layouts.Define(name, fields...)
}

type initError struct{ err error }

func (e *initError) Error() string { return "minixsim: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's fs_operations table address.
func (fs *FS) Ops() mem.Addr { return fs.M.Data }

func (fs *FS) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for _, slot := range []string{"mount", "kill_sb", "create", "lookup", "unlink", "readdir", "rename", "exchange", "link", "readpage", "writepage", "ioctl"} {
		if err := t.WriteU64(fs.V.OpsSlot(fs.Ops(), slot), uint64(mod.Funcs[slot].Addr)); err != nil {
			return 1
		}
	}
	if ret, err := fs.gRegisterFilesystem.Call2(t, FsID, uint64(fs.Ops())); err != nil || kernel.IsErr(ret) {
		return 2
	}
	return 0
}

func (fs *FS) deField(de mem.Addr, f string) mem.Addr { return de + mem.Addr(fs.deLay.Off(f)) }
func (fs *FS) pvField(pv mem.Addr, f string) mem.Addr { return pv + mem.Addr(fs.privLay.Off(f)) }
func (fs *FS) priv(t *core.Thread, sb mem.Addr) mem.Addr {
	p, _ := t.ReadU64(fs.V.SBField(sb, "private"))
	return mem.Addr(p)
}

// parentSlot maps a directory inode to the slot value stored in a
// directory-table record: the directory's own extent slot, or RootSlot
// when the directory is the mount root.
func (fs *FS) parentSlot(t *core.Thread, priv mem.Addr, dir uint64) uint64 {
	root, _ := t.ReadU64(fs.pvField(priv, "root"))
	if dir == root {
		return RootSlot
	}
	slot, _ := t.ReadU64(fs.V.InodeField(mem.Addr(dir), "private"))
	return slot
}

// setUsedBit flips the slot's bit in the module's bitmap buffer and, if
// it changed, persists the bitmap sector. Steady-state record rewrites
// (size folds, renames) leave the bit untouched and skip the extra
// sector write.
func (fs *FS) setUsedBit(t *core.Thread, sb, priv mem.Addr, slot, used uint64) bool {
	buf, _ := t.ReadU64(fs.pvField(priv, "bmbuf"))
	bb := mem.Addr(buf) + mem.Addr(slot/8)
	cur, err := t.ReadU8(bb)
	if err != nil {
		return false
	}
	bit := uint8(1) << (slot % 8)
	next := cur &^ bit
	if used != 0 {
		next = cur | bit
	}
	if next == cur {
		return true
	}
	if t.WriteU8(bb, next) != nil {
		return false
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gDmWriteSectors.Call4(t, dev, BitmapStart, buf, blockdev.SectorSize)
	return err == nil && !kernel.IsErr(ret)
}

// jrec is one directory-table record image: the unit a journal intent
// describes and applyRec persists.
type jrec struct {
	slot, used, parent, mode, size, target uint64
	name                                   []byte
}

func putU64(b []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte, off int) uint64 {
	v := uint64(0)
	for i := 0; i < 8; i++ {
		v |= uint64(b[off+i]) << (8 * i)
	}
	return v
}

// encodeIntent builds one intent sector: the record image plus txid,
// sequence number, and checksum.
func encodeIntent(txid, seq uint64, r jrec) []byte {
	img := make([]byte, blockdev.SectorSize)
	putU64(img, jMagic, jIntentMagic)
	putU64(img, jTxid, txid)
	putU64(img, jSeq, seq)
	putU64(img, jSlot, r.slot)
	putU64(img, jUsed, r.used)
	putU64(img, jParent, r.parent)
	putU64(img, jMode, r.mode)
	putU64(img, jSize, r.size)
	putU64(img, jTarget, r.target)
	copy(img[jName:], r.name)
	putU64(img, jSum, fnv1a(img[:jSum]))
	return img
}

// encodeCommit builds the commit sector for a txid/count pair.
func encodeCommit(txid, count uint64) []byte {
	img := make([]byte, blockdev.SectorSize)
	putU64(img, cMagic, jCommitMagic)
	putU64(img, cTxid, txid)
	putU64(img, cCount, count)
	putU64(img, cSum, fnv1a(img[:cSum]))
	return img
}

// decodeIntent validates an intent sector against the committed txid
// and sequence; ok is false for torn, stale, or corrupt sectors.
func decodeIntent(img []byte, txid, seq uint64) (r jrec, ok bool) {
	if getU64(img, jMagic) != jIntentMagic ||
		getU64(img, jTxid) != txid ||
		getU64(img, jSeq) != seq ||
		getU64(img, jSum) != fnv1a(img[:jSum]) {
		return jrec{}, false
	}
	name := img[jName : jName+vfs.NameMax+1]
	if i := bytes.IndexByte(name, 0); i >= 0 {
		name = name[:i]
	}
	return jrec{
		slot:   getU64(img, jSlot),
		used:   getU64(img, jUsed),
		parent: getU64(img, jParent),
		mode:   getU64(img, jMode),
		size:   getU64(img, jSize),
		target: getU64(img, jTarget),
		name:   append([]byte{}, name...),
	}, true
}

// jwriteSector persists one journal sector from the mount's own journal
// buffer through dm_write_sectors (which checks the module owns the
// buffer it is persisting).
func (fs *FS) jwriteSector(t *core.Thread, sb, priv mem.Addr, sector uint64, img []byte) bool {
	buf, _ := t.ReadU64(fs.pvField(priv, "jbuf"))
	if t.Write(mem.Addr(buf), img) != nil {
		return false
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gDmWriteSectors.Call4(t, dev, sector, buf, blockdev.SectorSize)
	return err == nil && !kernel.IsErr(ret)
}

// applyRec persists one directory-table record image from the mount's
// own record buffer, keeping the used-slot bitmap in sync: a live bit
// is set before its record is written and cleared only after the record
// is killed, so a torn apply leaves at worst a set bit over a dead
// record — which replay rewrites, since the commit sector is still
// standing. applyRec is idempotent: images are absolute, so replaying
// an already-applied record rewrites the same bytes.
func (fs *FS) applyRec(t *core.Thread, sb, priv mem.Addr, r jrec) bool {
	if len(r.name) > vfs.NameMax {
		return false
	}
	buf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
	rb := mem.Addr(buf)
	rec := make([]byte, RecSize)
	putU64(rec, recUsed, r.used)
	putU64(rec, recParent, r.parent)
	putU64(rec, recMode, r.mode)
	putU64(rec, recSize, r.size)
	putU64(rec, recTarget, r.target)
	copy(rec[recName:], r.name)
	if r.used != 0 && !fs.setUsedBit(t, sb, priv, r.slot, 1) {
		return false
	}
	if t.Write(rb, rec) != nil {
		return false
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gDmWriteSectors.Call4(t, dev, DirTabStart+r.slot, uint64(rb), RecSize)
	if err != nil || kernel.IsErr(ret) {
		return false
	}
	if r.used == 0 && !fs.setUsedBit(t, sb, priv, r.slot, 0) {
		return false
	}
	return true
}

// commitTxn runs one journaled transaction: write every record image as
// an intent sector, commit with the single commit-sector write, apply
// the images to the directory table, then checkpoint by zeroing the
// commit sector. A crash before the commit write loses the whole
// transaction (the directory table is untouched); a crash after it is
// replayed to completion by the next mount. Either way no observer ever
// sees half the records of a multi-record operation.
func (fs *FS) commitTxn(t *core.Thread, sb, priv mem.Addr, recs []jrec) bool {
	if len(recs) == 0 || len(recs) > JournalSlots {
		return false
	}
	txid, _ := t.ReadU64(fs.pvField(priv, "txid"))
	txid++
	if t.WriteU64(fs.pvField(priv, "txid"), txid) != nil {
		return false
	}
	for i, r := range recs {
		if !fs.jwriteSector(t, sb, priv, JournalStart+1+uint64(i), encodeIntent(txid, uint64(i), r)) {
			return false
		}
	}
	if !fs.jwriteSector(t, sb, priv, JournalStart, encodeCommit(txid, uint64(len(recs)))) {
		return false
	}
	for _, r := range recs {
		if !fs.applyRec(t, sb, priv, r) {
			return false
		}
	}
	return fs.jwriteSector(t, sb, priv, JournalStart, make([]byte, blockdev.SectorSize))
}

// addDirent links one in-memory directory entry; returns 0 on failure.
// slot is the directory-table slot backing the entry; recsize caches
// the size stored in the slot's on-disk record, so writepage only
// rewrites the record when the size actually changed.
func (fs *FS) addDirent(t *core.Thread, priv mem.Addr, dir, ino uint64, name []byte, recsize, slot uint64) uint64 {
	de, err := fs.gKmalloc.Call1(t, fs.deLay.Size)
	if err != nil || de == 0 {
		return 0
	}
	head, _ := t.ReadU64(fs.pvField(priv, "head"))
	if t.WriteU64(fs.deField(mem.Addr(de), "next"), head) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "dir"), dir) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "inode"), ino) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "slot"), slot) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "recsize"), recsize) != nil ||
		t.Write(fs.deField(mem.Addr(de), "name"), append(append([]byte{}, name...), 0)) != nil ||
		t.WriteU64(fs.pvField(priv, "head"), de) != nil {
		_, _ = fs.gKfree.Call1(t, de)
		return 0
	}
	return de
}

func (fs *FS) mount(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv, err := fs.gKmalloc.Call1(t, fs.privLay.Size)
	if err != nil || priv == 0 {
		return 0
	}
	stack, err := fs.gKmalloc.Call1(t, 8*MaxSlots)
	if err != nil || stack == 0 {
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	recbuf, err := fs.gKmalloc.Call1(t, RecSize)
	if err != nil || recbuf == 0 {
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	bmbuf, err := fs.gKmalloc.Call1(t, blockdev.SectorSize)
	if err != nil || bmbuf == 0 {
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	jbuf, err := fs.gKmalloc.Call1(t, blockdev.SectorSize)
	if err != nil || jbuf == 0 {
		_, _ = fs.gKfree.Call1(t, bmbuf)
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	root, err := fs.gIget.Call1(t, uint64(sb))
	if err != nil || root == 0 {
		_, _ = fs.gKfree.Call1(t, jbuf)
		_, _ = fs.gKfree.Call1(t, bmbuf)
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	if t.WriteU64(fs.V.InodeField(mem.Addr(root), "mode"), vfs.ModeDir) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(root), "nlink"), 2) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "head"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "root"), root) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "nextslot"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "freestack"), stack) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "freecount"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "recbuf"), recbuf) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "bmbuf"), bmbuf) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "jbuf"), jbuf) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "txid"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "tamper"), 0) != nil ||
		t.WriteU64(fs.V.SBField(sb, "private"), priv) != nil ||
		// Declare the per-file capacity so the VFS rejects oversized
		// writes up front instead of caching pages that can never be
		// persisted.
		t.WriteU64(fs.V.SBField(sb, "maxbytes"), MaxFilePages*mem.PageSize) != nil {
		_, _ = fs.gIput.Call1(t, root)
		_, _ = fs.gKfree.Call1(t, jbuf)
		_, _ = fs.gKfree.Call1(t, bmbuf)
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	if !fs.recoverNamespace(t, sb, mem.Addr(priv)) {
		_, _ = fs.gIput.Call1(t, root)
		_, _ = fs.gKfree.Call1(t, jbuf)
		_, _ = fs.gKfree.Call1(t, bmbuf)
		_, _ = fs.gKfree.Call1(t, recbuf)
		_, _ = fs.gKfree.Call1(t, stack)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	return root
}

// replayJournal finishes or discards whatever transaction the previous
// mount left in the journal. A valid commit sector means every intent
// of the transaction reached the disk before the crash (the commit
// write comes last), so the intents are re-applied — applyRec images
// are absolute and idempotent — and the commit sector is zeroed. An
// invalid or torn commit sector means the transaction never committed:
// it is discarded, and the directory table is left exactly as the
// pre-crash namespace had it. A journal-clean (all-zero commit sector)
// disk takes no writes at all. Requires the bitmap to already be loaded
// into bmbuf: applyRec keeps the used-slot bitmap in sync through it.
func (fs *FS) replayJournal(t *core.Thread, sb, priv mem.Addr) bool {
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	jbuf, _ := t.ReadU64(fs.pvField(priv, "jbuf"))
	if ret, err := fs.gDmReadSectors.Call4(t, dev, JournalStart, jbuf, blockdev.SectorSize); err != nil || kernel.IsErr(ret) {
		return false
	}
	commit, err := t.ReadBytes(mem.Addr(jbuf), blockdev.SectorSize)
	if err != nil {
		return false
	}
	allZero := true
	for _, b := range commit {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return true
	}
	txid := getU64(commit, cTxid)
	count := getU64(commit, cCount)
	valid := getU64(commit, cMagic) == jCommitMagic &&
		getU64(commit, cSum) == fnv1a(commit[:cSum]) &&
		count >= 1 && count <= JournalSlots
	if valid {
		recs := make([]jrec, 0, count)
		for i := uint64(0); i < count; i++ {
			if ret, err := fs.gDmReadSectors.Call4(t, dev, JournalStart+1+i, jbuf, blockdev.SectorSize); err != nil || kernel.IsErr(ret) {
				return false
			}
			img, err := t.ReadBytes(mem.Addr(jbuf), blockdev.SectorSize)
			if err != nil {
				return false
			}
			r, ok := decodeIntent(img, txid, i)
			if !ok || r.slot >= MaxSlots {
				// A committed transaction with a bad intent is corruption,
				// not a torn write; discard rather than half-apply.
				valid = false
				break
			}
			recs = append(recs, r)
		}
		if valid {
			for _, r := range recs {
				if !fs.applyRec(t, sb, priv, r) {
					return false
				}
			}
			if t.WriteU64(fs.pvField(priv, "txid"), txid) != nil {
				return false
			}
		}
	}
	// Checkpoint (or discard the torn/corrupt transaction): zero the
	// commit sector so the journal is clean for the next mount.
	return fs.jwriteSector(t, sb, priv, JournalStart, make([]byte, blockdev.SectorSize))
}

// recoverNamespace rebuilds the directory tree from the on-disk
// directory table: first journal replay settles any in-flight
// transaction, then one inode per extent in use (records are grouped by
// target, so hardlinked entries share an inode and nlink counts the
// group), then one in-memory dirent per record once every parent inode
// exists. The free-slot bookkeeping is reconstructed from the used
// bits, so slot allocation continues where the previous mount stopped.
//
// Only slots the used-slot bitmap marks live are read — recovery costs
// O(live records), not O(MaxSlots). A set bit whose record is dead (the
// crash window between bitmap and record writes inside an apply, always
// under a still-standing commit sector that replay has just finished)
// is skipped and the slot freed.
func (fs *FS) recoverNamespace(t *core.Thread, sb, priv mem.Addr) bool {
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	buf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
	bmbuf, _ := t.ReadU64(fs.pvField(priv, "bmbuf"))
	root, _ := t.ReadU64(fs.pvField(priv, "root"))

	// The bitmap must be resident before replay: applyRec maintains the
	// used-slot bits through the in-memory copy.
	if ret, err := fs.gDmReadSectors.Call4(t, dev, BitmapStart, bmbuf, blockdev.SectorSize); err != nil || kernel.IsErr(ret) {
		return false
	}
	if !fs.replayJournal(t, sb, priv) {
		return false
	}
	bitmap, err := t.ReadBytes(mem.Addr(bmbuf), MaxSlots/8)
	if err != nil {
		return false
	}

	type rec struct {
		parent, mode, size, target uint64
		name                       []byte
	}
	recs := make(map[uint64]*rec)
	for slot := uint64(0); slot < MaxSlots; slot++ {
		if bitmap[slot/8]&(1<<(slot%8)) == 0 {
			continue
		}
		ret, err := fs.gDmReadSectors.Call4(t, dev, DirTabStart+slot, buf, RecSize)
		if err != nil || kernel.IsErr(ret) {
			return false
		}
		raw, err := t.ReadBytes(mem.Addr(buf), RecSize)
		if err != nil {
			return false
		}
		if getU64(raw, recUsed) != 1 {
			// Stale bit over a dead record (torn apply the replay above
			// has already settled): skip, the slot is reclaimed by the
			// post-recovery free pass.
			continue
		}
		name := raw[recName : recName+vfs.NameMax+1]
		if i := bytes.IndexByte(name, 0); i >= 0 {
			name = name[:i]
		}
		target := getU64(raw, recTarget)
		if target >= MaxSlots {
			continue
		}
		recs[slot] = &rec{parent: getU64(raw, recParent), mode: getU64(raw, recMode),
			size: getU64(raw, recSize), target: target,
			name: append([]byte{}, name...)}
	}

	// Reachability from the root, BFS over parent links: a record whose
	// parent chain is broken (parent record gone or not a directory) or
	// cyclic — possible on a corrupted table — is an orphan. Orphans are
	// dropped entirely: no inode, no dirent, and their slots become
	// reusable, so the dead records are overwritten on reuse rather than
	// resurrected as ghosts on every future mount. (Their bitmap bits
	// stay set until reuse — clearing them would cost a clean mount its
	// read-only path — so a dropped record costs one extra sector read
	// per mount until its slot is recycled.) Parent links name the
	// parent directory's extent slot, i.e. its record's target.
	children := make(map[uint64][]uint64)
	for slot, r := range recs {
		children[r.parent] = append(children[r.parent], slot)
	}
	reachable := make(map[uint64]bool)
	queue := append([]uint64{}, children[RootSlot]...)
	for len(queue) > 0 {
		slot := queue[0]
		queue = queue[1:]
		if reachable[slot] {
			continue
		}
		reachable[slot] = true
		if recs[slot].mode == vfs.ModeDir {
			queue = append(queue, children[recs[slot].target]...)
		}
	}

	// Group reachable records by target extent: hardlinked entries are
	// several records over one extent and must share one inode.
	groups := make(map[uint64][]uint64)
	for slot := range recs {
		if reachable[slot] {
			groups[recs[slot].target] = append(groups[recs[slot].target], slot)
		}
	}
	inoByTarget := make(map[uint64]uint64)

	// bail releases everything a partial recovery allocated: the dirent
	// list is unlinked and freed, every inode created so far is iput.
	// mount's own error branch then frees priv/stack/buffers/root.
	bail := func() bool {
		cur, _ := t.ReadU64(fs.pvField(priv, "head"))
		for cur != 0 {
			next, _ := t.ReadU64(fs.deField(mem.Addr(cur), "next"))
			_, _ = fs.gKfree.Call1(t, cur)
			cur = next
		}
		_ = t.WriteU64(fs.pvField(priv, "head"), 0)
		for _, ino := range inoByTarget {
			_, _ = fs.gIput.Call1(t, ino)
		}
		return false
	}

	// Pass 1: an inode per extent in use. nlink counts the records of
	// the group; the size is the freshest any record saw (writepage
	// folds size into the entry it finds first, so records of a group
	// can lag — the max is the one that was persisted last).
	maxUsed := int64(-1)
	for target, slots := range groups {
		ino, err := fs.gIget.Call1(t, uint64(sb))
		if err != nil || ino == 0 {
			return bail()
		}
		inoByTarget[target] = ino
		mode := recs[slots[0]].mode
		size := uint64(0)
		for _, s := range slots {
			if recs[s].size > size {
				size = recs[s].size
			}
		}
		nlink := uint64(len(slots))
		if mode == vfs.ModeDir {
			nlink = 2
		}
		if t.WriteU64(fs.V.InodeField(mem.Addr(ino), "mode"), mode) != nil ||
			t.WriteU64(fs.V.InodeField(mem.Addr(ino), "nlink"), nlink) != nil ||
			t.WriteU64(fs.V.InodeField(mem.Addr(ino), "size"), size) != nil ||
			t.WriteU64(fs.V.InodeField(mem.Addr(ino), "private"), target) != nil {
			return bail()
		}
		if int64(target) > maxUsed {
			maxUsed = int64(target)
		}
		for _, s := range slots {
			if int64(s) > maxUsed {
				maxUsed = int64(s)
			}
		}
	}

	// Pass 2: the directory entries, now that every parent inode exists.
	for slot, r := range recs {
		if !reachable[slot] {
			continue
		}
		parent := root
		if r.parent != RootSlot {
			parent = inoByTarget[r.parent]
		}
		if fs.addDirent(t, priv, parent, inoByTarget[r.target], r.name, r.size, slot) == 0 {
			return bail()
		}
	}

	// Slot bookkeeping: allocation resumes after the highest slot in use
	// (record or target); every other slot below it is reusable.
	inUse := func(slot uint64) bool {
		if reachable[slot] {
			return true
		}
		_, live := groups[slot]
		return live
	}
	next := uint64(maxUsed + 1)
	if t.WriteU64(fs.pvField(priv, "nextslot"), next) != nil {
		return false
	}
	for slot := uint64(0); slot < next; slot++ {
		if !inUse(slot) {
			fs.freeSlot(t, priv, slot)
		}
	}
	return true
}

func (fs *FS) killSB(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv := fs.priv(t, sb)
	if priv == 0 {
		return 0
	}
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	// Hardlinked inodes appear under several entries but must be
	// released exactly once.
	seen := make(map[uint64]bool)
	for cur != 0 {
		next, _ := t.ReadU64(fs.deField(mem.Addr(cur), "next"))
		ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
		if !seen[ino] {
			seen[ino] = true
			_, _ = fs.gIput.Call1(t, ino)
		}
		_, _ = fs.gKfree.Call1(t, cur)
		cur = next
	}
	root, _ := t.ReadU64(fs.pvField(priv, "root"))
	stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
	recbuf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
	bmbuf, _ := t.ReadU64(fs.pvField(priv, "bmbuf"))
	jbuf, _ := t.ReadU64(fs.pvField(priv, "jbuf"))
	_, _ = fs.gIput.Call1(t, root)
	_, _ = fs.gKfree.Call1(t, stack)
	_, _ = fs.gKfree.Call1(t, recbuf)
	_, _ = fs.gKfree.Call1(t, bmbuf)
	_, _ = fs.gKfree.Call1(t, jbuf)
	_, _ = fs.gKfree.Call1(t, uint64(priv))
	return 0
}

// allocSlot hands out an extent slot: a previously freed one if any,
// else the next never-used one. Returns MaxSlots when the disk is full —
// slots are never aliased while their file is alive.
func (fs *FS) allocSlot(t *core.Thread, priv mem.Addr) uint64 {
	fc, _ := t.ReadU64(fs.pvField(priv, "freecount"))
	if fc > 0 {
		stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
		slot, _ := t.ReadU64(mem.Addr(stack) + mem.Addr(8*(fc-1)))
		if t.WriteU64(fs.pvField(priv, "freecount"), fc-1) != nil {
			return MaxSlots
		}
		return slot
	}
	next, _ := t.ReadU64(fs.pvField(priv, "nextslot"))
	if next >= MaxSlots {
		return MaxSlots
	}
	if t.WriteU64(fs.pvField(priv, "nextslot"), next+1) != nil {
		return MaxSlots
	}
	return next
}

// freeSlot returns an extent slot to the free stack on unlink.
func (fs *FS) freeSlot(t *core.Thread, priv mem.Addr, slot uint64) {
	fc, _ := t.ReadU64(fs.pvField(priv, "freecount"))
	stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
	if fc >= MaxSlots {
		return
	}
	if t.WriteU64(mem.Addr(stack)+mem.Addr(8*fc), slot) == nil {
		_ = t.WriteU64(fs.pvField(priv, "freecount"), fc+1)
	}
}

func (fs *FS) createFn(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen, mode := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3], args[4]
	if nlen > vfs.NameMax {
		return 0
	}
	priv := fs.priv(t, sb)
	slot := fs.allocSlot(t, priv)
	if slot >= MaxSlots {
		return 0 // out of extent slots: ENOSPC
	}
	ino, err := fs.gIget.Call1(t, uint64(sb))
	if err != nil || ino == 0 {
		fs.freeSlot(t, priv, slot)
		return 0
	}
	nlink := uint64(1)
	if mode == vfs.ModeDir {
		nlink = 2
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "mode"), mode) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "nlink"), nlink) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "private"), slot) != nil {
		fs.freeSlot(t, priv, slot)
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	// Journal the record before linking the entry: a crash between the
	// two leaves a committed record a future mount recovers, never a
	// file that silently vanishes.
	if !fs.commitTxn(t, sb, priv, []jrec{{slot: slot, used: 1,
		parent: fs.parentSlot(t, priv, dir), mode: mode, target: slot, name: nameBytes}}) {
		fs.freeSlot(t, priv, slot)
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	if fs.addDirent(t, priv, dir, ino, nameBytes, 0, slot) == 0 {
		_ = fs.commitTxn(t, sb, priv, []jrec{{slot: slot, used: 0}})
		fs.freeSlot(t, priv, slot)
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	return ino
}

// findEntry walks the directory list for (dir, name); name == nil
// matches on inode instead. dir == 0 matches any directory.
func (fs *FS) findEntry(t *core.Thread, sb mem.Addr, dir uint64, name []byte, inode uint64) (entry, prev mem.Addr) {
	priv := fs.priv(t, sb)
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	for cur != 0 {
		d, _ := t.ReadU64(fs.deField(mem.Addr(cur), "dir"))
		if d == dir || dir == 0 {
			if name != nil {
				got, err := t.ReadBytes(fs.deField(mem.Addr(cur), "name"), uint64(len(name)+1))
				if err == nil && bytes.Equal(got[:len(name)], name) && got[len(name)] == 0 {
					return mem.Addr(cur), prev
				}
			} else {
				ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
				if ino == inode {
					return mem.Addr(cur), prev
				}
			}
		}
		prev = mem.Addr(cur)
		cur, _ = t.ReadU64(fs.deField(mem.Addr(cur), "next"))
	}
	return 0, 0
}

func (fs *FS) lookup(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3]
	if nlen > vfs.NameMax {
		return 0
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		return 0
	}
	de, _ := fs.findEntry(t, sb, dir, nameBytes, 0)
	if de == 0 {
		return 0
	}
	ino, _ := t.ReadU64(fs.deField(de, "inode"))
	return ino
}

// readdir returns the pos-th entry of dir (its inode address), writing
// the name into the kernel's lent buffer.
func (fs *FS) readdir(t *core.Thread, args []uint64) uint64 {
	sb, dir, pos, buf := mem.Addr(args[0]), args[1], args[2], mem.Addr(args[3])
	priv := fs.priv(t, sb)
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	seen := uint64(0)
	for cur != 0 {
		d, _ := t.ReadU64(fs.deField(mem.Addr(cur), "dir"))
		if d == dir {
			if seen == pos {
				name, err := t.ReadBytes(fs.deField(mem.Addr(cur), "name"), vfs.NameMax+1)
				if err != nil || t.Write(buf, name) != nil {
					return 0
				}
				ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
				return ino
			}
			seen++
		}
		cur, _ = t.ReadU64(fs.deField(mem.Addr(cur), "next"))
	}
	return 0
}

// rename relinks the entry in memory and journals its directory-table
// record rewrite (new parent, new name). A non-zero victim is the inode
// the move replaces: its record kill rides in the same transaction, so
// the disk never holds two live (parent, name) records — the crash
// window the old rename-then-unlink sequence left open.
func (fs *FS) rename(t *core.Thread, args []uint64) uint64 {
	sb, olddir, inode, newdir, name, nlen, victim := mem.Addr(args[0]), args[1], args[2], args[3], mem.Addr(args[4]), args[5], args[6]
	if nlen > vfs.NameMax {
		return kernel.Err(kernel.EINVAL)
	}
	priv := fs.priv(t, sb)
	de, _ := fs.findEntry(t, sb, olddir, nil, inode)
	if de == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	slot, _ := t.ReadU64(fs.deField(de, "slot"))
	target, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "private"))
	mode, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "mode"))
	size, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "size"))
	txn := []jrec{{slot: slot, used: 1, parent: fs.parentSlot(t, priv, newdir),
		mode: mode, size: size, target: target, name: nameBytes}}
	var vde, vprev mem.Addr
	if victim != 0 {
		vde, vprev = fs.findEntry(t, sb, newdir, nil, victim)
		if vde == 0 {
			return kernel.Err(kernel.ENOENT)
		}
		vslot, _ := t.ReadU64(fs.deField(vde, "slot"))
		txn = append(txn, jrec{slot: vslot, used: 0})
	}
	if !fs.commitTxn(t, sb, priv, txn) {
		return kernel.Err(kernel.EIO)
	}
	if t.WriteU64(fs.deField(de, "dir"), newdir) != nil ||
		t.WriteU64(fs.deField(de, "recsize"), size) != nil ||
		t.Write(fs.deField(de, "name"), append(nameBytes, 0)) != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if victim != 0 {
		return fs.removeLinkMem(t, priv, vde, vprev, victim)
	}
	return 0
}

// exchange atomically swaps two directory entries: each record takes
// the other's (parent, name), journaled as one transaction so a crash
// lands on either both swapped or neither.
func (fs *FS) exchange(t *core.Thread, args []uint64) uint64 {
	sb, dira, inoa, dirb, inob := mem.Addr(args[0]), args[1], args[2], args[3], args[4]
	priv := fs.priv(t, sb)
	dea, _ := fs.findEntry(t, sb, dira, nil, inoa)
	deb, _ := fs.findEntry(t, sb, dirb, nil, inob)
	if dea == 0 || deb == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	namea, erra := t.ReadBytes(fs.deField(dea, "name"), vfs.NameMax+1)
	nameb, errb := t.ReadBytes(fs.deField(deb, "name"), vfs.NameMax+1)
	if erra != nil || errb != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if i := bytes.IndexByte(namea, 0); i >= 0 {
		namea = namea[:i]
	}
	if i := bytes.IndexByte(nameb, 0); i >= 0 {
		nameb = nameb[:i]
	}
	slota, _ := t.ReadU64(fs.deField(dea, "slot"))
	slotb, _ := t.ReadU64(fs.deField(deb, "slot"))
	ta, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inoa), "private"))
	tb, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inob), "private"))
	ma, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inoa), "mode"))
	mb, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inob), "mode"))
	sza, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inoa), "size"))
	szb, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inob), "size"))
	pa := fs.parentSlot(t, priv, dira)
	pb := fs.parentSlot(t, priv, dirb)
	txn := []jrec{
		{slot: slota, used: 1, parent: pb, mode: ma, size: sza, target: ta, name: nameb},
		{slot: slotb, used: 1, parent: pa, mode: mb, size: szb, target: tb, name: namea},
	}
	if !fs.commitTxn(t, sb, priv, txn) {
		return kernel.Err(kernel.EIO)
	}
	if t.WriteU64(fs.deField(dea, "dir"), dirb) != nil ||
		t.WriteU64(fs.deField(dea, "recsize"), sza) != nil ||
		t.Write(fs.deField(dea, "name"), append(append([]byte{}, nameb...), 0)) != nil ||
		t.WriteU64(fs.deField(deb, "dir"), dira) != nil ||
		t.WriteU64(fs.deField(deb, "recsize"), szb) != nil ||
		t.Write(fs.deField(deb, "name"), append(append([]byte{}, namea...), 0)) != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// link adds a second directory entry over an existing inode's extent:
// a fresh record slot whose target is the shared extent. nlink is the
// number of live records targeting the extent, so recovery recounts it
// from the table.
func (fs *FS) link(t *core.Thread, args []uint64) uint64 {
	sb, dir, inode, name, nlen := mem.Addr(args[0]), args[1], args[2], mem.Addr(args[3]), args[4]
	if nlen > vfs.NameMax {
		return kernel.Err(kernel.EINVAL)
	}
	priv := fs.priv(t, sb)
	slot := fs.allocSlot(t, priv)
	if slot >= MaxSlots {
		return kernel.Err(kernel.ENOSPC)
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		fs.freeSlot(t, priv, slot)
		return kernel.Err(kernel.EFAULT)
	}
	target, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "private"))
	mode, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "mode"))
	size, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "size"))
	if !fs.commitTxn(t, sb, priv, []jrec{{slot: slot, used: 1,
		parent: fs.parentSlot(t, priv, dir), mode: mode, size: size, target: target, name: nameBytes}}) {
		fs.freeSlot(t, priv, slot)
		return kernel.Err(kernel.EIO)
	}
	if fs.addDirent(t, priv, dir, inode, nameBytes, size, slot) == 0 {
		_ = fs.commitTxn(t, sb, priv, []jrec{{slot: slot, used: 0}})
		fs.freeSlot(t, priv, slot)
		return kernel.Err(kernel.ENOMEM)
	}
	nlink, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "nlink"))
	if t.WriteU64(fs.V.InodeField(mem.Addr(inode), "nlink"), nlink+1) != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// removeLinkMem tears down the in-memory side of a dead directory
// entry whose on-disk record kill has already committed: splice the
// dirent out, reclaim slots, and release the inode when its last link
// died. The record slot is freed unless it doubles as the extent slot
// of a still-linked inode; the extent slot is freed only with the last
// link.
func (fs *FS) removeLinkMem(t *core.Thread, priv mem.Addr, de, prev mem.Addr, inode uint64) uint64 {
	slot, _ := t.ReadU64(fs.deField(de, "slot"))
	target, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "private"))
	mode, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "mode"))
	nlink, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "nlink"))
	next, _ := t.ReadU64(fs.deField(de, "next"))
	if prev == 0 {
		if err := t.WriteU64(fs.pvField(priv, "head"), next); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	} else if err := t.WriteU64(fs.deField(prev, "next"), next); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if _, err := fs.gKfree.Call1(t, uint64(de)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if mode != vfs.ModeDir && nlink > 1 {
		if slot != target {
			fs.freeSlot(t, priv, slot)
		}
		if err := t.WriteU64(fs.V.InodeField(mem.Addr(inode), "nlink"), nlink-1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	fs.freeSlot(t, priv, slot)
	if target != slot {
		fs.freeSlot(t, priv, target)
	}
	if _, err := fs.gIput.Call1(t, inode); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (fs *FS) unlink(t *core.Thread, args []uint64) uint64 {
	sb, dir, inode := mem.Addr(args[0]), args[1], args[2]
	priv := fs.priv(t, sb)
	de, prev := fs.findEntry(t, sb, dir, nil, inode)
	if de == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	// Journal the record kill first: better a crash that forgets an
	// unlink was in flight than one that resurrects a half-removed file.
	slot, _ := t.ReadU64(fs.deField(de, "slot"))
	if !fs.commitTxn(t, sb, priv, []jrec{{slot: slot, used: 0}}) {
		return kernel.Err(kernel.EIO)
	}
	return fs.removeLinkMem(t, priv, de, prev, inode)
}

// extent returns the first sector of (inode, page idx).
func (fs *FS) extent(t *core.Thread, ino mem.Addr, idx uint64) uint64 {
	slot, _ := t.ReadU64(fs.V.InodeField(ino, "private"))
	return slot*SectorsPerFile + idx*SectorsPerPage
}

// readpage pulls the page's sectors from the backing disk. The
// destination is the page-cache page whose WRITE capability the VFS
// transferred for exactly this call. Bytes beyond the inode's logical
// size are zeroed rather than read: extent slots are recycled across
// file lifetimes, and a new file must never see a dead file's sectors.
func (fs *FS) readpage(t *core.Thread, args []uint64) uint64 {
	sb, ino, idx, page := mem.Addr(args[0]), mem.Addr(args[1]), args[2], args[3]
	if idx >= MaxFilePages {
		return kernel.Err(kernel.ENOSPC)
	}
	size, _ := t.ReadU64(fs.V.InodeField(ino, "size"))
	start := idx * mem.PageSize
	if start >= size {
		// Wholly past EOF: a hole, not a disk read.
		if err := t.Zero(mem.Addr(page), mem.PageSize); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gDmReadSectors.Call4(t, dev, fs.extent(t, ino, idx), page, mem.PageSize)
	if err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EIO)
	}
	if valid := size - start; valid < mem.PageSize {
		if err := t.Zero(mem.Addr(page)+mem.Addr(valid), mem.PageSize-valid); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

// writepage persists the clean page; the REF(struct page) capability
// received from the writepage contract is what pc_writeback checks. The
// inode's current size is folded into the directory-table record so a
// remount recovers it. When CmdTamper has armed the compromise, the
// module first scribbles on the page it was asked to persist — a write
// its REF capability does not permit, so LXFI stops it; the stock
// kernel lets the corruption reach the disk.
func (fs *FS) writepage(t *core.Thread, args []uint64) uint64 {
	sb, ino, idx, page := mem.Addr(args[0]), mem.Addr(args[1]), args[2], args[3]
	if idx >= MaxFilePages {
		return kernel.Err(kernel.ENOSPC)
	}
	priv := fs.priv(t, sb)
	if tamper, _ := t.ReadU64(fs.pvField(priv, "tamper")); tamper != 0 {
		if err := t.WriteU64(mem.Addr(page), TamperValue); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := fs.gPcWriteback.Call3(t, dev, fs.extent(t, ino, idx), page)
	if err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EIO)
	}
	// Fold the size into every record of the inode's link group — but
	// only the records whose persisted size lags (the dirent caches it),
	// so a multi-page sync rewrites each record once, not once per page.
	// All links must carry the size: any of them can be the survivor of
	// a later unlink, and recovery takes the freshest size it finds. A
	// missing entry (concurrent unlink) just skips the update.
	size, _ := t.ReadU64(fs.V.InodeField(ino, "size"))
	target, _ := t.ReadU64(fs.V.InodeField(ino, "private"))
	mode, _ := t.ReadU64(fs.V.InodeField(ino, "mode"))
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	for cur != 0 {
		de := mem.Addr(cur)
		cur, _ = t.ReadU64(fs.deField(de, "next"))
		if got, _ := t.ReadU64(fs.deField(de, "inode")); got != uint64(ino) {
			continue
		}
		if cached, _ := t.ReadU64(fs.deField(de, "recsize")); cached == size {
			continue
		}
		dir, _ := t.ReadU64(fs.deField(de, "dir"))
		name, err := t.ReadBytes(fs.deField(de, "name"), vfs.NameMax+1)
		if err != nil {
			continue
		}
		if i := bytes.IndexByte(name, 0); i >= 0 {
			name = name[:i]
		}
		slot, _ := t.ReadU64(fs.deField(de, "slot"))
		// A same-slot size refresh is a single-sector overwrite — atomic
		// at the disk's write granularity, so it skips the journal and
		// goes straight to the directory table.
		if fs.applyRec(t, sb, priv, jrec{slot: slot, used: 1,
			parent: fs.parentSlot(t, priv, dir), mode: mode, size: size,
			target: target, name: name}) {
			_ = t.WriteU64(fs.deField(de, "recsize"), size)
		}
	}
	return 0
}

// ioctl carries the deliberate compromise vectors: CmdTamper arms the
// corrupted writepage, CmdPokeDisk aims a raw sector write at an
// attacker-chosen device.
func (fs *FS) ioctl(t *core.Thread, args []uint64) uint64 {
	sb, cmd, arg := mem.Addr(args[0]), args[1], args[2]
	switch cmd {
	case CmdTamper:
		priv := fs.priv(t, sb)
		if err := t.WriteU64(fs.pvField(priv, "tamper"), 1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	case CmdPokeDisk:
		priv := fs.priv(t, sb)
		buf, _ := t.ReadU64(fs.pvField(priv, "recbuf"))
		if err := t.WriteU64(mem.Addr(buf), TamperValue); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		ret, err := fs.gDmWriteSectors.Call4(t, arg, 0, buf, RecSize)
		if err != nil || kernel.IsErr(ret) {
			return kernel.Err(kernel.EIO)
		}
		return 0
	}
	return kernel.Err(kernel.EINVAL)
}

// Package minixsim is a simulated minix-style block-backed filesystem
// module: file data is persisted to a RAM disk of the blockdev substrate
// in fixed per-inode extents. readpage pulls sectors into the page cache
// with dm_read_sectors (which checks WRITE ownership of the destination
// page — held precisely while the VFS has transferred it), and writepage
// persists clean pages through pc_writeback, proving ownership with the
// REF(struct page) capability the writepage contract hands it.
//
// Directory entries live in module memory (this simulation does not
// persist the namespace); the data path is what exercises the
// cross-substrate story: an isolated filesystem module mounted on the
// isolated block layer.
package minixsim

import (
	"bytes"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/vfs"
)

// FsID is the filesystem id minixsim registers.
const FsID = 2

// On-disk geometry: every inode owns a fixed extent of MaxFilePages
// pages; extent slots are handed out round-robin per mount.
const (
	SectorsPerPage = mem.PageSize / blockdev.SectorSize
	MaxFilePages   = 4
	SectorsPerFile = MaxFilePages * SectorsPerPage
	MaxSlots       = 1024
	// DiskSectors is the disk size a mount expects.
	DiskSectors = MaxSlots * SectorsPerFile
)

// Layout names.
const (
	Dirent = "struct minix_dirent"
	SbInfo = "struct minix_sb_info"
)

// FS is the loaded minixsim module.
type FS struct {
	M *core.Module
	K *kernel.Kernel
	V *vfs.VFS

	deLay   *layout.Struct
	privLay *layout.Struct
}

// Load loads the module and runs its init function. The kernel must
// have both the vfs and blockdev substrates initialized.
func Load(t *core.Thread, k *kernel.Kernel, v *vfs.VFS) (*FS, error) {
	fs := &FS{K: k, V: v}
	fs.deLay = defineOnce(k, Dirent,
		layout.F("next", 8),
		layout.F("dir", 8),
		layout.F("inode", 8),
		layout.F("name", vfs.NameMax+1),
	)
	fs.privLay = defineOnce(k, SbInfo,
		layout.F("head", 8),
		layout.F("root", 8),
		layout.F("nextslot", 8),
		layout.F("freestack", 8), // array of reusable extent slots
		layout.F("freecount", 8),
	)

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name: "minixsim",
		Imports: []string{"register_filesystem", "iget", "iput", "kmalloc", "kfree",
			"dm_read_sectors", "pc_writeback", "printk"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "mount", Type: vfs.FsMount, Impl: fs.mount},
			{Name: "kill_sb", Type: vfs.FsKillSB, Impl: fs.killSB},
			{Name: "create", Type: vfs.FsCreate, Impl: fs.createFn},
			{Name: "lookup", Type: vfs.FsLookup, Impl: fs.lookup},
			{Name: "unlink", Type: vfs.FsUnlink, Impl: fs.unlink},
			{Name: "readpage", Type: vfs.FsReadPage, Impl: fs.readpage},
			{Name: "writepage", Type: vfs.FsWritePage, Impl: fs.writepage},
			{Name: "ioctl", Type: vfs.FsIoctl, Impl: fs.ioctl},
			{Name: "init", Impl: fs.init},
		},
	})
	if err != nil {
		return nil, err
	}
	fs.M = m
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return fs, nil
}

func defineOnce(k *kernel.Kernel, name string, fields ...layout.Field) *layout.Struct {
	if s, ok := k.Sys.Layouts.Get(name); ok {
		return s
	}
	return k.Sys.Layouts.Define(name, fields...)
}

type initError struct{ err error }

func (e *initError) Error() string { return "minixsim: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's fs_operations table address.
func (fs *FS) Ops() mem.Addr { return fs.M.Data }

func (fs *FS) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for _, slot := range []string{"mount", "kill_sb", "create", "lookup", "unlink", "readpage", "writepage", "ioctl"} {
		if err := t.WriteU64(fs.V.OpsSlot(fs.Ops(), slot), uint64(mod.Funcs[slot].Addr)); err != nil {
			return 1
		}
	}
	if ret, err := t.CallKernel("register_filesystem", FsID, uint64(fs.Ops())); err != nil || kernel.IsErr(ret) {
		return 2
	}
	return 0
}

func (fs *FS) deField(de mem.Addr, f string) mem.Addr { return de + mem.Addr(fs.deLay.Off(f)) }
func (fs *FS) pvField(pv mem.Addr, f string) mem.Addr { return pv + mem.Addr(fs.privLay.Off(f)) }
func (fs *FS) priv(t *core.Thread, sb mem.Addr) mem.Addr {
	p, _ := t.ReadU64(fs.V.SBField(sb, "private"))
	return mem.Addr(p)
}

func (fs *FS) mount(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv, err := t.CallKernel("kmalloc", fs.privLay.Size)
	if err != nil || priv == 0 {
		return 0
	}
	stack, err := t.CallKernel("kmalloc", 8*MaxSlots)
	if err != nil || stack == 0 {
		_, _ = t.CallKernel("kfree", priv)
		return 0
	}
	root, err := t.CallKernel("iget", uint64(sb))
	if err != nil || root == 0 {
		_, _ = t.CallKernel("kfree", stack)
		_, _ = t.CallKernel("kfree", priv)
		return 0
	}
	if t.WriteU64(fs.V.InodeField(mem.Addr(root), "mode"), vfs.ModeDir) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(root), "nlink"), 2) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "head"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "root"), root) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "nextslot"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "freestack"), stack) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "freecount"), 0) != nil ||
		t.WriteU64(fs.V.SBField(sb, "private"), priv) != nil ||
		// Declare the per-file capacity so the VFS rejects oversized
		// writes up front instead of caching pages that can never be
		// persisted.
		t.WriteU64(fs.V.SBField(sb, "maxbytes"), MaxFilePages*mem.PageSize) != nil {
		_, _ = t.CallKernel("iput", root)
		_, _ = t.CallKernel("kfree", stack)
		_, _ = t.CallKernel("kfree", priv)
		return 0
	}
	return root
}

func (fs *FS) killSB(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv := fs.priv(t, sb)
	if priv == 0 {
		return 0
	}
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	for cur != 0 {
		next, _ := t.ReadU64(fs.deField(mem.Addr(cur), "next"))
		ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
		_, _ = t.CallKernel("iput", ino)
		_, _ = t.CallKernel("kfree", cur)
		cur = next
	}
	root, _ := t.ReadU64(fs.pvField(priv, "root"))
	stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
	_, _ = t.CallKernel("iput", root)
	_, _ = t.CallKernel("kfree", stack)
	_, _ = t.CallKernel("kfree", uint64(priv))
	return 0
}

// allocSlot hands out an extent slot: a previously freed one if any,
// else the next never-used one. Returns MaxSlots when the disk is full —
// slots are never aliased while their file is alive.
func (fs *FS) allocSlot(t *core.Thread, priv mem.Addr) uint64 {
	fc, _ := t.ReadU64(fs.pvField(priv, "freecount"))
	if fc > 0 {
		stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
		slot, _ := t.ReadU64(mem.Addr(stack) + mem.Addr(8*(fc-1)))
		if t.WriteU64(fs.pvField(priv, "freecount"), fc-1) != nil {
			return MaxSlots
		}
		return slot
	}
	next, _ := t.ReadU64(fs.pvField(priv, "nextslot"))
	if next >= MaxSlots {
		return MaxSlots
	}
	if t.WriteU64(fs.pvField(priv, "nextslot"), next+1) != nil {
		return MaxSlots
	}
	return next
}

// freeSlot returns an extent slot to the free stack on unlink.
func (fs *FS) freeSlot(t *core.Thread, priv mem.Addr, slot uint64) {
	fc, _ := t.ReadU64(fs.pvField(priv, "freecount"))
	stack, _ := t.ReadU64(fs.pvField(priv, "freestack"))
	if fc >= MaxSlots {
		return
	}
	if t.WriteU64(mem.Addr(stack)+mem.Addr(8*fc), slot) == nil {
		_ = t.WriteU64(fs.pvField(priv, "freecount"), fc+1)
	}
}

func (fs *FS) createFn(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen, mode := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3], args[4]
	if nlen > vfs.NameMax {
		return 0
	}
	priv := fs.priv(t, sb)
	slot := fs.allocSlot(t, priv)
	if slot >= MaxSlots {
		return 0 // out of extent slots: ENOSPC
	}
	ino, err := t.CallKernel("iget", uint64(sb))
	if err != nil || ino == 0 {
		fs.freeSlot(t, priv, slot)
		return 0
	}
	nlink := uint64(1)
	if mode == vfs.ModeDir {
		nlink = 2
	}
	if t.WriteU64(fs.V.InodeField(mem.Addr(ino), "mode"), mode) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "nlink"), nlink) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "private"), slot) != nil {
		fs.freeSlot(t, priv, slot)
		_, _ = t.CallKernel("iput", ino)
		return 0
	}
	de, err := t.CallKernel("kmalloc", fs.deLay.Size)
	if err != nil || de == 0 {
		fs.freeSlot(t, priv, slot)
		_, _ = t.CallKernel("iput", ino)
		return 0
	}
	head, _ := t.ReadU64(fs.pvField(priv, "head"))
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "next"), head) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "dir"), dir) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "inode"), ino) != nil ||
		t.Write(fs.deField(mem.Addr(de), "name"), append(nameBytes, 0)) != nil ||
		t.WriteU64(fs.pvField(priv, "head"), de) != nil {
		fs.freeSlot(t, priv, slot)
		_, _ = t.CallKernel("kfree", de)
		_, _ = t.CallKernel("iput", ino)
		return 0
	}
	return ino
}

func (fs *FS) findEntry(t *core.Thread, sb mem.Addr, dir uint64, name []byte, inode uint64) (entry, prev mem.Addr) {
	priv := fs.priv(t, sb)
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	for cur != 0 {
		d, _ := t.ReadU64(fs.deField(mem.Addr(cur), "dir"))
		if d == dir {
			if name != nil {
				got, err := t.ReadBytes(fs.deField(mem.Addr(cur), "name"), uint64(len(name)+1))
				if err == nil && bytes.Equal(got[:len(name)], name) && got[len(name)] == 0 {
					return mem.Addr(cur), prev
				}
			} else {
				ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
				if ino == inode {
					return mem.Addr(cur), prev
				}
			}
		}
		prev = mem.Addr(cur)
		cur, _ = t.ReadU64(fs.deField(mem.Addr(cur), "next"))
	}
	return 0, 0
}

func (fs *FS) lookup(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3]
	if nlen > vfs.NameMax {
		return 0
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		return 0
	}
	de, _ := fs.findEntry(t, sb, dir, nameBytes, 0)
	if de == 0 {
		return 0
	}
	ino, _ := t.ReadU64(fs.deField(de, "inode"))
	return ino
}

func (fs *FS) unlink(t *core.Thread, args []uint64) uint64 {
	sb, dir, inode := mem.Addr(args[0]), args[1], args[2]
	priv := fs.priv(t, sb)
	de, prev := fs.findEntry(t, sb, dir, nil, inode)
	if de == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	next, _ := t.ReadU64(fs.deField(de, "next"))
	if prev == 0 {
		if err := t.WriteU64(fs.pvField(priv, "head"), next); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	} else if err := t.WriteU64(fs.deField(prev, "next"), next); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	// Reclaim the extent slot before the inode goes away.
	slot, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "private"))
	fs.freeSlot(t, priv, slot)
	if _, err := t.CallKernel("kfree", uint64(de)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if _, err := t.CallKernel("iput", inode); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// extent returns the first sector of (inode, page idx).
func (fs *FS) extent(t *core.Thread, ino mem.Addr, idx uint64) uint64 {
	slot, _ := t.ReadU64(fs.V.InodeField(ino, "private"))
	return slot*SectorsPerFile + idx*SectorsPerPage
}

// readpage pulls the page's sectors from the backing disk. The
// destination is the page-cache page whose WRITE capability the VFS
// transferred for exactly this call. Bytes beyond the inode's logical
// size are zeroed rather than read: extent slots are recycled across
// file lifetimes, and a new file must never see a dead file's sectors.
func (fs *FS) readpage(t *core.Thread, args []uint64) uint64 {
	sb, ino, idx, page := mem.Addr(args[0]), mem.Addr(args[1]), args[2], args[3]
	if idx >= MaxFilePages {
		return kernel.Err(kernel.ENOSPC)
	}
	size, _ := t.ReadU64(fs.V.InodeField(ino, "size"))
	start := idx * mem.PageSize
	if start >= size {
		// Wholly past EOF: a hole, not a disk read.
		if err := t.Zero(mem.Addr(page), mem.PageSize); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := t.CallKernel("dm_read_sectors", dev, fs.extent(t, ino, idx), page, mem.PageSize)
	if err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EIO)
	}
	if valid := size - start; valid < mem.PageSize {
		if err := t.Zero(mem.Addr(page)+mem.Addr(valid), mem.PageSize-valid); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

// writepage persists the clean page; the REF(struct page) capability
// received from the writepage contract is what pc_writeback checks.
func (fs *FS) writepage(t *core.Thread, args []uint64) uint64 {
	sb, ino, idx, page := mem.Addr(args[0]), mem.Addr(args[1]), args[2], args[3]
	if idx >= MaxFilePages {
		return kernel.Err(kernel.ENOSPC)
	}
	dev, _ := t.ReadU64(fs.V.SBField(sb, "dev"))
	ret, err := t.CallKernel("pc_writeback", dev, fs.extent(t, ino, idx), page)
	if err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EIO)
	}
	return 0
}

func (fs *FS) ioctl(t *core.Thread, args []uint64) uint64 {
	return kernel.Err(kernel.EINVAL)
}

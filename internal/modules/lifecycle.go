// Package modules is the uniform module lifecycle API: a descriptor
// registry replacing the per-package Load signatures, a boot context
// that owns the kernel substrates modules bind to, and a loader that
// can load, unload, and hot-reload any registered module by name.
//
// Each module package (the subdirectories of this one) registers a
// Descriptor from its init function, naming the substrates it requires;
// the loader resolves those from the BootContext — initialising them on
// demand — and invokes the descriptor's Load. Importing
// lxfi/internal/modules/all pulls in every descriptor.
package modules

import (
	"fmt"
	"sort"
	"sync"

	"lxfi/internal/core"
)

// Instance is a loaded module instance. Every module package's load
// result (its *Proto, *Driver, *FS, *Target) implements it; callers
// that need the package-specific surface type-assert the Instance they
// got back from the loader.
type Instance interface {
	Module() *core.Module
}

// Descriptor describes one loadable module: its registry name (which
// is also its core.Module name), the substrates it requires, and its
// lifecycle hooks.
type Descriptor struct {
	// Name is the module name, e.g. "e1000" or "dm-crypt".
	Name string

	// Requires lists the substrates the module binds to, by boot-context
	// name (SubPCI, SubNet, ...). The loader initialises them on demand
	// before calling Load.
	Requires []string

	// Load boots one generation of the module against the substrates in
	// bc. opt carries module-specific options (nil selects defaults).
	Load func(t *core.Thread, bc *BootContext, opt any) (Instance, error)

	// Unload, if set, unhooks the instance from its substrates (e.g.
	// unregistering filesystem types, unbinding PCI devices) so the name
	// can be re-registered by a fresh generation. It runs before the
	// module is retired on both Unload and Reload.
	Unload func(t *core.Thread, bc *BootContext, inst Instance) error
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]*Descriptor)
)

// Register adds a descriptor to the registry. Module packages call it
// from init; registering a duplicate name panics at program start.
func Register(d Descriptor) {
	regMu.Lock()
	defer regMu.Unlock()
	if d.Name == "" || d.Load == nil {
		panic("modules: descriptor needs a name and a Load hook")
	}
	if _, dup := registry[d.Name]; dup {
		panic("modules: duplicate descriptor " + d.Name)
	}
	registry[d.Name] = &d
}

// Lookup returns the registered descriptor for name.
func Lookup(name string) (*Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := registry[name]
	return d, ok
}

// Names returns every registered module name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// mustLookup is Lookup for loader paths that already validated the
// name.
func mustLookup(name string) (*Descriptor, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("modules: no descriptor registered for %q (missing import of lxfi/internal/modules/all?)", name)
	}
	return d, nil
}

package sndintel8x0_test

import (
	"bytes"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/sndintel8x0"
	"lxfi/internal/sound"
)

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *sound.Sound, *core.Thread, *sndintel8x0.Driver) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	s := sound.Init(k)
	th := k.Sys.NewThread("snd")
	d, err := sndintel8x0.Load(th, k, s)
	if err != nil {
		t.Fatal(err)
	}
	return k, s, th, d
}

func TestPlaybackLifecycle(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, s, th, d := rig(t, mode)
		card, err := s.NewCard(th, d.Ops())
		if err != nil {
			t.Fatalf("[%v] open: %v", mode, err)
		}
		samples := bytes.Repeat([]byte{0x5A}, 512)
		if err := s.Playback(th, card, samples); err != nil {
			t.Fatalf("[%v] playback: %v", mode, err)
		}
		pos, err := s.Pointer(th, card)
		if err != nil || pos != sndintel8x0.BufferSize {
			t.Fatalf("[%v] pointer = %d, %v", mode, pos, err)
		}
		if d.Played != sndintel8x0.BufferSize {
			t.Fatalf("[%v] played = %d", mode, d.Played)
		}
		if err := s.Close(th, card); err != nil {
			t.Fatalf("[%v] close: %v", mode, err)
		}
		if mode == core.Enforce && k.Sys.Mon.LastViolation() != nil {
			t.Fatalf("[%v] violation on legit playback: %v", mode, k.Sys.Mon.LastViolation())
		}
	}
}

func TestCardsAreSeparatePrincipals(t *testing.T) {
	k, s, th, d := rig(t, core.Enforce)
	c1, err := s.NewCard(th, d.Ops())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.NewCard(th, d.Ops())
	if err != nil {
		t.Fatal(err)
	}
	buf1, _ := k.Sys.AS.ReadU64(s.CardField(c1, "buf"))
	p1, _ := d.M.Set.Lookup(c1)
	p2, _ := d.M.Set.Lookup(c2)
	probe := caps.WriteCap(mem.Addr(buf1), 8)
	if !k.Sys.Caps.Check(p1, probe) {
		t.Fatal("card 1 cannot write its own DMA buffer")
	}
	if k.Sys.Caps.Check(p2, probe) {
		t.Fatal("card 2 can write card 1's DMA buffer")
	}
}

func TestDMABufferFreedOnClose(t *testing.T) {
	k, s, th, d := rig(t, core.Enforce)
	card, _ := s.NewCard(th, d.Ops())
	buf, _ := k.Sys.AS.ReadU64(s.CardField(card, "buf"))
	if err := s.Close(th, card); err != nil {
		t.Fatal(err)
	}
	if k.Sys.Slab.Owns(mem.Addr(buf)) {
		t.Fatal("DMA buffer leaked")
	}
}

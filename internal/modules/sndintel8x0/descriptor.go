package sndintel8x0

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// Module returns the loaded core module, satisfying modules.Instance.
func (d *Driver) Module() *core.Module { return d.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "snd-intel8x0",
		Requires: []string{modules.SubSound},
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			return Load(t, bc.K, bc.Snd)
		},
	})
}

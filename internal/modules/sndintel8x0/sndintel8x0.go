// Package sndintel8x0 is the simulated snd-intel8x0 AC'97 sound driver,
// one of the two sound modules of Figure 9. Each opened card is its own
// principal; the DMA buffer belongs to that card's principal only.
package sndintel8x0

import (
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/sound"
)

// BufferSize is the AC'97 DMA buffer size.
const BufferSize = 2048

// Driver is the loaded module.
type Driver struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gKmalloc *core.Gate
	gKfree   *core.Gate
	S        *sound.Sound

	// Played counts samples the "hardware" consumed.
	Played uint64
}

// Load loads the module and installs its ops table.
func Load(t *core.Thread, k *kernel.Kernel, s *sound.Sound) (*Driver, error) {
	d := &Driver{S: s}
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "snd-intel8x0",
		Imports:  []string{"kmalloc", "kfree", "printk", "spin_lock_init", "spin_lock", "spin_unlock"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "open", Type: sound.PcmOpen, Impl: d.open},
			{Name: "close", Type: sound.PcmClose, Impl: d.close},
			{Name: "trigger", Type: sound.PcmTrigger, Impl: d.trigger},
			{Name: "pointer", Type: sound.PcmPointer, Impl: d.pointer},
			{Name: "init", Impl: d.init},
		},
	})
	if err != nil {
		return nil, err
	}
	d.M = m
	d.gKmalloc = m.Gate("kmalloc")
	d.gKfree = m.Gate("kfree")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return d, nil
}

type initError struct{ err error }

func (e *initError) Error() string { return "snd-intel8x0: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's snd_pcm_ops table address.
func (d *Driver) Ops() mem.Addr { return d.M.Data }

func (d *Driver) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for slot, fn := range map[string]string{
		"open": "open", "close": "close", "trigger": "trigger", "pointer": "pointer",
	} {
		if err := t.WriteU64(d.S.OpsSlot(mod.Data, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	return 0
}

func (d *Driver) open(t *core.Thread, args []uint64) uint64 {
	card := mem.Addr(args[0])
	buf, err := d.gKmalloc.Call1(t, BufferSize)
	if err != nil || buf == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(d.S.CardField(card, "buf"), buf); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(d.S.CardField(card, "buflen"), BufferSize); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (d *Driver) close(t *core.Thread, args []uint64) uint64 {
	card := mem.Addr(args[0])
	buf, _ := t.ReadU64(d.S.CardField(card, "buf"))
	if buf != 0 {
		if _, err := d.gKfree.Call1(t, buf); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

func (d *Driver) trigger(t *core.Thread, args []uint64) uint64 {
	card, cmd := mem.Addr(args[0]), args[1]
	switch cmd {
	case sound.TriggerStart:
		buflen, _ := t.ReadU64(d.S.CardField(card, "buflen"))
		pos, _ := t.ReadU64(d.S.CardField(card, "pos"))
		if err := t.WriteU64(d.S.CardField(card, "pos"), pos+buflen); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		if err := t.WriteU64(d.S.CardField(card, "playing"), 1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		d.Played += buflen
		return 0
	case sound.TriggerStop:
		if err := t.WriteU64(d.S.CardField(card, "playing"), 0); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	return kernel.Err(kernel.EINVAL)
}

func (d *Driver) pointer(t *core.Thread, args []uint64) uint64 {
	pos, _ := t.ReadU64(d.S.CardField(mem.Addr(args[0]), "pos"))
	return pos
}

// Package tmpfssim is a simulated ramfs/tmpfs-style filesystem module:
// file data lives only in the kernel's page cache (readpage fills holes
// with zeroes, writepage has nothing to persist) and directory entries
// live in module-owned memory.
//
// Every mount runs as its own LXFI instance principal (named by the
// superblock), so two tmpfs mounts cannot touch each other's inodes,
// directory lists, or cached pages.
//
// Like the CVE-carrying modules of Fig. 9, the module ships a deliberate
// compromise vector: the CmdPoke ioctl performs an arbitrary 8-byte
// kernel write on behalf of the caller — the stand-in for a hijacked
// control path inside a compromised filesystem module. Under LXFI the
// poke is confined to memory the mount's principal owns; the
// cross-principal page-cache scribble it enables on the stock kernel is
// the new exploit scenario in internal/exploits.
package tmpfssim

import (
	"bytes"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/vfs"
)

// FsID is the filesystem id tmpfssim registers.
const FsID = 1

// CmdPoke is the compromised ioctl: write PokeValue at the address in
// arg.
const CmdPoke = 0x7001

// PokeValue is the marker the poke writes.
const PokeValue = 0x4141414141414141

// CmdReplay is the second compromise vector: re-issue the module's most
// recent readpage store (the exact same address and size). During the
// readpage crossing that store was legitimate — the kernel had
// transferred WRITE on the page — and it warmed the executing thread's
// check cache with an allow verdict. Replaying it after the crossing
// returned (and the transfer-back revoked the capability) is the
// cached-then-revoked attack the capability epoch exists to stop.
const CmdReplay = 0x7002

// Layout names.
const (
	Dirent = "struct tmpfs_dirent"
	SbInfo = "struct tmpfs_sb_info"
)

// FS is the loaded tmpfssim module.
type FS struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gRegisterFilesystem *core.Gate
	gIget               *core.Gate
	gIput               *core.Gate
	gKmalloc            *core.Gate
	gKfree              *core.Gate
	K                   *kernel.Kernel
	V                   *vfs.VFS

	deLay   *layout.Struct
	privLay *layout.Struct

	// lastPage remembers the most recent readpage target for CmdReplay
	// (module-local Go state, the analogue of a stashed pointer in the
	// module's data section).
	lastPage mem.Addr
}

// Load loads the module and runs its init function, which installs the
// fs_operations table and registers the filesystem.
func Load(t *core.Thread, k *kernel.Kernel, v *vfs.VFS) (*FS, error) {
	fs := &FS{K: k, V: v}
	fs.deLay = defineOnce(k, Dirent,
		layout.F("next", 8),
		layout.F("dir", 8),
		layout.F("inode", 8),
		layout.F("name", vfs.NameMax+1),
	)
	fs.privLay = defineOnce(k, SbInfo,
		layout.F("head", 8),
		layout.F("root", 8),
	)

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "tmpfssim",
		Imports:  []string{"register_filesystem", "iget", "iput", "kmalloc", "kfree", "printk"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "mount", Type: vfs.FsMount, Impl: fs.mount},
			{Name: "kill_sb", Type: vfs.FsKillSB, Impl: fs.killSB},
			{Name: "create", Type: vfs.FsCreate, Impl: fs.createFn},
			{Name: "lookup", Type: vfs.FsLookup, Impl: fs.lookup},
			{Name: "unlink", Type: vfs.FsUnlink, Impl: fs.unlink},
			{Name: "readdir", Type: vfs.FsReaddir, Impl: fs.readdir},
			{Name: "rename", Type: vfs.FsRename, Impl: fs.rename},
			{Name: "exchange", Type: vfs.FsExchange, Impl: fs.exchange},
			{Name: "link", Type: vfs.FsLink, Impl: fs.link},
			{Name: "readpage", Type: vfs.FsReadPage, Impl: fs.readpage},
			{Name: "writepage", Type: vfs.FsWritePage, Impl: fs.writepage},
			{Name: "ioctl", Type: vfs.FsIoctl, Impl: fs.ioctl},
			{Name: "init", Impl: fs.init},
		},
	})
	if err != nil {
		return nil, err
	}
	fs.M = m
	fs.gRegisterFilesystem = m.Gate("register_filesystem")
	fs.gIget = m.Gate("iget")
	fs.gIput = m.Gate("iput")
	fs.gKmalloc = m.Gate("kmalloc")
	fs.gKfree = m.Gate("kfree")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return fs, nil
}

func defineOnce(k *kernel.Kernel, name string, fields ...layout.Field) *layout.Struct {
	if s, ok := k.Sys.Layouts.Get(name); ok {
		return s
	}
	return k.Sys.Layouts.Define(name, fields...)
}

type initError struct{ err error }

func (e *initError) Error() string { return "tmpfssim: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's fs_operations table address.
func (fs *FS) Ops() mem.Addr { return fs.M.Data }

func (fs *FS) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for _, slot := range []string{"mount", "kill_sb", "create", "lookup", "unlink", "readdir", "rename", "exchange", "link", "readpage", "writepage", "ioctl"} {
		if err := t.WriteU64(fs.V.OpsSlot(fs.Ops(), slot), uint64(mod.Funcs[slot].Addr)); err != nil {
			return 1
		}
	}
	if ret, err := fs.gRegisterFilesystem.Call2(t, FsID, uint64(fs.Ops())); err != nil || kernel.IsErr(ret) {
		return 2
	}
	return 0
}

func (fs *FS) deField(de mem.Addr, f string) mem.Addr { return de + mem.Addr(fs.deLay.Off(f)) }
func (fs *FS) pvField(pv mem.Addr, f string) mem.Addr { return pv + mem.Addr(fs.privLay.Off(f)) }
func (fs *FS) priv(t *core.Thread, sb mem.Addr) mem.Addr {
	p, _ := t.ReadU64(fs.V.SBField(sb, "private"))
	return mem.Addr(p)
}

func (fs *FS) mount(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv, err := fs.gKmalloc.Call1(t, fs.privLay.Size)
	if err != nil || priv == 0 {
		return 0
	}
	root, err := fs.gIget.Call1(t, uint64(sb))
	if err != nil || root == 0 {
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	if t.WriteU64(fs.V.InodeField(mem.Addr(root), "mode"), vfs.ModeDir) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(root), "nlink"), 2) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "head"), 0) != nil ||
		t.WriteU64(fs.pvField(mem.Addr(priv), "root"), root) != nil ||
		t.WriteU64(fs.V.SBField(sb, "private"), priv) != nil ||
		// Page cache is the only copy of tmpfs data: tell the VFS never
		// to evict this mount.
		t.WriteU64(fs.V.SBField(sb, "flags"), vfs.SBMemOnly) != nil {
		_, _ = fs.gIput.Call1(t, root)
		_, _ = fs.gKfree.Call1(t, priv)
		return 0
	}
	return root
}

func (fs *FS) killSB(t *core.Thread, args []uint64) uint64 {
	sb := mem.Addr(args[0])
	priv := fs.priv(t, sb)
	if priv == 0 {
		return 0
	}
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	// Hardlinked inodes appear under several entries but must be
	// released exactly once.
	seen := make(map[uint64]bool)
	for cur != 0 {
		next, _ := t.ReadU64(fs.deField(mem.Addr(cur), "next"))
		ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
		if !seen[ino] {
			seen[ino] = true
			_, _ = fs.gIput.Call1(t, ino)
		}
		_, _ = fs.gKfree.Call1(t, cur)
		cur = next
	}
	root, _ := t.ReadU64(fs.pvField(priv, "root"))
	_, _ = fs.gIput.Call1(t, root)
	_, _ = fs.gKfree.Call1(t, uint64(priv))
	return 0
}

// createFn allocates the inode and prepends a directory entry to the
// mount-private list. Both objects are owned by this mount's instance
// principal: the entry via the kmalloc transfer, the inode via iget's.
func (fs *FS) createFn(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen, mode := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3], args[4]
	if nlen > vfs.NameMax {
		return 0
	}
	ino, err := fs.gIget.Call1(t, uint64(sb))
	if err != nil || ino == 0 {
		return 0
	}
	nlink := uint64(1)
	if mode == vfs.ModeDir {
		nlink = 2
	}
	if t.WriteU64(fs.V.InodeField(mem.Addr(ino), "mode"), mode) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(ino), "nlink"), nlink) != nil {
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	de, err := fs.gKmalloc.Call1(t, fs.deLay.Size)
	if err != nil || de == 0 {
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	priv := fs.priv(t, sb)
	head, _ := t.ReadU64(fs.pvField(priv, "head"))
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "next"), head) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "dir"), dir) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "inode"), ino) != nil ||
		t.Write(fs.deField(mem.Addr(de), "name"), append(nameBytes, 0)) != nil ||
		t.WriteU64(fs.pvField(priv, "head"), de) != nil {
		_, _ = fs.gKfree.Call1(t, de)
		_, _ = fs.gIput.Call1(t, ino)
		return 0
	}
	return ino
}

// findEntry walks the directory list for (dir, name); name == nil
// matches on inode instead.
func (fs *FS) findEntry(t *core.Thread, sb mem.Addr, dir uint64, name []byte, inode uint64) (entry, prev mem.Addr) {
	priv := fs.priv(t, sb)
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	for cur != 0 {
		d, _ := t.ReadU64(fs.deField(mem.Addr(cur), "dir"))
		if d == dir {
			if name != nil {
				got, err := t.ReadBytes(fs.deField(mem.Addr(cur), "name"), uint64(len(name)+1))
				if err == nil && bytes.Equal(got[:len(name)], name) && got[len(name)] == 0 {
					return mem.Addr(cur), prev
				}
			} else {
				ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
				if ino == inode {
					return mem.Addr(cur), prev
				}
			}
		}
		prev = mem.Addr(cur)
		cur, _ = t.ReadU64(fs.deField(mem.Addr(cur), "next"))
	}
	return 0, 0
}

func (fs *FS) lookup(t *core.Thread, args []uint64) uint64 {
	sb, dir, name, nlen := mem.Addr(args[0]), args[1], mem.Addr(args[2]), args[3]
	if nlen > vfs.NameMax {
		return 0
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		return 0
	}
	de, _ := fs.findEntry(t, sb, dir, nameBytes, 0)
	if de == 0 {
		return 0
	}
	ino, _ := t.ReadU64(fs.deField(de, "inode"))
	return ino
}

// readdir returns the pos-th entry of dir: the entry's inode address,
// with its name written into the kernel's lent buffer (the module holds
// WRITE on it for exactly this call). Returns 0 past the end.
func (fs *FS) readdir(t *core.Thread, args []uint64) uint64 {
	sb, dir, pos, buf := mem.Addr(args[0]), args[1], args[2], mem.Addr(args[3])
	priv := fs.priv(t, sb)
	cur, _ := t.ReadU64(fs.pvField(priv, "head"))
	seen := uint64(0)
	for cur != 0 {
		d, _ := t.ReadU64(fs.deField(mem.Addr(cur), "dir"))
		if d == dir {
			if seen == pos {
				name, err := t.ReadBytes(fs.deField(mem.Addr(cur), "name"), vfs.NameMax+1)
				if err != nil || t.Write(buf, name) != nil {
					return 0
				}
				ino, _ := t.ReadU64(fs.deField(mem.Addr(cur), "inode"))
				return ino
			}
			seen++
		}
		cur, _ = t.ReadU64(fs.deField(mem.Addr(cur), "next"))
	}
	return 0
}

// rename relinks the directory entry of inode from olddir to newdir
// under a new name; the entry object itself stays where it is. A
// non-zero victim is the inode the move replaces: its entry is removed
// in the same crossing, so the kernel never sees a window with two
// (newdir, name) entries.
func (fs *FS) rename(t *core.Thread, args []uint64) uint64 {
	sb, olddir, inode, newdir, name, nlen, victim := mem.Addr(args[0]), args[1], args[2], args[3], mem.Addr(args[4]), args[5], args[6]
	if nlen > vfs.NameMax {
		return kernel.Err(kernel.EINVAL)
	}
	de, _ := fs.findEntry(t, sb, olddir, nil, inode)
	if de == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	if victim != 0 {
		if ret := fs.removeLink(t, sb, newdir, victim); kernel.IsErr(ret) {
			return ret
		}
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil ||
		t.WriteU64(fs.deField(de, "dir"), newdir) != nil ||
		t.Write(fs.deField(de, "name"), append(nameBytes, 0)) != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// exchange atomically swaps the directory entries of two inodes: each
// entry takes the other's (dir, name) slot.
func (fs *FS) exchange(t *core.Thread, args []uint64) uint64 {
	sb, dira, inoa, dirb, inob := mem.Addr(args[0]), args[1], args[2], args[3], args[4]
	dea, _ := fs.findEntry(t, sb, dira, nil, inoa)
	deb, _ := fs.findEntry(t, sb, dirb, nil, inob)
	if dea == 0 || deb == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	namea, erra := t.ReadBytes(fs.deField(dea, "name"), vfs.NameMax+1)
	nameb, errb := t.ReadBytes(fs.deField(deb, "name"), vfs.NameMax+1)
	if erra != nil || errb != nil ||
		t.WriteU64(fs.deField(dea, "dir"), dirb) != nil ||
		t.Write(fs.deField(dea, "name"), nameb) != nil ||
		t.WriteU64(fs.deField(deb, "dir"), dira) != nil ||
		t.Write(fs.deField(deb, "name"), namea) != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// link adds a second directory entry for an existing inode and bumps
// its link count; the entry does not take an extra inode reference, so
// removeLink only releases the inode when the last link dies.
func (fs *FS) link(t *core.Thread, args []uint64) uint64 {
	sb, dir, inode, name, nlen := mem.Addr(args[0]), args[1], args[2], mem.Addr(args[3]), args[4]
	if nlen > vfs.NameMax {
		return kernel.Err(kernel.EINVAL)
	}
	nameBytes, err := t.ReadBytes(name, nlen)
	if err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	de, err := fs.gKmalloc.Call1(t, fs.deLay.Size)
	if err != nil || de == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	priv := fs.priv(t, sb)
	head, _ := t.ReadU64(fs.pvField(priv, "head"))
	nlink, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "nlink"))
	if t.WriteU64(fs.deField(mem.Addr(de), "next"), head) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "dir"), dir) != nil ||
		t.WriteU64(fs.deField(mem.Addr(de), "inode"), inode) != nil ||
		t.Write(fs.deField(mem.Addr(de), "name"), append(nameBytes, 0)) != nil ||
		t.WriteU64(fs.pvField(priv, "head"), de) != nil ||
		t.WriteU64(fs.V.InodeField(mem.Addr(inode), "nlink"), nlink+1) != nil {
		_, _ = fs.gKfree.Call1(t, de)
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// removeLink splices out the (dir, inode) entry and drops one link:
// the inode itself is released only when its last link disappears.
func (fs *FS) removeLink(t *core.Thread, sb mem.Addr, dir, inode uint64) uint64 {
	de, prev := fs.findEntry(t, sb, dir, nil, inode)
	if de == 0 {
		return kernel.Err(kernel.ENOENT)
	}
	next, _ := t.ReadU64(fs.deField(de, "next"))
	if prev == 0 {
		priv := fs.priv(t, sb)
		if err := t.WriteU64(fs.pvField(priv, "head"), next); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	} else if err := t.WriteU64(fs.deField(prev, "next"), next); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if _, err := fs.gKfree.Call1(t, uint64(de)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	mode, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "mode"))
	nlink, _ := t.ReadU64(fs.V.InodeField(mem.Addr(inode), "nlink"))
	if mode != vfs.ModeDir && nlink > 1 {
		if err := t.WriteU64(fs.V.InodeField(mem.Addr(inode), "nlink"), nlink-1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	if _, err := fs.gIput.Call1(t, inode); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (fs *FS) unlink(t *core.Thread, args []uint64) uint64 {
	sb, dir, inode := mem.Addr(args[0]), args[1], args[2]
	return fs.removeLink(t, sb, dir, inode)
}

// readpage fills page-cache holes with zeroes: tmpfs has no backing
// store, so any page not already cached is sparse.
func (fs *FS) readpage(t *core.Thread, args []uint64) uint64 {
	fs.lastPage = mem.Addr(args[3])
	if err := t.Zero(mem.Addr(args[3]), mem.PageSize); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// writepage has nothing to persist; the page cache is the backing store.
func (fs *FS) writepage(t *core.Thread, args []uint64) uint64 { return 0 }

// ioctl carries the deliberate compromise vector: CmdPoke writes
// PokeValue through an attacker-supplied pointer.
func (fs *FS) ioctl(t *core.Thread, args []uint64) uint64 {
	cmd, arg := args[1], args[2]
	if cmd == CmdPoke {
		if err := t.WriteU64(mem.Addr(arg), PokeValue); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	if cmd == CmdReplay {
		// Re-issue the exact store readpage made while it legitimately
		// owned the page: same principal, same address, same size — the
		// verdict for it is sitting in the thread's check cache.
		if fs.lastPage == 0 {
			return kernel.Err(kernel.EINVAL)
		}
		if err := t.Zero(fs.lastPage, mem.PageSize); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	return kernel.Err(kernel.EINVAL)
}

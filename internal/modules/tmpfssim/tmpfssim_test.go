package tmpfssim_test

import (
	"bytes"
	"fmt"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/tmpfssim"
	"lxfi/internal/vfs"
)

func boot(t *testing.T, mode core.Mode) (*kernel.Kernel, *vfs.VFS, *core.Thread, *tmpfssim.FS) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	v := vfs.Init(k, nil)
	th := k.Sys.NewThread("test")
	fs, err := tmpfssim.Load(th, k, v)
	if err != nil {
		t.Fatal(err)
	}
	return k, v, th, fs
}

func TestDirectoryList(t *testing.T) {
	_, v, th, _ := boot(t, core.Enforce)
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var inos []mem.Addr
	for i := 0; i < 8; i++ {
		ino, err := v.Create(th, sb, fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		inos = append(inos, ino)
	}
	// Unlink one in the middle; the rest must still resolve through the
	// module's lookup even after the dentry cache is bypassed.
	if err := v.Unlink(th, sb, "/f3"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got, err := v.Lookup(th, sb, fmt.Sprintf("/f%d", i))
		if i == 3 {
			if err == nil {
				t.Fatal("unlinked file still resolves")
			}
			continue
		}
		if err != nil || got != inos[i] {
			t.Fatalf("f%d: got %#x, %v", i, uint64(got), err)
		}
	}
}

func TestLookupScopedToDirectory(t *testing.T) {
	_, v, th, _ := boot(t, core.Enforce)
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Mkdir(th, sb, "/d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Mkdir(th, sb, "/d2"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/d1/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Lookup(th, sb, "/d2/x"); err == nil {
		t.Fatal("name leaked into a sibling directory")
	}
	if _, err := v.Lookup(th, sb, "/d1/x"); err != nil {
		t.Fatal(err)
	}
}

func TestReadpageZeroFills(t *testing.T) {
	_, v, th, _ := boot(t, core.Enforce)
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/sparse"); err != nil {
		t.Fatal(err)
	}
	// Writing only the second page leaves page 0 a hole.
	if _, err := v.Write(th, sb, "/sparse", mem.PageSize, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got, err := v.Read(th, sb, "/sparse", 0, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, mem.PageSize)) {
		t.Fatal("hole page not zero-filled")
	}
}

// TestDropCachesCannotEvictTmpfs: the page cache is tmpfs's only copy,
// so sync + drop_caches must not destroy file contents (the mount is
// flagged SBMemOnly).
func TestDropCachesCannotEvictTmpfs(t *testing.T) {
	_, v, th, _ := boot(t, core.Enforce)
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(th, sb, "/only-copy"); err != nil {
		t.Fatal(err)
	}
	secret := []byte("nowhere else")
	if _, err := v.Write(th, sb, "/only-copy", 0, secret); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(th, sb); err != nil {
		t.Fatal(err)
	}
	if n := v.DropCaches(sb); n != 0 {
		t.Fatalf("DropCaches evicted %d tmpfs pages", n)
	}
	got, err := v.Read(th, sb, "/only-copy", 0, uint64(len(secret)))
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("tmpfs data lost: %q, %v", got, err)
	}
}

// TestPokeSucceedsOnStock pins the stock-kernel behavior the exploit
// scenario relies on: without LXFI the compromised ioctl corrupts
// arbitrary kernel memory.
func TestPokeSucceedsOnStock(t *testing.T) {
	k, v, th, _ := boot(t, core.Off)
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := k.Sys.Statics.Alloc(8, 8)
	if _, err := v.Ioctl(th, sb, tmpfssim.CmdPoke, uint64(victim)); err != nil {
		t.Fatal(err)
	}
	got, _ := k.Sys.AS.ReadU64(victim)
	if got != tmpfssim.PokeValue {
		t.Fatalf("poke did not land: %#x", got)
	}
	if len(k.Sys.Mon.Violations()) != 0 {
		t.Fatal("stock kernel recorded a violation")
	}
}

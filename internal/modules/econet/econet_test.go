package econet_test

import (
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/econet"
	"lxfi/internal/netstack"
)

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *netstack.Stack, *core.Thread, *econet.Proto) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	st := netstack.Init(k)
	th := k.Sys.NewThread("econet")
	p, err := econet.Load(th, k, st)
	if err != nil {
		t.Fatal(err)
	}
	return k, st, th, p
}

func TestSocketCreateAndList(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		_, st, th, p := rig(t, mode)
		s1, err := st.Socket(th, econet.Family)
		if err != nil {
			t.Fatalf("[%v] socket 1: %v", mode, err)
		}
		s2, err := st.Socket(th, econet.Family)
		if err != nil {
			t.Fatalf("[%v] socket 2: %v", mode, err)
		}
		if p.SocketCount() != 2 {
			t.Fatalf("[%v] socket list = %d", mode, p.SocketCount())
		}
		if ret, err := st.Release(th, s1); err != nil || kernel.IsErr(ret) {
			t.Fatalf("[%v] release mid: ret=%d err=%v", mode, int64(ret), err)
		}
		if p.SocketCount() != 1 {
			t.Fatalf("[%v] after release = %d", mode, p.SocketCount())
		}
		if ret, err := st.Release(th, s2); err != nil || kernel.IsErr(ret) {
			t.Fatalf("[%v] release head: ret=%d err=%v", mode, int64(ret), err)
		}
		if p.SocketCount() != 0 {
			t.Fatalf("[%v] after all released = %d", mode, p.SocketCount())
		}
	}
}

func TestSendmsgCountsPerSocket(t *testing.T) {
	_, st, th, p := rig(t, core.Enforce)
	s1, _ := st.Socket(th, econet.Family)
	s2, _ := st.Socket(th, econet.Family)
	user := st.K.Sys.User.Alloc(64, 8)
	for i := 0; i < 3; i++ {
		if n, err := st.Sendmsg(th, s1, user, 10, 0); err != nil || n != 10 {
			t.Fatalf("sendmsg: n=%d err=%v", n, err)
		}
	}
	if _, err := st.Sendmsg(th, s2, user, 10, 0); err != nil {
		t.Fatal(err)
	}
	if p.TxCount(s1) != 3 || p.TxCount(s2) != 1 {
		t.Fatalf("txcounts = %d/%d", p.TxCount(s1), p.TxCount(s2))
	}
}

func TestInstanceIsolationBetweenSockets(t *testing.T) {
	// Each socket is a separate principal: socket 2's principal must not
	// hold WRITE capabilities for socket 1's private state.
	k, st, th, p := rig(t, core.Enforce)
	s1, _ := st.Socket(th, econet.Family)
	s2, _ := st.Socket(th, econet.Family)
	sk1 := p.Sk(s1)

	p1, ok := p.M.Set.Lookup(s1)
	if !ok {
		t.Fatal("socket 1 principal missing")
	}
	p2, ok := p.M.Set.Lookup(s2)
	if !ok {
		t.Fatal("socket 2 principal missing")
	}
	probe := writeCap(sk1)
	if !k.Sys.Caps.Check(p1, probe) {
		t.Fatal("socket 1 cannot write its own state")
	}
	if k.Sys.Caps.Check(p2, probe) {
		t.Fatal("socket 2 can write socket 1's state: principals not isolated")
	}
	// The global principal spans both.
	if !k.Sys.Caps.Check(p.M.Set.Global(), probe) {
		t.Fatal("global principal should span instances")
	}
}

func TestNullDerefSendmsg(t *testing.T) {
	// CVE-2010-3849: NULL destination faults inside the module.
	_, st, th, p := rig(t, core.Enforce)
	s, _ := st.Socket(th, econet.Family)
	ret, err := st.Sendmsg(th, s, 0, 10, 0)
	if err != nil {
		t.Fatalf("sendmsg transport error: %v", err)
	}
	if !kernel.IsErr(ret) || !p.LastOops {
		t.Fatalf("NULL deref not taken: ret=%d oops=%v", int64(ret), p.LastOops)
	}
}

func TestMissingPrivilegeCheckIoctl(t *testing.T) {
	// CVE-2010-3850: SIOCSIFADDR works for unprivileged callers.
	k, st, th, p := rig(t, core.Enforce)
	task := k.CreateTask("nobody", 1000)
	k.SetCurrent(th, task)
	s, _ := st.Socket(th, econet.Family)
	ret, err := st.Ioctl(th, s, econet.SIOCSIFADDR, 0x42)
	if err != nil || kernel.IsErr(ret) {
		t.Fatalf("ioctl: ret=%d err=%v", int64(ret), err)
	}
	if len(p.Stations) != 1 || p.Stations[0] != 0x42 {
		t.Fatalf("stations = %v (the missing-capable bug should let this through)", p.Stations)
	}
}

func writeCap(a mem.Addr) caps.Cap { return caps.WriteCap(a, 8) }

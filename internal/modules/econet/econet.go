// Package econet is the simulated Econet protocol module (af_econet),
// carrying the two module-side vulnerabilities of the Econet exploit
// chain from §8.1:
//
//   - CVE-2010-3849: a NULL pointer dereference in sendmsg reachable by
//     an unprivileged user (a NULL destination address).
//   - CVE-2010-3850: a missing capable(CAP_NET_ADMIN) check in the
//     SIOCSIFADDR ioctl.
//
// It is also the paper's worked example for multi-principal modules:
// every socket is its own principal, and the module keeps a linked list
// of all sockets whose cross-instance manipulation requires switching to
// the module's global principal (§3.1, Guideline 6).
package econet

import (
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
)

// Family is AF_ECONET.
const Family = 19

// SIOCSIFADDR is the station-address ioctl with the missing privilege
// check.
const SIOCSIFADDR = 0x8916

// Layout of the module's private per-socket state.
const EconetSock = "struct econet_sock"

// Offsets into the module's data section.
const (
	opsOff  = 0   // struct proto_ops (48 bytes)
	headOff = 128 // global socket list head
)

// Proto is the loaded econet module.
type Proto struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gSockRegister *core.Gate
	gKmalloc      *core.Gate
	gKfree        *core.Gate
	K             *kernel.Kernel
	St            *netstack.Stack

	sockLay *layout.Struct

	// Stations records the station addresses configured through the
	// (unprivileged!) SIOCSIFADDR path; exploit observability.
	Stations []uint64

	// LastOops is set when sendmsg hit the NULL dereference.
	LastOops bool
}

// Load loads the module and runs its init function, which installs the
// proto_ops table and registers the protocol family.
func Load(t *core.Thread, k *kernel.Kernel, st *netstack.Stack) (*Proto, error) {
	p := &Proto{K: k, St: st}
	if _, ok := k.Sys.Layouts.Get(EconetSock); !ok {
		p.sockLay = k.Sys.Layouts.Define(EconetSock,
			layout.F("next", 8),
			layout.F("station", 8),
			layout.F("txcount", 8),
		)
	} else {
		p.sockLay = k.Sys.Layouts.MustGet(EconetSock)
	}

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "econet",
		Imports:  []string{"sock_register", "kmalloc", "kfree", "printk", "capable"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "create", Type: netstack.FamilyCreate, Impl: p.create},
			{Name: "bind", Type: netstack.OpsBind, Impl: p.bind},
			{Name: "sendmsg", Type: netstack.OpsSendmsg, Impl: p.sendmsg},
			{Name: "recvmsg", Type: netstack.OpsRecvmsg, Impl: p.recvmsg},
			{Name: "ioctl", Type: netstack.OpsIoctl, Impl: p.ioctl},
			{Name: "release", Type: netstack.OpsRelease, Impl: p.release},
			{Name: "init", Impl: p.init},
		},
	})
	if err != nil {
		return nil, err
	}
	p.M = m
	p.gSockRegister = m.Gate("sock_register")
	p.gKmalloc = m.Gate("kmalloc")
	p.gKfree = m.Gate("kfree")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{ret: ret, err: err}
	}
	return p, nil
}

type initError struct {
	ret uint64
	err error
}

func (e *initError) Error() string { return "econet: init failed" }
func (e *initError) Unwrap() error { return e.err }

// OpsTable returns the address of the module's proto_ops table (in its
// writable data section, as in the Linux module).
func (p *Proto) OpsTable() mem.Addr { return p.M.Data + opsOff }

// IoctlSlot returns the address of the ioctl slot the exploit targets.
func (p *Proto) IoctlSlot() mem.Addr { return p.St.ProtoOpsSlot(p.OpsTable(), "ioctl") }

func (p *Proto) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	ops := p.OpsTable()
	for slot, fn := range map[string]string{
		"bind": "bind", "sendmsg": "sendmsg", "recvmsg": "recvmsg",
		"ioctl": "ioctl", "release": "release",
	} {
		if err := t.WriteU64(p.St.ProtoOpsSlot(ops, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	if ret, err := p.gSockRegister.Call2(t, Family, uint64(mod.Funcs["create"].Addr)); err != nil || kernel.IsErr(ret) {
		return 2
	}
	return 0
}

func (p *Proto) skField(sk mem.Addr, f string) mem.Addr {
	return sk + mem.Addr(p.sockLay.Off(f))
}

// create allocates the per-socket state and links it into the global
// socket list. The new node and the list head are writable by this
// instance (the node is instance-owned; the head slot is in the shared
// data section), so no principal switch is needed to prepend.
func (p *Proto) create(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, err := p.gKmalloc.Call1(t, p.sockLay.Size)
	if err != nil || sk == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(p.St.SockField(sock, "ops"), uint64(p.OpsTable())); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(p.St.SockField(sock, "sk"), sk); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	head := p.M.Data + headOff
	old, _ := t.ReadU64(head)
	if err := t.WriteU64(p.skField(mem.Addr(sk), "next"), old); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(head, sk); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (p *Proto) bind(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	if err := t.WriteU64(p.skField(mem.Addr(sk), "station"), args[1]); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// sendmsg carries CVE-2010-3849: a NULL destination address (buf == 0)
// makes the module dereference NULL. The simulated fault is observable
// through LastOops; the exploit harness then runs the kernel's oops
// path (do_exit with KERNEL_DS still set).
func (p *Proto) sendmsg(t *core.Thread, args []uint64) uint64 {
	sock, buf, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
	if buf == 0 {
		// econet transmits over an internal kernel socket, so this path
		// runs under set_fs(KERNEL_DS)...
		t.KernelDS = true
		// ...and econet_sendmsg dereferences the destination without a
		// NULL check (CVE-2010-3849). The oops unwinds out of the module
		// with KERNEL_DS still set — the state CVE-2010-4258 abuses.
		if _, err := t.ReadU64(0); err != nil {
			p.LastOops = true
			return kernel.Err(kernel.EFAULT)
		}
		t.KernelDS = false
	}
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	cnt, _ := t.ReadU64(p.skField(mem.Addr(sk), "txcount"))
	if err := t.WriteU64(p.skField(mem.Addr(sk), "txcount"), cnt+1); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return n
}

func (p *Proto) recvmsg(t *core.Thread, args []uint64) uint64 {
	return 0 // nothing queued in this simulation
}

// ioctl carries CVE-2010-3850: SIOCSIFADDR should require
// capable(CAP_NET_ADMIN) but the check is missing, letting any user
// configure the AUN station — which is what arms the NULL-dereference
// path for unprivileged users.
func (p *Proto) ioctl(t *core.Thread, args []uint64) uint64 {
	cmd, arg := args[1], args[2]
	if cmd == SIOCSIFADDR {
		// MISSING: if capable() != 1 { return -EPERM } (CVE-2010-3850)
		p.Stations = append(p.Stations, arg)
		return 0
	}
	return kernel.Err(kernel.EINVAL)
}

// release unlinks the socket from the global list. Walking and patching
// other sockets' next pointers touches state owned by sibling instances,
// so the module switches to its global principal (Guideline 6). The
// preceding check — that the socket being released belongs to the
// caller's principal — is the guard that keeps this privileged section
// safe.
func (p *Proto) release(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	if sk == 0 {
		return kernel.Err(kernel.EINVAL)
	}

	restore, err := t.SwitchGlobal()
	if err != nil {
		return kernel.Err(kernel.EPERM)
	}
	defer restore()

	head := p.M.Data + headOff
	cur, _ := t.ReadU64(head)
	if cur == sk {
		next, _ := t.ReadU64(p.skField(mem.Addr(sk), "next"))
		if err := t.WriteU64(head, next); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	} else {
		for cur != 0 {
			next, _ := t.ReadU64(p.skField(mem.Addr(cur), "next"))
			if next == sk {
				nn, _ := t.ReadU64(p.skField(mem.Addr(sk), "next"))
				if err := t.WriteU64(p.skField(mem.Addr(cur), "next"), nn); err != nil {
					return kernel.Err(kernel.EFAULT)
				}
				break
			}
			cur = next
		}
	}
	if _, err := p.gKfree.Call1(t, sk); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// SocketCount walks the module's global socket list (kernel-side
// introspection for tests).
func (p *Proto) SocketCount() int {
	n := 0
	cur, _ := p.K.Sys.AS.ReadU64(p.M.Data + headOff)
	for cur != 0 && n < 1<<16 {
		n++
		cur, _ = p.K.Sys.AS.ReadU64(mem.Addr(cur) + mem.Addr(p.sockLay.Off("next")))
	}
	return n
}

// TxCount returns the per-socket transmit counter.
func (p *Proto) TxCount(sock mem.Addr) uint64 {
	sk, _ := p.K.Sys.AS.ReadU64(p.St.SockField(sock, "sk"))
	v, _ := p.K.Sys.AS.ReadU64(mem.Addr(sk) + mem.Addr(p.sockLay.Off("txcount")))
	return v
}

// Sk returns the private state address of a socket.
func (p *Proto) Sk(sock mem.Addr) mem.Addr {
	sk, _ := p.K.Sys.AS.ReadU64(p.St.SockField(sock, "sk"))
	return mem.Addr(sk)
}

package modules

import (
	"sync"
	"sync/atomic"
	"time"

	"lxfi/internal/core"
	"lxfi/internal/coredump"
	"lxfi/internal/trace"
)

// Supervisor event kinds.
const (
	// EventQuarantine: a managed module died (violation or contained
	// panic) and has been queued for restart.
	EventQuarantine = "quarantine"
	// EventRestart: a restart published a live generation (Err non-nil
	// when the intended successor failed and the rollback generation
	// serves instead).
	EventRestart = "restart"
	// EventRestartFailed: both the successor and the rollback failed to
	// load; the module is permanently dead.
	EventRestartFailed = "restart-failed"
	// EventBreakerOpen: the module died BreakerFailures times inside
	// BreakerWindow; restarts stop and the module stays dead.
	EventBreakerOpen = "breaker-open"
	// EventBudgetExhausted: the module consumed its RestartBudget;
	// restarts stop and the module stays dead.
	EventBudgetExhausted = "budget-exhausted"
)

// SupervisorEvent describes one supervision decision.
type SupervisorEvent struct {
	Kind     string
	Module   string
	Restarts int   // lifetime restarts of this module, after this event
	Err      error // the restart error, for restart-failed and rollbacks
}

// SupervisorConfig tunes the restart policy. Zero values select the
// defaults noted on each field.
type SupervisorConfig struct {
	// Backoff is the delay before the first restart attempt; it doubles
	// per consecutive failed restart. Default 10ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Default 2s.
	MaxBackoff time.Duration
	// RestartBudget, when positive, is the lifetime restart allowance
	// per module under enforcement; exhausting it leaves the module
	// dead. 0 = unlimited.
	RestartBudget int
	// BreakerFailures deaths inside BreakerWindow trip the circuit
	// breaker under enforcement: the module is left permanently dead and
	// a forensic coredump is captured at the tripping violation.
	// Default 8.
	BreakerFailures int
	// BreakerWindow is the sliding window for BreakerFailures.
	// Default 10s.
	BreakerWindow time.Duration
	// OnEvent, if set, observes every supervision decision. Called
	// without supervisor locks held, from the dying module's goroutine
	// (quarantine, breaker) or the supervisor's (restart outcomes).
	OnEvent func(SupervisorEvent)
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Backoff <= 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 8
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 10 * time.Second
	}
	return c
}

// supState is the supervisor's book on one managed module.
type supState struct {
	deaths       []time.Time // recent deaths, pruned to BreakerWindow
	restarts     int         // lifetime restarts
	consecFails  int         // consecutive failed restarts (backoff input)
	queued       bool        // in the restart queue
	pending      bool        // dead: queued or restart in flight
	pendingSince time.Time   // first death of the current outage
	permDead     bool        // breaker tripped, budget exhausted, or double-fail
	breakerOpen  bool        // permDead via the circuit breaker
	dump         *coredump.Dump
}

// Supervisor turns module deaths into restarts. It subscribes to the
// monitor's violation feed (which also carries contained stock-mode
// panics), quarantines the dying module — its substrates degrade
// gracefully while it is down — and hot-reloads it with exponential
// backoff. Under enforcement a circuit breaker and an optional restart
// budget bound the work an adversarial module can extract: past the
// bound the module stays dead and a forensic coredump of the tripping
// violation is retained. In stock mode restarts are unbounded — there
// is no policy engine to attribute the deaths, which is exactly the
// restart-storm DoS the exploit suite demonstrates.
//
// Lock order: Supervisor.mu is taken before Loader.mu (metrics,
// Instance checks) and before nothing else; the violation hook resolves
// the loader entry *before* taking Supervisor.mu, and events and dumps
// run with no supervisor lock held.
type Supervisor struct {
	ld  *Loader
	sys *core.System
	cfg SupervisorConfig
	th  *core.Thread

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []string
	states  map[string]*supState
	stopped bool

	done     chan struct{}
	cancel   func() // violation subscription
	restarts atomic.Uint64
	recovery trace.Hist
}

// StartSupervisor subscribes a new supervisor to ld's system and starts
// its restart loop. Call Stop to shut it down.
func StartSupervisor(ld *Loader, cfg SupervisorConfig) *Supervisor {
	sys := ld.BC.K.Sys
	s := &Supervisor{
		ld:     ld,
		sys:    sys,
		cfg:    cfg.withDefaults(),
		th:     sys.NewThread("supervisor"),
		states: make(map[string]*supState),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.cancel = sys.Mon.SubscribeViolationThread(s.onViolation)
	sys.SetSupervisorMetrics(s.metrics)
	go s.run()
	return s
}

// Stop unsubscribes and stops the restart loop, waiting for an
// in-flight restart to finish. Modules left dead stay dead.
func (s *Supervisor) Stop() {
	s.cancel()
	s.sys.SetSupervisorMetrics(nil)
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.cond.Signal()
	s.mu.Unlock()
	<-s.done
}

func (s *Supervisor) state(name string) *supState {
	st := s.states[name]
	if st == nil {
		st = &supState{}
		s.states[name] = st
	}
	return st
}

func (s *Supervisor) emit(ev SupervisorEvent) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

// snapshot captures a forensic dump. t, when non-nil, is the violating
// thread — we are running on its goroutine, so its unsynchronized state
// is safe to read (the dump-at-violation contract).
func (s *Supervisor) snapshot(reason string, t *core.Thread) *coredump.Dump {
	opts := coredump.Options{Reason: reason, VFS: s.ld.BC.FS, Block: s.ld.BC.Block}
	if t != nil {
		opts.Threads = []*core.Thread{t}
	}
	return coredump.Snapshot(s.sys, opts)
}

// onViolation runs on the violating thread's goroutine for every
// violation and contained panic. It decides: quarantine and queue a
// restart, or (under enforcement) trip the breaker / exhaust the budget
// and leave the module dead.
func (s *Supervisor) onViolation(v *core.Violation, t *core.Thread) {
	name, ok := s.ld.ownerOf(v.Module)
	if !ok {
		return // not a module this loader manages
	}
	now := time.Now()
	enforcing := s.sys.Mon.Enforcing()

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	st := s.state(name)
	if st.permDead {
		s.mu.Unlock()
		return
	}
	st.deaths = append(st.deaths, now)
	cut := now.Add(-s.cfg.BreakerWindow)
	for len(st.deaths) > 0 && st.deaths[0].Before(cut) {
		st.deaths = st.deaths[1:]
	}

	// Containment policies need enforcement: in stock mode there is no
	// violation attribution to justify refusing service, so the
	// supervisor keeps restarting — the unbounded behavior the
	// ViolationStorm exploit escalates.
	if enforcing && len(st.deaths) >= s.cfg.BreakerFailures {
		st.permDead, st.breakerOpen, st.pending = true, true, false
		restarts := st.restarts
		s.mu.Unlock()
		d := s.snapshot("supervisor: breaker open: "+v.Error(), t)
		s.mu.Lock()
		st.dump = d
		s.mu.Unlock()
		s.emit(SupervisorEvent{Kind: EventBreakerOpen, Module: name, Restarts: restarts})
		return
	}
	if enforcing && s.cfg.RestartBudget > 0 && st.restarts >= s.cfg.RestartBudget {
		st.permDead, st.pending = true, false
		restarts := st.restarts
		s.mu.Unlock()
		d := s.snapshot("supervisor: restart budget exhausted: "+v.Error(), t)
		s.mu.Lock()
		st.dump = d
		s.mu.Unlock()
		s.emit(SupervisorEvent{Kind: EventBudgetExhausted, Module: name, Restarts: restarts})
		return
	}

	queued := false
	if !st.queued {
		st.queued, queued = true, true
		if !st.pending {
			st.pending = true
			st.pendingSince = now
		}
		s.queue = append(s.queue, name)
		s.cond.Signal()
	}
	restarts := st.restarts
	s.mu.Unlock()
	if queued {
		s.emit(SupervisorEvent{Kind: EventQuarantine, Module: name, Restarts: restarts})
	}
}

func (s *Supervisor) backoff(consecFails int) time.Duration {
	d := s.cfg.Backoff
	for i := 0; i < consecFails && d < s.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.cfg.MaxBackoff {
		d = s.cfg.MaxBackoff
	}
	return d
}

// run is the restart loop: pop a quarantined module, back off, reload.
func (s *Supervisor) run() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return
		}
		name := s.queue[0]
		s.queue = s.queue[1:]
		st := s.states[name]
		st.queued = false
		delay := s.backoff(st.consecFails)
		since := st.pendingSince
		s.mu.Unlock()

		time.Sleep(delay)
		if s.ld.lookup(name) == nil {
			// Unloaded out from under the supervisor — nothing to revive.
			s.mu.Lock()
			if !st.queued {
				st.pending = false
			}
			s.mu.Unlock()
			continue
		}
		_, err := s.ld.Reload(s.th, name)

		var ev SupervisorEvent
		s.mu.Lock()
		if err == nil {
			st.restarts++
			st.consecFails = 0
			s.restarts.Add(1)
			if !st.queued {
				st.pending = false
			}
			s.recovery.Observe(time.Since(since).Nanoseconds())
			ev = SupervisorEvent{Kind: EventRestart, Module: name, Restarts: st.restarts}
		} else if inst, ok := s.ld.Instance(name); ok && !inst.Module().Dead() {
			// The successor failed but the loader rolled back to a fresh
			// generation of the old code: the module serves again.
			st.restarts++
			st.consecFails++
			s.restarts.Add(1)
			if !st.queued {
				st.pending = false
			}
			s.recovery.Observe(time.Since(since).Nanoseconds())
			ev = SupervisorEvent{Kind: EventRestart, Module: name, Restarts: st.restarts, Err: err}
		} else {
			st.permDead = true
			st.pending = false
			ev = SupervisorEvent{Kind: EventRestartFailed, Module: name, Restarts: st.restarts, Err: err}
		}
		s.mu.Unlock()
		if ev.Kind == EventRestartFailed {
			d := s.snapshot("supervisor: restart failed: "+name, nil)
			s.mu.Lock()
			st.dump = d
			s.mu.Unlock()
		}
		s.emit(ev)
	}
}

// Restarts returns the lifetime restart count across all modules.
func (s *Supervisor) Restarts() uint64 { return s.restarts.Load() }

// BreakerOpen reports whether name's circuit breaker has tripped.
func (s *Supervisor) BreakerOpen(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.states[name]
	return st != nil && st.breakerOpen
}

// Dump returns the forensic coredump captured when name was given up on
// (breaker, budget, or double-failed restart), or nil.
func (s *Supervisor) Dump(name string) *coredump.Dump {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.states[name]
	if st == nil {
		return nil
	}
	return st.dump
}

// WaitIdle blocks until no module is quarantined or mid-restart (true),
// or the timeout elapses (false). Permanently dead modules do not count
// as busy — they are an outcome, not pending work.
func (s *Supervisor) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		idle := len(s.queue) == 0
		if idle {
			for _, st := range s.states {
				if st.pending {
					idle = false
					break
				}
			}
		}
		s.mu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// metrics is the System.Metrics() source registered while the
// supervisor runs.
func (s *Supervisor) metrics() *core.SupervisorMetrics {
	s.mu.Lock()
	var quar, dead uint64
	for _, st := range s.states {
		switch {
		case st.permDead:
			dead++
		case st.pending:
			quar++
		}
	}
	s.mu.Unlock()
	return &core.SupervisorMetrics{
		RestartsTotal:   s.restarts.Load(),
		Quarantined:     quar,
		BreakerOpen:     dead,
		RecoverySamples: s.recovery.Count(),
		RecoveryP99Ns:   s.recovery.Quantile(0.99),
		RecoveryNs:      s.recovery.Snapshot(),
	}
}

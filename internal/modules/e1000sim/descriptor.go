package e1000sim

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// Module returns the loaded core module, satisfying modules.Instance.
func (d *Driver) Module() *core.Module { return d.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "e1000",
		Requires: []string{modules.SubPCI, modules.SubNet},
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			return Load(t, bc.K, bc.Bus, bc.Net)
		},
		// Unbinding frees the devices for the successor generation's
		// probe (RegisterDriver only probes unbound devices).
		Unload: func(t *core.Thread, bc *modules.BootContext, inst modules.Instance) error {
			bc.Bus.Unbind("e1000")
			return nil
		},
	})
}

package e1000sim_test

import (
	"bytes"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/e1000sim"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
)

type rig struct {
	k     *kernel.Kernel
	bus   *pci.Bus
	stack *netstack.Stack
	th    *core.Thread
	drv   *e1000sim.Driver
}

func newRig(t *testing.T, mode core.Mode) *rig {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	bus := pci.Init(k)
	stack := netstack.Init(k)
	bus.AddDevice(e1000sim.VendorIntel, e1000sim.Dev82540EM)
	th := k.Sys.NewThread("net")
	drv, err := e1000sim.Load(th, k, bus, stack)
	if err != nil {
		t.Fatalf("load e1000sim: %v", err)
	}
	return &rig{k: k, bus: bus, stack: stack, th: th, drv: drv}
}

func TestProbeBindsAndEnables(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		r := newRig(t, mode)
		if r.drv.Dev == 0 {
			t.Fatalf("[%v] no net_device", mode)
		}
		dev := r.bus.Devices()[0]
		if dev.Module != "e1000" {
			t.Fatalf("[%v] device not bound: %+v", mode, dev)
		}
		if !r.bus.Enabled(dev) {
			t.Fatalf("[%v] device not enabled", mode)
		}
	}
}

func TestTransmitPath(t *testing.T) {
	r := newRig(t, core.Enforce)
	var wire [][]byte
	r.drv.Nic.OnTx = func(f []byte) { wire = append(wire, append([]byte(nil), f...)) }

	payload := []byte("GET / HTTP/1.1\r\n")
	skb, err := r.stack.AllocSkb(uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := r.k.Sys.AS.ReadU64(r.stack.SkbField(skb, "head"))
	if err := r.k.Sys.AS.Write(mem.Addr(data), payload); err != nil {
		t.Fatal(err)
	}
	if err := r.k.Sys.AS.WriteU64(r.stack.SkbField(skb, "len"), uint64(len(payload))); err != nil {
		t.Fatal(err)
	}

	ret, err := r.stack.XmitSkb(r.th, r.drv.Dev, skb)
	if err != nil || ret != 0 {
		t.Fatalf("xmit: ret=%d err=%v", ret, err)
	}
	if len(wire) != 1 || !bytes.Equal(wire[0], payload) {
		t.Fatalf("wire = %q", wire)
	}
	if r.drv.Nic.TxFrames != 1 || r.drv.Nic.TxBytes != uint64(len(payload)) {
		t.Fatalf("nic counters: %d frames, %d bytes", r.drv.Nic.TxFrames, r.drv.Nic.TxBytes)
	}
	if v := r.k.Sys.Mon.LastViolation(); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestReceivePath(t *testing.T) {
	r := newRig(t, core.Enforce)
	for i := 0; i < 5; i++ {
		r.drv.Nic.InjectRx([]byte{0xAB, byte(i)})
	}
	done, err := r.stack.Poll(r.th, r.drv.Dev, 3)
	if err != nil || done != 3 {
		t.Fatalf("poll: done=%d err=%v", done, err)
	}
	if r.stack.BacklogLen() != 3 {
		t.Fatalf("backlog = %d", r.stack.BacklogLen())
	}
	done, err = r.stack.Poll(r.th, r.drv.Dev, 64)
	if err != nil || done != 2 {
		t.Fatalf("second poll: done=%d err=%v", done, err)
	}
	skb := r.stack.PopRx()
	data, _ := r.k.Sys.AS.ReadU64(r.stack.SkbField(skb, "head"))
	b, _ := r.k.Sys.AS.ReadBytes(mem.Addr(data), 2)
	if !bytes.Equal(b, []byte{0xAB, 0}) {
		t.Fatalf("rx payload = %v", b)
	}
	if v := r.k.Sys.Mon.LastViolation(); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

func TestTxRxSymmetryStockVsLxfi(t *testing.T) {
	// The functional behaviour must be identical in both modes; only the
	// guard counts differ.
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		r := newRig(t, mode)
		before := r.k.Sys.Mon.Stats.Snapshot()
		for i := 0; i < 10; i++ {
			skb, _ := r.stack.AllocSkb(64)
			if _, err := r.stack.XmitSkb(r.th, r.drv.Dev, skb); err != nil {
				t.Fatalf("[%v] xmit %d: %v", mode, i, err)
			}
		}
		if r.drv.Nic.TxFrames != 10 {
			t.Fatalf("[%v] tx = %d", mode, r.drv.Nic.TxFrames)
		}
		d := r.k.Sys.Mon.Stats.Snapshot().Sub(before)
		if mode == core.Off && d.MemWriteChecks != 0 {
			t.Fatalf("stock ran %d write guards", d.MemWriteChecks)
		}
		if mode == core.Enforce && d.MemWriteChecks == 0 {
			t.Fatal("lxfi ran no write guards")
		}
	}
}

func TestIRQDelivery(t *testing.T) {
	r := newRig(t, core.Enforce)
	dev := r.bus.Devices()[0]
	r.bus.RaiseIRQ(r.th, dev)
	r.bus.RaiseIRQ(r.th, dev)
	if r.drv.Nic.IRQs != 2 {
		t.Fatalf("irqs = %d", r.drv.Nic.IRQs)
	}
}

func TestOpenStop(t *testing.T) {
	r := newRig(t, core.Enforce)
	ops, _ := r.k.Sys.AS.ReadU64(r.stack.DevField(r.drv.Dev, "ops"))
	openSlot := r.stack.OpsSlot(mem.Addr(ops), "ndo_open")
	if _, err := r.th.IndirectCall(openSlot, netstack.NdoOpen, uint64(r.drv.Dev)); err != nil {
		t.Fatal(err)
	}
	if !r.drv.Opened() {
		t.Fatal("open did not run")
	}
	stopSlot := r.stack.OpsSlot(mem.Addr(ops), "ndo_stop")
	if _, err := r.th.IndirectCall(stopSlot, netstack.NdoStop, uint64(r.drv.Dev)); err != nil {
		t.Fatal(err)
	}
	if r.drv.Opened() {
		t.Fatal("stop did not run")
	}
}

func TestProbeFailsWithoutDevice(t *testing.T) {
	k := kernel.New()
	bus := pci.Init(k)
	stack := netstack.Init(k)
	th := k.Sys.NewThread("t")
	if _, err := e1000sim.Load(th, k, bus, stack); err == nil {
		t.Fatal("load without a matching PCI device should fail")
	}
}

// Package e1000sim is the simulated e1000 PCI gigabit network driver —
// the module the paper isolates for its netperf evaluation (§8.4).
//
// It exercises every annotated interface of the running example in
// Figures 1 and 4: pci_driver.probe (with principal aliasing between the
// pci_dev and net_device names), pci_enable_device, netif_napi_add,
// ndo_start_xmit with skb capability transfers, and netif_rx.
//
// The "hardware" is a Nic object: a TX descriptor ring in module-owned
// simulated memory that the driver fills with instrumented writes, and
// Go-side frame queues standing in for the PHY.
package e1000sim

import (
	"fmt"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
)

// Intel 82540EM, as in the paper's test machine.
const (
	VendorIntel = 0x8086
	Dev82540EM  = 0x100E
)

// TxRingEntries is the size of the TX descriptor ring.
const TxRingEntries = 64

// descSize is one TX descriptor: payload address (8) + length (8).
const descSize = 16

// Nic is the simulated hardware behind the driver.
type Nic struct {
	// TxFrames are frames the NIC has put on the wire.
	TxFrames uint64
	TxBytes  uint64
	// OnTx, if set, receives each transmitted frame (the test harness
	// wire).
	OnTx func(frame []byte)
	// rxq holds frames waiting to be delivered by the poll handler.
	rxq [][]byte
	// IRQs counts raised interrupts.
	IRQs uint64
}

// InjectRx queues a frame for reception.
func (n *Nic) InjectRx(frame []byte) { n.rxq = append(n.rxq, append([]byte(nil), frame...)) }

// RxPending returns the number of frames waiting.
func (n *Nic) RxPending() int { return len(n.rxq) }

// Driver is a loaded e1000sim module instance.
type Driver struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gAllocEtherdev   *core.Gate
	gAllocSkb        *core.Gate
	gKfreeSkb        *core.Gate
	gKmalloc         *core.Gate
	gNetifNapiAdd    *core.Gate
	gNetifRx         *core.Gate
	gPciEnableDevice *core.Gate
	gRegisterNetdev  *core.Gate
	gRequestIrq      *core.Gate
	Bus              *pci.Bus
	Stack            *netstack.Stack
	K                *kernel.Kernel

	Nic *Nic

	// Dev is the net_device address after a successful probe.
	Dev mem.Addr
	// PciDev is the bound PCI device.
	PciDev mem.Addr

	ring   mem.Addr // TX descriptor ring (kmalloc'd, module-owned)
	txHead uint64
	opened bool
}

// Imports is the kernel symbol table of the module; the loader grants a
// CALL capability for exactly these (§4.2 module initialization).
var Imports = []string{
	"alloc_etherdev", "free_netdev", "register_netdev",
	"alloc_skb", "kfree_skb", "netif_rx", "netif_napi_add",
	"pci_enable_device", "pci_disable_device", "request_irq",
	"kmalloc", "kfree", "printk",
	"spin_lock_init", "spin_lock", "spin_unlock",
}

// Load loads the e1000sim module and registers its PCI driver; any
// matching devices on the bus are probed immediately.
func Load(t *core.Thread, k *kernel.Kernel, bus *pci.Bus, stack *netstack.Stack) (*Driver, error) {
	d := &Driver{Bus: bus, Stack: stack, K: k, Nic: &Nic{}}

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "e1000",
		Imports:  Imports,
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "probe", Type: pci.ProbeType, Impl: d.probe},
			{Name: "xmit", Type: netstack.NdoStartXmit, Impl: d.xmit},
			{Name: "open", Type: netstack.NdoOpen, Impl: d.open},
			{Name: "stop", Type: netstack.NdoStop, Impl: d.stop},
			{Name: "poll", Type: netstack.NapiPollType, Impl: d.poll},
			{Name: "irq", Type: "irq_handler", Impl: d.irq},
		},
	})
	if err != nil {
		return nil, err
	}
	d.M = m
	d.gAllocEtherdev = m.Gate("alloc_etherdev")
	d.gAllocSkb = m.Gate("alloc_skb")
	d.gKfreeSkb = m.Gate("kfree_skb")
	d.gKmalloc = m.Gate("kmalloc")
	d.gNetifNapiAdd = m.Gate("netif_napi_add")
	d.gNetifRx = m.Gate("netif_rx")
	d.gPciEnableDevice = m.Gate("pci_enable_device")
	d.gRegisterNetdev = m.Gate("register_netdev")
	d.gRequestIrq = m.Gate("request_irq")
	if err := bus.RegisterDriver(t, m, "probe", VendorIntel, Dev82540EM); err != nil {
		return nil, err
	}
	if d.Dev == 0 {
		return nil, fmt.Errorf("e1000sim: no device bound")
	}
	return d, nil
}

// probe is module_pci_probe from Fig. 4: it allocates the net_device,
// aliases the two principal names (pci_dev and net_device) after the
// mandatory lxfi_check, enables the device, installs the ops table, and
// registers with the network and NAPI layers.
func (d *Driver) probe(t *core.Thread, args []uint64) uint64 {
	pcidev := mem.Addr(args[0])

	ndev, err := d.gAllocEtherdev.Call0(t)
	if err != nil || ndev == 0 {
		return kernel.Err(kernel.ENOMEM)
	}

	// Fig. 4 lines 72-73: the check makes the alias unforgeable — an
	// adversary cannot reach this code with a pci_dev it does not own.
	if err := t.LxfiCheck(caps.RefCap(pci.PciDev, pcidev)); err != nil {
		return kernel.Err(kernel.EPERM)
	}
	if err := t.PrincAlias(pcidev, mem.Addr(ndev)); err != nil {
		return kernel.Err(kernel.EINVAL)
	}

	if ret, err := d.gPciEnableDevice.Call1(t, uint64(pcidev)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EPERM)
	}

	// Install the ops table in the module's data section and point the
	// net_device at it (Fig. 1 line 36).
	mod := t.CurrentModule()
	ops := mod.Data
	st := d.Stack
	if err := t.WriteU64(st.OpsSlot(ops, "ndo_start_xmit"), uint64(mod.Funcs["xmit"].Addr)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(st.OpsSlot(ops, "ndo_open"), uint64(mod.Funcs["open"].Addr)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(st.OpsSlot(ops, "ndo_stop"), uint64(mod.Funcs["stop"].Addr)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(st.DevField(mem.Addr(ndev), "ops"), uint64(ops)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}

	// TX descriptor ring (device-owned memory, Guideline 2).
	ring, err := d.gKmalloc.Call1(t, TxRingEntries*descSize)
	if err != nil || ring == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	d.ring = mem.Addr(ring)

	if ret, err := d.gRegisterNetdev.Call1(t, ndev); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EINVAL)
	}
	// Fig. 1 line 37: netif_napi_add(ndev, napi, my_poll_cb).
	if ret, err := d.gNetifNapiAdd.Call2(t, ndev, uint64(mod.Funcs["poll"].Addr)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EINVAL)
	}
	if ret, err := d.gRequestIrq.Call2(t, uint64(pcidev), uint64(mod.Funcs["irq"].Addr)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EINVAL)
	}

	d.Dev = mem.Addr(ndev)
	d.PciDev = pcidev
	return 0
}

// xmit is ndo_start_xmit: by the time it runs, the transfer annotation
// has moved the skb capabilities to this device's principal. The driver
// writes a TX descriptor (instrumented stores into its ring), lets the
// "hardware" DMA the payload onto the wire, and frees the skb.
func (d *Driver) xmit(t *core.Thread, args []uint64) uint64 {
	skb := mem.Addr(args[0])
	st := d.Stack

	data, _ := t.ReadU64(st.SkbField(skb, "data"))
	length, _ := t.ReadU64(st.SkbField(skb, "len"))

	// Write the descriptor through the capability system.
	slot := d.ring + mem.Addr((d.txHead%TxRingEntries)*descSize)
	if err := t.WriteU64(slot, data); err != nil {
		return ^uint64(0)
	}
	if err := t.WriteU64(slot+8, length); err != nil {
		return ^uint64(0)
	}
	d.txHead++

	// "DMA": the NIC reads the payload and puts the frame on the wire.
	frame, err := t.ReadBytes(mem.Addr(data), length)
	if err != nil {
		return ^uint64(0)
	}
	d.Nic.TxFrames++
	d.Nic.TxBytes += length
	if d.Nic.OnTx != nil {
		d.Nic.OnTx(frame)
	}

	if _, err := d.gKfreeSkb.Call1(t, uint64(skb)); err != nil {
		return ^uint64(0)
	}
	return 0
}

// poll is the NAPI poll callback: it delivers up to budget received
// frames to the kernel via alloc_skb + netif_rx.
func (d *Driver) poll(t *core.Thread, args []uint64) uint64 {
	budget := args[1]
	st := d.Stack
	var done uint64
	for done < budget && len(d.Nic.rxq) > 0 {
		frame := d.Nic.rxq[0]
		d.Nic.rxq = d.Nic.rxq[1:]

		skb, err := d.gAllocSkb.Call1(t, uint64(len(frame)))
		if err != nil || skb == 0 {
			return done
		}
		data, _ := t.ReadU64(st.SkbField(mem.Addr(skb), "head"))
		if err := t.Write(mem.Addr(data), frame); err != nil {
			return done
		}
		if err := t.WriteU64(st.SkbField(mem.Addr(skb), "len"), uint64(len(frame))); err != nil {
			return done
		}
		if err := t.WriteU64(st.SkbField(mem.Addr(skb), "dev"), uint64(d.Dev)); err != nil {
			return done
		}
		if ret, err := d.gNetifRx.Call1(t, skb); err != nil || kernel.IsErr(ret) {
			return done
		}
		done++
	}
	return done
}

func (d *Driver) open(t *core.Thread, args []uint64) uint64 {
	d.opened = true
	return 0
}

func (d *Driver) stop(t *core.Thread, args []uint64) uint64 {
	d.opened = false
	return 0
}

func (d *Driver) irq(t *core.Thread, args []uint64) uint64 {
	d.Nic.IRQs++
	return 0
}

// Opened reports whether ndo_open has run.
func (d *Driver) Opened() bool { return d.opened }

// Package e1000sim is the simulated e1000 PCI gigabit network driver —
// the module the paper isolates for its netperf evaluation (§8.4).
//
// It exercises every annotated interface of the running example in
// Figures 1 and 4: pci_driver.probe (with principal aliasing between the
// pci_dev and net_device names), pci_enable_device, netif_napi_add,
// ndo_start_xmit with skb capability transfers, and netif_rx.
//
// The "hardware" is a Nic object: a TX descriptor ring in module-owned
// simulated memory that the driver fills with instrumented writes, and
// Go-side frame queues standing in for the PHY. The Nic persists across
// hot reloads (real hardware does not reset when the driver is swapped),
// so a streaming peer wired to OnTx keeps receiving frames while the
// module is reloaded under live traffic.
package e1000sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
)

// Intel 82540EM, as in the paper's test machine.
const (
	VendorIntel = 0x8086
	Dev82540EM  = 0x100E
)

// TxRingEntries is the size of the TX descriptor ring.
const TxRingEntries = 64

// descSize is one TX descriptor: payload address (8) + length (8).
const descSize = 16

// RxBatchEntries is the capacity of the module-owned RX skb-pointer
// array the batched poll path hands to alloc_skb_batch.
const RxBatchEntries = netstack.TxBatchMax

// Nic is the simulated hardware behind the driver. Counters are atomics
// (TX workers run concurrently); mu guards the RX frame queue. OnTx is
// invoked outside the lock so a test-harness wire may call InjectRx from
// inside it.
type Nic struct {
	// TxFrames/TxBytes count frames the NIC has put on the wire.
	// Updated atomically; read them after the traffic threads join.
	TxFrames uint64
	TxBytes  uint64
	// OnTx, if set, receives each transmitted frame (the test harness
	// wire).
	OnTx func(frame []byte)
	// IRQs counts raised interrupts.
	IRQs uint64

	mu      sync.Mutex
	rxq     [][]byte
	batchRx bool
}

// InjectRx queues a frame for reception.
func (n *Nic) InjectRx(frame []byte) {
	n.mu.Lock()
	n.rxq = append(n.rxq, append([]byte(nil), frame...))
	n.mu.Unlock()
}

// RxPending returns the number of frames waiting.
func (n *Nic) RxPending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.rxq)
}

// SetBatchRx selects the poll delivery path: per-packet
// alloc_skb/netif_rx (the default) or the batched
// alloc_skb_batch/netif_rx_batch pair. Lives on the Nic so the setting
// survives a driver reload.
func (n *Nic) SetBatchRx(on bool) {
	n.mu.Lock()
	n.batchRx = on
	n.mu.Unlock()
}

// takeRx pops up to max frames from the RX queue.
func (n *Nic) takeRx(max int) [][]byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if max > len(n.rxq) {
		max = len(n.rxq)
	}
	if max <= 0 {
		return nil
	}
	out := n.rxq[:max:max]
	n.rxq = append([][]byte(nil), n.rxq[max:]...)
	return out
}

// requeueFront puts frames back at the head of the RX queue (partial
// batch allocation failure).
func (n *Nic) requeueFront(frames [][]byte) {
	if len(frames) == 0 {
		return
	}
	n.mu.Lock()
	n.rxq = append(append([][]byte(nil), frames...), n.rxq...)
	n.mu.Unlock()
}

// nics maps a PCI bus to its persistent NIC: reloading the driver swaps
// the module code, not the hardware. Entries live as long as the bus.
var (
	nicMu sync.Mutex
	nics  = map[*pci.Bus]*Nic{}
)

func nicFor(bus *pci.Bus) *Nic {
	nicMu.Lock()
	defer nicMu.Unlock()
	if n := nics[bus]; n != nil {
		return n
	}
	n := &Nic{}
	nics[bus] = n
	return n
}

// Driver is a loaded e1000sim module instance.
type Driver struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gAllocEtherdev   *core.Gate
	gAllocSkb        *core.Gate
	gAllocSkbBatch   *core.Gate
	gKfreeSkb        *core.Gate
	gKmalloc         *core.Gate
	gNetifNapiAdd    *core.Gate
	gNetifRx         *core.Gate
	gNetifRxBatch    *core.Gate
	gPciEnableDevice *core.Gate
	gRegisterNetdev  *core.Gate
	gRequestIrq      *core.Gate
	Bus              *pci.Bus
	Stack            *netstack.Stack
	K                *kernel.Kernel

	Nic *Nic

	// Dev is the net_device address after a successful probe.
	Dev mem.Addr
	// PciDev is the bound PCI device.
	PciDev mem.Addr

	ring   mem.Addr // TX descriptor ring (kmalloc'd, module-owned)
	rxArr  mem.Addr // RX batch skb-pointer array (kmalloc'd, module-owned)
	txHead uint64
	opened bool
}

// Imports is the kernel symbol table of the module; the loader grants a
// CALL capability for exactly these (§4.2 module initialization).
var Imports = []string{
	"alloc_etherdev", "free_netdev", "register_netdev",
	"alloc_skb", "alloc_skb_batch", "kfree_skb",
	"netif_rx", "netif_rx_batch", "netif_napi_add",
	"pci_enable_device", "pci_disable_device", "request_irq",
	"kmalloc", "kfree", "printk",
	"spin_lock_init", "spin_lock", "spin_unlock",
}

// Load loads the e1000sim module and registers its PCI driver; any
// matching devices on the bus are probed immediately.
func Load(t *core.Thread, k *kernel.Kernel, bus *pci.Bus, stack *netstack.Stack) (*Driver, error) {
	d := &Driver{Bus: bus, Stack: stack, K: k, Nic: nicFor(bus)}

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "e1000",
		Imports:  Imports,
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "probe", Type: pci.ProbeType, Impl: d.probe},
			{Name: "xmit", Type: netstack.NdoStartXmit, Impl: d.xmit},
			{Name: "xmit_batch", Type: netstack.NdoStartXmitBatch, Impl: d.xmitBatch},
			{Name: "open", Type: netstack.NdoOpen, Impl: d.open},
			{Name: "stop", Type: netstack.NdoStop, Impl: d.stop},
			{Name: "poll", Type: netstack.NapiPollType, Impl: d.poll},
			{Name: "irq", Type: "irq_handler", Impl: d.irq},
		},
	})
	if err != nil {
		return nil, err
	}
	d.M = m
	d.gAllocEtherdev = m.Gate("alloc_etherdev")
	d.gAllocSkb = m.Gate("alloc_skb")
	d.gAllocSkbBatch = m.Gate("alloc_skb_batch")
	d.gKfreeSkb = m.Gate("kfree_skb")
	d.gKmalloc = m.Gate("kmalloc")
	d.gNetifNapiAdd = m.Gate("netif_napi_add")
	d.gNetifRx = m.Gate("netif_rx")
	d.gNetifRxBatch = m.Gate("netif_rx_batch")
	d.gPciEnableDevice = m.Gate("pci_enable_device")
	d.gRegisterNetdev = m.Gate("register_netdev")
	d.gRequestIrq = m.Gate("request_irq")
	if err := bus.RegisterDriver(t, m, "probe", VendorIntel, Dev82540EM); err != nil {
		return nil, err
	}
	if d.Dev == 0 {
		return nil, fmt.Errorf("e1000sim: no device bound")
	}
	return d, nil
}

// probe is module_pci_probe from Fig. 4: it allocates the net_device,
// aliases the two principal names (pci_dev and net_device) after the
// mandatory lxfi_check, enables the device, installs the ops table, and
// registers with the network and NAPI layers.
func (d *Driver) probe(t *core.Thread, args []uint64) uint64 {
	pcidev := mem.Addr(args[0])

	ndev, err := d.gAllocEtherdev.Call0(t)
	if err != nil || ndev == 0 {
		return kernel.Err(kernel.ENOMEM)
	}

	// Fig. 4 lines 72-73: the check makes the alias unforgeable — an
	// adversary cannot reach this code with a pci_dev it does not own.
	if err := t.LxfiCheck(caps.RefCap(pci.PciDev, pcidev)); err != nil {
		return kernel.Err(kernel.EPERM)
	}
	if err := t.PrincAlias(pcidev, mem.Addr(ndev)); err != nil {
		return kernel.Err(kernel.EINVAL)
	}

	if ret, err := d.gPciEnableDevice.Call1(t, uint64(pcidev)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EPERM)
	}

	// Install the ops table in the module's data section and point the
	// net_device at it (Fig. 1 line 36).
	mod := t.CurrentModule()
	ops := mod.Data
	st := d.Stack
	if err := t.WriteU64(st.OpsSlot(ops, "ndo_start_xmit"), uint64(mod.Funcs["xmit"].Addr)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(st.OpsSlot(ops, "ndo_start_xmit_batch"), uint64(mod.Funcs["xmit_batch"].Addr)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(st.OpsSlot(ops, "ndo_open"), uint64(mod.Funcs["open"].Addr)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(st.OpsSlot(ops, "ndo_stop"), uint64(mod.Funcs["stop"].Addr)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(st.DevField(mem.Addr(ndev), "ops"), uint64(ops)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}

	// TX descriptor ring (device-owned memory, Guideline 2).
	ring, err := d.gKmalloc.Call1(t, TxRingEntries*descSize)
	if err != nil || ring == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	d.ring = mem.Addr(ring)

	// RX batch array: the pointer array the kernel fills on
	// alloc_skb_batch. Module-owned so the crossing's write check pins
	// API integrity.
	rxArr, err := d.gKmalloc.Call1(t, RxBatchEntries*8)
	if err != nil || rxArr == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	d.rxArr = mem.Addr(rxArr)

	if ret, err := d.gRegisterNetdev.Call1(t, ndev); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EINVAL)
	}
	// Fig. 1 line 37: netif_napi_add(ndev, napi, my_poll_cb).
	if ret, err := d.gNetifNapiAdd.Call2(t, ndev, uint64(mod.Funcs["poll"].Addr)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EINVAL)
	}
	if ret, err := d.gRequestIrq.Call2(t, uint64(pcidev), uint64(mod.Funcs["irq"].Addr)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EINVAL)
	}

	d.Dev = mem.Addr(ndev)
	d.PciDev = pcidev
	return 0
}

// txOne writes one TX descriptor for the skb and lets the "hardware"
// DMA the payload onto the wire. Shared by the per-packet and batched
// xmit paths.
func (d *Driver) txOne(t *core.Thread, skb mem.Addr) bool {
	st := d.Stack
	data, _ := t.ReadU64(st.SkbField(skb, "data"))
	length, _ := t.ReadU64(st.SkbField(skb, "len"))

	// Write the descriptor through the capability system.
	slot := d.ring + mem.Addr((d.txHead%TxRingEntries)*descSize)
	if err := t.WriteU64(slot, data); err != nil {
		return false
	}
	if err := t.WriteU64(slot+8, length); err != nil {
		return false
	}
	d.txHead++

	// "DMA": the NIC reads the payload and puts the frame on the wire.
	frame, err := t.ReadBytes(mem.Addr(data), length)
	if err != nil {
		return false
	}
	atomic.AddUint64(&d.Nic.TxFrames, 1)
	atomic.AddUint64(&d.Nic.TxBytes, length)
	if d.Nic.OnTx != nil {
		d.Nic.OnTx(frame)
	}
	return true
}

// xmit is ndo_start_xmit: by the time it runs, the transfer annotation
// has moved the skb capabilities to this device's principal. The driver
// writes a TX descriptor (instrumented stores into its ring), lets the
// "hardware" DMA the payload onto the wire, and frees the skb.
func (d *Driver) xmit(t *core.Thread, args []uint64) uint64 {
	skb := mem.Addr(args[0])
	if !d.txOne(t, skb) {
		return ^uint64(0)
	}
	if _, err := d.gKfreeSkb.Call1(t, uint64(skb)); err != nil {
		return ^uint64(0)
	}
	return 0
}

// xmitBatch is ndo_start_xmit_batch: one crossing delivers a whole
// qdisc drain. The pre-transfer annotation moved every skb's
// capabilities to this device's principal; the driver walks the
// kernel-owned pointer array (reads are unmediated) and transmits each
// element. Consumed skbs are completed kernel-side after the crossing
// returns — no per-skb kfree_skb crossing — and a partial return hands
// the tail's capabilities back through the post annotation.
func (d *Driver) xmitBatch(t *core.Thread, args []uint64) uint64 {
	arr, n := mem.Addr(args[0]), args[1]
	var consumed uint64
	for ; consumed < n; consumed++ {
		w, err := t.ReadU64(arr + mem.Addr(consumed*8))
		if err != nil || w == 0 {
			break
		}
		if !d.txOne(t, mem.Addr(w)) {
			break
		}
	}
	return consumed
}

// poll is the NAPI poll callback: it delivers up to budget received
// frames to the kernel — per-packet via alloc_skb + netif_rx, or, when
// the NIC is in batch mode, through one alloc_skb_batch + netif_rx_batch
// pair per poll round.
func (d *Driver) poll(t *core.Thread, args []uint64) uint64 {
	budget := args[1]
	d.Nic.mu.Lock()
	batch := d.Nic.batchRx
	d.Nic.mu.Unlock()
	if batch {
		return d.pollBatch(t, budget)
	}
	st := d.Stack
	var done uint64
	for done < budget {
		frames := d.Nic.takeRx(1)
		if len(frames) == 0 {
			break
		}
		frame := frames[0]

		skb, err := d.gAllocSkb.Call1(t, uint64(len(frame)))
		if err != nil || skb == 0 {
			return done
		}
		data, _ := t.ReadU64(st.SkbField(mem.Addr(skb), "head"))
		if err := t.Write(mem.Addr(data), frame); err != nil {
			return done
		}
		if err := t.WriteU64(st.SkbField(mem.Addr(skb), "len"), uint64(len(frame))); err != nil {
			return done
		}
		if err := t.WriteU64(st.SkbField(mem.Addr(skb), "dev"), uint64(d.Dev)); err != nil {
			return done
		}
		if ret, err := d.gNetifRx.Call1(t, skb); err != nil || kernel.IsErr(ret) {
			return done
		}
		done++
	}
	return done
}

// pollBatch delivers up to budget frames through two crossings total:
// alloc_skb_batch fills the module's pointer array with fresh skbs
// (capabilities transferred per-batch by the post annotation), the
// driver copies payloads in, and netif_rx_batch hands the whole array
// to the protocol backlog (capabilities transferred back per-batch).
func (d *Driver) pollBatch(t *core.Thread, budget uint64) uint64 {
	st := d.Stack
	if budget > RxBatchEntries {
		budget = RxBatchEntries
	}
	frames := d.Nic.takeRx(int(budget))
	if len(frames) == 0 {
		return 0
	}
	maxLen := 0
	for _, f := range frames {
		if len(f) > maxLen {
			maxLen = len(f)
		}
	}

	got, err := d.gAllocSkbBatch.Call3(t, uint64(d.rxArr), uint64(len(frames)), uint64(maxLen))
	if err != nil || got == 0 {
		d.Nic.requeueFront(frames)
		return 0
	}
	if got < uint64(len(frames)) {
		d.Nic.requeueFront(frames[got:])
		frames = frames[:got]
	}

	for i, frame := range frames {
		w, err := t.ReadU64(d.rxArr + mem.Addr(i*8))
		if err != nil || w == 0 {
			return 0
		}
		skb := mem.Addr(w)
		data, _ := t.ReadU64(st.SkbField(skb, "head"))
		if err := t.Write(mem.Addr(data), frame); err != nil {
			return 0
		}
		if err := t.WriteU64(st.SkbField(skb, "len"), uint64(len(frame))); err != nil {
			return 0
		}
		if err := t.WriteU64(st.SkbField(skb, "dev"), uint64(d.Dev)); err != nil {
			return 0
		}
	}

	accepted, err := d.gNetifRxBatch.Call2(t, uint64(d.rxArr), uint64(len(frames)))
	if err != nil {
		return 0
	}
	return accepted
}

func (d *Driver) open(t *core.Thread, args []uint64) uint64 {
	d.opened = true
	return 0
}

func (d *Driver) stop(t *core.Thread, args []uint64) uint64 {
	d.opened = false
	return 0
}

func (d *Driver) irq(t *core.Thread, args []uint64) uint64 {
	atomic.AddUint64(&d.Nic.IRQs, 1)
	return 0
}

// Opened reports whether ndo_open has run.
func (d *Driver) Opened() bool { return d.opened }

package can_test

import (
	"bytes"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/modules/can"
	"lxfi/internal/netstack"
)

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *netstack.Stack, *core.Thread) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	st := netstack.Init(k)
	th := k.Sys.NewThread("can")
	if _, err := can.Load(th, k, st); err != nil {
		t.Fatal(err)
	}
	return k, st, th
}

func TestLoopback(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, st, th := rig(t, mode)
		s, err := st.Socket(th, can.Family)
		if err != nil {
			t.Fatal(err)
		}
		if ret, err := st.Bind(th, s, 3, 8); err != nil || kernel.IsErr(ret) {
			t.Fatalf("[%v] bind: %d %v", mode, int64(ret), err)
		}
		src := k.Sys.User.Alloc(16, 8)
		dst := k.Sys.User.Alloc(16, 8)
		frame := []byte{0x12, 0x34, 0x56, 0x78}
		if err := k.Sys.AS.Write(src, frame); err != nil {
			t.Fatal(err)
		}
		if n, err := st.Sendmsg(th, s, src, 4, 0); err != nil || n != 4 {
			t.Fatalf("[%v] sendmsg: %d %v", mode, int64(n), err)
		}
		if n, err := st.Recvmsg(th, s, dst, 4, 0); err != nil || n != 4 {
			t.Fatalf("[%v] recvmsg: %d %v", mode, int64(n), err)
		}
		got, _ := k.Sys.AS.ReadBytes(dst, 4)
		if !bytes.Equal(got, frame) {
			t.Fatalf("[%v] frame = %v", mode, got)
		}
		if mode == core.Enforce && k.Sys.Mon.LastViolation() != nil {
			t.Fatalf("[%v] violation on legit usage: %v", mode, k.Sys.Mon.LastViolation())
		}
		if ret, err := st.Release(th, s); err != nil || kernel.IsErr(ret) {
			t.Fatalf("[%v] release: %d %v", mode, int64(ret), err)
		}
	}
}

func TestRecvmsgToKernelAddressFailsEvenStock(t *testing.T) {
	// can uses checked copy_to_user, so a kernel destination EFAULTs on
	// the stock kernel already (contrast with rds).
	k, st, th := rig(t, core.Off)
	s, _ := st.Socket(th, can.Family)
	src := k.Sys.User.Alloc(16, 8)
	_, _ = st.Sendmsg(th, s, src, 4, 0)
	victim := k.Sys.Statics.Alloc(8, 8)
	ret, err := st.Recvmsg(th, s, victim, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !kernel.IsErr(ret) {
		t.Fatalf("kernel destination should EFAULT: %d", int64(ret))
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	k, st, th := rig(t, core.Enforce)
	s, _ := st.Socket(th, can.Family)
	src := k.Sys.User.Alloc(256, 8)
	ret, err := st.Sendmsg(th, s, src, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !kernel.IsErr(ret) {
		t.Fatal("oversize frame accepted")
	}
}

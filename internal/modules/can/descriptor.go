package can

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// Module returns the loaded core module, satisfying modules.Instance.
func (p *Proto) Module() *core.Module { return p.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "can",
		Requires: []string{modules.SubNet},
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			return Load(t, bc.K, bc.Net)
		},
	})
}

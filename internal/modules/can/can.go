// Package can is the simulated raw CAN protocol module (af_can): a
// small, well-behaved protocol whose sockets loop frames back through
// the network stack. It exists primarily as one of the ten annotated
// modules of Figure 9; it shares nearly all of its annotations with the
// other protocol modules, illustrating the paper's observation that
// supporting an additional similar module needs very few new
// annotations.
package can

import (
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
	"lxfi/internal/netstack"
)

// Family is AF_CAN (raw).
const Family = 30

// CanSock is the layout of per-socket state.
const CanSock = "struct can_sock"

// Proto is the loaded can module.
type Proto struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gSockRegister *core.Gate
	gKmalloc      *core.Gate
	gKfree        *core.Gate
	gCopyToUser   *core.Gate
	K             *kernel.Kernel
	St            *netstack.Stack

	sockLay *layout.Struct
	// rxq holds loopback frames per socket.
	rxq map[mem.Addr][][]byte
}

// Load loads the module.
func Load(t *core.Thread, k *kernel.Kernel, st *netstack.Stack) (*Proto, error) {
	p := &Proto{K: k, St: st, rxq: make(map[mem.Addr][][]byte)}
	if _, ok := k.Sys.Layouts.Get(CanSock); !ok {
		p.sockLay = k.Sys.Layouts.Define(CanSock,
			layout.F("ifindex", 8),
			layout.F("txcount", 8),
		)
	} else {
		p.sockLay = k.Sys.Layouts.MustGet(CanSock)
	}
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "can",
		Imports:  []string{"sock_register", "kmalloc", "kfree", "printk", "copy_to_user"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "create", Type: netstack.FamilyCreate, Impl: p.create},
			{Name: "bind", Type: netstack.OpsBind, Impl: p.bind},
			{Name: "sendmsg", Type: netstack.OpsSendmsg, Impl: p.sendmsg},
			{Name: "recvmsg", Type: netstack.OpsRecvmsg, Impl: p.recvmsg},
			{Name: "release", Type: netstack.OpsRelease, Impl: p.release},
			{Name: "init", Impl: p.init},
		},
	})
	if err != nil {
		return nil, err
	}
	p.M = m
	p.gSockRegister = m.Gate("sock_register")
	p.gKmalloc = m.Gate("kmalloc")
	p.gKfree = m.Gate("kfree")
	p.gCopyToUser = m.Gate("copy_to_user")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return p, nil
}

type initError struct{ err error }

func (e *initError) Error() string { return "can: init failed" }
func (e *initError) Unwrap() error { return e.err }

func (p *Proto) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for slot, fn := range map[string]string{
		"bind": "bind", "sendmsg": "sendmsg", "recvmsg": "recvmsg", "release": "release",
	} {
		if err := t.WriteU64(p.St.ProtoOpsSlot(mod.Data, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	if ret, err := p.gSockRegister.Call2(t, Family, uint64(mod.Funcs["create"].Addr)); err != nil || kernel.IsErr(ret) {
		return 2
	}
	return 0
}

func (p *Proto) skField(sk mem.Addr, f string) mem.Addr {
	return sk + mem.Addr(p.sockLay.Off(f))
}

func (p *Proto) create(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, err := p.gKmalloc.Call1(t, p.sockLay.Size)
	if err != nil || sk == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(p.St.SockField(sock, "ops"), uint64(t.CurrentModule().Data)); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(p.St.SockField(sock, "sk"), sk); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (p *Proto) bind(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	if err := t.WriteU64(p.skField(mem.Addr(sk), "ifindex"), args[1]); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

// sendmsg loops the frame straight back to the socket's receive queue.
func (p *Proto) sendmsg(t *core.Thread, args []uint64) uint64 {
	sock, buf, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
	if n > 64 { // CAN frames are small
		return kernel.Err(kernel.EINVAL)
	}
	frame, err := t.ReadBytes(buf, n)
	if err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	p.rxq[sock] = append(p.rxq[sock], frame)
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	cnt, _ := t.ReadU64(p.skField(mem.Addr(sk), "txcount"))
	if err := t.WriteU64(p.skField(mem.Addr(sk), "txcount"), cnt+1); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return n
}

// recvmsg copies a queued frame to the user buffer via copy-to-user
// semantics: the destination must be user memory or the module's own.
func (p *Proto) recvmsg(t *core.Thread, args []uint64) uint64 {
	sock, buf, n := mem.Addr(args[0]), mem.Addr(args[1]), args[2]
	q := p.rxq[sock]
	if len(q) == 0 {
		return 0
	}
	frame := q[0]
	p.rxq[sock] = q[1:]
	if uint64(len(frame)) < n {
		n = uint64(len(frame))
	}
	// Unlike rds, can uses the checked uaccess path: copy_to_user
	// performs access_ok itself, so a kernel-space destination EFAULTs
	// even on a stock kernel (no CVE here).
	staging, err := p.gKmalloc.Call1(t, n)
	if err != nil || staging == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.Write(mem.Addr(staging), frame[:n]); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	ret, cerr := p.gCopyToUser.Call3(t, uint64(buf), staging, n)
	if _, ferr := p.gKfree.Call1(t, staging); ferr != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if cerr != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EFAULT)
	}
	return n
}

func (p *Proto) release(t *core.Thread, args []uint64) uint64 {
	sock := mem.Addr(args[0])
	delete(p.rxq, sock)
	sk, _ := t.ReadU64(p.St.SockField(sock, "sk"))
	if sk != 0 {
		if _, err := p.gKfree.Call1(t, sk); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

package modules

import (
	"fmt"
	"sync"

	"lxfi/internal/blockdev"
	"lxfi/internal/kernel"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
	"lxfi/internal/sound"
	"lxfi/internal/vfs"
)

// Substrate names for Descriptor.Requires.
const (
	SubPCI   = "pci"
	SubNet   = "net"
	SubBlock = "block"
	SubSound = "sound"
	SubVFS   = "vfs"
)

// BootContext owns the kernel substrates module descriptors resolve
// their dependencies from. A substrate field left nil is initialised on
// demand the first time a module requires it; rigs that need to shape a
// substrate before any module loads (plug PCI devices, attach disks)
// initialise the field themselves and the loader reuses it.
type BootContext struct {
	K     *kernel.Kernel
	Bus   *pci.Bus
	Net   *netstack.Stack
	Block *blockdev.Layer
	Snd   *sound.Sound
	FS    *vfs.VFS

	// mu serialises on-demand substrate init: loads of distinct modules
	// may now run concurrently (per-module lifecycle locks), and two of
	// them must not both observe a nil substrate and double-init it.
	mu sync.Mutex
}

// ensure initialises the named substrate if it is not up yet. The VFS
// is always built on a block layer (writeback needs one), so SubVFS
// implies SubBlock.
func (bc *BootContext) ensure(req string) error {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	switch req {
	case SubPCI:
		if bc.Bus == nil {
			bc.Bus = pci.Init(bc.K)
		}
	case SubNet:
		if bc.Net == nil {
			bc.Net = netstack.Init(bc.K)
		}
	case SubBlock:
		if bc.Block == nil {
			bc.Block = blockdev.Init(bc.K)
		}
	case SubSound:
		if bc.Snd == nil {
			bc.Snd = sound.Init(bc.K)
		}
	case SubVFS:
		if bc.FS == nil {
			if bc.Block == nil {
				bc.Block = blockdev.Init(bc.K)
			}
			bc.FS = vfs.Init(bc.K, bc.Block)
		}
	default:
		return fmt.Errorf("modules: unknown substrate %q", req)
	}
	return nil
}

package modules_test

// Reload-rollback coverage: when the successor generation's Load hook
// fails mid-reload (old generation already retired), the loader must
// boot a rollback generation from the same descriptor and migrate the
// capability snapshot into it — traffic resumes instead of every parked
// crossing failing with ErrModuleDead.

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/modules"
	"lxfi/internal/modules/econet"
)

// flakyLoadFails arms the injected failure: the next Load of the
// "econet-flaky" descriptor errors out, later loads succeed.
var flakyLoadFails atomic.Bool

// flakyDoubleFail counts down inside the Load hook, failing while
// positive — arming it with 2 kills both the successor load and the
// rollback load of one reload.
var flakyDoubleFail atomic.Int64

var registerFlakyOnce sync.Once

var errInjectedLoad = errors.New("injected load failure")

// registerFlaky wraps the real econet descriptor behind a Load hook
// that fails on demand — the stand-in for a successor generation whose
// init path breaks.
func registerFlaky(t *testing.T) {
	t.Helper()
	registerFlakyOnce.Do(func() {
		base, ok := modules.Lookup("econet")
		if !ok {
			panic("econet descriptor not registered")
		}
		modules.Register(modules.Descriptor{
			Name:     "econet-flaky",
			Requires: base.Requires,
			Load: func(th *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
				if flakyDoubleFail.Load() > 0 {
					flakyDoubleFail.Add(-1)
					return nil, errInjectedLoad
				}
				if flakyLoadFails.Swap(false) {
					return nil, errInjectedLoad
				}
				return base.Load(th, bc, opt)
			},
			Unload: base.Unload,
		})
	})
}

func TestReloadRollbackResumesTraffic(t *testing.T) {
	registerFlaky(t)
	ld, th := newLoader(t, core.Enforce)
	inst, err := ld.Load(th, "econet-flaky")
	if err != nil {
		t.Fatal(err)
	}
	old := inst.(*econet.Proto)
	st := ld.BC.Net
	sock, err := st.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	user := ld.BC.K.Sys.User.Alloc(64, 8)
	if _, err := st.Sendmsg(th, sock, user, 16, 0); err != nil {
		t.Fatal(err)
	}

	// The successor load fails; the rollback load (second attempt)
	// succeeds.
	flakyLoadFails.Store(true)
	_, err = ld.Reload(th, "econet-flaky")
	if err == nil {
		t.Fatal("reload with a failing successor load reported success")
	}
	if !errors.Is(err, errInjectedLoad) || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("reload error does not describe the rollback: %v", err)
	}

	// The module is still loaded, under a fresh generation.
	fresh, ok := ld.Instance("econet-flaky")
	if !ok {
		t.Fatal("rollback left the module unloaded")
	}
	if fresh == inst || fresh.(*econet.Proto).M == old.M {
		t.Fatal("rollback did not publish a fresh generation")
	}

	// Traffic resumes: the pre-reload socket crosses into the rollback
	// generation instead of failing with ErrModuleDead, and new sockets
	// work too.
	if _, err := st.Sendmsg(th, sock, user, 16, 0); err != nil {
		t.Fatalf("pre-reload socket after rollback: %v", err)
	}
	sock2, err := st.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Sendmsg(th, sock2, user, 16, 0); err != nil {
		t.Fatalf("fresh socket after rollback: %v", err)
	}
	if v := ld.BC.K.Sys.Mon.LastViolation(); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}

	// A later reload with a healthy successor still works.
	if _, err := ld.Reload(th, "econet-flaky"); err != nil {
		t.Fatalf("healthy reload after rollback: %v", err)
	}
}

// TestReloadRollbackFailureIsDead pins the terminal path: when the
// rollback load fails too, the module is dead and its name freed.
func TestReloadRollbackFailureIsDead(t *testing.T) {
	registerFlaky(t)
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "econet-flaky"); err != nil {
		t.Fatal(err)
	}
	st := ld.BC.Net
	sock, err := st.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	user := ld.BC.K.Sys.User.Alloc(64, 8)

	// Both the successor load and the rollback load fail.
	flakyDoubleFail.Store(2)
	if _, err := ld.Reload(th, "econet-flaky"); err == nil ||
		!strings.Contains(err.Error(), "module is dead") {
		t.Fatalf("double load failure: err = %v", err)
	}
	if _, ok := ld.Instance("econet-flaky"); ok {
		t.Fatal("dead module still resolvable")
	}
	if _, err := st.Sendmsg(th, sock, user, 16, 0); !errors.Is(err, core.ErrModuleDead) {
		t.Fatalf("crossing into dead module: %v, want ErrModuleDead", err)
	}
	// The name is free again.
	if _, err := ld.Load(th, "econet-flaky"); err != nil {
		t.Fatalf("load after death: %v", err)
	}
}

// Package dmcrypt is the simulated dm-crypt device-mapper target: a
// transparent encryption layer over a backing disk. It is the paper's
// §2.1 example of a shared module with many privileges: one dm-crypt
// module instance may encrypt both the system disk and an untrusted USB
// stick, and LXFI's per-target principals keep a compromise of one
// volume from reaching the others.
//
// The cipher is a keyed XOR — a stand-in with the same data-flow shape
// (in-place transform between bio payload and backing store) as the real
// module's crypto; the isolation properties under test do not depend on
// cipher strength.
package dmcrypt

import (
	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// Target is the loaded dm-crypt module.
type Target struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gKmalloc       *core.Gate
	gKfree         *core.Gate
	gSubmitBio     *core.Gate
	gBioEndio      *core.Gate
	gDmReadSectors *core.Gate
	L              *blockdev.Layer
}

// Load loads the module.
func Load(t *core.Thread, k *kernel.Kernel, l *blockdev.Layer) (*Target, error) {
	tg := &Target{L: l}
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name: "dm-crypt",
		Imports: []string{
			"kmalloc", "kfree", "submit_bio", "bio_endio",
			"dm_read_sectors", "printk", "spin_lock_init",
		},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "ctr", Type: blockdev.DmCtr, Impl: tg.ctr},
			{Name: "dtr", Type: blockdev.DmDtr, Impl: tg.dtr},
			{Name: "map", Type: blockdev.DmMap, Impl: tg.mapBio},
			{Name: "init", Impl: tg.init},
		},
	})
	if err != nil {
		return nil, err
	}
	tg.M = m
	tg.gKmalloc = m.Gate("kmalloc")
	tg.gKfree = m.Gate("kfree")
	tg.gSubmitBio = m.Gate("submit_bio")
	tg.gBioEndio = m.Gate("bio_endio")
	tg.gDmReadSectors = m.Gate("dm_read_sectors")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return tg, nil
}

type initError struct{ err error }

func (e *initError) Error() string { return "dm-crypt: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's dm_target_type table address.
func (tg *Target) Ops() mem.Addr { return tg.M.Data }

func (tg *Target) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for slot, fn := range map[string]string{"ctr": "ctr", "dtr": "dtr", "map": "map"} {
		if err := t.WriteU64(tg.L.OpsSlot(mod.Data, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	return 0
}

// ctr stores the volume key in per-target memory. The key buffer is
// owned by this target's principal only: a sibling volume's principal
// cannot read^Wwrite it.
func (tg *Target) ctr(t *core.Thread, args []uint64) uint64 {
	ti, key := mem.Addr(args[0]), args[1]
	keyBuf, err := tg.gKmalloc.Call1(t, 8)
	if err != nil || keyBuf == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(mem.Addr(keyBuf), key); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(tg.L.TargetField(ti, "private"), keyBuf); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (tg *Target) dtr(t *core.Thread, args []uint64) uint64 {
	ti := mem.Addr(args[0])
	keyBuf, _ := t.ReadU64(tg.L.TargetField(ti, "private"))
	if keyBuf != 0 {
		if _, err := tg.gKfree.Call1(t, keyBuf); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

// mapBio encrypts writes in place before submitting them, and decrypts
// reads after fetching the ciphertext into the (module-owned) payload.
func (tg *Target) mapBio(t *core.Thread, args []uint64) uint64 {
	ti, bio := mem.Addr(args[0]), mem.Addr(args[1])

	keyBuf, _ := t.ReadU64(tg.L.TargetField(ti, "private"))
	key, _ := t.ReadU64(mem.Addr(keyBuf))
	begin, _ := t.ReadU64(tg.L.TargetField(ti, "begin"))
	dev, _ := t.ReadU64(tg.L.TargetField(ti, "dev"))

	sector, _ := t.ReadU64(tg.L.BioField(bio, "sector"))
	data, _ := t.ReadU64(tg.L.BioField(bio, "data"))
	n, _ := t.ReadU64(tg.L.BioField(bio, "len"))
	rw, _ := t.ReadU64(tg.L.BioField(bio, "rw"))

	// Remap into the target's slice of the backing device.
	if err := t.WriteU64(tg.L.BioField(bio, "sector"), sector+begin); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(tg.L.BioField(bio, "dev"), dev); err != nil {
		return kernel.Err(kernel.EFAULT)
	}

	if rw == blockdev.WriteBio {
		if ret := tg.xorPayload(t, mem.Addr(data), n, key); ret != 0 {
			return ret
		}
		if ret, err := tg.gSubmitBio.Call1(t, uint64(bio)); err != nil || kernel.IsErr(ret) {
			return kernel.Err(kernel.EFAULT)
		}
		return blockdev.MapSubmitted
	}

	// Read: fetch ciphertext into the payload we own, decrypt in place,
	// complete.
	if ret, err := tg.gDmReadSectors.Call4(t, dev, sector+begin, data, n); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EFAULT)
	}
	if ret := tg.xorPayload(t, mem.Addr(data), n, key); ret != 0 {
		return ret
	}
	if ret, err := tg.gBioEndio.Call1(t, uint64(bio)); err != nil || kernel.IsErr(ret) {
		return kernel.Err(kernel.EFAULT)
	}
	return blockdev.MapSubmitted
}

// xorPayload applies the keyed XOR in 8-byte chunks via instrumented
// writes.
func (tg *Target) xorPayload(t *core.Thread, data mem.Addr, n, key uint64) uint64 {
	for off := uint64(0); off+8 <= n; off += 8 {
		v, err := t.ReadU64(data + mem.Addr(off))
		if err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		if err := t.WriteU64(data+mem.Addr(off), v^key); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

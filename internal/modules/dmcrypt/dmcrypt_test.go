package dmcrypt_test

import (
	"bytes"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/dmcrypt"
)

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *blockdev.Layer, *core.Thread, *dmcrypt.Target) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	l := blockdev.Init(k)
	l.AddDisk(1, 1024)
	th := k.Sys.NewThread("dm")
	tg, err := dmcrypt.Load(th, k, l)
	if err != nil {
		t.Fatal(err)
	}
	return k, l, th, tg
}

func writeBio(t *testing.T, k *kernel.Kernel, l *blockdev.Layer, sector uint64, payload []byte) mem.Addr {
	t.Helper()
	bio, err := l.AllocBio(uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := k.Sys.AS.ReadU64(l.BioField(bio, "data"))
	must(t, k.Sys.AS.Write(mem.Addr(data), payload))
	must(t, k.Sys.AS.WriteU64(l.BioField(bio, "sector"), sector))
	must(t, k.Sys.AS.WriteU64(l.BioField(bio, "rw"), blockdev.WriteBio))
	must(t, k.Sys.AS.WriteU64(l.BioField(bio, "len"), uint64(len(payload))))
	return bio
}

func readBio(t *testing.T, k *kernel.Kernel, l *blockdev.Layer, sector, n uint64) mem.Addr {
	t.Helper()
	bio, err := l.AllocBio(n)
	if err != nil {
		t.Fatal(err)
	}
	must(t, k.Sys.AS.WriteU64(l.BioField(bio, "sector"), sector))
	must(t, k.Sys.AS.WriteU64(l.BioField(bio, "rw"), blockdev.ReadBio))
	must(t, k.Sys.AS.WriteU64(l.BioField(bio, "len"), n))
	return bio
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, l, th, tg := rig(t, mode)
		ti, err := l.CreateTarget(th, tg.Ops(), 0xA5A5A5A5A5A5A5A5, 100, 64, 1)
		if err != nil {
			t.Fatalf("[%v] ctr: %v", mode, err)
		}
		plain := bytes.Repeat([]byte("sekret42"), 64) // 512 bytes
		if err := l.Submit(th, ti, writeBio(t, k, l, 0, plain)); err != nil {
			t.Fatalf("[%v] write: %v", mode, err)
		}
		// Ciphertext on disk differs from the plaintext and sits at the
		// remapped offset (sector 0 + begin 100).
		disk := l.DiskBytes(1)
		onDisk := disk[100*blockdev.SectorSize : 100*blockdev.SectorSize+512]
		if bytes.Equal(onDisk, plain) {
			t.Fatalf("[%v] data not encrypted on disk", mode)
		}
		// Read back and compare.
		rb := readBio(t, k, l, 0, 512)
		if err := l.Submit(th, ti, rb); err != nil {
			t.Fatalf("[%v] read: %v", mode, err)
		}
		data, _ := k.Sys.AS.ReadU64(l.BioField(rb, "data"))
		got, _ := k.Sys.AS.ReadBytes(mem.Addr(data), 512)
		if !bytes.Equal(got, plain) {
			t.Fatalf("[%v] round trip failed", mode)
		}
		if mode == core.Enforce && k.Sys.Mon.LastViolation() != nil {
			t.Fatalf("[%v] violation on legit I/O: %v", mode, k.Sys.Mon.LastViolation())
		}
	}
}

func TestVolumesAreSeparatePrincipals(t *testing.T) {
	// Two dm-crypt volumes: the system disk and an untrusted USB stick
	// (§2.1). Each target is its own principal; the USB volume's
	// principal must not hold the system volume's key buffer capability.
	k, l, th, tg := rig(t, core.Enforce)
	l.AddDisk(2, 1024)
	sys, err := l.CreateTarget(th, tg.Ops(), 0x1111, 0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	usb, err := l.CreateTarget(th, tg.Ops(), 0x2222, 0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	sysKey, _ := k.Sys.AS.ReadU64(l.TargetField(sys, "private"))
	pSys, ok := tg.M.Set.Lookup(sys)
	if !ok {
		t.Fatal("system target principal missing")
	}
	pUsb, ok := tg.M.Set.Lookup(usb)
	if !ok {
		t.Fatal("usb target principal missing")
	}
	probe := caps.WriteCap(mem.Addr(sysKey), 8)
	if !k.Sys.Caps.Check(pSys, probe) {
		t.Fatal("system target cannot write its own key")
	}
	if k.Sys.Caps.Check(pUsb, probe) {
		t.Fatal("usb target can write the system volume's key: principals not separated")
	}
}

func TestDtrFreesKey(t *testing.T) {
	k, l, th, tg := rig(t, core.Enforce)
	ti, err := l.CreateTarget(th, tg.Ops(), 0x77, 0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	keyBuf, _ := k.Sys.AS.ReadU64(l.TargetField(ti, "private"))
	if !k.Sys.Slab.Owns(mem.Addr(keyBuf)) {
		t.Fatal("key buffer not allocated")
	}
	if err := l.RemoveTarget(th, ti); err != nil {
		t.Fatal(err)
	}
	if k.Sys.Slab.Owns(mem.Addr(keyBuf)) {
		t.Fatal("key buffer leaked")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

package modules_test

// Loader lifecycle tests against a real registered module (econet):
// load by name with on-demand substrate boot, the duplicate/unknown
// error paths, clean unload, and hot reload — live state must survive
// the swap via capability migration, with traffic flowing after it.

import (
	"strings"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/modules"
	"lxfi/internal/modules/econet"
)

func newLoader(t *testing.T, mode core.Mode) (*modules.Loader, *core.Thread) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	return modules.NewLoader(k), k.Sys.NewThread("loader-test")
}

func TestLoadByNameBootsSubstrateOnDemand(t *testing.T) {
	ld, th := newLoader(t, core.Enforce)
	if ld.BC.Net != nil {
		t.Fatal("netstack up before any module required it")
	}
	inst, err := ld.Load(th, "econet")
	if err != nil {
		t.Fatal(err)
	}
	if ld.BC.Net == nil {
		t.Fatal("SubNet requirement did not boot the netstack")
	}
	proto, ok := inst.(*econet.Proto)
	if !ok {
		t.Fatalf("instance type %T, want *econet.Proto", inst)
	}
	// The booted module works: a socket round trip under enforcement.
	sock, err := ld.BC.Net.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	user := ld.BC.K.Sys.User.Alloc(64, 8)
	if _, err := ld.BC.Net.Sendmsg(th, sock, user, 16, 0); err != nil {
		t.Fatal(err)
	}
	if proto.TxCount(sock) != 1 {
		t.Fatalf("tx count = %d, want 1", proto.TxCount(sock))
	}
	if got, ok := ld.Instance("econet"); !ok || got != inst {
		t.Fatal("Instance does not return the loaded module")
	}
	if m, ok := ld.Module("econet"); !ok || m != proto.M {
		t.Fatal("Module does not return the live core.Module")
	}
	if names := ld.Loaded(); len(names) != 1 || names[0] != "econet" {
		t.Fatalf("Loaded() = %v", names)
	}
}

func TestLoadErrorPaths(t *testing.T) {
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "no-such-module"); err == nil ||
		!strings.Contains(err.Error(), "no-such-module") {
		t.Fatalf("unknown module: err = %v", err)
	}
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Load(th, "econet"); err == nil ||
		!strings.Contains(err.Error(), "already loaded") {
		t.Fatalf("duplicate load: err = %v", err)
	}
	if err := ld.Unload(th, "never-loaded"); err == nil {
		t.Fatal("unload of a never-loaded module succeeded")
	}
	if _, err := ld.Reload(th, "never-loaded"); err == nil {
		t.Fatal("reload of a never-loaded module succeeded")
	}
}

func TestUnloadFreesTheName(t *testing.T) {
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatal(err)
	}
	if err := ld.Unload(th, "econet"); err != nil {
		t.Fatal(err)
	}
	if names := ld.Loaded(); len(names) != 0 {
		t.Fatalf("Loaded() after unload = %v", names)
	}
	if _, ok := ld.Instance("econet"); ok {
		t.Fatal("unloaded instance still resolvable")
	}
	// The name is free again: a fresh generation loads cleanly.
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatalf("reload-after-unload: %v", err)
	}
}

func TestReloadMigratesLiveState(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		t.Run(mode.String(), func(t *testing.T) {
			ld, th := newLoader(t, mode)
			inst, err := ld.Load(th, "econet")
			if err != nil {
				t.Fatal(err)
			}
			old := inst.(*econet.Proto)
			st := ld.BC.Net
			sock, err := st.Socket(th, econet.Family)
			if err != nil {
				t.Fatal(err)
			}
			user := ld.BC.K.Sys.User.Alloc(64, 8)
			if _, err := st.Sendmsg(th, sock, user, 16, 0); err != nil {
				t.Fatal(err)
			}

			stats, err := ld.Reload(th, "econet")
			if err != nil {
				t.Fatal(err)
			}
			if stats.Module != "econet" || stats.TotalNs <= 0 || stats.QuiesceNs < 0 {
				t.Fatalf("bad stats: %+v", stats)
			}
			// Stock mode grants no capabilities, so only the enforced
			// run has anything to migrate.
			if mode == core.Enforce && stats.Migrated < 1 {
				t.Fatalf("no capabilities migrated: %+v", stats)
			}
			fresh, ok := ld.Instance("econet")
			if !ok || fresh == inst {
				t.Fatal("reload did not publish a fresh generation")
			}
			if old.M == fresh.(*econet.Proto).M {
				t.Fatal("successor reuses the retired core.Module")
			}

			// The pre-reload socket keeps working: its create-time
			// function pointers redirect into the successor, and the
			// migrated WRITE capability covers its state.
			if _, err := st.Sendmsg(th, sock, user, 16, 0); err != nil {
				t.Fatalf("pre-reload socket after reload: %v", err)
			}
			if v := ld.BC.K.Sys.Mon.LastViolation(); v != nil {
				t.Fatalf("unexpected violation: %v", v)
			}
		})
	}
}

package dmsnapshot

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// DefaultSnapBase is the copy-on-write store base sector the registry
// descriptor uses when loaded without options.
const DefaultSnapBase = 512

// Module returns the loaded core module, satisfying modules.Instance.
func (tg *Target) Module() *core.Module { return tg.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "dm-snapshot",
		Requires: []string{modules.SubBlock},
		// opt: uint64 snapshot store base sector.
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			base := uint64(DefaultSnapBase)
			if v, ok := opt.(uint64); ok {
				base = v
			}
			return Load(t, bc.K, bc.Block, base)
		},
	})
}

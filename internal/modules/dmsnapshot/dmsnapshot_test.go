package dmsnapshot_test

import (
	"bytes"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/dmsnapshot"
)

const snapBase = 512 // snapshot area starts at sector 512

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *blockdev.Layer, *core.Thread, mem.Addr, *dmsnapshot.Target) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	l := blockdev.Init(k)
	l.AddDisk(1, 1024)
	th := k.Sys.NewThread("dm")
	tg, err := dmsnapshot.Load(th, k, l, snapBase)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := l.CreateTarget(th, tg.Ops(), 0, 0, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	return k, l, th, ti, tg
}

func bio(t *testing.T, k *kernel.Kernel, l *blockdev.Layer, sector, rw uint64, payload []byte) mem.Addr {
	t.Helper()
	b, err := l.AllocBio(uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := k.Sys.AS.ReadU64(l.BioField(b, "data"))
	if rw == blockdev.WriteBio {
		if err := k.Sys.AS.Write(mem.Addr(data), payload); err != nil {
			t.Fatal(err)
		}
	}
	for f, v := range map[string]uint64{"sector": sector, "rw": rw, "len": uint64(len(payload))} {
		if err := k.Sys.AS.WriteU64(l.BioField(b, f), v); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestCopyOnWriteRedirects(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, l, th, ti, _ := rig(t, mode)
		// Seed the origin sector directly on disk.
		orig := bytes.Repeat([]byte{0xAA}, blockdev.SectorSize)
		copy(l.DiskBytes(1)[7*blockdev.SectorSize:], orig)

		// Write through the snapshot: must land in the snapshot area, not
		// on the origin.
		payload := bytes.Repeat([]byte{0xBB}, blockdev.SectorSize)
		if err := l.Submit(th, ti, bio(t, k, l, 7, blockdev.WriteBio, payload)); err != nil {
			t.Fatalf("[%v] write: %v", mode, err)
		}
		if !bytes.Equal(l.DiskBytes(1)[7*blockdev.SectorSize:8*blockdev.SectorSize], orig) {
			t.Fatalf("[%v] origin sector modified", mode)
		}
		if !bytes.Equal(l.DiskBytes(1)[snapBase*blockdev.SectorSize:(snapBase+1)*blockdev.SectorSize], payload) {
			t.Fatalf("[%v] snapshot area not written", mode)
		}

		// Read through the snapshot: sees the new data.
		rb := bio(t, k, l, 7, blockdev.ReadBio, make([]byte, blockdev.SectorSize))
		if err := l.Submit(th, ti, rb); err != nil {
			t.Fatalf("[%v] read: %v", mode, err)
		}
		data, _ := k.Sys.AS.ReadU64(l.BioField(rb, "data"))
		got, _ := k.Sys.AS.ReadBytes(mem.Addr(data), blockdev.SectorSize)
		if !bytes.Equal(got, payload) {
			t.Fatalf("[%v] snapshot read returned wrong data", mode)
		}

		// Reading an untouched sector falls through to the origin.
		rb2 := bio(t, k, l, 9, blockdev.ReadBio, make([]byte, blockdev.SectorSize))
		copy(l.DiskBytes(1)[9*blockdev.SectorSize:], bytes.Repeat([]byte{0xCC}, blockdev.SectorSize))
		if err := l.Submit(th, ti, rb2); err != nil {
			t.Fatalf("[%v] origin read: %v", mode, err)
		}
		data2, _ := k.Sys.AS.ReadU64(l.BioField(rb2, "data"))
		got2, _ := k.Sys.AS.ReadBytes(mem.Addr(data2), blockdev.SectorSize)
		if got2[0] != 0xCC {
			t.Fatalf("[%v] origin fall-through broken", mode)
		}
		if mode == core.Enforce && k.Sys.Mon.LastViolation() != nil {
			t.Fatalf("[%v] violation on legit I/O: %v", mode, k.Sys.Mon.LastViolation())
		}
	}
}

func TestRepeatedWriteReusesException(t *testing.T) {
	k, l, th, ti, _ := rig(t, core.Enforce)
	p1 := bytes.Repeat([]byte{1}, blockdev.SectorSize)
	p2 := bytes.Repeat([]byte{2}, blockdev.SectorSize)
	if err := l.Submit(th, ti, bio(t, k, l, 3, blockdev.WriteBio, p1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Submit(th, ti, bio(t, k, l, 3, blockdev.WriteBio, p2)); err != nil {
		t.Fatal(err)
	}
	// Both writes target the same snapshot chunk.
	if !bytes.Equal(l.DiskBytes(1)[snapBase*blockdev.SectorSize:(snapBase+1)*blockdev.SectorSize], p2) {
		t.Fatal("second write did not reuse the exception")
	}
	if !bytes.Equal(l.DiskBytes(1)[(snapBase+1)*blockdev.SectorSize:(snapBase+2)*blockdev.SectorSize],
		make([]byte, blockdev.SectorSize)) {
		t.Fatal("second write consumed a new chunk")
	}
}

func TestDtrFreesTable(t *testing.T) {
	k, l, th, ti, _ := rig(t, core.Enforce)
	table, _ := k.Sys.AS.ReadU64(l.TargetField(ti, "private"))
	if err := l.RemoveTarget(th, ti); err != nil {
		t.Fatal(err)
	}
	if k.Sys.Slab.Owns(mem.Addr(table)) {
		t.Fatal("exception table leaked")
	}
}

// Package dmsnapshot is the simulated dm-snapshot device-mapper target:
// a copy-on-write snapshot. Writes are redirected into a snapshot area
// and recorded in a per-target exception table; reads consult the table
// and fall through to the origin when no exception exists.
package dmsnapshot

import (
	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// MaxExceptions bounds the per-target exception table.
const MaxExceptions = 64

// table layout: [0] = next free snapshot chunk; [1+i*2] = origin sector,
// [2+i*2] = snapshot sector, for i < MaxExceptions.
const tableSize = (1 + 2*MaxExceptions) * 8

// Target is the loaded dm-snapshot module.
type Target struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gKmalloc *core.Gate
	gKfree   *core.Gate
	L        *blockdev.Layer

	// SnapBase is the first sector of the snapshot area on the backing
	// device.
	SnapBase uint64
}

// Load loads the module. snapBase is where the copy-on-write area
// begins on the backing device.
func Load(t *core.Thread, k *kernel.Kernel, l *blockdev.Layer, snapBase uint64) (*Target, error) {
	tg := &Target{L: l, SnapBase: snapBase}
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "dm-snapshot",
		Imports:  []string{"kmalloc", "kfree", "printk", "spin_lock_init", "spin_lock", "spin_unlock"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "ctr", Type: blockdev.DmCtr, Impl: tg.ctr},
			{Name: "dtr", Type: blockdev.DmDtr, Impl: tg.dtr},
			{Name: "map", Type: blockdev.DmMap, Impl: tg.mapBio},
			{Name: "init", Impl: tg.init},
		},
	})
	if err != nil {
		return nil, err
	}
	tg.M = m
	tg.gKmalloc = m.Gate("kmalloc")
	tg.gKfree = m.Gate("kfree")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return tg, nil
}

type initError struct{ err error }

func (e *initError) Error() string { return "dm-snapshot: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's dm_target_type table address.
func (tg *Target) Ops() mem.Addr { return tg.M.Data }

func (tg *Target) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for slot, fn := range map[string]string{"ctr": "ctr", "dtr": "dtr", "map": "map"} {
		if err := t.WriteU64(tg.L.OpsSlot(mod.Data, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	return 0
}

func (tg *Target) ctr(t *core.Thread, args []uint64) uint64 {
	ti := mem.Addr(args[0])
	table, err := tg.gKmalloc.Call1(t, tableSize)
	if err != nil || table == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	if err := t.WriteU64(tg.L.TargetField(ti, "private"), table); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (tg *Target) dtr(t *core.Thread, args []uint64) uint64 {
	ti := mem.Addr(args[0])
	table, _ := t.ReadU64(tg.L.TargetField(ti, "private"))
	if table != 0 {
		if _, err := tg.gKfree.Call1(t, table); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

// lookup scans the exception table for an origin sector; returns the
// snapshot sector and whether it exists.
func (tg *Target) lookup(t *core.Thread, table mem.Addr, origin uint64) (uint64, bool) {
	count, _ := t.ReadU64(table)
	for i := uint64(0); i < count && i < MaxExceptions; i++ {
		o, _ := t.ReadU64(table + mem.Addr((1+2*i)*8))
		if o == origin {
			s, _ := t.ReadU64(table + mem.Addr((2+2*i)*8))
			return s, true
		}
	}
	return 0, false
}

// mapBio implements copy-on-write remapping; the rewritten bio is handed
// back to the dm core (MapRemapped), which performs the actual I/O —
// exercising the conditional post transfer of the map annotation.
func (tg *Target) mapBio(t *core.Thread, args []uint64) uint64 {
	ti, bio := mem.Addr(args[0]), mem.Addr(args[1])
	table64, _ := t.ReadU64(tg.L.TargetField(ti, "private"))
	table := mem.Addr(table64)
	sector, _ := t.ReadU64(tg.L.BioField(bio, "sector"))
	rw, _ := t.ReadU64(tg.L.BioField(bio, "rw"))
	dev, _ := t.ReadU64(tg.L.TargetField(ti, "dev"))
	if err := t.WriteU64(tg.L.BioField(bio, "dev"), dev); err != nil {
		return kernel.Err(kernel.EFAULT)
	}

	if rw == blockdev.WriteBio {
		snap, ok := tg.lookup(t, table, sector)
		if !ok {
			count, _ := t.ReadU64(table)
			if count >= MaxExceptions {
				return kernel.Err(kernel.ENOMEM)
			}
			snap = tg.SnapBase + count
			if err := t.WriteU64(table+mem.Addr((1+2*count)*8), sector); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			if err := t.WriteU64(table+mem.Addr((2+2*count)*8), snap); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			if err := t.WriteU64(table, count+1); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
		}
		if err := t.WriteU64(tg.L.BioField(bio, "sector"), snap); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return blockdev.MapRemapped
	}

	if snap, ok := tg.lookup(t, table, sector); ok {
		if err := t.WriteU64(tg.L.BioField(bio, "sector"), snap); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return blockdev.MapRemapped
}

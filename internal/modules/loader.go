package modules

import (
	"fmt"
	"sync"
	"time"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// Loader loads, unloads, and hot-reloads registered modules against
// one boot context. It is safe for concurrent use; reloads of distinct
// modules serialise on the loader lock (the quiesce machinery below it
// is per-module, but substrate re-binding is not).
type Loader struct {
	BC *BootContext

	// QuiesceTimeout bounds how long Reload waits for in-flight
	// crossings to drain before aborting the reload.
	QuiesceTimeout time.Duration

	mu     sync.Mutex
	loaded map[string]*loadedModule
}

type loadedModule struct {
	desc *Descriptor
	inst Instance
	opt  any
}

// DefaultQuiesceTimeout is the drain bound a fresh Loader starts with:
// generous against scheduler noise, small against a hung crossing.
const DefaultQuiesceTimeout = 5 * time.Second

// NewLoader builds a loader with an empty boot context over k;
// substrates come up on demand as modules require them.
func NewLoader(k *kernel.Kernel) *Loader {
	return NewLoaderWith(&BootContext{K: k})
}

// NewLoaderWith builds a loader over a caller-shaped boot context
// (pre-plugged PCI devices, attached disks, ...).
func NewLoaderWith(bc *BootContext) *Loader {
	return &Loader{
		BC:             bc,
		QuiesceTimeout: DefaultQuiesceTimeout,
		loaded:         make(map[string]*loadedModule),
	}
}

// Load boots the named module with default options.
func (l *Loader) Load(t *core.Thread, name string) (Instance, error) {
	return l.LoadWith(t, name, nil)
}

// LoadWith boots the named module, passing opt to its descriptor (nil
// selects the module's defaults).
func (l *Loader) LoadWith(t *core.Thread, name string, opt any) (Instance, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.loaded[name]; dup {
		return nil, fmt.Errorf("modules: %s is already loaded", name)
	}
	d, err := mustLookup(name)
	if err != nil {
		return nil, err
	}
	inst, err := l.load(t, d, opt)
	if err != nil {
		return nil, err
	}
	l.loaded[name] = &loadedModule{desc: d, inst: inst, opt: opt}
	return inst, nil
}

// load resolves the descriptor's substrates and boots one generation.
func (l *Loader) load(t *core.Thread, d *Descriptor, opt any) (Instance, error) {
	for _, req := range d.Requires {
		if err := l.BC.ensure(req); err != nil {
			return nil, err
		}
	}
	return d.Load(t, l.BC, opt)
}

// Instance returns the loaded instance for name, if any.
func (l *Loader) Instance(name string) (Instance, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lm, ok := l.loaded[name]
	if !ok {
		return nil, false
	}
	return lm.inst, true
}

// Module returns the live core.Module for a loaded name.
func (l *Loader) Module(name string) (*core.Module, bool) {
	inst, ok := l.Instance(name)
	if !ok {
		return nil, false
	}
	return inst.Module(), true
}

// Loaded returns the names of currently loaded modules.
func (l *Loader) Loaded() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.loaded))
	for n := range l.loaded {
		out = append(out, n)
	}
	return out
}

// Unload unhooks the named module from its substrates and unloads it
// from the system, revoking its capabilities.
func (l *Loader) Unload(t *core.Thread, name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	lm, ok := l.loaded[name]
	if !ok {
		return fmt.Errorf("modules: %s is not loaded", name)
	}
	if lm.desc.Unload != nil {
		if err := lm.desc.Unload(t, l.BC, lm.inst); err != nil {
			return err
		}
	}
	l.BC.K.Sys.UnloadModule(lm.inst.Module().Name)
	delete(l.loaded, name)
	return nil
}

// ReloadStats reports what one hot reload did and what it cost.
type ReloadStats struct {
	Module    string `json:"module"`
	QuiesceNs int64  `json:"quiesce_ns"` // drain: new crossings parked, in-flight finished
	SwapNs    int64  `json:"swap_ns"`    // unhook, retire, fresh generation load
	MigrateNs int64  `json:"migrate_ns"` // capability snapshot replay into the successor
	TotalNs   int64  `json:"total_ns"`
	Instances int    `json:"instances"` // instance principals snapshotted
	Migrated  int    `json:"migrated"`  // capabilities re-granted in the successor
	Dropped   int    `json:"dropped"`   // capabilities cleanly revoked by the section filter
}

// Reload hot-swaps the named module for a freshly loaded generation:
//
//  1. Quiesce: new crossings park at the module's gates; in-flight
//     crossings drain (core.System.BeginReload).
//  2. Snapshot the instance principals' capabilities, run the
//     descriptor's Unload hook, and retire the old generation — its
//     name is freed and its capabilities revoked with an epoch bump,
//     but stale function-pointer slots still resolve.
//  3. Boot the fresh generation through the descriptor (same options),
//     migrate the snapshot into it — dropping capabilities that named
//     the old generation's sections or code — and publish it as the
//     successor. Parked crossings wake and re-bind; in-flight holders
//     of old gates or capabilities get violations under enforcement.
//
// If the fresh generation fails to load after the old one was retired,
// the loader rolls back: it boots another generation from the same
// descriptor (the retired code), migrates the capability snapshot into
// it, and publishes it — parked crossings resume against the rollback
// generation instead of failing with ErrModuleDead. Only when the
// rollback load fails too is the module dead and its name removed from
// the loader. An Unload-hook failure aborts the reload with the old
// generation intact.
func (l *Loader) Reload(t *core.Thread, name string) (*ReloadStats, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lm, ok := l.loaded[name]
	if !ok {
		return nil, fmt.Errorf("modules: %s is not loaded", name)
	}
	sys := l.BC.K.Sys
	oldM := lm.inst.Module()

	start := time.Now()
	if err := sys.BeginReload(oldM, l.QuiesceTimeout); err != nil {
		return nil, err
	}
	quiesced := time.Now()

	snap := oldM.Set.Snapshot()
	if lm.desc.Unload != nil {
		if err := lm.desc.Unload(t, l.BC, lm.inst); err != nil {
			sys.AbortReload(oldM)
			return nil, fmt.Errorf("modules: %s unload hook: %w", name, err)
		}
	}
	sys.RetireModule(oldM)

	inst, err := l.load(t, lm.desc, lm.opt)
	if err != nil {
		// Roll back: the old generation is already retired, but its
		// descriptor can still boot — load it again and migrate the
		// snapshot into the rollback generation so parked crossings
		// resume instead of dying with ErrModuleDead.
		rbInst, rbErr := l.load(t, lm.desc, lm.opt)
		if rbErr != nil {
			sys.FailReload(oldM)
			delete(l.loaded, name)
			return nil, fmt.Errorf("modules: reload of %s failed (%v); rollback failed too, module is dead: %w", name, err, rbErr)
		}
		rbM := rbInst.Module()
		sys.Caps.MigrateSnapshot(rbM.Set, snap, sectionFilter(oldM))
		sys.CompleteReload(oldM, rbM)
		lm.inst = rbInst
		return nil, fmt.Errorf("modules: reload of %s failed, rolled back to a fresh generation of the previous code: %w", name, err)
	}
	swapped := time.Now()

	newM := inst.Module()
	migrated, dropped := sys.Caps.MigrateSnapshot(newM.Set, snap, sectionFilter(oldM))
	sys.CompleteReload(oldM, newM)
	lm.inst = inst
	end := time.Now()

	return &ReloadStats{
		Module:    name,
		QuiesceNs: quiesced.Sub(start).Nanoseconds(),
		SwapNs:    swapped.Sub(quiesced).Nanoseconds(),
		MigrateNs: end.Sub(swapped).Nanoseconds(),
		TotalNs:   end.Sub(start).Nanoseconds(),
		Instances: len(snap.Instances),
		Migrated:  migrated,
		Dropped:   dropped,
	}, nil
}

// sectionFilter builds the migration filter for a retiring generation:
// WRITE capabilities into its data sections, REF capabilities naming
// objects inside them, and CALL capabilities targeting its functions
// die with it — the successor has its own sections and exports.
// Everything else (kernel-heap WRITEs, device REFs, kernel-export
// CALLs) migrates.
func sectionFilter(old *core.Module) caps.CapFilter {
	type region struct {
		base mem.Addr
		size uint64
	}
	var regs []region
	if old.DataSize > 0 {
		regs = append(regs, region{old.Data, old.DataSize})
	}
	if old.RODataSize > 0 {
		regs = append(regs, region{old.ROData, old.RODataSize})
	}
	code := make(map[mem.Addr]bool, len(old.Funcs))
	for _, fn := range old.Funcs {
		code[fn.Addr] = true
	}
	return func(c caps.Cap) bool {
		switch c.Kind {
		case caps.Call:
			return !code[c.Addr]
		case caps.Write:
			for _, r := range regs {
				if c.Addr < r.base+mem.Addr(r.size) && r.base < c.Addr+mem.Addr(c.Size) {
					return false
				}
			}
		case caps.Ref:
			for _, r := range regs {
				if c.Addr >= r.base && c.Addr < r.base+mem.Addr(r.size) {
					return false
				}
			}
		}
		return true
	}
}

package modules

import (
	"fmt"
	"sync"
	"time"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/failpoint"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

func init() {
	failpoint.Register("loader.load")
	failpoint.Register("loader.unload")
	failpoint.Register("loader.migrate")
}

// Loader loads, unloads, and hot-reloads registered modules against
// one boot context. It is safe for concurrent use, and lifecycle
// operations on *distinct* modules run concurrently: one module can be
// mid-quiesce while another swaps generations.
//
// Lock order (none of the four Coffman conditions can close into a
// cycle because no path holds one lock while waiting for another of
// the same rank):
//
//   - Loader.mu guards only the loaded map. It is a leaf taken for
//     map reads/writes and released before any lifecycle work,
//     substrate call, or loadedModule.mu acquisition.
//   - loadedModule.mu is the per-module lifecycle lock; Load, Unload,
//     and Reload hold it for their full critical section. A path that
//     ever needs the lifecycle locks of several modules must take them
//     in ascending module-name order (no current path takes two).
//   - loadedModule.instMu is a leaf below everything, guarding only
//     the inst pointer for readers that skip the lifecycle lock.
//   - BootContext.mu (substrate init) and the core/caps locks nest
//     strictly below a single lifecycle lock.
type Loader struct {
	BC *BootContext

	// QuiesceTimeout bounds how long Reload waits for in-flight
	// crossings to drain before aborting the reload.
	QuiesceTimeout time.Duration

	mu     sync.Mutex // leaf: guards the loaded map only
	loaded map[string]*loadedModule
}

type loadedModule struct {
	name string
	desc *Descriptor
	opt  any

	// mu serialises lifecycle operations (load/unload/reload) on this
	// module. Holders may call substrates and quiesce crossings; they
	// must not hold Loader.mu while doing so.
	mu sync.Mutex

	// instMu guards inst for readers that skip the lifecycle lock
	// (Instance, the supervisor's owner lookup). Mid-reload they
	// observe the outgoing generation, whose gates already park and
	// redirect, so a non-blocking read is always safe.
	instMu sync.Mutex
	inst   Instance
}

func (lm *loadedModule) instance() Instance {
	lm.instMu.Lock()
	defer lm.instMu.Unlock()
	return lm.inst
}

func (lm *loadedModule) setInstance(inst Instance) {
	lm.instMu.Lock()
	lm.inst = inst
	lm.instMu.Unlock()
}

// DefaultQuiesceTimeout is the drain bound a fresh Loader starts with:
// generous against scheduler noise, small against a hung crossing.
const DefaultQuiesceTimeout = 5 * time.Second

// NewLoader builds a loader with an empty boot context over k;
// substrates come up on demand as modules require them.
func NewLoader(k *kernel.Kernel) *Loader {
	return NewLoaderWith(&BootContext{K: k})
}

// NewLoaderWith builds a loader over a caller-shaped boot context
// (pre-plugged PCI devices, attached disks, ...).
func NewLoaderWith(bc *BootContext) *Loader {
	return &Loader{
		BC:             bc,
		QuiesceTimeout: DefaultQuiesceTimeout,
		loaded:         make(map[string]*loadedModule),
	}
}

// lookup returns the published entry for name (nil if none).
func (l *Loader) lookup(name string) *loadedModule {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loaded[name]
}

// isCurrent re-checks, after taking a module's lifecycle lock, that the
// entry is still the published one: the module may have been unloaded
// (and even re-loaded as a distinct entry) while we waited.
func (l *Loader) isCurrent(name string, lm *loadedModule) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loaded[name] == lm
}

// Load boots the named module with default options.
func (l *Loader) Load(t *core.Thread, name string) (Instance, error) {
	return l.LoadWith(t, name, nil)
}

// LoadWith boots the named module, passing opt to its descriptor (nil
// selects the module's defaults).
func (l *Loader) LoadWith(t *core.Thread, name string, opt any) (Instance, error) {
	d, err := mustLookup(name)
	if err != nil {
		return nil, err
	}
	lm := &loadedModule{name: name, desc: d, opt: opt}
	// Publish the entry with its lifecycle lock already held
	// (uncontended — nobody else can see lm yet), so a concurrent
	// Unload/Reload of the same name waits for the load to finish
	// instead of operating on a half-booted module.
	lm.mu.Lock()
	defer lm.mu.Unlock()
	l.mu.Lock()
	if _, dup := l.loaded[name]; dup {
		l.mu.Unlock()
		return nil, fmt.Errorf("modules: %s is already loaded", name)
	}
	l.loaded[name] = lm
	l.mu.Unlock()
	inst, err := l.load(t, d, opt)
	if err != nil {
		l.mu.Lock()
		delete(l.loaded, name)
		l.mu.Unlock()
		return nil, err
	}
	lm.setInstance(inst)
	return inst, nil
}

// load resolves the descriptor's substrates and boots one generation.
func (l *Loader) load(t *core.Thread, d *Descriptor, opt any) (Instance, error) {
	// Fault site: an injected error is a generation that failed to boot
	// (Reload's rollback path exercises it).
	if err := failpoint.InjectArg("loader.load", d.Name); err != nil {
		return nil, err
	}
	for _, req := range d.Requires {
		if err := l.BC.ensure(req); err != nil {
			return nil, err
		}
	}
	return d.Load(t, l.BC, opt)
}

// Instance returns the loaded instance for name, if any.
func (l *Loader) Instance(name string) (Instance, bool) {
	lm := l.lookup(name)
	if lm == nil {
		return nil, false
	}
	inst := lm.instance()
	if inst == nil {
		return nil, false // still booting
	}
	return inst, true
}

// Module returns the live core.Module for a loaded name.
func (l *Loader) Module(name string) (*core.Module, bool) {
	inst, ok := l.Instance(name)
	if !ok {
		return nil, false
	}
	return inst.Module(), true
}

// Loaded returns the names of currently loaded modules.
func (l *Loader) Loaded() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.loaded))
	for n := range l.loaded {
		out = append(out, n)
	}
	return out
}

// ownerOf maps a live core.Module name back to the loader entry name
// owning it (they normally coincide; the lookup tolerates descriptors
// whose instance module is named differently). The supervisor uses it
// to decide whether a violation concerns a module it manages.
func (l *Loader) ownerOf(moduleName string) (string, bool) {
	l.mu.Lock()
	entries := make([]*loadedModule, 0, len(l.loaded))
	for _, lm := range l.loaded {
		entries = append(entries, lm)
	}
	l.mu.Unlock()
	for _, lm := range entries {
		if inst := lm.instance(); inst != nil && inst.Module().Name == moduleName {
			return lm.name, true
		}
	}
	return "", false
}

// unloadHook runs the descriptor's Unload hook (plus the loader.unload
// fault site) for inst.
func (l *Loader) unloadHook(t *core.Thread, lm *loadedModule, inst Instance) error {
	if err := failpoint.InjectArg("loader.unload", lm.name); err != nil {
		return err
	}
	if lm.desc.Unload == nil {
		return nil
	}
	return lm.desc.Unload(t, l.BC, inst)
}

// Unload unhooks the named module from its substrates and unloads it
// from the system, revoking its capabilities.
func (l *Loader) Unload(t *core.Thread, name string) error {
	lm := l.lookup(name)
	if lm == nil {
		return fmt.Errorf("modules: %s is not loaded", name)
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if !l.isCurrent(name, lm) {
		return fmt.Errorf("modules: %s is not loaded", name)
	}
	if err := l.unloadHook(t, lm, lm.instance()); err != nil {
		return err
	}
	l.BC.K.Sys.UnloadModule(lm.instance().Module().Name)
	l.mu.Lock()
	delete(l.loaded, name)
	l.mu.Unlock()
	return nil
}

// ReloadStats reports what one hot reload did and what it cost.
type ReloadStats struct {
	Module    string `json:"module"`
	QuiesceNs int64  `json:"quiesce_ns"` // drain: new crossings parked, in-flight finished
	SwapNs    int64  `json:"swap_ns"`    // unhook, retire, fresh generation load
	MigrateNs int64  `json:"migrate_ns"` // capability snapshot replay into the successor
	TotalNs   int64  `json:"total_ns"`
	Instances int    `json:"instances"` // instance principals snapshotted
	Migrated  int    `json:"migrated"`  // capabilities re-granted in the successor
	Dropped   int    `json:"dropped"`   // capabilities cleanly revoked by the section filter
}

// Reload hot-swaps the named module for a freshly loaded generation:
//
//  1. Quiesce: new crossings park at the module's gates; in-flight
//     crossings drain (core.System.BeginReload).
//  2. Snapshot the instance principals' capabilities, run the
//     descriptor's Unload hook, and retire the old generation — its
//     name is freed and its capabilities revoked with an epoch bump,
//     but stale function-pointer slots still resolve.
//  3. Boot the fresh generation through the descriptor (same options),
//     migrate the snapshot into it — dropping capabilities that named
//     the old generation's sections or code — and publish it as the
//     successor. Parked crossings wake and re-bind; in-flight holders
//     of old gates or capabilities get violations under enforcement.
//
// If the fresh generation fails to load after the old one was retired,
// the loader rolls back: it boots another generation from the same
// descriptor (the retired code), migrates the capability snapshot into
// it, and publishes it — parked crossings resume against the rollback
// generation instead of failing with ErrModuleDead. Only when the
// rollback load fails too is the module dead and its name removed from
// the loader. An Unload-hook failure aborts the reload with the old
// generation intact.
//
// Only the reloading module's own lifecycle lock is held: reloads of
// distinct modules proceed concurrently (one can sit in quiesce while
// another swaps).
func (l *Loader) Reload(t *core.Thread, name string) (*ReloadStats, error) {
	lm := l.lookup(name)
	if lm == nil {
		return nil, fmt.Errorf("modules: %s is not loaded", name)
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if !l.isCurrent(name, lm) {
		return nil, fmt.Errorf("modules: %s is not loaded", name)
	}
	sys := l.BC.K.Sys
	oldM := lm.instance().Module()

	start := time.Now()
	if err := sys.BeginReload(oldM, l.QuiesceTimeout); err != nil {
		return nil, err
	}
	quiesced := time.Now()

	snap := oldM.Set.Snapshot()
	if err := l.unloadHook(t, lm, lm.instance()); err != nil {
		sys.AbortReload(oldM)
		return nil, fmt.Errorf("modules: %s unload hook: %w", name, err)
	}
	sys.RetireModule(oldM)

	inst, err := l.load(t, lm.desc, lm.opt)
	if err == nil {
		// Fault site: the fresh generation booted but its capability
		// migration is made to fail. Unhook and unload the unpublished
		// successor, then take the rollback path as if the load itself
		// had failed.
		if ferr := failpoint.InjectArg("loader.migrate", name); ferr != nil {
			_ = l.unloadHook(t, lm, inst)
			sys.UnloadModule(inst.Module().Name)
			inst, err = nil, ferr
		}
	}
	if err != nil {
		// Roll back: the old generation is already retired, but its
		// descriptor can still boot — load it again and migrate the
		// snapshot into the rollback generation so parked crossings
		// resume instead of dying with ErrModuleDead.
		rbInst, rbErr := l.load(t, lm.desc, lm.opt)
		if rbErr != nil {
			sys.FailReload(oldM)
			l.mu.Lock()
			delete(l.loaded, name)
			l.mu.Unlock()
			return nil, fmt.Errorf("modules: reload of %s failed (%v); rollback failed too, module is dead: %w", name, err, rbErr)
		}
		rbM := rbInst.Module()
		sys.Caps.MigrateSnapshot(rbM.Set, snap, sectionFilter(oldM))
		sys.CompleteReload(oldM, rbM)
		lm.setInstance(rbInst)
		return nil, fmt.Errorf("modules: reload of %s failed, rolled back to a fresh generation of the previous code: %w", name, err)
	}
	swapped := time.Now()

	newM := inst.Module()
	migrated, dropped := sys.Caps.MigrateSnapshot(newM.Set, snap, sectionFilter(oldM))
	sys.CompleteReload(oldM, newM)
	lm.setInstance(inst)
	end := time.Now()

	return &ReloadStats{
		Module:    name,
		QuiesceNs: quiesced.Sub(start).Nanoseconds(),
		SwapNs:    swapped.Sub(quiesced).Nanoseconds(),
		MigrateNs: end.Sub(swapped).Nanoseconds(),
		TotalNs:   end.Sub(start).Nanoseconds(),
		Instances: len(snap.Instances),
		Migrated:  migrated,
		Dropped:   dropped,
	}, nil
}

// sectionFilter builds the migration filter for a retiring generation:
// WRITE capabilities into its data sections, REF capabilities naming
// objects inside them, and CALL capabilities targeting its functions
// die with it — the successor has its own sections and exports.
// Everything else (kernel-heap WRITEs, device REFs, kernel-export
// CALLs) migrates.
func sectionFilter(old *core.Module) caps.CapFilter {
	type region struct {
		base mem.Addr
		size uint64
	}
	var regs []region
	if old.DataSize > 0 {
		regs = append(regs, region{old.Data, old.DataSize})
	}
	if old.RODataSize > 0 {
		regs = append(regs, region{old.ROData, old.RODataSize})
	}
	code := make(map[mem.Addr]bool, len(old.Funcs))
	for _, fn := range old.Funcs {
		code[fn.Addr] = true
	}
	return func(c caps.Cap) bool {
		switch c.Kind {
		case caps.Call:
			return !code[c.Addr]
		case caps.Write:
			for _, r := range regs {
				if c.Addr < r.base+mem.Addr(r.size) && r.base < c.Addr+mem.Addr(c.Size) {
					return false
				}
			}
		case caps.Ref:
			for _, r := range regs {
				if c.Addr >= r.base && c.Addr < r.base+mem.Addr(r.size) {
					return false
				}
			}
		}
		return true
	}
}

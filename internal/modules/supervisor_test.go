package modules_test

// Supervisor coverage: a violation (or contained stock-mode panic)
// quarantines the module and the supervisor restarts it; the circuit
// breaker and restart budget bound restarts under enforcement (with a
// forensic dump at the tripping violation); the recovery metrics reach
// System.Metrics(); and reloads of distinct modules run concurrently —
// one can sit in quiesce while the other swaps generations.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lxfi/internal/core"
	"lxfi/internal/failpoint"
	"lxfi/internal/kernel"
	"lxfi/internal/modules"
	"lxfi/internal/modules/can"
	"lxfi/internal/modules/econet"
)

// eventLog collects supervisor events for assertions.
type eventLog struct {
	mu  sync.Mutex
	evs []modules.SupervisorEvent
}

func (l *eventLog) add(ev modules.SupervisorEvent) {
	l.mu.Lock()
	l.evs = append(l.evs, ev)
	l.mu.Unlock()
}

func (l *eventLog) kinds() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.evs))
	for i, ev := range l.evs {
		out[i] = ev.Kind
	}
	return out
}

func (l *eventLog) has(kind string) bool {
	for _, k := range l.kinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// killEconet arms a one-shot contained panic at the kernel-export
// boundary and trips it with a socket(2): econet's create calls
// kmalloc, the gate converts the panic into a module kill.
func killEconet(t *testing.T, ld *modules.Loader, th *core.Thread) {
	t.Helper()
	failpoint.Arm("kernel.entry", failpoint.Policy{Arg: "kmalloc", Panic: true, OneShot: true})
	if _, err := ld.BC.Net.Socket(th, econet.Family); err == nil {
		t.Fatal("socket succeeded with a panic armed at kmalloc")
	}
	m, ok := ld.Module("econet")
	if !ok || !m.Dead() {
		t.Fatal("contained panic did not kill the module")
	}
}

func TestSupervisorRestartsKilledModule(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		t.Run(mode.String(), func(t *testing.T) {
			defer failpoint.DisarmAll()
			ld, th := newLoader(t, mode)
			if _, err := ld.Load(th, "econet"); err != nil {
				t.Fatal(err)
			}
			log := &eventLog{}
			sup := modules.StartSupervisor(ld, modules.SupervisorConfig{
				Backoff: time.Millisecond, OnEvent: log.add,
			})
			defer sup.Stop()

			killEconet(t, ld, th)
			if !sup.WaitIdle(5 * time.Second) {
				t.Fatal("supervisor did not recover the module in time")
			}
			m, ok := ld.Module("econet")
			if !ok || m.Dead() {
				t.Fatal("module not alive after supervised restart")
			}
			// The restarted generation serves traffic.
			sock, err := ld.BC.Net.Socket(th, econet.Family)
			if err != nil {
				t.Fatalf("socket after restart: %v", err)
			}
			user := ld.BC.K.Sys.User.Alloc(64, 8)
			if _, err := ld.BC.Net.Sendmsg(th, sock, user, 16, 0); err != nil {
				t.Fatalf("sendmsg after restart: %v", err)
			}
			if got := sup.Restarts(); got != 1 {
				t.Fatalf("restarts = %d, want 1", got)
			}
			if !log.has(modules.EventQuarantine) || !log.has(modules.EventRestart) {
				t.Fatalf("event log %v missing quarantine/restart", log.kinds())
			}

			// In enforce mode the contained panic is an attributed
			// violation; in stock mode the log stays empty (an oops is
			// not a policy decision).
			viols := ld.BC.K.Sys.Mon.Violations()
			if mode == core.Enforce {
				if len(viols) != 1 || viols[0].Op != "panic" {
					t.Fatalf("violations = %v, want one panic violation", viols)
				}
			} else if len(viols) != 0 {
				t.Fatalf("stock mode recorded violations: %v", viols)
			}

			// The supervisor slice of the metrics registry.
			ms := ld.BC.K.Sys.Metrics()
			if ms.Supervisor == nil {
				t.Fatal("Metrics().Supervisor missing while supervisor runs")
			}
			if ms.Supervisor.RestartsTotal != 1 || ms.Supervisor.Quarantined != 0 ||
				ms.Supervisor.BreakerOpen != 0 || ms.Supervisor.RecoverySamples != 1 {
				t.Fatalf("supervisor metrics = %+v", ms.Supervisor)
			}
			if ms.Supervisor.RecoveryP99Ns == 0 || len(ms.Supervisor.RecoveryNs) == 0 {
				t.Fatalf("recovery histogram empty: %+v", ms.Supervisor)
			}
		})
	}
}

func TestSupervisorStopRemovesMetricsSource(t *testing.T) {
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatal(err)
	}
	sup := modules.StartSupervisor(ld, modules.SupervisorConfig{})
	if ld.BC.K.Sys.Metrics().Supervisor == nil {
		t.Fatal("no supervisor metrics while running")
	}
	sup.Stop()
	if ld.BC.K.Sys.Metrics().Supervisor != nil {
		t.Fatal("supervisor metrics still published after Stop")
	}
}

func TestSupervisorBreakerOpensUnderEnforcement(t *testing.T) {
	defer failpoint.DisarmAll()
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	sup := modules.StartSupervisor(ld, modules.SupervisorConfig{
		Backoff:         time.Millisecond,
		BreakerFailures: 3,
		BreakerWindow:   time.Minute,
		OnEvent:         log.add,
	})
	defer sup.Stop()

	// Two deaths restart; the third inside the window trips the breaker.
	for i := 0; i < 3; i++ {
		killEconet(t, ld, th)
		if !sup.WaitIdle(5 * time.Second) {
			t.Fatalf("death %d: supervisor stuck", i+1)
		}
	}
	if !sup.BreakerOpen("econet") {
		t.Fatal("breaker did not open after 3 deaths in the window")
	}
	if got := sup.Restarts(); got != 2 {
		t.Fatalf("restarts = %d, want 2 (third death opens the breaker)", got)
	}
	if !log.has(modules.EventBreakerOpen) {
		t.Fatalf("event log %v missing breaker-open", log.kinds())
	}

	// The module stays dead and the netstack degrades gracefully:
	// ENETDOWN-mapped, ErrModuleDead still in the chain, no hang.
	if m, ok := ld.Module("econet"); !ok || !m.Dead() {
		t.Fatal("module restarted despite an open breaker")
	}
	_, err := ld.BC.Net.Socket(th, econet.Family)
	if !errors.Is(err, core.ErrModuleDead) {
		t.Fatalf("socket on broken module: %v, want ErrModuleDead in chain", err)
	}
	var deg *core.DegradedError
	if !errors.As(err, &deg) || deg.Errno != kernel.ENETDOWN {
		t.Fatalf("socket on broken module: %v, want DegradedError(ENETDOWN)", err)
	}

	// The dump-at-violation forensics were retained.
	d := sup.Dump("econet")
	if d == nil {
		t.Fatal("no forensic dump at breaker open")
	}
	if len(d.Violations) == 0 {
		t.Fatal("breaker dump carries no violation log")
	}
	ms := ld.BC.K.Sys.Metrics()
	if ms.Supervisor.BreakerOpen != 1 {
		t.Fatalf("metrics breaker_open = %d, want 1", ms.Supervisor.BreakerOpen)
	}
}

func TestSupervisorBreakerDoesNotOpenInStockMode(t *testing.T) {
	defer failpoint.DisarmAll()
	ld, th := newLoader(t, core.Off)
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatal(err)
	}
	sup := modules.StartSupervisor(ld, modules.SupervisorConfig{
		Backoff:         time.Millisecond,
		BreakerFailures: 3,
		BreakerWindow:   time.Minute,
	})
	defer sup.Stop()

	// Stock mode has no attribution to justify refusing service: the
	// supervisor keeps restarting past the breaker threshold.
	for i := 0; i < 5; i++ {
		killEconet(t, ld, th)
		if !sup.WaitIdle(5 * time.Second) {
			t.Fatalf("death %d: supervisor stuck", i+1)
		}
	}
	if sup.BreakerOpen("econet") {
		t.Fatal("breaker opened in stock mode")
	}
	if got := sup.Restarts(); got != 5 {
		t.Fatalf("restarts = %d, want 5", got)
	}
	if m, ok := ld.Module("econet"); !ok || m.Dead() {
		t.Fatal("module not alive after stock-mode restarts")
	}
}

func TestSupervisorRestartBudget(t *testing.T) {
	defer failpoint.DisarmAll()
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	sup := modules.StartSupervisor(ld, modules.SupervisorConfig{
		Backoff: time.Millisecond, RestartBudget: 1, OnEvent: log.add,
	})
	defer sup.Stop()

	killEconet(t, ld, th)
	if !sup.WaitIdle(5 * time.Second) {
		t.Fatal("first restart did not happen")
	}
	killEconet(t, ld, th)
	if !sup.WaitIdle(5 * time.Second) {
		t.Fatal("supervisor stuck after budget exhaustion")
	}
	if got := sup.Restarts(); got != 1 {
		t.Fatalf("restarts = %d, want 1 (budget)", got)
	}
	if !log.has(modules.EventBudgetExhausted) {
		t.Fatalf("event log %v missing budget-exhausted", log.kinds())
	}
	if m, ok := ld.Module("econet"); !ok || !m.Dead() {
		t.Fatal("module restarted past its budget")
	}
	if sup.Dump("econet") == nil {
		t.Fatal("no forensic dump at budget exhaustion")
	}
}

// TestConcurrentReloadDistinctModules pins the per-module lifecycle
// locking: a reload stalled in quiesce (an in-flight crossing pinned
// inside econet) must not serialise a concurrent reload of can.
func TestConcurrentReloadDistinctModules(t *testing.T) {
	defer failpoint.DisarmAll()
	ld, th := newLoader(t, core.Enforce)
	if _, err := ld.Load(th, "econet"); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Load(th, "can"); err != nil {
		t.Fatal(err)
	}
	sys := ld.BC.K.Sys

	// Pin a crossing inside econet: socket(2) reaches econet's create,
	// whose kmalloc call blocks in the failpoint callback.
	entered := make(chan struct{})
	release := make(chan struct{})
	failpoint.Arm("kernel.entry", failpoint.Policy{
		Arg: "kmalloc", OneShot: true,
		Do: func(string) error { close(entered); <-release; return nil },
	})
	sockDone := make(chan error, 1)
	go func() {
		wth := sys.NewThread("pinned-worker")
		_, err := ld.BC.Net.Socket(wth, econet.Family)
		sockDone <- err
	}()
	<-entered

	// econet's reload parks in quiesce behind the pinned crossing.
	econetDone := make(chan error, 1)
	go func() {
		rth := sys.NewThread("econet-reloader")
		_, err := ld.Reload(rth, "econet")
		econetDone <- err
	}()

	// can's reload must complete while econet is still quiescing.
	if _, err := ld.Reload(th, "can"); err != nil {
		t.Fatalf("concurrent can reload: %v", err)
	}
	select {
	case err := <-econetDone:
		t.Fatalf("econet reload finished with its crossing still pinned (err=%v)", err)
	default:
	}

	close(release)
	if err := <-sockDone; err != nil {
		t.Fatalf("pinned socket: %v", err)
	}
	if err := <-econetDone; err != nil {
		t.Fatalf("econet reload: %v", err)
	}
	// Both modules serve traffic on their fresh generations.
	sock, err := ld.BC.Net.Socket(th, econet.Family)
	if err != nil {
		t.Fatal(err)
	}
	user := sys.User.Alloc(64, 8)
	if _, err := ld.BC.Net.Sendmsg(th, sock, user, 16, 0); err != nil {
		t.Fatal(err)
	}
	csock, err := ld.BC.Net.Socket(th, can.Family)
	if err != nil {
		t.Fatalf("can socket after reload: %v", err)
	}
	if csock == 0 {
		t.Fatal("nil can socket")
	}
	if v := sys.Mon.LastViolation(); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
}

// Package all registers every module descriptor. Blank-import it to
// make the full module catalogue loadable by name:
//
//	import _ "lxfi/internal/modules/all"
package all

import (
	_ "lxfi/internal/modules/can"
	_ "lxfi/internal/modules/canbcm"
	_ "lxfi/internal/modules/dmcrypt"
	_ "lxfi/internal/modules/dmsnapshot"
	_ "lxfi/internal/modules/dmzero"
	_ "lxfi/internal/modules/e1000sim"
	_ "lxfi/internal/modules/econet"
	_ "lxfi/internal/modules/minixsim"
	_ "lxfi/internal/modules/rds"
	_ "lxfi/internal/modules/sndens1370"
	_ "lxfi/internal/modules/sndintel8x0"
	_ "lxfi/internal/modules/tmpfssim"
)

package sndens1370

import (
	"lxfi/internal/core"
	"lxfi/internal/modules"
)

// Module returns the loaded core module, satisfying modules.Instance.
func (d *Driver) Module() *core.Module { return d.M }

func init() {
	modules.Register(modules.Descriptor{
		Name:     "snd-ens1370",
		Requires: []string{modules.SubSound},
		Load: func(t *core.Thread, bc *modules.BootContext, opt any) (modules.Instance, error) {
			return Load(t, bc.K, bc.Snd)
		},
	})
}

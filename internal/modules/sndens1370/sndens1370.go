// Package sndens1370 is the simulated snd-ens1370 (Ensoniq AudioPCI)
// sound driver — the second sound module of Figure 9. Unlike the AC'97
// intel8x0 driver it programs a small register file (sample rate and
// control registers held in module-owned memory) on every trigger, and
// uses a smaller DMA buffer.
//
// In the paper's annotation count the two sound drivers share most of
// their annotations: both implement the same snd_pcm_ops interface, so
// only the module bodies differ.
package sndens1370

import (
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/sound"
)

// BufferSize is the ES1370 DMA buffer size.
const BufferSize = 1024

// Register file offsets (within the kmalloc'd register block).
const (
	regControl = 0
	regRate    = 8
	regFrame   = 16
	regSize    = 24
)

// DefaultRate is the ES1370 fixed DAC1 sample rate.
const DefaultRate = 44100

// Driver is the loaded module.
type Driver struct {
	M *core.Module

	// Bound kernel-call gates, resolved once at load (bind-time
	// resolution: crossings perform no symbol lookup).
	gKmalloc *core.Gate
	gKfree   *core.Gate
	S        *sound.Sound

	// regs maps a card to its register block (module bookkeeping, as a
	// real driver would keep in its chip struct).
	regs map[mem.Addr]mem.Addr

	// Played counts samples the "hardware" consumed.
	Played uint64
}

// Load loads the module and installs its ops table.
func Load(t *core.Thread, k *kernel.Kernel, s *sound.Sound) (*Driver, error) {
	d := &Driver{S: s, regs: make(map[mem.Addr]mem.Addr)}
	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "snd-ens1370",
		Imports:  []string{"kmalloc", "kfree", "printk"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "open", Type: sound.PcmOpen, Impl: d.open},
			{Name: "close", Type: sound.PcmClose, Impl: d.close},
			{Name: "trigger", Type: sound.PcmTrigger, Impl: d.trigger},
			{Name: "pointer", Type: sound.PcmPointer, Impl: d.pointer},
			{Name: "init", Impl: d.init},
		},
	})
	if err != nil {
		return nil, err
	}
	d.M = m
	d.gKmalloc = m.Gate("kmalloc")
	d.gKfree = m.Gate("kfree")
	if ret, err := t.CallModule(m, "init"); err != nil || ret != 0 {
		return nil, &initError{err}
	}
	return d, nil
}

type initError struct{ err error }

func (e *initError) Error() string { return "snd-ens1370: init failed" }
func (e *initError) Unwrap() error { return e.err }

// Ops returns the module's snd_pcm_ops table address.
func (d *Driver) Ops() mem.Addr { return d.M.Data }

func (d *Driver) init(t *core.Thread, args []uint64) uint64 {
	mod := t.CurrentModule()
	for slot, fn := range map[string]string{
		"open": "open", "close": "close", "trigger": "trigger", "pointer": "pointer",
	} {
		if err := t.WriteU64(d.S.OpsSlot(mod.Data, slot), uint64(mod.Funcs[fn].Addr)); err != nil {
			return 1
		}
	}
	return 0
}

// open allocates the DMA buffer and the register block, then programs
// the fixed DAC1 rate.
func (d *Driver) open(t *core.Thread, args []uint64) uint64 {
	card := mem.Addr(args[0])
	buf, err := d.gKmalloc.Call1(t, BufferSize)
	if err != nil || buf == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	regs, err := d.gKmalloc.Call1(t, regSize)
	if err != nil || regs == 0 {
		return kernel.Err(kernel.ENOMEM)
	}
	d.regs[card] = mem.Addr(regs)
	if err := t.WriteU64(mem.Addr(regs)+regRate, DefaultRate); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(d.S.CardField(card, "buf"), buf); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	if err := t.WriteU64(d.S.CardField(card, "buflen"), BufferSize); err != nil {
		return kernel.Err(kernel.EFAULT)
	}
	return 0
}

func (d *Driver) close(t *core.Thread, args []uint64) uint64 {
	card := mem.Addr(args[0])
	buf, _ := t.ReadU64(d.S.CardField(card, "buf"))
	if buf != 0 {
		if _, err := d.gKfree.Call1(t, buf); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	if regs, ok := d.regs[card]; ok {
		delete(d.regs, card)
		if _, err := d.gKfree.Call1(t, uint64(regs)); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
	}
	return 0
}

// trigger programs the control register and advances the frame counter.
func (d *Driver) trigger(t *core.Thread, args []uint64) uint64 {
	card, cmd := mem.Addr(args[0]), args[1]
	regs, ok := d.regs[card]
	if !ok {
		return kernel.Err(kernel.EINVAL)
	}
	switch cmd {
	case sound.TriggerStart:
		if err := t.WriteU64(regs+regControl, 1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		buflen, _ := t.ReadU64(d.S.CardField(card, "buflen"))
		frame, _ := t.ReadU64(regs + regFrame)
		if err := t.WriteU64(regs+regFrame, frame+1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		pos, _ := t.ReadU64(d.S.CardField(card, "pos"))
		if err := t.WriteU64(d.S.CardField(card, "pos"), pos+buflen); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		if err := t.WriteU64(d.S.CardField(card, "playing"), 1); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		d.Played += buflen
		return 0
	case sound.TriggerStop:
		if err := t.WriteU64(regs+regControl, 0); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		if err := t.WriteU64(d.S.CardField(card, "playing"), 0); err != nil {
			return kernel.Err(kernel.EFAULT)
		}
		return 0
	}
	return kernel.Err(kernel.EINVAL)
}

func (d *Driver) pointer(t *core.Thread, args []uint64) uint64 {
	pos, _ := t.ReadU64(d.S.CardField(mem.Addr(args[0]), "pos"))
	return pos
}

// Rate returns the programmed sample rate of a card (test
// introspection).
func (d *Driver) Rate(card mem.Addr) uint64 {
	regs, ok := d.regs[card]
	if !ok {
		return 0
	}
	r, _ := d.S.K.Sys.AS.ReadU64(regs + regRate)
	return r
}

package sndens1370_test

import (
	"bytes"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/sndens1370"
	"lxfi/internal/sound"
)

func rig(t *testing.T, mode core.Mode) (*kernel.Kernel, *sound.Sound, *core.Thread, *sndens1370.Driver) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	s := sound.Init(k)
	th := k.Sys.NewThread("snd")
	d, err := sndens1370.Load(th, k, s)
	if err != nil {
		t.Fatal(err)
	}
	return k, s, th, d
}

func TestPlaybackAndRegisters(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		k, s, th, d := rig(t, mode)
		card, err := s.NewCard(th, d.Ops())
		if err != nil {
			t.Fatalf("[%v] open: %v", mode, err)
		}
		if d.Rate(card) != sndens1370.DefaultRate {
			t.Fatalf("[%v] DAC rate = %d", mode, d.Rate(card))
		}
		if err := s.Playback(th, card, bytes.Repeat([]byte{1}, 256)); err != nil {
			t.Fatalf("[%v] playback: %v", mode, err)
		}
		pos, err := s.Pointer(th, card)
		if err != nil || pos != sndens1370.BufferSize {
			t.Fatalf("[%v] pointer = %d, %v", mode, pos, err)
		}
		if err := s.Close(th, card); err != nil {
			t.Fatalf("[%v] close: %v", mode, err)
		}
		if mode == core.Enforce && k.Sys.Mon.LastViolation() != nil {
			t.Fatalf("[%v] violation on legit playback: %v", mode, k.Sys.Mon.LastViolation())
		}
	}
}

func TestOversizePlaybackRejected(t *testing.T) {
	_, s, th, d := rig(t, core.Enforce)
	card, _ := s.NewCard(th, d.Ops())
	if err := s.Playback(th, card, make([]byte, sndens1370.BufferSize+1)); err == nil {
		t.Fatal("oversize playback accepted")
	}
}

func TestRegisterBlockFreedOnClose(t *testing.T) {
	k, s, th, d := rig(t, core.Enforce)
	card, _ := s.NewCard(th, d.Ops())
	buf, _ := k.Sys.AS.ReadU64(s.CardField(card, "buf"))
	if err := s.Close(th, card); err != nil {
		t.Fatal(err)
	}
	if k.Sys.Slab.Owns(mem.Addr(buf)) {
		t.Fatal("DMA buffer leaked")
	}
	if d.Rate(card) != 0 {
		t.Fatal("register block survived close")
	}
}

package wst

import (
	"testing"
	"testing/quick"

	"lxfi/internal/mem"
)

const base = mem.Addr(0xffff880000010000)

func TestMarkAndProbe(t *testing.T) {
	tr := New()
	if !tr.Empty(base) {
		t.Fatal("fresh tracker must be empty")
	}
	tr.MarkRange(base+10, 4)
	if tr.Empty(base + 10) {
		t.Fatal("marked segment reported empty")
	}
	// Same 64-byte segment.
	if tr.Empty(base) || tr.Empty(base+63) {
		t.Fatal("segment granularity: whole 64-byte segment should be marked")
	}
	// Next segment untouched.
	if !tr.Empty(base + 64) {
		t.Fatal("next segment should be empty")
	}
}

func TestMarkRangeSpanningSegmentsAndPages(t *testing.T) {
	tr := New()
	start := base + mem.PageSize - 100
	tr.MarkRange(start, 200) // crosses a page boundary
	for a := start; a < start+200; a += 16 {
		if tr.Empty(a) {
			t.Fatalf("addr %#x should be marked", uint64(a))
		}
	}
	if !tr.EmptyRange(base, 64) {
		t.Fatal("unrelated range marked")
	}
	if tr.EmptyRange(start, 200) {
		t.Fatal("EmptyRange over marked range")
	}
}

func TestClearRange(t *testing.T) {
	tr := New()
	tr.MarkRange(base, 256)
	// Clearing a partially-covered segment must be conservative.
	tr.ClearRange(base+1, 255)
	if tr.Empty(base) {
		t.Fatal("partially cleared first segment must stay marked")
	}
	for a := base + 64; a < base+256; a += 64 {
		if !tr.Empty(a) {
			t.Fatalf("segment %#x should be cleared", uint64(a))
		}
	}
	// Full clear.
	tr.MarkRange(base, 256)
	tr.ClearRange(base, 256)
	if !tr.EmptyRange(base, 256) {
		t.Fatal("full clear failed")
	}
}

func TestZeroSize(t *testing.T) {
	tr := New()
	tr.MarkRange(base, 0)
	if !tr.Empty(base) {
		t.Fatal("zero-size mark must be a no-op")
	}
	tr.ClearRange(base, 0)
	if !tr.EmptyRange(base, 0) {
		t.Fatal("zero-size range is trivially empty")
	}
}

func TestStats(t *testing.T) {
	tr := New()
	tr.MarkRange(base, 8)
	tr.Empty(base)      // slow path
	tr.Empty(base + 64) // fast path (empty)
	marks, probes, hits := tr.Stats()
	if marks != 1 || probes != 2 || hits != 1 {
		t.Fatalf("stats = %d/%d/%d", marks, probes, hits)
	}
	tr.Reset()
	marks, probes, hits = tr.Stats()
	if marks != 0 || probes != 0 || hits != 0 {
		t.Fatal("reset failed")
	}
	if !tr.Empty(base) {
		t.Fatal("reset should clear marks")
	}
}

// Property: every address inside a marked range probes non-empty, and a
// mark never affects addresses more than a segment away from the range.
func TestMarkProperty(t *testing.T) {
	f := func(off uint16, size uint16, probe uint16) bool {
		tr := New()
		sz := uint64(size%5000) + 1
		start := base + mem.Addr(off)
		tr.MarkRange(start, sz)
		// Inside: never empty.
		in := start + mem.Addr(uint64(probe)%sz)
		if tr.Empty(in) {
			return false
		}
		// Far outside: always empty.
		if !tr.Empty(start + mem.Addr(sz) + 2*SegmentSize) {
			return false
		}
		return tr.Empty(start - 2*SegmentSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package wst implements LXFI's writer-set tracking optimization (§4.1,
// §5 of the paper).
//
// To make core-kernel indirect calls cheap, LXFI keeps, per memory
// segment, a flag saying whether any module principal has been granted a
// WRITE capability covering that segment since it was last zeroed. At an
// indirect call site, if the flag is clear the expensive capability check
// is skipped entirely ("the runtime can bypass the relatively expensive
// capability check for the function pointer"). The actual contents of
// non-empty writer sets are computed on the slow path by traversing the
// global list of principals (caps.System.WriteGrantees).
//
// The structure mirrors the paper's "data structure similar to a page
// table": a map from page base to a 64-bit bitmap whose bits cover
// 64-byte segments of the page.
package wst

import (
	"sync"

	"lxfi/internal/mem"
)

// SegmentSize is the granularity of writer-set emptiness tracking.
const SegmentSize = 64

const segsPerPage = mem.PageSize / SegmentSize // 64 — fits one uint64 bitmap

// Tracker records, per 64-byte segment, whether the writer set is
// non-empty.
type Tracker struct {
	mu    sync.Mutex
	pages map[mem.Addr]uint64 // page base -> segment bitmap

	marks  uint64 // MarkRange calls
	probes uint64 // Empty probes
	hits   uint64 // probes that found an empty writer set (fast path)
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{pages: make(map[mem.Addr]uint64)}
}

func segBit(a mem.Addr) (page mem.Addr, bit uint) {
	return mem.PageBase(a), uint((a & mem.PageMask) / SegmentSize)
}

// MarkRange records that some principal was granted WRITE access to
// [addr, addr+size).
func (t *Tracker) MarkRange(addr mem.Addr, size uint64) {
	if size == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.marks++
	first := addr / SegmentSize
	last := (addr + mem.Addr(size) - 1) / SegmentSize
	for s := first; s <= last; s++ {
		a := s * SegmentSize
		page, bit := segBit(a)
		t.pages[page] |= 1 << bit
	}
}

// ClearRange marks [addr, addr+size) as having an empty writer set
// again; called when memory is zeroed/freed and all WRITE capabilities
// for it have been revoked. Partial segments at the edges stay marked
// (conservative).
func (t *Tracker) ClearRange(addr mem.Addr, size uint64) {
	if size == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := addr + mem.Addr(size)
	// Only fully-covered segments may be cleared.
	first := (addr + SegmentSize - 1) / SegmentSize
	last := end / SegmentSize // exclusive
	for s := first; s < last; s++ {
		a := s * SegmentSize
		page, bit := segBit(a)
		if m, ok := t.pages[page]; ok {
			m &^= 1 << bit
			if m == 0 {
				delete(t.pages, page)
			} else {
				t.pages[page] = m
			}
		}
	}
}

// Empty reports whether the writer set for the segment containing addr
// is empty. This is the constant-time fast-path test.
func (t *Tracker) Empty(addr mem.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emptyLocked(addr)
}

func (t *Tracker) emptyLocked(addr mem.Addr) bool {
	t.probes++
	page, bit := segBit(addr)
	m, ok := t.pages[page]
	empty := !ok || m&(1<<bit) == 0
	if empty {
		t.hits++
	}
	return empty
}

// EmptyRange reports whether every segment covering [addr, addr+size)
// has an empty writer set.
func (t *Tracker) EmptyRange(addr mem.Addr, size uint64) bool {
	if size == 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	first := addr / SegmentSize
	last := (addr + mem.Addr(size) - 1) / SegmentSize
	for s := first; s <= last; s++ {
		if !t.emptyLocked(s * SegmentSize) {
			return false
		}
	}
	return true
}

// Pages returns a copy of the page-base → segment-bitmap map, for
// coredump snapshots.
func (t *Tracker) Pages() map[mem.Addr]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[mem.Addr]uint64, len(t.pages))
	for k, v := range t.pages {
		out[k] = v
	}
	return out
}

// Stats returns (marks, probes, fast-path hits).
func (t *Tracker) Stats() (marks, probes, hits uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.marks, t.probes, t.hits
}

// Reset clears all tracking state and counters.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pages = make(map[mem.Addr]uint64)
	t.marks, t.probes, t.hits = 0, 0, 0
}

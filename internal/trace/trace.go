// Package trace is the LXFI flight recorder: a per-thread fixed-size
// trace ring that records every crossing event from the hot path, plus
// the shared metrics registry (metrics.go) the monitor exports as JSON.
//
// Design constraints, in order:
//
//   - Zero allocations per event. An Event is a fixed-size struct of
//     integers, static strings (gate/export names live for the process
//     lifetime, so copying the string header copies no bytes), and one
//     pointer-shaped interface for the principal — rendered lazily at
//     snapshot time, never on the hot path.
//   - No shared locks. A Ring belongs to exactly one core.Thread and
//     follows the same per-CPU confinement contract as the thread's
//     shadow stack and check cache: writes are plain unsynchronized
//     stores by the owning goroutine. Reads are legal only from the
//     owning goroutine, after the thread is joined, or at a caller-
//     proven quiesce point; the coredump wiring honors this by dumping
//     only the violating thread's ring from a violation hook.
//   - Bounded latency cost. Two monotonic clock reads cost ~75ns on a
//     2011-class Xeon, which would blow the <10% budget over a ~240ns
//     enforced crossing; the recorder therefore stamps latency on a
//     1-in-SampleEvery grid (LatencyNs = -1 on unsampled events) and
//     feeds only the sampled values to the shared histogram.
package trace

import "time"

// DefaultEvents is the default ring capacity (a power of two). At 256
// events a ring is ~28 KiB — small enough to attach to every thread,
// deep enough to hold the full crossing chain leading up to a
// violation.
const DefaultEvents = 256

// DefaultSampleEvery is the default latency sampling period: one
// crossing in this many (a power of two) pays the two clock reads.
const DefaultSampleEvery = 16

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	// KindKernelCall is a completed mediated module→kernel crossing.
	KindKernelCall Kind = 1 + iota
	// KindModuleCall is a completed enforced kernel→module crossing.
	KindModuleCall
	// KindViolation is a failed LXFI check (the crossing or guard that
	// raised it did not complete).
	KindViolation
)

func (k Kind) String() string {
	switch k {
	case KindKernelCall:
		return "kernel_call"
	case KindModuleCall:
		return "module_call"
	case KindViolation:
		return "violation"
	}
	return "?"
}

// PrincipalRef is the shape of a principal reference stored in an
// Event. Storing the pointer behind a pre-sized interface keeps event
// recording allocation-free; the name is rendered only when a snapshot
// serializes the ring.
type PrincipalRef interface{ String() string }

// Event is one flight-recorder record. The struct is fixed-size and
// self-contained: copying it into the ring is the entire recording
// cost.
type Event struct {
	// Seq is the ring-local sequence number (monotonic from 0).
	Seq uint64
	// Kind classifies the event; Denied is set on violations.
	Kind   Kind
	Denied bool
	// Checks and Misses count the capability checks the crossing
	// executed and how many of them missed the thread's check cache
	// (both saturate at 65535).
	Checks uint16
	Misses uint16
	// Name is the gate/export/function name (violations: the op).
	Name string
	// Module is the module side of the crossing ("kernel" when none).
	Module string
	// Prin is the acting principal; nil means trusted kernel context.
	Prin PrincipalRef
	// Addr is the crossing target (violations: the faulting address).
	Addr uint64
	// Epoch is the capability epoch observed when the event was
	// recorded.
	Epoch uint64
	// LatencyNs is the crossing's wall time; -1 when the event did not
	// fall on the latency-sampling grid.
	LatencyNs int64
	// Detail carries the violation detail; empty on crossings.
	Detail string
}

// Ring is a fixed-size single-writer trace ring. All methods except
// Tail are owner-only (see the package comment for the confinement
// contract).
type Ring struct {
	mask        uint64
	sampleMask  uint64 // sampleEvery-1; ^0 disables sampling
	seq         uint64
	ev          []Event
	sampleEvery int
}

// NewRing builds a ring with the given capacity and latency sampling
// period; both are rounded up to powers of two. sampleEvery <= 0
// disables latency sampling entirely.
func NewRing(events, sampleEvery int) *Ring {
	if events < 2 {
		events = 2
	}
	size := 1
	for size < events {
		size <<= 1
	}
	r := &Ring{mask: uint64(size - 1), ev: make([]Event, size)}
	if sampleEvery <= 0 {
		r.sampleMask = ^uint64(0)
		return r
	}
	p := 1
	for p < sampleEvery {
		p <<= 1
	}
	r.sampleEvery = p
	r.sampleMask = uint64(p - 1)
	return r
}

// Cap returns the ring capacity in events.
func (r *Ring) Cap() int { return len(r.ev) }

// SampleEvery returns the latency sampling period (0 when disabled).
func (r *Ring) SampleEvery() int { return r.sampleEvery }

// Seq returns the number of events recorded so far.
func (r *Ring) Seq() uint64 { return r.seq }

// Sampled reports whether the next recorded event lands on the
// latency-sampling grid. Crossings consult it on entry, so nested
// crossings recorded in between can shift an outer event off the grid;
// sampling is statistical, not exact, and that is fine.
func (r *Ring) Sampled() bool { return r.seq&r.sampleMask == 0 && r.sampleEvery != 0 }

// Record appends one event, overwriting the oldest once the ring is
// full. e.Seq is assigned by the ring.
func (r *Ring) Record(e Event) {
	e.Seq = r.seq
	r.ev[r.seq&r.mask] = e
	r.seq++
}

// Next claims the slot for the next event — zeroed, with Seq assigned —
// and advances the ring. Hot-path callers fill the fields in place,
// saving the argument copy Record would cost. The slot is only valid
// until the caller's next ring operation.
func (r *Ring) Next() *Event {
	e := &r.ev[r.seq&r.mask]
	*e = Event{Seq: r.seq}
	r.seq++
	return e
}

// Len returns the number of events currently held (at most Cap).
func (r *Ring) Len() int {
	if r.seq < uint64(len(r.ev)) {
		return int(r.seq)
	}
	return len(r.ev)
}

// Tail copies out the retained events, oldest first. Like every read
// of per-thread state it is only safe from the owning goroutine or
// once the owner is quiesced.
func (r *Ring) Tail() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	for i := r.seq - uint64(n); i != r.seq; i++ {
		out = append(out, r.ev[i&r.mask])
	}
	return out
}

// base anchors the recorder's monotonic clock. time.Since on a
// monotonic base compiles to a single nanotime read — the cheapest
// portable timestamp available without linkname tricks.
var base = time.Now()

// Now returns nanoseconds since the recorder clock's base.
func Now() int64 { return int64(time.Since(base)) }

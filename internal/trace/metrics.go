package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// histBuckets covers latencies from 1ns to ~9.2s in powers of two.
const histBuckets = 34

// Hist is a log2-bucketed latency histogram. Buckets are atomic so
// sampled observations from many threads fold in without a lock; the
// histogram is a leaf in the lock order (it takes nothing and is taken
// under nothing).
type Hist struct {
	count   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe folds one latency (nanoseconds) into the histogram.
// Negative values (unsampled sentinels) are ignored.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		return
	}
	b := 0
	for v := uint64(ns); v > 0 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Bucket is one non-empty histogram bucket: Count observations with
// latency <= LeNs (and above the previous bucket's bound).
type Bucket struct {
	LeNs  uint64 `json:"le_ns"`
	Count uint64 `json:"count"`
}

// Snapshot returns the non-empty buckets in ascending bound order.
func (h *Hist) Snapshot() []Bucket {
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c != 0 {
			bound := uint64(1) << uint(i)
			if i == 0 {
				bound = 0
			}
			out = append(out, Bucket{LeNs: bound, Count: c})
		}
	}
	return out
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1)
// latency, or 0 with no observations.
func (h *Hist) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want == 0 {
		want = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= want {
			if i == 0 {
				return 0
			}
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << uint(histBuckets-1)
}

// reset zeroes the histogram. Callers must guarantee no concurrent
// Observe (the monitor's ResetStats contract).
func (h *Hist) reset() {
	h.count.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Metrics is the monitor-level registry piece the flight recorder owns:
// the crossing-latency histogram fed by sampled ring events and the
// per-module violation counters. The violation map's mutex is a leaf
// lock touched only on the (cold) violation path and in snapshots.
type Metrics struct {
	// Latency holds sampled crossing latencies.
	Latency Hist

	mu         sync.Mutex
	violations map[string]uint64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{violations: make(map[string]uint64)}
}

// Violation counts one violation against module.
func (m *Metrics) Violation(module string) {
	m.mu.Lock()
	m.violations[module]++
	m.mu.Unlock()
}

// ViolationCounts returns a copy of the per-module violation counters.
func (m *Metrics) ViolationCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.violations))
	for k, v := range m.violations {
		out[k] = v
	}
	return out
}

// ViolationModules returns the modules with recorded violations,
// sorted.
func (m *Metrics) ViolationModules() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.violations))
	for k := range m.violations {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Reset clears the histogram and the violation counters. Callers must
// quiesce concurrent observers first (same contract as ResetStats).
func (m *Metrics) Reset() {
	m.Latency.reset()
	m.mu.Lock()
	m.violations = make(map[string]uint64)
	m.mu.Unlock()
}

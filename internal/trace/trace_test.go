package trace

import "testing"

func TestRingRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 2}, {2, 2}, {3, 4}, {100, 128}, {256, 256},
	} {
		if got := NewRing(tc.in, 0).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingWrapKeepsNewestEvents(t *testing.T) {
	r := NewRing(8, 0)
	for i := 0; i < 20; i++ {
		r.Record(Event{Addr: uint64(i)})
	}
	if r.Seq() != 20 {
		t.Fatalf("Seq = %d, want 20", r.Seq())
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	tail := r.Tail()
	if len(tail) != 8 {
		t.Fatalf("Tail len = %d, want 8", len(tail))
	}
	for i, e := range tail {
		want := uint64(12 + i) // events 12..19 survive, oldest first
		if e.Addr != want || e.Seq != want {
			t.Errorf("tail[%d] = (addr %d, seq %d), want %d", i, e.Addr, e.Seq, want)
		}
	}
}

func TestRingPartialTail(t *testing.T) {
	r := NewRing(8, 0)
	r.Record(Event{Addr: 7})
	r.Record(Event{Addr: 9})
	tail := r.Tail()
	if len(tail) != 2 || tail[0].Addr != 7 || tail[1].Addr != 9 {
		t.Fatalf("Tail = %+v, want addrs [7 9]", tail)
	}
}

func TestRingNextMatchesRecord(t *testing.T) {
	r := NewRing(4, 0)
	e := r.Next()
	e.Addr = 42
	if r.Seq() != 1 {
		t.Fatalf("Seq after Next = %d, want 1", r.Seq())
	}
	tail := r.Tail()
	if len(tail) != 1 || tail[0].Addr != 42 || tail[0].Seq != 0 {
		t.Fatalf("Tail = %+v, want one event addr 42 seq 0", tail)
	}
	// Next must hand out a zeroed slot even after a wrap.
	for i := 0; i < 4; i++ {
		r.Record(Event{Detail: "stale"})
	}
	if e := r.Next(); e.Detail != "" {
		t.Fatalf("Next returned dirty slot: %+v", e)
	}
}

func TestRingSampling(t *testing.T) {
	r := NewRing(16, 4)
	var sampled int
	for i := 0; i < 32; i++ {
		if r.Sampled() {
			sampled++
		}
		r.Record(Event{})
	}
	if sampled != 8 {
		t.Fatalf("sampled %d of 32 with period 4, want 8", sampled)
	}
	// sampleEvery <= 0 disables sampling.
	off := NewRing(16, 0)
	for i := 0; i < 32; i++ {
		if off.Sampled() {
			t.Fatal("disabled ring reported a sampled slot")
		}
		off.Record(Event{})
	}
	if off.SampleEvery() != 0 {
		t.Fatalf("SampleEvery = %d, want 0", off.SampleEvery())
	}
}

func TestHistBucketsAndQuantile(t *testing.T) {
	var h Hist
	h.Observe(-5) // ignored
	h.Observe(0)
	h.Observe(1)
	h.Observe(100)  // -> bucket le 128
	h.Observe(1000) // -> bucket le 1024
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	snap := h.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	var total uint64
	prev := int64(-1)
	for _, b := range snap {
		if int64(b.LeNs) <= prev {
			t.Fatalf("buckets not ascending: %+v", snap)
		}
		prev = int64(b.LeNs)
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
	if q := h.Quantile(1.0); q < 1000 {
		t.Fatalf("p100 = %d, want >= 1000", q)
	}
	if q := h.Quantile(0.25); q > 1 {
		t.Fatalf("p25 = %d, want <= 1", q)
	}
	if (&Hist{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestMetricsViolationsAndReset(t *testing.T) {
	m := NewMetrics()
	m.Violation("rds")
	m.Violation("rds")
	m.Violation("econet")
	vc := m.ViolationCounts()
	if vc["rds"] != 2 || vc["econet"] != 1 {
		t.Fatalf("ViolationCounts = %v", vc)
	}
	mods := m.ViolationModules()
	if len(mods) != 2 || mods[0] != "econet" || mods[1] != "rds" {
		t.Fatalf("ViolationModules = %v", mods)
	}
	m.Latency.Observe(50)
	m.Reset()
	if len(m.ViolationCounts()) != 0 || m.Latency.Count() != 0 {
		t.Fatal("Reset left state behind")
	}
}

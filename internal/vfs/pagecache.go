package vfs

import (
	"fmt"
	"sort"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

type pageKey struct {
	ino mem.Addr
	idx uint64
}

// SetPageBudget caps the number of cached pages (0 = unlimited).
// Inserting a page past the budget evicts least-recently-used pages;
// a dirty victim is first written back through the owning module's
// writepage — memory pressure, not just an explicit Sync, now drives
// pages through the module's REF-checked writeback path.
func (v *VFS) SetPageBudget(n int) {
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	v.pageBudget = n
}

// PageBudget returns the configured page-cache budget (0 = unlimited).
func (v *VFS) PageBudget() int {
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	return v.pageBudget
}

// ShrinkToBudget applies the page budget to the cache as it stands —
// the explicit memory-pressure edge of the policy that otherwise runs
// on every insert. Dirty victims go through writeback, so the caller's
// thread crosses into the owning modules. The caller must hold no mount
// lock (victim mounts are locked as needed).
func (v *VFS) ShrinkToBudget(t *core.Thread) { v.evictForBudget(t, nil) }

// touchPage marks a page most-recently used. Caller holds pageMu.
func (v *VFS) touchPage(key pageKey) {
	if e, ok := v.lruPos[key]; ok {
		v.lru.MoveToBack(e)
	}
}

// insertPage records a fresh page in the cache and the LRU list, then
// applies the budget. Caller holds holder.mu but not pageMu.
func (v *VFS) insertPage(t *core.Thread, holder *mount, key pageKey, pg mem.Addr) {
	v.pageMu.Lock()
	v.pages[key] = pg
	v.lruPos[key] = v.lru.PushBack(key)
	v.pageMu.Unlock()
	v.evictForBudget(t, holder)
}

// removePageLocked frees a cached page and drops every index entry for
// it. Caller holds pageMu.
func (v *VFS) removePageLocked(key pageKey) {
	pg, ok := v.pages[key]
	if !ok {
		return
	}
	_ = v.K.Sys.Slab.Free(pg)
	delete(v.pages, key)
	delete(v.dirty, key)
	delete(v.dirtyTick, key)
	if e, ok := v.lruPos[key]; ok {
		v.lru.Remove(e)
		delete(v.lruPos, key)
	}
}

// evictForBudget walks the LRU end of the cache until it fits the
// budget. The most-recently inserted page is never a victim — the
// caller is still using it. Unevictable pages (memory-only mounts,
// failed writebacks, mounts whose lock another thread holds) are
// skipped, so the cache can exceed the budget when nothing else
// remains. holder is the mount whose lock the calling thread already
// holds (nil when none).
func (v *VFS) evictForBudget(t *core.Thread, holder *mount) {
	// skip remembers victims that refused eviction this pass; allocated
	// lazily so the common unlimited-budget insert pays nothing extra.
	var skip map[pageKey]bool
	for {
		v.pageMu.Lock()
		if v.pageBudget <= 0 || len(v.pages) <= v.pageBudget {
			v.pageMu.Unlock()
			return
		}
		var victim pageKey
		found := false
		for e := v.lru.Front(); e != nil && e.Next() != nil; e = e.Next() {
			key := e.Value.(pageKey)
			if !skip[key] {
				victim, found = key, true
				break
			}
		}
		v.pageMu.Unlock()
		if !found {
			return // nothing evictable remains
		}
		if !v.evictPage(t, holder, victim) {
			if skip == nil {
				skip = make(map[pageKey]bool)
			}
			skip[victim] = true
		}
	}
}

// evictPage tries to reclaim one page: dirty victims are forced through
// the owning module's writepage first (the REF-capability crossing), so
// eviction under enforcement exercises the same contract as Sync.
// Returns false if the page must stay (memory-only mount, dead module,
// failed writeback, or the owning mount is busy on another thread).
// Caller holds holder.mu (when holder != nil) and not pageMu.
func (v *VFS) evictPage(t *core.Thread, holder *mount, key pageKey) bool {
	as := v.K.Sys.AS
	owner, _ := as.ReadU64(v.InodeField(key.ino, "sb"))
	sb := mem.Addr(owner)
	if flags, _ := as.ReadU64(v.SBField(sb, "flags")); flags&SBMemOnly != 0 {
		return false
	}
	mnt := v.mountOf(sb)
	if mnt == nil {
		return false
	}
	// Evicting another mount's page needs that mount's lock. TryLock
	// keeps the lock order acyclic: a thread never *blocks* on a second
	// mount lock, so two mounts evicting each other's pages cannot
	// deadlock — one of them just skips the victim.
	if mnt != holder {
		if !mnt.mu.TryLock() {
			return false
		}
		defer mnt.mu.Unlock()
	}
	v.pageMu.Lock()
	pg, cached := v.pages[key]
	dirty := v.dirty[key]
	v.pageMu.Unlock()
	if !cached {
		return true // already gone
	}
	if dirty {
		if ok, _ := v.writeBackPage(t, mnt, key, pg); !ok {
			return false // stays dirty; Sync (or a later pass) retries
		}
		v.Stats.EvictWrites.Add(1)
		mnt.wbForced.Add(1)
	}
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	if cur, ok := v.pages[key]; !ok || cur != pg || v.dirty[key] {
		// Redirtied or replaced while we crossed; not our victim anymore.
		return false
	}
	v.removePageLocked(key)
	v.Stats.Evictions.Add(1)
	return true
}

// writeBackPage pushes one dirty page through the owning module's
// writepage and clears the dirty bit on success. Caller holds mnt.mu
// but not pageMu.
func (v *VFS) writeBackPage(t *core.Thread, mnt *mount, key pageKey, pg mem.Addr) (bool, error) {
	v.Stats.PageWrites.Add(1)
	ret, err := v.gWritePage.CallArgs(t, v.OpsSlot(mnt.fs.ops, "writepage"),
		mnt.args(uint64(mnt.sb), uint64(key.ino), key.idx, uint64(pg)))
	if err == nil && ret != 0 {
		err = fmt.Errorf("vfs: writepage(%#x, %d): errno %d", uint64(key.ino), key.idx, -int64(ret))
	}
	if err != nil {
		return false, err
	}
	mnt.wbFlushed.Add(1)
	v.pageMu.Lock()
	if cur, ok := v.pages[key]; ok && cur == pg {
		delete(v.dirty, key)
		delete(v.dirtyTick, key)
	}
	v.pageMu.Unlock()
	return true, nil
}

// getPage returns the cached page for (inode, idx), filling a fresh one
// through the module's readpage callback on a miss. Ownership of the
// page travels with the call: WRITE transfers to the mount's principal
// on entry and back to the kernel on successful return. Caller holds
// mnt.mu, which is what keeps two fills of the same page from racing.
func (v *VFS) getPage(t *core.Thread, mnt *mount, ino mem.Addr, idx uint64) (mem.Addr, error) {
	key := pageKey{ino, idx}
	v.pageMu.Lock()
	if pg, ok := v.pages[key]; ok {
		v.touchPage(key)
		v.pageMu.Unlock()
		return pg, nil
	}
	v.pageMu.Unlock()
	sys := v.K.Sys
	pg, err := sys.Slab.Alloc(mem.PageSize)
	if err != nil {
		return 0, err
	}
	v.Stats.PageFills.Add(1)
	ret, err := v.gReadPage.CallArgs(t, v.OpsSlot(mnt.fs.ops, "readpage"),
		mnt.args(uint64(mnt.sb), uint64(ino), idx, uint64(pg)))
	if err != nil || ret != 0 {
		// The revoke post-action (or the aborted call) already stripped
		// the module's WRITE; make sure no grant survives an interrupted
		// annotation run, then recycle the page.
		sys.Caps.RevokeAll(caps.WriteCap(pg, mem.PageSize))
		_ = sys.Slab.Free(pg)
		if err == nil {
			err = fmt.Errorf("vfs: readpage(%#x, %d): errno %d", uint64(ino), idx, -int64(ret))
		}
		return 0, err
	}
	v.insertPage(t, mnt, key, pg)
	return pg, nil
}

// allocPage returns the cached page for (inode, idx), or installs a
// fresh zeroed one without consulting the module — for writes that
// cover the entire page. Caller holds mnt.mu.
func (v *VFS) allocPage(t *core.Thread, mnt *mount, ino mem.Addr, idx uint64) (mem.Addr, error) {
	key := pageKey{ino, idx}
	v.pageMu.Lock()
	if pg, ok := v.pages[key]; ok {
		v.touchPage(key)
		v.pageMu.Unlock()
		return pg, nil
	}
	v.pageMu.Unlock()
	pg, err := v.K.Sys.Slab.Alloc(mem.PageSize)
	if err != nil {
		return 0, err
	}
	must(v.K.Sys.AS.Zero(pg, mem.PageSize))
	v.insertPage(t, mnt, key, pg)
	return pg, nil
}

// Read copies n bytes starting at off out of the file's page cache,
// bounded by the inode size. Cold pages are filled by the module;
// everything else is a trusted kernel-side copy.
func (v *VFS) Read(t *core.Thread, sb mem.Addr, path string, off, n uint64) (_ []byte, rerr error) {
	defer func() { rerr = degradeFS("vfs.read", rerr) }()
	mnt, err := v.lockMount(sb)
	if err != nil {
		return nil, err
	}
	defer mnt.mu.Unlock()
	d, err := v.walk(t, mnt, path)
	if err != nil {
		return nil, err
	}
	as := v.K.Sys.AS
	size, _ := as.ReadU64(v.InodeField(d.inode, "size"))
	if off >= size {
		return nil, nil
	}
	if off+n > size {
		n = size - off
	}
	out := make([]byte, n)
	for done := uint64(0); done < n; {
		pos := off + done
		idx := pos / mem.PageSize
		po := pos % mem.PageSize
		chunk := mem.PageSize - po
		if rem := n - done; chunk > rem {
			chunk = rem
		}
		pg, err := v.getPage(t, mnt, d.inode, idx)
		if err != nil {
			return nil, err
		}
		if err := as.Read(pg+mem.Addr(po), out[done:done+chunk]); err != nil {
			return nil, err
		}
		done += chunk
	}
	v.Stats.BytesRead.Add(n)
	return out, nil
}

// Write copies data into the page cache at off, marking the touched
// pages dirty and growing the inode size. Partially covered cold pages
// are read-modify-write (the module fills them first via readpage);
// fully covered cold pages skip the readpage round-trip — their old
// contents are dead on arrival, so reading them back would only leak
// stale bytes and pay a pointless module crossing.
func (v *VFS) Write(t *core.Thread, sb mem.Addr, path string, off uint64, data []byte) (_ uint64, rerr error) {
	defer func() { rerr = degradeFS("vfs.write", rerr) }()
	mnt, err := v.lockMount(sb)
	if err != nil {
		return 0, err
	}
	defer mnt.mu.Unlock()
	d, err := v.walk(t, mnt, path)
	if err != nil {
		return 0, err
	}
	as := v.K.Sys.AS
	n := uint64(len(data))
	// s_maxbytes: the module declares its per-file capacity at mount
	// time (0 = unlimited); writes past it are rejected before any page
	// is dirtied, so an unpersistable page can never wedge Sync.
	if maxb, _ := as.ReadU64(v.SBField(sb, "maxbytes")); maxb != 0 && off+n > maxb {
		return 0, fmt.Errorf("vfs: %s: errno %d", path, kernel.EFBIG)
	}
	for done := uint64(0); done < n; {
		pos := off + done
		idx := pos / mem.PageSize
		po := pos % mem.PageSize
		chunk := mem.PageSize - po
		if rem := n - done; chunk > rem {
			chunk = rem
		}
		var pg mem.Addr
		if chunk == mem.PageSize {
			pg, err = v.allocPage(t, mnt, d.inode, idx)
		} else {
			pg, err = v.getPage(t, mnt, d.inode, idx)
		}
		if err != nil {
			return done, err
		}
		if err := as.Write(pg+mem.Addr(po), data[done:done+chunk]); err != nil {
			return done, err
		}
		v.pageMu.Lock()
		v.dirty[pageKey{d.inode, idx}] = true
		v.dirtyTick[pageKey{d.inode, idx}] = v.flushTick.Load()
		v.pageMu.Unlock()
		done += chunk
	}
	if size, _ := as.ReadU64(v.InodeField(d.inode, "size")); off+n > size {
		must(as.WriteU64(v.InodeField(d.inode, "size"), off+n))
	}
	v.Stats.BytesWrited.Add(n)
	return n, nil
}

// dirtyKeysOf collects the mount's dirty pages, sorted for stable
// writeback order.
func (v *VFS) dirtyKeysOf(sb mem.Addr, aged bool, tick uint64) []pageKey {
	as := v.K.Sys.AS
	v.pageMu.Lock()
	var keys []pageKey
	for key := range v.dirty {
		if aged && v.dirtyTick[key] >= tick {
			continue
		}
		if owner, _ := as.ReadU64(v.InodeField(key.ino, "sb")); mem.Addr(owner) == sb {
			keys = append(keys, key)
		}
	}
	v.pageMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ino != keys[j].ino {
			return keys[i].ino < keys[j].ino
		}
		return keys[i].idx < keys[j].idx
	})
	return keys
}

// syncLocked writes the given dirty pages back through the module's
// writepage. Caller holds mnt.mu. A page that fails writeback stays
// dirty, but the pass continues: one bad page must not block the
// persistence of every page sorting after it. The first error is
// reported.
func (v *VFS) syncLocked(t *core.Thread, mnt *mount, keys []pageKey) error {
	var firstErr error
	for _, key := range keys {
		v.pageMu.Lock()
		pg, ok := v.pages[key]
		dirty := v.dirty[key]
		v.pageMu.Unlock()
		if !ok || !dirty {
			continue // evicted or cleaned while we flushed its neighbors
		}
		if _, err := v.writeBackPage(t, mnt, key, pg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync writes every dirty page of the mount back through the module's
// writepage callback (REF handoff: the module proves ownership to
// pc_writeback but cannot modify the clean page).
func (v *VFS) Sync(t *core.Thread, sb mem.Addr) (rerr error) {
	defer func() { rerr = degradeFS("vfs.sync", rerr) }()
	mnt, err := v.lockMount(sb)
	if err != nil {
		return err
	}
	defer mnt.mu.Unlock()
	return v.syncLocked(t, mnt, v.dirtyKeysOf(sb, false, 0))
}

// DropCaches evicts every clean page of the mount (sync first to evict
// everything), so the next read refills from the module — the cold-read
// path fsperf measures. Memory-only mounts (SBMemOnly) are never
// evicted: their page cache is the only copy of the data, and a no-op
// writepage having cleared the dirty bit does not change that.
func (v *VFS) DropCaches(sb mem.Addr) int {
	mnt, err := v.lockMount(sb)
	if err != nil {
		return 0
	}
	defer mnt.mu.Unlock()
	as := v.K.Sys.AS
	if flags, _ := as.ReadU64(v.SBField(sb, "flags")); flags&SBMemOnly != 0 {
		return 0
	}
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	dropped := 0
	for key := range v.pages {
		if v.dirty[key] {
			continue
		}
		if owner, _ := as.ReadU64(v.InodeField(key.ino, "sb")); mem.Addr(owner) != sb {
			continue
		}
		v.removePageLocked(key)
		dropped++
	}
	return dropped
}

// dropPagesOf evicts every page (dirty or not) of a dying inode.
func (v *VFS) dropPagesOf(ino mem.Addr) {
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	for key := range v.pages {
		if key.ino == ino {
			v.removePageLocked(key)
		}
	}
}

// PageAddr exposes the cached page address for (inode, idx); tests and
// the exploit harness use it to locate victim pages.
func (v *VFS) PageAddr(ino mem.Addr, idx uint64) (mem.Addr, bool) {
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	pg, ok := v.pages[pageKey{ino, idx}]
	return pg, ok
}

// CachedPage is one page-cache entry as coredump snapshots see it.
type CachedPage struct {
	Ino   mem.Addr
	Idx   uint64
	Page  mem.Addr
	Dirty bool
}

// DumpPages copies out the page cache (sorted by inode then index) and
// the dirty count. It takes only pageMu — a leaf below every mount lock
// — so it is safe even from a violation hook that fires mid-crossing.
func (v *VFS) DumpPages() ([]CachedPage, int) {
	v.pageMu.Lock()
	out := make([]CachedPage, 0, len(v.pages))
	for key, pg := range v.pages {
		out = append(out, CachedPage{Ino: key.ino, Idx: key.idx, Page: pg, Dirty: v.dirty[key]})
	}
	dirty := len(v.dirty)
	v.pageMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ino != out[j].Ino {
			return out[i].Ino < out[j].Ino
		}
		return out[i].Idx < out[j].Idx
	})
	return out, dirty
}

// PageCount returns the number of cached pages.
func (v *VFS) PageCount() int {
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	return len(v.pages)
}

// DirtyCount returns the number of dirty cached pages.
func (v *VFS) DirtyCount() int {
	v.pageMu.Lock()
	defer v.pageMu.Unlock()
	return len(v.dirty)
}

// WritebackStats is one mount's writeback activity.
type WritebackStats struct {
	PagesFlushed     uint64 // successful writepage crossings for this mount
	ForcedForeground uint64 // dirty victims the LRU policy had to write back itself
}

// WritebackStats returns the writeback counters of a mounted
// superblock.
func (v *VFS) WritebackStats(sb mem.Addr) (WritebackStats, bool) {
	mnt := v.mountOf(sb)
	if mnt == nil {
		return WritebackStats{}, false
	}
	return WritebackStats{
		PagesFlushed:     mnt.wbFlushed.Load(),
		ForcedForeground: mnt.wbForced.Load(),
	}, true
}

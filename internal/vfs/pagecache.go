package vfs

import (
	"fmt"
	"sort"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

type pageKey struct {
	ino mem.Addr
	idx uint64
}

// SetPageBudget caps the number of cached pages (0 = unlimited).
// Inserting a page past the budget evicts least-recently-used pages;
// a dirty victim is first written back through the owning module's
// writepage — memory pressure, not just an explicit Sync, now drives
// pages through the module's REF-checked writeback path.
func (v *VFS) SetPageBudget(n int) { v.pageBudget = n }

// PageBudget returns the configured page-cache budget (0 = unlimited).
func (v *VFS) PageBudget() int { return v.pageBudget }

// ShrinkToBudget applies the page budget to the cache as it stands —
// the explicit memory-pressure edge of the policy that otherwise runs
// on every insert. Dirty victims go through writeback, so the caller's
// thread crosses into the owning modules.
func (v *VFS) ShrinkToBudget(t *core.Thread) { v.evictForBudget(t) }

// touchPage marks a page most-recently used.
func (v *VFS) touchPage(key pageKey) {
	if e, ok := v.lruPos[key]; ok {
		v.lru.MoveToBack(e)
	}
}

// insertPage records a fresh page in the cache and the LRU list, then
// applies the budget.
func (v *VFS) insertPage(t *core.Thread, key pageKey, pg mem.Addr) {
	v.pages[key] = pg
	v.lruPos[key] = v.lru.PushBack(key)
	v.evictForBudget(t)
}

// removePage frees a cached page and drops every index entry for it.
func (v *VFS) removePage(key pageKey) {
	pg, ok := v.pages[key]
	if !ok {
		return
	}
	_ = v.K.Sys.Slab.Free(pg)
	delete(v.pages, key)
	delete(v.dirty, key)
	if e, ok := v.lruPos[key]; ok {
		v.lru.Remove(e)
		delete(v.lruPos, key)
	}
}

// evictForBudget walks the LRU end of the cache until it fits the
// budget. The most-recently inserted page is never a victim — the
// caller is still using it. Unevictable pages (memory-only mounts,
// failed writebacks) are skipped, so the cache can exceed the budget
// when nothing else remains.
func (v *VFS) evictForBudget(t *core.Thread) {
	if v.pageBudget <= 0 {
		return
	}
	for e := v.lru.Front(); e != nil && len(v.pages) > v.pageBudget; {
		next := e.Next()
		if next == nil {
			break // never evict the MRU page mid-operation
		}
		v.evictPage(t, e.Value.(pageKey))
		e = next
	}
}

// evictPage tries to reclaim one page: dirty victims are forced through
// the owning module's writepage first (the REF-capability crossing), so
// eviction under enforcement exercises the same contract as Sync.
// Returns false if the page must stay (memory-only mount, dead module,
// failed writeback).
func (v *VFS) evictPage(t *core.Thread, key pageKey) bool {
	as := v.K.Sys.AS
	owner, _ := as.ReadU64(v.InodeField(key.ino, "sb"))
	sb := mem.Addr(owner)
	if flags, _ := as.ReadU64(v.SBField(sb, "flags")); flags&SBMemOnly != 0 {
		return false
	}
	if v.dirty[key] {
		mnt, ok := v.mounts[sb]
		if !ok {
			return false
		}
		v.Stats.EvictWrites++
		v.Stats.PageWrites++
		ret, err := t.IndirectCall(v.OpsSlot(mnt.fs.ops, "writepage"), FsWritePage,
			uint64(sb), uint64(key.ino), key.idx, uint64(v.pages[key]))
		if err != nil || ret != 0 {
			return false // stays dirty; Sync (or a later pass) retries
		}
		delete(v.dirty, key)
	}
	v.removePage(key)
	v.Stats.Evictions++
	return true
}

// getPage returns the cached page for (inode, idx), filling a fresh one
// through the module's readpage callback on a miss. Ownership of the
// page travels with the call: WRITE transfers to the mount's principal
// on entry and back to the kernel on successful return.
func (v *VFS) getPage(t *core.Thread, mnt *mount, ino mem.Addr, idx uint64) (mem.Addr, error) {
	key := pageKey{ino, idx}
	if pg, ok := v.pages[key]; ok {
		v.touchPage(key)
		return pg, nil
	}
	sys := v.K.Sys
	pg, err := sys.Slab.Alloc(mem.PageSize)
	if err != nil {
		return 0, err
	}
	v.Stats.PageFills++
	ret, err := t.IndirectCall(v.OpsSlot(mnt.fs.ops, "readpage"), FsReadPage,
		uint64(mnt.sb), uint64(ino), idx, uint64(pg))
	if err != nil || ret != 0 {
		// The revoke post-action (or the aborted call) already stripped
		// the module's WRITE; make sure no grant survives an interrupted
		// annotation run, then recycle the page.
		sys.Caps.RevokeAll(caps.WriteCap(pg, mem.PageSize))
		_ = sys.Slab.Free(pg)
		if err == nil {
			err = fmt.Errorf("vfs: readpage(%#x, %d): errno %d", uint64(ino), idx, -int64(ret))
		}
		return 0, err
	}
	v.insertPage(t, key, pg)
	return pg, nil
}

// allocPage returns the cached page for (inode, idx), or installs a
// fresh zeroed one without consulting the module — for writes that
// cover the entire page.
func (v *VFS) allocPage(t *core.Thread, ino mem.Addr, idx uint64) (mem.Addr, error) {
	key := pageKey{ino, idx}
	if pg, ok := v.pages[key]; ok {
		v.touchPage(key)
		return pg, nil
	}
	pg, err := v.K.Sys.Slab.Alloc(mem.PageSize)
	if err != nil {
		return 0, err
	}
	must(v.K.Sys.AS.Zero(pg, mem.PageSize))
	v.insertPage(t, key, pg)
	return pg, nil
}

// Read copies n bytes starting at off out of the file's page cache,
// bounded by the inode size. Cold pages are filled by the module;
// everything else is a trusted kernel-side copy.
func (v *VFS) Read(t *core.Thread, sb mem.Addr, path string, off, n uint64) ([]byte, error) {
	d, err := v.walk(t, sb, path)
	if err != nil {
		return nil, err
	}
	mnt := v.mounts[sb]
	as := v.K.Sys.AS
	size, _ := as.ReadU64(v.InodeField(d.inode, "size"))
	if off >= size {
		return nil, nil
	}
	if off+n > size {
		n = size - off
	}
	out := make([]byte, n)
	for done := uint64(0); done < n; {
		pos := off + done
		idx := pos / mem.PageSize
		po := pos % mem.PageSize
		chunk := mem.PageSize - po
		if rem := n - done; chunk > rem {
			chunk = rem
		}
		pg, err := v.getPage(t, mnt, d.inode, idx)
		if err != nil {
			return nil, err
		}
		if err := as.Read(pg+mem.Addr(po), out[done:done+chunk]); err != nil {
			return nil, err
		}
		done += chunk
	}
	v.Stats.BytesRead += n
	return out, nil
}

// Write copies data into the page cache at off, marking the touched
// pages dirty and growing the inode size. Partially covered cold pages
// are read-modify-write (the module fills them first via readpage);
// fully covered cold pages skip the readpage round-trip — their old
// contents are dead on arrival, so reading them back would only leak
// stale bytes and pay a pointless module crossing.
func (v *VFS) Write(t *core.Thread, sb mem.Addr, path string, off uint64, data []byte) (uint64, error) {
	d, err := v.walk(t, sb, path)
	if err != nil {
		return 0, err
	}
	mnt := v.mounts[sb]
	as := v.K.Sys.AS
	n := uint64(len(data))
	// s_maxbytes: the module declares its per-file capacity at mount
	// time (0 = unlimited); writes past it are rejected before any page
	// is dirtied, so an unpersistable page can never wedge Sync.
	if maxb, _ := as.ReadU64(v.SBField(sb, "maxbytes")); maxb != 0 && off+n > maxb {
		return 0, fmt.Errorf("vfs: %s: errno %d", path, kernel.EFBIG)
	}
	for done := uint64(0); done < n; {
		pos := off + done
		idx := pos / mem.PageSize
		po := pos % mem.PageSize
		chunk := mem.PageSize - po
		if rem := n - done; chunk > rem {
			chunk = rem
		}
		var pg mem.Addr
		if chunk == mem.PageSize {
			pg, err = v.allocPage(t, d.inode, idx)
		} else {
			pg, err = v.getPage(t, mnt, d.inode, idx)
		}
		if err != nil {
			return done, err
		}
		if err := as.Write(pg+mem.Addr(po), data[done:done+chunk]); err != nil {
			return done, err
		}
		v.dirty[pageKey{d.inode, idx}] = true
		done += chunk
	}
	if size, _ := as.ReadU64(v.InodeField(d.inode, "size")); off+n > size {
		must(as.WriteU64(v.InodeField(d.inode, "size"), off+n))
	}
	v.Stats.BytesWrited += n
	return n, nil
}

// Sync writes every dirty page of the mount back through the module's
// writepage callback (REF handoff: the module proves ownership to
// pc_writeback but cannot modify the clean page).
func (v *VFS) Sync(t *core.Thread, sb mem.Addr) error {
	mnt, ok := v.mounts[sb]
	if !ok {
		return fmt.Errorf("vfs: not a mounted superblock: %#x", uint64(sb))
	}
	as := v.K.Sys.AS
	var keys []pageKey
	for key := range v.dirty {
		if owner, _ := as.ReadU64(v.InodeField(key.ino, "sb")); mem.Addr(owner) == sb {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ino != keys[j].ino {
			return keys[i].ino < keys[j].ino
		}
		return keys[i].idx < keys[j].idx
	})
	// A page that fails writeback stays dirty, but the pass continues:
	// one bad page must not block the persistence of every page sorting
	// after it. The first error is reported.
	var firstErr error
	for _, key := range keys {
		pg := v.pages[key]
		v.Stats.PageWrites++
		ret, err := t.IndirectCall(v.OpsSlot(mnt.fs.ops, "writepage"), FsWritePage,
			uint64(sb), uint64(key.ino), key.idx, uint64(pg))
		if err == nil && ret != 0 {
			err = fmt.Errorf("vfs: writepage(%#x, %d): errno %d", uint64(key.ino), key.idx, -int64(ret))
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		delete(v.dirty, key)
	}
	return firstErr
}

// DropCaches evicts every clean page of the mount (sync first to evict
// everything), so the next read refills from the module — the cold-read
// path fsperf measures. Memory-only mounts (SBMemOnly) are never
// evicted: their page cache is the only copy of the data, and a no-op
// writepage having cleared the dirty bit does not change that.
func (v *VFS) DropCaches(sb mem.Addr) int {
	as := v.K.Sys.AS
	if flags, _ := as.ReadU64(v.SBField(sb, "flags")); flags&SBMemOnly != 0 {
		return 0
	}
	dropped := 0
	for key := range v.pages {
		if v.dirty[key] {
			continue
		}
		if owner, _ := as.ReadU64(v.InodeField(key.ino, "sb")); mem.Addr(owner) != sb {
			continue
		}
		v.removePage(key)
		dropped++
	}
	return dropped
}

// dropPagesOf evicts every page (dirty or not) of a dying inode.
func (v *VFS) dropPagesOf(ino mem.Addr) {
	for key := range v.pages {
		if key.ino == ino {
			v.removePage(key)
		}
	}
}

// PageAddr exposes the cached page address for (inode, idx); tests and
// the exploit harness use it to locate victim pages.
func (v *VFS) PageAddr(ino mem.Addr, idx uint64) (mem.Addr, bool) {
	pg, ok := v.pages[pageKey{ino, idx}]
	return pg, ok
}

// PageCount returns the number of cached pages.
func (v *VFS) PageCount() int { return len(v.pages) }

// DirtyCount returns the number of dirty cached pages.
func (v *VFS) DirtyCount() int { return len(v.dirty) }

package vfs

import (
	"errors"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
)

// degradeFS is the graceful-degradation boundary of the VFS: while a
// filesystem module is dead (killed after a violation, or quarantined
// by the supervisor awaiting restart), operations against its mounts
// fail with the EIO the syscall layer would surface instead of a raw
// gate error — and never hang or panic. The original error stays in
// the chain, so errors.Is(err, core.ErrModuleDead) still holds; the
// writeback flusher relies on that to park dirty pages and retry them
// once the supervisor publishes a live successor generation.
func degradeFS(op string, err error) error {
	if err == nil || !errors.Is(err, core.ErrModuleDead) {
		return err
	}
	var d *core.DegradedError
	if errors.As(err, &d) {
		return err // already mapped by an inner op
	}
	return &core.DegradedError{Errno: kernel.EIO, Op: op, Err: err}
}

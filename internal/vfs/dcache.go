package vfs

import (
	"fmt"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// dnode is the kernel-private view of one cached dentry. The children
// map keyed by path component makes the dentry cache an M-way trie:
// resolution walks one node per component and only crosses into the
// filesystem module on a miss.
//
// dnodes live in their mount's private dentry map and are only touched
// under that mount's lock.
type dnode struct {
	dentry mem.Addr
	inode  mem.Addr
	parent mem.Addr // parent dentry, 0 for a mount root
	name   string
	isDir  bool
	child  map[string]mem.Addr
}

// newDentry allocates the in-memory dentry object and its trie node.
// Caller holds mnt.mu (or exclusively owns a not-yet-published mount).
func (v *VFS) newDentry(mnt *mount, parent mem.Addr, name string, inode mem.Addr) (mem.Addr, error) {
	sys := v.K.Sys
	d, err := sys.Slab.Alloc(v.dentLay.Size)
	if err != nil {
		return 0, err
	}
	must(sys.AS.Zero(d, v.dentLay.Size))
	must(sys.AS.WriteU64(d+mem.Addr(v.dentLay.Off("inode")), uint64(inode)))
	must(sys.AS.WriteU64(d+mem.Addr(v.dentLay.Off("parent")), uint64(parent)))
	must(sys.AS.WriteCString(d+mem.Addr(v.dentLay.Off("name")), name))
	mode, _ := sys.AS.ReadU64(v.InodeField(inode, "mode"))
	n := &dnode{
		dentry: d,
		inode:  inode,
		parent: parent,
		name:   name,
		isDir:  mode == ModeDir || parent == 0,
		child:  make(map[string]mem.Addr),
	}
	mnt.dentries[d] = n
	if p, ok := mnt.dentries[parent]; ok {
		p.child[name] = d
	}
	return d, nil
}

// dropDentry removes a leaf dentry from the trie and frees it.
func (v *VFS) dropDentry(mnt *mount, d mem.Addr) {
	n, ok := mnt.dentries[d]
	if !ok {
		return
	}
	if p, ok := mnt.dentries[n.parent]; ok {
		delete(p.child, n.name)
	}
	delete(mnt.dentries, d)
	_ = v.K.Sys.Slab.Free(d)
}

// pushName copies one path component into the mount's kernel scratch
// buffer the module-facing calls pass names through. Each mount has its
// own buffer so concurrent lookups on different mounts cannot clobber
// each other's component mid-crossing.
func (v *VFS) pushName(mnt *mount, name string) error {
	if len(name) > NameMax {
		return fmt.Errorf("vfs: name %q too long", name)
	}
	return v.K.Sys.AS.WriteCString(mnt.nameBuf, name)
}

// childOf resolves one path component under cur: dentry cache first,
// module lookup on a miss. Returns nil (and no error) when the entry
// does not exist — the one authoritative "does this name exist" probe,
// so existence decisions never trust the cache alone (after a remount
// the cache is cold while the module's table is not).
func (v *VFS) childOf(t *core.Thread, mnt *mount, cur *dnode, comp string) (*dnode, error) {
	if c, ok := cur.child[comp]; ok {
		v.Stats.DcacheHits.Add(1)
		return mnt.dentries[c], nil
	}
	v.Stats.DcacheMiss.Add(1)
	if err := v.pushName(mnt, comp); err != nil {
		return nil, err
	}
	ret, err := v.gLookup.CallArgs(t, v.OpsSlot(mnt.fs.ops, "lookup"),
		mnt.args(uint64(mnt.sb), uint64(cur.inode), uint64(mnt.nameBuf), uint64(len(comp))))
	if err != nil {
		return nil, err
	}
	if ret == 0 {
		return nil, nil
	}
	d, err := v.newDentry(mnt, cur.dentry, comp, mem.Addr(ret))
	if err != nil {
		return nil, err
	}
	return mnt.dentries[d], nil
}

// walk resolves path on mnt through the dentry cache, calling the
// module's lookup on each miss. The final component's dnode is returned.
// Caller holds mnt.mu.
func (v *VFS) walk(t *core.Thread, mnt *mount, path string) (*dnode, error) {
	cur := mnt.dentries[mnt.root]
	for _, comp := range splitPath(path) {
		if !cur.isDir {
			return nil, fmt.Errorf("vfs: %q: not a directory", cur.name)
		}
		next, err := v.childOf(t, mnt, cur, comp)
		if err != nil {
			return nil, err
		}
		if next == nil {
			return nil, fmt.Errorf("vfs: %s: errno %d", comp, kernel.ENOENT)
		}
		cur = next
	}
	return cur, nil
}

// splitParent splits a path into its parent directory path and final
// component.
func splitParent(path string) (dir, name string, ok bool) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return "", "", false
	}
	for _, c := range comps[:len(comps)-1] {
		dir += "/" + c
	}
	return dir, comps[len(comps)-1], true
}

// dirNotEmpty reports whether a directory holds any entry — cached
// children first, then the module's table (which is authoritative: a
// recovered directory's children may never have been looked up).
func (v *VFS) dirNotEmpty(t *core.Thread, mnt *mount, n *dnode) (bool, error) {
	if len(n.child) > 0 {
		return true, nil
	}
	if !n.isDir {
		return false, nil
	}
	empty, err := v.dirEmpty(t, mnt, n.inode)
	return !empty, err
}

// Lookup resolves path to its inode address.
func (v *VFS) Lookup(t *core.Thread, sb mem.Addr, path string) (_ mem.Addr, rerr error) {
	defer func() { rerr = degradeFS("vfs.lookup", rerr) }()
	mnt, err := v.lockMount(sb)
	if err != nil {
		return 0, err
	}
	defer mnt.mu.Unlock()
	n, err := v.walk(t, mnt, path)
	if err != nil {
		return 0, err
	}
	return n.inode, nil
}

// create is the shared implementation of Create and Mkdir.
func (v *VFS) create(t *core.Thread, sb mem.Addr, path string, mode uint64) (_ mem.Addr, rerr error) {
	defer func() { rerr = degradeFS("vfs.create", rerr) }()
	mnt, err := v.lockMount(sb)
	if err != nil {
		return 0, err
	}
	defer mnt.mu.Unlock()
	dirPath, name, ok := splitParent(path)
	if !ok {
		return 0, fmt.Errorf("vfs: cannot create %q", path)
	}
	dir, err := v.walk(t, mnt, dirPath)
	if err != nil {
		return 0, err
	}
	if existing, err := v.childOf(t, mnt, dir, name); err != nil {
		return 0, err
	} else if existing != nil {
		return 0, fmt.Errorf("vfs: %s: errno %d", name, kernel.EEXIST)
	}
	if err := v.pushName(mnt, name); err != nil {
		return 0, err
	}
	ret, err := v.gCreate.CallArgs(t, v.OpsSlot(mnt.fs.ops, "create"),
		mnt.args(uint64(sb), uint64(dir.inode), uint64(mnt.nameBuf), uint64(len(name)), mode))
	if err != nil {
		return 0, err
	}
	if ret == 0 {
		return 0, fmt.Errorf("vfs: create %s failed", name)
	}
	if _, err := v.newDentry(mnt, dir.dentry, name, mem.Addr(ret)); err != nil {
		return 0, err
	}
	v.Stats.Creates.Add(1)
	return mem.Addr(ret), nil
}

// Create makes a regular file and returns its inode address.
func (v *VFS) Create(t *core.Thread, sb mem.Addr, path string) (mem.Addr, error) {
	return v.create(t, sb, path, ModeFile)
}

// Mkdir makes a directory and returns its inode address.
func (v *VFS) Mkdir(t *core.Thread, sb mem.Addr, path string) (mem.Addr, error) {
	return v.create(t, sb, path, ModeDir)
}

// Unlink removes a file: the module's unlink callback releases the inode
// (via iput, dropping its page-cache pages), then the kernel drops the
// dentry.
func (v *VFS) Unlink(t *core.Thread, sb mem.Addr, path string) (rerr error) {
	defer func() { rerr = degradeFS("vfs.unlink", rerr) }()
	mnt, err := v.lockMount(sb)
	if err != nil {
		return err
	}
	defer mnt.mu.Unlock()
	n, err := v.walk(t, mnt, path)
	if err != nil {
		return err
	}
	if n.parent == 0 {
		return fmt.Errorf("vfs: cannot unlink the root")
	}
	if notEmpty, err := v.dirNotEmpty(t, mnt, n); err != nil {
		return err
	} else if notEmpty {
		return fmt.Errorf("vfs: %s: directory not empty", n.name)
	}
	parent := mnt.dentries[n.parent]
	ret, err := v.gUnlink.CallArgs(t, v.OpsSlot(mnt.fs.ops, "unlink"),
		mnt.args(uint64(sb), uint64(parent.inode), uint64(n.inode)))
	if err != nil {
		return err
	}
	if kernel.IsErr(ret) {
		return fmt.Errorf("vfs: unlink %s: errno %d", n.name, -int64(ret))
	}
	v.dropDentry(mnt, n.dentry)
	v.Stats.Unlinks.Add(1)
	return nil
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name string
	Ino  uint64 // inode number (the "ino" field, not the address)
	Mode uint64
}

// MaxDirEntries bounds a single directory enumeration. The module's
// readdir cursor is module-controlled; without a ceiling a compromised
// module that never returns "end" would spin the kernel thread forever.
const MaxDirEntries = 1 << 20

// dirEmpty asks the module whether dir has any entry at all (a readdir
// probe at position 0). The dentry cache cannot answer "empty": it only
// holds entries that were already looked up, and after a remount a
// recovered directory's children exist only in the module's table.
func (v *VFS) dirEmpty(t *core.Thread, mnt *mount, dir mem.Addr) (bool, error) {
	ret, err := v.gReaddir.CallArgs(t, v.OpsSlot(mnt.fs.ops, "readdir"),
		mnt.args(uint64(mnt.sb), uint64(dir), 0, uint64(mnt.dirBuf)))
	if err != nil {
		v.K.Sys.Caps.RevokeAll(caps.WriteCap(mnt.dirBuf, NameMax+1))
		return false, err
	}
	return ret == 0, nil
}

// Readdir enumerates a directory through the module's readdir callback:
// one checked crossing per entry, dir_context-style, with the mount's
// name buffer lent to the module (WRITE transfer out and back) for each.
// The dentry cache cannot answer this — it only holds what was already
// looked up — so enumeration always reflects the module's own table.
func (v *VFS) Readdir(t *core.Thread, sb mem.Addr, path string) (_ []DirEntry, rerr error) {
	defer func() { rerr = degradeFS("vfs.readdir", rerr) }()
	mnt, err := v.lockMount(sb)
	if err != nil {
		return nil, err
	}
	defer mnt.mu.Unlock()
	n, err := v.walk(t, mnt, path)
	if err != nil {
		return nil, err
	}
	if !n.isDir {
		return nil, fmt.Errorf("vfs: %q: not a directory", n.name)
	}
	as := v.K.Sys.AS
	var out []DirEntry
	for pos := uint64(0); ; pos++ {
		if pos >= MaxDirEntries {
			return nil, fmt.Errorf("vfs: readdir %s: module never ended the listing (errno %d)", path, kernel.EIO)
		}
		ret, err := v.gReaddir.CallArgs(t, v.OpsSlot(mnt.fs.ops, "readdir"),
			mnt.args(uint64(sb), uint64(n.inode), pos, uint64(mnt.dirBuf)))
		if err != nil {
			// Mirror the readpage failure path: an aborted crossing must
			// not leave the module holding WRITE on the kernel's buffer.
			v.K.Sys.Caps.RevokeAll(caps.WriteCap(mnt.dirBuf, NameMax+1))
			return nil, err
		}
		if ret == 0 {
			return out, nil
		}
		v.Stats.Readdirs.Add(1)
		name, err := as.ReadCString(mnt.dirBuf, NameMax+1)
		if err != nil {
			return nil, err
		}
		ino, _ := as.ReadU64(v.InodeField(mem.Addr(ret), "ino"))
		mode, _ := as.ReadU64(v.InodeField(mem.Addr(ret), "mode"))
		out = append(out, DirEntry{Name: name, Ino: ino, Mode: mode})
	}
}

// Rename flags (the renameat2(2) subset the substrate implements).
const (
	// RenameNoReplace fails with EEXIST when the destination exists
	// instead of replacing it.
	RenameNoReplace = 1 << 0
	// RenameExchange atomically swaps the two paths; both must exist.
	RenameExchange = 1 << 1
)

// Rename moves srcPath on srcSB to dstPath on dstSB; plain rename(2)
// semantics, i.e. RenameFlags with no flags.
func (v *VFS) Rename(t *core.Thread, srcSB mem.Addr, srcPath string, dstSB mem.Addr, dstPath string) error {
	return v.RenameFlags(t, srcSB, srcPath, dstSB, dstPath, 0)
}

// RenameFlags moves srcPath on srcSB to dstPath on dstSB. Both paths
// must be on the same mount (a cross-mount rename is EXDEV, as in Linux
// — the two superblocks are different principals and an inode cannot
// change owners by renaming). An existing target of the same kind is
// replaced, directories only when empty; the replaced target's inode is
// passed into the rename crossing as the victim, so the module commits
// the relink and the target's removal as one transaction — there is no
// second unlink crossing, hence no crash window between them. With
// RenameExchange the two entries swap positions instead; with
// RenameNoReplace an existing destination is EEXIST.
//
// Because cross-mount renames are rejected before any lock is taken,
// RenameFlags only ever holds one mount lock — no two-mount ordering
// issue.
func (v *VFS) RenameFlags(t *core.Thread, srcSB mem.Addr, srcPath string, dstSB mem.Addr, dstPath string, flags uint64) error {
	if v.mountOf(srcSB) == nil {
		return fmt.Errorf("vfs: not a mounted superblock: %#x", uint64(srcSB))
	}
	if v.mountOf(dstSB) == nil {
		return fmt.Errorf("vfs: not a mounted superblock: %#x", uint64(dstSB))
	}
	if srcSB != dstSB {
		return fmt.Errorf("vfs: rename %s -> %s: errno %d (cross-mount)", srcPath, dstPath, kernel.EXDEV)
	}
	sb := srcSB
	mnt, err := v.lockMount(sb)
	if err != nil {
		return err
	}
	defer mnt.mu.Unlock()
	n, err := v.walk(t, mnt, srcPath)
	if err != nil {
		return err
	}
	if n.parent == 0 {
		return fmt.Errorf("vfs: cannot rename the root")
	}
	dstDirPath, newName, ok := splitParent(dstPath)
	if !ok {
		return fmt.Errorf("vfs: cannot rename to %q", dstPath)
	}
	dstDir, err := v.walk(t, mnt, dstDirPath)
	if err != nil {
		return err
	}
	if !dstDir.isDir {
		return fmt.Errorf("vfs: %q: not a directory", dstDir.name)
	}
	// Renaming a directory under itself would detach the subtree.
	for p := dstDir; p != nil; p = mnt.dentries[p.parent] {
		if p == n {
			return fmt.Errorf("vfs: rename %s -> %s: errno %d (into own subtree)", srcPath, dstPath, kernel.EINVAL)
		}
	}
	// The per-mount capability re-check: the mount's instance principal
	// must own the inode being moved and both directory inodes. Under
	// enforcement a stale or foreign inode address fails here, before
	// any module state changes.
	oldDir := mnt.dentries[n.parent]
	if mnt.fs.module != nil && v.K.Sys.Mon.Enforcing() {
		prin, ok := mnt.fs.module.Set.Lookup(sb)
		if !ok {
			return fmt.Errorf("vfs: no instance principal for mount %#x", uint64(sb))
		}
		for _, ino := range []mem.Addr{n.inode, oldDir.inode, dstDir.inode} {
			if !v.K.Sys.Caps.Check(prin, caps.WriteCap(ino, 1)) {
				return fmt.Errorf("vfs: rename %s: mount principal does not own inode %#x", srcPath, uint64(ino))
			}
		}
	}
	// Rename over an existing target: same-kind targets are replaced
	// (directories only when empty), mismatched kinds are rejected. The
	// existence probe goes through childOf — the module's table, not
	// just the cache, decides whether the name is taken.
	tgt, err := v.childOf(t, mnt, dstDir, newName)
	if err != nil {
		return err
	}
	if flags&RenameExchange != 0 {
		if tgt == nil {
			return fmt.Errorf("vfs: rename %s <-> %s: errno %d (no target to exchange)", srcPath, dstPath, kernel.ENOENT)
		}
		if tgt == n {
			return nil // exchange with itself
		}
		// The symmetric cycle check: the source may not move under the
		// target's subtree either.
		for p := oldDir; p != nil; p = mnt.dentries[p.parent] {
			if p == tgt {
				return fmt.Errorf("vfs: rename %s <-> %s: errno %d (into own subtree)", srcPath, dstPath, kernel.EINVAL)
			}
		}
		if fp, _ := v.K.Sys.AS.ReadU64(v.OpsSlot(mnt.fs.ops, "exchange")); fp == 0 {
			return fmt.Errorf("vfs: rename %s <-> %s: errno %d", srcPath, dstPath, kernel.ENOSYS)
		}
		ret, err := v.gExchange.CallArgs(t, v.OpsSlot(mnt.fs.ops, "exchange"),
			mnt.args(uint64(sb), uint64(oldDir.inode), uint64(n.inode),
				uint64(dstDir.inode), uint64(tgt.inode)))
		if err != nil {
			return err
		}
		if kernel.IsErr(ret) {
			return fmt.Errorf("vfs: rename %s <-> %s: errno %d", srcPath, dstPath, -int64(ret))
		}
		// Swap the two dnodes: detach both from their parents first so
		// neither insertion can clobber the other's mapping.
		oldName := n.name
		delete(oldDir.child, n.name)
		delete(dstDir.child, tgt.name)
		v.relinkDentry(mnt, n, dstDir, newName)
		v.relinkDentry(mnt, tgt, oldDir, oldName)
		v.Stats.Renames.Add(1)
		v.Stats.Exchanges.Add(1)
		return nil
	}
	if tgt != nil {
		if tgt == n {
			return nil // rename to itself
		}
		if flags&RenameNoReplace != 0 {
			return fmt.Errorf("vfs: rename %s -> %s: errno %d", srcPath, dstPath, kernel.EEXIST)
		}
		if tgt.isDir != n.isDir {
			errno := kernel.EISDIR
			if !tgt.isDir {
				errno = kernel.ENOTDIR
			}
			return fmt.Errorf("vfs: rename %s -> %s: errno %d", srcPath, dstPath, errno)
		}
		if notEmpty, err := v.dirNotEmpty(t, mnt, tgt); err != nil {
			return err
		} else if notEmpty {
			return fmt.Errorf("vfs: %s: directory not empty", tgt.name)
		}
	}
	if err := v.pushName(mnt, newName); err != nil {
		return err
	}
	// The replaced target (if any) rides into the crossing as the
	// victim: the module commits the source's relink and the victim's
	// removal as one transaction, so a rename that fails in the module
	// has destroyed nothing (the rename(2) contract) and a crash can
	// never leave the half-moved state two separate crossings allowed.
	victim := uint64(0)
	if tgt != nil {
		victim = uint64(tgt.inode)
	}
	ret, err := v.gRename.CallArgs(t, v.OpsSlot(mnt.fs.ops, "rename"),
		mnt.args(uint64(sb), uint64(oldDir.inode), uint64(n.inode), uint64(dstDir.inode),
			uint64(mnt.nameBuf), uint64(len(newName)), victim))
	if err != nil {
		return err
	}
	if kernel.IsErr(ret) {
		return fmt.Errorf("vfs: rename %s -> %s: errno %d", srcPath, dstPath, -int64(ret))
	}
	if tgt != nil {
		// The module removed the victim inside the rename transaction;
		// only the kernel's view is left to clean up.
		v.dropDentry(mnt, tgt.dentry)
		v.Stats.Unlinks.Add(1)
	}
	v.moveDentry(mnt, n, dstDir, newName)
	v.Stats.Renames.Add(1)
	return nil
}

// Link creates newPath as an additional name (hardlink) for the inode
// at oldPath. Directories cannot be hardlinked. The module persists the
// new entry and bumps nlink; the kernel then adds the dentry.
func (v *VFS) Link(t *core.Thread, sb mem.Addr, oldPath, newPath string) error {
	mnt, err := v.lockMount(sb)
	if err != nil {
		return err
	}
	defer mnt.mu.Unlock()
	n, err := v.walk(t, mnt, oldPath)
	if err != nil {
		return err
	}
	if n.isDir {
		return fmt.Errorf("vfs: link %s: errno %d (directory)", oldPath, kernel.EISDIR)
	}
	dirPath, name, ok := splitParent(newPath)
	if !ok {
		return fmt.Errorf("vfs: cannot link to %q", newPath)
	}
	dir, err := v.walk(t, mnt, dirPath)
	if err != nil {
		return err
	}
	if !dir.isDir {
		return fmt.Errorf("vfs: %q: not a directory", dir.name)
	}
	if existing, err := v.childOf(t, mnt, dir, name); err != nil {
		return err
	} else if existing != nil {
		return fmt.Errorf("vfs: link %s: errno %d", name, kernel.EEXIST)
	}
	// Same per-mount re-check as rename: the mount's principal must own
	// both the linked inode and the directory gaining the entry.
	if mnt.fs.module != nil && v.K.Sys.Mon.Enforcing() {
		prin, ok := mnt.fs.module.Set.Lookup(sb)
		if !ok {
			return fmt.Errorf("vfs: no instance principal for mount %#x", uint64(sb))
		}
		for _, ino := range []mem.Addr{n.inode, dir.inode} {
			if !v.K.Sys.Caps.Check(prin, caps.WriteCap(ino, 1)) {
				return fmt.Errorf("vfs: link %s: mount principal does not own inode %#x", oldPath, uint64(ino))
			}
		}
	}
	if fp, _ := v.K.Sys.AS.ReadU64(v.OpsSlot(mnt.fs.ops, "link")); fp == 0 {
		return fmt.Errorf("vfs: link %s: errno %d", newPath, kernel.ENOSYS)
	}
	if err := v.pushName(mnt, name); err != nil {
		return err
	}
	ret, err := v.gLink.CallArgs(t, v.OpsSlot(mnt.fs.ops, "link"),
		mnt.args(uint64(sb), uint64(dir.inode), uint64(n.inode),
			uint64(mnt.nameBuf), uint64(len(name))))
	if err != nil {
		return err
	}
	if kernel.IsErr(ret) {
		return fmt.Errorf("vfs: link %s -> %s: errno %d", oldPath, newPath, -int64(ret))
	}
	if _, err := v.newDentry(mnt, dir.dentry, name, n.inode); err != nil {
		return err
	}
	v.Stats.Links.Add(1)
	return nil
}

// moveDentry relinks a dnode (and implicitly its whole subtree) under a
// new parent and name, keeping the simulated dentry object in sync.
func (v *VFS) moveDentry(mnt *mount, n *dnode, newParent *dnode, newName string) {
	if p, ok := mnt.dentries[n.parent]; ok {
		delete(p.child, n.name)
	}
	v.relinkDentry(mnt, n, newParent, newName)
}

// relinkDentry attaches an already-detached dnode under a new parent
// and name (the exchange path detaches both sides first so neither
// insertion clobbers the other's mapping).
func (v *VFS) relinkDentry(mnt *mount, n *dnode, newParent *dnode, newName string) {
	n.parent = newParent.dentry
	n.name = newName
	newParent.child[newName] = n.dentry
	as := v.K.Sys.AS
	must(as.WriteU64(n.dentry+mem.Addr(v.dentLay.Off("parent")), uint64(n.parent)))
	must(as.WriteCString(n.dentry+mem.Addr(v.dentLay.Off("name")), newName))
}

// Stat returns a file's size and link count from the inode cache — a
// pure kernel-side path, no module crossing (as in Linux, where a cached
// stat never enters the filesystem).
func (v *VFS) Stat(t *core.Thread, sb mem.Addr, path string) (size, nlink uint64, err error) {
	mnt, err := v.lockMount(sb)
	if err != nil {
		return 0, 0, err
	}
	defer mnt.mu.Unlock()
	n, err := v.walk(t, mnt, path)
	if err != nil {
		return 0, 0, err
	}
	as := v.K.Sys.AS
	size, _ = as.ReadU64(v.InodeField(n.inode, "size"))
	nlink, _ = as.ReadU64(v.InodeField(n.inode, "nlink"))
	return size, nlink, nil
}

// DcacheLen returns the number of cached dentries across all mounts.
func (v *VFS) DcacheLen() int {
	total := 0
	for _, mnt := range v.mountList() {
		mnt.mu.Lock()
		total += len(mnt.dentries)
		mnt.mu.Unlock()
	}
	return total
}

package vfs

import (
	"fmt"

	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

// dnode is the kernel-private view of one cached dentry. The children
// map keyed by path component makes the dentry cache an M-way trie:
// resolution walks one node per component and only crosses into the
// filesystem module on a miss.
type dnode struct {
	dentry mem.Addr
	inode  mem.Addr
	parent mem.Addr // parent dentry, 0 for a mount root
	name   string
	isDir  bool
	child  map[string]mem.Addr
}

// newDentry allocates the in-memory dentry object and its trie node.
func (v *VFS) newDentry(parent mem.Addr, name string, inode mem.Addr) (mem.Addr, error) {
	sys := v.K.Sys
	d, err := sys.Slab.Alloc(v.dentLay.Size)
	if err != nil {
		return 0, err
	}
	must(sys.AS.Zero(d, v.dentLay.Size))
	must(sys.AS.WriteU64(d+mem.Addr(v.dentLay.Off("inode")), uint64(inode)))
	must(sys.AS.WriteU64(d+mem.Addr(v.dentLay.Off("parent")), uint64(parent)))
	must(sys.AS.WriteCString(d+mem.Addr(v.dentLay.Off("name")), name))
	mode, _ := sys.AS.ReadU64(v.InodeField(inode, "mode"))
	n := &dnode{
		dentry: d,
		inode:  inode,
		parent: parent,
		name:   name,
		isDir:  mode == ModeDir || parent == 0,
		child:  make(map[string]mem.Addr),
	}
	v.dentries[d] = n
	if p, ok := v.dentries[parent]; ok {
		p.child[name] = d
	}
	return d, nil
}

// dropDentry removes a leaf dentry from the trie and frees it.
func (v *VFS) dropDentry(d mem.Addr) {
	n, ok := v.dentries[d]
	if !ok {
		return
	}
	if p, ok := v.dentries[n.parent]; ok {
		delete(p.child, n.name)
	}
	delete(v.dentries, d)
	_ = v.K.Sys.Slab.Free(d)
}

// forEachDentry visits the subtree rooted at d bottom-up.
func (v *VFS) forEachDentry(d mem.Addr, fn func(mem.Addr, *dnode)) {
	n, ok := v.dentries[d]
	if !ok {
		return
	}
	for _, c := range n.child {
		v.forEachDentry(c, fn)
	}
	fn(d, n)
}

// pushName copies one path component into the kernel scratch buffer the
// module-facing calls pass names through.
func (v *VFS) pushName(name string) error {
	if len(name) > NameMax {
		return fmt.Errorf("vfs: name %q too long", name)
	}
	return v.K.Sys.AS.WriteCString(v.nameBuf, name)
}

// walk resolves path under sb through the dentry cache, calling the
// module's lookup on each miss. The final component's dnode is returned.
func (v *VFS) walk(t *core.Thread, sb mem.Addr, path string) (*dnode, error) {
	mnt, ok := v.mounts[sb]
	if !ok {
		return nil, fmt.Errorf("vfs: not a mounted superblock: %#x", uint64(sb))
	}
	cur := v.dentries[mnt.root]
	for _, comp := range splitPath(path) {
		if !cur.isDir {
			return nil, fmt.Errorf("vfs: %q: not a directory", cur.name)
		}
		if c, ok := cur.child[comp]; ok {
			v.Stats.DcacheHits++
			cur = v.dentries[c]
			continue
		}
		v.Stats.DcacheMiss++
		if err := v.pushName(comp); err != nil {
			return nil, err
		}
		ret, err := t.IndirectCall(v.OpsSlot(mnt.fs.ops, "lookup"), FsLookup,
			uint64(sb), uint64(cur.inode), uint64(v.nameBuf), uint64(len(comp)))
		if err != nil {
			return nil, err
		}
		if ret == 0 {
			return nil, fmt.Errorf("vfs: %s: errno %d", comp, kernel.ENOENT)
		}
		d, err := v.newDentry(cur.dentry, comp, mem.Addr(ret))
		if err != nil {
			return nil, err
		}
		cur = v.dentries[d]
	}
	return cur, nil
}

// Lookup resolves path to its inode address.
func (v *VFS) Lookup(t *core.Thread, sb mem.Addr, path string) (mem.Addr, error) {
	n, err := v.walk(t, sb, path)
	if err != nil {
		return 0, err
	}
	return n.inode, nil
}

// create is the shared implementation of Create and Mkdir.
func (v *VFS) create(t *core.Thread, sb mem.Addr, path string, mode uint64) (mem.Addr, error) {
	mnt, ok := v.mounts[sb]
	if !ok {
		return 0, fmt.Errorf("vfs: not a mounted superblock: %#x", uint64(sb))
	}
	comps := splitPath(path)
	if len(comps) == 0 {
		return 0, fmt.Errorf("vfs: cannot create %q", path)
	}
	dirPath := ""
	for _, c := range comps[:len(comps)-1] {
		dirPath += "/" + c
	}
	dir, err := v.walk(t, sb, dirPath)
	if err != nil {
		return 0, err
	}
	name := comps[len(comps)-1]
	if _, exists := dir.child[name]; exists {
		return 0, fmt.Errorf("vfs: %s: errno %d", name, kernel.EEXIST)
	}
	if err := v.pushName(name); err != nil {
		return 0, err
	}
	ret, err := t.IndirectCall(v.OpsSlot(mnt.fs.ops, "create"), FsCreate,
		uint64(sb), uint64(dir.inode), uint64(v.nameBuf), uint64(len(name)), mode)
	if err != nil {
		return 0, err
	}
	if ret == 0 {
		return 0, fmt.Errorf("vfs: create %s failed", name)
	}
	if _, err := v.newDentry(dir.dentry, name, mem.Addr(ret)); err != nil {
		return 0, err
	}
	v.Stats.Creates++
	return mem.Addr(ret), nil
}

// Create makes a regular file and returns its inode address.
func (v *VFS) Create(t *core.Thread, sb mem.Addr, path string) (mem.Addr, error) {
	return v.create(t, sb, path, ModeFile)
}

// Mkdir makes a directory and returns its inode address.
func (v *VFS) Mkdir(t *core.Thread, sb mem.Addr, path string) (mem.Addr, error) {
	return v.create(t, sb, path, ModeDir)
}

// Unlink removes a file: the module's unlink callback releases the inode
// (via iput, dropping its page-cache pages), then the kernel drops the
// dentry.
func (v *VFS) Unlink(t *core.Thread, sb mem.Addr, path string) error {
	mnt := v.mounts[sb]
	n, err := v.walk(t, sb, path)
	if err != nil {
		return err
	}
	if n.parent == 0 {
		return fmt.Errorf("vfs: cannot unlink the root")
	}
	if len(n.child) > 0 {
		return fmt.Errorf("vfs: %s: directory not empty", n.name)
	}
	parent := v.dentries[n.parent]
	ret, err := t.IndirectCall(v.OpsSlot(mnt.fs.ops, "unlink"), FsUnlink,
		uint64(sb), uint64(parent.inode), uint64(n.inode))
	if err != nil {
		return err
	}
	if kernel.IsErr(ret) {
		return fmt.Errorf("vfs: unlink %s: errno %d", n.name, -int64(ret))
	}
	v.dropDentry(n.dentry)
	v.Stats.Unlinks++
	return nil
}

// Stat returns a file's size and link count from the inode cache — a
// pure kernel-side path, no module crossing (as in Linux, where a cached
// stat never enters the filesystem).
func (v *VFS) Stat(t *core.Thread, sb mem.Addr, path string) (size, nlink uint64, err error) {
	n, err := v.walk(t, sb, path)
	if err != nil {
		return 0, 0, err
	}
	as := v.K.Sys.AS
	size, _ = as.ReadU64(v.InodeField(n.inode, "size"))
	nlink, _ = as.ReadU64(v.InodeField(n.inode, "nlink"))
	return size, nlink, nil
}

// DcacheLen returns the number of cached dentries.
func (v *VFS) DcacheLen() int { return len(v.dentries) }

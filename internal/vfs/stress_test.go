package vfs_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lxfi/internal/core"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
)

// The VFS stress battery: worker threads on real goroutines hammer two
// mounts (tmpfssim and minixsim simultaneously) with the full op mix —
// create, write, read, rename, readdir, unlink — under a page budget
// small enough to force eviction (including cross-mount TryLock
// eviction) and with the background writeback flusher enabled. The
// assertions are (a) the race detector stays quiet, (b) the monitor
// records no violations, and (c) both namespaces drain to empty.
func TestVFSParallelStressTwoMounts(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode)
			defer r.k.Shutdown()
			r.bl.AddDisk(1, minixsim.DiskSectors)
			if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
				t.Fatal(err)
			}
			if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
				t.Fatal(err)
			}
			sbT, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
			if err != nil {
				t.Fatal(err)
			}
			sbM, err := r.v.Mount(r.th, minixsim.FsID, 1)
			if err != nil {
				t.Fatal(err)
			}

			r.v.SetPageBudget(8)
			defer r.v.SetPageBudget(0)
			r.v.EnableWriteback(200*time.Microsecond, 0.25)
			defer r.v.DisableWriteback()

			const (
				workersPerMount = 3
				iters           = 25
			)
			payload := bytes.Repeat([]byte{0xA5}, mem.PageSize+mem.PageSize/2)
			type job struct {
				sb   mem.Addr
				name string
			}
			var jobs []job
			for w := 0; w < workersPerMount; w++ {
				jobs = append(jobs,
					job{sbT, fmt.Sprintf("t%d", w)},
					job{sbM, fmt.Sprintf("m%d", w)})
			}
			errs := make([]error, len(jobs))
			var handles []*core.ThreadHandle
			for i, j := range jobs {
				i, j := i, j
				handles = append(handles, r.k.Sys.Spawn("stress-"+j.name, func(th *core.Thread) {
					for n := 0; n < iters; n++ {
						path := fmt.Sprintf("/%s_%03d", j.name, n)
						moved := path + "_r"
						if _, err := r.v.Create(th, j.sb, path); err != nil {
							errs[i] = fmt.Errorf("create %s: %w", path, err)
							return
						}
						if _, err := r.v.Write(th, j.sb, path, 0, payload); err != nil {
							errs[i] = fmt.Errorf("write %s: %w", path, err)
							return
						}
						got, err := r.v.Read(th, j.sb, path, 0, uint64(len(payload)))
						if err != nil || !bytes.Equal(got, payload) {
							errs[i] = fmt.Errorf("read %s: %v (corrupt=%v)", path, err, err == nil)
							return
						}
						if err := r.v.Rename(th, j.sb, path, j.sb, moved); err != nil {
							errs[i] = fmt.Errorf("rename %s: %w", path, err)
							return
						}
						if _, _, err := r.v.Stat(th, j.sb, moved); err != nil {
							errs[i] = fmt.Errorf("stat %s: %w", moved, err)
							return
						}
						if n%5 == 0 {
							if _, err := r.v.Readdir(th, j.sb, "/"); err != nil {
								errs[i] = fmt.Errorf("readdir: %w", err)
								return
							}
						}
						if err := r.v.Unlink(th, j.sb, moved); err != nil {
							errs[i] = fmt.Errorf("unlink %s: %w", moved, err)
							return
						}
					}
				}))
			}
			for _, h := range handles {
				h.Join()
			}
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %s: %v", jobs[i].name, err)
				}
			}
			r.noViolations(t)
			for _, sb := range []mem.Addr{sbT, sbM} {
				ents, err := r.v.Readdir(r.th, sb, "/")
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) != 0 {
					t.Fatalf("mount %#x not drained: %v", uint64(sb), ents)
				}
			}
		})
	}
}

// TestBackgroundFlusherAgesDirtyPages: one synchronous flusher pass
// (FlushAged drives exactly what the kflushd daemon's timer drives)
// must write aged dirty pages back through the module's REF-checked
// writepage, so later foreground eviction finds clean victims and pays
// no crossing.
func TestBackgroundFlusherAgesDirtyPages(t *testing.T) {
	r := newRig(t, core.Enforce)
	defer r.k.Shutdown()
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC3}, 2*mem.PageSize)
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/f%d", i)
		if _, err := r.v.Create(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.v.Write(r.th, sb, p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if r.v.DirtyCount() == 0 {
		t.Fatal("no dirty pages to flush")
	}

	flusher := r.k.Sys.NewThread("kflushd-test")
	r.v.FlushAged(flusher)
	if n := r.v.DirtyCount(); n != 0 {
		t.Fatalf("%d pages still dirty after the flusher pass", n)
	}
	if r.v.Stats.FlushWrites.Load() == 0 {
		t.Fatal("flusher reported no writeback work")
	}
	if !bytes.Contains(r.bl.DiskBytes(1), payload[:mem.PageSize]) {
		t.Fatal("flusher did not persist the data")
	}

	// Foreground eviction now finds clean pages: crossings-free reclaim.
	evictWritesBefore := r.v.Stats.EvictWrites.Load()
	r.v.SetPageBudget(2)
	r.v.ShrinkToBudget(r.th)
	r.v.SetPageBudget(0)
	if r.v.Stats.Evictions.Load() == 0 {
		t.Fatal("budget pressure evicted nothing")
	}
	if got := r.v.Stats.EvictWrites.Load(); got != evictWritesBefore {
		t.Fatalf("foreground eviction paid %d writepage crossings despite the flusher", got-evictWritesBefore)
	}
	r.noViolations(t)
}

// TestFlusherDaemonRunsOnTimer: the kflushd daemon the kernel spawned
// at boot must, once EnableWriteback arms it, clean dirty pages with no
// foreground help at all.
func TestFlusherDaemonRunsOnTimer(t *testing.T) {
	r := newRig(t, core.Enforce)
	defer r.k.Shutdown()
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/aged"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/aged", 0, []byte("patience")); err != nil {
		t.Fatal(err)
	}
	r.v.EnableWriteback(time.Millisecond, 0)
	defer r.v.DisableWriteback()
	deadline := time.Now().Add(5 * time.Second)
	for r.v.DirtyCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher daemon never cleaned the dirty page")
		}
		time.Sleep(time.Millisecond)
	}
	if !bytes.Contains(r.bl.DiskBytes(1), []byte("patience")) {
		t.Fatal("daemon writeback did not reach the disk")
	}
	r.noViolations(t)
}

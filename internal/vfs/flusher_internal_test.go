package vfs

import (
	"testing"
	"time"

	"lxfi/internal/mem"
)

// White-box test of the adaptive flusher policy: under dirty pressure
// the tick halves per pass down to base/minIntervalDiv; once the cache
// runs clean it doubles back to the base. A zero threshold pins the
// fixed tick.
func TestFlusherAdaptiveInterval(t *testing.T) {
	v := &VFS{
		pages:     make(map[pageKey]mem.Addr),
		dirty:     make(map[pageKey]bool),
		flushKick: make(chan struct{}, 1),
	}
	const base = 8 * time.Millisecond
	v.EnableWriteback(base, 0.25)
	if got := v.FlushInterval(); got != base {
		t.Fatalf("initial interval = %v, want %v", got, base)
	}

	// Pressure: 6 of 10 budgeted pages dirty (0.6 > 0.25).
	v.pageBudget = 10
	for i := 0; i < 6; i++ {
		key := pageKey{ino: mem.Addr(0x1000 + i), idx: 0}
		v.pages[key] = mem.Addr(0x100000 + i*mem.PageSize)
		v.dirty[key] = true
	}
	want := base
	for i := 0; i < 10; i++ {
		v.adaptInterval()
		if want > base/minIntervalDiv {
			want /= 2
		}
		if got := v.FlushInterval(); got != want {
			t.Fatalf("pass %d under pressure: interval = %v, want %v", i, got, want)
		}
	}
	if v.FlushInterval() != base/minIntervalDiv {
		t.Fatalf("floor = %v, want %v", v.FlushInterval(), base/minIntervalDiv)
	}

	// Clean again: the tick backs off to the base and stays there.
	v.dirty = make(map[pageKey]bool)
	for i := 0; i < 10; i++ {
		v.adaptInterval()
	}
	if got := v.FlushInterval(); got != base {
		t.Fatalf("after back-off: interval = %v, want %v", got, base)
	}

	// Threshold 0 disables adaptation even under full dirt.
	v.EnableWriteback(base, 0)
	for i := 0; i < 6; i++ {
		key := pageKey{ino: mem.Addr(0x1000 + i), idx: 0}
		v.dirty[key] = true
	}
	v.adaptInterval()
	if got := v.FlushInterval(); got != base {
		t.Fatalf("fixed tick moved: %v, want %v", got, base)
	}
}

// dirtyFraction steers on the budget when one is set and the cache
// population otherwise.
func TestDirtyFractionDenominator(t *testing.T) {
	v := &VFS{
		pages: make(map[pageKey]mem.Addr),
		dirty: make(map[pageKey]bool),
	}
	for i := 0; i < 4; i++ {
		key := pageKey{ino: mem.Addr(i), idx: 0}
		v.pages[key] = mem.Addr(0x1000 * (i + 1))
		if i < 2 {
			v.dirty[key] = true
		}
	}
	if got := v.dirtyFraction(); got != 0.5 {
		t.Fatalf("unbudgeted fraction = %v, want 0.5", got)
	}
	v.pageBudget = 8
	if got := v.dirtyFraction(); got != 0.25 {
		t.Fatalf("budgeted fraction = %v, want 0.25", got)
	}
}

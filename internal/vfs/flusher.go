package vfs

import (
	"math"
	"time"

	"lxfi/internal/core"
)

// Background writeback: a kflushd-style kernel thread that ages dirty
// pages out through the owning module's REF-checked writepage, so
// foreground eviction under memory pressure finds clean victims and
// stops paying the writepage crossing itself.
//
// The daemon is spawned at boot (vfs.Init registers it with the kernel)
// but parks until EnableWriteback hands it an interval. Aging is
// tick-based: a page dirtied during tick T is written back by the first
// flush pass of tick T+1 or later, so pages redirtied continuously are
// still flushed at interval granularity, while a page the foreground is
// actively writing is never stolen mid-burst within the same tick.
//
// The interval is adaptive: EnableWriteback takes a dirty-ratio
// threshold alongside the base interval. After each pass the flusher
// compares the cache's dirty fraction against the threshold — under
// pressure the tick halves (down to 1/8 of the base) so dirty pages
// drain before foreground eviction is forced to write them back; once
// the cache runs clean the tick doubles back toward the base. A
// threshold <= 0 disables adaptation (fixed tick, the old behavior).

// minIntervalDiv bounds how far pressure can shorten the tick.
const minIntervalDiv = 8

// EnableWriteback starts periodic background writeback with the given
// base interval and dirty-ratio threshold (fraction of the page cache
// that may be dirty before the flusher speeds up; <= 0 disables
// adaptation). Safe to call at any time; a second call retunes both.
func (v *VFS) EnableWriteback(interval time.Duration, dirtyRatio float64) {
	if interval <= 0 {
		v.DisableWriteback()
		return
	}
	if dirtyRatio < 0 {
		dirtyRatio = 0
	}
	v.flushRatio.Store(math.Float64bits(dirtyRatio))
	v.flushInterval.Store(int64(interval))
	v.flushCur.Store(int64(interval))
	select {
	case v.flushKick <- struct{}{}:
	default:
	}
}

// DisableWriteback parks the flusher again.
func (v *VFS) DisableWriteback() {
	v.flushInterval.Store(0)
	v.flushCur.Store(0)
	select {
	case v.flushKick <- struct{}{}:
	default:
	}
}

// FlushInterval returns the flusher's current (adapted) tick, 0 when
// parked. Diagnostics and tests. flushInterval is the enable/disable
// source of truth: a stale flushCur left behind by an adaptInterval
// racing DisableWriteback must read as parked.
func (v *VFS) FlushInterval() time.Duration {
	if v.flushInterval.Load() <= 0 {
		return 0
	}
	if cur := v.flushCur.Load(); cur > 0 {
		return time.Duration(cur)
	}
	return time.Duration(v.flushInterval.Load())
}

// dirtyFraction returns the dirty share of the page cache the adaptive
// policy steers on: dirty pages over the budget when one is set (the
// pressure that matters is distance from forced eviction), over the
// cache population otherwise.
func (v *VFS) dirtyFraction() float64 {
	v.pageMu.Lock()
	dirty := len(v.dirty)
	total := v.pageBudget
	if total <= 0 {
		total = len(v.pages)
	}
	v.pageMu.Unlock()
	if total <= 0 || dirty == 0 {
		return 0
	}
	return float64(dirty) / float64(total)
}

// adaptInterval retunes the tick after a flush pass.
func (v *VFS) adaptInterval() {
	base := v.flushInterval.Load()
	if base <= 0 {
		return
	}
	thr := math.Float64frombits(v.flushRatio.Load())
	if thr <= 0 {
		v.flushCur.Store(base)
		return
	}
	cur := v.flushCur.Load()
	if cur <= 0 {
		cur = base
	}
	if v.dirtyFraction() > thr {
		if cur > base/minIntervalDiv {
			cur /= 2
			if cur < base/minIntervalDiv {
				cur = base / minIntervalDiv
			}
		}
	} else if cur < base {
		cur *= 2
		if cur > base {
			cur = base
		}
	}
	v.flushCur.Store(cur)
}

// flusherLoop is the daemon body; it runs on its own goroutine-backed
// kernel thread until the kernel shuts down.
func (v *VFS) flusherLoop(t *core.Thread, stop <-chan struct{}) {
	for {
		// Park strictly on flushInterval: an adaptInterval pass racing
		// DisableWriteback can re-store a nonzero flushCur, and arming
		// from flushCur alone would keep the daemon flushing forever.
		var tc <-chan time.Time
		if iv := v.FlushInterval(); iv > 0 {
			tc = time.After(iv)
		}
		select {
		case <-stop:
			return
		case <-v.flushKick:
			// Interval changed; re-arm.
		case <-tc:
			v.FlushAged(t)
			v.adaptInterval()
		}
	}
}

// FlushAged runs one flusher pass: it advances the aging tick and
// writes back every dirty page that was dirtied before this tick began,
// mount by mount. Exported so tests (and synchronous callers) can drive
// the flusher deterministically without the timer.
//
// The flusher takes each mount's lock in turn — it is an ordinary
// foreground-equivalent writer, so module writepage contracts see the
// usual one-operation-per-mount serialization.
func (v *VFS) FlushAged(t *core.Thread) {
	tick := v.flushTick.Add(1)
	for _, mnt := range v.mountList() {
		mnt.mu.Lock()
		if mnt.dead {
			mnt.mu.Unlock()
			continue
		}
		keys := v.dirtyKeysOf(mnt.sb, true, tick)
		if len(keys) > 0 {
			v.Stats.FlushWrites.Add(uint64(len(keys)))
			// Errors stay dirty and will be retried next pass; a module
			// killed for a writeback violation surfaces through the
			// monitor's violation log, not through the flusher.
			_ = v.syncLocked(t, mnt, keys)
		}
		mnt.mu.Unlock()
	}
}

// FlushTick returns the current aging tick (diagnostics and tests).
func (v *VFS) FlushTick() uint64 { return v.flushTick.Load() }

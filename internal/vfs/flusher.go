package vfs

import (
	"time"

	"lxfi/internal/core"
)

// Background writeback: a kflushd-style kernel thread that ages dirty
// pages out through the owning module's REF-checked writepage, so
// foreground eviction under memory pressure finds clean victims and
// stops paying the writepage crossing itself.
//
// The daemon is spawned at boot (vfs.Init registers it with the kernel)
// but parks until EnableWriteback hands it an interval. Aging is
// tick-based: a page dirtied during tick T is written back by the first
// flush pass of tick T+1 or later, so pages redirtied continuously are
// still flushed at interval granularity, while a page the foreground is
// actively writing is never stolen mid-burst within the same tick.

// EnableWriteback starts periodic background writeback with the given
// interval. Safe to call at any time; a second call retunes the
// interval.
func (v *VFS) EnableWriteback(interval time.Duration) {
	if interval <= 0 {
		v.DisableWriteback()
		return
	}
	v.flushInterval.Store(int64(interval))
	select {
	case v.flushKick <- struct{}{}:
	default:
	}
}

// DisableWriteback parks the flusher again.
func (v *VFS) DisableWriteback() {
	v.flushInterval.Store(0)
	select {
	case v.flushKick <- struct{}{}:
	default:
	}
}

// flusherLoop is the daemon body; it runs on its own goroutine-backed
// kernel thread until the kernel shuts down.
func (v *VFS) flusherLoop(t *core.Thread, stop <-chan struct{}) {
	for {
		var tc <-chan time.Time
		if iv := time.Duration(v.flushInterval.Load()); iv > 0 {
			tc = time.After(iv)
		}
		select {
		case <-stop:
			return
		case <-v.flushKick:
			// Interval changed; re-arm.
		case <-tc:
			v.FlushAged(t)
		}
	}
}

// FlushAged runs one flusher pass: it advances the aging tick and
// writes back every dirty page that was dirtied before this tick began,
// mount by mount. Exported so tests (and synchronous callers) can drive
// the flusher deterministically without the timer.
//
// The flusher takes each mount's lock in turn — it is an ordinary
// foreground-equivalent writer, so module writepage contracts see the
// usual one-operation-per-mount serialization.
func (v *VFS) FlushAged(t *core.Thread) {
	tick := v.flushTick.Add(1)
	for _, mnt := range v.mountList() {
		mnt.mu.Lock()
		if mnt.dead {
			mnt.mu.Unlock()
			continue
		}
		keys := v.dirtyKeysOf(mnt.sb, true, tick)
		if len(keys) > 0 {
			v.Stats.FlushWrites.Add(uint64(len(keys)))
			// Errors stay dirty and will be retried next pass; a module
			// killed for a writeback violation surfaces through the
			// monitor's violation log, not through the flusher.
			_ = v.syncLocked(t, mnt, keys)
		}
		mnt.mu.Unlock()
	}
}

// FlushTick returns the current aging tick (diagnostics and tests).
func (v *VFS) FlushTick() uint64 { return v.flushTick.Load() }

package vfs_test

import (
	"bytes"
	"strings"
	"testing"

	"lxfi/internal/core"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
)

// TestRenameOverTargetSurvivesModuleFailure: the rename(2) contract —
// a rename that fails must not have destroyed the existing target. The
// kernel relinks the source in the module *before* unlinking the
// replaced target, so a module-side failure (here: the backing disk
// yanked out from under the directory-table write) leaves both names
// resolvable and the target's data intact.
func TestRenameOverTargetSurvivesModuleFailure(t *testing.T) {
	r := newRig(t, core.Enforce)
	defer r.k.Shutdown()
	r.bl.AddDisk(1, minixsim.DiskSectors)
	fs, err := minixsim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcData := []byte("the replacement")
	tgtData := []byte("the incumbent, which must survive")
	for _, f := range []struct {
		path string
		data []byte
	}{{"/src", srcData}, {"/tgt", tgtData}} {
		if _, err := r.v.Create(r.th, sb, f.path); err != nil {
			t.Fatal(err)
		}
		if _, err := r.v.Write(r.th, sb, f.path, 0, f.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}

	// Yank the disk: the module's rename cannot persist its record and
	// must fail *before* the kernel would unlink the target.
	unlinksBefore := r.v.Stats.Unlinks.Load()
	r.bl.RemoveDisk(1)
	err = r.v.Rename(r.th, sb, "/src", sb, "/tgt")
	if err == nil {
		t.Fatal("rename succeeded with no backing disk")
	}

	// The target was not destroyed: still resolvable, data intact (warm
	// page cache — the disk is gone, which is the point), no unlink
	// crossing ever happened.
	if got := r.v.Stats.Unlinks.Load(); got != unlinksBefore {
		t.Fatalf("failed rename destroyed the target: unlinks %d -> %d", unlinksBefore, got)
	}
	got, err := r.v.Read(r.th, sb, "/tgt", 0, uint64(len(tgtData)))
	if err != nil || !bytes.Equal(got, tgtData) {
		t.Fatalf("target data after failed rename = %q, %v", got, err)
	}
	// And the source is still where it was, under its old name.
	if _, err := r.v.Lookup(r.th, sb, "/src"); err != nil {
		t.Fatalf("source vanished after failed rename: %v", err)
	}
	// A module-side errno is a failed operation, not a contract breach:
	// nothing recorded, nobody killed.
	r.noViolations(t)
	if fs.M.Dead() {
		t.Fatal("module killed by a failed rename")
	}
}

// TestRenameCrossFilesystemEXDEV: a rename between mounts of two
// *different* filesystem modules (tmpfssim -> minixsim) must fail with
// EXDEV (errno 18) before any module is entered — the inode's owning
// principal cannot change by rename.
func TestRenameCrossFilesystemEXDEV(t *testing.T) {
	r := newRig(t, core.Enforce)
	defer r.k.Shutdown()
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sbT, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbM, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sbT, "/hostage"); err != nil {
		t.Fatal(err)
	}
	renamesBefore := r.v.Stats.Renames.Load()
	err = r.v.Rename(r.th, sbT, "/hostage", sbM, "/smuggled")
	if err == nil {
		t.Fatal("cross-filesystem rename succeeded")
	}
	if !strings.Contains(err.Error(), "errno 18") {
		t.Fatalf("want EXDEV (errno 18), got: %v", err)
	}
	if got := r.v.Stats.Renames.Load(); got != renamesBefore {
		t.Fatal("EXDEV rename was counted as a rename")
	}
	// Source stays put; destination never appears.
	if _, err := r.v.Lookup(r.th, sbT, "/hostage"); err != nil {
		t.Fatalf("source vanished: %v", err)
	}
	if _, err := r.v.Lookup(r.th, sbM, "/smuggled"); err == nil {
		t.Fatal("destination materialized on the other filesystem")
	}
	r.noViolations(t)
}

// Package vfs implements the simulated virtual filesystem substrate:
// superblocks and mounts, a dentry cache organized as a path-component
// trie, inodes, and a page cache backed by internal/mem — plus the
// annotated interface filesystem modules plug into.
//
// The substrate mirrors how netstack and blockdev wire modules in:
// filesystem modules register an fs_operations table with
// register_filesystem, and the kernel reaches them only through checked
// indirect calls on the module-writable slots of that table. Every
// mounted superblock is its own LXFI instance principal (principal(sb)),
// so two mounts of the same module cannot touch each other's inodes or
// cached pages.
//
// Page-cache pages move between kernel and module by capability
// transfer, in both directions:
//
//   - readpage receives a WRITE capability for the page it must fill
//     (pre(transfer(page_caps(page)))) and gives it back on success
//     (post(if (return == 0) transfer(...))). On failure the revoke
//     action strips the capability from every principal, so a failing
//     module cannot retain write access to a page the kernel recycles.
//   - writepage receives only a REF(struct page) capability: writeback
//     must prove it was handed the page by the VFS (pc_writeback checks
//     the REF) but must not be able to modify a clean page.
package vfs

import (
	"container/list"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"lxfi/internal/blockdev"
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
)

// Layout names.
const (
	SuperBlock = "struct super_block"
	Inode      = "struct inode"
	DentryT    = "struct dentry"
	FsOps      = "struct fs_operations"
)

// PageRef is the REF capability type for page-cache pages.
const PageRef = "struct page"

// Function-pointer types (the annotated filesystem interface).
const (
	FsMount     = "fs_operations.mount"
	FsKillSB    = "fs_operations.kill_sb"
	FsCreate    = "fs_operations.create"
	FsLookup    = "fs_operations.lookup"
	FsUnlink    = "fs_operations.unlink"
	FsReaddir   = "fs_operations.readdir"
	FsRename    = "fs_operations.rename"
	FsExchange  = "fs_operations.exchange"
	FsLink      = "fs_operations.link"
	FsReadPage  = "fs_operations.readpage"
	FsWritePage = "fs_operations.writepage"
	FsIoctl     = "fs_operations.ioctl"
)

// Inode modes (stored in the inode's mode field).
const (
	ModeFile = 0
	ModeDir  = 1
)

// Superblock flags (stored in the superblock's flags field).
const (
	// SBMemOnly marks a mount whose page cache is the only copy of the
	// data (tmpfs-style). DropCaches never evicts such mounts — the
	// "clean" bit after a no-op writepage does not mean the data is
	// anywhere else.
	SBMemOnly = 1 << 0
)

// NameMax is the longest path component the substrate accepts.
const NameMax = 55

// Stats counts VFS activity for tests and the fsperf reports. The
// counters are atomic: worker threads and the writeback flusher bump
// them concurrently.
type Stats struct {
	Mounts      atomic.Uint64
	Creates     atomic.Uint64
	Unlinks     atomic.Uint64
	Renames     atomic.Uint64
	Links       atomic.Uint64
	Exchanges   atomic.Uint64
	Readdirs    atomic.Uint64 // readdir crossings (one per enumerated entry)
	DcacheHits  atomic.Uint64
	DcacheMiss  atomic.Uint64
	PageFills   atomic.Uint64 // readpage crossings
	PageWrites  atomic.Uint64 // writepage crossings
	FlushWrites atomic.Uint64 // writepage crossings made by the background flusher
	Evictions   atomic.Uint64 // pages reclaimed by the LRU budget policy
	EvictWrites atomic.Uint64 // writepage crossings forced by evicting a dirty page
	BytesRead   atomic.Uint64
	BytesWrited atomic.Uint64
}

type fstype struct {
	module *core.Module
	ops    mem.Addr
}

// mount is one mounted superblock. mu is the per-mount operation lock:
// it serializes every namespace and data operation on the mount,
// including all crossings into the owning module, so the module's
// per-mount state (dirent lists, extent bookkeeping) sees one operation
// at a time — different mounts run genuinely in parallel.
type mount struct {
	fs   *fstype
	sb   mem.Addr
	dev  uint64
	root mem.Addr // root dentry

	mu   sync.Mutex
	dead bool // set by Unmount; operations that lost the race fail

	// dentries is this mount's dentry cache: one dnode per cached
	// dentry, with children keyed by path component (the M-way-trie
	// shape). Guarded by mu.
	dentries map[mem.Addr]*dnode

	// nameBuf and dirBuf are this mount's kernel scratch buffers for
	// passing path components to (and readdir names from) the module.
	// Per-mount so concurrent crossings on different mounts cannot
	// clobber each other's component.
	nameBuf mem.Addr
	dirBuf  mem.Addr

	// argBuf is the mount's crossing-argument scratch: call sites build
	// their IndirectCall argument slice in place (argBuf[:0]) instead of
	// allocating one per crossing. Guarded by mu like every other
	// crossing on the mount.
	argBuf [8]uint64

	// Writeback stats (atomic: the flusher thread and foreground
	// eviction both write them).
	wbFlushed atomic.Uint64 // pages successfully written back
	wbForced  atomic.Uint64 // dirty victims forced through writepage by eviction
}

// args builds the mount's crossing-argument slice in the per-mount
// scratch. Caller holds mnt.mu (or exclusively owns the mount), the
// same condition that protects every other crossing buffer.
func (mnt *mount) args(vals ...uint64) []uint64 {
	return append(mnt.argBuf[:0], vals...)
}

// VFS is the simulated virtual filesystem layer.
//
// Lock order (outermost first):
//
//	mount.mu  →  VFS.mu  →  VFS.pageMu  →  (caps/core/mem internal locks)
//
// VFS.mu (the mount table) and pageMu (the page cache index) are held
// only across map manipulation, never across a module crossing; mount.mu
// is the only lock held while crossing into a filesystem module. A
// thread holding one mount.mu acquires another mount's lock exclusively
// via TryLock (cross-mount eviction), which keeps the order acyclic.
type VFS struct {
	K *kernel.Kernel
	// Block is the block layer pc_writeback persists pages to; nil for
	// machines without one (pc_writeback then fails with -ENOENT).
	Block *blockdev.Layer

	sbLay   *layout.Struct
	inoLay  *layout.Struct
	dentLay *layout.Struct
	fopsLay *layout.Struct

	// mu guards the filesystem registry and the mount table.
	mu          sync.RWMutex
	filesystems map[uint64]*fstype
	mounts      map[mem.Addr]*mount

	// pageMu guards the page-cache index: pages, dirty, dirtyTick, the
	// LRU list, and the budget. Page *contents* are copied under the
	// owning mount's lock.
	pageMu sync.Mutex
	// pages is the page cache: (inode, page index) -> page base address.
	pages map[pageKey]mem.Addr
	dirty map[pageKey]bool
	// dirtyTick records the flusher tick at which a page was last
	// dirtied; the background flusher only writes back pages that have
	// aged at least one full tick.
	dirtyTick map[pageKey]uint64

	// lru orders the cached pages least- to most-recently used; lruPos
	// indexes the list elements by page key. pageBudget caps the cache
	// size (0 = unlimited): inserting past the budget evicts from the
	// LRU end, forcing writeback for dirty victims.
	lru        *list.List
	lruPos     map[pageKey]*list.Element
	pageBudget int

	// Bound indirect-call gates, one per fs_operations slot: resolved
	// once at Init so the per-crossing path never repeats the
	// string-keyed function-pointer-type lookup (the §4.2 bind-time
	// move applied to the kernel side).
	gMount     *core.IndGate
	gKillSB    *core.IndGate
	gCreate    *core.IndGate
	gLookup    *core.IndGate
	gUnlink    *core.IndGate
	gReaddir   *core.IndGate
	gRename    *core.IndGate
	gExchange  *core.IndGate
	gLink      *core.IndGate
	gReadPage  *core.IndGate
	gWritePage *core.IndGate
	gIoctl     *core.IndGate

	// Writeback flusher state (see flusher.go).
	flushTick     atomic.Uint64
	flushInterval atomic.Int64  // base interval, nanoseconds; 0 = flusher parked
	flushCur      atomic.Int64  // current (pressure-adapted) interval
	flushRatio    atomic.Uint64 // dirty-ratio threshold as math.Float64bits
	flushKick     chan struct{}

	nextIno atomic.Uint64

	Stats Stats
}

// Init builds the VFS on a booted kernel, registering layouts, the
// annotated function-pointer interface, and the kernel exports
// filesystem modules import. bl may be nil on machines without a block
// layer.
func Init(k *kernel.Kernel, bl *blockdev.Layer) *VFS {
	v := &VFS{
		K:           k,
		Block:       bl,
		filesystems: make(map[uint64]*fstype),
		mounts:      make(map[mem.Addr]*mount),
		pages:       make(map[pageKey]mem.Addr),
		dirty:       make(map[pageKey]bool),
		dirtyTick:   make(map[pageKey]uint64),
		lru:         list.New(),
		lruPos:      make(map[pageKey]*list.Element),
		flushKick:   make(chan struct{}, 1),
	}
	sys := k.Sys

	v.sbLay = sys.Layouts.Define(SuperBlock,
		layout.F("ops", 8),
		layout.F("dev", 8),
		layout.F("root", 8),
		layout.F("private", 8),
		layout.F("flags", 8),
		layout.F("maxbytes", 8),
	)
	v.inoLay = sys.Layouts.Define(Inode,
		layout.F("sb", 8),
		layout.F("ino", 8),
		layout.F("size", 8),
		layout.F("nlink", 8),
		layout.F("mode", 8),
		layout.F("private", 8),
	)
	v.dentLay = sys.Layouts.Define(DentryT,
		layout.F("inode", 8),
		layout.F("parent", 8),
		layout.F("name", NameMax+1),
	)
	v.fopsLay = sys.Layouts.Define(FsOps,
		layout.F("mount", 8),
		layout.F("kill_sb", 8),
		layout.F("create", 8),
		layout.F("lookup", 8),
		layout.F("unlink", 8),
		layout.F("readdir", 8),
		layout.F("rename", 8),
		layout.F("exchange", 8),
		layout.F("link", 8),
		layout.F("readpage", 8),
		layout.F("writepage", 8),
		layout.F("ioctl", 8),
	)

	// page_caps: the single WRITE capability that makes up a page-cache
	// page (pages are raw PageSize buffers, no header struct).
	sys.RegisterIterator("page_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		page := mem.Addr(uint64(args[0]))
		if page == 0 {
			return nil
		}
		return emit(caps.WriteCap(page, mem.PageSize))
	})

	// name_caps: the WRITE capability for a NameMax-sized name buffer —
	// the scratch the kernel lends a module for one readdir entry.
	sys.RegisterIterator("name_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		buf := mem.Addr(uint64(args[0]))
		if buf == 0 {
			return nil
		}
		return emit(caps.WriteCap(buf, NameMax+1))
	})

	v.registerFPtrTypes()
	v.registerExports()
	// The kernel spawns the writeback flusher at boot, like kflushd. It
	// parks until EnableWriteback gives it an interval.
	k.SpawnDaemon("kflushd", v.flusherLoop)
	return v
}

// Unregister removes every filesystem type the named module
// registered, so a reloaded generation can call register_filesystem
// again without tripping the duplicate-fsid EBUSY check. Mounted
// superblocks are untouched: their ops slots keep resolving through
// the retired generation's registrations, and the reload machinery
// redirects those crossings to the successor.
func (v *VFS) Unregister(moduleName string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for fsid, ft := range v.filesystems {
		if ft.module != nil && ft.module.Name == moduleName {
			delete(v.filesystems, fsid)
		}
	}
}

func (v *VFS) registerFPtrTypes() {
	sys := v.K.Sys
	sbP := core.P("sb", "struct super_block *")
	dirP := core.P("dir", "struct inode *")
	nameP := core.P("name", "const char *")
	lenP := core.P("len", "size_t")

	// mount fills in the superblock, so the module's instance principal
	// (named by the superblock itself) gets write access to it.
	sys.RegisterFPtrType(FsMount,
		[]core.Param{sbP},
		"principal(sb) pre(copy(write, sb))")
	sys.RegisterFPtrType(FsKillSB,
		[]core.Param{sbP}, "principal(sb)")
	sys.RegisterFPtrType(FsCreate,
		[]core.Param{sbP, dirP, nameP, lenP, core.P("mode", "int")},
		"principal(sb)")
	sys.RegisterFPtrType(FsLookup,
		[]core.Param{sbP, dirP, nameP, lenP},
		"principal(sb)")
	sys.RegisterFPtrType(FsUnlink,
		[]core.Param{sbP, dirP, core.P("inode", "struct inode *")},
		"principal(sb)")
	// readdir: the module fills the kernel's name buffer with one entry
	// per call (a dir_context-style cursor). WRITE on the buffer travels
	// kernel -> module -> kernel, exactly like a page through readpage.
	sys.RegisterFPtrType(FsReaddir,
		[]core.Param{sbP, dirP, core.P("pos", "u64"), core.P("buf", "void *")},
		"principal(sb) pre(transfer(name_caps(buf))) "+
			"post(transfer(name_caps(buf)))")
	// rename: on success the mount's instance principal must still own
	// the moved inode and both directory inodes — the per-mount
	// capability re-check that makes a cross-mount rename smuggled past
	// the kernel checks a contract violation, not a silent corruption.
	// victim is the inode of an existing target the rename replaces (0
	// when the destination is free): passing it through the same
	// crossing lets a journaling module commit the relink and the
	// target's removal as one atomic transaction instead of exposing a
	// crash window between two crossings.
	sys.RegisterFPtrType(FsRename,
		[]core.Param{sbP, core.P("olddir", "struct inode *"),
			core.P("inode", "struct inode *"), core.P("newdir", "struct inode *"),
			nameP, lenP, core.P("victim", "struct inode *")},
		"principal(sb) post(if (return == 0) check(write, olddir)) "+
			"post(if (return == 0) check(write, newdir)) "+
			"post(if (return == 0) check(write, inode))")
	// exchange: RENAME_EXCHANGE — two existing entries swap their
	// (directory, name) positions atomically. Both entries and both
	// directories must still belong to the mount's principal afterwards.
	sys.RegisterFPtrType(FsExchange,
		[]core.Param{sbP, core.P("dira", "struct inode *"),
			core.P("inoa", "struct inode *"), core.P("dirb", "struct inode *"),
			core.P("inob", "struct inode *")},
		"principal(sb) post(if (return == 0) check(write, dira)) "+
			"post(if (return == 0) check(write, dirb)) "+
			"post(if (return == 0) check(write, inoa)) "+
			"post(if (return == 0) check(write, inob))")
	// link: a new name for an existing inode (hardlink). The module
	// bumps nlink and persists the new entry; the kernel adds the
	// dentry afterwards.
	sys.RegisterFPtrType(FsLink,
		[]core.Param{sbP, dirP, core.P("inode", "struct inode *"), nameP, lenP},
		"principal(sb) post(if (return == 0) check(write, dir)) "+
			"post(if (return == 0) check(write, inode))")
	// readpage: WRITE ownership of the page travels kernel -> module ->
	// kernel; a failing module keeps nothing (revoke).
	sys.RegisterFPtrType(FsReadPage,
		[]core.Param{sbP, core.P("inode", "struct inode *"), core.P("idx", "u64"), core.P("page", "void *")},
		"principal(sb) pre(transfer(page_caps(page))) "+
			"post(if (return == 0) transfer(page_caps(page))) "+
			"post(if (return != 0) revoke(page_caps(page)))")
	// writepage: the module proves page ownership with a REF capability
	// but cannot modify the clean page it is persisting.
	sys.RegisterFPtrType(FsWritePage,
		[]core.Param{sbP, core.P("inode", "struct inode *"), core.P("idx", "u64"), core.P("page", "void *")},
		"principal(sb) pre(transfer(ref(struct page), page)) "+
			"post(transfer(ref(struct page), page))")
	sys.RegisterFPtrType(FsIoctl,
		[]core.Param{sbP, core.P("cmd", "int"), core.P("arg", "u64")},
		"principal(sb)")

	// Bind the crossing gates for every interface slot just registered.
	v.gMount = sys.BindIndirect(FsMount)
	v.gKillSB = sys.BindIndirect(FsKillSB)
	v.gCreate = sys.BindIndirect(FsCreate)
	v.gLookup = sys.BindIndirect(FsLookup)
	v.gUnlink = sys.BindIndirect(FsUnlink)
	v.gReaddir = sys.BindIndirect(FsReaddir)
	v.gRename = sys.BindIndirect(FsRename)
	v.gExchange = sys.BindIndirect(FsExchange)
	v.gLink = sys.BindIndirect(FsLink)
	v.gReadPage = sys.BindIndirect(FsReadPage)
	v.gWritePage = sys.BindIndirect(FsWritePage)
	v.gIoctl = sys.BindIndirect(FsIoctl)
}

func (v *VFS) registerExports() {
	sys := v.K.Sys

	// register_filesystem: the module must own the ops table it hands the
	// kernel (the table stays module-writable, so every mount-time and
	// per-page indirect call through it takes the slow writer-set path,
	// like the e1000 ndo_start_xmit slot).
	sys.RegisterKernelFunc("register_filesystem",
		[]core.Param{core.P("fsid", "u64"), core.P("ops", "struct fs_operations *")},
		"pre(check(write, ops))",
		func(t *core.Thread, args []uint64) uint64 {
			v.mu.Lock()
			defer v.mu.Unlock()
			if _, dup := v.filesystems[args[0]]; dup {
				return kernel.Err(kernel.EBUSY)
			}
			// CallerModule, not CurrentModule: this body runs trusted,
			// so the registering module is on the shadow stack.
			v.filesystems[args[0]] = &fstype{module: t.CallerModule(), ops: mem.Addr(args[1])}
			return 0
		})

	// iget allocates a fresh inode; WRITE ownership transfers to the
	// allocating principal (the mount's instance principal), which must
	// fill in size/nlink/mode.
	sys.RegisterKernelFunc("iget",
		[]core.Param{core.P("sb", "struct super_block *")},
		"post(if (return != 0) transfer(alloc_caps(return)))",
		func(t *core.Thread, args []uint64) uint64 {
			ino, err := sys.Slab.Alloc(v.inoLay.Size)
			if err != nil {
				return 0
			}
			must(sys.AS.Zero(ino, v.inoLay.Size))
			must(sys.AS.WriteU64(v.InodeField(ino, "sb"), args[0]))
			must(sys.AS.WriteU64(v.InodeField(ino, "ino"), v.nextIno.Add(1)))
			must(sys.AS.WriteU64(v.InodeField(ino, "nlink"), 1))
			return uint64(ino)
		})

	// iput releases an inode: the caller gives up ownership, and the
	// kernel drops every page-cache page of the dying inode so stale
	// data cannot resurface under a recycled address.
	sys.RegisterKernelFunc("iput",
		[]core.Param{core.P("inode", "struct inode *")},
		"pre(transfer(alloc_caps(inode)))",
		func(t *core.Thread, args []uint64) uint64 {
			ino := mem.Addr(args[0])
			if ino == 0 {
				return 0
			}
			v.dropPagesOf(ino)
			_ = sys.Slab.Free(ino)
			return 0
		})

	// pc_writeback persists one page-cache page to a block device. The
	// page REF check is the whole point: only a module that was handed
	// this page by the VFS writepage path may persist it. The device
	// REF check pins the destination: the caller can only write back to
	// a disk its mount was granted.
	sys.RegisterKernelFunc("pc_writeback",
		[]core.Param{core.P("dev", "u64"), core.P("sector", "u64"), core.P("page", "void *")},
		"pre(check(ref(struct page), page)) pre(check(ref(block device), dev))",
		func(t *core.Thread, args []uint64) uint64 {
			if v.Block == nil {
				return kernel.Err(kernel.ENOENT)
			}
			disk := v.Block.DiskBytes(args[0])
			if disk == nil {
				return kernel.Err(kernel.ENOENT)
			}
			// Bound the sector count before multiplying: args[1] is
			// module-controlled, and a huge value would overflow the
			// byte-offset arithmetic past the bounds check.
			if args[1] > uint64(len(disk))/blockdev.SectorSize {
				return kernel.Err(kernel.EINVAL)
			}
			off := args[1] * blockdev.SectorSize
			if off+mem.PageSize > uint64(len(disk)) {
				return kernel.Err(kernel.EINVAL)
			}
			buf, err := sys.AS.ReadBytes(mem.Addr(args[2]), mem.PageSize)
			if err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			// The write goes through the block layer's single logged
			// mutation path, so writeback shows up in the crash-recovery
			// write log and obeys an armed power cut like any other write.
			if err := v.Block.WriteSectors(args[0], args[1], buf); err != nil {
				return kernel.Err(kernel.EIO)
			}
			return 0
		})
}

// --- field helpers ---

// SBField returns the address of a super_block field.
func (v *VFS) SBField(sb mem.Addr, f string) mem.Addr { return sb + mem.Addr(v.sbLay.Off(f)) }

// InodeField returns the address of an inode field.
func (v *VFS) InodeField(ino mem.Addr, f string) mem.Addr { return ino + mem.Addr(v.inoLay.Off(f)) }

// OpsSlot returns the address of an fs_operations slot.
func (v *VFS) OpsSlot(ops mem.Addr, f string) mem.Addr { return ops + mem.Addr(v.fopsLay.Off(f)) }

// --- mount lifecycle ---

// mountOf returns the mount for sb, or nil. It takes only VFS.mu, so it
// is safe to call while holding a mount lock (cross-mount eviction).
func (v *VFS) mountOf(sb mem.Addr) *mount {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.mounts[sb]
}

// mountList snapshots the mount table. Callers lock individual mounts
// afterwards, never while VFS.mu is held.
func (v *VFS) mountList() []*mount {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*mount, 0, len(v.mounts))
	for _, mnt := range v.mounts {
		out = append(out, mnt)
	}
	return out
}

// lockMount resolves sb and returns its mount with mu held. The caller
// must unlock it. A mount that disappeared (or died) while we waited
// for the lock produces an error instead of an operation on freed
// superblock memory.
func (v *VFS) lockMount(sb mem.Addr) (*mount, error) {
	mnt := v.mountOf(sb)
	if mnt == nil {
		return nil, fmt.Errorf("vfs: not a mounted superblock: %#x", uint64(sb))
	}
	mnt.mu.Lock()
	if mnt.dead {
		mnt.mu.Unlock()
		return nil, fmt.Errorf("vfs: superblock %#x was unmounted", uint64(sb))
	}
	return mnt, nil
}

// Mount instantiates a registered filesystem on a device: it allocates
// the superblock, runs the module's mount callback as the new mount's
// instance principal, and roots the dentry cache at the inode the module
// returns.
func (v *VFS) Mount(t *core.Thread, fsid, dev uint64) (_ mem.Addr, rerr error) {
	defer func() { rerr = degradeFS("vfs.mount", rerr) }()
	v.mu.RLock()
	ft, ok := v.filesystems[fsid]
	v.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("vfs: unknown filesystem %d", fsid)
	}
	if ft.module != nil && ft.module.Dead() {
		return 0, core.ErrModuleDead
	}
	sys := v.K.Sys
	sb, err := sys.Slab.Alloc(v.sbLay.Size)
	if err != nil {
		return 0, err
	}
	must(sys.AS.Zero(sb, v.sbLay.Size))
	must(sys.AS.WriteU64(v.SBField(sb, "ops"), uint64(ft.ops)))
	must(sys.AS.WriteU64(v.SBField(sb, "dev"), dev))

	// On any failure the instance principal created for sb must go away
	// with the superblock: FsMount's pre(copy(write, sb)) has already
	// granted it WRITE over the address the slab is about to recycle.
	fail := func(err error) (mem.Addr, error) {
		if ft.module != nil {
			ft.module.Set.DropInstance(sb)
		}
		_ = sys.Slab.Free(sb)
		return 0, err
	}
	// The mount's instance principal is granted REF on its backing
	// device *before* the mount crossing: journal replay happens inside
	// the module's mount callback and must be able to write the disk
	// (dm_write_sectors demands the device REF). The capability dies
	// with the principal — at unmount, or in fail() for a mount that
	// never completed.
	if ft.module != nil {
		sys.Caps.Grant(ft.module.Set.Instance(sb), caps.RefCap(blockdev.DevRef, mem.Addr(dev)))
	}
	ret, err := v.gMount.Call1(t, v.OpsSlot(ft.ops, "mount"), uint64(sb))
	if err != nil {
		return fail(err)
	}
	if ret == 0 {
		return fail(fmt.Errorf("vfs: mount of filesystem %d failed", fsid))
	}
	// The mount object exists before it is published in the mount table,
	// so the root dentry can go straight into its private cache.
	mnt := &mount{
		fs: ft, sb: sb, dev: dev,
		dentries: make(map[mem.Addr]*dnode),
		nameBuf:  sys.Statics.Alloc(NameMax+1, 8),
		dirBuf:   sys.Statics.Alloc(NameMax+1, 8),
	}
	root, err := v.newDentry(mnt, 0, "/", mem.Addr(ret))
	if err != nil {
		// The module's mount already succeeded: give it kill_sb so its
		// private allocations and root inode are released before the
		// principal goes away.
		_, _ = v.gKillSB.Call1(t, v.OpsSlot(ft.ops, "kill_sb"), uint64(sb))
		return fail(err)
	}
	mnt.root = root
	must(sys.AS.WriteU64(v.SBField(sb, "root"), uint64(root)))
	v.mu.Lock()
	v.mounts[sb] = mnt
	v.mu.Unlock()
	v.Stats.Mounts.Add(1)
	return sb, nil
}

// Unmount runs the module's kill_sb, then reclaims every dentry, inode,
// and page of the mount and discards the mount's instance principal so a
// recycled superblock address cannot inherit stale privileges.
func (v *VFS) Unmount(t *core.Thread, sb mem.Addr) error {
	mnt, err := v.lockMount(sb)
	if err != nil {
		return err
	}
	defer mnt.mu.Unlock()
	if _, err := v.gKillSB.CallArgs(t, v.OpsSlot(mnt.fs.ops, "kill_sb"), mnt.args(uint64(sb))); err != nil {
		return err
	}
	mnt.dead = true
	v.mu.Lock()
	delete(v.mounts, sb)
	v.mu.Unlock()
	sys := v.K.Sys
	// Reclaim whatever the module did not release itself. Inodes it
	// already iput are gone from the slab; the double free is ignored.
	for d, n := range mnt.dentries {
		if n.inode != 0 {
			v.dropPagesOf(n.inode)
			_ = sys.Slab.Free(n.inode)
		}
		_ = sys.Slab.Free(d)
	}
	mnt.dentries = make(map[mem.Addr]*dnode)
	if mnt.fs.module != nil {
		mnt.fs.module.Set.DropInstance(sb)
	}
	_ = sys.Slab.Free(sb)
	return nil
}

// Ioctl dispatches a filesystem-specific control operation through the
// module-writable ioctl slot.
func (v *VFS) Ioctl(t *core.Thread, sb mem.Addr, cmd, arg uint64) (uint64, error) {
	mnt, err := v.lockMount(sb)
	if err != nil {
		return 0, err
	}
	defer mnt.mu.Unlock()
	return v.gIoctl.CallArgs(t, v.OpsSlot(mnt.fs.ops, "ioctl"), mnt.args(uint64(sb), cmd, arg))
}

// Filesystems returns the ids of all registered filesystems.
func (v *VFS) Filesystems() []uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]uint64, 0, len(v.filesystems))
	for id := range v.filesystems {
		out = append(out, id)
	}
	return out
}

// splitPath normalizes a path into components.
func splitPath(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			out = append(out, c)
		}
	}
	return out
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

package vfs_test

import (
	"bytes"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
	"lxfi/internal/vfs"
)

type rig struct {
	k  *kernel.Kernel
	bl *blockdev.Layer
	v  *vfs.VFS
	th *core.Thread
}

func newRig(t *testing.T, mode core.Mode) *rig {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	bl := blockdev.Init(k)
	v := vfs.Init(k, bl)
	return &rig{k: k, bl: bl, v: v, th: k.Sys.NewThread("test")}
}

func (r *rig) noViolations(t *testing.T) {
	t.Helper()
	if n := len(r.k.Sys.Mon.Violations()); n != 0 {
		t.Fatalf("unexpected violations: %v", r.k.Sys.Mon.LastViolation())
	}
}

func TestTmpfsRoundtrip(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode)
			if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
				t.Fatal(err)
			}
			sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.v.Mkdir(r.th, sb, "/etc"); err != nil {
				t.Fatal(err)
			}
			if _, err := r.v.Create(r.th, sb, "/etc/motd"); err != nil {
				t.Fatal(err)
			}
			msg := []byte("hello from the page cache")
			if _, err := r.v.Write(r.th, sb, "/etc/motd", 0, msg); err != nil {
				t.Fatal(err)
			}
			got, err := r.v.Read(r.th, sb, "/etc/motd", 0, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("read back %q, want %q", got, msg)
			}
			size, nlink, err := r.v.Stat(r.th, sb, "/etc/motd")
			if err != nil || size != uint64(len(msg)) || nlink != 1 {
				t.Fatalf("stat = (%d, %d, %v)", size, nlink, err)
			}
			// Sparse read: offsets past a hole come back zeroed.
			if _, err := r.v.Write(r.th, sb, "/etc/motd", 2*mem.PageSize, []byte{7}); err != nil {
				t.Fatal(err)
			}
			hole, err := r.v.Read(r.th, sb, "/etc/motd", mem.PageSize, 16)
			if err != nil || !bytes.Equal(hole, make([]byte, 16)) {
				t.Fatalf("hole read = %x, %v", hole, err)
			}
			if err := r.v.Unlink(r.th, sb, "/etc/motd"); err != nil {
				t.Fatal(err)
			}
			if _, err := r.v.Lookup(r.th, sb, "/etc/motd"); err == nil {
				t.Fatal("lookup after unlink succeeded")
			}
			r.noViolations(t)
		})
	}
}

func TestMinixPersistsToDisk(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/data"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 3*mem.PageSize)
	if _, err := r.v.Write(r.th, sb, "/data", 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if r.v.DirtyCount() != 0 {
		t.Fatalf("dirty pages after sync: %d", r.v.DirtyCount())
	}
	// The bytes must be on the simulated disk, not just in the cache.
	if !bytes.Contains(r.bl.DiskBytes(1), payload[:mem.PageSize]) {
		t.Fatal("payload not written to the backing disk")
	}
	// Evict the cache; the next read must refill from disk via readpage.
	fills := r.v.Stats.PageFills
	if n := r.v.DropCaches(sb); n == 0 {
		t.Fatal("DropCaches evicted nothing")
	}
	got, err := r.v.Read(r.th, sb, "/data", 0, uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data did not survive cache eviction")
	}
	if r.v.Stats.PageFills == fills {
		t.Fatal("cold read did not cross into the module")
	}
	r.noViolations(t)
}

// TestPageOwnershipReturns verifies the capability story of the page
// cache: after read and writeback complete, the mount's principal holds
// neither WRITE nor REF for the cached page.
func TestPageOwnershipReturns(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := r.v.Create(r.th, sb, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/f", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	pg, ok := r.v.PageAddr(ino, 0)
	if !ok {
		t.Fatal("page not cached")
	}
	prin, ok := fs.M.Set.Lookup(sb)
	if !ok {
		t.Fatal("no instance principal for the mount")
	}
	if r.k.Sys.Caps.OwnsDirectly(prin, caps.WriteCap(pg, mem.PageSize)) {
		t.Fatal("mount principal retained WRITE on a clean page-cache page")
	}
	if got := r.k.Sys.Caps.WriteGrantees(pg); len(got) != 0 {
		t.Fatalf("page still write-granted to %v", got)
	}
	if got := r.k.Sys.Caps.RefGrantees(vfs.PageRef, pg); len(got) != 0 {
		t.Fatalf("page still REF-granted to %v", got)
	}
	// The inode, in contrast, stays with the mount that allocated it.
	if !r.k.Sys.Caps.Check(prin, caps.WriteCap(ino, 8)) {
		t.Fatal("mount principal lost its inode")
	}
}

// TestMountsAreDistinctPrincipals: two mounts of one module must not
// share capabilities — the dm-crypt two-volume argument of §2.1, on the
// filesystem substrate.
func TestMountsAreDistinctPrincipals(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sbA, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbB, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	inoB, err := r.v.Create(r.th, sbB, "/secret")
	if err != nil {
		t.Fatal(err)
	}
	prinA, _ := fs.M.Set.Lookup(sbA)
	if prinA == nil {
		t.Fatal("no principal for mount A")
	}
	if r.k.Sys.Caps.Check(prinA, caps.WriteCap(sbB, 8)) {
		t.Fatal("mount A can write mount B's superblock")
	}
	if r.k.Sys.Caps.Check(prinA, caps.WriteCap(inoB, 8)) {
		t.Fatal("mount A can write mount B's inode")
	}
}

func TestUnmountReclaims(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/a", 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unmount(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if n := r.v.PageCount(); n != 0 {
		t.Fatalf("pages leaked across unmount: %d", n)
	}
	if n := r.v.DcacheLen(); n != 0 {
		t.Fatalf("dentries leaked across unmount: %d", n)
	}
	if fs.M.Dead {
		t.Fatal("module died during a clean unmount")
	}
	// The filesystem can be mounted again.
	if _, err := r.v.Mount(r.th, tmpfssim.FsID, 0); err != nil {
		t.Fatal(err)
	}
	r.noViolations(t)
}

// TestPokeConfinedToOwnPrincipal: the compromised ioctl can scribble on
// memory its own mount owns, but a write aimed at another mount's cached
// page is a violation that kills the module.
func TestPokeConfinedToOwnPrincipal(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sbA, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbB, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	inoB, err := r.v.Create(r.th, sbB, "/victim")
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("precious bytes")
	if _, err := r.v.Write(r.th, sbB, "/victim", 0, secret); err != nil {
		t.Fatal(err)
	}
	pg, ok := r.v.PageAddr(inoB, 0)
	if !ok {
		t.Fatal("victim page not cached")
	}

	// A poke at the module's own inode (owned by mount A) is allowed.
	inoA, err := r.v.Create(r.th, sbA, "/own")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Ioctl(r.th, sbA, tmpfssim.CmdPoke, uint64(r.v.InodeField(inoA, "private"))); err != nil {
		t.Fatalf("poke at own memory rejected: %v", err)
	}

	// The cross-principal page-cache write is blocked.
	if _, err := r.v.Ioctl(r.th, sbA, tmpfssim.CmdPoke, uint64(pg)); err == nil {
		t.Fatal("cross-principal page write succeeded under Enforce")
	}
	if len(r.k.Sys.Mon.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}
	got, err := r.v.Read(r.th, sbB, "/victim", 0, uint64(len(secret)))
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("victim data corrupted: %q, %v", got, err)
	}
	if !fs.M.Dead {
		t.Fatal("violating module was not killed")
	}
}

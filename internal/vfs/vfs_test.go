package vfs_test

import (
	"bytes"
	"fmt"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
	"lxfi/internal/vfs"
)

type rig struct {
	k  *kernel.Kernel
	bl *blockdev.Layer
	v  *vfs.VFS
	th *core.Thread
}

func newRig(t *testing.T, mode core.Mode) *rig {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	bl := blockdev.Init(k)
	v := vfs.Init(k, bl)
	return &rig{k: k, bl: bl, v: v, th: k.Sys.NewThread("test")}
}

func (r *rig) noViolations(t *testing.T) {
	t.Helper()
	if n := len(r.k.Sys.Mon.Violations()); n != 0 {
		t.Fatalf("unexpected violations: %v", r.k.Sys.Mon.LastViolation())
	}
}

func TestTmpfsRoundtrip(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode)
			if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
				t.Fatal(err)
			}
			sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.v.Mkdir(r.th, sb, "/etc"); err != nil {
				t.Fatal(err)
			}
			if _, err := r.v.Create(r.th, sb, "/etc/motd"); err != nil {
				t.Fatal(err)
			}
			msg := []byte("hello from the page cache")
			if _, err := r.v.Write(r.th, sb, "/etc/motd", 0, msg); err != nil {
				t.Fatal(err)
			}
			got, err := r.v.Read(r.th, sb, "/etc/motd", 0, 4096)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("read back %q, want %q", got, msg)
			}
			size, nlink, err := r.v.Stat(r.th, sb, "/etc/motd")
			if err != nil || size != uint64(len(msg)) || nlink != 1 {
				t.Fatalf("stat = (%d, %d, %v)", size, nlink, err)
			}
			// Sparse read: offsets past a hole come back zeroed.
			if _, err := r.v.Write(r.th, sb, "/etc/motd", 2*mem.PageSize, []byte{7}); err != nil {
				t.Fatal(err)
			}
			hole, err := r.v.Read(r.th, sb, "/etc/motd", mem.PageSize, 16)
			if err != nil || !bytes.Equal(hole, make([]byte, 16)) {
				t.Fatalf("hole read = %x, %v", hole, err)
			}
			if err := r.v.Unlink(r.th, sb, "/etc/motd"); err != nil {
				t.Fatal(err)
			}
			if _, err := r.v.Lookup(r.th, sb, "/etc/motd"); err == nil {
				t.Fatal("lookup after unlink succeeded")
			}
			r.noViolations(t)
		})
	}
}

func TestMinixPersistsToDisk(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/data"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 3*mem.PageSize)
	if _, err := r.v.Write(r.th, sb, "/data", 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if r.v.DirtyCount() != 0 {
		t.Fatalf("dirty pages after sync: %d", r.v.DirtyCount())
	}
	// The bytes must be on the simulated disk, not just in the cache.
	if !bytes.Contains(r.bl.DiskBytes(1), payload[:mem.PageSize]) {
		t.Fatal("payload not written to the backing disk")
	}
	// Evict the cache; the next read must refill from disk via readpage.
	fills := r.v.Stats.PageFills.Load()
	if n := r.v.DropCaches(sb); n == 0 {
		t.Fatal("DropCaches evicted nothing")
	}
	got, err := r.v.Read(r.th, sb, "/data", 0, uint64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data did not survive cache eviction")
	}
	if r.v.Stats.PageFills.Load() == fills {
		t.Fatal("cold read did not cross into the module")
	}
	r.noViolations(t)
}

// TestPageOwnershipReturns verifies the capability story of the page
// cache: after read and writeback complete, the mount's principal holds
// neither WRITE nor REF for the cached page.
func TestPageOwnershipReturns(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := r.v.Create(r.th, sb, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/f", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	pg, ok := r.v.PageAddr(ino, 0)
	if !ok {
		t.Fatal("page not cached")
	}
	prin, ok := fs.M.Set.Lookup(sb)
	if !ok {
		t.Fatal("no instance principal for the mount")
	}
	if r.k.Sys.Caps.OwnsDirectly(prin, caps.WriteCap(pg, mem.PageSize)) {
		t.Fatal("mount principal retained WRITE on a clean page-cache page")
	}
	if got := r.k.Sys.Caps.WriteGrantees(pg); len(got) != 0 {
		t.Fatalf("page still write-granted to %v", got)
	}
	if got := r.k.Sys.Caps.RefGrantees(vfs.PageRef, pg); len(got) != 0 {
		t.Fatalf("page still REF-granted to %v", got)
	}
	// The inode, in contrast, stays with the mount that allocated it.
	if !r.k.Sys.Caps.Check(prin, caps.WriteCap(ino, 8)) {
		t.Fatal("mount principal lost its inode")
	}
}

// TestMountsAreDistinctPrincipals: two mounts of one module must not
// share capabilities — the dm-crypt two-volume argument of §2.1, on the
// filesystem substrate.
func TestMountsAreDistinctPrincipals(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sbA, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbB, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	inoB, err := r.v.Create(r.th, sbB, "/secret")
	if err != nil {
		t.Fatal(err)
	}
	prinA, _ := fs.M.Set.Lookup(sbA)
	if prinA == nil {
		t.Fatal("no principal for mount A")
	}
	if r.k.Sys.Caps.Check(prinA, caps.WriteCap(sbB, 8)) {
		t.Fatal("mount A can write mount B's superblock")
	}
	if r.k.Sys.Caps.Check(prinA, caps.WriteCap(inoB, 8)) {
		t.Fatal("mount A can write mount B's inode")
	}
}

func TestUnmountReclaims(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/a", 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unmount(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if n := r.v.PageCount(); n != 0 {
		t.Fatalf("pages leaked across unmount: %d", n)
	}
	if n := r.v.DcacheLen(); n != 0 {
		t.Fatalf("dentries leaked across unmount: %d", n)
	}
	if fs.M.Dead() {
		t.Fatal("module died during a clean unmount")
	}
	// The filesystem can be mounted again.
	if _, err := r.v.Mount(r.th, tmpfssim.FsID, 0); err != nil {
		t.Fatal(err)
	}
	r.noViolations(t)
}

func entryNames(ents []vfs.DirEntry) map[string]vfs.DirEntry {
	m := make(map[string]vfs.DirEntry, len(ents))
	for _, e := range ents {
		m[e.Name] = e
	}
	return m
}

func TestReaddir(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, mode)
			if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
				t.Fatal(err)
			}
			sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.v.Mkdir(r.th, sb, "/d"); err != nil {
				t.Fatal(err)
			}
			for _, p := range []string{"/a", "/b", "/d/x", "/d/y", "/d/z"} {
				if _, err := r.v.Create(r.th, sb, p); err != nil {
					t.Fatal(err)
				}
			}
			root, err := r.v.Readdir(r.th, sb, "/")
			if err != nil {
				t.Fatal(err)
			}
			got := entryNames(root)
			if len(got) != 3 {
				t.Fatalf("root entries = %v, want a, b, d", root)
			}
			if e, ok := got["d"]; !ok || e.Mode != vfs.ModeDir {
				t.Fatalf("missing or non-dir entry d: %v", root)
			}
			if e, ok := got["a"]; !ok || e.Mode != vfs.ModeFile || e.Ino == 0 {
				t.Fatalf("bad entry a: %+v", e)
			}
			sub, err := r.v.Readdir(r.th, sb, "/d")
			if err != nil {
				t.Fatal(err)
			}
			if got := entryNames(sub); len(got) != 3 || got["x"].Name != "x" || got["z"].Name != "z" {
				t.Fatalf("subdir entries = %v, want x, y, z", sub)
			}
			// Readdir of a file is an error, not an empty listing.
			if _, err := r.v.Readdir(r.th, sb, "/a"); err == nil {
				t.Fatal("readdir of a regular file succeeded")
			}
			r.noViolations(t)
		})
	}
}

// TestRenameMovesSubtree: renaming a directory moves its dentry-trie
// subtree, so cached children stay resolvable under the new path and
// the old path is gone.
func TestRenameAcrossDirectories(t *testing.T) {
	r := newRig(t, core.Enforce)
	if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/src", "/dst"} {
		if _, err := r.v.Mkdir(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.v.Create(r.th, sb, "/src/f"); err != nil {
		t.Fatal(err)
	}
	body := []byte("travels with the rename")
	if _, err := r.v.Write(r.th, sb, "/src/f", 0, body); err != nil {
		t.Fatal(err)
	}
	// A plain file rename across directories.
	if err := r.v.Rename(r.th, sb, "/src/f", sb, "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Lookup(r.th, sb, "/src/f"); err == nil {
		t.Fatal("old path still resolves")
	}
	got, err := r.v.Read(r.th, sb, "/dst/g", 0, uint64(len(body)))
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("data lost across rename: %q, %v", got, err)
	}
	// A directory rename: the cached child must follow the subtree.
	if err := r.v.Rename(r.th, sb, "/dst", sb, "/moved"); err != nil {
		t.Fatal(err)
	}
	got, err = r.v.Read(r.th, sb, "/moved/g", 0, uint64(len(body)))
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("subtree child unreachable after dir rename: %q, %v", got, err)
	}
	if _, err := r.v.Lookup(r.th, sb, "/dst/g"); err == nil {
		t.Fatal("old subtree path still resolves")
	}
	// Renaming a directory into its own subtree must fail.
	if err := r.v.Rename(r.th, sb, "/moved", sb, "/moved/inside"); err == nil {
		t.Fatal("rename into own subtree succeeded")
	}
	if r.v.Stats.Renames.Load() != 2 {
		t.Fatalf("Renames = %d, want 2", r.v.Stats.Renames.Load())
	}
	r.noViolations(t)
}

func TestRenameOverExistingTarget(t *testing.T) {
	r := newRig(t, core.Enforce)
	if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	keep := []byte("the survivor")
	for _, p := range []string{"/winner", "/loser"} {
		if _, err := r.v.Create(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.v.Write(r.th, sb, "/winner", 0, keep); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/loser", 0, []byte("doomed bytes")); err != nil {
		t.Fatal(err)
	}
	unlinks := r.v.Stats.Unlinks.Load()
	if err := r.v.Rename(r.th, sb, "/winner", sb, "/loser"); err != nil {
		t.Fatal(err)
	}
	got, err := r.v.Read(r.th, sb, "/loser", 0, uint64(len(keep)))
	if err != nil || !bytes.Equal(got, keep) {
		t.Fatalf("target holds %q after rename-over, want %q (%v)", got, keep, err)
	}
	if _, err := r.v.Lookup(r.th, sb, "/winner"); err == nil {
		t.Fatal("source still resolves after rename-over")
	}
	if r.v.Stats.Unlinks.Load() != unlinks+1 {
		t.Fatalf("replaced target not unlinked: %d -> %d", unlinks, r.v.Stats.Unlinks.Load())
	}
	// Kind mismatch: a file cannot replace a directory.
	if _, err := r.v.Mkdir(r.th, sb, "/dir"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Rename(r.th, sb, "/loser", sb, "/dir"); err == nil {
		t.Fatal("file replaced a directory")
	}
	r.noViolations(t)
}

// TestRenameCrossMountRejected: two mounts are two principals; an inode
// cannot change owners by renaming, so the VFS rejects with EXDEV
// before any module state changes.
func TestRenameCrossMountRejected(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sbA, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbB, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sbA, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Rename(r.th, sbA, "/f", sbB, "/stolen"); err == nil {
		t.Fatal("cross-mount rename succeeded")
	}
	// The rejection is a kernel-side policy decision, not a module
	// contract violation: nothing recorded, nobody killed, and both
	// namespaces are unchanged.
	r.noViolations(t)
	if fs.M.Dead() {
		t.Fatal("module killed by a rejected rename")
	}
	if _, err := r.v.Lookup(r.th, sbA, "/f"); err != nil {
		t.Fatalf("source vanished after rejected rename: %v", err)
	}
	if _, err := r.v.Lookup(r.th, sbB, "/stolen"); err == nil {
		t.Fatal("target appeared on the other mount")
	}
}

// TestLRUBudgetEviction: the page budget bounds the cache, the victim
// is the least-recently-used page, and touching a page protects it.
func TestLRUBudgetEviction(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{"/f0", "/f1", "/f2"}
	for _, p := range paths {
		if _, err := r.v.Create(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.v.Write(r.th, sb, p, 0, bytes.Repeat([]byte{1}, mem.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	r.v.SetPageBudget(2)
	r.v.ShrinkToBudget(r.th)
	if n := r.v.PageCount(); n > 2 {
		t.Fatalf("cache at %d pages, budget 2", n)
	}
	// Warm f0 and f1 (refilling as needed), then touch f0 again so f1
	// is the LRU victim when f2 comes in.
	for _, p := range []string{"/f0", "/f1", "/f0"} {
		if _, err := r.v.Read(r.th, sb, p, 0, 8); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.v.Read(r.th, sb, "/f2", 0, 8); err != nil {
		t.Fatal(err)
	}
	if n := r.v.PageCount(); n > 2 {
		t.Fatalf("cache at %d pages, budget 2", n)
	}
	fills := r.v.Stats.PageFills.Load()
	if _, err := r.v.Read(r.th, sb, "/f0", 0, 8); err != nil {
		t.Fatal(err)
	}
	if r.v.Stats.PageFills.Load() != fills {
		t.Fatal("recently-touched f0 was evicted instead of LRU f1")
	}
	if _, err := r.v.Read(r.th, sb, "/f1", 0, 8); err != nil {
		t.Fatal(err)
	}
	if r.v.Stats.PageFills.Load() == fills {
		t.Fatal("LRU victim f1 was still cached")
	}
	if r.v.Stats.Evictions.Load() == 0 {
		t.Fatal("no evictions counted")
	}
	r.noViolations(t)
}

// TestDirtyEvictionForcesWriteback: under memory pressure dirty pages
// reach the disk through the module's REF-checked writepage without any
// explicit Sync — and no capability leaks from the forced crossings.
func TestDirtyEvictionForcesWriteback(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.v.SetPageBudget(2)
	payload := bytes.Repeat([]byte{0xC7}, mem.PageSize)
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("/f%d", i)
		if _, err := r.v.Create(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.v.Write(r.th, sb, p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if r.v.Stats.EvictWrites.Load() == 0 {
		t.Fatal("no eviction-forced writebacks")
	}
	if n := r.v.PageCount(); n > 2 {
		t.Fatalf("cache at %d pages, budget 2", n)
	}
	// The evicted files' bytes must be on disk, readable after refill.
	if !bytes.Contains(r.bl.DiskBytes(1), payload) {
		t.Fatal("evicted dirty data never reached the disk")
	}
	got, err := r.v.Read(r.th, sb, "/f0", 0, mem.PageSize)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("f0 lost under pressure: %v", err)
	}
	r.noViolations(t)
}

// TestFailedWritebackKeepsDataSafe: when the backing device disappears,
// neither Sync nor eviction pressure may drop a dirty page — the data
// stays cached and readable, and no violation is recorded (an I/O error
// is not an isolation failure). Plugging the disk back in lets Sync
// drain the backlog.
func TestFailedWritebackKeepsDataSafe(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, mem.PageSize)
	for i := 0; i < 3; i++ {
		p := fmt.Sprintf("/f%d", i)
		if _, err := r.v.Create(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.v.Write(r.th, sb, p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	disk := append([]byte{}, r.bl.DiskBytes(1)...)
	r.bl.RemoveDisk(1)
	if err := r.v.Sync(r.th, sb); err == nil {
		t.Fatal("writeback reached a removed disk")
	}
	if r.v.DirtyCount() == 0 {
		t.Fatal("failed writeback cleared the dirty bit")
	}
	// Eviction pressure must not discard the unpersistable pages either.
	r.v.SetPageBudget(1)
	r.v.ShrinkToBudget(r.th)
	r.v.SetPageBudget(0)
	for i := 0; i < 3; i++ {
		got, err := r.v.Read(r.th, sb, fmt.Sprintf("/f%d", i), 0, mem.PageSize)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("dirty data lost after failed writeback: %v", err)
		}
	}
	if len(r.k.Sys.Mon.Violations()) != 0 {
		t.Fatalf("I/O error recorded as a violation: %v", r.k.Sys.Mon.LastViolation())
	}
	// The disk returns (same contents): the backlog drains.
	r.bl.AddDisk(1, minixsim.DiskSectors)
	copy(r.bl.DiskBytes(1), disk)
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatalf("sync after disk returned: %v", err)
	}
	if r.v.DirtyCount() != 0 {
		t.Fatalf("dirty pages after recovered sync: %d", r.v.DirtyCount())
	}
	r.noViolations(t)
}

// TestMemOnlyExceedsBudgetRatherThanEvict: a tmpfs page cache is the
// only copy of the data, so the budget never discards it.
func TestMemOnlyExceedsBudgetRatherThanEvict(t *testing.T) {
	r := newRig(t, core.Enforce)
	if _, err := tmpfssim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.v.SetPageBudget(1)
	payload := bytes.Repeat([]byte{9}, mem.PageSize)
	for i := 0; i < 3; i++ {
		p := fmt.Sprintf("/f%d", i)
		if _, err := r.v.Create(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.v.Write(r.th, sb, p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.v.PageCount(); n != 3 {
		t.Fatalf("tmpfs pages = %d, want all 3 retained", n)
	}
	if r.v.Stats.Evictions.Load() != 0 {
		t.Fatal("memory-only pages were evicted")
	}
	for i := 0; i < 3; i++ {
		got, err := r.v.Read(r.th, sb, fmt.Sprintf("/f%d", i), 0, mem.PageSize)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("tmpfs data lost under budget pressure: %v", err)
		}
	}
	r.noViolations(t)
}

// TestMinixRemountRecoversNamespace: the directory table lives on the
// disk, so unmount + mount on the same device recovers the whole tree —
// names, hierarchy, sizes, and data — from the disk alone.
func TestMinixRemountRecoversNamespace(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("durable bytes under /deep")
	if _, err := r.v.Mkdir(r.th, sb, "/deep"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/deep/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/deep/file", 0, body); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/top"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/gone"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unlink(r.th, sb, "/gone"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Rename(r.th, sb, "/top", sb, "/deep/renamed"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unmount(r.th, sb); err != nil {
		t.Fatal(err)
	}
	// Everything below must come from the disk: the dentry cache and
	// page cache were torn down with the old mount.
	sb, err = r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	root, err := r.v.Readdir(r.th, sb, "/")
	if err != nil {
		t.Fatal(err)
	}
	names := entryNames(root)
	if len(names) != 1 || names["deep"].Mode != vfs.ModeDir {
		t.Fatalf("recovered root = %v, want only dir deep", root)
	}
	sub, err := r.v.Readdir(r.th, sb, "/deep")
	if err != nil {
		t.Fatal(err)
	}
	subNames := entryNames(sub)
	if len(subNames) != 2 {
		t.Fatalf("recovered /deep = %v, want file + renamed", sub)
	}
	size, _, err := r.v.Stat(r.th, sb, "/deep/file")
	if err != nil || size != uint64(len(body)) {
		t.Fatalf("recovered size = %d (%v), want %d", size, err, len(body))
	}
	got, err := r.v.Read(r.th, sb, "/deep/file", 0, uint64(len(body)))
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("recovered data = %q (%v), want %q", got, err, body)
	}
	if _, err := r.v.Lookup(r.th, sb, "/gone"); err == nil {
		t.Fatal("unlinked file resurrected by remount")
	}
	if _, err := r.v.Lookup(r.th, sb, "/deep/renamed"); err != nil {
		t.Fatalf("renamed file lost across remount: %v", err)
	}
	// The recovered slot bookkeeping must keep handing out fresh
	// extents that do not alias the recovered files.
	if _, err := r.v.Create(r.th, sb, "/fresh"); err != nil {
		t.Fatal(err)
	}
	fresh := bytes.Repeat([]byte{0x3C}, mem.PageSize)
	if _, err := r.v.Write(r.th, sb, "/fresh", 0, fresh); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	got, err = r.v.Read(r.th, sb, "/deep/file", 0, uint64(len(body)))
	if err != nil || !bytes.Equal(got, body) {
		t.Fatal("new file's extent aliased a recovered file")
	}
	r.noViolations(t)
}

// TestCrossDeviceWriteRejected: the dm_write_sectors REF(block device)
// check pins a mount to its own disk — a compromised module's raw
// sector write at another mount's device is a violation, not silent
// stable-storage corruption.
func TestCrossDeviceWriteRejected(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	r.bl.AddDisk(2, minixsim.DiskSectors)
	fs, err := minixsim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sbA, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Mount(r.th, minixsim.FsID, 2); err != nil {
		t.Fatal(err)
	}
	// A poke at the mount's own disk is the module's prerogative.
	if _, err := r.v.Ioctl(r.th, sbA, minixsim.CmdPokeDisk, 1); err != nil {
		t.Fatalf("poke at own disk rejected: %v", err)
	}
	r.noViolations(t)
	// The cross-device write is stopped before it reaches disk 2.
	before := append([]byte{}, r.bl.DiskBytes(2)...)
	if _, err := r.v.Ioctl(r.th, sbA, minixsim.CmdPokeDisk, 2); err == nil {
		t.Fatal("cross-device sector write succeeded under Enforce")
	}
	if len(r.k.Sys.Mon.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}
	if !bytes.Equal(r.bl.DiskBytes(2), before) {
		t.Fatal("disk 2 was modified by mount A's poke")
	}
	if !fs.M.Dead() {
		t.Fatal("violating module was not killed")
	}
}

// TestRemountDropsOrphanedRecords: a directory record destroyed on disk
// (simulated corruption) orphans its whole subtree — recovery must drop
// the orphans entirely and reuse their slots, not resurrect ghosts or
// link children under freed inodes.
func TestRemountDropsOrphanedRecords(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	// /a (slot 0) -> /a/b (slot 1) -> /a/b/c (slot 2), plus /keep.
	if _, err := r.v.Mkdir(r.th, sb, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Mkdir(r.th, sb, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/keep"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unmount(r.th, sb); err != nil {
		t.Fatal(err)
	}
	// Corrupt /a's directory-table record (slot 0): zero its used bit.
	disk := r.bl.DiskBytes(1)
	off := minixsim.DirTabStart * blockdev.SectorSize
	for i := 0; i < 8; i++ {
		disk[off+i] = 0
	}
	sb, err = r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := r.v.Readdir(r.th, sb, "/")
	if err != nil {
		t.Fatal(err)
	}
	names := entryNames(ents)
	if len(names) != 1 || names["keep"].Name != "keep" {
		t.Fatalf("recovered root = %v, want only keep", ents)
	}
	// The orphaned subtree's slots are reusable; new files work fine.
	for i := 0; i < 3; i++ {
		if _, err := r.v.Create(r.th, sb, fmt.Sprintf("/new%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	r.noViolations(t)
}

// TestRemountedDirEmptinessChecks: right after a remount the dentry
// cache is cold, so "directory not empty" decisions must come from the
// module's table, not the cache — neither unlink nor rename-over may
// destroy a recovered directory that still has children on disk.
func TestRemountedDirEmptinessChecks(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Mkdir(r.th, sb, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/d/child"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Mkdir(r.th, sb, "/empty"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unmount(r.th, sb); err != nil {
		t.Fatal(err)
	}
	sb, err = r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The cache has never seen /d/child; the module has.
	if err := r.v.Unlink(r.th, sb, "/d"); err == nil {
		t.Fatal("unlinked a non-empty recovered directory")
	}
	if _, err := r.v.Mkdir(r.th, sb, "/e"); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Rename(r.th, sb, "/e", sb, "/d"); err == nil {
		t.Fatal("renamed over a non-empty recovered directory")
	}
	if _, err := r.v.Lookup(r.th, sb, "/d/child"); err != nil {
		t.Fatalf("child lost: %v", err)
	}
	// An actually-empty recovered directory may be replaced.
	if err := r.v.Rename(r.th, sb, "/e", sb, "/empty"); err != nil {
		t.Fatalf("rename over an empty recovered directory: %v", err)
	}
	r.noViolations(t)
}

// TestColdCacheExistenceChecks: after a remount, create and rename
// must discover existing names through the module, not conclude
// "absent" from the cold dentry cache — otherwise they would mint
// duplicate directory entries.
func TestColdCacheExistenceChecks(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	oldBody := []byte("the original a")
	if _, err := r.v.Create(r.th, sb, "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Create(r.th, sb, "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/b", 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Write(r.th, sb, "/a", 0, oldBody); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unmount(r.th, sb); err != nil {
		t.Fatal(err)
	}
	sb, err = r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Create of a recovered name, without any prior lookup: EEXIST.
	if _, err := r.v.Create(r.th, sb, "/a"); err == nil {
		t.Fatal("created a duplicate of a recovered file")
	}
	// Rename over a recovered name, without any prior lookup: the old
	// target must be replaced, not shadowed by a duplicate entry.
	if err := r.v.Rename(r.th, sb, "/a", sb, "/b"); err != nil {
		t.Fatal(err)
	}
	ents, err := r.v.Readdir(r.th, sb, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("root after rename-over = %v, want exactly one b", ents)
	}
	got, err := r.v.Read(r.th, sb, "/b", 0, uint64(len(oldBody)))
	if err != nil || !bytes.Equal(got, oldBody) {
		t.Fatalf("/b holds %q, want the renamed file's data", got)
	}
	// The namespace stays deduplicated across one more remount.
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if err := r.v.Unmount(r.th, sb); err != nil {
		t.Fatal(err)
	}
	sb, err = r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	ents, err = r.v.Readdir(r.th, sb, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("recovered root = %v, want exactly one b", ents)
	}
	r.noViolations(t)
}

// TestReaddirSurvivesEviction: enumerating a directory whose files'
// pages were all evicted is a namespace operation — it must not depend
// on the page cache.
func TestReaddirSurvivesEviction(t *testing.T) {
	r := newRig(t, core.Enforce)
	r.bl.AddDisk(1, minixsim.DiskSectors)
	if _, err := minixsim.Load(r.th, r.k, r.v); err != nil {
		t.Fatal(err)
	}
	sb, err := r.v.Mount(r.th, minixsim.FsID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Mkdir(r.th, sb, "/d"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAA}, 2*mem.PageSize)
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/d/f%d", i)
		if _, err := r.v.Create(r.th, sb, p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.v.Write(r.th, sb, p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.v.Sync(r.th, sb); err != nil {
		t.Fatal(err)
	}
	if n := r.v.DropCaches(sb); n == 0 {
		t.Fatal("nothing evicted")
	}
	if r.v.PageCount() != 0 {
		t.Fatalf("pages survive DropCaches: %d", r.v.PageCount())
	}
	ents, err := r.v.Readdir(r.th, sb, "/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("readdir after eviction = %d entries, want 4", len(ents))
	}
	got, err := r.v.Read(r.th, sb, "/d/f2", 0, uint64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("refill after eviction failed: %v", err)
	}
	r.noViolations(t)
}

// TestPokeConfinedToOwnPrincipal: the compromised ioctl can scribble on
// memory its own mount owns, but a write aimed at another mount's cached
// page is a violation that kills the module.
func TestPokeConfinedToOwnPrincipal(t *testing.T) {
	r := newRig(t, core.Enforce)
	fs, err := tmpfssim.Load(r.th, r.k, r.v)
	if err != nil {
		t.Fatal(err)
	}
	sbA, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	sbB, err := r.v.Mount(r.th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	inoB, err := r.v.Create(r.th, sbB, "/victim")
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("precious bytes")
	if _, err := r.v.Write(r.th, sbB, "/victim", 0, secret); err != nil {
		t.Fatal(err)
	}
	pg, ok := r.v.PageAddr(inoB, 0)
	if !ok {
		t.Fatal("victim page not cached")
	}

	// A poke at the module's own inode (owned by mount A) is allowed.
	inoA, err := r.v.Create(r.th, sbA, "/own")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.v.Ioctl(r.th, sbA, tmpfssim.CmdPoke, uint64(r.v.InodeField(inoA, "private"))); err != nil {
		t.Fatalf("poke at own memory rejected: %v", err)
	}

	// The cross-principal page-cache write is blocked.
	if _, err := r.v.Ioctl(r.th, sbA, tmpfssim.CmdPoke, uint64(pg)); err == nil {
		t.Fatal("cross-principal page write succeeded under Enforce")
	}
	if len(r.k.Sys.Mon.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}
	got, err := r.v.Read(r.th, sbB, "/victim", 0, uint64(len(secret)))
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("victim data corrupted: %q, %v", got, err)
	}
	if !fs.M.Dead() {
		t.Fatal("violating module was not killed")
	}
}

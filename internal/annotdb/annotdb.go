// Package annotdb reproduces the annotation-effort accounting of
// Figure 9: for each of the ten modules, how many annotated kernel
// functions it calls directly and how many annotated function pointers
// connect it to the kernel, and how many of each are unique to that
// module. The numbers are computed from the live annotation database of
// a fully-booted system, not from a hard-coded table.
package annotdb

import (
	"fmt"
	"sort"
	"strings"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/modules/can"
	"lxfi/internal/modules/canbcm"
	"lxfi/internal/modules/dmcrypt"
	"lxfi/internal/modules/dmsnapshot"
	"lxfi/internal/modules/dmzero"
	"lxfi/internal/modules/e1000sim"
	"lxfi/internal/modules/econet"
	"lxfi/internal/modules/rds"
	"lxfi/internal/modules/sndens1370"
	"lxfi/internal/modules/sndintel8x0"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
	"lxfi/internal/sound"
)

// Category labels match the first column of Fig. 9.
var categories = map[string]string{
	"e1000":        "net device driver",
	"snd-intel8x0": "sound device driver",
	"snd-ens1370":  "sound device driver",
	"rds":          "net protocol driver",
	"can":          "net protocol driver",
	"can-bcm":      "net protocol driver",
	"econet":       "net protocol driver",
	"dm-crypt":     "block device driver",
	"dm-zero":      "block device driver",
	"dm-snapshot":  "block device driver",
}

// moduleOrder matches Fig. 9's row order.
var moduleOrder = []string{
	"e1000", "snd-intel8x0", "snd-ens1370",
	"rds", "can", "can-bcm", "econet",
	"dm-crypt", "dm-zero", "dm-snapshot",
}

// Row is one line of the Fig. 9 table.
type Row struct {
	Category    string
	Module      string
	FuncsAll    int // annotated kernel functions the module calls
	FuncsUnique int // ... used by no other module
	FptrsAll    int // annotated function pointers between kernel & module
	FptrsUnique int
}

// Table is the complete Fig. 9 reproduction.
type Table struct {
	Rows []Row
	// TotalFuncs and TotalFptrs count distinct annotated functions and
	// function pointers across all modules (Fig. 9's "Total" row).
	TotalFuncs int
	TotalFptrs int
}

// BootAll boots one system with every substrate initialized and all ten
// modules loaded; it returns the system for inspection.
func BootAll(mode core.Mode) (*core.System, error) {
	k, _, err := BootAllKernel(mode)
	if err != nil {
		return nil, err
	}
	return k.Sys, nil
}

// BootAllKernel is BootAll for callers that need the kernel and block
// layer too (the coredump tool mounts a filesystem on the booted
// system to exercise the page cache).
func BootAllKernel(mode core.Mode) (*kernel.Kernel, *blockdev.Layer, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	k.ShmInit()
	bus := pci.Init(k)
	st := netstack.Init(k)
	bl := blockdev.Init(k)
	bl.AddDisk(1, 1024)
	snd := sound.Init(k)
	bus.AddDevice(e1000sim.VendorIntel, e1000sim.Dev82540EM)
	th := k.Sys.NewThread("boot")

	if _, err := e1000sim.Load(th, k, bus, st); err != nil {
		return nil, nil, fmt.Errorf("e1000: %w", err)
	}
	if _, err := sndintel8x0.Load(th, k, snd); err != nil {
		return nil, nil, fmt.Errorf("snd-intel8x0: %w", err)
	}
	if _, err := sndens1370.Load(th, k, snd); err != nil {
		return nil, nil, fmt.Errorf("snd-ens1370: %w", err)
	}
	if _, err := rds.Load(th, k, st, rds.Config{}); err != nil {
		return nil, nil, fmt.Errorf("rds: %w", err)
	}
	if _, err := can.Load(th, k, st); err != nil {
		return nil, nil, fmt.Errorf("can: %w", err)
	}
	if _, err := canbcm.Load(th, k, st); err != nil {
		return nil, nil, fmt.Errorf("can-bcm: %w", err)
	}
	if _, err := econet.Load(th, k, st); err != nil {
		return nil, nil, fmt.Errorf("econet: %w", err)
	}
	if _, err := dmcrypt.Load(th, k, bl); err != nil {
		return nil, nil, fmt.Errorf("dm-crypt: %w", err)
	}
	if _, err := dmzero.Load(th, k, bl); err != nil {
		return nil, nil, fmt.Errorf("dm-zero: %w", err)
	}
	if _, err := dmsnapshot.Load(th, k, bl, 512); err != nil {
		return nil, nil, fmt.Errorf("dm-snapshot: %w", err)
	}
	return k, bl, nil
}

// Build computes the Fig. 9 table from a booted system.
func Build(sys *core.System) Table {
	mods := sys.Modules()

	// Usage maps: which modules use each kernel function / fptr type.
	funcUsers := make(map[string]map[string]bool)
	fptrUsers := make(map[string]map[string]bool)
	for name, m := range mods {
		for _, imp := range m.Imports {
			if funcUsers[imp] == nil {
				funcUsers[imp] = make(map[string]bool)
			}
			funcUsers[imp][name] = true
		}
		for _, ft := range m.FuncTypes {
			if fptrUsers[ft] == nil {
				fptrUsers[ft] = make(map[string]bool)
			}
			fptrUsers[ft][name] = true
		}
	}

	var t Table
	for _, name := range moduleOrder {
		m, ok := mods[name]
		if !ok {
			continue
		}
		row := Row{Category: categories[name], Module: name}
		row.FuncsAll = len(m.Imports)
		for _, imp := range m.Imports {
			if len(funcUsers[imp]) == 1 {
				row.FuncsUnique++
			}
		}
		seen := make(map[string]bool)
		for _, ft := range m.FuncTypes {
			if seen[ft] {
				continue
			}
			seen[ft] = true
			row.FptrsAll++
			if len(fptrUsers[ft]) == 1 {
				row.FptrsUnique++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.TotalFuncs = len(funcUsers)
	t.TotalFptrs = len(fptrUsers)
	return t
}

// Format renders the table in the style of Fig. 9.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-14s %9s %9s %9s %9s\n",
		"Category", "Module", "funcs", "(unique)", "fptrs", "(unique)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %-14s %9d %9d %9d %9d\n",
			r.Category, r.Module, r.FuncsAll, r.FuncsUnique, r.FptrsAll, r.FptrsUnique)
	}
	fmt.Fprintf(&b, "%-22s %-14s %9d %19s %9d\n", "Total (distinct)", "", t.TotalFuncs, "", t.TotalFptrs)
	return b.String()
}

// AnnotatedKernelFuncs lists the kernel functions that carry non-empty
// annotations, sorted — the annotation inventory behind the table.
func AnnotatedKernelFuncs(sys *core.System) []string {
	var out []string
	for name, f := range sys.KernelFuncs() {
		if f.Annot != nil && !f.Annot.Empty() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Package annotdb reproduces the annotation-effort accounting of
// Figure 9: for each of the ten modules, how many annotated kernel
// functions it calls directly and how many annotated function pointers
// connect it to the kernel, and how many of each are unique to that
// module. The numbers are computed from the live annotation database of
// a fully-booted system, not from a hard-coded table.
package annotdb

import (
	"fmt"
	"sort"
	"strings"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/modules"
	_ "lxfi/internal/modules/all"
	"lxfi/internal/modules/e1000sim"
	"lxfi/internal/netstack"
	"lxfi/internal/pci"
	"lxfi/internal/sound"
)

// Category labels match the first column of Fig. 9.
var categories = map[string]string{
	"e1000":        "net device driver",
	"snd-intel8x0": "sound device driver",
	"snd-ens1370":  "sound device driver",
	"rds":          "net protocol driver",
	"can":          "net protocol driver",
	"can-bcm":      "net protocol driver",
	"econet":       "net protocol driver",
	"dm-crypt":     "block device driver",
	"dm-zero":      "block device driver",
	"dm-snapshot":  "block device driver",
}

// moduleOrder matches Fig. 9's row order.
var moduleOrder = []string{
	"e1000", "snd-intel8x0", "snd-ens1370",
	"rds", "can", "can-bcm", "econet",
	"dm-crypt", "dm-zero", "dm-snapshot",
}

// Row is one line of the Fig. 9 table.
type Row struct {
	Category    string
	Module      string
	FuncsAll    int // annotated kernel functions the module calls
	FuncsUnique int // ... used by no other module
	FptrsAll    int // annotated function pointers between kernel & module
	FptrsUnique int
}

// Table is the complete Fig. 9 reproduction.
type Table struct {
	Rows []Row
	// TotalFuncs and TotalFptrs count distinct annotated functions and
	// function pointers across all modules (Fig. 9's "Total" row).
	TotalFuncs int
	TotalFptrs int
}

// BootAll boots one system with every substrate initialized and all ten
// modules loaded; it returns the system for inspection.
func BootAll(mode core.Mode) (*core.System, error) {
	l, err := BootAllLoader(mode)
	if err != nil {
		return nil, err
	}
	return l.BC.K.Sys, nil
}

// BootAllKernel is BootAll for callers that need the kernel and block
// layer too (the coredump tool mounts a filesystem on the booted
// system to exercise the page cache).
func BootAllKernel(mode core.Mode) (*kernel.Kernel, *blockdev.Layer, error) {
	l, err := BootAllLoader(mode)
	if err != nil {
		return nil, nil, err
	}
	return l.BC.K, l.BC.Block, nil
}

// BootAllLoader boots the ten-module system through the descriptor
// registry and returns the loader, for callers that go on to unload or
// hot-reload modules.
func BootAllLoader(mode core.Mode) (*modules.Loader, error) {
	k := kernel.New()
	k.Sys.Mon.SetMode(mode)
	k.ShmInit()
	bc := &modules.BootContext{
		K:     k,
		Bus:   pci.Init(k),
		Net:   netstack.Init(k),
		Block: blockdev.Init(k),
		Snd:   sound.Init(k),
	}
	bc.Block.AddDisk(1, 1024)
	bc.Bus.AddDevice(e1000sim.VendorIntel, e1000sim.Dev82540EM)
	th := k.Sys.NewThread("boot")
	l := modules.NewLoaderWith(bc)
	for _, name := range moduleOrder {
		if _, err := l.Load(th, name); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
	}
	return l, nil
}

// Build computes the Fig. 9 table from a booted system.
func Build(sys *core.System) Table {
	mods := sys.Modules()

	// Usage maps: which modules use each kernel function / fptr type.
	funcUsers := make(map[string]map[string]bool)
	fptrUsers := make(map[string]map[string]bool)
	for name, m := range mods {
		for _, imp := range m.Imports {
			if funcUsers[imp] == nil {
				funcUsers[imp] = make(map[string]bool)
			}
			funcUsers[imp][name] = true
		}
		for _, ft := range m.FuncTypes {
			if fptrUsers[ft] == nil {
				fptrUsers[ft] = make(map[string]bool)
			}
			fptrUsers[ft][name] = true
		}
	}

	var t Table
	for _, name := range moduleOrder {
		m, ok := mods[name]
		if !ok {
			continue
		}
		row := Row{Category: categories[name], Module: name}
		row.FuncsAll = len(m.Imports)
		for _, imp := range m.Imports {
			if len(funcUsers[imp]) == 1 {
				row.FuncsUnique++
			}
		}
		seen := make(map[string]bool)
		for _, ft := range m.FuncTypes {
			if seen[ft] {
				continue
			}
			seen[ft] = true
			row.FptrsAll++
			if len(fptrUsers[ft]) == 1 {
				row.FptrsUnique++
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.TotalFuncs = len(funcUsers)
	t.TotalFptrs = len(fptrUsers)
	return t
}

// Format renders the table in the style of Fig. 9.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-14s %9s %9s %9s %9s\n",
		"Category", "Module", "funcs", "(unique)", "fptrs", "(unique)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %-14s %9d %9d %9d %9d\n",
			r.Category, r.Module, r.FuncsAll, r.FuncsUnique, r.FptrsAll, r.FptrsUnique)
	}
	fmt.Fprintf(&b, "%-22s %-14s %9d %19s %9d\n", "Total (distinct)", "", t.TotalFuncs, "", t.TotalFptrs)
	return b.String()
}

// AnnotatedKernelFuncs lists the kernel functions that carry non-empty
// annotations, sorted — the annotation inventory behind the table.
func AnnotatedKernelFuncs(sys *core.System) []string {
	var out []string
	for name, f := range sys.KernelFuncs() {
		if f.Annot != nil && !f.Annot.Empty() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

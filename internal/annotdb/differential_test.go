package annotdb

import (
	"fmt"
	"sort"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/modules/tmpfssim"
	"lxfi/internal/vfs"
)

// lcg is a tiny deterministic generator for synthetic crossing
// arguments: the differential must be reproducible run to run.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

// synthArgs builds argument vectors that exercise the interesting
// regimes of annotation expressions: zeros (null pointers, failed
// returns), small integers (sizes, flags), heap-looking addresses
// (capability pointers), and mixes of all three.
func synthArgs(r *lcg, n int) [][]uint64 {
	if n == 0 {
		n = 1 // exercise the no-args/unbound-identifier paths too
	}
	heap := func() uint64 { return 0xffff_8800_0000_0000 | (r.next() & 0x00ff_ffff_f000) }
	out := [][]uint64{make([]uint64, n)} // all zero
	small := make([]uint64, n)
	for i := range small {
		small[i] = r.next() % 64
	}
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = heap()
	}
	mixed := make([]uint64, n)
	for i := range mixed {
		switch r.next() % 3 {
		case 0:
			mixed[i] = 0
		case 1:
			mixed[i] = r.next() % 4096
		default:
			mixed[i] = heap()
		}
	}
	return append(out, small, addrs, mixed)
}

// rets are the synthetic return values for post phases: success, two
// errno shapes, and arbitrary values (NETDEV_TX_BUSY among them).
var rets = []uint64{0, ^uint64(0), ^uint64(21), 16, 1, 4096}

func diffTraces(t *testing.T, what, phase string, tree, compiled []core.ActionTrace) {
	t.Helper()
	if len(tree) != len(compiled) {
		t.Fatalf("%s %s: trace lengths diverge: tree %v vs compiled %v", what, phase, tree, compiled)
	}
	for i := range tree {
		if tree[i] != compiled[i] {
			t.Fatalf("%s %s: trace %d diverges:\n  tree:     %+v\n  compiled: %+v",
				what, phase, i, tree[i], compiled[i])
		}
	}
}

// TestCompiledProgramsMatchTreeInterpreter is the crossing
// differential: for every annotated kernel export and every registered
// function-pointer type in a fully-booted system (all ten Fig. 9
// modules), the bind-time compiled action program and the original
// expression-tree interpreter must produce identical grants, revokes,
// checks, and violations on a set of synthetic crossings — and
// identical principal-expression values.
func TestCompiledProgramsMatchTreeInterpreter(t *testing.T) {
	sys, err := BootAll(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	mods := sys.Modules()
	froms := []*principalCase{{name: "trusted", p: nil}}
	for _, name := range []string{"econet", "rds", "e1000"} {
		if m, ok := mods[name]; ok {
			froms = append(froms, &principalCase{name: name + "[shared]", p: m.Set.Shared()})
		}
	}
	runDifferential(t, sys, froms)
}

// TestCompiledProgramsMatchTreeInterpreterVFS extends the differential
// to the VFS surface, whose annotations lean on capability iterators
// (name_caps, page_caps, alloc_caps) and per-superblock principals.
func TestCompiledProgramsMatchTreeInterpreterVFS(t *testing.T) {
	k := kernel.New()
	k.Sys.Mon.SetMode(core.Enforce)
	bl := blockdev.Init(k)
	bl.AddDisk(1, 1024)
	v := vfs.Init(k, bl)
	th := k.Sys.NewThread("boot")
	tfs, err := tmpfssim.Load(th, k, v)
	if err != nil {
		t.Fatal(err)
	}
	mfs, err := minixsim.Load(th, k, v)
	if err != nil {
		t.Fatal(err)
	}
	froms := []*principalCase{
		{name: "trusted", p: nil},
		{name: "tmpfssim[shared]", p: tfs.M.Set.Shared()},
		{name: "minixsim[shared]", p: mfs.M.Set.Shared()},
	}
	runDifferential(t, k.Sys, froms)
}

func runDifferential(t *testing.T, sys *core.System, froms []*principalCase) {
	t.Helper()
	th := sys.NewThread("diff")
	r := lcg(0x1ee7)
	covered, progMissing := 0, 0
	// Iterate in sorted order: the lcg stream is shared, so map-order
	// iteration would hand each export different synthetic args every
	// run and break the reproducibility the seed promises.
	kfuncs := sys.KernelFuncs()
	var knames []string
	for name := range kfuncs {
		knames = append(knames, name)
	}
	sort.Strings(knames)
	for _, name := range knames {
		fn := kfuncs[name]
		if fn.Annot == nil || fn.Annot.Empty() {
			continue
		}
		covered++
		for _, args := range synthArgs(&r, len(fn.Params)) {
			for _, fc := range froms {
				for _, phase := range []string{"pre", "post"} {
					for _, ret := range rets {
						tree, compiled, hasProg := fn.TraceCrossing(th, phase, args, ret, fc.p)
						if !hasProg {
							progMissing++
							continue
						}
						diffTraces(t, fmt.Sprintf("kernel %s (from %s, args %x, ret %d)", name, fc.name, args, ret),
							phase, tree, compiled)
					}
				}
			}
		}
	}
	ftypes := sys.FPtrTypes()
	var fnames []string
	for name := range ftypes {
		fnames = append(fnames, name)
	}
	sort.Strings(fnames)
	for _, name := range fnames {
		ft := ftypes[name]
		covered++
		for _, args := range synthArgs(&r, len(ft.Params)) {
			for _, fc := range froms {
				for _, phase := range []string{"pre", "post"} {
					for _, ret := range rets {
						tree, compiled, hasProg := ft.TraceCrossing(th, phase, args, ret, fc.p)
						if !hasProg {
							progMissing++
							continue
						}
						diffTraces(t, fmt.Sprintf("fptr %s (from %s, args %x, ret %d)", name, fc.name, args, ret),
							phase, tree, compiled)
					}
				}
				kind, tv, pv, terr, perr, hasProg := ft.TracePrincipalValue(th, args)
				if !hasProg {
					continue
				}
				_ = kind
				if (terr == nil) != (perr == nil) || (terr == nil && tv != pv) {
					t.Fatalf("fptr %s principal diverges on args %x: tree (%d,%v) vs compiled (%d,%v)",
						name, args, tv, terr, pv, perr)
				}
			}
		}
	}
	if covered < 15 {
		t.Fatalf("differential covered only %d annotated exports — boot surface shrank?", covered)
	}
	if progMissing > 0 {
		t.Fatalf("%d annotated declarations have no compiled program (tree fallback in production)", progMissing)
	}
}

type principalCase struct {
	name string
	p    *caps.Principal
}

// TestGrantingActionsMatchOnLiveState runs the differential again after
// seeding the module with real capabilities, so copy/transfer ownership
// checks exercise the "owned" branch too (an all-deny state would let a
// broken ownership check hide behind matching violations).
func TestGrantingActionsMatchOnLiveState(t *testing.T) {
	sys, err := BootAll(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	th := sys.NewThread("diff2")
	m, ok := sys.Modules()["econet"]
	if !ok {
		t.Fatal("econet missing from booted system")
	}
	shared := m.Set.Shared()

	// kfree's pre(transfer(alloc_caps(ptr))) over a really-allocated,
	// really-owned object: both executors must agree on the transfer.
	obj, err := sys.Slab.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	sys.Caps.Grant(shared, caps.WriteCap(obj, 64))
	kfree, _ := sys.FuncByName("kfree")
	tree, compiled, hasProg := kfree.TraceCrossing(th, "pre", []uint64{uint64(obj)}, 0, shared)
	if !hasProg {
		t.Fatal("kfree has no compiled program")
	}
	diffTraces(t, "kernel kfree (owned)", "pre", tree, compiled)
	if len(tree) == 0 || tree[0].Op != "transfer" {
		t.Fatalf("expected an owned transfer trace, got %v", tree)
	}

	// copy_from_user's pre(check(write, to, n)) with an owned window.
	cfu, _ := sys.FuncByName("copy_from_user")
	tree, compiled, _ = cfu.TraceCrossing(th, "pre", []uint64{uint64(obj), 0x1000, 64}, 0, shared)
	diffTraces(t, "kernel copy_from_user (owned)", "pre", tree, compiled)
	if len(tree) == 0 || tree[0].Op != "check" {
		t.Fatalf("expected an owned check trace, got %v", tree)
	}
}

package annotdb_test

import (
	"strings"
	"testing"

	"lxfi/internal/annotdb"
	"lxfi/internal/core"
)

func TestBootAllLoadsTenModules(t *testing.T) {
	for _, mode := range []core.Mode{core.Off, core.Enforce} {
		sys, err := annotdb.BootAll(mode)
		if err != nil {
			t.Fatalf("[%v] %v", mode, err)
		}
		if n := len(sys.Modules()); n != 10 {
			t.Fatalf("[%v] loaded %d modules, want 10", mode, n)
		}
		for _, m := range sys.Modules() {
			if m.Dead() {
				t.Fatalf("[%v] module %s died during boot: %v", mode, m.Name, m.KillReason())
			}
		}
	}
}

func TestFig9TableShape(t *testing.T) {
	sys, err := annotdb.BootAll(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	tab := annotdb.Build(sys)
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string]annotdb.Row{}
	for _, r := range tab.Rows {
		if r.FuncsAll == 0 {
			t.Errorf("%s imports no annotated functions", r.Module)
		}
		if r.FuncsUnique > r.FuncsAll || r.FptrsUnique > r.FptrsAll {
			t.Errorf("%s: unique exceeds all: %+v", r.Module, r)
		}
		byName[r.Module] = r
	}
	// Shape checks mirroring the paper's observations:
	// e1000 uses the most functions of the drivers;
	if byName["e1000"].FuncsAll <= byName["dm-zero"].FuncsAll {
		t.Error("e1000 should need more functions than dm-zero")
	}
	// dm-zero is the smallest module;
	for _, r := range tab.Rows {
		if r.Module != "dm-zero" && r.FuncsAll < byName["dm-zero"].FuncsAll {
			t.Errorf("%s uses fewer functions than dm-zero", r.Module)
		}
	}
	// can shares nearly everything with the other protocol modules: few
	// unique functions ("supporting the can module only requires
	// annotating 7 extra functions").
	if byName["can"].FuncsUnique > 2 {
		t.Errorf("can has %d unique functions; expected nearly all shared", byName["can"].FuncsUnique)
	}
	// The sound drivers share their fptr interface entirely.
	if byName["snd-ens1370"].FptrsUnique != 0 {
		t.Error("snd-ens1370 should share all its function pointers with snd-intel8x0")
	}
	if tab.TotalFuncs == 0 || tab.TotalFptrs == 0 {
		t.Fatal("totals empty")
	}
}

func TestFormatAndInventory(t *testing.T) {
	sys, err := annotdb.BootAll(core.Off)
	if err != nil {
		t.Fatal(err)
	}
	out := annotdb.Build(sys).Format()
	for _, want := range []string{"e1000", "dm-snapshot", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	funcs := annotdb.AnnotatedKernelFuncs(sys)
	if len(funcs) < 10 {
		t.Fatalf("annotated kernel functions = %d", len(funcs))
	}
	// kmalloc must be among them; printk (empty annotation) must not.
	found := map[string]bool{}
	for _, f := range funcs {
		found[f] = true
	}
	if !found["kmalloc"] || found["printk"] {
		t.Fatalf("inventory wrong: %v", funcs)
	}
}

package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lxfi/internal/failpoint"
)

func init() {
	failpoint.Register("mem.page_alloc")
}

// Slab is a SLUB-like slab allocator over an AddressSpace.
//
// Objects of the same size class are packed back to back inside a page,
// so consecutive allocations of one class tend to be **adjacent in
// memory**. That property is load-bearing: the CAN BCM exploit
// (CVE-2010-2959) depends on an undersized buffer sitting directly next
// to a victim shmid_kernel object in the same slab.
type Slab struct {
	mu       sync.Mutex // guards all allocator state (lock order: Slab.mu before AddressSpace.mu)
	as       *AddressSpace
	heapNext Addr // next fresh page to carve (bump allocated)

	classes map[uint64]*sizeClass
	objects map[Addr]objInfo // base address -> info, for Free/ObjectSize
	large   map[Addr]uint64  // page-multiple allocations

	allocs uint64
	frees  uint64
}

type objInfo struct {
	class uint64 // size class (usable size)
	req   uint64 // requested size
}

type sizeClass struct {
	size     uint64
	free     []Addr // LIFO free list
	pages    []Addr
	nextSlot Addr // next never-used slot in the current page, 0 if none
	slotsRem int  // unused slots remaining in current page
}

// SizeClasses are the kmalloc size classes of the simulated kernel.
var SizeClasses = []uint64{8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096}

var (
	// ErrBadFree is returned when freeing an address that is not the
	// base of a live allocation.
	ErrBadFree = errors.New("mem: free of non-allocated address")
	// ErrZeroAlloc is returned for zero-sized allocations.
	ErrZeroAlloc = errors.New("mem: zero-size allocation")
)

// NewSlab returns a slab allocator carving pages from heapBase upward.
func NewSlab(as *AddressSpace, heapBase Addr) *Slab {
	s := &Slab{
		as:       as,
		heapNext: PageBase(heapBase),
		classes:  make(map[uint64]*sizeClass),
		objects:  make(map[Addr]objInfo),
		large:    make(map[Addr]uint64),
	}
	for _, c := range SizeClasses {
		s.classes[c] = &sizeClass{size: c}
	}
	return s
}

// SizeClassFor returns the usable size a request of size bytes receives.
// Requests larger than the biggest class are rounded up to whole pages.
func SizeClassFor(size uint64) uint64 {
	for _, c := range SizeClasses {
		if size <= c {
			return c
		}
	}
	return (size + PageMask) &^ uint64(PageMask)
}

// Alloc allocates size bytes and returns the (zeroed) object address.
// The usable size of the returned object is SizeClassFor(size).
func (s *Slab) Alloc(size uint64) (Addr, error) {
	if size == 0 {
		return 0, ErrZeroAlloc
	}
	// Fault site: an injected error is an allocation failure — kmalloc
	// returning NULL under memory pressure.
	if err := failpoint.Inject("mem.page_alloc"); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	class := SizeClassFor(size)
	s.allocs++
	if class > 4096 {
		addr := s.heapNext
		s.as.Map(addr, class)
		s.heapNext += Addr(class)
		s.large[addr] = class
		s.objects[addr] = objInfo{class: class, req: size}
		if err := s.as.Zero(addr, class); err != nil {
			return 0, err
		}
		return addr, nil
	}
	sc := s.classes[class]
	var addr Addr
	switch {
	case len(sc.free) > 0:
		addr = sc.free[len(sc.free)-1]
		sc.free = sc.free[:len(sc.free)-1]
	case sc.slotsRem > 0:
		addr = sc.nextSlot
		sc.nextSlot += Addr(class)
		sc.slotsRem--
	default:
		page := s.heapNext
		s.heapNext += PageSize
		s.as.Map(page, PageSize)
		sc.pages = append(sc.pages, page)
		addr = page
		sc.nextSlot = page + Addr(class)
		sc.slotsRem = PageSize/int(class) - 1
	}
	s.objects[addr] = objInfo{class: class, req: size}
	if err := s.as.Zero(addr, class); err != nil {
		return 0, err
	}
	return addr, nil
}

// Free releases the object at base address addr.
// The object's memory is poisoned (0x6b, like SLUB poisoning) so that
// use-after-free is observable in tests.
func (s *Slab) Free(addr Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.objects[addr]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadFree, uint64(addr))
	}
	delete(s.objects, addr)
	s.frees++
	poison := make([]byte, info.class)
	for i := range poison {
		poison[i] = 0x6b
	}
	if err := s.as.Write(addr, poison); err != nil {
		return err
	}
	if info.class > 4096 {
		delete(s.large, addr)
		// Large allocations keep their pages mapped (direct map).
		return nil
	}
	sc := s.classes[info.class]
	sc.free = append(sc.free, addr)
	return nil
}

// ObjectSize returns the usable size of the live object based at addr.
func (s *Slab) ObjectSize(addr Addr) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.objects[addr]
	if !ok {
		return 0, false
	}
	return info.class, true
}

// RequestedSize returns the originally requested size of the live object.
func (s *Slab) RequestedSize(addr Addr) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.objects[addr]
	if !ok {
		return 0, false
	}
	return info.req, true
}

// NextObject returns the address of the slab slot immediately following
// the object at addr within the same slab page, if any. Exploit code and
// tests use this to reason about slab adjacency.
func (s *Slab) NextObject(addr Addr) (Addr, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.objects[addr]
	if !ok || info.class > 4096 {
		return 0, false
	}
	next := addr + Addr(info.class)
	if PageBase(next) != PageBase(addr) {
		return 0, false
	}
	return next, true
}

// Owns reports whether addr is the base of a live allocation.
func (s *Slab) Owns(addr Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[addr]
	return ok
}

// Live returns the number of live objects.
func (s *Slab) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// Stats returns cumulative allocation and free counts.
func (s *Slab) Stats() (allocs, frees uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocs, s.frees
}

// LiveObjects returns the base addresses of all live objects in sorted
// order; used by introspection tooling and tests.
func (s *Slab) LiveObjects() []Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Addr, 0, len(s.objects))
	for a := range s.objects {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bump is a trivial monotonic allocator for regions that are never freed
// (module data sections, static kernel objects, user mappings).
type Bump struct {
	mu   sync.Mutex
	as   *AddressSpace
	next Addr
}

// NewBump returns a bump allocator starting at base (page aligned up).
func NewBump(as *AddressSpace, base Addr) *Bump {
	return &Bump{as: as, next: (base + PageMask) &^ PageMask}
}

// Alloc reserves and maps size bytes with the given alignment (power of
// two; 0 or 1 means byte alignment, minimum 8).
func (b *Bump) Alloc(size, align uint64) Addr {
	if align < 8 {
		align = 8
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.next = Addr((uint64(b.next) + align - 1) &^ (align - 1))
	addr := b.next
	b.as.Map(addr, size)
	b.next += Addr(size)
	return addr
}

// Next returns the next address the allocator would hand out (unaligned).
func (b *Bump) Next() Addr {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.next
}

// Package mem implements the simulated kernel address space that the rest
// of the LXFI reproduction is built on.
//
// The original LXFI system interposes on raw x86-64 stores performed by
// kernel modules. In this reproduction, kernel objects live inside a
// simulated sparse 64-bit address space, and modules reach that space only
// through mediated accessors (see internal/core). The address space uses
// the familiar Linux x86-64 split: low addresses are user space, high
// canonical addresses are kernel space.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr is a virtual address in the simulated address space.
type Addr uint64

// Fundamental constants of the simulated machine.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// Region boundaries, mirroring the Linux x86-64 memory map.
const (
	// UserText is where the (attacker-controlled) user process maps its
	// executable code in several exploits.
	UserText Addr = 0x0000_0000_1000_0000
	// UserHeap is the default base for user data allocations.
	UserHeap Addr = 0x0000_0000_4000_0000
	// UserTop is the first non-user address (TASK_SIZE).
	UserTop Addr = 0x0000_7fff_ffff_f000
	// KernelHeap is the base of the direct-mapped kernel heap (slab pages).
	KernelHeap Addr = 0xffff_8800_0000_0000
	// KernelText is the base of core-kernel code addresses.
	KernelText Addr = 0xffff_ffff_8100_0000
	// ModuleText is the base of module code addresses.
	ModuleText Addr = 0xffff_ffff_a000_0000
)

// IsUser reports whether a is a user-space address (below TASK_SIZE).
// The NULL page is considered user space, as on Linux.
func IsUser(a Addr) bool { return a < UserTop }

// IsKernel reports whether a is a kernel-space address.
func IsKernel(a Addr) bool { return a >= UserTop }

// PageBase returns the base address of the page containing a.
func PageBase(a Addr) Addr { return a &^ PageMask }

// AccessError describes a fault in the simulated address space.
type AccessError struct {
	Op   string // "read", "write", "map"
	Addr Addr
	Size uint64
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: %s fault at %#x (size %d): page not mapped", e.Op, uint64(e.Addr), e.Size)
}

// AddressSpace is a sparse, page-granular simulated address space.
//
// The page table (the map from page base to backing bytes) is safe for
// concurrent use: simulated kernel threads now run on their own
// goroutines, so mapping and access may race. Byte-level access to the
// *contents* of a page is deliberately not serialized — overlapping
// unsynchronized writes from two simulated threads are a data race in
// the simulated kernel exactly as they would be on real hardware, and
// the race detector will report them as such.
type AddressSpace struct {
	mu    sync.RWMutex
	pages map[Addr][]byte // keyed by page base address

	// faults counts page faults (accesses to unmapped pages); exploits
	// and tests use this to observe oopses.
	faults atomic.Uint64
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[Addr][]byte)}
}

// Map ensures that all pages covering [addr, addr+size) are present and
// zero-filled if new. Mapping an already-mapped page is a no-op.
func (as *AddressSpace) Map(addr Addr, size uint64) {
	if size == 0 {
		return
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	first := PageBase(addr)
	last := PageBase(addr + Addr(size) - 1)
	for p := first; ; p += PageSize {
		if _, ok := as.pages[p]; !ok {
			as.pages[p] = make([]byte, PageSize)
		}
		if p == last {
			break
		}
	}
}

// Unmap removes all pages fully covered by [addr, addr+size).
func (as *AddressSpace) Unmap(addr Addr, size uint64) {
	if size == 0 {
		return
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	first := PageBase(addr)
	last := PageBase(addr + Addr(size) - 1)
	for p := first; ; p += PageSize {
		delete(as.pages, p)
		if p == last {
			break
		}
	}
}

// Mapped reports whether every page covering [addr, addr+size) is mapped.
func (as *AddressSpace) Mapped(addr Addr, size uint64) bool {
	if size == 0 {
		return true
	}
	as.mu.RLock()
	defer as.mu.RUnlock()
	first := PageBase(addr)
	last := PageBase(addr + Addr(size) - 1)
	for p := first; ; p += PageSize {
		if _, ok := as.pages[p]; !ok {
			return false
		}
		if p == last {
			break
		}
	}
	return true
}

// Faults returns the number of page faults taken so far.
func (as *AddressSpace) Faults() uint64 { return as.faults.Load() }

// Read copies len(buf) bytes starting at addr into buf.
func (as *AddressSpace) Read(addr Addr, buf []byte) error {
	return as.access("read", addr, buf, false)
}

// Write copies data into the address space starting at addr.
func (as *AddressSpace) Write(addr Addr, data []byte) error {
	return as.access("write", addr, data, true)
}

func (as *AddressSpace) access(op string, addr Addr, buf []byte, write bool) error {
	n := uint64(len(buf))
	if n == 0 {
		return nil
	}
	// The read lock pins the page table (no Unmap mid-copy); page
	// contents are intentionally unserialized, see the type comment.
	as.mu.RLock()
	defer as.mu.RUnlock()
	off := 0
	a := addr
	for off < len(buf) {
		page, ok := as.pages[PageBase(a)]
		if !ok {
			as.faults.Add(1)
			return &AccessError{Op: op, Addr: a, Size: n}
		}
		po := int(a & PageMask)
		chunk := PageSize - po
		if rem := len(buf) - off; chunk > rem {
			chunk = rem
		}
		if write {
			copy(page[po:po+chunk], buf[off:off+chunk])
		} else {
			copy(buf[off:off+chunk], page[po:po+chunk])
		}
		off += chunk
		a += Addr(chunk)
	}
	return nil
}

// Zero fills [addr, addr+size) with zero bytes.
func (as *AddressSpace) Zero(addr Addr, size uint64) error {
	var zeros [PageSize]byte
	for size > 0 {
		chunk := uint64(PageSize)
		if size < chunk {
			chunk = size
		}
		if err := as.Write(addr, zeros[:chunk]); err != nil {
			return err
		}
		addr += Addr(chunk)
		size -= chunk
	}
	return nil
}

// ReadU64 reads a little-endian 64-bit value at addr.
func (as *AddressSpace) ReadU64(addr Addr) (uint64, error) {
	var b [8]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian 64-bit value at addr.
func (as *AddressSpace) WriteU64(addr Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Write(addr, b[:])
}

// ReadU32 reads a little-endian 32-bit value at addr.
func (as *AddressSpace) ReadU32(addr Addr) (uint32, error) {
	var b [4]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 writes a little-endian 32-bit value at addr.
func (as *AddressSpace) WriteU32(addr Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.Write(addr, b[:])
}

// ReadU16 reads a little-endian 16-bit value at addr.
func (as *AddressSpace) ReadU16(addr Addr) (uint16, error) {
	var b [2]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// WriteU16 writes a little-endian 16-bit value at addr.
func (as *AddressSpace) WriteU16(addr Addr, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return as.Write(addr, b[:])
}

// ReadU8 reads a byte at addr.
func (as *AddressSpace) ReadU8(addr Addr) (uint8, error) {
	var b [1]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteU8 writes a byte at addr.
func (as *AddressSpace) WriteU8(addr Addr, v uint8) error {
	return as.Write(addr, []byte{v})
}

// ReadBytes is a convenience wrapper returning a fresh slice.
func (as *AddressSpace) ReadBytes(addr Addr, size uint64) ([]byte, error) {
	buf := make([]byte, size)
	if err := as.Read(addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (as *AddressSpace) ReadCString(addr Addr, max int) (string, error) {
	out := make([]byte, 0, 16)
	for i := 0; i < max; i++ {
		b, err := as.ReadU8(addr + Addr(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			break
		}
		out = append(out, b)
	}
	return string(out), nil
}

// WriteCString writes s followed by a NUL byte.
func (as *AddressSpace) WriteCString(addr Addr, s string) error {
	buf := make([]byte, len(s)+1)
	copy(buf, s)
	return as.Write(addr, buf)
}

package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMapAndRW(t *testing.T) {
	as := NewAddressSpace()
	as.Map(KernelHeap, 3*PageSize)
	data := []byte("hello, kernel")
	if err := as.Write(KernelHeap+100, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(data))
	if err := as.Read(KernelHeap+100, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestCrossPageRW(t *testing.T) {
	as := NewAddressSpace()
	as.Map(KernelHeap, 2*PageSize)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	addr := KernelHeap + PageSize - 150 // straddles the page boundary
	if err := as.Write(addr, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(data))
	if err := as.Read(addr, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page data mismatch")
	}
}

func TestUnmappedFault(t *testing.T) {
	as := NewAddressSpace()
	err := as.Write(KernelHeap, []byte{1})
	var ae *AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("want AccessError, got %v", err)
	}
	if ae.Op != "write" || ae.Addr != KernelHeap {
		t.Fatalf("bad fault info: %+v", ae)
	}
	if as.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", as.Faults())
	}
	// NULL pointer dereference is a fault too (page 0 unmapped).
	if err := as.Read(0, make([]byte, 8)); err == nil {
		t.Fatal("NULL read should fault")
	}
}

func TestPartialFaultMidWrite(t *testing.T) {
	as := NewAddressSpace()
	as.Map(KernelHeap, PageSize) // only first page
	data := make([]byte, 100)
	addr := KernelHeap + PageSize - 50
	if err := as.Write(addr, data); err == nil {
		t.Fatal("write crossing into unmapped page should fault")
	}
}

func TestScalarAccessors(t *testing.T) {
	as := NewAddressSpace()
	as.Map(KernelHeap, PageSize)
	a := KernelHeap + 64
	if err := as.WriteU64(a, 0xdeadbeefcafebabe); err != nil {
		t.Fatal(err)
	}
	v64, err := as.ReadU64(a)
	if err != nil || v64 != 0xdeadbeefcafebabe {
		t.Fatalf("u64 = %#x, %v", v64, err)
	}
	// Little-endian overlap check.
	v32, _ := as.ReadU32(a)
	if v32 != 0xcafebabe {
		t.Fatalf("u32 low = %#x", v32)
	}
	if err := as.WriteU32(a+4, 0); err != nil {
		t.Fatal(err)
	}
	v64, _ = as.ReadU64(a)
	if v64 != 0x00000000cafebabe {
		t.Fatalf("after zeroing high half: %#x", v64)
	}
	if err := as.WriteU16(a, 0x1234); err != nil {
		t.Fatal(err)
	}
	v16, _ := as.ReadU16(a)
	if v16 != 0x1234 {
		t.Fatalf("u16 = %#x", v16)
	}
	if err := as.WriteU8(a, 0xff); err != nil {
		t.Fatal(err)
	}
	v8, _ := as.ReadU8(a)
	if v8 != 0xff {
		t.Fatalf("u8 = %#x", v8)
	}
}

func TestCString(t *testing.T) {
	as := NewAddressSpace()
	as.Map(UserHeap, PageSize)
	if err := as.WriteCString(UserHeap, "econet"); err != nil {
		t.Fatal(err)
	}
	s, err := as.ReadCString(UserHeap, 64)
	if err != nil || s != "econet" {
		t.Fatalf("cstring = %q, %v", s, err)
	}
}

func TestZero(t *testing.T) {
	as := NewAddressSpace()
	as.Map(KernelHeap, 2*PageSize)
	data := bytes.Repeat([]byte{0xaa}, 2*PageSize)
	if err := as.Write(KernelHeap, data); err != nil {
		t.Fatal(err)
	}
	if err := as.Zero(KernelHeap+10, PageSize+100); err != nil {
		t.Fatal(err)
	}
	b, _ := as.ReadBytes(KernelHeap, 2*PageSize)
	for i, v := range b {
		want := byte(0xaa)
		if i >= 10 && i < 10+PageSize+100 {
			want = 0
		}
		if v != want {
			t.Fatalf("byte %d = %#x want %#x", i, v, want)
		}
	}
}

func TestUserKernelSplit(t *testing.T) {
	cases := []struct {
		a    Addr
		user bool
	}{
		{0, true},
		{UserText, true},
		{UserHeap, true},
		{UserTop - 1, true},
		{UserTop, false},
		{KernelHeap, false},
		{KernelText, false},
		{ModuleText, false},
	}
	for _, c := range cases {
		if IsUser(c.a) != c.user {
			t.Errorf("IsUser(%#x) = %v, want %v", uint64(c.a), !c.user, c.user)
		}
		if IsKernel(c.a) == c.user {
			t.Errorf("IsKernel(%#x) inconsistent", uint64(c.a))
		}
	}
}

func TestSizeClassFor(t *testing.T) {
	cases := map[uint64]uint64{
		1: 8, 8: 8, 9: 16, 16: 16, 17: 32,
		65: 96, 97: 128, 200: 256, 4096: 4096,
		4097: 8192, 10000: 12288,
	}
	for in, want := range cases {
		if got := SizeClassFor(in); got != want {
			t.Errorf("SizeClassFor(%d) = %d, want %d", in, got, want)
		}
	}
}

func newSlab() (*AddressSpace, *Slab) {
	as := NewAddressSpace()
	return as, NewSlab(as, KernelHeap)
}

func TestSlabAllocFree(t *testing.T) {
	_, s := newSlab()
	a, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if sz, ok := s.ObjectSize(a); !ok || sz != 128 {
		t.Fatalf("ObjectSize = %d, %v", sz, ok)
	}
	if rq, ok := s.RequestedSize(a); !ok || rq != 100 {
		t.Fatalf("RequestedSize = %d, %v", rq, ok)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if s.Owns(a) {
		t.Fatal("freed object still owned")
	}
	if err := s.Free(a); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestSlabAdjacency(t *testing.T) {
	// Two back-to-back allocations of the same class land adjacent in the
	// same page — the property CVE-2010-2959 exploits.
	_, s := newSlab()
	a, _ := s.Alloc(16)
	b, _ := s.Alloc(16)
	if b != a+16 {
		t.Fatalf("allocations not adjacent: %#x then %#x", uint64(a), uint64(b))
	}
	next, ok := s.NextObject(a)
	if !ok || next != b {
		t.Fatalf("NextObject = %#x, %v", uint64(next), ok)
	}
}

func TestSlabZeroedAndPoisoned(t *testing.T) {
	as, s := newSlab()
	a, _ := s.Alloc(32)
	if err := as.Write(a, bytes.Repeat([]byte{0xff}, 32)); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := as.ReadBytes(a, 32)
	for i, v := range b {
		if v != 0x6b {
			t.Fatalf("byte %d not poisoned: %#x", i, v)
		}
	}
	// Reallocation of the slot must be zeroed.
	a2, _ := s.Alloc(32)
	if a2 != a {
		t.Fatalf("free-list reuse expected: %#x vs %#x", uint64(a2), uint64(a))
	}
	b, _ = as.ReadBytes(a2, 32)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("realloc byte %d not zeroed: %#x", i, v)
		}
	}
}

func TestSlabLargeAlloc(t *testing.T) {
	_, s := newSlab()
	a, err := s.Alloc(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if a&PageMask != 0 {
		t.Fatalf("large alloc not page aligned: %#x", uint64(a))
	}
	if sz, _ := s.ObjectSize(a); sz != 3*PageSize {
		t.Fatalf("large size = %d", sz)
	}
	if _, ok := s.NextObject(a); ok {
		t.Fatal("large allocations have no slab neighbour")
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestSlabZeroAlloc(t *testing.T) {
	_, s := newSlab()
	if _, err := s.Alloc(0); !errors.Is(err, ErrZeroAlloc) {
		t.Fatalf("zero alloc: %v", err)
	}
}

// Property: live slab objects never overlap, and all stay within mapped
// memory of the correct class size.
func TestSlabNoOverlapProperty(t *testing.T) {
	_, s := newSlab()
	f := func(sizes []uint16, freeMask []bool) bool {
		if len(sizes) > 200 {
			sizes = sizes[:200]
		}
		var live []Addr
		for i, raw := range sizes {
			size := uint64(raw%2000) + 1
			a, err := s.Alloc(size)
			if err != nil {
				return false
			}
			live = append(live, a)
			if i < len(freeMask) && freeMask[i] && len(live) > 0 {
				victim := live[len(live)/2]
				if s.Owns(victim) {
					if err := s.Free(victim); err != nil {
						return false
					}
				}
			}
		}
		// Check pairwise disjointness of all currently live objects.
		objs := s.LiveObjects()
		for i := 1; i < len(objs); i++ {
			prevSize, _ := s.ObjectSize(objs[i-1])
			if objs[i-1]+Addr(prevSize) > objs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: scalar write/read round-trips at arbitrary in-page offsets.
func TestScalarRoundTripProperty(t *testing.T) {
	as := NewAddressSpace()
	as.Map(KernelHeap, 4*PageSize)
	f := func(off uint16, v uint64) bool {
		a := KernelHeap + Addr(off%(3*PageSize))
		if err := as.WriteU64(a, v); err != nil {
			return false
		}
		got, err := as.ReadU64(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBumpAllocator(t *testing.T) {
	as := NewAddressSpace()
	b := NewBump(as, ModuleText+5) // unaligned base rounds up
	a1 := b.Alloc(100, 64)
	if uint64(a1)%64 != 0 {
		t.Fatalf("alignment violated: %#x", uint64(a1))
	}
	a2 := b.Alloc(8, 8)
	if a2 < a1+100 {
		t.Fatalf("bump overlap: %#x after %#x+100", uint64(a2), uint64(a1))
	}
	if err := as.WriteU64(a2, 1); err != nil {
		t.Fatalf("bump memory not mapped: %v", err)
	}
}

func TestSlabStats(t *testing.T) {
	_, s := newSlab()
	a, _ := s.Alloc(8)
	_, _ = s.Alloc(8)
	_ = s.Free(a)
	allocs, frees := s.Stats()
	if allocs != 2 || frees != 1 {
		t.Fatalf("stats = %d/%d", allocs, frees)
	}
	if s.Live() != 1 {
		t.Fatalf("live = %d", s.Live())
	}
}

package coredump_test

import (
	"bytes"
	"strings"
	"testing"

	"lxfi/internal/annotdb"
	"lxfi/internal/core"
	"lxfi/internal/coredump"
	"lxfi/internal/modules/tmpfssim"
	"lxfi/internal/vfs"
)

// rig is the acceptance setup: the fully-booted Fig. 9 system with a
// filesystem mounted on top, tracing on, and a scratch module that
// churns the allocator so the work thread has crossings, capability
// traffic, and (while holding an allocation) a live WRITE capability.
type rig struct {
	sys *core.System
	v   *vfs.VFS
	th  *core.Thread
	mod *core.Module
}

func bootFig9(t *testing.T) *rig {
	t.Helper()
	k, bl, err := annotdb.BootAllKernel(core.Enforce)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Shutdown)
	v := vfs.Init(k, bl)
	k.Sys.EnableTracing()
	th := k.Sys.NewThread("work")
	if th.TraceRing() == nil {
		t.Fatal("thread created after EnableTracing has no trace ring")
	}
	if _, err := tmpfssim.Load(th, k, v); err != nil {
		t.Fatal(err)
	}
	sb, err := v.Mount(th, tmpfssim.FsID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the page cache.
	if _, err := v.Create(th, sb, "/core"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(th, sb, "/core", 0, bytes.Repeat([]byte{0xcd}, 256)); err != nil {
		t.Fatal(err)
	}

	m, err := k.Sys.LoadModule(core.ModuleSpec{
		Name:     "scratch",
		Imports:  []string{"kmalloc", "kfree"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "churn", Params: []core.Param{core.P("n", "int")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					for i := uint64(0); i < args[0]; i++ {
						p, err := th.CallKernel("kmalloc", 64)
						if err != nil || p == 0 {
							return 1
						}
						if _, err := th.CallKernel("kfree", p); err != nil {
							return 1
						}
					}
					return 0
				},
			},
			{
				Name: "hold", Params: []core.Param{core.P("size", "size_t")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					p, err := th.CallKernel("kmalloc", args[0])
					if err != nil {
						return 0
					}
					return p
				},
			},
			{
				Name: "drop", Params: []core.Param{core.P("ptr", "void *")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if _, err := th.CallKernel("kfree", args[0]); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ret, err := th.CallModule(m, "churn", 32); err != nil || ret != 0 {
		t.Fatalf("churn: ret=%d err=%v", ret, err)
	}
	return &rig{sys: k.Sys, v: v, th: th, mod: m}
}

func (r *rig) snapshot(t *testing.T, reason string) *coredump.Dump {
	t.Helper()
	return coredump.Snapshot(r.sys, coredump.Options{
		Reason:  reason,
		Threads: []*core.Thread{r.th},
		VFS:     r.v,
	})
}

func mustValidate(t *testing.T, d *coredump.Dump) {
	t.Helper()
	if issues := coredump.Validate(d); len(issues) != 0 {
		t.Fatalf("validator found issues:\n%s", coredump.FormatIssues(issues))
	}
}

func TestDumpRoundTripAndValidate(t *testing.T) {
	r := bootFig9(t)

	// Take the dump mid-workload: from inside a module crossing, so the
	// shadow stack is live in the thread section.
	var d *coredump.Dump
	probe, err := r.sys.LoadModule(core.ModuleSpec{
		Name:     "probe",
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "snap", Params: nil,
				Impl: func(th *core.Thread, args []uint64) uint64 {
					d = r.snapshot(t, "mid-workload")
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.th.CallModule(probe, "snap"); err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("snapshot never ran")
	}

	// The dump must carry every Fig. 9 module plus the two test ones.
	names := map[string]bool{}
	for _, m := range d.Modules {
		names[m.Name] = true
	}
	for _, want := range []string{
		"e1000", "snd-intel8x0", "snd-ens1370", "rds", "can", "can-bcm",
		"econet", "dm-crypt", "dm-zero", "dm-snapshot",
		"tmpfssim", "scratch", "probe",
	} {
		if !names[want] {
			t.Fatalf("module %q missing from dump (have %v)", want, names)
		}
	}
	if d.Mode != "lxfi" || d.Shards < 1 {
		t.Fatalf("bad header: mode=%q shards=%d", d.Mode, d.Shards)
	}
	if d.PageCache == nil || len(d.PageCache.Pages) == 0 {
		t.Fatal("page-cache section empty after writing a file")
	}
	if len(d.Threads) != 1 {
		t.Fatalf("want 1 thread, got %d", len(d.Threads))
	}
	th := d.Threads[0]
	if th.ShadowDepth == 0 || len(th.Shadow) == 0 {
		t.Fatal("mid-crossing dump has an empty shadow stack")
	}
	if len(th.Events) == 0 {
		t.Fatal("traced thread dumped no flight-recorder events")
	}
	sawKernelCall := false
	for _, e := range th.Events {
		if e.Kind == "kernel_call" && (e.Name == "kmalloc" || e.Name == "kfree") {
			sawKernelCall = true
		}
	}
	if !sawKernelCall {
		t.Fatal("no kmalloc/kfree crossings in the trace tail")
	}
	if d.Metrics.CapChecks == 0 || d.Metrics.FuncEntries == 0 {
		t.Fatalf("metrics section empty: %+v", d.Metrics)
	}

	mustValidate(t, d)

	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := coredump.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	mustValidate(t, back)
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("encode/decode/encode round trip is not byte-stable")
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	if _, err := coredump.Decode([]byte(`{"version": 99, "mode": "lxfi"}`)); err == nil {
		t.Fatal("decoded a dump from the future")
	}
}

// reload deep-copies a dump through its own encoding so corruption in
// one subtest cannot leak into another.
func reload(t *testing.T, d *coredump.Dump) *coredump.Dump {
	t.Helper()
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := coredump.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

// TestValidatorNamesCorruptedSection corrupts one value per dump
// section and checks the validator names exactly the broken invariant.
func TestValidatorNamesCorruptedSection(t *testing.T) {
	r := bootFig9(t)
	// Hold an allocation so scratch owns a WRITE capability (giving the
	// interval-index layer something to chew on).
	p, err := r.th.CallModule(r.mod, "hold", 64)
	if err != nil || p == 0 {
		t.Fatalf("hold: p=%#x err=%v", p, err)
	}
	good := r.snapshot(t, "baseline")
	mustValidate(t, good)

	// Locate a principal with at least one populated shard.
	findShard := func(d *coredump.Dump) *coredump.ShardDump {
		for mi := range d.Modules {
			for pi := range d.Modules[mi].Principals {
				if ws := d.Modules[mi].Principals[pi].WriteShards; len(ws) > 0 {
					return &ws[0]
				}
			}
		}
		return nil
	}
	if findShard(good) == nil {
		t.Fatal("no populated write shard anywhere in the dump")
	}

	cases := []struct {
		name      string
		corrupt   func(d *coredump.Dump)
		layer     string
		invariant string
	}{
		{
			name:    "header/shard geometry",
			corrupt: func(d *coredump.Dump) { d.Shards = 3 },
			layer:   "structure", invariant: "shard-geometry",
		},
		{
			name: "capability table/prefix max",
			corrupt: func(d *coredump.Dump) {
				s := findShard(d)
				s.MaxEnd[len(s.MaxEnd)-1] += 8
			},
			layer: "interval-index", invariant: "prefix-max",
		},
		{
			name: "capability table/sort order",
			corrupt: func(d *coredump.Dump) {
				// Prepend an entry that starts after its successor.
				s := findShard(d)
				w0 := s.Writes[0]
				s.Writes = append([]coredump.CapRange{{Addr: w0.Addr + 8, Size: w0.Size}}, s.Writes...)
				s.MaxEnd = append([]uint64{w0.Addr + 8 + w0.Size}, s.MaxEnd...)
			},
			layer: "interval-index", invariant: "sortedness",
		},
		{
			name: "trace ring/event epoch",
			corrupt: func(d *coredump.Dump) {
				d.Threads[0].Events[0].Epoch = d.Metrics.CapEpoch + 1
			},
			layer: "epoch", invariant: "event-bound",
		},
		{
			name: "trace ring/event seq",
			corrupt: func(d *coredump.Dump) {
				ev := d.Threads[0].Events
				ev[len(ev)-1].Seq = ev[0].Seq
			},
			layer: "epoch", invariant: "event-seq",
		},
		{
			name: "principal directory/orphan owner",
			corrupt: func(d *coredump.Dump) {
				for mi := range d.Modules {
					if d.Modules[mi].Name == "scratch" {
						d.Modules[mi].Principals[0].Name = "ghost[shared]"
					}
				}
			},
			layer: "ownership", invariant: "dead-principal",
		},
		{
			name: "page cache/dirty count",
			corrupt: func(d *coredump.Dump) {
				d.PageCache.Pages[0].Dirty = !d.PageCache.Pages[0].Dirty
			},
			layer: "ownership", invariant: "dirty-count",
		},
		{
			name: "thread/shadow depth",
			corrupt: func(d *coredump.Dump) {
				d.Threads[0].ShadowDepth++
			},
			layer: "threads", invariant: "shadow-depth",
		},
		{
			name: "thread/check coverage",
			corrupt: func(d *coredump.Dump) {
				e := &d.Threads[0].Events[0]
				e.Misses = e.Checks + 1
			},
			layer: "threads", invariant: "check-coverage",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := reload(t, good)
			tc.corrupt(d)
			issues := coredump.Validate(d)
			if len(issues) == 0 {
				t.Fatalf("validator accepted the corrupted dump")
			}
			for _, i := range issues {
				if i.Layer == tc.layer && i.Invariant == tc.invariant {
					return
				}
			}
			t.Fatalf("want [%s] %s, got:\n%s",
				tc.layer, tc.invariant, coredump.FormatIssues(issues))
		})
	}
}

func TestDifferReportsExactCapabilityDelta(t *testing.T) {
	r := bootFig9(t)
	before := r.snapshot(t, "before")

	p, err := r.th.CallModule(r.mod, "hold", 64)
	if err != nil || p == 0 {
		t.Fatalf("hold: p=%#x err=%v", p, err)
	}
	after := r.snapshot(t, "after")

	diff := coredump.Compare(before, after)
	dl, ok := diff.DeltaFor("scratch[shared]")
	if !ok {
		t.Fatalf("no delta for scratch:\n%s", diff.Format())
	}
	want := coredump.CapRange{Addr: p, Size: 64}
	if len(dl.GainedWrites) != 1 || dl.GainedWrites[0] != want {
		t.Fatalf("gained = %+v, want exactly [%+v]", dl.GainedWrites, want)
	}
	if len(dl.LostWrites) != 0 {
		t.Fatalf("unexpected losses: %+v", dl.LostWrites)
	}
	if !strings.Contains(diff.Format(), "+ WRITE") {
		t.Fatalf("formatted diff misses the grant:\n%s", diff.Format())
	}

	// Dropping the allocation revokes exactly that range again.
	if ret, err := r.th.CallModule(r.mod, "drop", p); err != nil || ret != 0 {
		t.Fatalf("drop: ret=%d err=%v", ret, err)
	}
	final := r.snapshot(t, "final")
	diff2 := coredump.Compare(after, final)
	dl2, ok := diff2.DeltaFor("scratch[shared]")
	if !ok {
		t.Fatalf("no delta for scratch after drop:\n%s", diff2.Format())
	}
	if len(dl2.LostWrites) != 1 || dl2.LostWrites[0] != want {
		t.Fatalf("lost = %+v, want exactly [%+v]", dl2.LostWrites, want)
	}
	if len(dl2.GainedWrites) != 0 {
		t.Fatalf("unexpected gains: %+v", dl2.GainedWrites)
	}
	if diff2.EpochDelta == 0 {
		t.Fatal("revocation did not advance the capability epoch")
	}

	// Identical snapshots diff empty.
	again := r.snapshot(t, "again")
	if d3 := coredump.Compare(final, again); !d3.Empty() {
		t.Fatalf("no-op diff is not empty:\n%s", d3.Format())
	}
}

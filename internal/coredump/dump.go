// Package coredump serializes a live core.System into an analyzable,
// versioned dump: every module's principals and their sharded
// capability tables (including the interval index's prefix-maximum
// column, so the index invariants can be re-checked offline), the
// writer-set tracker, the VFS page cache, the violation log, each
// dumped thread's shadow stack and flight-recorder tail, and the
// metrics registry.
//
// A dump is taken section by section through the runtime's existing
// locked accessors — no lock is ever held across sections, so the
// snapshot is sequential, not atomic. The layered validator
// (validate.go) therefore checks monotone cross-section relations
// (event epochs never exceed the metrics epoch recorded last) rather
// than exact equalities, and the differ (diff.go) answers the forensic
// question two dumps pose: exactly which capabilities appeared or
// disappeared in between.
//
// Thread state (shadow stack, trace ring) is per-CPU context with no
// locks; callers may only pass threads they own, have joined, or are
// running on — Monitor.OnViolationThread delivers exactly that for the
// dump-at-violation hook.
package coredump

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/vfs"
)

// FormatVersion is the dump format version; Decode rejects dumps from
// a newer format than it understands. Version 2 added the sparse disk
// section (Disks), making a dump taken at a violation sufficient to
// remount and inspect the filesystem state the crash left behind.
const FormatVersion = 2

// CapRange is one WRITE capability region.
type CapRange struct {
	Addr uint64 `json:"addr"`
	Size uint64 `json:"size"`
}

// RefDump is one REF capability.
type RefDump struct {
	Type string `json:"type"`
	Addr uint64 `json:"addr"`
}

// ShardDump is one shard's slice of a principal's WRITE interval index,
// verbatim: the sorted entries and the prefix-maximum column the O(log
// n) membership probe relies on. A range spanning several buckets
// appears in every shard it touches.
type ShardDump struct {
	Shard  int        `json:"shard"`
	Writes []CapRange `json:"writes"`
	MaxEnd []uint64   `json:"max_end"`
}

// PrincipalDump is one principal's identity and capability tables.
type PrincipalDump struct {
	Name string `json:"name"` // rendered form, e.g. "econet[shared]"
	Kind string `json:"kind"` // instance | shared | global
	Addr uint64 `json:"addr"` // instance name (0 for shared/global)

	WriteShards []ShardDump `json:"write_shards,omitempty"`
	Calls       []uint64    `json:"calls,omitempty"`
	Refs        []RefDump   `json:"refs,omitempty"`
}

// ModuleDump is one loaded module with its principals.
type ModuleDump struct {
	Name       string `json:"name"`
	Dead       bool   `json:"dead,omitempty"`
	KillReason string `json:"kill_reason,omitempty"`
	Data       uint64 `json:"data,omitempty"`
	DataSize   uint64 `json:"data_size,omitempty"`

	Principals []PrincipalDump `json:"principals"`
}

// WSTPage is one writer-set tracker page: which 64-byte segments of the
// page have a possibly non-empty writer set.
type WSTPage struct {
	Page uint64 `json:"page"`
	Bits uint64 `json:"bits"`
}

// PageDump is one page-cache entry.
type PageDump struct {
	Ino   uint64 `json:"ino"`
	Idx   uint64 `json:"idx"`
	Page  uint64 `json:"page"`
	Dirty bool   `json:"dirty,omitempty"`
}

// PageCacheDump is the VFS page-cache section.
type PageCacheDump struct {
	Pages      []PageDump `json:"pages"`
	DirtyCount int        `json:"dirty_count"`
}

// FrameDump is one shadow-stack frame.
type FrameDump struct {
	Func      string `json:"func,omitempty"`
	SavedPrin string `json:"saved_prin"`
	SavedMod  string `json:"saved_mod"`
	RetToken  uint64 `json:"ret_token"`
}

// EventDump is one flight-recorder event, principal rendered.
type EventDump struct {
	Seq       uint64 `json:"seq"`
	Kind      string `json:"kind"`
	Denied    bool   `json:"denied,omitempty"`
	Checks    uint16 `json:"checks"`
	Misses    uint16 `json:"misses"`
	Name      string `json:"name"`
	Module    string `json:"module"`
	Principal string `json:"principal,omitempty"` // "" = trusted kernel
	Addr      uint64 `json:"addr"`
	Epoch     uint64 `json:"epoch"`
	LatencyNs int64  `json:"latency_ns"`
	Detail    string `json:"detail,omitempty"`
}

// ThreadDump is one thread's per-CPU context: current principal,
// shadow stack, and the tail of its flight-recorder ring.
type ThreadDump struct {
	Name        string      `json:"name"`
	Principal   string      `json:"principal"` // "<kernel>" when trusted
	Module      string      `json:"module"`
	ShadowDepth int         `json:"shadow_depth"`
	Shadow      []FrameDump `json:"shadow,omitempty"`
	TraceSeq    uint64      `json:"trace_seq"`
	Events      []EventDump `json:"events,omitempty"`
}

// DiskExtent is one run of consecutive sectors with non-zero content;
// JSON renders Data as base64.
type DiskExtent struct {
	Sector uint64 `json:"sector"`
	Data   []byte `json:"data"`
}

// DiskDump is one simulated disk, stored sparsely: all-zero sectors
// (the vast majority of a mostly-empty image) are elided and implied
// by Sectors.
type DiskDump struct {
	Dev     uint64       `json:"dev"`
	Sectors uint64       `json:"sectors"`
	Extents []DiskExtent `json:"extents,omitempty"`
}

// Bytes reconstructs the full disk image from the sparse extents — the
// forensic path hands this to a fresh system's blockdev to remount the
// dumped filesystem.
func (dd *DiskDump) Bytes() []byte {
	img := make([]byte, dd.Sectors*blockdev.SectorSize)
	for _, e := range dd.Extents {
		copy(img[e.Sector*blockdev.SectorSize:], e.Data)
	}
	return img
}

// ViolationDump is one violation-log entry.
type ViolationDump struct {
	Module    string `json:"module"`
	Principal string `json:"principal"`
	Op        string `json:"op"`
	Addr      uint64 `json:"addr"`
	Detail    string `json:"detail"`
}

// Dump is the complete document. Epoch is read before any table and
// the metrics registry after every section, so Epoch <= the metrics'
// capability epoch bounds the whole snapshot from both sides.
type Dump struct {
	Version int    `json:"version"`
	Reason  string `json:"reason,omitempty"`
	Mode    string `json:"mode"`
	Epoch   uint64 `json:"capability_epoch"`
	Shards  int    `json:"shards"`

	Modules    []ModuleDump    `json:"modules"`
	WriterSet  []WSTPage       `json:"writer_set,omitempty"`
	PageCache  *PageCacheDump  `json:"page_cache,omitempty"`
	Disks      []DiskDump      `json:"disks,omitempty"`
	Threads    []ThreadDump    `json:"threads,omitempty"`
	Violations []ViolationDump `json:"violations,omitempty"`

	Metrics core.MetricsSnapshot `json:"metrics"`
}

// Options selects the optional dump sections.
type Options struct {
	// Reason labels the dump ("violation: ...", "manual", ...).
	Reason string
	// Threads to include. The caller must own, have joined, or be
	// running on each one — their shadow stacks and rings are read
	// without synchronization.
	Threads []*core.Thread
	// VFS adds the page-cache section when non-nil.
	VFS *vfs.VFS
	// Block adds the sparse disk section when non-nil: the raw content
	// of every attached disk, all-zero sectors elided. With it a dump
	// taken mid-crash carries enough to remount the filesystem offline.
	Block *blockdev.Layer
}

// Snapshot captures the system. Sections are read one at a time under
// the runtime's own locks, never nested, so it is safe to call from
// any goroutine (including a violation hook mid-crossing, where the
// only lock held is a mount lock — above every lock Snapshot takes).
func Snapshot(sys *core.System, opts Options) *Dump {
	d := &Dump{
		Version: FormatVersion,
		Reason:  opts.Reason,
		Mode:    sys.Mon.Mode().String(),
		Epoch:   sys.Caps.Epoch(),
		Shards:  sys.Caps.ShardCount(),
	}

	mods := sys.Modules()
	names := make([]string, 0, len(mods))
	for name := range mods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d.Modules = append(d.Modules, dumpModule(mods[name]))
	}

	for page, bits := range sys.WST.Pages() {
		d.WriterSet = append(d.WriterSet, WSTPage{Page: uint64(page), Bits: bits})
	}
	sort.Slice(d.WriterSet, func(i, j int) bool { return d.WriterSet[i].Page < d.WriterSet[j].Page })

	if opts.VFS != nil {
		pages, dirty := opts.VFS.DumpPages()
		pc := &PageCacheDump{DirtyCount: dirty}
		for _, p := range pages {
			pc.Pages = append(pc.Pages, PageDump{
				Ino: uint64(p.Ino), Idx: p.Idx, Page: uint64(p.Page), Dirty: p.Dirty,
			})
		}
		d.PageCache = pc
	}

	if opts.Block != nil {
		devs := opts.Block.Disks()
		sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
		for _, dev := range devs {
			d.Disks = append(d.Disks, dumpDisk(dev, opts.Block.DiskBytes(dev)))
		}
	}

	for _, t := range opts.Threads {
		d.Threads = append(d.Threads, dumpThread(t))
	}

	for _, v := range sys.Mon.Violations() {
		d.Violations = append(d.Violations, ViolationDump{
			Module: v.Module, Principal: v.Principal, Op: v.Op,
			Addr: uint64(v.Addr), Detail: v.Detail,
		})
	}

	// Metrics last: its capability epoch is the snapshot's upper bound.
	d.Metrics = sys.Metrics()
	return d
}

func dumpModule(m *core.Module) ModuleDump {
	md := ModuleDump{
		Name: m.Name, Dead: m.Dead(),
		Data: uint64(m.Data), DataSize: m.DataSize,
	}
	if v := m.KillReason(); v != nil {
		md.KillReason = v.Error()
	}
	for _, p := range m.Set.Principals() {
		if p == nil || p.IsTrusted() {
			continue
		}
		pd := PrincipalDump{Name: p.String(), Kind: p.Kind.String(), Addr: uint64(p.Name)}
		for shard, sw := range p.DumpShardWrites() {
			if len(sw.Writes) == 0 {
				continue
			}
			sd := ShardDump{Shard: shard}
			for _, c := range sw.Writes {
				sd.Writes = append(sd.Writes, CapRange{Addr: uint64(c.Addr), Size: c.Size})
			}
			for _, e := range sw.MaxEnd {
				sd.MaxEnd = append(sd.MaxEnd, uint64(e))
			}
			pd.WriteShards = append(pd.WriteShards, sd)
		}
		for _, a := range p.CallTargets() {
			pd.Calls = append(pd.Calls, uint64(a))
		}
		for _, c := range p.RefCaps() {
			pd.Refs = append(pd.Refs, RefDump{Type: c.RefType, Addr: uint64(c.Addr)})
		}
		md.Principals = append(md.Principals, pd)
	}
	return md
}

// dumpDisk coalesces a disk image into runs of non-zero sectors.
func dumpDisk(dev uint64, disk []byte) DiskDump {
	dd := DiskDump{Dev: dev, Sectors: uint64(len(disk)) / blockdev.SectorSize}
	zero := make([]byte, blockdev.SectorSize)
	var run []byte
	var runStart uint64
	for s := uint64(0); s < dd.Sectors; s++ {
		sec := disk[s*blockdev.SectorSize : (s+1)*blockdev.SectorSize]
		if bytes.Equal(sec, zero) {
			if run != nil {
				dd.Extents = append(dd.Extents, DiskExtent{Sector: runStart, Data: run})
				run = nil
			}
			continue
		}
		if run == nil {
			runStart = s
		}
		run = append(run, sec...)
	}
	if run != nil {
		dd.Extents = append(dd.Extents, DiskExtent{Sector: runStart, Data: run})
	}
	return dd
}

func dumpThread(t *core.Thread) ThreadDump {
	td := ThreadDump{
		Name:        t.Name,
		Principal:   t.CurrentPrincipal().String(),
		Module:      "kernel",
		ShadowDepth: t.ShadowDepth(),
	}
	if m := t.CurrentModule(); m != nil {
		td.Module = m.Name
	}
	for _, f := range t.ShadowFrames() {
		td.Shadow = append(td.Shadow, FrameDump{
			Func: f.Func, SavedPrin: f.SavedPrin, SavedMod: f.SavedMod, RetToken: f.RetToken,
		})
	}
	if r := t.TraceRing(); r != nil {
		td.TraceSeq = r.Seq()
		for _, e := range r.Tail() {
			ed := EventDump{
				Seq: e.Seq, Kind: e.Kind.String(), Denied: e.Denied,
				Checks: e.Checks, Misses: e.Misses,
				Name: e.Name, Module: e.Module,
				Addr: e.Addr, Epoch: e.Epoch, LatencyNs: e.LatencyNs, Detail: e.Detail,
			}
			if e.Prin != nil {
				ed.Principal = e.Prin.String()
			}
			td.Events = append(td.Events, ed)
		}
	}
	return td
}

// Encode renders the dump as indented JSON.
func (d *Dump) Encode() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// Decode parses an encoded dump, rejecting unknown future versions.
func Decode(data []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("coredump: %w", err)
	}
	if d.Version < 1 || d.Version > FormatVersion {
		return nil, fmt.Errorf("coredump: unsupported format version %d (tool supports <= %d)",
			d.Version, FormatVersion)
	}
	return &d, nil
}

// rangeEnd is a WRITE range's exclusive end, shared with the validator.
func rangeEnd(c CapRange) uint64 { return c.Addr + c.Size }

package coredump_test

// The forensic round trip the disk section exists for: a power cut
// mid-rename freezes the disk, a dump taken at that moment carries the
// frozen image, and a *fresh* system — fed nothing but the decoded
// dump — remounts it and recovers a consistent namespace (exactly the
// pre-op or post-op tree, never a half-moved one).

import (
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/coredump"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
	"lxfi/internal/modules/minixsim"
	"lxfi/internal/vfs"
)

// bootFS brings up a kernel with the block layer, VFS, and minixsim.
func bootFS(t *testing.T) (*kernel.Kernel, *blockdev.Layer, *vfs.VFS, *core.Thread) {
	t.Helper()
	k := kernel.New()
	k.Sys.Mon.SetMode(core.Enforce)
	bl := blockdev.Init(k)
	v := vfs.Init(k, bl)
	th := k.Sys.NewThread("forensics")
	if _, err := minixsim.Load(th, k, v); err != nil {
		t.Fatal(err)
	}
	return k, bl, v, th
}

func names(t *testing.T, v *vfs.VFS, th *core.Thread, sb mem.Addr, dir string) map[string]bool {
	t.Helper()
	ents, err := v.Readdir(th, sb, dir)
	if err != nil {
		t.Fatalf("readdir %s: %v", dir, err)
	}
	out := make(map[string]bool, len(ents))
	for _, e := range ents {
		out[e.Name] = true
	}
	return out
}

func TestDiskSectionRemountsMidRenameCrash(t *testing.T) {
	// cut n: the rename's n-th sector write fails with ErrPowerCut.
	// Cut 1 lands before the commit sector (the rename must vanish);
	// later cuts land after it (the rename must be complete). Either
	// way the recovered tree is one of the two legal states.
	for _, cut := range []int64{1, 2, 3} {
		k, bl, v, th := bootFS(t)
		bl.AddDisk(1, minixsim.DiskSectors)
		sb, err := v.Mount(th, minixsim.FsID, 1)
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("survives the crash")
		if _, err := v.Create(th, sb, "/src"); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Write(th, sb, "/src", 0, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Create(th, sb, "/bystander"); err != nil {
			t.Fatal(err)
		}
		if err := v.Sync(th, sb); err != nil {
			t.Fatal(err)
		}

		bl.FailAfter(1, cut)
		renameErr := v.Rename(th, sb, "/src", sb, "/dst")
		bl.ClearFail(1)

		// The frozen machine is dumped with its disks; the dump round
		// trips through the wire format.
		raw, err := coredump.Snapshot(k.Sys, coredump.Options{
			Reason: "power cut mid-rename",
			VFS:    v,
			Block:  bl,
		}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		d, err := coredump.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Disks) != 1 || d.Disks[0].Dev != 1 || d.Disks[0].Sectors != minixsim.DiskSectors {
			t.Fatalf("cut %d: disk section = %+v", cut, d.Disks)
		}

		// A fresh system remounts the extracted image.
		_, bl2, v2, th2 := bootFS(t)
		bl2.AddDisk(1, minixsim.DiskSectors)
		copy(bl2.DiskBytes(1), d.Disks[0].Bytes())
		sb2, err := v2.Mount(th2, minixsim.FsID, 1)
		if err != nil {
			t.Fatalf("cut %d: remount of dumped disk: %v", cut, err)
		}
		got := names(t, v2, th2, sb2, "/")
		if !got["bystander"] {
			t.Fatalf("cut %d: bystander lost: %v", cut, got)
		}
		pre := got["src"] && !got["dst"]
		post := got["dst"] && !got["src"]
		if !pre && !post {
			t.Fatalf("cut %d: recovered root is neither pre nor post rename: %v", cut, got)
		}
		if renameErr == nil && !post {
			t.Fatalf("cut %d: rename reported success but recovered tree is pre-op", cut)
		}
		surviving := "/src"
		if post {
			surviving = "/dst"
		}
		data, err := v2.Read(th2, sb2, surviving, 0, uint64(len(payload)))
		if err != nil || string(data) != string(payload) {
			t.Fatalf("cut %d: %s content = %q, %v", cut, surviving, data, err)
		}
	}
}

package coredump

import (
	"fmt"
	"sort"
	"strings"
)

// The differ answers the forensic question two dumps pose: between the
// pre-state and the post-state, exactly which capabilities did each
// principal gain or lose? Exploit scenarios dump before arming and at
// the first violation; the delta is the attacker's accumulated
// authority, stated as concrete WRITE ranges, CALL targets, and REFs.

// Delta is one principal's capability change between two dumps.
type Delta struct {
	Principal string `json:"principal"`

	GainedWrites []CapRange `json:"gained_writes,omitempty"`
	LostWrites   []CapRange `json:"lost_writes,omitempty"`
	GainedCalls  []uint64   `json:"gained_calls,omitempty"`
	LostCalls    []uint64   `json:"lost_calls,omitempty"`
	GainedRefs   []RefDump  `json:"gained_refs,omitempty"`
	LostRefs     []RefDump  `json:"lost_refs,omitempty"`
}

func (d Delta) empty() bool {
	return len(d.GainedWrites) == 0 && len(d.LostWrites) == 0 &&
		len(d.GainedCalls) == 0 && len(d.LostCalls) == 0 &&
		len(d.GainedRefs) == 0 && len(d.LostRefs) == 0
}

// Diff is the full comparison of two dumps (a = before, b = after).
type Diff struct {
	ModulesAdded   []string `json:"modules_added,omitempty"`
	ModulesRemoved []string `json:"modules_removed,omitempty"`
	ModulesKilled  []string `json:"modules_killed,omitempty"`

	PrincipalsAdded   []string `json:"principals_added,omitempty"`
	PrincipalsRemoved []string `json:"principals_removed,omitempty"`

	Deltas []Delta `json:"deltas,omitempty"`

	EpochDelta     uint64 `json:"epoch_delta"`
	ViolationDelta int    `json:"violation_delta"`
}

// Empty reports whether the two dumps agree on every compared axis.
func (d *Diff) Empty() bool {
	return len(d.ModulesAdded) == 0 && len(d.ModulesRemoved) == 0 &&
		len(d.ModulesKilled) == 0 && len(d.PrincipalsAdded) == 0 &&
		len(d.PrincipalsRemoved) == 0 && len(d.Deltas) == 0
}

// DeltaFor returns the delta for a principal's rendered name, if any.
func (d *Diff) DeltaFor(principal string) (Delta, bool) {
	for _, dl := range d.Deltas {
		if dl.Principal == principal {
			return dl, true
		}
	}
	return Delta{}, false
}

// prinCaps is one principal's deduplicated capability sets. A WRITE
// range spanning several buckets is inserted into every shard it
// touches, so the shard tables are folded through a set first.
type prinCaps struct {
	writes map[CapRange]bool
	calls  map[uint64]bool
	refs   map[RefDump]bool
}

func collectCaps(d *Dump) map[string]prinCaps {
	out := map[string]prinCaps{}
	for _, m := range d.Modules {
		for _, p := range m.Principals {
			pc := prinCaps{
				writes: map[CapRange]bool{},
				calls:  map[uint64]bool{},
				refs:   map[RefDump]bool{},
			}
			for _, s := range p.WriteShards {
				for _, w := range s.Writes {
					pc.writes[w] = true
				}
			}
			for _, c := range p.Calls {
				pc.calls[c] = true
			}
			for _, r := range p.Refs {
				pc.refs[r] = true
			}
			out[p.Name] = pc
		}
	}
	return out
}

// Compare diffs two dumps, a taken before b.
func Compare(a, b *Dump) *Diff {
	diff := &Diff{
		EpochDelta:     b.Epoch - a.Epoch,
		ViolationDelta: len(b.Violations) - len(a.Violations),
	}

	amods := map[string]ModuleDump{}
	for _, m := range a.Modules {
		amods[m.Name] = m
	}
	bmods := map[string]ModuleDump{}
	for _, m := range b.Modules {
		bmods[m.Name] = m
		am, had := amods[m.Name]
		switch {
		case !had:
			diff.ModulesAdded = append(diff.ModulesAdded, m.Name)
		case m.Dead && !am.Dead:
			diff.ModulesKilled = append(diff.ModulesKilled, m.Name)
		}
	}
	for _, m := range a.Modules {
		if _, still := bmods[m.Name]; !still {
			diff.ModulesRemoved = append(diff.ModulesRemoved, m.Name)
		}
	}

	acaps := collectCaps(a)
	bcaps := collectCaps(b)
	var names []string
	for name := range bcaps {
		if _, had := acaps[name]; !had {
			diff.PrincipalsAdded = append(diff.PrincipalsAdded, name)
		}
		names = append(names, name)
	}
	for name := range acaps {
		if _, still := bcaps[name]; !still {
			diff.PrincipalsRemoved = append(diff.PrincipalsRemoved, name)
			names = append(names, name)
		}
	}
	sort.Strings(names)
	sort.Strings(diff.ModulesAdded)
	sort.Strings(diff.ModulesRemoved)
	sort.Strings(diff.ModulesKilled)
	sort.Strings(diff.PrincipalsAdded)
	sort.Strings(diff.PrincipalsRemoved)

	for _, name := range names {
		before, after := acaps[name], bcaps[name]
		dl := Delta{Principal: name}
		for w := range after.writes {
			if !before.writes[w] {
				dl.GainedWrites = append(dl.GainedWrites, w)
			}
		}
		for w := range before.writes {
			if !after.writes[w] {
				dl.LostWrites = append(dl.LostWrites, w)
			}
		}
		for c := range after.calls {
			if !before.calls[c] {
				dl.GainedCalls = append(dl.GainedCalls, c)
			}
		}
		for c := range before.calls {
			if !after.calls[c] {
				dl.LostCalls = append(dl.LostCalls, c)
			}
		}
		for r := range after.refs {
			if !before.refs[r] {
				dl.GainedRefs = append(dl.GainedRefs, r)
			}
		}
		for r := range before.refs {
			if !after.refs[r] {
				dl.LostRefs = append(dl.LostRefs, r)
			}
		}
		if dl.empty() {
			continue
		}
		sortRanges(dl.GainedWrites)
		sortRanges(dl.LostWrites)
		sortU64(dl.GainedCalls)
		sortU64(dl.LostCalls)
		sortRefs(dl.GainedRefs)
		sortRefs(dl.LostRefs)
		diff.Deltas = append(diff.Deltas, dl)
	}
	return diff
}

func sortRanges(rs []CapRange) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Addr != rs[j].Addr {
			return rs[i].Addr < rs[j].Addr
		}
		return rs[i].Size < rs[j].Size
	})
}

func sortU64(xs []uint64) { sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) }

func sortRefs(rs []RefDump) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Addr != rs[j].Addr {
			return rs[i].Addr < rs[j].Addr
		}
		return rs[i].Type < rs[j].Type
	})
}

// Format renders the diff for humans.
func (d *Diff) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch +%d, violations %+d\n", d.EpochDelta, d.ViolationDelta)
	line := func(label string, xs []string) {
		if len(xs) > 0 {
			fmt.Fprintf(&b, "%s: %s\n", label, strings.Join(xs, ", "))
		}
	}
	line("modules added", d.ModulesAdded)
	line("modules removed", d.ModulesRemoved)
	line("modules killed", d.ModulesKilled)
	line("principals added", d.PrincipalsAdded)
	line("principals removed", d.PrincipalsRemoved)
	for _, dl := range d.Deltas {
		fmt.Fprintf(&b, "%s:\n", dl.Principal)
		for _, w := range dl.GainedWrites {
			fmt.Fprintf(&b, "  + WRITE [%#x,%#x) (%d bytes)\n", w.Addr, rangeEnd(w), w.Size)
		}
		for _, w := range dl.LostWrites {
			fmt.Fprintf(&b, "  - WRITE [%#x,%#x) (%d bytes)\n", w.Addr, rangeEnd(w), w.Size)
		}
		for _, c := range dl.GainedCalls {
			fmt.Fprintf(&b, "  + CALL %#x\n", c)
		}
		for _, c := range dl.LostCalls {
			fmt.Fprintf(&b, "  - CALL %#x\n", c)
		}
		for _, r := range dl.GainedRefs {
			fmt.Fprintf(&b, "  + REF(%s, %#x)\n", r.Type, r.Addr)
		}
		for _, r := range dl.LostRefs {
			fmt.Fprintf(&b, "  - REF(%s, %#x)\n", r.Type, r.Addr)
		}
	}
	return b.String()
}

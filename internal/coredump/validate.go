package coredump

import (
	"fmt"
	"sort"
	"strings"
)

// The validator re-checks the runtime's structural invariants against a
// decoded dump, in layers modeled on livecore's staged validation: each
// layer only assumes the layers before it held, so a corrupted dump
// fails with the *first* broken invariant instead of a cascade of
// secondary noise.
//
//	structure      the document itself: version, mode, shard geometry,
//	               section shapes (parallel arrays of equal length)
//	interval-index per-shard WRITE indexes: entries sorted by start,
//	               prefix-maximum column correct and non-decreasing
//	epoch          monotone snapshot bounds: the header epoch and every
//	               trace event's epoch never exceed the metrics epoch
//	               (recorded last); per-thread event seqs strictly
//	               increasing below the ring's write position
//	ownership      capability/directory agreement: principals resolve
//	               to their module, identities are unique, no
//	               capability hangs off a principal outside the live
//	               directory, dead modules carry their kill reason,
//	               page-cache entries back distinct pages
//	threads        shadow-stack/thread agreement: depth matches the
//	               frames, return tokens strictly increase inward (the
//	               token counter is monotone), check counts cover miss
//	               counts on every event

// Issue is one failed invariant.
type Issue struct {
	Layer     string `json:"layer"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (i Issue) String() string {
	return fmt.Sprintf("[%s] %s: %s", i.Layer, i.Invariant, i.Detail)
}

// Layers in validation order.
var Layers = []string{"structure", "interval-index", "epoch", "ownership", "threads"}

// Validate runs all layers and returns every failed invariant, in
// layer order. An empty slice means the dump is internally consistent.
func Validate(d *Dump) []Issue {
	var issues []Issue
	add := func(layer, inv, format string, args ...interface{}) {
		issues = append(issues, Issue{Layer: layer, Invariant: inv,
			Detail: fmt.Sprintf(format, args...)})
	}

	validStructure := validateStructure(d, add)
	if validStructure {
		// The deeper layers index into the shapes structure vouched for.
		validateIntervalIndex(d, add)
		validateEpoch(d, add)
		validateOwnership(d, add)
		validateThreads(d, add)
	}
	return issues
}

type addFunc func(layer, inv, format string, args ...interface{})

func validateStructure(d *Dump, add addFunc) bool {
	ok := true
	fail := func(inv, format string, args ...interface{}) {
		add("structure", inv, format, args...)
		ok = false
	}
	if d.Version < 1 || d.Version > FormatVersion {
		fail("version", "format version %d outside [1,%d]", d.Version, FormatVersion)
	}
	if d.Mode != "stock" && d.Mode != "lxfi" {
		fail("mode", "unknown enforcement mode %q", d.Mode)
	}
	if d.Shards < 1 || d.Shards&(d.Shards-1) != 0 {
		fail("shard-geometry", "shard count %d is not a positive power of two", d.Shards)
	}
	for mi, m := range d.Modules {
		if m.Name == "" {
			fail("module-name", "module %d has an empty name", mi)
		}
		for _, p := range m.Principals {
			for si, s := range p.WriteShards {
				if d.Shards >= 1 && (s.Shard < 0 || s.Shard >= d.Shards) {
					fail("shard-range", "%s write_shards[%d] names shard %d of %d",
						p.Name, si, s.Shard, d.Shards)
				}
				if len(s.Writes) != len(s.MaxEnd) {
					fail("index-shape", "%s shard %d: %d writes but %d max_end entries",
						p.Name, s.Shard, len(s.Writes), len(s.MaxEnd))
				}
			}
		}
	}
	if d.PageCache != nil && d.PageCache.DirtyCount > len(d.PageCache.Pages) {
		fail("page-cache-shape", "dirty_count %d exceeds %d cached pages",
			d.PageCache.DirtyCount, len(d.PageCache.Pages))
	}
	return ok
}

func validateIntervalIndex(d *Dump, add addFunc) {
	for _, m := range d.Modules {
		for _, p := range m.Principals {
			for _, s := range p.WriteShards {
				if len(s.Writes) != len(s.MaxEnd) {
					continue // structure layer already reported it
				}
				var runMax uint64
				for i, w := range s.Writes {
					if i > 0 && w.Addr < s.Writes[i-1].Addr {
						add("interval-index", "sortedness",
							"%s shard %d: entry %d starts at %#x, before entry %d at %#x",
							p.Name, s.Shard, i, w.Addr, i-1, s.Writes[i-1].Addr)
					}
					if end := rangeEnd(w); end > runMax {
						runMax = end
					}
					if s.MaxEnd[i] != runMax {
						add("interval-index", "prefix-max",
							"%s shard %d: max_end[%d] = %#x, want %#x",
							p.Name, s.Shard, i, s.MaxEnd[i], runMax)
					}
				}
			}
		}
	}
}

func validateEpoch(d *Dump, add addFunc) {
	// The header epoch is read before any table, the metrics registry
	// after every section: capability mutations during the snapshot only
	// move the epoch forward, so header <= metrics must hold, as must
	// every trace event recorded before the snapshot.
	bound := d.Metrics.CapEpoch
	if d.Epoch > bound {
		add("epoch", "header-bound",
			"header epoch %d exceeds metrics epoch %d (recorded later)", d.Epoch, bound)
	}
	for _, t := range d.Threads {
		prev := int64(-1)
		for i, e := range t.Events {
			if e.Epoch > bound {
				add("epoch", "event-bound",
					"thread %s event %d: epoch %d exceeds metrics epoch %d",
					t.Name, i, e.Epoch, bound)
			}
			if int64(e.Seq) <= prev {
				add("epoch", "event-seq",
					"thread %s event %d: seq %d not above predecessor %d",
					t.Name, i, e.Seq, prev)
			}
			prev = int64(e.Seq)
			if e.Seq >= t.TraceSeq {
				add("epoch", "event-seq",
					"thread %s event %d: seq %d at or past ring position %d",
					t.Name, i, e.Seq, t.TraceSeq)
			}
		}
	}
}

func validateOwnership(d *Dump, add addFunc) {
	modSeen := map[string]bool{}
	for _, m := range d.Modules {
		if modSeen[m.Name] {
			add("ownership", "module-unique", "module %q appears twice", m.Name)
		}
		modSeen[m.Name] = true
		if m.Dead && m.KillReason == "" {
			add("ownership", "kill-reason", "module %q is dead with no recorded violation", m.Name)
		}
		prinSeen := map[string]bool{}
		for _, p := range m.Principals {
			// A capability's owner must resolve to the live principal
			// directory: the rendered name embeds the module, so a
			// principal whose name does not carry its parent module is a
			// capability held by nothing the directory knows — the
			// dead-principal case.
			if !strings.HasPrefix(p.Name, m.Name) {
				add("ownership", "dead-principal",
					"principal %q (holding %d CALL, %d shard entries) does not belong to module %q",
					p.Name, len(p.Calls), len(p.WriteShards), m.Name)
			}
			switch p.Kind {
			case "shared", "global":
				if p.Addr != 0 {
					add("ownership", "principal-kind",
						"%s principal %q carries instance address %#x", p.Kind, p.Name, p.Addr)
				}
			case "instance":
				if p.Addr == 0 {
					add("ownership", "principal-kind", "instance principal %q has no address", p.Name)
				}
			default:
				add("ownership", "principal-kind", "principal %q has unknown kind %q", p.Name, p.Kind)
			}
			id := p.Kind + "/" + fmt.Sprint(p.Addr)
			if prinSeen[id] {
				add("ownership", "principal-unique",
					"module %q has two %s principals named %#x", m.Name, p.Kind, p.Addr)
			}
			prinSeen[id] = true
			for _, c := range p.Calls {
				if c == 0 {
					add("ownership", "call-target", "principal %q holds CALL for address 0", p.Name)
				}
			}
		}
	}
	if d.PageCache != nil {
		byPage := map[uint64]PageDump{}
		dirty := 0
		for _, pg := range d.PageCache.Pages {
			if pg.Page == 0 {
				add("ownership", "page-backing",
					"page cache entry (ino %#x, idx %d) backed by address 0", pg.Ino, pg.Idx)
			}
			if prev, dup := byPage[pg.Page]; dup {
				add("ownership", "page-aliased",
					"page %#x backs both (ino %#x, idx %d) and (ino %#x, idx %d)",
					pg.Page, prev.Ino, prev.Idx, pg.Ino, pg.Idx)
			}
			byPage[pg.Page] = pg
			if pg.Dirty {
				dirty++
			}
		}
		if dirty != d.PageCache.DirtyCount {
			add("ownership", "dirty-count",
				"%d pages marked dirty but dirty_count says %d", dirty, d.PageCache.DirtyCount)
		}
	}
}

func validateThreads(d *Dump, add addFunc) {
	for _, t := range d.Threads {
		if t.ShadowDepth != len(t.Shadow) {
			add("threads", "shadow-depth",
				"thread %s: shadow_depth %d but %d frames dumped", t.Name, t.ShadowDepth, len(t.Shadow))
		}
		// Return tokens come from a global monotone counter, and outer
		// frames are pushed before inner ones: tokens must strictly
		// increase toward the top of the stack. A corrupted token (the
		// forged-return CFI case) breaks the chain.
		for i := 1; i < len(t.Shadow); i++ {
			if t.Shadow[i].RetToken <= t.Shadow[i-1].RetToken {
				add("threads", "token-monotone",
					"thread %s: frame %d token %d not above frame %d token %d",
					t.Name, i, t.Shadow[i].RetToken, i-1, t.Shadow[i-1].RetToken)
			}
		}
		for i, e := range t.Events {
			if e.Misses > e.Checks {
				add("threads", "check-coverage",
					"thread %s event %d: %d cache misses out of %d checks",
					t.Name, i, e.Misses, e.Checks)
			}
		}
	}
}

// FormatIssues renders issues one per line, grouped in layer order.
func FormatIssues(issues []Issue) string {
	order := map[string]int{}
	for i, l := range Layers {
		order[l] = i
	}
	sorted := append([]Issue(nil), issues...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return order[sorted[i].Layer] < order[sorted[j].Layer]
	})
	var b strings.Builder
	for _, i := range sorted {
		b.WriteString(i.String())
		b.WriteByte('\n')
	}
	return b.String()
}

package blockdev_test

import (
	"bytes"
	"testing"

	"lxfi/internal/blockdev"
	"lxfi/internal/core"
	"lxfi/internal/kernel"
	"lxfi/internal/mem"
)

func rig(t *testing.T) (*kernel.Kernel, *blockdev.Layer, *core.Thread) {
	t.Helper()
	k := kernel.New()
	l := blockdev.Init(k)
	l.AddDisk(1, 128)
	return k, l, k.Sys.NewThread("blk")
}

func TestBioAllocFree(t *testing.T) {
	k, l, _ := rig(t)
	bio, err := l.AllocBio(1024)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := k.Sys.AS.ReadU64(l.BioField(bio, "data"))
	if !k.Sys.Slab.Owns(mem.Addr(data)) || !k.Sys.Slab.Owns(bio) {
		t.Fatal("bio pieces not allocated")
	}
	l.FreeBio(bio)
	if k.Sys.Slab.Owns(bio) || k.Sys.Slab.Owns(mem.Addr(data)) {
		t.Fatal("bio pieces leaked")
	}
}

func TestDirectIO(t *testing.T) {
	k, l, th := rig(t)
	payload := bytes.Repeat([]byte{0xD7}, blockdev.SectorSize)
	bio, _ := l.AllocBio(blockdev.SectorSize)
	data, _ := k.Sys.AS.ReadU64(l.BioField(bio, "data"))
	must(t, k.Sys.AS.Write(mem.Addr(data), payload))
	for f, v := range map[string]uint64{"sector": 5, "rw": blockdev.WriteBio, "dev": 1} {
		must(t, k.Sys.AS.WriteU64(l.BioField(bio, f), v))
	}
	if ret, err := th.CallKernel("submit_bio", uint64(bio)); err != nil || kernel.IsErr(ret) {
		t.Fatalf("submit: %d %v", int64(ret), err)
	}
	if !bytes.Equal(l.DiskBytes(1)[5*blockdev.SectorSize:6*blockdev.SectorSize], payload) {
		t.Fatal("write did not reach the disk")
	}
	// Read it back through a fresh bio.
	rb, _ := l.AllocBio(blockdev.SectorSize)
	for f, v := range map[string]uint64{"sector": 5, "rw": blockdev.ReadBio, "dev": 1} {
		must(t, k.Sys.AS.WriteU64(l.BioField(rb, f), v))
	}
	if ret, err := th.CallKernel("submit_bio", uint64(rb)); err != nil || kernel.IsErr(ret) {
		t.Fatalf("read submit: %d %v", int64(ret), err)
	}
	rdata, _ := k.Sys.AS.ReadU64(l.BioField(rb, "data"))
	got, _ := k.Sys.AS.ReadBytes(mem.Addr(rdata), blockdev.SectorSize)
	if !bytes.Equal(got, payload) {
		t.Fatal("read mismatch")
	}
	if l.Completed() != 2 {
		t.Fatalf("completed = %d", l.Completed())
	}
}

func TestIOPastEndOfDisk(t *testing.T) {
	k, l, th := rig(t)
	bio, _ := l.AllocBio(blockdev.SectorSize)
	for f, v := range map[string]uint64{"sector": 1000, "rw": blockdev.WriteBio, "dev": 1} {
		must(t, k.Sys.AS.WriteU64(l.BioField(bio, f), v))
	}
	if ret, err := th.CallKernel("submit_bio", uint64(bio)); err != nil || !kernel.IsErr(ret) {
		t.Fatalf("out-of-range I/O accepted: %d %v", int64(ret), err)
	}
}

func TestUnknownTargetRejected(t *testing.T) {
	_, l, th := rig(t)
	if err := l.Submit(th, 0xdead, 0xbeef); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := l.RemoveTarget(th, 0xdead); err == nil {
		t.Fatal("unknown target removed")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

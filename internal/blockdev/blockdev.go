// Package blockdev implements the simulated block layer and
// device-mapper core: bios, a RAM-backed disk, and the annotated
// dm_target_type interface that the dm-crypt / dm-zero / dm-snapshot
// modules plug into.
//
// Device-mapper targets are the paper's second worked example of
// multi-principal modules (§2.1): each layered block device a module
// provides is its own principal, so compromising one dm-crypt volume
// (e.g. via a malicious USB stick) must not grant write access to the
// others.
package blockdev

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/failpoint"
	"lxfi/internal/kernel"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
)

func init() {
	failpoint.Register("blockdev.write_sector")
	failpoint.Register("blockdev.read_sector")
}

// SectorSize is the logical sector size.
const SectorSize = 512

// DevRef is the REF capability type for block devices: holding
// REF("block device", dev) is the proof a principal was granted access
// to that disk (the VFS grants it to a mount's instance principal for
// the mount's own device). The sector-write exports demand it, so a
// compromised module cannot aim dm_write_sectors at another mount's
// disk.
const DevRef = "block device"

// Layout names.
const (
	Bio      = "struct bio"
	DmTarget = "struct dm_target"
	DmOps    = "struct dm_target_type"
)

// Function-pointer types.
const (
	DmCtr = "dm_target_type.ctr"
	DmDtr = "dm_target_type.dtr"
	DmMap = "dm_target_type.map"
)

// bio.rw values.
const (
	ReadBio  = 0
	WriteBio = 1
)

// map return values.
const (
	// MapSubmitted: the target dispatched (or completed) the bio itself;
	// bio ownership stays wherever the target sent it.
	MapSubmitted = 0
	// MapRemapped: the target only rewrote the bio; ownership returns to
	// the caller, which submits it (the post(if (return == 1) ...)
	// transfer in the map annotation).
	MapRemapped = 1
)

// Write-path errors, distinguished so callers can map them onto the
// right errno (missing disk vs. bad range vs. an injected power cut).
var (
	ErrNoDisk   = errors.New("blockdev: no such disk")
	ErrBounds   = errors.New("blockdev: write outside the disk")
	ErrPowerCut = errors.New("blockdev: simulated power cut")
)

// SectorWrite is one logged disk mutation: the sector a write landed on
// and the bytes it stored. The crash-recovery tests replay prefixes of
// this log to reconstruct the disk at every possible cut point.
type SectorWrite struct {
	Sector uint64
	Data   []byte
}

// capture is the per-device write recorder: the disk image when
// StartCapture ran plus every write since, in order.
type capture struct {
	initial []byte
	log     []SectorWrite
}

// Layer is the simulated block layer.
//
// mu guards the disk and target directories (attach/detach vs. I/O
// lookup); sector contents are raw bytes, racing writes to the same
// sectors are the modules' own data race. The I/O counters are atomic so
// concurrent mounts and the writeback flusher can be profiled.
type Layer struct {
	K *kernel.Kernel

	bio  *layout.Struct
	tgt  *layout.Struct
	tops *layout.Struct

	mu sync.Mutex
	// disks maps a device id to its backing store.
	disks map[uint64][]byte
	// targets tracks live dm targets: target struct -> its type ops.
	targets map[mem.Addr]mem.Addr
	// captures holds the active write recorders, keyed by device.
	captures map[uint64]*capture
	// failAfter maps a device to its remaining write budget: once it
	// hits zero every further write fails with ErrPowerCut, freezing
	// the disk image at the cut point.
	failAfter map[uint64]*int64

	// completed counts bio_endio calls.
	completed atomic.Uint64
	// sectorReads / sectorWrites count dm_read_sectors and
	// dm_write_sectors calls — the probes the O(live) mount-recovery
	// test uses to prove a remount no longer scans the whole table.
	sectorReads  atomic.Uint64
	sectorWrites atomic.Uint64
}

// Init builds the block layer.
func Init(k *kernel.Kernel) *Layer {
	l := &Layer{
		K:         k,
		disks:     make(map[uint64][]byte),
		targets:   make(map[mem.Addr]mem.Addr),
		captures:  make(map[uint64]*capture),
		failAfter: make(map[uint64]*int64),
	}
	sys := k.Sys

	l.bio = sys.Layouts.Define(Bio,
		layout.F("sector", 8),
		layout.F("data", 8),
		layout.F("len", 8),
		layout.F("rw", 8),
		layout.F("dev", 8),
		layout.F("truesize", 8),
	)
	l.tgt = sys.Layouts.Define(DmTarget,
		layout.F("ops", 8),
		layout.F("private", 8),
		layout.F("begin", 8),
		layout.F("len", 8),
		layout.F("dev", 8),
	)
	l.tops = sys.Layouts.Define(DmOps,
		layout.F("ctr", 8),
		layout.F("dtr", 8),
		layout.F("map", 8),
	)

	// bio_caps: the bio struct plus its payload.
	sys.RegisterIterator("bio_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		bio := mem.Addr(uint64(args[0]))
		if bio == 0 {
			return nil
		}
		if err := emit(caps.WriteCap(bio, l.bio.Size)); err != nil {
			return err
		}
		data, _ := sys.AS.ReadU64(bio + mem.Addr(l.bio.Off("data")))
		size, _ := sys.AS.ReadU64(bio + mem.Addr(l.bio.Off("truesize")))
		if data != 0 && size > 0 {
			return emit(caps.WriteCap(mem.Addr(data), size))
		}
		return nil
	})

	sys.RegisterFPtrType(DmCtr,
		[]core.Param{core.P("ti", "struct dm_target *"), core.P("arg", "u64")},
		"principal(ti) pre(copy(write, ti))")
	sys.RegisterFPtrType(DmDtr,
		[]core.Param{core.P("ti", "struct dm_target *")},
		"principal(ti)")
	sys.RegisterFPtrType(DmMap,
		[]core.Param{core.P("ti", "struct dm_target *"), core.P("bio", "struct bio *")},
		"principal(ti) pre(transfer(bio_caps(bio))) "+
			"post(if (return == 1) transfer(bio_caps(bio)))")

	l.registerExports()
	return l
}

func (l *Layer) registerExports() {
	sys := l.K.Sys

	// bio_alloc: ownership of the fresh bio goes to the allocator.
	sys.RegisterKernelFunc("bio_alloc",
		[]core.Param{core.P("size", "size_t")},
		"post(if (return != 0) transfer(bio_caps(return)))",
		func(t *core.Thread, args []uint64) uint64 {
			bio, err := l.AllocBio(args[0])
			if err != nil {
				return 0
			}
			return uint64(bio)
		})

	sys.RegisterKernelFunc("bio_put",
		[]core.Param{core.P("bio", "struct bio *")},
		"pre(transfer(bio_caps(bio)))",
		func(t *core.Thread, args []uint64) uint64 {
			l.FreeBio(mem.Addr(args[0]))
			return 0
		})

	// submit_bio performs the I/O against the backing disk. The caller
	// gives up the bio (and payload) capabilities: once submitted, the
	// module must not touch the data again.
	sys.RegisterKernelFunc("submit_bio",
		[]core.Param{core.P("bio", "struct bio *")},
		"pre(transfer(bio_caps(bio)))",
		func(t *core.Thread, args []uint64) uint64 {
			if err := l.doIO(mem.Addr(args[0])); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			l.completed.Add(1)
			return 0
		})

	// dm_read_sectors is the synchronous read API dm targets use to
	// fetch data into their own buffers (dm-crypt reads ciphertext this
	// way before decrypting in place). The destination must be memory
	// the module owns.
	sys.RegisterKernelFunc("dm_read_sectors",
		[]core.Param{core.P("dev", "u64"), core.P("sector", "u64"),
			core.P("buf", "void *"), core.P("n", "size_t")},
		"pre(check(write, buf, n))",
		func(t *core.Thread, args []uint64) uint64 {
			l.sectorReads.Add(1)
			// Fault site: an injected error reads back to the module as
			// EIO, like an unreadable sector.
			if failpoint.Armed() {
				if err := failpoint.InjectArg("blockdev.read_sector", strconv.FormatUint(args[0], 10)); err != nil {
					return kernel.Err(kernel.EIO)
				}
			}
			disk := l.DiskBytes(args[0])
			if disk == nil {
				return kernel.Err(kernel.ENOENT)
			}
			// Sector and length are module-controlled; bound them before
			// the offset arithmetic can overflow past the check below.
			n := args[3]
			if args[1] > uint64(len(disk))/SectorSize || n > uint64(len(disk)) {
				return kernel.Err(kernel.EINVAL)
			}
			off := args[1] * SectorSize
			if off+n > uint64(len(disk)) {
				return kernel.Err(kernel.EINVAL)
			}
			if err := sys.AS.Write(mem.Addr(args[2]), disk[off:off+n]); err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			return 0
		})

	// dm_write_sectors is the synchronous write mirror of
	// dm_read_sectors: modules persist their own metadata (e.g. the
	// minixsim directory table) from buffers they own. Two proofs are
	// demanded: WRITE on the source buffer (it is the module's own
	// memory, not another principal's laundered bytes) and REF on the
	// device (this disk was granted to the caller — a compromised
	// module cannot overwrite another mount's disk).
	sys.RegisterKernelFunc("dm_write_sectors",
		[]core.Param{core.P("dev", "u64"), core.P("sector", "u64"),
			core.P("buf", "void *"), core.P("n", "size_t")},
		"pre(check(write, buf, n)) pre(check(ref(block device), dev))",
		func(t *core.Thread, args []uint64) uint64 {
			l.sectorWrites.Add(1)
			disk := l.DiskBytes(args[0])
			if disk == nil {
				return kernel.Err(kernel.ENOENT)
			}
			n := args[3]
			if args[1] > uint64(len(disk))/SectorSize || n > uint64(len(disk)) {
				return kernel.Err(kernel.EINVAL)
			}
			off := args[1] * SectorSize
			if off+n > uint64(len(disk)) {
				return kernel.Err(kernel.EINVAL)
			}
			buf, err := sys.AS.ReadBytes(mem.Addr(args[2]), n)
			if err != nil {
				return kernel.Err(kernel.EFAULT)
			}
			if err := l.WriteSectors(args[0], args[1], buf); err != nil {
				return kernel.Err(kernel.EIO)
			}
			return 0
		})

	// bio_endio completes a bio without touching a disk (used by targets
	// that synthesize data, like dm-zero).
	sys.RegisterKernelFunc("bio_endio",
		[]core.Param{core.P("bio", "struct bio *")},
		"pre(transfer(bio_caps(bio)))",
		func(t *core.Thread, args []uint64) uint64 {
			l.completed.Add(1)
			return 0
		})
}

// AllocBio allocates a bio plus payload buffer (trusted-side helper).
func (l *Layer) AllocBio(size uint64) (mem.Addr, error) {
	sys := l.K.Sys
	bio, err := sys.Slab.Alloc(l.bio.Size)
	if err != nil {
		return 0, err
	}
	if size == 0 {
		size = SectorSize
	}
	data, err := sys.Slab.Alloc(size)
	if err != nil {
		return 0, err
	}
	must(sys.AS.WriteU64(bio+mem.Addr(l.bio.Off("data")), uint64(data)))
	must(sys.AS.WriteU64(bio+mem.Addr(l.bio.Off("truesize")), size))
	must(sys.AS.WriteU64(bio+mem.Addr(l.bio.Off("len")), size))
	return bio, nil
}

// FreeBio releases a bio and its payload.
func (l *Layer) FreeBio(bio mem.Addr) {
	if bio == 0 {
		return
	}
	sys := l.K.Sys
	data, _ := sys.AS.ReadU64(bio + mem.Addr(l.bio.Off("data")))
	if data != 0 {
		_ = sys.Slab.Free(mem.Addr(data))
	}
	_ = sys.Slab.Free(bio)
}

// BioField returns the address of a bio field.
func (l *Layer) BioField(bio mem.Addr, f string) mem.Addr {
	return bio + mem.Addr(l.bio.Off(f))
}

// TargetField returns the address of a dm_target field.
func (l *Layer) TargetField(ti mem.Addr, f string) mem.Addr {
	return ti + mem.Addr(l.tgt.Off(f))
}

// OpsSlot returns the address of a dm_target_type slot.
func (l *Layer) OpsSlot(ops mem.Addr, f string) mem.Addr {
	return ops + mem.Addr(l.tops.Off(f))
}

// AddDisk creates a RAM-backed disk of the given size.
func (l *Layer) AddDisk(dev uint64, sectors uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disks[dev] = make([]byte, sectors*SectorSize)
}

// DiskBytes exposes a disk's backing store (nil when the disk does not
// exist). The slice is the live store — concurrent sector writes target
// disjoint ranges unless the simulated kernel itself is racing.
func (l *Layer) DiskBytes(dev uint64) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.disks[dev]
}

// RemoveDisk detaches a disk (a yanked device): subsequent I/O on dev
// fails with ENOENT. The sector data is discarded.
func (l *Layer) RemoveDisk(dev uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.disks, dev)
}

// Disks returns the ids of all attached disks.
func (l *Layer) Disks() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, 0, len(l.disks))
	for dev := range l.disks {
		out = append(out, dev)
	}
	return out
}

// WriteSectors is the single mutation path for disk contents: every
// sector write — dm_write_sectors, pc_writeback, submitted write bios —
// lands here, so the capture log sees the true write order and an armed
// power cut stops all of them at once. data may be any length; it is
// stored starting at the sector's byte offset.
func (l *Layer) WriteSectors(dev, sector uint64, data []byte) error {
	// Fault site: an injected error surfaces to the module as EIO from
	// dm_write_sectors, like a failing disk. The policy's Arg matches
	// the device id. (The Armed fast path keeps the device formatting
	// off the disarmed path.)
	if failpoint.Armed() {
		if err := failpoint.InjectArg("blockdev.write_sector", strconv.FormatUint(dev, 10)); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	disk, ok := l.disks[dev]
	if !ok {
		return ErrNoDisk
	}
	off := sector * SectorSize
	if sector > uint64(len(disk))/SectorSize || off+uint64(len(data)) > uint64(len(disk)) {
		return ErrBounds
	}
	if remaining := l.failAfter[dev]; remaining != nil {
		if *remaining <= 0 {
			return ErrPowerCut
		}
		*remaining--
	}
	copy(disk[off:], data)
	if c := l.captures[dev]; c != nil {
		c.log = append(c.log, SectorWrite{Sector: sector, Data: append([]byte{}, data...)})
	}
	return nil
}

// StartCapture snapshots the disk and begins logging every write to it.
// The crash-recovery tests run one workload op under capture, then
// rebuild the disk at every write boundary with ReplayPrefix.
func (l *Layer) StartCapture(dev uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if disk, ok := l.disks[dev]; ok {
		l.captures[dev] = &capture{initial: append([]byte{}, disk...)}
	}
}

// StopCapture ends a capture, returning the initial disk image and the
// ordered write log since StartCapture. Returns nils when no capture
// was active.
func (l *Layer) StopCapture(dev uint64) (initial []byte, log []SectorWrite) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.captures[dev]
	delete(l.captures, dev)
	if c == nil {
		return nil, nil
	}
	return c.initial, c.log
}

// ReplayPrefix builds the disk image that results from applying the
// first n logged writes to the captured initial image — the disk a
// power cut between write n and write n+1 would have left behind.
func ReplayPrefix(initial []byte, log []SectorWrite, n int) []byte {
	disk := append([]byte{}, initial...)
	if n > len(log) {
		n = len(log)
	}
	for _, w := range log[:n] {
		copy(disk[w.Sector*SectorSize:], w.Data)
	}
	return disk
}

// FailAfter arms a power cut on dev: the next n WriteSectors calls
// succeed, every later one fails with ErrPowerCut and leaves the disk
// untouched — the image freezes exactly at the cut point, which the
// coredump forensics test then extracts and remounts.
func (l *Layer) FailAfter(dev uint64, n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	budget := n
	l.failAfter[dev] = &budget
}

// ClearFail disarms a FailAfter power cut.
func (l *Layer) ClearFail(dev uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.failAfter, dev)
}

// Completed returns the number of completed bios.
func (l *Layer) Completed() uint64 { return l.completed.Load() }

// SectorIO returns the cumulative dm_read_sectors / dm_write_sectors
// call counts.
func (l *Layer) SectorIO() (reads, writes uint64) {
	return l.sectorReads.Load(), l.sectorWrites.Load()
}

// doIO executes a bio against its device.
func (l *Layer) doIO(bio mem.Addr) error {
	as := l.K.Sys.AS
	sector, _ := as.ReadU64(bio + mem.Addr(l.bio.Off("sector")))
	data, _ := as.ReadU64(bio + mem.Addr(l.bio.Off("data")))
	n, _ := as.ReadU64(bio + mem.Addr(l.bio.Off("len")))
	rw, _ := as.ReadU64(bio + mem.Addr(l.bio.Off("rw")))
	dev, _ := as.ReadU64(bio + mem.Addr(l.bio.Off("dev")))
	disk := l.DiskBytes(dev)
	if disk == nil {
		return fmt.Errorf("blockdev: no disk %d", dev)
	}
	off := sector * SectorSize
	if off+n > uint64(len(disk)) {
		return fmt.Errorf("blockdev: I/O past end of disk %d", dev)
	}
	buf := make([]byte, n)
	if rw == WriteBio {
		if err := as.Read(mem.Addr(data), buf); err != nil {
			return err
		}
		return l.WriteSectors(dev, sector, buf)
	}
	copy(buf, disk[off:off+n])
	return as.Write(mem.Addr(data), buf)
}

// CreateTarget instantiates a dm target: it allocates the dm_target,
// points it at the module's target-type ops table, and runs the
// module's constructor through the annotated indirect call.
func (l *Layer) CreateTarget(t *core.Thread, ops mem.Addr, arg, begin, length, dev uint64) (mem.Addr, error) {
	sys := l.K.Sys
	ti, err := sys.Slab.Alloc(l.tgt.Size)
	if err != nil {
		return 0, err
	}
	must(sys.AS.WriteU64(ti+mem.Addr(l.tgt.Off("ops")), uint64(ops)))
	must(sys.AS.WriteU64(ti+mem.Addr(l.tgt.Off("begin")), begin))
	must(sys.AS.WriteU64(ti+mem.Addr(l.tgt.Off("len")), length))
	must(sys.AS.WriteU64(ti+mem.Addr(l.tgt.Off("dev")), dev))
	ret, err := t.IndirectCall(l.OpsSlot(ops, "ctr"), DmCtr, uint64(ti), arg)
	if err != nil {
		return 0, err
	}
	if kernel.IsErr(ret) {
		_ = sys.Slab.Free(ti)
		return 0, fmt.Errorf("blockdev: ctr failed: errno %d", -int64(ret))
	}
	l.mu.Lock()
	l.targets[ti] = ops
	l.mu.Unlock()
	return ti, nil
}

// RemoveTarget runs the destructor and frees the target.
func (l *Layer) RemoveTarget(t *core.Thread, ti mem.Addr) error {
	l.mu.Lock()
	ops, ok := l.targets[ti]
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("blockdev: unknown target %#x", uint64(ti))
	}
	if _, err := t.IndirectCall(l.OpsSlot(ops, "dtr"), DmDtr, uint64(ti)); err != nil {
		return err
	}
	l.mu.Lock()
	delete(l.targets, ti)
	l.mu.Unlock()
	return l.K.Sys.Slab.Free(ti)
}

// Submit routes a bio through a dm target's map function; if the target
// remaps (rather than submits), the layer performs the I/O itself.
func (l *Layer) Submit(t *core.Thread, ti, bio mem.Addr) error {
	l.mu.Lock()
	ops, ok := l.targets[ti]
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("blockdev: unknown target %#x", uint64(ti))
	}
	ret, err := t.IndirectCall(l.OpsSlot(ops, "map"), DmMap, uint64(ti), uint64(bio))
	if err != nil {
		return err
	}
	switch ret {
	case MapSubmitted:
		return nil
	case MapRemapped:
		if err := l.doIO(bio); err != nil {
			return err
		}
		l.completed.Add(1)
		return nil
	default:
		return fmt.Errorf("blockdev: map failed: errno %d", -int64(ret))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

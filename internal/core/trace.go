package core

// Flight-recorder wiring: how the crossing engine feeds internal/trace.
//
// A thread's ring (t.rec) is per-CPU context like the shadow stack and
// check cache — unsynchronized, owner-written. Tracing costs one nil
// check per crossing when off; when on, one ~112-byte struct store per
// crossing plus, on the latency-sampling grid, two monotonic clock
// reads and one atomic histogram add. The shared Metrics registry is
// only touched from the hot path for those sampled observations.
//
// Lock order: the ring takes no locks at all; Metrics.Latency is
// atomic and Metrics' violation-map mutex is a leaf acquired only on
// the cold violation path (never while any monitor, caps, or vfs lock
// is wanted afterwards).

import (
	"lxfi/internal/caps"
	"lxfi/internal/mem"
	"lxfi/internal/trace"
)

// EnableTracing attaches a flight-recorder ring to every thread the
// system creates from now on. Threads that already exist are left
// untouched: attaching to a live thread would race with its owning
// goroutine, so callers enable tracing before spawning the threads
// they care about (or use Thread.EnableTrace on a thread they own).
func (s *System) EnableTracing() { s.tracing.Store(true) }

// TracingEnabled reports whether new threads get trace rings.
func (s *System) TracingEnabled() bool { return s.tracing.Load() }

// EnableTrace attaches a fresh default-sized ring to the thread and
// returns it. Owner-only, like every other mutation of per-thread
// state.
func (t *Thread) EnableTrace() *trace.Ring {
	t.rec = trace.NewRing(trace.DefaultEvents, trace.DefaultSampleEvery)
	return t.rec
}

// TraceRing returns the thread's flight-recorder ring (nil when
// tracing is off). Reading the ring is only safe from the owning
// goroutine or once the thread is quiesced (joined, or inside a hook
// that runs on the thread itself, like Monitor.OnViolationThread).
func (t *Thread) TraceRing() *trace.Ring { return t.rec }

// traceCtx carries a crossing's entry-side recorder state from
// traceBegin to traceEnd.
type traceCtx struct {
	checks  uint64
	misses  uint64
	t0      int64
	sampled bool
}

// traceBegin opens a crossing event: it snapshots the thread's
// lifetime check counters (so the exit side can attribute the delta to
// this crossing) and stamps the clock if the event falls on the
// latency-sampling grid. Callers have already checked t.rec != nil.
func (t *Thread) traceBegin() (c traceCtx) {
	c.checks = t.lifeChecks + t.pendChecks
	c.misses = t.lifeMisses + t.pendMisses
	if t.rec.Sampled() {
		c.sampled = true
		c.t0 = trace.Now()
	}
	return c
}

// traceEnd records a completed crossing. Failed crossings do not come
// here — their violation event (traceViolation) is the record.
func (t *Thread) traceEnd(kind trace.Kind, name string, m *Module, p *caps.Principal, addr mem.Addr, c traceCtx) {
	lat := int64(-1)
	if c.sampled {
		lat = trace.Now() - c.t0
		t.mon.Metrics.Latency.Observe(lat)
	}
	e := t.rec.Next()
	e.Kind = kind
	e.Name = name
	e.Module = moduleName(m)
	e.Prin = prinRef(p)
	e.Addr = uint64(addr)
	e.Epoch = t.csys.Epoch()
	e.Checks = sat16(t.lifeChecks + t.pendChecks - c.checks)
	e.Misses = sat16(t.lifeMisses + t.pendMisses - c.misses)
	e.LatencyNs = lat
}

// traceViolation records a violation event on the thread's ring (the
// guard verdict side of the recorder). Latency is never sampled here —
// the violation path is cold and has no matching entry stamp.
func (t *Thread) traceViolation(v *Violation, p *caps.Principal) {
	if t.rec == nil {
		return
	}
	t.rec.Record(trace.Event{
		Kind:      trace.KindViolation,
		Denied:    true,
		Name:      v.Op,
		Module:    v.Module,
		Prin:      prinRef(p),
		Addr:      uint64(v.Addr),
		Epoch:     t.csys.Epoch(),
		LatencyNs: -1,
		Detail:    v.Detail,
	})
}

// prinRef wraps a principal for event storage without allocating: a
// plain *caps.Principal in a pre-declared interface type is a
// pointer-shaped iface, and a nil pointer must stay a nil interface so
// snapshots can detect kernel context.
func prinRef(p *caps.Principal) trace.PrincipalRef {
	if p == nil {
		return nil
	}
	return p
}

func sat16(v uint64) uint16 {
	if v > 0xffff {
		return 0xffff
	}
	return uint16(v)
}

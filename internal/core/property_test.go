package core_test

// Property-based tests over the reference monitor as a whole: a module
// performing randomized stores must succeed exactly on the bytes an
// oracle model says it owns, and nothing else in the address space may
// change.

import (
	"testing"
	"testing/quick"

	"lxfi/internal/core"
	"lxfi/internal/mem"
)

// oracleRegion mirrors one granted WRITE region.
type oracleRegion struct {
	base mem.Addr
	size uint64
}

func (r oracleRegion) covers(a mem.Addr, n uint64) bool {
	return r.base <= a && a+mem.Addr(n) <= r.base+mem.Addr(r.size)
}

func TestRandomizedWriteEnforcementProperty(t *testing.T) {
	type probe struct {
		Region uint8  // which granted region the probe is relative to
		Delta  int16  // signed offset from the region base
		Size   uint8  // 1..8 bytes
		Val    uint64 // value to store
	}
	f := func(sizes [4]uint16, probes []probe) bool {
		f := newFixture(t, core.Enforce)
		f.sys.Mon.KillOnViolation = false // keep probing after denials

		// The module allocates a handful of buffers; the oracle records
		// what it owns (module data section + allocations, at slab class
		// granularity).
		var regions []oracleRegion
		var bufs []uint64
		m := f.loadModule(t, "fuzz", []string{"kmalloc"}, func(th *core.Thread, args []uint64) uint64 {
			switch args[0] {
			case 0:
				p, _ := th.CallKernel("kmalloc", args[1])
				bufs = append(bufs, p)
				return p
			default:
				// args[1]=addr, args[2]=size(1..8), args[3]=val
				var buf [8]byte
				for i := range buf {
					buf[i] = byte(args[3] >> (8 * i))
				}
				if err := th.Write(mem.Addr(args[1]), buf[:args[2]]); err != nil {
					return 1
				}
				return 0
			}
		})
		regions = append(regions, oracleRegion{m.Data, m.DataSize})
		for _, s := range sizes {
			sz := uint64(s%2048) + 1
			p, err := f.t.CallModule(m, "run", 0, sz)
			if err != nil || p == 0 {
				return false
			}
			regions = append(regions, oracleRegion{mem.Addr(p), mem.SizeClassFor(sz)})
		}

		if len(probes) > 64 {
			probes = probes[:64]
		}
		for _, pr := range probes {
			reg := regions[int(pr.Region)%len(regions)]
			addr := reg.base + mem.Addr(int64(pr.Delta))
			n := uint64(pr.Size%8) + 1

			// Oracle: allowed iff some owned region covers the range.
			allowed := false
			for _, r := range regions {
				if r.covers(addr, n) {
					allowed = true
					break
				}
			}

			ret, err := f.t.CallModule(m, "run", 1, uint64(addr), n, pr.Val)
			if err != nil {
				return false
			}
			got := ret == 0
			if got != allowed {
				t.Logf("addr=%#x n=%d: monitor=%v oracle=%v", uint64(addr), n, got, allowed)
				return false
			}
			if allowed {
				// The store must actually have landed.
				b, err := f.sys.AS.ReadBytes(addr, n)
				if err != nil {
					return false
				}
				for i := range b {
					if b[i] != byte(pr.Val>>(8*uint(i))) {
						return false
					}
				}
			}
		}
		// The kernel victim object must be untouched regardless.
		v, _ := f.sys.AS.ReadU64(f.victim)
		return v == 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestShadowStackDepthInvariant: after any sequence of nested calls and
// interrupts, the shadow stack returns to its prior depth.
func TestShadowStackDepthInvariant(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", []string{"kmalloc"}, func(th *core.Thread, args []uint64) uint64 {
		depth := args[0]
		if depth == 0 {
			return 0
		}
		// Nest: kernel call, then an interrupt, then recurse via a fresh
		// kernel entry into ourselves is not possible directly; emulate
		// nesting through kernel calls.
		if _, err := th.CallKernel("kmalloc", 8); err != nil {
			return 1
		}
		th.Interrupt(func(it *core.Thread) {
			_, _ = it.CallKernel("kmalloc", 8)
		})
		return 0
	})
	before := f.t.ShadowDepth()
	for depth := uint64(0); depth < 5; depth++ {
		if _, err := f.t.CallModule(m, "run", depth); err != nil {
			t.Fatal(err)
		}
		if f.t.ShadowDepth() != before {
			t.Fatalf("shadow depth leaked: %d -> %d", before, f.t.ShadowDepth())
		}
	}
}

package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lxfi/internal/mem"
	"lxfi/internal/trace"
)

// Mode selects whether LXFI enforcement is active.
type Mode uint8

// Enforcement modes.
const (
	// Off runs modules with no isolation — the "stock" kernel baseline
	// used throughout §8.
	Off Mode = iota
	// Enforce runs all LXFI guards.
	Enforce
)

func (m Mode) String() string {
	if m == Enforce {
		return "lxfi"
	}
	return "stock"
}

// Violation describes one failed LXFI check.
type Violation struct {
	Module    string
	Principal string
	Op        string // "memwrite", "call", "indcall", "annotation", "cfi", ...
	Addr      mem.Addr
	Detail    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("lxfi violation [%s, principal %s]: %s at %#x: %s",
		v.Module, v.Principal, v.Op, uint64(v.Addr), v.Detail)
}

// ErrViolation is wrapped by every violation error.
var ErrViolation = errors.New("lxfi violation")

// ErrModuleDead is returned when calling into a killed module.
var ErrModuleDead = errors.New("lxfi: module has been killed after a violation")

// DegradedError is the graceful-degradation wrapper substrates return
// while a module is quarantined: a crossing failed with ErrModuleDead
// and the substrate mapped it to the errno its syscall surface would
// produce (EIO for a dead filesystem, ENETDOWN for a dead protocol or
// driver). It unwraps to the original error, so errors.Is(err,
// ErrModuleDead) keeps holding — callers that already retry on module
// death (the writeback flusher parking dirty pages) are unaffected.
type DegradedError struct {
	Errno int64  // the errno the syscall layer surfaces (kernel package values)
	Op    string // the operation that degraded, e.g. "vfs.write"
	Err   error  // the underlying crossing error (wraps ErrModuleDead)
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("%s: degraded (errno %d): %v", e.Op, e.Errno, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// Stats counts executed guards by type, matching the guard taxonomy of
// Figure 13. Counters are atomic so benchmark harnesses may sample them
// concurrently.
type Stats struct {
	AnnotationActions atomic.Uint64 // capability grant/revoke/check from annotations
	FuncEntries       atomic.Uint64 // wrapper entries
	FuncExits         atomic.Uint64 // wrapper exits
	MemWriteChecks    atomic.Uint64 // guards before module memory writes
	IndCallAll        atomic.Uint64 // kernel indirect-call guards executed
	IndCallSlow       atomic.Uint64 // ... that took the slow (non-empty writer set) path
	IndCacheHits      atomic.Uint64 // ... answered by a bound IndGate's epoch-valid slot cache
	PrincipalSwitches atomic.Uint64
	CapGrants         atomic.Uint64
	CapRevokes        atomic.Uint64
	CapChecks         atomic.Uint64
	CapCacheHits      atomic.Uint64 // checks answered by a thread's epoch-valid cache
	FailedResolutions atomic.Uint64 // CallKernel/CallModule lookups of unknown names
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	AnnotationActions uint64
	FuncEntries       uint64
	FuncExits         uint64
	MemWriteChecks    uint64
	IndCallAll        uint64
	IndCallSlow       uint64
	IndCacheHits      uint64
	PrincipalSwitches uint64
	CapGrants         uint64
	CapRevokes        uint64
	CapChecks         uint64
	CapCacheHits      uint64
	FailedResolutions uint64
}

// Snapshot returns a copy of all counters.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		AnnotationActions: s.AnnotationActions.Load(),
		FuncEntries:       s.FuncEntries.Load(),
		FuncExits:         s.FuncExits.Load(),
		MemWriteChecks:    s.MemWriteChecks.Load(),
		IndCallAll:        s.IndCallAll.Load(),
		IndCallSlow:       s.IndCallSlow.Load(),
		IndCacheHits:      s.IndCacheHits.Load(),
		PrincipalSwitches: s.PrincipalSwitches.Load(),
		CapGrants:         s.CapGrants.Load(),
		CapRevokes:        s.CapRevokes.Load(),
		CapChecks:         s.CapChecks.Load(),
		CapCacheHits:      s.CapCacheHits.Load(),
		FailedResolutions: s.FailedResolutions.Load(),
	}
}

// Sub returns s - o, field-wise.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		AnnotationActions: s.AnnotationActions - o.AnnotationActions,
		FuncEntries:       s.FuncEntries - o.FuncEntries,
		FuncExits:         s.FuncExits - o.FuncExits,
		MemWriteChecks:    s.MemWriteChecks - o.MemWriteChecks,
		IndCallAll:        s.IndCallAll - o.IndCallAll,
		IndCallSlow:       s.IndCallSlow - o.IndCallSlow,
		IndCacheHits:      s.IndCacheHits - o.IndCacheHits,
		PrincipalSwitches: s.PrincipalSwitches - o.PrincipalSwitches,
		CapGrants:         s.CapGrants - o.CapGrants,
		CapRevokes:        s.CapRevokes - o.CapRevokes,
		CapChecks:         s.CapChecks - o.CapChecks,
		CapCacheHits:      s.CapCacheHits - o.CapCacheHits,
		FailedResolutions: s.FailedResolutions - o.FailedResolutions,
	}
}

// Monitor holds the runtime's enforcement configuration and violation
// log. The mode is atomic (it is consulted on every guard from every
// thread) and the violation log has its own mutex, a leaf lock that is
// never held while calling out.
type Monitor struct {
	mode  atomic.Uint32
	Stats Stats

	// Metrics is the flight-recorder half of the registry: the sampled
	// crossing-latency histogram and per-module violation counters.
	Metrics *trace.Metrics

	vmu        sync.Mutex
	violations []*Violation

	// KillOnViolation controls whether a violating module is killed
	// (default true). The paper's runtime panics the kernel; killing the
	// module keeps the simulation testable while preserving "the
	// operation does not happen".
	KillOnViolation bool

	// OnViolation, if set, is called for every violation (e.g. to log).
	OnViolation func(*Violation)

	// OnViolationThread, if set, is called for every violation on the
	// violating thread's own goroutine, after the module has been killed.
	// Because it runs on the thread itself, the hook may safely read the
	// thread's unsynchronized per-CPU state (shadow stack, trace ring) —
	// which is what the coredump wiring uses to capture forensic dumps.
	OnViolationThread func(*Violation, *Thread)

	// DisableWriterSetOpt turns off the writer-set fast path of §4.1 so
	// every kernel indirect call takes the full capability check. It
	// exists for the ablation benchmarks: correctness is unchanged, only
	// cost.
	DisableWriterSetOpt bool

	// subs are the multi-listener complement to the single
	// OnViolationThread slot (which the forensics rigs own); the module
	// supervisor subscribes here so both can observe the same death.
	subMu  sync.Mutex
	subSeq int
	subs   map[int]func(*Violation, *Thread)
}

// NewMonitor returns a monitor in Off mode.
func NewMonitor() *Monitor {
	return &Monitor{KillOnViolation: true, Metrics: trace.NewMetrics()}
}

// Mode returns the current enforcement mode.
func (m *Monitor) Mode() Mode { return Mode(m.mode.Load()) }

// SetMode switches enforcement on or off.
func (m *Monitor) SetMode(mode Mode) { m.mode.Store(uint32(mode)) }

// Enforcing reports whether guards are active.
func (m *Monitor) Enforcing() bool { return Mode(m.mode.Load()) == Enforce }

// Violations returns a snapshot of all recorded violations.
func (m *Monitor) Violations() []*Violation {
	m.vmu.Lock()
	defer m.vmu.Unlock()
	return append([]*Violation(nil), m.violations...)
}

// LastViolation returns the most recent violation, or nil.
func (m *Monitor) LastViolation() *Violation {
	m.vmu.Lock()
	defer m.vmu.Unlock()
	if len(m.violations) == 0 {
		return nil
	}
	return m.violations[len(m.violations)-1]
}

// ResetViolations clears the violation log.
func (m *Monitor) ResetViolations() {
	m.vmu.Lock()
	defer m.vmu.Unlock()
	m.violations = nil
}

// ResetStats zeroes the guard counters and the metrics registry
// (ResetViolations leaves both intact). Callers must quiesce concurrent
// guard execution first: the counters are reset one atomic at a time,
// so a racing guard could split its increments across the reset.
// Scenario harnesses use it between runs to scope deltas to one run.
func (m *Monitor) ResetStats() {
	m.Stats.AnnotationActions.Store(0)
	m.Stats.FuncEntries.Store(0)
	m.Stats.FuncExits.Store(0)
	m.Stats.MemWriteChecks.Store(0)
	m.Stats.IndCallAll.Store(0)
	m.Stats.IndCallSlow.Store(0)
	m.Stats.IndCacheHits.Store(0)
	m.Stats.PrincipalSwitches.Store(0)
	m.Stats.CapGrants.Store(0)
	m.Stats.CapRevokes.Store(0)
	m.Stats.CapChecks.Store(0)
	m.Stats.CapCacheHits.Store(0)
	m.Stats.FailedResolutions.Store(0)
	m.Metrics.Reset()
}

// SubscribeViolationThread registers fn to run on every violation, on
// the violating thread's goroutine, after OnViolationThread. Unlike
// that single slot any number of subscribers may coexist. The returned
// cancel removes the subscription; it is safe to call more than once.
func (m *Monitor) SubscribeViolationThread(fn func(*Violation, *Thread)) (cancel func()) {
	m.subMu.Lock()
	if m.subs == nil {
		m.subs = make(map[int]func(*Violation, *Thread))
	}
	id := m.subSeq
	m.subSeq++
	m.subs[id] = fn
	m.subMu.Unlock()
	return func() {
		m.subMu.Lock()
		delete(m.subs, id)
		m.subMu.Unlock()
	}
}

// notifyThread delivers a violation to the single-slot hook and every
// subscriber, on the violating goroutine (the cold path — the copy is
// fine).
func (m *Monitor) notifyThread(v *Violation, t *Thread) {
	if h := m.OnViolationThread; h != nil {
		h(v, t)
	}
	m.notifySubscribers(v, t)
}

// notifySubscribers delivers only to subscribers. The stock-mode oops
// path uses it directly: a panic in an unenforced module still kills
// the module (and the supervisor must hear about it), but no violation
// is recorded — there is no policy engine doing the attributing.
func (m *Monitor) notifySubscribers(v *Violation, t *Thread) {
	m.subMu.Lock()
	fns := make([]func(*Violation, *Thread), 0, len(m.subs))
	for _, fn := range m.subs {
		fns = append(fns, fn)
	}
	m.subMu.Unlock()
	for _, fn := range fns {
		fn(v, t)
	}
}

func (m *Monitor) record(v *Violation) error {
	m.Metrics.Violation(v.Module)
	m.vmu.Lock()
	m.violations = append(m.violations, v)
	m.vmu.Unlock()
	if m.OnViolation != nil {
		m.OnViolation(v)
	}
	return fmt.Errorf("%w: %s", ErrViolation, v.Error())
}

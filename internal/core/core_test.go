package core_test

import (
	"errors"
	"strings"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/core"
	"lxfi/internal/layout"
	"lxfi/internal/mem"
)

// fixture builds a small simulated kernel with the support functions the
// tests need: a spin_lock_init-alike, kmalloc/kfree, and an annotated
// ops table for indirect calls.
type fixture struct {
	sys    *core.System
	t      *core.Thread
	victim mem.Addr // a kernel object modules must not touch
}

func newFixture(tb testing.TB, mode core.Mode) *fixture {
	tb.Helper()
	sys := core.NewSystem()
	sys.Mon.SetMode(mode)
	sys.Layouts.Define("struct widget", layout.F("lock", 8), layout.F("owner", 8))

	// spin_lock_init: writes zero through its pointer argument — the §1
	// motivating example for API integrity.
	sys.RegisterKernelFunc("spin_lock_init",
		[]core.Param{core.P("lock", "u64 *")},
		"pre(check(write, lock, 8))",
		func(t *core.Thread, args []uint64) uint64 {
			if err := t.Sys.AS.WriteU64(mem.Addr(args[0]), 0); err != nil {
				return ^uint64(0)
			}
			return 0
		})

	sys.RegisterKernelFunc("kmalloc",
		[]core.Param{core.P("size", "size_t")},
		"post(if (return != 0) transfer(alloc_caps(return)))",
		func(t *core.Thread, args []uint64) uint64 {
			a, err := t.Sys.Slab.Alloc(args[0])
			if err != nil {
				return 0
			}
			return uint64(a)
		})

	sys.RegisterIterator("alloc_caps", func(t *core.Thread, args []int64, emit func(caps.Cap) error) error {
		addr := mem.Addr(uint64(args[0]))
		size, ok := t.Sys.Slab.ObjectSize(addr)
		if !ok {
			// Dead or forged pointer: emit a probe the caller cannot own.
			return emit(caps.WriteCap(addr, 1))
		}
		return emit(caps.WriteCap(addr, size))
	})
	sys.RegisterKernelFunc("kfree",
		[]core.Param{core.P("ptr", "void *")},
		"pre(transfer(alloc_caps(ptr)))",
		func(t *core.Thread, args []uint64) uint64 {
			_ = t.Sys.Slab.Free(mem.Addr(args[0]))
			return 0
		})

	sys.RegisterKernelFunc("printk", []core.Param{core.P("msg", "const char *")}, "",
		func(t *core.Thread, args []uint64) uint64 { return 0 })

	sys.RegisterUnannotatedKernelFunc("forgotten_fn", nil,
		func(t *core.Thread, args []uint64) uint64 { return 0 })

	sys.RegisterFPtrType("ops.handler",
		[]core.Param{core.P("dev", "struct widget *"), core.P("n", "int")},
		"principal(dev)")

	th := sys.NewThread("test")
	f := &fixture{sys: sys, t: th}
	f.victim = sys.Statics.Alloc(64, 8)
	if err := sys.AS.WriteU64(f.victim, 1000); err != nil {
		tb.Fatal(err)
	}
	return f
}

// loadModule loads a module with one entry point "run" that executes fn.
func (f *fixture) loadModule(tb testing.TB, name string, imports []string, fn core.Impl) *core.Module {
	tb.Helper()
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     name,
		Imports:  imports,
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{Name: "run", Params: []core.Param{core.P("arg", "u64")}, Impl: fn},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestModuleWriteOwnData(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		mod := th.CurrentModule()
		if err := th.WriteU64(mod.Data+8, 42); err != nil {
			return 1
		}
		return 0
	})
	ret, err := f.t.CallModule(m, "run", 0)
	if err != nil || ret != 0 {
		t.Fatalf("ret=%d err=%v", ret, err)
	}
	v, _ := f.sys.AS.ReadU64(m.Data + 8)
	if v != 42 {
		t.Fatalf("data = %d", v)
	}
}

func TestModuleWriteOutsideDataBlocked(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		if err := th.WriteU64(mem.Addr(args[0]), 0); err != nil {
			return 1 // blocked
		}
		return 0
	})
	ret, err := f.t.CallModule(m, "run", uint64(f.victim))
	if ret != 1 {
		t.Fatalf("write was not blocked (ret=%d, err=%v)", ret, err)
	}
	if v, _ := f.sys.AS.ReadU64(f.victim); v != 1000 {
		t.Fatalf("victim corrupted: %d", v)
	}
	if !m.Dead() {
		t.Fatal("module should be killed after violation")
	}
	if f.sys.Mon.LastViolation().Op != "memwrite" {
		t.Fatalf("violation = %+v", f.sys.Mon.LastViolation())
	}
	// Subsequent calls into the dead module fail.
	if _, err := f.t.CallModule(m, "run", 0); !errors.Is(err, core.ErrModuleDead) {
		t.Fatalf("dead module call: %v", err)
	}
}

func TestStockModeAllowsEverything(t *testing.T) {
	f := newFixture(t, core.Off)
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		if err := th.WriteU64(mem.Addr(args[0]), 0); err != nil {
			return 1
		}
		return 0
	})
	ret, err := f.t.CallModule(m, "run", uint64(f.victim))
	if err != nil || ret != 0 {
		t.Fatalf("stock write failed: ret=%d err=%v", ret, err)
	}
	if v, _ := f.sys.AS.ReadU64(f.victim); v != 0 {
		t.Fatal("stock kernel should have allowed the write")
	}
}

func TestSpinLockInitAttack(t *testing.T) {
	// The §1 example: a module passes the address of a privileged kernel
	// field to spin_lock_init to zero it. The pre(check(write,...))
	// annotation blocks it under LXFI.
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", []string{"spin_lock_init"}, func(th *core.Thread, args []uint64) uint64 {
		_, err := th.CallKernel("spin_lock_init", args[0])
		if err != nil {
			return 1
		}
		return 0
	})
	// Legitimate use: module-owned memory (its data section).
	if ret, err := f.t.CallModule(m, "run", uint64(m.Data)); err != nil || ret != 0 {
		t.Fatalf("legitimate spin_lock_init blocked: ret=%d err=%v", ret, err)
	}
	// Attack: pointer to a kernel object.
	ret, _ := f.t.CallModule(m, "run", uint64(f.victim))
	if ret != 1 {
		t.Fatal("spin_lock_init attack not blocked")
	}
	if v, _ := f.sys.AS.ReadU64(f.victim); v != 1000 {
		t.Fatal("victim was zeroed")
	}
}

func TestCallWithoutImportBlocked(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", []string{"printk"}, func(th *core.Thread, args []uint64) uint64 {
		if _, err := th.CallKernel("spin_lock_init", uint64(th.CurrentModule().Data)); err != nil {
			return 1
		}
		return 0
	})
	ret, _ := f.t.CallModule(m, "run", 0)
	if ret != 1 {
		t.Fatal("call to non-imported function not blocked")
	}
	if !strings.Contains(f.sys.Mon.LastViolation().Detail, "CALL capability") {
		t.Fatalf("violation = %v", f.sys.Mon.LastViolation())
	}
}

func TestUnannotatedFunctionSafeDefault(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", []string{"forgotten_fn"}, func(th *core.Thread, args []uint64) uint64 {
		if _, err := th.CallKernel("forgotten_fn"); err != nil {
			return 1
		}
		return 0
	})
	ret, _ := f.t.CallModule(m, "run", 0)
	if ret != 1 {
		t.Fatal("unannotated kernel function was callable")
	}
}

func TestKmallocGrantsAndKfreeRevokes(t *testing.T) {
	f := newFixture(t, core.Enforce)
	var got mem.Addr
	m := f.loadModule(t, "m", []string{"kmalloc", "kfree"}, func(th *core.Thread, args []uint64) uint64 {
		switch args[0] {
		case 0: // allocate and write
			p, err := th.CallKernel("kmalloc", 128)
			if err != nil || p == 0 {
				return 1
			}
			got = mem.Addr(p)
			if err := th.WriteU64(got, 7); err != nil {
				return 2
			}
			return 0
		case 1: // free
			if _, err := th.CallKernel("kfree", uint64(got)); err != nil {
				return 1
			}
			return 0
		default: // write after free
			if err := th.WriteU64(got, 9); err != nil {
				return 1
			}
			return 0
		}
	})
	if ret, err := f.t.CallModule(m, "run", 0); err != nil || ret != 0 {
		t.Fatalf("alloc+write: ret=%d err=%v", ret, err)
	}
	if ret, err := f.t.CallModule(m, "run", 1); err != nil || ret != 0 {
		t.Fatalf("free: ret=%d err=%v", ret, err)
	}
	// After kfree's transfer, the WRITE capability is gone system-wide.
	ret, _ := f.t.CallModule(m, "run", 2)
	if ret != 1 {
		t.Fatal("use-after-free write not blocked")
	}
}

func TestKmallocShortAllocationGrant(t *testing.T) {
	// The CAN BCM pattern: the capability covers only what was actually
	// requested, so overflowing writes beyond it are blocked.
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", []string{"kmalloc"}, func(th *core.Thread, args []uint64) uint64 {
		p, err := th.CallKernel("kmalloc", 16)
		if err != nil || p == 0 {
			return 99
		}
		if err := th.WriteU64(mem.Addr(p)+8, 1); err != nil {
			return 1 // in-bounds blocked?!
		}
		if err := th.WriteU64(mem.Addr(p)+16, 1); err != nil {
			return 2 // out-of-bounds blocked (expected)
		}
		return 0
	})
	ret, _ := f.t.CallModule(m, "run", 0)
	if ret != 2 {
		t.Fatalf("overflow write: ret=%d (want 2)", ret)
	}
}

func TestPrincipalAnnotationSeparatesInstances(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     "drv",
		Imports:  []string{"kmalloc"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name:   "attach",
				Params: []core.Param{core.P("dev", "struct widget *")},
				Annot:  "principal(dev)",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					p, err := th.CallKernel("kmalloc", 64)
					if err != nil || p == 0 {
						return 0
					}
					return p // per-instance buffer
				},
			},
			{
				Name:   "poke",
				Params: []core.Param{core.P("dev", "struct widget *"), core.P("buf", "u64")},
				Annot:  "principal(dev)",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if err := th.WriteU64(mem.Addr(args[1]), 5); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	devA, devB := uint64(0x1000), uint64(0x2000)
	bufA, err := f.t.CallModule(m, "attach", devA)
	if err != nil || bufA == 0 {
		t.Fatalf("attach A: %v", err)
	}
	// Instance A can write its own buffer.
	if ret, err := f.t.CallModule(m, "poke", devA, bufA); err != nil || ret != 0 {
		t.Fatalf("A poke own buffer: ret=%d err=%v", ret, err)
	}
	// Instance B cannot write A's buffer: its principal lacks the cap.
	ret, _ := f.t.CallModule(m, "poke", devB, bufA)
	if ret != 1 {
		t.Fatal("instance isolation breached: B wrote A's buffer")
	}
}

func TestGlobalPrincipalSwitch(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     "drv",
		Imports:  []string{"kmalloc"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name:   "attach",
				Params: []core.Param{core.P("dev", "struct widget *")},
				Annot:  "principal(dev)",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					p, _ := th.CallKernel("kmalloc", 64)
					return p
				},
			},
			{
				Name:   "sweep",
				Params: []core.Param{core.P("dev", "struct widget *"), core.P("buf", "u64")},
				Annot:  "principal(dev)",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					// Cross-instance operation: requires the global
					// principal (Guideline 6).
					restore, err := th.SwitchGlobal()
					if err != nil {
						return 2
					}
					defer restore()
					if err := th.WriteU64(mem.Addr(args[1]), 0); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bufA, _ := f.t.CallModule(m, "attach", 0x1000)
	ret, err := f.t.CallModule(m, "sweep", 0x2000, bufA)
	if err != nil || ret != 0 {
		t.Fatalf("global principal should access sibling caps: ret=%d err=%v", ret, err)
	}
}

func TestPrincAliasRequiresAndWorks(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     "drv",
		Imports:  []string{"kmalloc"},
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name:   "probe",
				Params: []core.Param{core.P("pcidev", "struct widget *"), core.P("ndev", "u64")},
				Annot:  "principal(pcidev) pre(copy(ref(struct widget), pcidev))",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					// Fig. 4 lines 72-73: check then alias.
					if err := th.LxfiCheck(caps.RefCap("struct widget", mem.Addr(args[0]))); err != nil {
						return 1
					}
					if err := th.PrincAlias(mem.Addr(args[0]), mem.Addr(args[1])); err != nil {
						return 2
					}
					p, _ := th.CallKernel("kmalloc", 32)
					return p
				},
			},
			{
				Name:   "xmit",
				Params: []core.Param{core.P("ndev", "u64"), core.P("buf", "u64")},
				Annot:  "principal(ndev)",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if err := th.WriteU64(mem.Addr(args[1]), 1); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pcidev, ndev := uint64(0xAAA0), uint64(0xBBB0)
	buf, err := f.t.CallModule(m, "probe", pcidev, ndev)
	if err != nil || buf == 0 {
		t.Fatalf("probe: buf=%d err=%v", buf, err)
	}
	// The capability was acquired under the pcidev name; the alias makes
	// it reachable under the ndev name.
	if ret, err := f.t.CallModule(m, "xmit", ndev, buf); err != nil || ret != 0 {
		t.Fatalf("alias did not unify principals: ret=%d err=%v", ret, err)
	}
}

func TestPostConditionalTransferOnError(t *testing.T) {
	// Fig. 4: post(if (return < 0) transfer(ref(...), pcidev)) — on
	// error the REF capability goes back to the caller.
	f := newFixture(t, core.Enforce)
	f.sys.RegisterFPtrType("pci_driver.probe",
		[]core.Param{core.P("pcidev", "struct widget *")},
		"principal(pcidev) pre(copy(ref(struct widget), pcidev)) "+
			"post(if (return < 0) transfer(ref(struct widget), pcidev))")
	fail := uint64(0)
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     "drv",
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "probe", Type: "pci_driver.probe",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if fail != 0 {
						return ^uint64(0) // -1
					}
					return 0
				},
			},
			{
				Name:   "has_ref",
				Params: []core.Param{core.P("pcidev", "struct widget *")},
				Annot:  "principal(pcidev)",
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if th.LxfiCheck(caps.RefCap("struct widget", mem.Addr(args[0]))) != nil {
						return 0
					}
					return 1
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := uint64(0x7000)
	// Successful probe: module keeps the REF capability.
	if _, err := f.t.CallModule(m, "probe", dev); err != nil {
		t.Fatal(err)
	}
	if ret, _ := f.t.CallModule(m, "has_ref", dev); ret != 1 {
		t.Fatal("REF capability missing after successful probe")
	}
	// Failing probe on a second device: capability is transferred back.
	fail = 1
	dev2 := uint64(0x8000)
	if _, err := f.t.CallModule(m, "probe", dev2); err != nil {
		t.Fatal(err)
	}
	if ret, _ := f.t.CallModule(m, "has_ref", dev2); ret != 0 {
		t.Fatal("REF capability retained after failed probe")
	}
}

func TestIndirectCallFastPath(t *testing.T) {
	f := newFixture(t, core.Enforce)
	// A slot only the kernel ever wrote: fast path, no capability check.
	slot := f.sys.Statics.Alloc(8, 8)
	fn, _ := f.sys.FuncByName("printk")
	if err := f.sys.AS.WriteU64(slot, uint64(fn.Addr)); err != nil {
		t.Fatal(err)
	}
	before := f.sys.Mon.Stats.Snapshot()
	if _, err := f.t.IndirectCall(slot, "ops.handler", 0, 0); err != nil {
		t.Fatal(err)
	}
	d := f.sys.Mon.Stats.Snapshot().Sub(before)
	if d.IndCallAll != 1 || d.IndCallSlow != 0 {
		t.Fatalf("fast path not taken: %+v", d)
	}
}

func TestIndirectCallModulePointerChecked(t *testing.T) {
	f := newFixture(t, core.Enforce)
	var handler mem.Addr
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     "drv",
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "handler", Type: "ops.handler",
				Impl: func(th *core.Thread, args []uint64) uint64 { return 77 },
			},
			{
				Name:   "install",
				Params: []core.Param{core.P("slot", "u64"), core.P("fn", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if err := th.WriteU64(mem.Addr(args[0]), args[1]); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	handler = m.Funcs["handler"].Addr
	// The slot lives in the module's data section (module-writable).
	slot := m.Data + 256

	// Legitimate: module installs a pointer to its own annotated handler.
	if ret, err := f.t.CallModule(m, "install", uint64(slot), uint64(handler)); err != nil || ret != 0 {
		t.Fatalf("install: ret=%d err=%v", ret, err)
	}
	before := f.sys.Mon.Stats.Snapshot()
	ret, err := f.t.IndirectCall(slot, "ops.handler", 0x1234, 5)
	if err != nil || ret != 77 {
		t.Fatalf("indirect call: ret=%d err=%v", ret, err)
	}
	d := f.sys.Mon.Stats.Snapshot().Sub(before)
	if d.IndCallSlow != 1 {
		t.Fatalf("slow path expected for module-writable slot: %+v", d)
	}

	// Attack: module redirects the slot to a kernel function it cannot
	// call (no CALL capability for spin_lock_init).
	target, _ := f.sys.FuncByName("spin_lock_init")
	if ret, err := f.t.CallModule(m, "install", uint64(slot), uint64(target.Addr)); err != nil || ret != 0 {
		t.Fatalf("install attack ptr: ret=%d err=%v", ret, err)
	}
	if _, err := f.t.IndirectCall(slot, "ops.handler", uint64(f.victim), 0); !errors.Is(err, core.ErrViolation) {
		t.Fatalf("indirect call to unauthorized target not blocked: %v", err)
	}
	if !m.Dead() {
		t.Fatal("module should be killed")
	}
}

func TestIndirectCallUserPointerBlocked(t *testing.T) {
	f := newFixture(t, core.Enforce)
	escalated := false
	user := f.sys.RegisterUserFunc("payload", func(th *core.Thread, args []uint64) uint64 {
		escalated = true
		return 0
	})
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     "drv",
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name:   "install",
				Params: []core.Param{core.P("slot", "u64"), core.P("fn", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					if err := th.WriteU64(mem.Addr(args[0]), args[1]); err != nil {
						return 1
					}
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	slot := m.Data + 64
	if ret, err := f.t.CallModule(m, "install", uint64(slot), uint64(user.Addr)); err != nil || ret != 0 {
		t.Fatalf("install: ret=%d err=%v", ret, err)
	}
	if _, err := f.t.IndirectCall(slot, "ops.handler", 0, 0); !errors.Is(err, core.ErrViolation) {
		t.Fatalf("user-space pointer call not blocked: %v", err)
	}
	if escalated {
		t.Fatal("payload ran")
	}
}

func TestIndirectCallUserPointerEscalatesWhenStock(t *testing.T) {
	f := newFixture(t, core.Off)
	escalated := false
	user := f.sys.RegisterUserFunc("payload", func(th *core.Thread, args []uint64) uint64 {
		escalated = true
		return 0
	})
	m, _ := f.sys.LoadModule(core.ModuleSpec{
		Name: "drv", DataSize: 4096,
		Funcs: []core.FuncSpec{{
			Name:   "install",
			Params: []core.Param{core.P("slot", "u64"), core.P("fn", "u64")},
			Impl: func(th *core.Thread, args []uint64) uint64 {
				_ = th.WriteU64(mem.Addr(args[0]), args[1])
				return 0
			},
		}},
	})
	slot := m.Data + 64
	_, _ = f.t.CallModule(m, "install", uint64(slot), uint64(user.Addr))
	if _, err := f.t.IndirectCall(slot, "ops.handler", 0, 0); err != nil {
		t.Fatalf("stock kernel should have jumped to user code: %v", err)
	}
	if !escalated {
		t.Fatal("stock kernel did not run the payload")
	}
}

func TestIndirectCallAnnotationMismatch(t *testing.T) {
	f := newFixture(t, core.Enforce)
	f.sys.RegisterFPtrType("ops.other",
		[]core.Param{core.P("x", "u64")},
		"pre(check(write, x, 8))")
	m, err := f.sys.LoadModule(core.ModuleSpec{
		Name:     "drv",
		DataSize: 4096,
		Funcs: []core.FuncSpec{
			{
				Name: "handler", Type: "ops.handler",
				Impl: func(th *core.Thread, args []uint64) uint64 { return 1 },
			},
			{
				Name:   "install",
				Params: []core.Param{core.P("slot", "u64"), core.P("fn", "u64")},
				Impl: func(th *core.Thread, args []uint64) uint64 {
					_ = th.WriteU64(mem.Addr(args[0]), args[1])
					return 0
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	slot := m.Data + 128
	_, _ = f.t.CallModule(m, "install", uint64(slot), uint64(m.Funcs["handler"].Addr))
	// Calling through a slot typed with *different* annotations must be
	// rejected: the module cannot change a function's effective contract
	// by storing it in a differently-annotated pointer (§4.1).
	if _, err := f.t.IndirectCall(slot, "ops.other", 0); !errors.Is(err, core.ErrViolation) {
		t.Fatalf("annotation laundering not blocked: %v", err)
	}
}

func TestAnnotationPropagationConflict(t *testing.T) {
	f := newFixture(t, core.Enforce)
	_, err := f.sys.LoadModule(core.ModuleSpec{
		Name: "bad",
		Funcs: []core.FuncSpec{{
			Name:  "handler",
			Type:  "ops.handler",
			Annot: "principal(dev) pre(check(write, dev, 8))", // conflicts
			Impl:  func(th *core.Thread, args []uint64) uint64 { return 0 },
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting annotations") {
		t.Fatalf("conflicting annotations accepted: %v", err)
	}
}

func TestReturnCFI(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		th.TamperShadow() // simulate a smashed return address
		return 0
	})
	if _, err := f.t.CallModule(m, "run", 0); !errors.Is(err, core.ErrViolation) {
		t.Fatalf("corrupted return address not detected: %v", err)
	}
	if f.sys.Mon.LastViolation().Op != "cfi" {
		t.Fatalf("violation = %+v", f.sys.Mon.LastViolation())
	}
}

func TestInterruptSavesPrincipal(t *testing.T) {
	f := newFixture(t, core.Enforce)
	var sawKernel bool
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		before := th.CurrentPrincipal()
		th.Interrupt(func(it *core.Thread) {
			sawKernel = it.InKernel()
		})
		if th.CurrentPrincipal() != before {
			return 1
		}
		return 0
	})
	ret, err := f.t.CallModule(m, "run", 0)
	if err != nil || ret != 0 {
		t.Fatalf("principal not restored after interrupt: ret=%d err=%v", ret, err)
	}
	if !sawKernel {
		t.Fatal("interrupt handler should run in kernel context")
	}
}

func TestGuardStatsCounting(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", []string{"kmalloc"}, func(th *core.Thread, args []uint64) uint64 {
		p, _ := th.CallKernel("kmalloc", 64)
		_ = th.WriteU64(mem.Addr(p), 1)
		_ = th.WriteU64(mem.Addr(p)+8, 2)
		return 0
	})
	before := f.sys.Mon.Stats.Snapshot()
	if _, err := f.t.CallModule(m, "run", 0); err != nil {
		t.Fatal(err)
	}
	d := f.sys.Mon.Stats.Snapshot().Sub(before)
	if d.FuncEntries != 2 || d.FuncExits != 2 { // wrapper for run + kmalloc
		t.Fatalf("entries/exits = %d/%d", d.FuncEntries, d.FuncExits)
	}
	if d.MemWriteChecks != 2 {
		t.Fatalf("memwrite checks = %d", d.MemWriteChecks)
	}
	if d.AnnotationActions != 1 { // kmalloc post transfer
		t.Fatalf("annotation actions = %d", d.AnnotationActions)
	}
	if d.PrincipalSwitches != 1 {
		t.Fatalf("principal switches = %d", d.PrincipalSwitches)
	}
}

func TestStockModeNoGuards(t *testing.T) {
	f := newFixture(t, core.Off)
	m := f.loadModule(t, "m", []string{"kmalloc"}, func(th *core.Thread, args []uint64) uint64 {
		p, _ := th.CallKernel("kmalloc", 64)
		_ = th.WriteU64(mem.Addr(p), 1)
		return 0
	})
	before := f.sys.Mon.Stats.Snapshot()
	if _, err := f.t.CallModule(m, "run", 0); err != nil {
		t.Fatal(err)
	}
	d := f.sys.Mon.Stats.Snapshot().Sub(before)
	if d.MemWriteChecks+d.FuncEntries+d.AnnotationActions != 0 {
		t.Fatalf("stock mode executed guards: %+v", d)
	}
}

func TestModuleIndirectCallViaCallAddr(t *testing.T) {
	f := newFixture(t, core.Enforce)
	f.sys.RegisterFPtrType("callback", []core.Param{core.P("arg", "u64")}, "")
	cb := f.sys.RegisterKernelFunc("the_callback", []core.Param{core.P("arg", "u64")}, "",
		func(th *core.Thread, args []uint64) uint64 { return args[0] + 1 })
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 {
		ret, err := th.CallAddr(mem.Addr(args[0]), "callback", 41)
		if err != nil {
			return 0
		}
		return ret
	})
	// Without a CALL capability for the callback, the jump is blocked.
	if ret, _ := f.t.CallModule(m, "run", uint64(cb.Addr)); ret != 0 {
		t.Fatal("module called a callback it has no CALL capability for")
	}
	// Grant the capability (as a kernel API handing out a callback would
	// via a copy(call, ...) annotation) and retry.
	m2 := f.loadModule(t, "m2", nil, func(th *core.Thread, args []uint64) uint64 {
		ret, err := th.CallAddr(mem.Addr(args[0]), "callback", 41)
		if err != nil {
			return 0
		}
		return ret
	})
	f.sys.Caps.Grant(m2.Set.Shared(), caps.CallCap(cb.Addr))
	if ret, err := f.t.CallModule(m2, "run", uint64(cb.Addr)); err != nil || ret != 42 {
		t.Fatalf("authorized callback failed: ret=%d err=%v", ret, err)
	}
}

func TestLoadModuleErrors(t *testing.T) {
	f := newFixture(t, core.Enforce)
	if _, err := f.sys.LoadModule(core.ModuleSpec{Name: "x", Imports: []string{"nope"}}); err == nil {
		t.Fatal("unknown import accepted")
	}
	if _, err := f.sys.LoadModule(core.ModuleSpec{
		Name:  "x",
		Funcs: []core.FuncSpec{{Name: "f", Type: "ghost.type"}},
	}); err == nil {
		t.Fatal("unknown fptr type accepted")
	}
	if _, err := f.sys.LoadModule(core.ModuleSpec{Name: "dup"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.sys.LoadModule(core.ModuleSpec{Name: "dup"}); err == nil {
		t.Fatal("duplicate module accepted")
	}
}

func TestUnloadModule(t *testing.T) {
	f := newFixture(t, core.Enforce)
	m := f.loadModule(t, "m", nil, func(th *core.Thread, args []uint64) uint64 { return 0 })
	addr := m.Funcs["run"].Addr
	f.sys.UnloadModule("m")
	if _, ok := f.sys.FuncByAddr(addr); ok {
		t.Fatal("function survived unload")
	}
	if _, ok := f.sys.Module("m"); ok {
		t.Fatal("module survived unload")
	}
}

package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"lxfi/internal/caps"
	"lxfi/internal/mem"
)

// TestCachedThenRevokedWriteDenied is the deterministic security test
// for the per-thread check cache: a WRITE verdict sits warm in the
// thread's cache, the capability is revoked (transfer semantics), and
// the very next identical check on the same thread must deny. This is
// the unit-level version of the StaleCapReplay exploit scenario.
func TestCachedThenRevokedWriteDenied(t *testing.T) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	th := s.NewThread("victim")
	ms := s.Caps.LoadModule("m")
	p := ms.Instance(0x1000)
	addr := mem.Addr(0xffff880000020000)
	c := caps.WriteCap(addr, mem.PageSize)

	s.Caps.Grant(p, c)
	if !th.CheckCached(p, c) {
		t.Fatal("granted WRITE not visible")
	}
	// The verdict is now cached; prove it (second check hits).
	if !th.CheckCached(p, c) {
		t.Fatal("cached WRITE not visible")
	}
	s.Caps.RevokeAll(c)
	if th.CheckCached(p, c) {
		t.Fatal("SECURITY: revoked WRITE served from the check cache")
	}
	// Sub-ranges and re-grants behave too.
	if th.CheckCached(p, caps.WriteCap(addr+8, 8)) {
		t.Fatal("revoked sub-range still passes")
	}
	s.Caps.Grant(p, c)
	if !th.CheckCached(p, c) {
		t.Fatal("re-granted WRITE not visible (stale deny cached)")
	}
}

// TestCachedVerdictsAreRecycledAcrossKinds pins the packed cache-entry
// encoding: a CALL verdict for an address must never answer a WRITE
// probe at the same address, and an oversized WRITE probe must never
// alias a packed kind tag.
func TestCachedVerdictsAreRecycledAcrossKinds(t *testing.T) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	th := s.NewThread("t")
	p := s.Caps.LoadModule("m").Instance(0x1)
	addr := mem.Addr(0xffff880000030000)

	s.Caps.Grant(p, caps.CallCap(addr))
	if !th.CheckCached(p, caps.CallCap(addr)) {
		t.Fatal("CALL not visible")
	}
	if th.CheckCached(p, caps.WriteCap(addr, 8)) {
		t.Fatal("CALL verdict answered a WRITE probe")
	}
	// kind<<sizeKindShift for CALL is 2<<56: a WRITE probe of exactly
	// that size must not alias the cached CALL entry.
	if th.CheckCached(p, caps.WriteCap(addr, uint64(caps.Call)<<sizeKindShift)) {
		t.Fatal("oversized WRITE probe aliased a cached CALL verdict")
	}
	// REF probes never come from the cache; grant and check one.
	s.Caps.Grant(p, caps.RefCap("struct page", addr))
	if !th.CheckCached(p, caps.RefCap("struct page", addr)) {
		t.Fatal("REF not visible")
	}
	if th.CheckCached(p, caps.RefCap("struct skb", addr)) {
		t.Fatal("REF type confusion")
	}
}

// TestConcurrentEpochCacheNeverStaleAllow is the randomized property
// test of the epoch invalidation protocol: 8 goroutine-backed threads,
// each owning a disjoint address range, interleave grant/check/revoke
// cycles through their per-thread caches while also probing (without
// asserting) the other workers' ranges to keep the caches and shards
// churning. The invariant: after a worker's own revoke returns, its
// next check of that capability must deny — no thread may ever observe
// a stale allow. Runs under -race in CI's concurrency battery.
func TestConcurrentEpochCacheNeverStaleAllow(t *testing.T) {
	s := NewSystem()
	s.Mon.SetMode(Enforce)
	ms := s.Caps.LoadModule("m")
	const workers = 8
	const rounds = 400
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	bases := make([]mem.Addr, workers)
	for w := 0; w < workers; w++ {
		bases[w] = mem.Addr(0xffff880000000000) + mem.Addr(w)*mem.Addr(1<<22)
	}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.NewThread(fmt.Sprintf("w%d", w))
			p := ms.Instance(mem.Addr(0x1000 + w))
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				// Own-range cycle: the asserted interleaving.
				off := mem.Addr(rng.Intn(64)) * 512
				size := uint64(rng.Intn(3))*4096 + uint64(rng.Intn(128)) + 1
				c := caps.WriteCap(bases[w]+off, size)
				s.Caps.Grant(p, c)
				if !th.CheckCached(p, c) {
					errs <- fmt.Errorf("w%d round %d: granted cap invisible", w, i)
					return
				}
				// Warm the cache again, then revoke through a randomly
				// chosen path (point revoke or transfer-style RevokeAll).
				_ = th.CheckCached(p, c)
				if rng.Intn(2) == 0 {
					s.Caps.Revoke(p, c)
				} else {
					s.Caps.RevokeAll(c)
				}
				if th.CheckCached(p, c) {
					errs <- fmt.Errorf("w%d round %d: STALE ALLOW after revoke", w, i)
					return
				}
				// Foreign-range probes: unasserted churn on shared state
				// and other workers' shards (their grants race with ours,
				// so the verdict itself is unknowable here).
				other := (w + 1 + rng.Intn(workers-1)) % workers
				_ = th.CheckCached(p, caps.WriteCap(bases[other]+off, 8))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
